// Figure 11: "Effect of Transfer Latency on Core-to-Core Communication".
//
// Reproduces the figure's two scenarios with hand-written machine programs:
//   * an early dequeue (issued before the matching enqueue) stalls until
//     enqueue-time + transfer latency;
//   * a late dequeue (issued after the value has arrived) completes
//     immediately.
// Prints the receiver's completion time for a range of transfer latencies.
#include <cstdio>

#include "isa/assembler.hpp"
#include "sim/machine.hpp"
#include "support/str.hpp"
#include "support/table.hpp"

namespace {

using namespace fgpar;

struct Scenario {
  std::uint64_t receiver_done_cycle;
  std::uint64_t receiver_stall_cycles;
};

/// Sender enqueues at ~cycle `send_at`; receiver does `busy_work` adds and
/// then dequeues.  Returns when the receiver halts.
Scenario RunScenario(int transfer_latency, int send_delay, int busy_work) {
  isa::Assembler a;
  isa::Label sender = a.NewNamedLabel("sender");
  isa::Label receiver = a.NewNamedLabel("receiver");

  a.Bind(sender);
  a.LiI(isa::Gpr{2}, 0);
  a.LiI(isa::Gpr{3}, 1);
  for (int i = 0; i < send_delay; ++i) {
    a.AddI(isa::Gpr{2}, isa::Gpr{2}, isa::Gpr{3});
  }
  a.LiI(isa::Gpr{1}, 42);
  a.EnqI(1, isa::Gpr{1});
  a.Halt();

  a.Bind(receiver);
  a.LiI(isa::Gpr{2}, 0);
  a.LiI(isa::Gpr{3}, 1);
  for (int i = 0; i < busy_work; ++i) {
    a.AddI(isa::Gpr{2}, isa::Gpr{2}, isa::Gpr{3});
  }
  a.DeqI(0, isa::Gpr{4});
  a.Halt();

  sim::MachineConfig config;
  config.num_cores = 2;
  config.memory_words = 1 << 12;
  config.queue.transfer_latency = transfer_latency;
  sim::Machine machine(config, a.Finish());
  machine.StartCoreAt(0, "sender");
  machine.StartCoreAt(1, "receiver");
  const sim::RunResult result = machine.Run();
  return Scenario{result.cycles, machine.core(1).stats().stall_queue_empty};
}

}  // namespace

int main() {
  TextTable table({"Transfer latency", "Early deq: done @", "Early deq: stalls",
                   "Late deq: done @", "Late deq: stalls"});
  for (int latency : {1, 5, 10, 20, 50, 100}) {
    // Early dequeue: receiver is waiting long before the sender sends
    // (sender does 60 cycles of busy work first).
    const Scenario early = RunScenario(latency, /*send_delay=*/60, /*busy_work=*/0);
    // Late dequeue: receiver is busy far past the arrival time.
    const Scenario late = RunScenario(latency, /*send_delay=*/0, /*busy_work=*/200);
    table.AddRow({std::to_string(latency), std::to_string(early.receiver_done_cycle),
                  std::to_string(early.receiver_stall_cycles),
                  std::to_string(late.receiver_done_cycle),
                  std::to_string(late.receiver_stall_cycles)});
  }
  std::printf("%s\n",
              table
                  .Render("Figure 11: transfer-latency semantics\n"
                          "(early dequeues stall until enqueue + latency and the "
                          "stall grows with latency;\nlate dequeues never stall, "
                          "so their completion time is latency-independent)")
                  .c_str());
  return 0;
}
