// Microbenchmarks (google-benchmark) of the simulator substrate itself:
// raw simulation throughput of the core model, the hardware queues, and
// the cache hierarchy.  These measure the *host* cost of simulation, not
// simulated time — useful for sizing experiment sweeps.
//
// Coverage of the three run tiers (see docs/INTERNALS.md):
//  * BM_CoreIssueThroughputThreaded  — direct-threaded trace tier, the
//    default for hot single-core simulation;
//  * BM_CoreIssueThroughput          — fast path, predecoded dispatch
//    (pinned with force_tier so it keeps measuring the fast loop now
//    that auto resolves to the threaded tier);
//  * BM_CoreIssueThroughputSlowPath  — same program on the instrumented
//    reference loop, i.e. the decoded-cache off configuration; the
//    ratios between the three are the per-tier speedups;
//  * BM_MachineFastForward           — a machine that is mostly idle
//    (long unpipelined latencies on one core, the rest blocked on
//    queues), exercising the event fast-forward and blocked-core skip;
//  * BM_QueuePingPong                — queue-bound two-core traffic.
//  * BM_CoreIssueThroughputTraced    — the reference loop with a telemetry
//    sink installed (AggregatingSink), i.e. the cost of emitting one
//    issue event per instruction on top of the slow loop.
//
// A custom main additionally writes BENCH_sim_throughput.json with
// wall-clock simulation rates for the threaded, fast, and slow tiers plus
// the slow loop under each telemetry sink (aggregating, Chrome trace), so
// CI archives machine-readable simulator-performance numbers — including
// the threaded-over-fast ratio its perf-smoke step asserts on — alongside
// the figures.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

#include "harness/bench_artifact.hpp"
#include "isa/assembler.hpp"
#include "sim/machine.hpp"
#include "support/telemetry/sinks.hpp"

namespace {

using namespace fgpar;

isa::Program IssueLoopProgram(std::int64_t iterations) {
  // A tight arithmetic loop; measures simulated instructions per host second.
  isa::Assembler a;
  isa::Label main = a.NewNamedLabel("main");
  a.Bind(main);
  a.LiI(isa::Gpr{1}, iterations);
  a.LiI(isa::Gpr{2}, 1);
  a.LiI(isa::Gpr{3}, 0);
  isa::Label top = a.NewLabel();
  a.Bind(top);
  a.AddI(isa::Gpr{3}, isa::Gpr{3}, isa::Gpr{2});
  a.AddI(isa::Gpr{4}, isa::Gpr{3}, isa::Gpr{2});
  a.AddI(isa::Gpr{5}, isa::Gpr{4}, isa::Gpr{2});
  a.SubI(isa::Gpr{1}, isa::Gpr{1}, isa::Gpr{2});
  a.Bnz(isa::Gpr{1}, top);
  a.Halt();
  return a.Finish();
}

sim::RunResult RunIssueLoop(const isa::Program& program, sim::RunTier tier,
                            telemetry::TelemetrySink* sink = nullptr) {
  sim::MachineConfig config;
  config.num_cores = 1;
  config.memory_words = 1 << 12;
  config.force_tier = tier;
  sim::Machine machine(config, program);
  machine.SetTelemetry(sink);
  machine.StartCoreAt(0, "main");
  return machine.Run();
}

void BM_CoreIssueThroughputThreaded(benchmark::State& state) {
  // The direct-threaded trace tier: the hot loop body runs as one
  // pre-resolved handler chain per iteration (sim/threaded.hpp).
  const isa::Program program = IssueLoopProgram(state.range(0));
  std::uint64_t instructions = 0;
  for (auto _ : state) {
    instructions +=
        RunIssueLoop(program, sim::RunTier::kThreaded).instructions;
  }
  state.counters["sim_instr/s"] = benchmark::Counter(
      static_cast<double>(instructions), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_CoreIssueThroughputThreaded)->Arg(1000)->Arg(10000);

void BM_CoreIssueThroughput(benchmark::State& state) {
  const isa::Program program = IssueLoopProgram(state.range(0));
  std::uint64_t instructions = 0;
  for (auto _ : state) {
    instructions += RunIssueLoop(program, sim::RunTier::kFast).instructions;
  }
  state.counters["sim_instr/s"] = benchmark::Counter(
      static_cast<double>(instructions), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_CoreIssueThroughput)->Arg(1000)->Arg(10000);

void BM_CoreIssueThroughputSlowPath(benchmark::State& state) {
  // The instrumented reference loop on the same program: decoded-cache and
  // issue-skip off.  Compare against BM_CoreIssueThroughput for the
  // fast-path speedup.
  const isa::Program program = IssueLoopProgram(state.range(0));
  std::uint64_t instructions = 0;
  for (auto _ : state) {
    instructions += RunIssueLoop(program, sim::RunTier::kSlow).instructions;
  }
  state.counters["sim_instr/s"] = benchmark::Counter(
      static_cast<double>(instructions), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_CoreIssueThroughputSlowPath)->Arg(1000)->Arg(10000);

void BM_CoreIssueThroughputTraced(benchmark::State& state) {
  // The reference loop with an AggregatingSink installed: one issue event
  // per instruction on top of BM_CoreIssueThroughputSlowPath.  The delta
  // against the slow path is the telemetry emission cost; the delta
  // against the fast path is the full price of turning tracing on.
  const isa::Program program = IssueLoopProgram(state.range(0));
  std::uint64_t instructions = 0;
  for (auto _ : state) {
    telemetry::AggregatingSink sink;
    instructions +=
        RunIssueLoop(program, sim::RunTier::kAuto, &sink).instructions;
  }
  state.counters["sim_instr/s"] = benchmark::Counter(
      static_cast<double>(instructions), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_CoreIssueThroughputTraced)->Arg(1000)->Arg(10000);

isa::Program FastForwardProgram(std::int64_t rounds, int consumers) {
  // Core 0 grinds through unpipelined divides (32-cycle issue occupancy),
  // then feeds one value to each consumer core; consumers spend almost the
  // whole run blocked on their empty queue.  Most simulated cycles have no
  // issue anywhere — the run loop must fast-forward cheaply.
  isa::Assembler a;
  isa::Label main = a.NewNamedLabel("main");
  a.Bind(main);
  a.LiI(isa::Gpr{1}, rounds);
  a.LiI(isa::Gpr{2}, 1);
  a.LiI(isa::Gpr{3}, 1000000);
  isa::Label top = a.NewLabel();
  a.Bind(top);
  a.DivI(isa::Gpr{4}, isa::Gpr{3}, isa::Gpr{2});
  a.SubI(isa::Gpr{1}, isa::Gpr{1}, isa::Gpr{2});
  a.Bnz(isa::Gpr{1}, top);
  for (int c = 1; c <= consumers; ++c) {
    a.EnqI(c, isa::Gpr{4});
  }
  a.Halt();
  for (int c = 1; c <= consumers; ++c) {
    isa::Label consumer = a.NewNamedLabel("consumer" + std::to_string(c));
    a.Bind(consumer);
    a.DeqI(0, isa::Gpr{1});
    a.Halt();
  }
  return a.Finish();
}

void BM_MachineFastForward(benchmark::State& state) {
  constexpr int kConsumers = 3;
  const isa::Program program = FastForwardProgram(state.range(0), kConsumers);
  sim::MachineConfig config;
  config.num_cores = 1 + kConsumers;
  config.memory_words = 1 << 12;
  std::uint64_t cycles = 0;
  for (auto _ : state) {
    sim::Machine machine(config, program);
    machine.StartCoreAt(0, "main");
    for (int c = 1; c <= kConsumers; ++c) {
      machine.StartCoreAt(c, "consumer" + std::to_string(c));
    }
    cycles += machine.Run().cycles;
  }
  state.counters["sim_cycles/s"] = benchmark::Counter(
      static_cast<double>(cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_MachineFastForward)->Arg(256)->Arg(1024);

void BM_QueuePingPong(benchmark::State& state) {
  // Two cores bouncing a value; measures queue-op simulation cost.
  isa::Assembler a;
  isa::Label core0 = a.NewNamedLabel("core0");
  isa::Label core1 = a.NewNamedLabel("core1");
  const std::int64_t rounds = state.range(0);

  a.Bind(core0);
  a.LiI(isa::Gpr{1}, rounds);
  a.LiI(isa::Gpr{2}, 1);
  isa::Label top0 = a.NewLabel();
  a.Bind(top0);
  a.EnqI(1, isa::Gpr{1});
  a.DeqI(1, isa::Gpr{3});
  a.SubI(isa::Gpr{1}, isa::Gpr{1}, isa::Gpr{2});
  a.Bnz(isa::Gpr{1}, top0);
  a.Halt();

  a.Bind(core1);
  a.LiI(isa::Gpr{1}, rounds);
  a.LiI(isa::Gpr{2}, 1);
  isa::Label top1 = a.NewLabel();
  a.Bind(top1);
  a.DeqI(0, isa::Gpr{3});
  a.EnqI(0, isa::Gpr{3});
  a.SubI(isa::Gpr{1}, isa::Gpr{1}, isa::Gpr{2});
  a.Bnz(isa::Gpr{1}, top1);
  a.Halt();

  const isa::Program program = a.Finish();
  std::uint64_t transfers = 0;
  for (auto _ : state) {
    sim::MachineConfig config;
    config.num_cores = 2;
    config.memory_words = 1 << 12;
    sim::Machine machine(config, program);
    machine.StartCoreAt(0, "core0");
    machine.StartCoreAt(1, "core1");
    machine.Run();
    transfers += machine.queues().TotalTransfers();
  }
  state.counters["transfers/s"] = benchmark::Counter(
      static_cast<double>(transfers), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_QueuePingPong)->Arg(256)->Arg(1024);

void BM_CacheAccess(benchmark::State& state) {
  sim::CacheConfig config;
  sim::MemorySystem memory(config, 1, 1 << 20);
  std::uint64_t addr = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(memory.AccessTimed(0, addr & ((1 << 20) - 1), false));
    addr += 17;
  }
}
BENCHMARK(BM_CacheAccess);

/// Wall-clock measurement of one run-loop flavour, repeated until
/// min_seconds of host time accumulate.  Returns simulated instructions
/// per host second plus the deterministic per-run counts.
struct ThroughputSample {
  std::uint64_t instructions_per_run = 0;
  std::uint64_t cycles_per_run = 0;
  double sim_instr_per_s = 0.0;
};

/// Which telemetry sink (if any) the measured machine carries.  A fresh
/// sink is built per run, so accumulating sinks (Chrome trace) pay their
/// real allocation cost instead of amortizing one giant buffer.
enum class SinkMode { kNone, kAggregating, kChromeTrace };

ThroughputSample MeasureIssueLoop(const isa::Program& program,
                                  sim::RunTier tier, SinkMode mode,
                                  double min_seconds) {
  ThroughputSample sample;
  std::uint64_t instructions = 0;
  double elapsed = 0.0;
  const auto start = std::chrono::steady_clock::now();
  do {
    sim::RunResult result;
    switch (mode) {
      case SinkMode::kNone:
        result = RunIssueLoop(program, tier);
        break;
      case SinkMode::kAggregating: {
        telemetry::AggregatingSink sink;
        result = RunIssueLoop(program, tier, &sink);
        break;
      }
      case SinkMode::kChromeTrace: {
        telemetry::ChromeTraceSink sink;
        result = RunIssueLoop(program, tier, &sink);
        break;
      }
    }
    sample.instructions_per_run = result.instructions;
    sample.cycles_per_run = result.cycles;
    instructions += result.instructions;
    elapsed = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            start)
                  .count();
  } while (elapsed < min_seconds);
  sample.sim_instr_per_s = static_cast<double>(instructions) / elapsed;
  return sample;
}

void WriteThroughputArtifact() {
  const isa::Program program = IssueLoopProgram(10000);
  constexpr double kMinSeconds = 0.2;
  const ThroughputSample threaded = MeasureIssueLoop(
      program, sim::RunTier::kThreaded, SinkMode::kNone, kMinSeconds);
  const ThroughputSample fast = MeasureIssueLoop(
      program, sim::RunTier::kFast, SinkMode::kNone, kMinSeconds);
  const ThroughputSample slow = MeasureIssueLoop(
      program, sim::RunTier::kSlow, SinkMode::kNone, kMinSeconds);
  // Telemetry implies the reference loop, so the tier is redundant for
  // the traced flavours — passed kAuto to measure exactly what a user's
  // "attach a sink" configuration costs.
  const ThroughputSample aggregating = MeasureIssueLoop(
      program, sim::RunTier::kAuto, SinkMode::kAggregating, kMinSeconds);
  const ThroughputSample chrome = MeasureIssueLoop(
      program, sim::RunTier::kAuto, SinkMode::kChromeTrace, kMinSeconds);

  harness::BenchArtifact artifact;
  artifact.name = "sim_throughput";
  const auto add = [&](const char* label, const ThroughputSample& sample,
                       const char* path, const char* sink) {
    harness::BenchArtifact::Point point;
    point.label = label;
    point.params["run_loop"] = path;
    point.params["sink"] = sink;
    point.counters["instructions_per_run"] = sample.instructions_per_run;
    point.counters["cycles_per_run"] = sample.cycles_per_run;
    point.host["sim_instr_per_s"] = sample.sim_instr_per_s;
    artifact.points.push_back(std::move(point));
  };
  add("issue_loop threaded", threaded, "threaded", "none");
  add("issue_loop fast", fast, "fast", "none");
  add("issue_loop slow", slow, "slow", "none");
  add("issue_loop aggregating", aggregating, "slow", "aggregating");
  add("issue_loop chrome_trace", chrome, "slow", "chrome_trace");
  const auto ratio = [](const ThroughputSample& a, const ThroughputSample& b) {
    return b.sim_instr_per_s > 0.0 ? a.sim_instr_per_s / b.sim_instr_per_s
                                   : 0.0;
  };
  artifact.host["threaded_over_fast"] = ratio(threaded, fast);
  artifact.host["threaded_over_slow"] = ratio(threaded, slow);
  artifact.host["fast_over_slow"] = ratio(fast, slow);
  artifact.host["fast_over_aggregating"] = ratio(fast, aggregating);
  artifact.host["fast_over_chrome_trace"] = ratio(fast, chrome);
  const std::string path = artifact.WriteFile();
  std::fprintf(stderr,
               "wrote %s (threaded %.1fM sim-instr/s, fast %.1fM, slow "
               "%.1fM, aggregating %.1fM, chrome %.1fM; threaded/fast "
               "%.2fx, fast/slow %.2fx)\n",
               path.c_str(), threaded.sim_instr_per_s / 1e6,
               fast.sim_instr_per_s / 1e6, slow.sim_instr_per_s / 1e6,
               aggregating.sim_instr_per_s / 1e6,
               chrome.sim_instr_per_s / 1e6,
               artifact.host["threaded_over_fast"],
               artifact.host["fast_over_slow"]);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  WriteThroughputArtifact();
  return 0;
}
