// Microbenchmarks (google-benchmark) of the simulator substrate itself:
// raw simulation throughput of the core model, the hardware queues, and
// the cache hierarchy.  These measure the *host* cost of simulation, not
// simulated time — useful for sizing experiment sweeps.
#include <benchmark/benchmark.h>

#include "isa/assembler.hpp"
#include "sim/machine.hpp"

namespace {

using namespace fgpar;

void BM_CoreIssueThroughput(benchmark::State& state) {
  // A tight arithmetic loop; measures simulated instructions per host second.
  isa::Assembler a;
  isa::Label main = a.NewNamedLabel("main");
  a.Bind(main);
  a.LiI(isa::Gpr{1}, static_cast<std::int64_t>(state.range(0)));
  a.LiI(isa::Gpr{2}, 1);
  a.LiI(isa::Gpr{3}, 0);
  isa::Label top = a.NewLabel();
  a.Bind(top);
  a.AddI(isa::Gpr{3}, isa::Gpr{3}, isa::Gpr{2});
  a.AddI(isa::Gpr{4}, isa::Gpr{3}, isa::Gpr{2});
  a.AddI(isa::Gpr{5}, isa::Gpr{4}, isa::Gpr{2});
  a.SubI(isa::Gpr{1}, isa::Gpr{1}, isa::Gpr{2});
  a.Bnz(isa::Gpr{1}, top);
  a.Halt();
  const isa::Program program = a.Finish();

  std::uint64_t instructions = 0;
  for (auto _ : state) {
    sim::MachineConfig config;
    config.num_cores = 1;
    config.memory_words = 1 << 12;
    sim::Machine machine(config, program);
    machine.StartCoreAt(0, "main");
    const sim::RunResult result = machine.Run();
    instructions += result.instructions;
  }
  state.counters["sim_instr/s"] = benchmark::Counter(
      static_cast<double>(instructions), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_CoreIssueThroughput)->Arg(1000)->Arg(10000);

void BM_QueuePingPong(benchmark::State& state) {
  // Two cores bouncing a value; measures queue-op simulation cost.
  isa::Assembler a;
  isa::Label core0 = a.NewNamedLabel("core0");
  isa::Label core1 = a.NewNamedLabel("core1");
  const std::int64_t rounds = state.range(0);

  a.Bind(core0);
  a.LiI(isa::Gpr{1}, rounds);
  a.LiI(isa::Gpr{2}, 1);
  isa::Label top0 = a.NewLabel();
  a.Bind(top0);
  a.EnqI(1, isa::Gpr{1});
  a.DeqI(1, isa::Gpr{3});
  a.SubI(isa::Gpr{1}, isa::Gpr{1}, isa::Gpr{2});
  a.Bnz(isa::Gpr{1}, top0);
  a.Halt();

  a.Bind(core1);
  a.LiI(isa::Gpr{1}, rounds);
  a.LiI(isa::Gpr{2}, 1);
  isa::Label top1 = a.NewLabel();
  a.Bind(top1);
  a.DeqI(0, isa::Gpr{3});
  a.EnqI(0, isa::Gpr{3});
  a.SubI(isa::Gpr{1}, isa::Gpr{1}, isa::Gpr{2});
  a.Bnz(isa::Gpr{1}, top1);
  a.Halt();

  const isa::Program program = a.Finish();
  std::uint64_t transfers = 0;
  for (auto _ : state) {
    sim::MachineConfig config;
    config.num_cores = 2;
    config.memory_words = 1 << 12;
    sim::Machine machine(config, program);
    machine.StartCoreAt(0, "core0");
    machine.StartCoreAt(1, "core1");
    machine.Run();
    transfers += machine.queues().TotalTransfers();
  }
  state.counters["transfers/s"] = benchmark::Counter(
      static_cast<double>(transfers), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_QueuePingPong)->Arg(256)->Arg(1024);

void BM_CacheAccess(benchmark::State& state) {
  sim::CacheConfig config;
  sim::MemorySystem memory(config, 1, 1 << 20);
  std::uint64_t addr = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(memory.AccessTimed(0, addr & ((1 << 20) - 1), false));
    addr += 17;
  }
}
BENCHMARK(BM_CacheAccess);

}  // namespace

BENCHMARK_MAIN();
