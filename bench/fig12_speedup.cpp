// Figure 12: "Speedup of Fine-Grained Parallel Code Over Sequential Code".
//
// For each of the 18 Table-I kernels, runs the verifying pipeline with 2
// and 4 cores (queue length 20, transfer latency 5 — the Section V
// defaults) and prints the per-kernel speedups plus the averages the paper
// reports (2-core avg 1.32, range 1.03-1.76; 4-core avg 2.05, range
// 0.90-2.98).
#include <cstdio>
#include <vector>

#include "kernels/experiments.hpp"
#include "support/stats.hpp"
#include "support/str.hpp"
#include "support/table.hpp"

int main() {
  using namespace fgpar;

  kernels::ExperimentConfig config2;
  config2.cores = 2;
  kernels::ExperimentConfig config4;
  config4.cores = 4;

  const auto runs2 = kernels::RunAllKernels(config2);
  const auto runs4 = kernels::RunAllKernels(config4);

  TextTable table({"Kernel", "2-core speedup", "4-core speedup"});
  std::vector<double> s2, s4;
  for (std::size_t i = 0; i < runs2.size(); ++i) {
    table.AddRow({runs2[i].kernel_name, FormatFixed(runs2[i].speedup, 2),
                  FormatFixed(runs4[i].speedup, 2)});
    s2.push_back(runs2[i].speedup);
    s4.push_back(runs4[i].speedup);
  }
  table.AddSeparator();
  table.AddRow({"average", FormatFixed(Mean(s2), 2), FormatFixed(Mean(s4), 2)});
  table.AddRow({"min", FormatFixed(Min(s2), 2), FormatFixed(Min(s4), 2)});
  table.AddRow({"max", FormatFixed(Max(s2), 2), FormatFixed(Max(s4), 2)});

  std::printf("%s\n",
              table
                  .Render("Figure 12: speedup of fine-grained parallel code over "
                          "sequential code\n(paper: 2-core avg 1.32 in "
                          "[1.03, 1.76]; 4-core avg 2.05 in [0.90, 2.98])")
                  .c_str());
  std::printf("All runs verified bit-exact against the reference interpreter.\n");
  return 0;
}
