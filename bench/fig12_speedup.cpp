// Figure 12: "Speedup of Fine-Grained Parallel Code Over Sequential Code".
//
// For each of the 18 Table-I kernels, runs the verifying pipeline with 2
// and 4 cores (queue length 20, transfer latency 5 — the Section V
// defaults) and prints the per-kernel speedups plus the averages the paper
// reports (2-core avg 1.32, range 1.03-1.76; 4-core avg 2.05, range
// 0.90-2.98).
//
// The (kernel x cores) grid — kernels::MakeFig12Grid, shared with
// fgpar-coord — runs under the resilient sweep supervisor
// (harness/supervisor.hpp): points are fanned across host threads
// (FGPAR_SWEEP_THREADS overrides the worker count), and the table plus the
// deterministic portion of BENCH_fig12.json are byte-identical for any
// thread count, with or without an interruption-and-resume in between.
//
// Flags:
//   --smoke              3-kernel subset for CI
//   --checkpoint <path>  journal completed points ("fgpar-ckpt-v1")
//   --resume             skip points already in the checkpoint journal
//   --deadline <s>       per-point host wall-clock budget
//   --cycle-budget <n>   per-point simulated-cycle budget
//   --max-retries <n>    supervisor retries per failed point
//   --failure-budget <n> quarantined failures tolerated before exit 1
//   --fault-point <i>    injects an unrecoverable fault at grid point i
//                        (resilience drills; quarantines that point)
//   --repro-dir <dir>    emit a repro bundle per quarantined point
//   --trace <path>       write a Chrome trace_event capture of the whole
//                        sweep (per-point "point"/"retry" host spans plus
//                        each measured run's sim events, one stream lane
//                        per grid point) to <path>; open it at
//                        ui.perfetto.dev or chrome://tracing
//   --tuned              after the simulated sweep, autotune every kernel
//                        (harness/autotune: predict the whole merge x
//                        cores x capacity x speculation space, simulate
//                        only the top-K frontier), print the default-vs-
//                        tuned speedup per kernel with the chosen config,
//                        and emit BENCH_fig12_tuned.json.  Exits 1 if any
//                        kernel's tuned config simulates slower than the
//                        4-core default — the autotuner's never-worse
//                        guarantee, checked end to end.
//   --backend native     after the simulated sweep, additionally execute
//                        every kernel for real on host threads (4 cores,
//                        native backend), print a measured-vs-simulated
//                        column, and emit BENCH_native.json.  The default
//                        table and BENCH_fig12.json are byte-identical
//                        with or without this flag; wall-clock numbers
//                        live only in the new artifact's host fields.
//
// Distributed mode (the fault-tolerant sweep coordinator, src/dist/):
//   --workers <n>        become the coordinator: shard the grid under
//                        time-bounded leases across n local worker
//                        processes (re-spawned if they die), merge their
//                        results first-committed-wins, and render the
//                        byte-identical table/artifact.  Combine with
//                        --resume to continue after a coordinator kill -9
//                        (journals in --work-dir are merged tolerantly).
//   --work-dir <dir>     socket + journals for distributed mode
//                        (default fig12_dist)
//   --address <addr>     coordinator listen address override
//                        (default <work-dir>/coord.sock; "tcp:host:port"
//                        accepts workers from other hosts)
//   --lease-ms <ms>      heartbeat deadline per lease (default 10000)
//   --slice-points <n>   max points per fresh lease grant (default 4)
//   --target-slice-ms <ms> adaptive lease sizing: size fresh grants so a
//                        slice costs roughly this much worker wall time
//                        (per the EWMA of reported point times), capped
//                        at --slice-points.  0 (default) = fixed slices
//   --crash-budget <n>   worker crashes on one point before the
//                        coordinator quarantines it (default 3)
//   --dist-worker        internal: run as a worker process
//                        (--dist-address, --worker-id)
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <mutex>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "compiler/backend.hpp"
#include "dist/coordinator.hpp"
#include "dist/journal_merge.hpp"
#include "dist/server.hpp"
#include "dist/worker.hpp"
#include "harness/autotune.hpp"
#include "harness/repro.hpp"
#include "harness/supervisor.hpp"
#include "kernels/experiments.hpp"
#include "kernels/fig12_grid.hpp"
#include "support/stats.hpp"
#include "support/str.hpp"
#include "support/table.hpp"
#include "support/telemetry/sinks.hpp"

int main(int argc, char** argv) {
  using namespace fgpar;

  const bool smoke = benchutil::HasFlag(argc, argv, "--smoke");
  const auto start = std::chrono::steady_clock::now();
  const kernels::Fig12Grid grid = kernels::MakeFig12Grid(smoke);
  const std::size_t grid_size = grid.size();
  const int threads = harness::ResolveSweepThreads(0);

  const long long fault_point =
      benchutil::FlagInt(argc, argv, "--fault-point", -1);
  const std::string repro_dir =
      benchutil::FlagValue(argc, argv, "--repro-dir");
  const std::size_t failure_budget = static_cast<std::size_t>(
      benchutil::FlagInt(argc, argv, "--failure-budget", 0));

  harness::SupervisorConfig supervision;
  supervision.name = grid.name;
  supervision.labels = grid.labels;
  supervision.checkpoint_path =
      benchutil::FlagValue(argc, argv, "--checkpoint");
  supervision.resume = benchutil::HasFlag(argc, argv, "--resume");
  supervision.point_deadline_seconds =
      benchutil::FlagDouble(argc, argv, "--deadline", 0.0);
  supervision.point_cycle_budget = static_cast<std::uint64_t>(
      benchutil::FlagInt(argc, argv, "--cycle-budget", 0));
  supervision.max_retries =
      static_cast<int>(benchutil::FlagInt(argc, argv, "--max-retries", 0));
  supervision.failure_budget = failure_budget;
  // SIGTERM drains: in-flight points finish and are journaled, the rest
  // are left for --resume, and the process exits 0 (see below).
  supervision.drain_on_sigterm = true;

  // --trace routes the whole sweep through one shared Chrome-trace sink
  // (the supervisor re-stamps each point onto its own stream lane) and
  // keeps a forensic ring of each point's last sim events for quarantine
  // reports.  Untraced sweeps stay on the simulator fast path.
  const std::string trace_path = benchutil::FlagValue(argc, argv, "--trace");
  telemetry::ChromeTraceSink trace_sink;
  if (!trace_path.empty()) {
    supervision.telemetry = &trace_sink;
    supervision.failure_ring_capacity = 256;
  }

  // Host-only observations, one slot per point (each slot is written by
  // exactly one worker at a time).  Failure snapshots feed repro bundles.
  std::vector<double> wall(grid_size, 0.0);
  std::vector<std::vector<std::uint8_t>> snapshots(grid_size);

  const auto config_for = [&](const harness::PointContext& ctx) {
    kernels::ExperimentConfig experiment;
    experiment.cores = grid.CoresAt(ctx.index);
    harness::RunConfig config = kernels::ToRunConfig(experiment);
    config.seed = ctx.seed;
    config.max_cycles = ctx.cycle_budget;
    if (fault_point >= 0 && ctx.index == static_cast<std::size_t>(fault_point)) {
      // An unrecoverable injected failure: every payload in transit is
      // flipped, so verification can never pass; no sequential fallback,
      // so the point fails hard and gets quarantined.
      config.faults.payload_flip_prob = 1.0;
      config.stall_watchdog_cycles = 200000;
      config.fallback.max_retries = 0;
      config.fallback.fall_back_to_sequential = false;
    }
    return config;
  };

  const auto body = [&](const harness::PointContext& ctx) {
    harness::RunConfig config = config_for(ctx);
    config.telemetry = ctx.telemetry;
    config.on_parallel_failure = [&](const sim::Machine& machine, const Error&,
                                     int) {
      snapshots[ctx.index] = machine.Snapshot();
    };
    const auto point_start = std::chrono::steady_clock::now();
    const harness::KernelRun run =
        kernels::RunKernel(grid.KernelAt(ctx.index), config);
    wall[ctx.index] = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - point_start)
                          .count();
    return harness::EncodeKernelRun(run);
  };
  const auto repro = [&](const harness::PointContext& ctx,
                         const harness::PointFailure& failure) -> std::string {
    if (repro_dir.empty()) {
      return "";
    }
    const kernels::SequoiaKernel& kernel = grid.KernelAt(ctx.index);
    harness::ReproBundle bundle;
    bundle.experiment = "fig12";
    bundle.label = failure.label;
    bundle.point_index = failure.index;
    bundle.attempt = ctx.attempt;
    bundle.kernel_id = kernel.id;
    bundle.kernel_source = kernel.source;
    bundle.trip = kernel.trip;
    bundle.f64_params = kernel.f64_params;
    bundle.config = config_for(ctx);
    bundle.failure_message = failure.message;
    bundle.failure_attempts = failure.attempts;
    bundle.snapshot = snapshots[ctx.index];
    const std::string name = "repro_fig12_point" + std::to_string(ctx.index);
    harness::WriteReproBundle(repro_dir, name, bundle);
    return name;
  };

  const std::string work_dir =
      benchutil::FlagValue(argc, argv, "--work-dir", "fig12_dist");

  // ------------------------------------------------------------------
  // Worker process mode (spawned by the coordinator, or started by hand
  // against a remote coordinator): pull leases, run them, stream back.
  // ------------------------------------------------------------------
  if (benchutil::HasFlag(argc, argv, "--dist-worker")) {
    dist::WorkerOptions options;
    options.address = benchutil::FlagValue(argc, argv, "--dist-address");
    if (options.address.empty()) {
      std::fprintf(stderr, "--dist-worker needs --dist-address\n");
      return 2;
    }
    const std::string worker_id =
        benchutil::FlagValue(argc, argv, "--worker-id", "w0");
    options.worker = worker_id + ".p" + std::to_string(::getpid());
    options.journal_dir = work_dir;
    options.connect_budget_seconds =
        benchutil::FlagDouble(argc, argv, "--connect-budget", 20.0);
    options.sweep_name = grid.name;
    options.labels = grid.labels;
    options.supervisor = supervision;
    options.supervisor.checkpoint_path.clear();  // per-lease, set by RunWorker
    options.supervisor.resume = false;
    options.supervisor.drain_on_sigterm = false;  // SIGTERM = die, lease expires
    options.supervisor.telemetry = nullptr;
    try {
      const dist::WorkerStats stats = dist::RunWorker(options, body, repro);
      std::fprintf(stderr,
                   "worker %s: %zu leases, %zu points, %zu failed, "
                   "%zu stolen-skips, %zu revoked leases\n",
                   options.worker.c_str(), stats.leases, stats.completed,
                   stats.failed, stats.stolen_skips, stats.revoked_leases);
      return 0;
    } catch (const Error& e) {
      std::fprintf(stderr, "worker %s: %s\n", options.worker.c_str(),
                   e.what());
      return 1;
    }
  }

  // The sweep outcome, produced by exactly one of the three modes below
  // (distributed coordinator, or the classic in-process supervisor) and
  // rendered identically afterwards.
  harness::SweepOutcome outcome;
  outcome.payloads.resize(grid_size);
  outcome.completed.assign(grid_size, 0);

  const long long workers = benchutil::FlagInt(argc, argv, "--workers", 0);
  if (workers > 0) {
    // ----------------------------------------------------------------
    // Coordinator mode: serve leases, keep n workers alive, merge.
    // ----------------------------------------------------------------
    namespace fs = std::filesystem;
    std::error_code ec;
    fs::create_directories(work_dir, ec);
    if (!supervision.resume) {
      // A fresh sweep must not adopt journals from an older one.
      for (const std::string& stale : dist::ListJournalFiles(work_dir)) {
        fs::remove(stale, ec);
      }
    }

    dist::Coordinator::Config config;
    config.name = grid.name;
    config.labels = grid.labels;
    config.checkpoint_path = work_dir + "/coordinator.ckpt";
    config.slice_points = static_cast<std::size_t>(
        benchutil::FlagInt(argc, argv, "--slice-points", 4));
    config.lease_ms = static_cast<std::uint64_t>(
        benchutil::FlagInt(argc, argv, "--lease-ms", 10'000));
    config.heartbeat_ms = std::max<std::uint64_t>(config.lease_ms / 10, 50);
    config.crash_budget = static_cast<std::size_t>(
        benchutil::FlagInt(argc, argv, "--crash-budget", 3));
    config.target_slice_ms = static_cast<std::uint64_t>(
        benchutil::FlagInt(argc, argv, "--target-slice-ms", 0));
    dist::Coordinator coordinator(config);

    // Tolerantly merge whatever journals the work dir holds (the
    // coordinator's own plus any dead worker's) — the resume-after-
    // kill-9 path.  Corrupt records are quarantined loudly, never fatal.
    const auto validate = [](std::size_t, const std::string& payload) {
      try {
        harness::DecodeKernelRun(payload);
        return std::string();
      } catch (const Error& e) {
        return std::string(e.what());
      }
    };
    const dist::MergeResult merged = dist::MergeJournalFiles(
        dist::ListJournalFiles(work_dir), grid.name, coordinator.fingerprint(),
        grid_size, validate);
    for (const dist::QuarantinedRecord& record : merged.quarantined) {
      std::fprintf(stderr, "journal merge: quarantined %s:%zu: %s\n",
                   record.file.c_str(), record.line, record.reason.c_str());
    }
    coordinator.AdoptPoints(merged.points);
    if (!coordinator.points().empty()) {
      std::fprintf(stderr, "resumed %zu completed points from %s\n",
                   coordinator.points().size(), work_dir.c_str());
    }

    std::string address = benchutil::FlagValue(argc, argv, "--address");
    if (address.empty()) {
      address = work_dir + "/coord.sock";
    }
    dist::CoordinatorServer server(coordinator, address);
    server.Start();

    // Keep `workers` worker processes alive until the grid is done; a
    // worker that dies (crash drill, OOM, kill -9) is reaped and
    // re-spawned, its lease re-queued by the server.
    const std::string self = argv[0];
    std::vector<std::string> worker_args = {
        self,        "--dist-worker", "--dist-address", address,
        "--work-dir", work_dir,       "--worker-id",    "w?"};
    for (const char* pass :
         {"--smoke", "--max-retries", "--deadline", "--cycle-budget",
          "--fault-point", "--repro-dir", "--connect-budget"}) {
      if (std::string(pass) == "--smoke") {
        if (smoke) {
          worker_args.push_back("--smoke");
        }
        continue;
      }
      const std::string value = benchutil::FlagValue(argc, argv, pass);
      if (!value.empty()) {
        worker_args.push_back(pass);
        worker_args.push_back(value);
      }
    }
    const auto spawn = [&](int slot) -> pid_t {
      std::vector<std::string> args = worker_args;
      for (std::string& arg : args) {
        if (arg == "w?") {
          arg = "w" + std::to_string(slot);
        }
      }
      std::vector<char*> cargs;
      cargs.reserve(args.size() + 1);
      for (std::string& arg : args) {
        cargs.push_back(arg.data());
      }
      cargs.push_back(nullptr);
      const pid_t pid = ::fork();
      if (pid == 0) {
        ::execv(self.c_str(), cargs.data());
        _exit(127);
      }
      return pid;
    };

    std::vector<pid_t> children;
    std::vector<int> slots;
    for (int i = 0; i < static_cast<int>(workers); ++i) {
      children.push_back(spawn(i));
      slots.push_back(i);
    }
    std::size_t respawns = 0;
    constexpr std::size_t kRespawnCap = 500;  // runaway-crash-loop backstop
    while (!server.DoneNow()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      int status = 0;
      pid_t dead;
      while ((dead = ::waitpid(-1, &status, WNOHANG)) > 0) {
        for (std::size_t k = 0; k < children.size(); ++k) {
          if (children[k] != dead) {
            continue;
          }
          if (!server.DoneNow()) {
            if (++respawns > kRespawnCap) {
              std::fprintf(stderr,
                           "worker respawn cap (%zu) exhausted; the sweep "
                           "cannot make progress\n",
                           kRespawnCap);
              server.Stop();
              return 1;
            }
            std::fprintf(stderr, "worker w%d died; re-spawning\n", slots[k]);
            children[k] = spawn(slots[k]);
          }
          break;
        }
      }
    }
    server.Stop();
    // Workers still alive will see Grant::kDone on their next poll, but a
    // SIGTERM makes the exit prompt; reap everything we spawned.
    for (const pid_t child : children) {
      ::kill(child, SIGTERM);
    }
    for (const pid_t child : children) {
      int status = 0;
      ::waitpid(child, &status, 0);
    }

    for (const auto& [index, payload] : coordinator.points()) {
      outcome.payloads[index] = payload;
      outcome.completed[index] = 1;
    }
    for (const dist::Coordinator::FailureInfo& info : coordinator.failures()) {
      harness::PointFailure failure;
      failure.index = info.index;
      failure.label = grid.labels[info.index];
      failure.message = info.message;
      failure.repro_bundle = info.repro_bundle;
      failure.attempts = 1 + std::max(0, supervision.max_retries);
      outcome.failures.push_back(std::move(failure));
    }
    outcome.resumed_points = merged.points.size();
    if (coordinator.duplicate_commits() > 0) {
      std::fprintf(stderr,
                   "%zu duplicate completions discarded "
                   "(first-committed-wins)\n",
                   coordinator.duplicate_commits());
    }
  } else {
    harness::SweepSupervisor supervisor(supervision);
    outcome = supervisor.Run(body, repro);
    if (outcome.resumed_points > 0) {
      std::fprintf(stderr, "resumed %zu completed points from %s\n",
                   outcome.resumed_points, supervision.checkpoint_path.c_str());
    }
    if (outcome.stopped) {
      // Graceful SIGTERM drain: the partial grid would render a misleading
      // table/artifact, so report the drain and exit cleanly instead; a
      // --resume run recomputes exactly the skipped points.
      std::fprintf(stderr,
                   "SIGTERM: drained cleanly, %zu points skipped; rerun with "
                   "--resume to complete the sweep\n",
                   outcome.skipped_points);
      return 0;
    }
  }

  for (const harness::PointFailure& failure : outcome.failures) {
    std::fprintf(stderr, "quarantined point %zu (%s) after %d attempts: %s\n",
                 failure.index, failure.label.c_str(), failure.attempts,
                 failure.message.c_str());
  }

  // Decode the journal payloads back into KernelRuns; quarantined points
  // have no run and render as placeholder rows.
  const std::size_t kernel_count = grid.kernel_count;
  std::vector<harness::KernelRun> runs(grid_size);
  for (std::size_t i = 0; i < grid_size; ++i) {
    if (outcome.completed[i]) {
      runs[i] = harness::DecodeKernelRun(outcome.payloads[i]);
    }
  }

  TextTable table({"Kernel", "2-core speedup", "4-core speedup"});
  std::vector<double> s2, s4;
  for (std::size_t i = 0; i < kernel_count; ++i) {
    const bool ok2 = outcome.completed[i] != 0;
    const bool ok4 = outcome.completed[kernel_count + i] != 0;
    table.AddRow({grid.KernelAt(i).id,
                  ok2 ? FormatFixed(runs[i].speedup, 2) : "quarantined",
                  ok4 ? FormatFixed(runs[kernel_count + i].speedup, 2)
                      : "quarantined"});
    if (ok2) {
      s2.push_back(runs[i].speedup);
    }
    if (ok4) {
      s4.push_back(runs[kernel_count + i].speedup);
    }
  }
  // Aggregates skip quarantined points; a column with no completed point
  // at all (every point quarantined) renders as "n/a" rather than
  // asserting on the empty set.
  const auto agg = [](const std::vector<double>& v,
                      double (*fn)(std::span<const double>)) {
    return v.empty() ? std::string("n/a") : FormatFixed(fn(v), 2);
  };
  table.AddSeparator();
  table.AddRow({"average", agg(s2, Mean), agg(s4, Mean)});
  table.AddRow({"min", agg(s2, Min), agg(s4, Min)});
  table.AddRow({"max", agg(s2, Max), agg(s4, Max)});

  std::printf("%s\n",
              table
                  .Render("Figure 12: speedup of fine-grained parallel code over "
                          "sequential code\n(paper: 2-core avg 1.32 in "
                          "[1.03, 1.76]; 4-core avg 2.05 in [0.90, 2.98])")
                  .c_str());
  std::printf("All runs verified bit-exact against the reference interpreter.\n");

  harness::BenchArtifact artifact;
  artifact.name = "fig12";
  for (std::size_t i = 0; i < grid_size; ++i) {
    if (!outcome.completed[i]) {
      continue;  // quarantined: recorded in the failures section instead
    }
    artifact.points.push_back(benchutil::MakePoint(
        benchutil::TimedRun{runs[i], wall[i]},
        {{"cores", std::to_string(grid.CoresAt(i))}}));
  }
  harness::AddFailurePoints(outcome, artifact);
  artifact.host["sweep_threads"] = threads;
  artifact.host["wall_seconds"] =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  benchutil::EmitArtifact(artifact);
  if (!trace_path.empty()) {
    trace_sink.WriteFile(trace_path);
    std::printf("trace written: %s (open at ui.perfetto.dev)\n",
                trace_path.c_str());
  }

  // --backend native: a second, serial pass that executes each kernel for
  // real on host threads and reports measured wall-clock speedup beside
  // the simulated number.  Serial on purpose — concurrent points would
  // contend for the very cores the pinned workers run on and corrupt the
  // timing.  Everything above this point is untouched by the flag.
  const compiler::BackendKind backend = compiler::ParseBackendKind(
      benchutil::FlagValue(argc, argv, "--backend", "sim"));
  if (backend == compiler::BackendKind::kNative) {
    harness::BenchArtifact native_artifact;
    native_artifact.name = "native";
    TextTable native_table(
        {"Kernel", "simulated speedup", "measured speedup", "verified"});
    bool all_verified = true;
    for (std::size_t i = 0; i < kernel_count; ++i) {
      kernels::ExperimentConfig experiment;
      experiment.cores = 4;
      experiment.backend = compiler::BackendKind::kNative;
      const benchutil::TimedRun timed =
          benchutil::TimedKernelRun(grid.KernelAt(i), experiment);
      const harness::KernelRun& run = timed.run;
      all_verified = all_verified && run.native_run && run.native_verified;
      native_table.AddRow(
          {grid.KernelAt(i).id, FormatFixed(run.speedup, 2),
           run.native_run ? FormatFixed(run.native_speedup, 2) : "n/a",
           run.native_run && run.native_verified ? "yes" : "NO"});
      harness::BenchArtifact::Point point = benchutil::MakePoint(
          timed, {{"backend", "native"}, {"cores", "4"}});
      point.host["native_seq_seconds"] = run.native_seq_seconds;
      point.host["native_par_seconds"] = run.native_par_seconds;
      point.host["native_wall_speedup"] = run.native_speedup;
      native_artifact.points.push_back(std::move(point));
    }
    std::printf("%s\n",
                native_table
                    .Render("Native backend: measured wall-clock speedup on "
                            "host threads vs simulated speedup\n(4 cores; "
                            "wall-clock numbers are host-dependent and "
                            "excluded from deterministic artifacts)")
                    .c_str());
    native_artifact.host["wall_seconds"] =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    benchutil::EmitArtifact(native_artifact);
    if (!all_verified) {
      std::fprintf(stderr, "native backend verification failed\n");
      return 1;
    }
    std::printf(
        "All native runs verified bit-exact against the reference "
        "interpreter.\n");
  }
  // --tuned: a third pass that runs the per-kernel autotuner over every
  // grid kernel and checks its never-worse contract against the 4-core
  // default by simulation.  Each AutotuneKernel call predicts the whole
  // space, simulates only the frontier (default always included), and
  // both speedups below are simulated numbers — so a row where "tuned"
  // beats "default" is a real, verifying simulation win, not a predictor
  // claim.  The default table and BENCH_fig12.json are untouched.
  if (benchutil::HasFlag(argc, argv, "--tuned")) {
    const harness::TuneSpace space;
    harness::BenchArtifact tuned_artifact;
    tuned_artifact.name = "fig12_tuned";
    TextTable tuned_table(
        {"Kernel", "default speedup", "tuned speedup", "chosen config"});
    bool never_worse = true;
    std::size_t frontier_total = 0;
    std::size_t enumerated_total = 0;
    for (std::size_t i = 0; i < kernel_count; ++i) {
      const kernels::SequoiaKernel& sk = grid.KernelAt(i);
      const ir::Kernel kernel = kernels::ParseSequoia(sk);
      harness::TuneOptions tune_options;
      tune_options.sweep_threads = threads;
      const harness::TuneResult result = harness::AutotuneKernel(
          kernel, kernels::SequoiaInit(sk), space, tune_options);
      never_worse = never_worse &&
                    result.best_speedup >= result.default_speedup;
      frontier_total += result.frontier_size;
      enumerated_total += result.enumerated;
      const harness::TunePoint& best = harness::BestPoint(result);
      tuned_table.AddRow({sk.id, FormatFixed(result.default_speedup, 2),
                          FormatFixed(result.best_speedup, 2),
                          harness::TunePointLabel(best)});
      harness::BenchArtifact::Point point;
      point.label = sk.id;
      point.params["config"] = harness::TunePointLabel(best);
      point.params["cores"] = std::to_string(best.cores);
      point.params["capacity"] = std::to_string(best.queue_capacity);
      point.params["speculation"] = best.speculation ? "1" : "0";
      point.params["merge"] = std::string(harness::MergeShapeName(best.merge));
      point.metrics["default_speedup"] = result.default_speedup;
      point.metrics["tuned_speedup"] = result.best_speedup;
      point.counters["enumerated"] = result.enumerated;
      point.counters["frontier"] = result.frontier_size;
      point.counters["simulated"] = result.simulated;
      tuned_artifact.points.push_back(std::move(point));
    }
    std::printf(
        "%s\n",
        tuned_table
            .Render("Autotuned configs vs the 4-core default (simulated; "
                    "chosen = best simulated frontier point)")
            .c_str());
    std::printf("frontier: simulated %zu of %zu enumerated points (%.0f%%)\n",
                frontier_total, enumerated_total,
                enumerated_total == 0
                    ? 0.0
                    : 100.0 * static_cast<double>(frontier_total) /
                          static_cast<double>(enumerated_total));
    tuned_artifact.host["wall_seconds"] =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    benchutil::EmitArtifact(tuned_artifact);
    if (!never_worse) {
      std::fprintf(stderr,
                   "autotuner chose a config slower than the default\n");
      return 1;
    }
    std::printf(
        "All tuned configs are at least as fast as the default "
        "(never-worse contract holds).\n");
  }
  return outcome.failures.size() <= failure_budget ? 0 : 1;
}
