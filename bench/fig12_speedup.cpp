// Figure 12: "Speedup of Fine-Grained Parallel Code Over Sequential Code".
//
// For each of the 18 Table-I kernels, runs the verifying pipeline with 2
// and 4 cores (queue length 20, transfer latency 5 — the Section V
// defaults) and prints the per-kernel speedups plus the averages the paper
// reports (2-core avg 1.32, range 1.03-1.76; 4-core avg 2.05, range
// 0.90-2.98).
//
// The full (kernel x cores) grid is fanned across host threads by the
// harness sweep engine (FGPAR_SWEEP_THREADS overrides the worker count);
// the table and the deterministic portion of BENCH_fig12.json are
// byte-identical for any thread count.  `--smoke` runs a 3-kernel subset
// for CI.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "kernels/experiments.hpp"
#include "support/stats.hpp"
#include "support/str.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace fgpar;

  const bool smoke = benchutil::HasFlag(argc, argv, "--smoke");
  const auto start = std::chrono::steady_clock::now();
  const std::vector<kernels::SequoiaKernel>& all = kernels::SequoiaKernels();
  const std::size_t kernel_count =
      smoke ? std::min<std::size_t>(3, all.size()) : all.size();
  const std::vector<int> core_counts = {2, 4};
  const int threads = harness::ResolveSweepThreads(0);

  // One grid point per (cores, kernel) pair, swept in one pool so a slow
  // kernel at one core count overlaps with everything else.
  const std::size_t grid = core_counts.size() * kernel_count;
  const auto timed = harness::RunSweep(grid, threads, [&](std::size_t i) {
    kernels::ExperimentConfig config;
    config.cores = core_counts[i / kernel_count];
    config.sweep_threads = 1;  // the grid is already parallel
    return benchutil::TimedKernelRun(all[i % kernel_count], config);
  });
  const benchutil::TimedRun* runs2 = &timed[0];
  const benchutil::TimedRun* runs4 = &timed[kernel_count];

  TextTable table({"Kernel", "2-core speedup", "4-core speedup"});
  std::vector<double> s2, s4;
  for (std::size_t i = 0; i < kernel_count; ++i) {
    table.AddRow({runs2[i].run.kernel_name,
                  FormatFixed(runs2[i].run.speedup, 2),
                  FormatFixed(runs4[i].run.speedup, 2)});
    s2.push_back(runs2[i].run.speedup);
    s4.push_back(runs4[i].run.speedup);
  }
  table.AddSeparator();
  table.AddRow({"average", FormatFixed(Mean(s2), 2), FormatFixed(Mean(s4), 2)});
  table.AddRow({"min", FormatFixed(Min(s2), 2), FormatFixed(Min(s4), 2)});
  table.AddRow({"max", FormatFixed(Max(s2), 2), FormatFixed(Max(s4), 2)});

  std::printf("%s\n",
              table
                  .Render("Figure 12: speedup of fine-grained parallel code over "
                          "sequential code\n(paper: 2-core avg 1.32 in "
                          "[1.03, 1.76]; 4-core avg 2.05 in [0.90, 2.98])")
                  .c_str());
  std::printf("All runs verified bit-exact against the reference interpreter.\n");

  harness::BenchArtifact artifact;
  artifact.name = "fig12";
  for (std::size_t i = 0; i < grid; ++i) {
    artifact.points.push_back(benchutil::MakePoint(
        timed[i], {{"cores", std::to_string(core_counts[i / kernel_count])}}));
  }
  artifact.host["sweep_threads"] = threads;
  artifact.host["wall_seconds"] =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  benchutil::EmitArtifact(artifact);
  return 0;
}
