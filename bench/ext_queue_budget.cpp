// Extension: partitioning under a hardware queue budget.
//
// Section II of the paper: "the hardware can be configured to [provide]
// queues to explicitly provide all-to-all communication only for cores
// within a group. ... When the number of available queues is limited, we
// can constrain the partitioning such that the generated code uses at most
// a specific number of queues."
//
// This bench sweeps the budget of directed sender->receiver channels
// available to the compiler (4 cores have 12 such channels all-to-all) and
// reports the average speedup and the channels actually used.  With a
// tighter budget the compiler falls back to fewer partitions or cheaper
// communication shapes, trading speedup for hardware.
//
// --backend native: every run additionally executes for real on host
// threads (SPSC rings in place of simulated queues — the plan the budget
// constrained is the plan that runs), and a second table reports the
// average measured wall-clock speedup per budget.  Wall-clock numbers
// live only in BENCH_queue_budget_native.json host fields; on a
// single-CPU host the pinned workers time-share one core and the measured
// column honestly collapses below 1.  The default table is byte-identical
// with or without the flag (the simulated measurement always happens
// first, unchanged).
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "compiler/backend.hpp"
#include "kernels/experiments.hpp"
#include "support/stats.hpp"
#include "support/str.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace fgpar;

  const auto start = std::chrono::steady_clock::now();
  const compiler::BackendKind backend = compiler::ParseBackendKind(
      benchutil::FlagValue(argc, argv, "--backend", "sim"));
  const bool native = backend == compiler::BackendKind::kNative;

  const std::vector<int> budgets = {0, 12, 8, 6, 4, 2};  // 0 = unlimited
  TextTable table({"Channel budget", "avg speedup", "max queues used",
                   "kernels on >2 partitions"});
  TextTable native_table(
      {"Channel budget", "avg simulated", "avg measured", "verified"});
  harness::BenchArtifact native_artifact;
  native_artifact.name = "queue_budget_native";
  bool all_verified = true;
  for (int budget : budgets) {
    std::vector<double> speedups;
    std::vector<double> measured;
    int max_queues = 0;
    int multi = 0;
    int verified = 0;
    for (const kernels::SequoiaKernel& spec : kernels::SequoiaKernels()) {
      kernels::ExperimentConfig config;
      config.cores = 4;
      config.backend = backend;
      harness::RunConfig run_config = kernels::ToRunConfig(config);
      run_config.compile.max_channels = budget;
      const ir::Kernel kernel = kernels::ParseSequoia(spec);
      harness::KernelRunner runner(kernel, kernels::SequoiaInit(spec));
      const auto point_start = std::chrono::steady_clock::now();
      const harness::KernelRun run = runner.Run(run_config);
      speedups.push_back(run.speedup);
      max_queues = std::max(max_queues, run.queues_used);
      multi += run.cores_used > 2 ? 1 : 0;
      if (native) {
        all_verified = all_verified && run.native_run && run.native_verified;
        verified += run.native_run && run.native_verified ? 1 : 0;
        if (run.native_run) {
          measured.push_back(run.native_speedup);
        }
        benchutil::TimedRun timed;
        timed.run = run;
        timed.wall_seconds = std::chrono::duration<double>(
                                 std::chrono::steady_clock::now() - point_start)
                                 .count();
        harness::BenchArtifact::Point point = benchutil::MakePoint(
            timed, {{"backend", "native"},
                    {"cores", "4"},
                    {"channel_budget", std::to_string(budget)}});
        point.host["native_seq_seconds"] = run.native_seq_seconds;
        point.host["native_par_seconds"] = run.native_par_seconds;
        point.host["native_wall_speedup"] = run.native_speedup;
        native_artifact.points.push_back(std::move(point));
      }
    }
    const std::string budget_label =
        budget == 0 ? "unlimited" : std::to_string(budget);
    table.AddRow({budget_label, FormatFixed(Mean(speedups), 2),
                  std::to_string(max_queues), std::to_string(multi)});
    if (native) {
      native_table.AddRow(
          {budget_label, FormatFixed(Mean(speedups), 2),
           measured.empty() ? "n/a" : FormatFixed(Mean(measured), 2),
           std::to_string(verified) + "/" +
               std::to_string(kernels::SequoiaKernels().size())});
    }
  }
  std::printf("%s\n",
              table
                  .Render("Extension: average 4-core speedup vs directed-"
                          "channel budget\n(Section II's queue-constrained "
                          "partitioning; 4 cores offer 12 channels "
                          "all-to-all)")
                  .c_str());
  if (native) {
    std::printf("%s\n",
                native_table
                    .Render("Native backend: average measured wall-clock "
                            "speedup per channel budget\n(wall-clock numbers "
                            "are host-dependent and excluded from "
                            "deterministic artifacts)")
                    .c_str());
    native_artifact.host["wall_seconds"] =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    benchutil::EmitArtifact(native_artifact);
    if (!all_verified) {
      std::fprintf(stderr, "native backend verification failed\n");
      return 1;
    }
    std::printf(
        "All native runs verified bit-exact against the reference "
        "interpreter.\n");
  }
  return 0;
}
