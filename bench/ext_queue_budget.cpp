// Extension: partitioning under a hardware queue budget.
//
// Section II of the paper: "the hardware can be configured to [provide]
// queues to explicitly provide all-to-all communication only for cores
// within a group. ... When the number of available queues is limited, we
// can constrain the partitioning such that the generated code uses at most
// a specific number of queues."
//
// This bench sweeps the budget of directed sender->receiver channels
// available to the compiler (4 cores have 12 such channels all-to-all) and
// reports the average speedup and the channels actually used.  With a
// tighter budget the compiler falls back to fewer partitions or cheaper
// communication shapes, trading speedup for hardware.
#include <cstdio>
#include <vector>

#include "kernels/experiments.hpp"
#include "support/stats.hpp"
#include "support/str.hpp"
#include "support/table.hpp"

int main() {
  using namespace fgpar;

  const std::vector<int> budgets = {0, 12, 8, 6, 4, 2};  // 0 = unlimited
  TextTable table({"Channel budget", "avg speedup", "max queues used",
                   "kernels on >2 partitions"});
  for (int budget : budgets) {
    std::vector<double> speedups;
    int max_queues = 0;
    int multi = 0;
    for (const kernels::SequoiaKernel& spec : kernels::SequoiaKernels()) {
      kernels::ExperimentConfig config;
      config.cores = 4;
      harness::RunConfig run_config = kernels::ToRunConfig(config);
      run_config.compile.max_channels = budget;
      const ir::Kernel kernel = kernels::ParseSequoia(spec);
      harness::KernelRunner runner(kernel, kernels::SequoiaInit(spec));
      const harness::KernelRun run = runner.Run(run_config);
      speedups.push_back(run.speedup);
      max_queues = std::max(max_queues, run.queues_used);
      multi += run.cores_used > 2 ? 1 : 0;
    }
    table.AddRow({budget == 0 ? "unlimited" : std::to_string(budget),
                  FormatFixed(Mean(speedups), 2), std::to_string(max_queues),
                  std::to_string(multi)});
  }
  std::printf("%s\n",
              table
                  .Render("Extension: average 4-core speedup vs directed-"
                          "channel budget\n(Section II's queue-constrained "
                          "partitioning; 4 cores offer 12 channels "
                          "all-to-all)")
                  .c_str());
  return 0;
}
