// Extension ablation: multi-version compilation with dynamic feedback.
//
// Section III-I.1 of the paper proposes (but does not evaluate) letting
// the compiler "generate multiple code versions for regions with
// potential, and rely on a runtime system with dynamic feedback to decide
// which code version to execute."  This repo implements that alternative:
// every candidate partitioning (both merge shapes at every partition count
// up to the core budget) is compiled and timed on a training run, and the
// fastest version wins.  This bench compares the paper's static-heuristic
// compiler against the feedback-directed one on all 18 kernels, 4 cores.
#include <cstdio>
#include <vector>

#include "kernels/experiments.hpp"
#include "support/stats.hpp"
#include "support/str.hpp"
#include "support/table.hpp"

int main() {
  using namespace fgpar;

  kernels::ExperimentConfig static_config;
  static_config.cores = 4;
  kernels::ExperimentConfig tuned_config = static_config;
  tuned_config.tune_by_simulation = true;

  const auto runs_static = kernels::RunAllKernels(static_config);
  const auto runs_tuned = kernels::RunAllKernels(tuned_config);

  TextTable table({"Kernel", "static heuristics", "dynamic feedback", "delta"});
  std::vector<double> s, t;
  int improved = 0;
  for (std::size_t i = 0; i < runs_static.size(); ++i) {
    const double ss = runs_static[i].speedup;
    const double st = runs_tuned[i].speedup;
    s.push_back(ss);
    t.push_back(st);
    improved += st > ss * 1.01 ? 1 : 0;
    table.AddRow({runs_static[i].kernel_name, FormatFixed(ss, 2),
                  FormatFixed(st, 2),
                  (st >= ss ? "+" : "") +
                      FormatFixed((st / ss - 1.0) * 100.0, 1) + "%"});
  }
  table.AddSeparator();
  table.AddRow({"average", FormatFixed(Mean(s), 2), FormatFixed(Mean(t), 2),
                (Mean(t) >= Mean(s) ? "+" : "") +
                    FormatFixed((Mean(t) / Mean(s) - 1.0) * 100.0, 1) + "%"});
  std::printf("%s\n",
              table
                  .Render("Extension: static heuristics vs multi-version "
                          "compilation with dynamic feedback\n(the Section "
                          "III-I.1 alternative the paper proposes), 4 cores")
                  .c_str());
  std::printf("Kernels improved by dynamic feedback: %d\n", improved);
  return 0;
}
