// Table III: per-kernel partitioning statistics for the 4-core case —
// initial fibers, data dependences between fibers, load balance (max/min
// compute ops per thread), communication operations inserted, distinct
// sender-receiver queues actually used, and speedup.
//
// All numbers come from the run's named counter registry
// (KernelRunTelemetry) rather than raw struct fields: the table reads the
// same registry the bench artifacts serialize, including the
// diagnostic-only entries (initial_fibers, data_deps) that never enter
// the fgpar-bench-v1 point schema.
#include <cstdio>

#include "harness/runner.hpp"
#include "kernels/experiments.hpp"
#include "support/str.hpp"
#include "support/table.hpp"

int main() {
  using namespace fgpar;

  kernels::ExperimentConfig config;
  config.cores = 4;
  const auto runs = kernels::RunAllKernels(config);

  TextTable table({"Kernel", "Initial Fibers", "Data Deps", "Load Bal", "Com Ops",
                   "Num Ques", "Spdup"});
  for (const harness::KernelRun& run : runs) {
    const telemetry::CounterRegistry stats = harness::KernelRunTelemetry(run);
    table.AddRow({run.kernel_name, std::to_string(stats.count("initial_fibers")),
                  std::to_string(stats.count("data_deps")),
                  FormatFixed(stats.metric("load_balance"), 2),
                  std::to_string(stats.count("com_ops")),
                  std::to_string(stats.count("queues_used")),
                  FormatFixed(stats.metric("speedup"), 2)});
  }
  std::printf("%s\n",
              table
                  .Render("Table III: kernel loop statistics, 4 cores\n"
                          "(structure should mirror the paper: umt2k-2/3 show "
                          "extreme load imbalance, umt2k-6 no speedup,\n"
                          "queue counts stay small — paper max was 8)")
                  .c_str());
  return 0;
}
