// Table III: per-kernel partitioning statistics for the 4-core case —
// initial fibers, data dependences between fibers, load balance (max/min
// compute ops per thread), communication operations inserted, distinct
// sender-receiver queues actually used, and speedup.
#include <cstdio>

#include "kernels/experiments.hpp"
#include "support/str.hpp"
#include "support/table.hpp"

int main() {
  using namespace fgpar;

  kernels::ExperimentConfig config;
  config.cores = 4;
  const auto runs = kernels::RunAllKernels(config);

  TextTable table({"Kernel", "Initial Fibers", "Data Deps", "Load Bal", "Com Ops",
                   "Num Ques", "Spdup"});
  for (const harness::KernelRun& run : runs) {
    table.AddRow({run.kernel_name, std::to_string(run.initial_fibers),
                  std::to_string(run.data_deps), FormatFixed(run.load_balance, 2),
                  std::to_string(run.com_ops), std::to_string(run.queues_used),
                  FormatFixed(run.speedup, 2)});
  }
  std::printf("%s\n",
              table
                  .Render("Table III: kernel loop statistics, 4 cores\n"
                          "(structure should mirror the paper: umt2k-2/3 show "
                          "extreme load imbalance, umt2k-6 no speedup,\n"
                          "queue counts stay small — paper max was 8)")
                  .c_str());
  return 0;
}
