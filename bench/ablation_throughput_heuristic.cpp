// Section III-B ablation: the throughput heuristic.
//
// "This heuristic constrains partitioning to allow only unidirectional
// dependences between any two nodes in the final graph. ... In our
// experiments, the impact of this heuristic on performance was mixed, with
// 3 of 18 kernels showing performance improvement, and 6 of 18 kernels
// showing performance degradation, and an overall slowdown of 11% on
// average."
#include <cstdio>
#include <vector>

#include "kernels/experiments.hpp"
#include "support/stats.hpp"
#include "support/str.hpp"
#include "support/table.hpp"

int main() {
  using namespace fgpar;

  kernels::ExperimentConfig base;
  base.cores = 4;
  kernels::ExperimentConfig throughput = base;
  throughput.throughput_heuristic = true;

  const auto runs_base = kernels::RunAllKernels(base);
  const auto runs_tp = kernels::RunAllKernels(throughput);

  TextTable table({"Kernel", "base", "throughput", "delta"});
  std::vector<double> b, t;
  int better = 0;
  int worse = 0;
  for (std::size_t i = 0; i < runs_base.size(); ++i) {
    const double sb = runs_base[i].speedup;
    const double st = runs_tp[i].speedup;
    b.push_back(sb);
    t.push_back(st);
    better += st > sb * 1.02 ? 1 : 0;
    worse += st < sb * 0.98 ? 1 : 0;
    table.AddRow({runs_base[i].kernel_name, FormatFixed(sb, 2), FormatFixed(st, 2),
                  (st >= sb ? "+" : "") +
                      FormatFixed((st / sb - 1.0) * 100.0, 1) + "%"});
  }
  table.AddSeparator();
  table.AddRow({"average", FormatFixed(Mean(b), 2), FormatFixed(Mean(t), 2),
                (Mean(t) >= Mean(b) ? "+" : "") +
                    FormatFixed((Mean(t) / Mean(b) - 1.0) * 100.0, 1) + "%"});

  std::printf("%s\n",
              table
                  .Render("Section III-B ablation: acyclic 'throughput' "
                          "heuristic, 4 cores\n(paper: 3 kernels better, 6 "
                          "worse, 11% average slowdown)")
                  .c_str());
  std::printf("better: %d, worse: %d\n", better, worse);
  return 0;
}
