// Section III-B ablation: the individual merge heuristics.
//
// "We have experimented with many different heuristics, but the ones that
// worked best are: [dependence edges, smaller compute time, source
// proximity]."  This bench disables each of the three affinity terms in
// turn (and tries multi-pair merging) and reports the average 4-core
// speedup, isolating each heuristic's contribution.  Run with the static
// compiler so the heuristics, not the dynamic tuner, decide.
#include <cstdio>
#include <vector>

#include "kernels/experiments.hpp"
#include "support/stats.hpp"
#include "support/str.hpp"
#include "support/table.hpp"

namespace {

double AverageSpeedup(const std::function<void(fgpar::harness::RunConfig&)>& tweak) {
  using namespace fgpar;
  std::vector<double> speedups;
  for (const kernels::SequoiaKernel& spec : kernels::SequoiaKernels()) {
    kernels::ExperimentConfig config;
    config.cores = 4;
    harness::RunConfig run_config = kernels::ToRunConfig(config);
    tweak(run_config);
    const ir::Kernel kernel = kernels::ParseSequoia(spec);
    harness::KernelRunner runner(kernel, kernels::SequoiaInit(spec));
    speedups.push_back(runner.Run(run_config).speedup);
  }
  return Mean(speedups);
}

}  // namespace

int main() {
  using namespace fgpar;

  struct Variant {
    const char* label;
    std::function<void(harness::RunConfig&)> tweak;
  };
  const std::vector<Variant> variants = {
      {"all heuristics (baseline)", [](harness::RunConfig&) {}},
      {"no dependence-edge term",
       [](harness::RunConfig& c) { c.compile.w_deps = 0.0; }},
      {"no compute-time term",
       [](harness::RunConfig& c) { c.compile.w_cost = 0.0; }},
      {"no source-proximity term",
       [](harness::RunConfig& c) { c.compile.w_prox = 0.0; }},
      {"no profile feedback",
       [](harness::RunConfig& c) { c.compile.use_profile = false; }},
      {"multi-pair merging",
       [](harness::RunConfig& c) { c.compile.multi_pair_merge = true; }},
  };

  TextTable table({"Variant", "avg 4-core speedup"});
  for (const Variant& variant : variants) {
    table.AddRow({variant.label, FormatFixed(AverageSpeedup(variant.tweak), 2)});
  }
  std::printf("%s\n",
              table
                  .Render("Section III-B ablation: contribution of each merge "
                          "heuristic (static compiler, 4 cores)\n(the paper "
                          "reports these three heuristics 'worked best' but "
                          "gives no per-heuristic numbers)")
                  .c_str());
  return 0;
}
