// Predictor cross-validation: the analytic latency-hiding model vs the
// simulator, across the 18 Table-I kernels plus a generated fuzz corpus.
//
// For every kernel the bench computes the predicted 4-core speedup
// (model::PredictKernel — rewrite front half + static merge, no
// simulation) and the measured speedup (the verifying KernelRunner), then
// reports Spearman rank correlation and mean relative error per corpus.
// The predictor's job is candidate *ranking*, so rank correlation is the
// headline number; the relative error says how honest the magnitudes are.
//
// Flags:
//   --fuzz N        generated-kernel corpus size (default 50; 0 disables)
//   --floor FILE    JSON floor file ({"spearman_sequoia": ..,
//                   "spearman_fuzz": ..}); exits 1 when either measured
//                   correlation drops below its floor — the CI gate
//
// Artifact: BENCH_predictor.json — one point per kernel with
// predicted_speedup / rel_error beside the standard measured fields, plus
// a "summary" point carrying the correlations.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "harness/random_kernel.hpp"
#include "kernels/experiments.hpp"
#include "model/analytic.hpp"
#include "support/error.hpp"
#include "support/json.hpp"
#include "support/stats.hpp"
#include "support/str.hpp"
#include "support/table.hpp"

namespace {

using namespace fgpar;

struct ValidationPoint {
  std::string name;
  std::string group;  // "sequoia" | "fuzz"
  bool ok = false;    // prediction + measurement both succeeded
  std::string note;
  double predicted = 0.0;
  model::Prediction prediction;
  harness::KernelRun run;
  double wall_seconds = 0.0;
};

ValidationPoint ValidateKernel(const std::string& name,
                               const std::string& group,
                               const ir::Kernel& kernel,
                               const harness::WorkloadInit& init) {
  ValidationPoint point;
  point.name = name;
  point.group = group;
  const auto start = std::chrono::steady_clock::now();
  try {
    const kernels::ExperimentConfig experiment;  // Section V defaults
    harness::RunConfig config = kernels::ToRunConfig(experiment);
    harness::KernelRunner runner(kernel, init);
    point.prediction = runner.Predict(config);
    point.predicted = point.prediction.speedup;
    point.run = runner.Run(config);
    point.run.kernel_name = name;
    point.ok = true;
  } catch (const Error& e) {
    point.note = e.what();
  }
  point.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return point;
}

/// Correlation + error summary over one corpus (the `ok` points only).
struct CorpusSummary {
  std::size_t total = 0;
  std::size_t usable = 0;
  double spearman = 0.0;
  double mean_rel_error = 0.0;
};

CorpusSummary Summarize(const std::vector<ValidationPoint>& points,
                        const std::string& group) {
  CorpusSummary summary;
  std::vector<double> predicted;
  std::vector<double> measured;
  double rel_error_sum = 0.0;
  for (const ValidationPoint& point : points) {
    if (point.group != group) {
      continue;
    }
    ++summary.total;
    if (!point.ok || point.run.speedup <= 0.0) {
      continue;
    }
    ++summary.usable;
    predicted.push_back(point.predicted);
    measured.push_back(point.run.speedup);
    rel_error_sum +=
        std::abs(point.predicted - point.run.speedup) / point.run.speedup;
  }
  if (summary.usable >= 2) {
    summary.spearman = SpearmanCorrelation(predicted, measured);
  }
  if (summary.usable > 0) {
    summary.mean_rel_error =
        rel_error_sum / static_cast<double>(summary.usable);
  }
  return summary;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fgpar;

  const auto start = std::chrono::steady_clock::now();
  const long long fuzz_count = benchutil::FlagInt(argc, argv, "--fuzz", 50);
  const std::string floor_path = benchutil::FlagValue(argc, argv, "--floor");
  const int threads = harness::ResolveSweepThreads(0);

  const std::vector<kernels::SequoiaKernel>& corpus =
      kernels::SequoiaKernels();
  const std::size_t grid =
      corpus.size() + static_cast<std::size_t>(fuzz_count);
  const std::vector<ValidationPoint> points =
      harness::RunSweep(grid, threads, [&](std::size_t i) {
        if (i < corpus.size()) {
          const kernels::SequoiaKernel& kernel = corpus[i];
          return ValidateKernel(kernel.id, "sequoia",
                                kernels::ParseSequoia(kernel),
                                kernels::SequoiaInit(kernel));
        }
        // The fuzz corpus: structurally varied generated kernels, seeded
        // deterministically so every run validates the same programs.
        const std::uint64_t seed =
            0xF00D + static_cast<std::uint64_t>(i - corpus.size());
        harness::RandomKernelCase random = harness::GenerateRandomKernel(seed);
        return ValidateKernel("fuzz_" + std::to_string(seed), "fuzz",
                              random.kernel, random.init);
      });

  const CorpusSummary sequoia = Summarize(points, "sequoia");
  const CorpusSummary fuzz = Summarize(points, "fuzz");

  TextTable table({"Kernel", "Predicted", "Measured", "RelErr"});
  for (const ValidationPoint& point : points) {
    if (point.group != "sequoia") {
      continue;
    }
    table.AddRow({point.name, FormatFixed(point.predicted, 2),
                  FormatFixed(point.run.speedup, 2),
                  point.run.speedup > 0.0
                      ? FormatFixed(std::abs(point.predicted -
                                             point.run.speedup) /
                                        point.run.speedup,
                                    2)
                      : "-"});
  }
  table.AddSeparator();
  table.AddRow({"spearman (sequoia)", FormatFixed(sequoia.spearman, 3), "",
                FormatFixed(sequoia.mean_rel_error, 2)});
  table.AddRow({"spearman (fuzz, n=" + std::to_string(fuzz.usable) + ")",
                FormatFixed(fuzz.spearman, 3), "",
                FormatFixed(fuzz.mean_rel_error, 2)});
  std::printf("%s\n",
              table
                  .Render("Predictor cross-validation: analytic model vs "
                          "simulated 4-core speedup")
                  .c_str());

  harness::BenchArtifact artifact;
  artifact.name = "predictor";
  for (const ValidationPoint& point : points) {
    harness::BenchArtifact::Point p;
    p.label = point.name + " group=" + point.group;
    p.params["kernel"] = point.name;
    p.params["group"] = point.group;
    p.params["cores"] = "4";
    if (point.ok) {
      harness::AddKernelRunFields(point.run, p);
      p.metrics["predicted_speedup"] = point.predicted;
      p.metrics["predicted_seq_cost"] = point.prediction.sequential_cost;
      p.metrics["predicted_par_cost"] = point.prediction.parallel_cost;
      const analysis::PartitionFeatures& f = point.prediction.features;
      p.metrics["feature_partitions"] = static_cast<double>(f.partitions);
      p.metrics["feature_balance_ratio"] = f.balance_ratio;
      p.metrics["feature_transfers"] = static_cast<double>(f.transfers);
      p.metrics["feature_bottleneck_cost"] = f.bottleneck_cost;
      p.metrics["feature_critical_path"] = f.critical_path;
      p.metrics["feature_cycle_penalty"] = f.cycle_penalty;
      if (point.run.speedup > 0.0) {
        p.metrics["rel_error"] =
            std::abs(point.predicted - point.run.speedup) / point.run.speedup;
      }
    } else {
      p.params["error"] = point.note;
    }
    p.host["wall_seconds"] = point.wall_seconds;
    artifact.points.push_back(std::move(p));
  }
  harness::BenchArtifact::Point summary;
  summary.label = "summary";
  summary.params["kind"] = "summary";
  summary.metrics["spearman_sequoia"] = sequoia.spearman;
  summary.metrics["spearman_fuzz"] = fuzz.spearman;
  summary.metrics["mean_rel_error_sequoia"] = sequoia.mean_rel_error;
  summary.metrics["mean_rel_error_fuzz"] = fuzz.mean_rel_error;
  summary.counters["usable_sequoia"] = sequoia.usable;
  summary.counters["usable_fuzz"] = fuzz.usable;
  artifact.points.push_back(std::move(summary));
  artifact.host["sweep_threads"] = threads;
  artifact.host["wall_seconds"] =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  benchutil::EmitArtifact(artifact);

  // ---- the CI gate: correlations must clear the checked-in floor ----
  if (!floor_path.empty()) {
    std::ifstream in(floor_path);
    if (!in) {
      std::fprintf(stderr, "cannot open floor file %s\n", floor_path.c_str());
      return 1;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    const JsonValue floors = ParseJson(buffer.str());
    const double sequoia_floor = floors.Get("spearman_sequoia").AsDouble();
    const double fuzz_floor = floors.Get("spearman_fuzz").AsDouble();
    if (sequoia.spearman < sequoia_floor || fuzz.spearman < fuzz_floor) {
      std::fprintf(stderr,
                   "predictor floor violated: sequoia %.3f (floor %.3f), "
                   "fuzz %.3f (floor %.3f)\n",
                   sequoia.spearman, sequoia_floor, fuzz.spearman, fuzz_floor);
      return 1;
    }
    std::fprintf(stderr,
                 "predictor floor OK: sequoia %.3f >= %.3f, fuzz %.3f >= "
                 "%.3f\n",
                 sequoia.spearman, sequoia_floor, fuzz.spearman, fuzz_floor);
  }
  return 0;
}
