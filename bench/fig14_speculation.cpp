// Figure 14: effect of the Section III-H control-flow speculation
// transformation on the 4-core speedups.
//
// Paper: "This optimization improves the performance of eight kernels,
// resulting in an overall increase in performance of about 28%, with the
// average speedup improving from 2.05 to 2.33."
//
// Both configurations of every kernel run through one host-parallel sweep;
// BENCH_fig14.json records the full grid.
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "kernels/experiments.hpp"
#include "support/stats.hpp"
#include "support/str.hpp"
#include "support/table.hpp"

int main() {
  using namespace fgpar;

  const auto start = std::chrono::steady_clock::now();
  const std::vector<kernels::SequoiaKernel>& all = kernels::SequoiaKernels();
  const std::size_t kernel_count = all.size();
  const int threads = harness::ResolveSweepThreads(0);

  const std::size_t grid = 2 * kernel_count;
  const auto timed = harness::RunSweep(grid, threads, [&](std::size_t i) {
    kernels::ExperimentConfig config;
    config.cores = 4;
    config.speculation = i >= kernel_count;
    return benchutil::TimedKernelRun(all[i % kernel_count], config);
  });
  const benchutil::TimedRun* runs_off = &timed[0];
  const benchutil::TimedRun* runs_on = &timed[kernel_count];

  TextTable table({"Kernel", "base", "speculation", "delta"});
  std::vector<double> base, spec;
  int improved = 0;
  for (std::size_t i = 0; i < kernel_count; ++i) {
    const double b = runs_off[i].run.speedup;
    const double s = runs_on[i].run.speedup;
    base.push_back(b);
    spec.push_back(s);
    improved += s > b * 1.01 ? 1 : 0;
    table.AddRow({runs_off[i].run.kernel_name, FormatFixed(b, 2),
                  FormatFixed(s, 2),
                  (s >= b ? "+" : "") + FormatFixed((s / b - 1.0) * 100.0, 1) + "%"});
  }
  table.AddSeparator();
  table.AddRow({"average", FormatFixed(Mean(base), 2), FormatFixed(Mean(spec), 2),
                (Mean(spec) >= Mean(base) ? "+" : "") +
                    FormatFixed((Mean(spec) / Mean(base) - 1.0) * 100.0, 1) + "%"});

  std::printf("%s\n",
              table
                  .Render("Figure 14: effect of control-flow speculation, 4 "
                          "cores\n(paper: 8 kernels improve, average 2.05 -> "
                          "2.33)")
                  .c_str());
  std::printf("Kernels improved by speculation: %d\n", improved);

  harness::BenchArtifact artifact;
  artifact.name = "fig14";
  for (std::size_t i = 0; i < grid; ++i) {
    artifact.points.push_back(benchutil::MakePoint(
        timed[i], {{"cores", "4"},
                   {"speculation", i >= kernel_count ? "on" : "off"}}));
  }
  artifact.host["sweep_threads"] = threads;
  artifact.host["wall_seconds"] =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  benchutil::EmitArtifact(artifact);
  return 0;
}
