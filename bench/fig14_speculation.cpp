// Figure 14: effect of the Section III-H control-flow speculation
// transformation on the 4-core speedups.
//
// Paper: "This optimization improves the performance of eight kernels,
// resulting in an overall increase in performance of about 28%, with the
// average speedup improving from 2.05 to 2.33."
#include <cstdio>
#include <vector>

#include "kernels/experiments.hpp"
#include "support/stats.hpp"
#include "support/str.hpp"
#include "support/table.hpp"

int main() {
  using namespace fgpar;

  kernels::ExperimentConfig off;
  off.cores = 4;
  kernels::ExperimentConfig on = off;
  on.speculation = true;

  const auto runs_off = kernels::RunAllKernels(off);
  const auto runs_on = kernels::RunAllKernels(on);

  TextTable table({"Kernel", "base", "speculation", "delta"});
  std::vector<double> base, spec;
  int improved = 0;
  for (std::size_t i = 0; i < runs_off.size(); ++i) {
    const double b = runs_off[i].speedup;
    const double s = runs_on[i].speedup;
    base.push_back(b);
    spec.push_back(s);
    improved += s > b * 1.01 ? 1 : 0;
    table.AddRow({runs_off[i].kernel_name, FormatFixed(b, 2), FormatFixed(s, 2),
                  (s >= b ? "+" : "") + FormatFixed((s / b - 1.0) * 100.0, 1) + "%"});
  }
  table.AddSeparator();
  table.AddRow({"average", FormatFixed(Mean(base), 2), FormatFixed(Mean(spec), 2),
                (Mean(spec) >= Mean(base) ? "+" : "") +
                    FormatFixed((Mean(spec) / Mean(base) - 1.0) * 100.0, 1) + "%"});

  std::printf("%s\n",
              table
                  .Render("Figure 14: effect of control-flow speculation, 4 "
                          "cores\n(paper: 8 kernels improve, average 2.05 -> "
                          "2.33)")
                  .c_str());
  std::printf("Kernels improved by speculation: %d\n", improved);
  return 0;
}
