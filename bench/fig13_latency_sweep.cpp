// Figure 13 (plus the text's 100-cycle data point): sensitivity of the
// 4-core speedups to the queue transfer latency.
//
// Paper: at 5 cycles the average speedup is 2.05; at 20 cycles it drops to
// 1.85 (four kernels lose their speedup); at 50 cycles to 1.36 (six kernels
// below 1); at 100 cycles there is no speedup on average and only 2 of 18
// kernels still gain.  "The technique is inherently sensitive to
// communication latencies."
//
// The (kernel x latency) grid runs through the harness sweep engine; the
// table and the deterministic portion of BENCH_fig13.json are independent
// of the host thread count.
#include <chrono>
#include <cstdio>
#include <map>
#include <vector>

#include "bench_common.hpp"
#include "kernels/experiments.hpp"
#include "support/stats.hpp"
#include "support/str.hpp"
#include "support/table.hpp"

int main() {
  using namespace fgpar;

  const auto start = std::chrono::steady_clock::now();
  const std::vector<int> latencies = {5, 20, 50, 100};
  const std::vector<kernels::SequoiaKernel>& all = kernels::SequoiaKernels();
  const std::size_t kernel_count = all.size();
  const int threads = harness::ResolveSweepThreads(0);

  const std::size_t grid = latencies.size() * kernel_count;
  const auto timed = harness::RunSweep(grid, threads, [&](std::size_t i) {
    kernels::ExperimentConfig config;
    config.cores = 4;
    config.transfer_latency = latencies[i / kernel_count];
    return benchutil::TimedKernelRun(all[i % kernel_count], config);
  });
  std::map<int, const benchutil::TimedRun*> by_latency;
  for (std::size_t l = 0; l < latencies.size(); ++l) {
    by_latency[latencies[l]] = &timed[l * kernel_count];
  }

  std::vector<std::string> header = {"Kernel"};
  for (int latency : latencies) {
    header.push_back(std::to_string(latency) + " cyc");
  }
  TextTable table(header);
  for (std::size_t i = 0; i < kernel_count; ++i) {
    std::vector<std::string> row = {by_latency[5][i].run.kernel_name};
    for (int latency : latencies) {
      row.push_back(FormatFixed(by_latency[latency][i].run.speedup, 2));
    }
    table.AddRow(row);
  }
  table.AddSeparator();
  std::vector<std::string> avg_row = {"average"};
  std::vector<std::string> losers_row = {"kernels <= 1.0"};
  for (int latency : latencies) {
    std::vector<double> speedups;
    int losers = 0;
    for (std::size_t i = 0; i < kernel_count; ++i) {
      const double s = by_latency[latency][i].run.speedup;
      speedups.push_back(s);
      losers += s <= 1.0 ? 1 : 0;
    }
    avg_row.push_back(FormatFixed(Mean(speedups), 2));
    losers_row.push_back(std::to_string(losers));
  }
  table.AddRow(avg_row);
  table.AddRow(losers_row);

  std::printf("%s\n",
              table
                  .Render("Figure 13: 4-core speedup vs queue transfer latency\n"
                          "(paper averages: 2.05 @5, 1.85 @20, 1.36 @50, ~1.0 "
                          "@100; losers 1/4/6/16)")
                  .c_str());

  harness::BenchArtifact artifact;
  artifact.name = "fig13";
  for (std::size_t i = 0; i < grid; ++i) {
    artifact.points.push_back(benchutil::MakePoint(
        timed[i],
        {{"cores", "4"},
         {"transfer_latency", std::to_string(latencies[i / kernel_count])}}));
  }
  artifact.host["sweep_threads"] = threads;
  artifact.host["wall_seconds"] =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  benchutil::EmitArtifact(artifact);
  return 0;
}
