// Figure 13 (plus the text's 100-cycle data point): sensitivity of the
// 4-core speedups to the queue transfer latency.
//
// Paper: at 5 cycles the average speedup is 2.05; at 20 cycles it drops to
// 1.85 (four kernels lose their speedup); at 50 cycles to 1.36 (six kernels
// below 1); at 100 cycles there is no speedup on average and only 2 of 18
// kernels still gain.  "The technique is inherently sensitive to
// communication latencies."
//
// The (kernel x latency) grid runs through the harness sweep engine; the
// table and the deterministic portion of BENCH_fig13.json are independent
// of the host thread count.
//
// --backend native: after the simulated sweep, additionally execute every
// kernel for real on host threads (4 cores, 5-cycle simulated column as
// the reference) and print measured wall-clock speedup beside it, exactly
// like fig12_speedup --backend native.  Queue transfer latency is a
// machine-model parameter, so the native pass has a single measured
// column — it shows where *this host's* real communication cost lands on
// the sensitivity curve.  Wall-clock numbers live only in
// BENCH_fig13_native.json host fields; on a single-CPU host the pinned
// workers time-share one core and the measured column honestly collapses
// below 1.  The default table and BENCH_fig13.json are byte-identical
// with or without the flag.
#include <chrono>
#include <cstdio>
#include <map>
#include <vector>

#include "bench_common.hpp"
#include "compiler/backend.hpp"
#include "kernels/experiments.hpp"
#include "support/stats.hpp"
#include "support/str.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace fgpar;

  const auto start = std::chrono::steady_clock::now();
  const std::vector<int> latencies = {5, 20, 50, 100};
  const std::vector<kernels::SequoiaKernel>& all = kernels::SequoiaKernels();
  const std::size_t kernel_count = all.size();
  const int threads = harness::ResolveSweepThreads(0);

  const std::size_t grid = latencies.size() * kernel_count;
  const auto timed = harness::RunSweep(grid, threads, [&](std::size_t i) {
    kernels::ExperimentConfig config;
    config.cores = 4;
    config.transfer_latency = latencies[i / kernel_count];
    return benchutil::TimedKernelRun(all[i % kernel_count], config);
  });
  std::map<int, const benchutil::TimedRun*> by_latency;
  for (std::size_t l = 0; l < latencies.size(); ++l) {
    by_latency[latencies[l]] = &timed[l * kernel_count];
  }

  std::vector<std::string> header = {"Kernel"};
  for (int latency : latencies) {
    header.push_back(std::to_string(latency) + " cyc");
  }
  TextTable table(header);
  for (std::size_t i = 0; i < kernel_count; ++i) {
    std::vector<std::string> row = {by_latency[5][i].run.kernel_name};
    for (int latency : latencies) {
      row.push_back(FormatFixed(by_latency[latency][i].run.speedup, 2));
    }
    table.AddRow(row);
  }
  table.AddSeparator();
  std::vector<std::string> avg_row = {"average"};
  std::vector<std::string> losers_row = {"kernels <= 1.0"};
  for (int latency : latencies) {
    std::vector<double> speedups;
    int losers = 0;
    for (std::size_t i = 0; i < kernel_count; ++i) {
      const double s = by_latency[latency][i].run.speedup;
      speedups.push_back(s);
      losers += s <= 1.0 ? 1 : 0;
    }
    avg_row.push_back(FormatFixed(Mean(speedups), 2));
    losers_row.push_back(std::to_string(losers));
  }
  table.AddRow(avg_row);
  table.AddRow(losers_row);

  std::printf("%s\n",
              table
                  .Render("Figure 13: 4-core speedup vs queue transfer latency\n"
                          "(paper averages: 2.05 @5, 1.85 @20, 1.36 @50, ~1.0 "
                          "@100; losers 1/4/6/16)")
                  .c_str());

  harness::BenchArtifact artifact;
  artifact.name = "fig13";
  for (std::size_t i = 0; i < grid; ++i) {
    artifact.points.push_back(benchutil::MakePoint(
        timed[i],
        {{"cores", "4"},
         {"transfer_latency", std::to_string(latencies[i / kernel_count])}}));
  }
  artifact.host["sweep_threads"] = threads;
  artifact.host["wall_seconds"] =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  benchutil::EmitArtifact(artifact);

  // --backend native: a serial second pass (concurrent points would
  // contend for the pinned worker cores and corrupt the timing).  The
  // simulated column is the 5-cycle Section V default — the leftmost
  // point of the sensitivity curve above.
  const compiler::BackendKind backend = compiler::ParseBackendKind(
      benchutil::FlagValue(argc, argv, "--backend", "sim"));
  if (backend == compiler::BackendKind::kNative) {
    harness::BenchArtifact native_artifact;
    native_artifact.name = "fig13_native";
    TextTable native_table(
        {"Kernel", "simulated speedup (5 cyc)", "measured speedup",
         "verified"});
    bool all_verified = true;
    for (std::size_t i = 0; i < kernel_count; ++i) {
      kernels::ExperimentConfig config;
      config.cores = 4;
      config.backend = compiler::BackendKind::kNative;
      const benchutil::TimedRun native_timed =
          benchutil::TimedKernelRun(all[i], config);
      const harness::KernelRun& run = native_timed.run;
      all_verified = all_verified && run.native_run && run.native_verified;
      native_table.AddRow(
          {all[i].id, FormatFixed(run.speedup, 2),
           run.native_run ? FormatFixed(run.native_speedup, 2) : "n/a",
           run.native_run && run.native_verified ? "yes" : "NO"});
      harness::BenchArtifact::Point point = benchutil::MakePoint(
          native_timed, {{"backend", "native"}, {"cores", "4"}});
      point.host["native_seq_seconds"] = run.native_seq_seconds;
      point.host["native_par_seconds"] = run.native_par_seconds;
      point.host["native_wall_speedup"] = run.native_speedup;
      native_artifact.points.push_back(std::move(point));
    }
    std::printf("%s\n",
                native_table
                    .Render("Native backend: measured wall-clock speedup on "
                            "host threads vs the 5-cycle simulated point\n"
                            "(wall-clock numbers are host-dependent and "
                            "excluded from deterministic artifacts)")
                    .c_str());
    native_artifact.host["wall_seconds"] =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    benchutil::EmitArtifact(native_artifact);
    if (!all_verified) {
      std::fprintf(stderr, "native backend verification failed\n");
      return 1;
    }
    std::printf(
        "All native runs verified bit-exact against the reference "
        "interpreter.\n");
  }
  return 0;
}
