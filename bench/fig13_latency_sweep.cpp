// Figure 13 (plus the text's 100-cycle data point): sensitivity of the
// 4-core speedups to the queue transfer latency.
//
// Paper: at 5 cycles the average speedup is 2.05; at 20 cycles it drops to
// 1.85 (four kernels lose their speedup); at 50 cycles to 1.36 (six kernels
// below 1); at 100 cycles there is no speedup on average and only 2 of 18
// kernels still gain.  "The technique is inherently sensitive to
// communication latencies."
#include <cstdio>
#include <map>
#include <vector>

#include "kernels/experiments.hpp"
#include "support/stats.hpp"
#include "support/str.hpp"
#include "support/table.hpp"

int main() {
  using namespace fgpar;

  const std::vector<int> latencies = {5, 20, 50, 100};
  std::map<int, std::vector<harness::KernelRun>> by_latency;
  for (int latency : latencies) {
    kernels::ExperimentConfig config;
    config.cores = 4;
    config.transfer_latency = latency;
    by_latency[latency] = kernels::RunAllKernels(config);
  }

  std::vector<std::string> header = {"Kernel"};
  for (int latency : latencies) {
    header.push_back(std::to_string(latency) + " cyc");
  }
  TextTable table(header);
  const std::size_t kernel_count = by_latency[5].size();
  for (std::size_t i = 0; i < kernel_count; ++i) {
    std::vector<std::string> row = {by_latency[5][i].kernel_name};
    for (int latency : latencies) {
      row.push_back(FormatFixed(by_latency[latency][i].speedup, 2));
    }
    table.AddRow(row);
  }
  table.AddSeparator();
  std::vector<std::string> avg_row = {"average"};
  std::vector<std::string> losers_row = {"kernels <= 1.0"};
  for (int latency : latencies) {
    std::vector<double> speedups;
    int losers = 0;
    for (const harness::KernelRun& run : by_latency[latency]) {
      speedups.push_back(run.speedup);
      losers += run.speedup <= 1.0 ? 1 : 0;
    }
    avg_row.push_back(FormatFixed(Mean(speedups), 2));
    losers_row.push_back(std::to_string(losers));
  }
  table.AddRow(avg_row);
  table.AddRow(losers_row);

  std::printf("%s\n",
              table
                  .Render("Figure 13: 4-core speedup vs queue transfer latency\n"
                          "(paper averages: 2.05 @5, 1.85 @20, 1.36 @50, ~1.0 "
                          "@100; losers 1/4/6/16)")
                  .c_str());
  return 0;
}
