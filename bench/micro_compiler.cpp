// Compile-time microbenchmarks (google-benchmark).
//
// Section III-B: the multi-pair merge variant "allows faster compilation,
// and becomes useful when there are a large number of fibers to process."
// These benchmarks time the partitioning pipeline on a synthetically
// widened kernel and compare single-pair vs multi-pair merging, plus the
// cost of the full compile path.
#include <benchmark/benchmark.h>

#include <sstream>

#include "compiler/compile.hpp"
#include "compiler/partition.hpp"
#include "frontend/parser.hpp"

namespace {

using namespace fgpar;

/// A kernel with `width` independent output statements -> many fibers.
ir::Kernel WideKernel(int width) {
  std::ostringstream os;
  os << "kernel wide {\n  param i64 n;\n  array f64 a[1024];\n";
  for (int w = 0; w < width; ++w) {
    os << "  array f64 o" << w << "[1024];\n";
  }
  os << "  loop i = 2 .. n {\n";
  for (int w = 0; w < width; ++w) {
    os << "    o" << w << "[i] = a[i] * " << (w + 2) << ".0 + a[i-1] * a[i+"
       << (w % 3) << "] - " << w << ".5;\n";
  }
  os << "  }\n}\n";
  return frontend::ParseKernel(os.str());
}

void BM_PartitionSinglePair(benchmark::State& state) {
  const ir::Kernel kernel = WideKernel(static_cast<int>(state.range(0)));
  compiler::CompileOptions options;
  options.num_cores = 4;
  options.multi_pair_merge = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(compiler::PartitionKernel(kernel, options, nullptr));
  }
}
BENCHMARK(BM_PartitionSinglePair)->Arg(8)->Arg(24)->Arg(48);

void BM_PartitionMultiPair(benchmark::State& state) {
  const ir::Kernel kernel = WideKernel(static_cast<int>(state.range(0)));
  compiler::CompileOptions options;
  options.num_cores = 4;
  options.multi_pair_merge = true;
  for (auto _ : state) {
    benchmark::DoNotOptimize(compiler::PartitionKernel(kernel, options, nullptr));
  }
}
BENCHMARK(BM_PartitionMultiPair)->Arg(8)->Arg(24)->Arg(48);

void BM_FullParallelCompile(benchmark::State& state) {
  const ir::Kernel kernel = WideKernel(static_cast<int>(state.range(0)));
  const ir::DataLayout layout(kernel);
  compiler::CompileOptions options;
  options.num_cores = 4;
  for (auto _ : state) {
    benchmark::DoNotOptimize(compiler::CompileParallel(kernel, layout, options));
  }
}
BENCHMARK(BM_FullParallelCompile)->Arg(8)->Arg(24);

void BM_SequentialCompile(benchmark::State& state) {
  const ir::Kernel kernel = WideKernel(static_cast<int>(state.range(0)));
  const ir::DataLayout layout(kernel);
  compiler::CompileOptions options;
  for (auto _ : state) {
    benchmark::DoNotOptimize(compiler::CompileSequential(kernel, layout, options));
  }
}
BENCHMARK(BM_SequentialCompile)->Arg(8)->Arg(24);

}  // namespace

BENCHMARK_MAIN();
