// Extension: speedup and graceful degradation under injected faults.
//
// The paper's hardware queues are assumed perfectly reliable; this bench
// asks what the compiled parallel code is worth on flakier hardware.  A
// deterministic FaultInjector (src/sim/fault.hpp) perturbs the measured
// parallel machine — transfer-latency jitter, transient enqueue rejection,
// payload bit flips, memory-latency inflation, core freezes — while the
// runner's FallbackPolicy retries failed attempts with reseeded fault
// schedules and degrades to the verified sequential execution when the
// budget is exhausted.
//
// The sweep scales all fault probabilities together.  Timing-only faults
// (jitter, rejection, freezes, slow memory) merely erode speedup; payload
// flips corrupt results, fail verification, and drive the fallback rate.
// The whole table is a pure function of the fixed seed: two runs of this
// binary must produce byte-identical output, with any number of host
// sweep threads.  BENCH_ext_fault_sweep.json records every (fault scale,
// kernel) point including the injected-fault counters.
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "kernels/experiments.hpp"
#include "support/stats.hpp"
#include "support/str.hpp"
#include "support/table.hpp"

int main() {
  using namespace fgpar;

  const auto start = std::chrono::steady_clock::now();
  // Fault intensity multipliers applied to a base fault mix.
  const std::vector<double> scales = {0.0, 0.25, 1.0, 4.0, 16.0};
  const std::vector<kernels::SequoiaKernel>& all = kernels::SequoiaKernels();
  const std::size_t kernel_count = all.size();
  const int threads = harness::ResolveSweepThreads(0);

  const auto config_for = [](double scale) {
    kernels::ExperimentConfig config;
    config.cores = 4;
    harness::RunConfig run_config = kernels::ToRunConfig(config);
    run_config.faults.queue_jitter_prob = 0.002 * scale;
    run_config.faults.queue_reject_prob = 0.002 * scale;
    run_config.faults.mem_fault_prob = 0.001 * scale;
    run_config.faults.core_freeze_prob = 0.0002 * scale;
    run_config.faults.payload_flip_prob = 0.0002 * scale;
    // Trip long before max_cycles if an injected fault wedges the machine.
    run_config.stall_watchdog_cycles = 200000;
    run_config.fallback.max_retries = 2;
    return run_config;
  };

  const std::size_t grid = scales.size() * kernel_count;
  const auto timed = harness::RunSweep(grid, threads, [&](std::size_t i) {
    const harness::RunConfig run_config = config_for(scales[i / kernel_count]);
    const kernels::SequoiaKernel& spec = all[i % kernel_count];
    benchutil::TimedRun result;
    const auto t0 = std::chrono::steady_clock::now();
    const ir::Kernel kernel = kernels::ParseSequoia(spec);
    harness::KernelRunner runner(kernel, kernels::SequoiaInit(spec));
    result.run = runner.Run(run_config);
    result.run.kernel_name = spec.id;
    result.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    return result;
  });

  TextTable table({"fault scale", "avg speedup", "fallbacks", "retries",
                   "timing faults", "payload flips"});
  for (std::size_t s = 0; s < scales.size(); ++s) {
    std::vector<double> speedups;
    int fallbacks = 0;
    int retries = 0;
    std::uint64_t timing_faults = 0;
    std::uint64_t payload_flips = 0;
    for (std::size_t i = 0; i < kernel_count; ++i) {
      const harness::KernelRun& run = timed[s * kernel_count + i].run;
      speedups.push_back(run.speedup);
      fallbacks += run.fallback_used ? 1 : 0;
      retries += run.retries;
      timing_faults += run.fault_stats.latency_jitters +
                       run.fault_stats.enqueue_rejects +
                       run.fault_stats.mem_inflations +
                       run.fault_stats.core_freezes;
      payload_flips += run.fault_stats.payload_flips;
    }
    table.AddRow({FormatFixed(scales[s], 2), FormatFixed(Mean(speedups), 2),
                  std::to_string(fallbacks), std::to_string(retries),
                  std::to_string(static_cast<long long>(timing_faults)),
                  std::to_string(static_cast<long long>(payload_flips))});
  }
  std::printf("%s\n",
              table
                  .Render("Extension: average 4-core speedup vs injected-"
                          "fault intensity over the 18 Sequoia kernels\n"
                          "(deterministic fault schedules; failed runs retry "
                          "reseeded, then fall back to verified sequential)")
                  .c_str());

  harness::BenchArtifact artifact;
  artifact.name = "ext_fault_sweep";
  for (std::size_t i = 0; i < grid; ++i) {
    harness::BenchArtifact::Point point = benchutil::MakePoint(
        timed[i], {{"cores", "4"},
                   {"fault_scale", FormatFixed(scales[i / kernel_count], 2)}});
    const sim::FaultStats& fs = timed[i].run.fault_stats;
    point.counters["fault_latency_jitters"] = fs.latency_jitters;
    point.counters["fault_enqueue_rejects"] = fs.enqueue_rejects;
    point.counters["fault_mem_inflations"] = fs.mem_inflations;
    point.counters["fault_core_freezes"] = fs.core_freezes;
    point.counters["fault_payload_flips"] = fs.payload_flips;
    artifact.points.push_back(std::move(point));
  }
  artifact.host["sweep_threads"] = threads;
  artifact.host["wall_seconds"] =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  benchutil::EmitArtifact(artifact);
  return 0;
}
