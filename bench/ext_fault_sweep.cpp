// Extension: speedup and graceful degradation under injected faults.
//
// The paper's hardware queues are assumed perfectly reliable; this bench
// asks what the compiled parallel code is worth on flakier hardware.  A
// deterministic FaultInjector (src/sim/fault.hpp) perturbs the measured
// parallel machine — transfer-latency jitter, transient enqueue rejection,
// payload bit flips, memory-latency inflation, core freezes — while the
// runner's FallbackPolicy retries failed attempts with reseeded fault
// schedules and degrades to the verified sequential execution when the
// budget is exhausted.
//
// The sweep scales all fault probabilities together.  Timing-only faults
// (jitter, rejection, freezes, slow memory) merely erode speedup; payload
// flips corrupt results, fail verification, and drive the fallback rate.
// The whole table is a pure function of the fixed seed: two runs of this
// binary must produce byte-identical output.
#include <cstdio>
#include <vector>

#include "kernels/experiments.hpp"
#include "support/stats.hpp"
#include "support/str.hpp"
#include "support/table.hpp"

int main() {
  using namespace fgpar;

  // Fault intensity multipliers applied to a base fault mix.
  const std::vector<double> scales = {0.0, 0.25, 1.0, 4.0, 16.0};
  TextTable table({"fault scale", "avg speedup", "fallbacks", "retries",
                   "timing faults", "payload flips"});
  for (double scale : scales) {
    kernels::ExperimentConfig config;
    config.cores = 4;
    harness::RunConfig run_config = kernels::ToRunConfig(config);
    run_config.faults.queue_jitter_prob = 0.002 * scale;
    run_config.faults.queue_reject_prob = 0.002 * scale;
    run_config.faults.mem_fault_prob = 0.001 * scale;
    run_config.faults.core_freeze_prob = 0.0002 * scale;
    run_config.faults.payload_flip_prob = 0.0002 * scale;
    // Trip long before max_cycles if an injected fault wedges the machine.
    run_config.stall_watchdog_cycles = 200000;
    run_config.fallback.max_retries = 2;

    std::vector<double> speedups;
    int fallbacks = 0;
    int retries = 0;
    std::uint64_t timing_faults = 0;
    std::uint64_t payload_flips = 0;
    for (const kernels::SequoiaKernel& spec : kernels::SequoiaKernels()) {
      const ir::Kernel kernel = kernels::ParseSequoia(spec);
      harness::KernelRunner runner(kernel, kernels::SequoiaInit(spec));
      const harness::KernelRun run = runner.Run(run_config);
      speedups.push_back(run.speedup);
      fallbacks += run.fallback_used ? 1 : 0;
      retries += run.retries;
      timing_faults += run.fault_stats.latency_jitters +
                       run.fault_stats.enqueue_rejects +
                       run.fault_stats.mem_inflations +
                       run.fault_stats.core_freezes;
      payload_flips += run.fault_stats.payload_flips;
    }
    table.AddRow({FormatFixed(scale, 2), FormatFixed(Mean(speedups), 2),
                  std::to_string(fallbacks), std::to_string(retries),
                  std::to_string(static_cast<long long>(timing_faults)),
                  std::to_string(static_cast<long long>(payload_flips))});
  }
  std::printf("%s\n",
              table
                  .Render("Extension: average 4-core speedup vs injected-"
                          "fault intensity over the 18 Sequoia kernels\n"
                          "(deterministic fault schedules; failed runs retry "
                          "reseeded, then fall back to verified sequential)")
                  .c_str());
  return 0;
}
