// Extension: fine-grained parallelism on SMT hardware threads.
//
// Section II: "Our technique can also be applied to multiple hardware
// threads on the same core, but we have not experimented with this option
// yet. ... the considerations will be similar to those applicable when
// normally deciding whether or not to use SMT threads (balanced use of
// memory and processing resources amongst the code sections executed by
// multiple threads)."
//
// This bench runs the same 4-thread compiled code on three machines: four
// physical cores (the paper's configuration), two 2-way SMT cores, and one
// 4-way SMT core.  SMT threads share their core's issue slot round-robin
// and its L1, so compute-bound partitions collapse toward 1x while
// stall-heavy partitions retain some benefit (the sibling uses the cycles
// a stalled thread would waste).
#include <cstdio>
#include <vector>

#include "kernels/experiments.hpp"
#include "support/stats.hpp"
#include "support/str.hpp"
#include "support/table.hpp"

int main() {
  using namespace fgpar;

  struct Config {
    const char* label;
    int threads_per_core;
  };
  const std::vector<Config> machines = {
      {"4 cores x 1 thread", 1},
      {"2 cores x 2 threads", 2},
      {"1 core x 4 threads", 4},
  };

  TextTable table({"Kernel", "4cx1t", "2cx2t", "1cx4t"});
  std::vector<std::vector<double>> all(machines.size());
  for (const kernels::SequoiaKernel& spec : kernels::SequoiaKernels()) {
    const ir::Kernel kernel = kernels::ParseSequoia(spec);
    harness::KernelRunner runner(kernel, kernels::SequoiaInit(spec));
    std::vector<std::string> row = {spec.id};
    for (std::size_t m = 0; m < machines.size(); ++m) {
      kernels::ExperimentConfig config;
      config.cores = 4;
      harness::RunConfig run_config = kernels::ToRunConfig(config);
      run_config.threads_per_core = machines[m].threads_per_core;
      const harness::KernelRun run = runner.Run(run_config);
      all[m].push_back(run.speedup);
      row.push_back(FormatFixed(run.speedup, 2));
    }
    table.AddRow(row);
  }
  table.AddSeparator();
  table.AddRow({"average", FormatFixed(Mean(all[0]), 2),
                FormatFixed(Mean(all[1]), 2), FormatFixed(Mean(all[2]), 2)});
  std::printf("%s\n",
              table
                  .Render("Extension: the same 4-thread fine-grained parallel "
                          "code on machines with 4, 2, and 1 physical cores\n"
                          "(Section II's SMT option; sequential baseline runs "
                          "on one thread of the same machine)")
                  .c_str());
  return 0;
}
