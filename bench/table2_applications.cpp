// Table II: expected whole-application speedups, combining the per-kernel
// speedups of Figure 12 with Table I's runtime percentages via Amdahl's
// law (paper: lammps 1.05/1.70, irs 1.24/1.79, umt2k 1.16/1.51, sphot
// 1.25/1.92, average 1.18/1.73).
#include <cstdio>
#include <map>

#include "kernels/experiments.hpp"
#include "support/stats.hpp"
#include "support/str.hpp"
#include "support/table.hpp"

int main() {
  using namespace fgpar;

  std::map<std::string, double> speedups2;
  std::map<std::string, double> speedups4;
  {
    kernels::ExperimentConfig config;
    config.cores = 2;
    for (const harness::KernelRun& run : kernels::RunAllKernels(config)) {
      speedups2[run.kernel_name] = run.speedup;
    }
    config.cores = 4;
    for (const harness::KernelRun& run : kernels::RunAllKernels(config)) {
      speedups4[run.kernel_name] = run.speedup;
    }
  }

  TextTable table({"Application", "2-core", "4-core"});
  std::vector<double> app2, app4;
  for (const kernels::SequoiaApplication& app : kernels::SequoiaApplications()) {
    const double s2 = kernels::ApplicationSpeedup(app, speedups2);
    const double s4 = kernels::ApplicationSpeedup(app, speedups4);
    table.AddRow({app.name, FormatFixed(s2, 2), FormatFixed(s4, 2)});
    app2.push_back(s2);
    app4.push_back(s4);
  }
  table.AddSeparator();
  table.AddRow({"average", FormatFixed(Mean(app2), 2), FormatFixed(Mean(app4), 2)});

  std::printf("%s\n",
              table
                  .Render("Table II: expected application speedups from kernel "
                          "speedups + Table I runtime shares\n(paper: lammps "
                          "1.05/1.70, irs 1.24/1.79, umt2k 1.16/1.51, sphot "
                          "1.25/1.92, average 1.18/1.73)")
                  .c_str());
  return 0;
}
