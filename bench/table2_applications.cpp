// Table II: expected whole-application speedups, combining the per-kernel
// speedups of Figure 12 with Table I's runtime percentages via Amdahl's
// law (paper: lammps 1.05/1.70, irs 1.24/1.79, umt2k 1.16/1.51, sphot
// 1.25/1.92, average 1.18/1.73).
//
// The underlying (kernel x cores) grid runs through the harness sweep
// engine; BENCH_table2.json records both the per-kernel points and the
// derived per-application speedups.
#include <chrono>
#include <cstdio>
#include <map>
#include <vector>

#include "bench_common.hpp"
#include "kernels/experiments.hpp"
#include "support/stats.hpp"
#include "support/str.hpp"
#include "support/table.hpp"

int main() {
  using namespace fgpar;

  const auto start = std::chrono::steady_clock::now();
  const std::vector<kernels::SequoiaKernel>& all = kernels::SequoiaKernels();
  const std::size_t kernel_count = all.size();
  const std::vector<int> core_counts = {2, 4};
  const int threads = harness::ResolveSweepThreads(0);

  const std::size_t grid = core_counts.size() * kernel_count;
  const auto timed = harness::RunSweep(grid, threads, [&](std::size_t i) {
    kernels::ExperimentConfig config;
    config.cores = core_counts[i / kernel_count];
    return benchutil::TimedKernelRun(all[i % kernel_count], config);
  });

  std::map<std::string, double> speedups2;
  std::map<std::string, double> speedups4;
  for (std::size_t i = 0; i < kernel_count; ++i) {
    speedups2[timed[i].run.kernel_name] = timed[i].run.speedup;
    speedups4[timed[kernel_count + i].run.kernel_name] =
        timed[kernel_count + i].run.speedup;
  }

  harness::BenchArtifact artifact;
  artifact.name = "table2";
  for (std::size_t i = 0; i < grid; ++i) {
    artifact.points.push_back(benchutil::MakePoint(
        timed[i], {{"cores", std::to_string(core_counts[i / kernel_count])}}));
  }

  TextTable table({"Application", "2-core", "4-core"});
  std::vector<double> app2, app4;
  for (const kernels::SequoiaApplication& app : kernels::SequoiaApplications()) {
    const double s2 = kernels::ApplicationSpeedup(app, speedups2);
    const double s4 = kernels::ApplicationSpeedup(app, speedups4);
    table.AddRow({app.name, FormatFixed(s2, 2), FormatFixed(s4, 2)});
    app2.push_back(s2);
    app4.push_back(s4);
    harness::BenchArtifact::Point point;
    point.label = "app:" + app.name;
    point.params["application"] = app.name;
    point.metrics["speedup_2core"] = s2;
    point.metrics["speedup_4core"] = s4;
    artifact.points.push_back(std::move(point));
  }
  table.AddSeparator();
  table.AddRow({"average", FormatFixed(Mean(app2), 2), FormatFixed(Mean(app4), 2)});

  std::printf("%s\n",
              table
                  .Render("Table II: expected application speedups from kernel "
                          "speedups + Table I runtime shares\n(paper: lammps "
                          "1.05/1.70, irs 1.24/1.79, umt2k 1.16/1.51, sphot "
                          "1.25/1.92, average 1.18/1.73)")
                  .c_str());

  artifact.host["sweep_threads"] = threads;
  artifact.host["wall_seconds"] =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  benchutil::EmitArtifact(artifact);
  return 0;
}
