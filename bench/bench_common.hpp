// Shared helpers for the experiment binaries: timed kernel runs, artifact
// point construction, and flag parsing.
//
// Conventions the binaries follow:
//  * the human-readable table goes to stdout, byte-identical across sweep
//    thread counts;
//  * the machine-readable BENCH_<name>.json artifact is written via
//    harness::BenchArtifact::WriteFile, and the path is reported on
//    stderr so stdout stays clean for diffing.
#pragma once

#include <chrono>
#include <cstdio>
#include <map>
#include <string>
#include <string_view>

#include "harness/bench_artifact.hpp"
#include "harness/sweep.hpp"
#include "kernels/experiments.hpp"

namespace fgpar::benchutil {

inline bool HasFlag(int argc, char** argv, std::string_view flag) {
  for (int i = 1; i < argc; ++i) {
    if (argv[i] == flag) {
      return true;
    }
  }
  return false;
}

/// Returns the operand of `--flag value`, or `fallback` when absent.
inline std::string FlagValue(int argc, char** argv, std::string_view flag,
                             const std::string& fallback = "") {
  for (int i = 1; i + 1 < argc; ++i) {
    if (argv[i] == flag) {
      return argv[i + 1];
    }
  }
  return fallback;
}

inline long long FlagInt(int argc, char** argv, std::string_view flag,
                         long long fallback) {
  const std::string text = FlagValue(argc, argv, flag);
  return text.empty() ? fallback : std::stoll(text);
}

inline double FlagDouble(int argc, char** argv, std::string_view flag,
                         double fallback) {
  const std::string text = FlagValue(argc, argv, flag);
  return text.empty() ? fallback : std::stod(text);
}

/// One kernel pipeline execution plus its host wall-clock cost.
struct TimedRun {
  harness::KernelRun run;
  double wall_seconds = 0.0;
};

inline TimedRun TimedKernelRun(const kernels::SequoiaKernel& kernel,
                               const kernels::ExperimentConfig& config) {
  TimedRun timed;
  const auto start = std::chrono::steady_clock::now();
  timed.run = kernels::RunKernel(kernel, config);
  timed.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return timed;
}

/// Builds one artifact point from a timed run.  `params` describes the
/// configuration axes of the grid point ("cores", "transfer_latency", ...);
/// the label is "<kernel> k=v ..." over the (sorted) params.
inline harness::BenchArtifact::Point MakePoint(
    const TimedRun& timed, std::map<std::string, std::string> params) {
  harness::BenchArtifact::Point point;
  point.label = timed.run.kernel_name;
  for (const auto& [key, value] : params) {
    point.label += " " + key + "=" + value;
  }
  point.params = std::move(params);
  point.params["kernel"] = timed.run.kernel_name;
  harness::AddKernelRunFields(timed.run, point);
  point.host["wall_seconds"] = timed.wall_seconds;
  if (timed.wall_seconds > 0.0) {
    point.host["sim_instr_per_s"] =
        static_cast<double>(timed.run.seq_instructions +
                            timed.run.par_instructions) /
        timed.wall_seconds;
  }
  return point;
}

/// Writes the artifact and reports the path on stderr.
inline void EmitArtifact(const harness::BenchArtifact& artifact) {
  const std::string path = artifact.WriteFile();
  std::fprintf(stderr, "wrote %s (%zu points)\n", path.c_str(),
               artifact.points.size());
}

}  // namespace fgpar::benchutil
