// fgpar-coord: the distributed sweep coordinator, standalone.
//
// Two modes over the fig12 grid (the grid definition is shared with
// bench/fig12_speedup via kernels::MakeFig12Grid, so names, labels, and
// fingerprints agree byte-for-byte):
//
//   fgpar-coord --serve <address> [--smoke] [--work-dir D] [--resume]
//               [--lease-ms N] [--slice-points N] [--crash-budget N]
//
//     Serve leases over fgpar-dist-v1 until every point is committed or
//     quarantined, then emit the merged BENCH_fig12.json.  Workers are
//     started separately and pointed at the address, e.g. on another
//     host:  fig12_speedup --dist-worker --dist-address tcp:10.0.0.1:7777
//     The coordinator journals every commit; kill -9 it at any moment
//     and a --resume re-serve continues from the merged frontier.
//
//   fgpar-coord --merge-dir <dir> [--smoke] [--emit] [--strict]
//
//     Offline merge: tolerantly read every *.ckpt journal in <dir>
//     (coordinator + worker journals, any mixture of truncation and
//     damage), print the merge summary and each quarantined record, and
//     with --emit write the merged BENCH_fig12.json.  --strict exits 1
//     when any record was quarantined (CI posture); default exits 0 as
//     long as the merge itself ran.
//
// The artifact is built with exactly bench/fig12_speedup's point shape,
// so under FGPAR_BENCH_DETERMINISTIC=1 a fully merged artifact is
// byte-identical to a clean single-host run's.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "dist/coordinator.hpp"
#include "dist/journal_merge.hpp"
#include "dist/server.hpp"
#include "harness/bench_artifact.hpp"
#include "harness/checkpoint.hpp"
#include "harness/supervisor.hpp"
#include "kernels/fig12_grid.hpp"
#include "support/error.hpp"

namespace {

using namespace fgpar;
using dist::Coordinator;

bool HasFlag(int argc, char** argv, const std::string& flag) {
  for (int i = 1; i < argc; ++i) {
    if (argv[i] == flag) {
      return true;
    }
  }
  return false;
}

std::string FlagValue(int argc, char** argv, const std::string& flag,
                      const std::string& fallback = "") {
  for (int i = 1; i + 1 < argc; ++i) {
    if (argv[i] == flag) {
      return argv[i + 1];
    }
  }
  return fallback;
}

long long FlagInt(int argc, char** argv, const std::string& flag,
                  long long fallback) {
  const std::string text = FlagValue(argc, argv, flag);
  return text.empty() ? fallback : std::stoll(text);
}

/// Decode-validating payload gate for the merge: a record that does not
/// round-trip the KernelRun codec is quarantined, not adopted.
std::string ValidatePayload(std::size_t, const std::string& payload) {
  try {
    harness::DecodeKernelRun(payload);
    return std::string();
  } catch (const Error& e) {
    return std::string(e.what());
  }
}

/// Builds the merged artifact with bench/fig12_speedup's exact point
/// shape (label, params, metric fields), so deterministic portions diff
/// byte-for-byte against a single-host run.
void EmitMergedArtifact(const kernels::Fig12Grid& grid,
                        const std::map<std::size_t, std::string>& points,
                        const std::vector<Coordinator::FailureInfo>* failures) {
  harness::BenchArtifact artifact;
  artifact.name = grid.name;
  for (const auto& [index, payload] : points) {
    const harness::KernelRun run = harness::DecodeKernelRun(payload);
    harness::BenchArtifact::Point point;
    point.params["cores"] = std::to_string(grid.CoresAt(index));
    point.label = run.kernel_name;
    for (const auto& [key, value] : point.params) {
      point.label += " " + key + "=" + value;
    }
    point.params["kernel"] = run.kernel_name;
    harness::AddKernelRunFields(run, point);
    point.host["wall_seconds"] = 0.0;  // merged offline: no host timing
    artifact.points.push_back(std::move(point));
  }
  if (failures != nullptr) {
    for (const Coordinator::FailureInfo& info : *failures) {
      harness::BenchArtifact::Failure failure;
      failure.label = grid.labels[info.index];
      failure.index = info.index;
      failure.message = info.message;
      failure.repro_bundle = info.repro_bundle;
      artifact.failures.push_back(std::move(failure));
    }
  }
  const std::string path = artifact.WriteFile();
  std::fprintf(stderr, "wrote %s (%zu points, %zu failures)\n", path.c_str(),
               artifact.points.size(), artifact.failures.size());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fgpar;

  const bool smoke = HasFlag(argc, argv, "--smoke");
  const kernels::Fig12Grid grid = kernels::MakeFig12Grid(smoke);
  const std::uint64_t fingerprint =
      harness::GridFingerprint(grid.name, grid.labels);

  const std::string merge_dir = FlagValue(argc, argv, "--merge-dir");
  const std::string serve = FlagValue(argc, argv, "--serve");
  if (merge_dir.empty() == serve.empty()) {
    std::fprintf(stderr,
                 "usage: fgpar-coord (--serve <address> | --merge-dir <dir>) "
                 "[--smoke] [--work-dir D] [--resume] [--lease-ms N] "
                 "[--slice-points N] [--crash-budget N] [--emit] [--strict]\n");
    return 2;
  }

  if (!merge_dir.empty()) {
    const std::vector<std::string> files = dist::ListJournalFiles(merge_dir);
    const dist::MergeResult merged = dist::MergeJournalFiles(
        files, grid.name, fingerprint, grid.size(), ValidatePayload);
    std::printf("merged %zu journal file(s): %zu/%zu points, "
                "%zu duplicate commit(s) discarded, %zu record(s) "
                "quarantined\n",
                merged.files_read, merged.points.size(), grid.size(),
                merged.duplicate_points, merged.quarantined.size());
    for (const dist::QuarantinedRecord& record : merged.quarantined) {
      std::printf("  quarantined %s:%zu: %s%s%s\n", record.file.c_str(),
                  record.line, record.reason.c_str(),
                  record.text.empty() ? "" : " | ",
                  record.text.c_str());
    }
    if (HasFlag(argc, argv, "--emit")) {
      EmitMergedArtifact(grid, merged.points, nullptr);
    }
    return HasFlag(argc, argv, "--strict") && !merged.quarantined.empty() ? 1
                                                                          : 0;
  }

  // --serve: the live coordinator.
  const std::string work_dir = FlagValue(argc, argv, "--work-dir", ".");
  dist::Coordinator::Config config;
  config.name = grid.name;
  config.labels = grid.labels;
  config.checkpoint_path = work_dir + "/coordinator.ckpt";
  config.slice_points =
      static_cast<std::size_t>(FlagInt(argc, argv, "--slice-points", 4));
  config.lease_ms =
      static_cast<std::uint64_t>(FlagInt(argc, argv, "--lease-ms", 10'000));
  config.heartbeat_ms = std::max<std::uint64_t>(config.lease_ms / 10, 50);
  config.crash_budget =
      static_cast<std::size_t>(FlagInt(argc, argv, "--crash-budget", 3));
  dist::Coordinator coordinator(config);

  if (HasFlag(argc, argv, "--resume")) {
    const dist::MergeResult merged = dist::MergeJournalFiles(
        dist::ListJournalFiles(work_dir), grid.name, fingerprint, grid.size(),
        ValidatePayload);
    for (const dist::QuarantinedRecord& record : merged.quarantined) {
      std::fprintf(stderr, "journal merge: quarantined %s:%zu: %s\n",
                   record.file.c_str(), record.line, record.reason.c_str());
    }
    coordinator.AdoptPoints(merged.points);
    std::fprintf(stderr, "resumed %zu completed points from %s\n",
                 coordinator.points().size(), work_dir.c_str());
  }

  try {
    dist::CoordinatorServer server(coordinator, serve);
    server.Start();
    const std::string port_note =
        server.bound_port() > 0
            ? " (port " + std::to_string(server.bound_port()) + ")"
            : "";
    std::fprintf(stderr, "fgpar-coord: serving %zu-point grid '%s' on %s%s\n",
                 grid.size(), grid.name.c_str(), serve.c_str(),
                 port_note.c_str());
    server.WaitUntilDone();
    server.Stop();
  } catch (const Error& e) {
    std::fprintf(stderr, "fgpar-coord: %s\n", e.what());
    return 1;
  }

  const std::vector<dist::Coordinator::FailureInfo> failures =
      coordinator.failures();
  for (const dist::Coordinator::FailureInfo& info : failures) {
    std::fprintf(stderr, "quarantined point %zu (%s): %s\n", info.index,
                 grid.labels[info.index].c_str(), info.message.c_str());
  }
  EmitMergedArtifact(grid, coordinator.points(), &failures);
  return failures.empty() ? 0 : 1;
}
