// fgparc — the fine-grained parallelizing compiler, as a command-line tool.
//
// Usage:
//   fgparc <file.fk> [options]
//
// Options:
//   --cores N          core budget (default 4)
//   --latency N        queue transfer latency in cycles (default 5)
//   --capacity N       queue slots (default 20)
//   --speculate        apply Section III-H control-flow speculation
//   --throughput       use the Section III-B acyclic "throughput" heuristic
//   --tune             multi-version compilation with dynamic feedback
//   --cost-model M     candidate-selection cost model: simulate (train every
//                      candidate on the simulator, same as --tune) or
//                      analytic (the latency-hiding predictor; zero
//                      training simulations)
//   --explain-select   print one explanation record per enumerated
//                      candidate — model attribution, score, features, and
//                      why rejected candidates were rejected.  Implies
//                      --run.
//   --autotune         search merge-shape x cores x queue-capacity x
//                      speculation for this kernel: predict every config
//                      with the analytic model, simulate only the top
//                      frontier (plus the default), report the best, and
//                      write TUNE_<kernel>.json (fgpar-tune-v1)
//   --smt N            hardware threads per physical core (default 1)
//   --trip N           value for every i64 parameter (default 400)
//   --seed N           workload RNG seed (default 0x5EED)
//   --tier T           simulator run tier: auto|slow|fast|threaded
//                      (default auto; results are bit-identical per tier)
//   --backend B        execution backend: sim|native (default sim).  native
//                      additionally runs the kernel for real on host
//                      threads with SPSC-ring queues, verifies the output
//                      memory, and prints measured wall-clock numbers
//                      beside the simulated ones.  Implies --run.
//   --list-kernels     list the Sequoia kernel corpus (name, fiber count,
//                      Table I source location) and exit; no input file
//                      needed
//   --trace FILE       write a Chrome trace_event capture of the verified
//                      run (compile pass spans + per-core issue, queue
//                      occupancy, and stall intervals) to FILE; open it at
//                      ui.perfetto.dev or chrome://tracing.  Implies --run.
//   --print-ir         dump the rewritten (fiberized) kernel
//   --print-plan       dump partitions and the communication plan
//   --disasm           dump the generated machine code
//   --print-pipeline   list the passes the parallel pipeline will run
//   --dump-after=P     dump the kernel IR after pass P ("all": every pass)
//   --compile-stats    print per-pass statistics (wall time, IR deltas,
//                      pass counters) and write BENCH_compile_<kernel>.json
//   --run              compile sequential + parallel, verify, report speedup
//                      (default if no print option is given)
//
// Arrays are initialized with deterministic values in [0.5, 2); i64 arrays
// get in-range indices; f64 params get values in [0.5, 2); i64 params get
// --trip.  Exit code 0 on success, 1 on any compile/verify error.
#include <cstdio>
#include <cstring>
#include <algorithm>
#include <bit>
#include <fstream>
#include <sstream>
#include <string>

#include "analysis/index.hpp"
#include "compiler/backend.hpp"
#include "compiler/compile.hpp"
#include "compiler/partition.hpp"
#include "compiler/pipeline.hpp"
#include "frontend/lexer.hpp"
#include "frontend/parser.hpp"
#include "harness/autotune.hpp"
#include "harness/bench_artifact.hpp"
#include "harness/runner.hpp"
#include "model/analytic.hpp"
#include "ir/printer.hpp"
#include "isa/disasm.hpp"
#include "kernels/sequoia.hpp"
#include "sim/machine.hpp"
#include "support/buildinfo.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"
#include "support/str.hpp"
#include "support/telemetry/sinks.hpp"

namespace {

using namespace fgpar;

struct CliOptions {
  std::string path;
  int cores = 4;
  int latency = 5;
  int capacity = 20;
  int smt = 1;
  std::int64_t trip = 400;
  std::uint64_t seed = 0x5EED;
  sim::RunTier tier = sim::RunTier::kAuto;
  compiler::BackendKind backend = compiler::BackendKind::kSim;
  bool list_kernels = false;
  bool speculate = false;
  bool throughput = false;
  bool multi_pair = false;  // set via --apply-tune (no direct flag)
  bool tune = false;
  std::string cost_model;  // "", "simulate", or "analytic"
  bool explain_select = false;
  bool autotune = false;
  std::string apply_tune;  // TUNE_<kernel>.json whose best point to run
  std::string trace_path;
  bool print_ir = false;
  bool print_plan = false;
  bool disasm = false;
  bool print_pipeline = false;
  std::string dump_after;
  bool compile_stats = false;
  bool run = false;
};

[[noreturn]] void Usage() {
  std::fprintf(stderr,
               "usage: fgparc <file.fk> [--cores N] [--latency N] [--capacity N]\n"
               "              [--speculate] [--throughput] [--tune] [--smt N]\n"
               "              [--cost-model simulate|analytic] [--explain-select]\n"
               "              [--autotune] [--apply-tune TUNE.json]\n"
               "              [--trip N] [--seed N] [--tier T] [--backend B]\n"
               "              [--trace FILE]\n"
               "              [--print-ir] [--print-plan] [--disasm] [--run]\n"
               "              [--print-pipeline] [--dump-after=<pass|all>]\n"
               "              [--compile-stats] [--version]\n"
               "       fgparc --list-kernels\n");
  std::exit(2);
}

CliOptions ParseArgs(int argc, char** argv) {
  CliOptions options;
  auto next_int = [&](int& i) {
    if (i + 1 >= argc) {
      Usage();
    }
    return std::atoll(argv[++i]);
  };
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--version") == 0) {
      std::printf("fgparc %s config %s\n", BuildVersionString().c_str(),
                  BuildConfigHashHex().c_str());
      std::exit(0);
    } else if (std::strcmp(arg, "--cores") == 0) {
      options.cores = static_cast<int>(next_int(i));
    } else if (std::strcmp(arg, "--latency") == 0) {
      options.latency = static_cast<int>(next_int(i));
    } else if (std::strcmp(arg, "--capacity") == 0) {
      options.capacity = static_cast<int>(next_int(i));
    } else if (std::strcmp(arg, "--smt") == 0) {
      options.smt = static_cast<int>(next_int(i));
    } else if (std::strcmp(arg, "--trip") == 0) {
      options.trip = next_int(i);
    } else if (std::strcmp(arg, "--seed") == 0) {
      options.seed = static_cast<std::uint64_t>(next_int(i));
    } else if (std::strcmp(arg, "--trace") == 0) {
      if (i + 1 >= argc) {
        Usage();
      }
      options.trace_path = argv[++i];
    } else if (std::strncmp(arg, "--trace=", 8) == 0) {
      options.trace_path = arg + 8;
    } else if (std::strncmp(arg, "--tier=", 7) == 0) {
      options.tier = sim::ParseRunTier(arg + 7);
    } else if (std::strcmp(arg, "--tier") == 0) {
      if (i + 1 >= argc) {
        Usage();
      }
      options.tier = sim::ParseRunTier(argv[++i]);
    } else if (std::strncmp(arg, "--backend=", 10) == 0) {
      options.backend = compiler::ParseBackendKind(arg + 10);
    } else if (std::strcmp(arg, "--backend") == 0) {
      if (i + 1 >= argc) {
        Usage();
      }
      options.backend = compiler::ParseBackendKind(argv[++i]);
    } else if (std::strcmp(arg, "--list-kernels") == 0) {
      options.list_kernels = true;
    } else if (std::strcmp(arg, "--speculate") == 0) {
      options.speculate = true;
    } else if (std::strcmp(arg, "--throughput") == 0) {
      options.throughput = true;
    } else if (std::strcmp(arg, "--tune") == 0) {
      options.tune = true;
    } else if (std::strncmp(arg, "--cost-model=", 13) == 0) {
      options.cost_model = arg + 13;
    } else if (std::strcmp(arg, "--cost-model") == 0) {
      if (i + 1 >= argc) {
        Usage();
      }
      options.cost_model = argv[++i];
    } else if (std::strcmp(arg, "--explain-select") == 0) {
      options.explain_select = true;
    } else if (std::strcmp(arg, "--autotune") == 0) {
      options.autotune = true;
    } else if (std::strncmp(arg, "--apply-tune=", 13) == 0) {
      options.apply_tune = arg + 13;
    } else if (std::strcmp(arg, "--apply-tune") == 0) {
      if (i + 1 >= argc) {
        Usage();
      }
      options.apply_tune = argv[++i];
    } else if (std::strcmp(arg, "--print-ir") == 0) {
      options.print_ir = true;
    } else if (std::strcmp(arg, "--print-plan") == 0) {
      options.print_plan = true;
    } else if (std::strcmp(arg, "--disasm") == 0) {
      options.disasm = true;
    } else if (std::strcmp(arg, "--print-pipeline") == 0) {
      options.print_pipeline = true;
    } else if (std::strncmp(arg, "--dump-after=", 13) == 0) {
      options.dump_after = arg + 13;
    } else if (std::strcmp(arg, "--dump-after") == 0) {
      if (i + 1 >= argc) {
        Usage();
      }
      options.dump_after = argv[++i];
    } else if (std::strcmp(arg, "--compile-stats") == 0) {
      options.compile_stats = true;
    } else if (std::strcmp(arg, "--run") == 0) {
      options.run = true;
    } else if (arg[0] == '-') {
      std::fprintf(stderr, "unknown option: %s\n", arg);
      Usage();
    } else if (options.path.empty()) {
      options.path = arg;
    } else {
      Usage();
    }
  }
  if (options.path.empty() && !options.list_kernels) {
    Usage();
  }
  if (!options.cost_model.empty() && options.cost_model != "simulate" &&
      options.cost_model != "analytic") {
    std::fprintf(stderr, "unknown cost model: %s (simulate|analytic)\n",
                 options.cost_model.c_str());
    Usage();
  }
  if (options.cost_model == "simulate") {
    options.tune = true;  // the simulate model is dynamic-feedback tuning
    options.cost_model.clear();
  }
  if (!options.print_ir && !options.print_plan && !options.disasm &&
      !options.print_pipeline && options.dump_after.empty() &&
      !options.compile_stats && !options.autotune) {
    options.run = true;
  }
  if (options.explain_select) {
    options.run = true;  // the explanation records come from the verified run
  }
  if (!options.trace_path.empty()) {
    options.run = true;  // the trace captures the verified run
  }
  if (options.backend == compiler::BackendKind::kNative) {
    options.run = true;  // native numbers come from the verified run
  }
  return options;
}

harness::WorkloadInit MakeInit(const CliOptions& options) {
  const std::int64_t trip = options.trip;
  return [trip](std::uint64_t seed, const ir::Kernel& kernel,
                const ir::DataLayout& layout, ir::ParamEnv& params,
                std::vector<std::uint64_t>& memory) {
    Rng rng(seed);
    for (const ir::Symbol& sym : kernel.symbols()) {
      switch (sym.kind) {
        case ir::SymbolKind::kParam:
          if (sym.type == ir::ScalarType::kI64) {
            params.SetI64(sym.id, trip);
          } else {
            params.SetF64(sym.id, rng.NextDouble(0.5, 2.0));
          }
          break;
        case ir::SymbolKind::kArray: {
          const std::uint64_t base = layout.AddressOf(sym.id);
          for (std::int64_t i = 0; i < sym.array_size; ++i) {
            memory[base + static_cast<std::uint64_t>(i)] =
                sym.type == ir::ScalarType::kF64
                    ? std::bit_cast<std::uint64_t>(rng.NextDouble(0.5, 2.0))
                    : static_cast<std::uint64_t>(
                          rng.NextInt(0, sym.array_size - 1));
          }
          break;
        }
        case ir::SymbolKind::kScalar:
          break;
      }
    }
  };
}

/// --list-kernels: enumerate the Sequoia corpus so harness scripts stop
/// hard-coding the 18 names.  The fiber count comes from the default
/// rewrite pipeline (the Table III "initial fibers" statistic).
int ListKernels() {
  std::printf("%-12s %7s  %s\n", "kernel", "fibers", "source");
  for (const kernels::SequoiaKernel& kernel : kernels::SequoiaKernels()) {
    const ir::Kernel parsed = kernels::ParseSequoia(kernel);
    const compiler::PartitionResult partition =
        compiler::PartitionKernel(parsed, compiler::CompileOptions{},
                                  /*profile=*/nullptr);
    std::printf("%-12s %7d  %s\n", kernel.id.c_str(),
                partition.initial_fibers, kernel.location.c_str());
  }
  return 0;
}

int Main(int argc, char** argv) {
  CliOptions options = ParseArgs(argc, argv);
  if (options.list_kernels) {
    return ListKernels();
  }

  // A tune artifact's best point overrides the config knobs — autotuned
  // configs are addressable anywhere the CLI knobs are.
  if (!options.apply_tune.empty()) {
    std::ifstream tune_in(options.apply_tune);
    if (!tune_in) {
      std::fprintf(stderr, "fgparc: cannot open %s\n",
                   options.apply_tune.c_str());
      return 1;
    }
    std::stringstream tune_buffer;
    tune_buffer << tune_in.rdbuf();
    const harness::TuneResult tuned =
        harness::ParseTuneArtifact(tune_buffer.str());
    const harness::TunePoint& best = harness::BestPoint(tuned);
    options.cores = best.cores;
    options.capacity = best.queue_capacity;
    options.speculate = best.speculation;
    options.throughput = best.merge == 2;
    options.multi_pair = best.merge == 1;
    std::printf("applied tune point (%s): %s\n", tuned.kernel.c_str(),
                harness::TunePointLabel(best).c_str());
  }

  std::ifstream in(options.path);
  if (!in) {
    std::fprintf(stderr, "fgparc: cannot open %s\n", options.path.c_str());
    return 1;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();

  const ir::Kernel kernel = frontend::ParseKernel(buffer.str());
  const ir::DataLayout layout(kernel);

  compiler::CompileOptions compile;
  compile.num_cores = options.cores;
  compile.speculation = options.speculate;
  compile.throughput_heuristic = options.throughput;
  compile.multi_pair_merge = options.multi_pair;

  if (options.print_pipeline) {
    std::printf("%s", compiler::BuildParallelPipeline(compile).Describe().c_str());
  }
  if (!options.dump_after.empty() && options.dump_after != "all" &&
      !compiler::BuildParallelPipeline(compile).HasPass(options.dump_after)) {
    std::fprintf(stderr, "fgparc: --dump-after=%s: no such pass (see --print-pipeline)\n",
                 options.dump_after.c_str());
    return 2;
  }

  telemetry::AggregatingSink compile_sink;
  compiler::PipelineInstrumentation instrumentation;
  instrumentation.dump_after = options.dump_after;
  if (!options.dump_after.empty()) {
    instrumentation.dump_sink = [](const std::string& pass,
                                   const std::string& text) {
      std::printf("=== IR after '%s' ===\n%s\n", pass.c_str(), text.c_str());
    };
  }
  if (options.compile_stats) {
    instrumentation.telemetry = &compile_sink;
  }

  const compiler::CompiledParallel compiled = compiler::CompileParallel(
      kernel, layout, compile, /*profile=*/nullptr, /*evaluator=*/nullptr,
      &instrumentation);

  if (options.compile_stats) {
    const std::vector<telemetry::SpanRecord> pipelines =
        compile_sink.SpansInCategory("pipeline");
    const std::string pipeline =
        pipelines.empty() ? "parallel" : pipelines.back().name;
    const std::vector<telemetry::SpanRecord> pass_spans =
        compile_sink.SpansInCategory("pass");
    std::printf("%s",
                compiler::FormatCompileSpans(pipeline, pass_spans).c_str());
    const std::string path =
        harness::MakeCompileStatsArtifact(kernel.name(), pipeline, pass_spans)
            .WriteFile();
    std::printf("compile stats written: %s\n", path.c_str());
  }

  if (options.print_ir) {
    std::printf("%s\n", ir::PrintKernel(compiled.partition.kernel).c_str());
  }
  if (options.print_plan) {
    const analysis::KernelIndex index(compiled.partition.kernel);
    std::printf("partitions (%d cores used):\n", compiled.cores_used);
    for (std::size_t c = 0; c < compiled.partition.partitions.size(); ++c) {
      std::printf("  core %zu:\n", c);
      for (ir::StmtId id : compiled.partition.partitions[c]) {
        std::string text =
            ir::PrintStmts(compiled.partition.kernel, {*index.ByStmtId(id).stmt}, 0);
        if (!text.empty() && text.back() == '\n') {
          text.pop_back();
        }
        std::printf("    %s\n", text.c_str());
      }
    }
    std::printf("loop transfers: %d\n", compiled.comm.com_ops());
    for (const compiler::Transfer& t : compiled.comm.transfers) {
      std::printf("  %s: core %d -> core %d\n",
                  compiled.partition.kernel.temp(t.temp).name.c_str(), t.src_core,
                  t.dst_core);
    }
  }
  if (options.disasm) {
    std::printf("%s\n", isa::DisassembleProgram(compiled.program).c_str());
  }

  if (options.autotune) {
    harness::TuneOptions tune_options;
    tune_options.default_point.cores = options.cores;
    tune_options.default_point.queue_capacity = options.capacity;
    tune_options.default_point.speculation = options.speculate;
    tune_options.default_point.merge = options.throughput ? 2 : 0;
    tune_options.seed = options.seed;
    const harness::TuneResult tuned = harness::AutotuneKernel(
        kernel, MakeInit(options), harness::TuneSpace{}, tune_options);
    std::printf("kernel:       %s\n", kernel.name().c_str());
    std::printf("enumerated:   %zu configs\n", tuned.enumerated);
    std::printf("simulated:    %zu (frontier %zu, %.0f%% of the space)\n",
                tuned.simulated, tuned.frontier_size,
                100.0 * static_cast<double>(tuned.frontier_size) /
                    static_cast<double>(tuned.enumerated));
    for (const harness::TuneCandidate& candidate : tuned.candidates) {
      if (!candidate.simulated && candidate.note.empty()) {
        continue;  // predicted-only points stay in the artifact
      }
      std::printf("  %-28s predicted %.2f",
                  harness::TunePointLabel(candidate.point).c_str(),
                  candidate.predicted_speedup);
      if (candidate.simulated) {
        std::printf("  simulated %.2f", candidate.simulated_speedup);
      }
      if (!candidate.note.empty()) {
        std::printf("  [%s]", candidate.note.c_str());
      }
      std::printf("\n");
    }
    std::printf("default:      %s (speedup %.2f)\n",
                harness::TunePointLabel(
                    tuned.candidates[tuned.default_index].point)
                    .c_str(),
                tuned.default_speedup);
    std::printf("best:         %s (speedup %.2f)\n",
                harness::TunePointLabel(harness::BestPoint(tuned)).c_str(),
                tuned.best_speedup);
    const std::string artifact_path = "TUNE_" + kernel.name() + ".json";
    std::ofstream out(artifact_path, std::ios::binary);
    out << harness::EncodeTuneArtifact(tuned);
    out.close();
    std::printf("tune artifact written: %s\n", artifact_path.c_str());
    return 0;
  }

  if (options.run) {
    harness::KernelRunner runner(kernel, MakeInit(options));
    harness::RunConfig config;
    config.compile = compile;
    config.queue.transfer_latency = options.latency;
    config.queue.capacity = options.capacity;
    config.threads_per_core = options.smt;
    config.tune_by_simulation = options.tune;
    config.seed = options.seed;
    config.force_tier = options.tier;
    config.backend = options.backend;
    const model::AnalyticModel analytic;
    if (options.cost_model == "analytic") {
      config.cost_model = &analytic;
    }
    std::vector<compiler::CandidateReport> reports;
    if (options.explain_select) {
      config.candidate_reports_out = &reports;
    }
    telemetry::ChromeTraceSink trace_sink;
    if (!options.trace_path.empty()) {
      config.telemetry = &trace_sink;
    }
    const harness::KernelRun run = runner.Run(config);
    std::printf("kernel:       %s\n", kernel.name().c_str());
    std::printf("cores used:   %d (of %d budgeted", run.cores_used, options.cores);
    if (options.smt > 1) {
      std::printf(", %d threads/core", options.smt);
    }
    std::printf(")\n");
    std::printf("sequential:   %s cycles\n",
                FormatWithCommas(static_cast<long long>(run.seq_cycles)).c_str());
    std::printf("parallel:     %s cycles\n",
                FormatWithCommas(static_cast<long long>(run.par_cycles)).c_str());
    std::printf("speedup:      %.2f\n", run.speedup);
    std::printf("fibers:       %d (data deps %d, load balance %.2f)\n",
                run.initial_fibers, run.data_deps, run.load_balance);
    std::printf("comm:         %d loop transfers over %d queues\n", run.com_ops,
                run.queues_used);
    std::printf("verified:     memory bit-identical to the reference "
                "interpreter\n");
    if (options.explain_select) {
      std::printf("candidate selection (%zu enumerated):\n", reports.size());
      for (const compiler::CandidateReport& report : reports) {
        std::printf("  #%zu: %zu partitions, model %s",
                    report.index + 1, report.partitions, report.model.c_str());
        if (report.built) {
          std::printf(", cost %.2f%s\n", report.cost,
                      report.selected ? "  << selected" : "");
        } else {
          std::printf("  REJECTED\n");
        }
        if (!report.detail.empty()) {
          std::printf("      %s\n", report.detail.c_str());
        }
        for (const auto& [feature, value] : report.features) {
          std::printf("      %-24s %.2f\n", feature.c_str(), value);
        }
      }
    }
    if (run.native_run) {
      std::printf("native seq:   %.3f ms (1 thread)\n",
                  run.native_seq_seconds * 1e3);
      std::printf("native par:   %.3f ms (%d threads, %s ring transfers "
                  "over %d rings)\n",
                  run.native_par_seconds * 1e3, run.native_cores,
                  FormatWithCommas(static_cast<long long>(
                                       run.native_queue_transfers))
                      .c_str(),
                  run.native_rings_used);
      std::printf("native speedup: %.2f (measured wall-clock; simulated "
                  "%.2f)\n",
                  run.native_speedup, run.speedup);
      std::printf("native verified: memory bit-identical to the reference "
                  "interpreter\n");
    }
    if (!options.trace_path.empty()) {
      trace_sink.WriteFile(options.trace_path);
      std::printf("trace:        %s (open at ui.perfetto.dev)\n",
                  options.trace_path.c_str());
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return Main(argc, argv);
  } catch (const fgpar::Error& e) {
    std::fprintf(stderr, "fgparc: %s\n", e.what());
    return 1;
  }
}
