// fgpar-load — deterministic load-test client and SLO harness for fgpard.
//
// Usage:
//   fgpar-load --daemon PATH [options]     self-orchestrated SLO run
//   fgpar-load --socket PATH [options]     drive an already-running daemon
//
// Options:
//   --daemon PATH         fgpard binary to spawn/kill/restart (the SLO mode)
//   --socket PATH         socket to serve the mix on (default: a per-pid
//                         abstract name when spawning)
//   --work-dir DIR        cache/quarantine/trace directory when spawning
//                         (default fgpard_load_work; must exist)
//   --smoke               3-kernel subset of the 18-kernel mix
//   --clients N           concurrent client connections (default 4)
//   --fuzz N              seeded byte-mutated kernel requests (default 8)
//   --malformed N         malformed-payload probes (default 6)
//   --disconnects N       mid-stream disconnect probes (default 2)
//   --seed N              mix seed (default 0xF6AD)
//   --tier T              pin the simulator run tier for every mix request
//                         (auto|slow|fast|threaded; responses are
//                         byte-identical per tier, so the kill -9 replay
//                         invariants hold regardless)
//   --workers N           daemon worker threads (spawn mode; default 2)
//   --queue-depth N       daemon queue bound (spawn mode; default 4)
//   --drill-crash-every N daemon fault drill (spawn mode; default 0)
//   --kill9-restart       phase A, SIGKILL the daemon mid-life, restart it
//                         on the same cache file, phase B; assert every
//                         non-degraded 200 from A is answered byte-identically
//                         from the replayed cache in B
//   --sigterm-finish      finish with SIGTERM (drain) instead of the
//                         shutdown op; either way the daemon must exit 0
//   --max-p99-ms N        assert the daemon's own p99 service latency
//                         (stats: latency_p99_us, admission -> response)
//                         stays under N milliseconds; a breach is an SLO
//                         violation like any other (0 = don't assert)
//   --version             print version + build-config hash and exit
//
// The SLO this binary asserts (exit 0 only if all hold):
//   * every well-formed request gets exactly one parseable fgpar-rpc-v1
//     response with its id echoed — zero dropped or corrupted responses;
//   * every rejection (queue overflow, draining) is a structured 503 with
//     an error kind — never a closed connection or silence;
//   * every malformed probe gets a structured 400; oversized frames are
//     refused without reading the body; mid-stream disconnects leave the
//     daemon healthy (verified by a health request afterwards);
//   * with --kill9-restart: the restarted daemon serves every cacheable
//     phase-A success byte-identically, from cache (cache_hits covers them);
//   * the daemon's final exit status is 0 (drain semantics).
#include <fcntl.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "kernels/sequoia.hpp"
#include "service/client.hpp"
#include "service/protocol.hpp"
#include "support/buildinfo.hpp"
#include "support/error.hpp"
#include "support/json.hpp"

namespace {

using namespace fgpar;
using service::Op;
using service::Request;

struct Options {
  std::string daemon;
  std::string socket;
  std::string work_dir = "fgpard_load_work";
  bool smoke = false;
  int clients = 4;
  int fuzz = 8;
  int malformed = 6;
  int disconnects = 2;
  std::uint64_t seed = 0xF6AD;
  sim::RunTier tier = sim::RunTier::kAuto;
  int workers = 2;
  int queue_depth = 4;
  int drill_crash_every = 0;
  bool kill9_restart = false;
  bool sigterm_finish = false;
  double max_p99_ms = 0.0;
};

[[noreturn]] void Usage() {
  std::fprintf(stderr,
               "usage: fgpar-load (--daemon PATH | --socket PATH)\n"
               "                  [--work-dir DIR] [--smoke] [--clients N]\n"
               "                  [--fuzz N] [--malformed N] [--disconnects N]\n"
               "                  [--seed N] [--tier T] [--workers N]\n"
               "                  [--queue-depth N]\n"
               "                  [--drill-crash-every N] [--kill9-restart]\n"
               "                  [--sigterm-finish] [--max-p99-ms N]\n"
               "                  [--version]\n");
  std::exit(2);
}

std::uint64_t SplitMix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

// ---------------------------------------------------------------------------
// Socket plumbing — shared with every fgpar-rpc-v1 consumer
// ---------------------------------------------------------------------------

/// Connects via the shared client (service/client.hpp): deterministic
/// capped-exponential backoff absorbs the daemon's restart window in the
/// kill -9 drills, so the probes measure the service, not the scheduler.
int ConnectWithRetry(const std::string& path, double timeout_seconds) {
  return service::ConnectWithBackoff(path, timeout_seconds);
}

// ---------------------------------------------------------------------------
// The deterministic request mix
// ---------------------------------------------------------------------------

std::vector<Request> BuildMix(const Options& options) {
  const std::vector<kernels::SequoiaKernel>& all = kernels::SequoiaKernels();
  const std::size_t kernel_count =
      options.smoke ? std::min<std::size_t>(3, all.size()) : all.size();
  std::vector<Request> mix;
  std::uint64_t id = 0;
  for (const int cores : {2, 4}) {
    for (std::size_t k = 0; k < kernel_count; ++k) {
      Request request;
      request.op = Op::kCompileRun;
      request.id = ++id;
      request.kernel = all[k].source;
      request.config.cores = cores;
      request.config.trip = all[k].trip;
      request.config.seed = options.seed;
      request.config.tier = options.tier;
      mix.push_back(std::move(request));
    }
  }
  // Fuzz: seeded single-byte mutations of real kernels.  Whatever the
  // mutation does — parse error, different-but-valid kernel — the daemon
  // must answer with a structured response, never crash or hang.
  std::uint64_t rng = options.seed ^ 0xF022;
  for (int f = 0; f < options.fuzz; ++f) {
    Request request;
    request.op = Op::kCompileRun;
    request.id = ++id;
    request.kernel = all[SplitMix64(rng) % kernel_count].source;
    const std::size_t pos = SplitMix64(rng) % request.kernel.size();
    request.kernel[pos] =
        static_cast<char>(' ' + (SplitMix64(rng) % 94));  // printable
    request.config.cores = 2;
    request.config.trip = 64;
    request.config.seed = options.seed;
    mix.push_back(std::move(request));
  }
  return mix;
}

// ---------------------------------------------------------------------------
// Phase execution
// ---------------------------------------------------------------------------

struct PhaseResult {
  std::vector<std::string> responses;  // by mix index ("" = missing)
  std::vector<int> codes;              // -1 = missing
  std::atomic<std::uint64_t> rejections{0};  // structured 503s absorbed
  std::vector<std::string> violations;       // SLO breaches, with context
  std::mutex mutex;                          // guards violations
};

void Violate(PhaseResult& result, const std::string& message) {
  std::lock_guard<std::mutex> lock(result.mutex);
  result.violations.push_back(message);
}

/// Sends one request on an open connection and returns the raw response
/// payload, absorbing structured 503s with bounded retry.  Returns false
/// on a protocol violation (recorded in `result`).
bool Exchange(int& fd, const std::string& socket_path, const Request& request,
              PhaseResult& result, std::string& payload) {
  const std::string encoded = EncodeRequest(request);
  for (int attempt = 0; attempt < 400; ++attempt) {
    if (fd < 0) {
      fd = ConnectWithRetry(socket_path, 10.0);
      if (fd < 0) {
        Violate(result, "request " + std::to_string(request.id) +
                            ": cannot connect to " + socket_path);
        return false;
      }
    }
    if (!service::WriteFrame(fd, encoded)) {
      ::close(fd);
      fd = -1;
      continue;  // daemon may be between drain and restart
    }
    const service::ReadStatus status = service::ReadFrame(fd, payload);
    if (status != service::ReadStatus::kFrame) {
      // A draining daemon may close connections after answering; retry
      // on a fresh connection rather than calling it a drop.
      ::close(fd);
      fd = -1;
      continue;
    }
    try {
      const JsonValue doc = ParseJson(payload);
      if (doc.Get("schema").AsString() != service::kRpcSchema) {
        Violate(result, "request " + std::to_string(request.id) +
                            ": wrong response schema");
        return false;
      }
      const int code = static_cast<int>(doc.Get("code").AsI64());
      if (code == service::kRejected) {
        // Structured rejection: the SLO allows it, counted, retried.
        if (doc.Get("error").Get("kind").AsString().empty()) {
          Violate(result, "503 without an error kind");
          return false;
        }
        result.rejections.fetch_add(1, std::memory_order_relaxed);
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        continue;
      }
      if (doc.Get("id").AsU64() != request.id) {
        Violate(result, "request " + std::to_string(request.id) +
                            ": response echoed id " +
                            std::to_string(doc.Get("id").AsU64()));
        return false;
      }
      return true;
    } catch (const Error& e) {
      Violate(result, "request " + std::to_string(request.id) +
                          ": unparseable response: " + e.what());
      return false;
    }
  }
  Violate(result, "request " + std::to_string(request.id) +
                      ": retry budget exhausted (still 503 after 400 tries)");
  return false;
}

/// Runs the whole mix across N client threads (work-stealing by atomic
/// cursor, so any client may carry any request).
void RunPhase(const Options& options, const std::string& socket_path,
              const std::vector<Request>& mix, PhaseResult& result) {
  result.responses.assign(mix.size(), "");
  result.codes.assign(mix.size(), -1);
  std::atomic<std::size_t> cursor{0};
  std::vector<std::thread> clients;
  const int client_count = std::max(1, options.clients);
  for (int c = 0; c < client_count; ++c) {
    clients.emplace_back([&] {
      int fd = -1;
      for (;;) {
        const std::size_t index =
            cursor.fetch_add(1, std::memory_order_relaxed);
        if (index >= mix.size()) {
          break;
        }
        std::string payload;
        if (Exchange(fd, socket_path, mix[index], result, payload)) {
          const JsonValue doc = ParseJson(payload);
          result.responses[index] = payload;
          result.codes[index] = static_cast<int>(doc.Get("code").AsI64());
        }
      }
      if (fd >= 0) {
        ::close(fd);
      }
    });
  }
  for (std::thread& client : clients) {
    client.join();
  }
}

// ---------------------------------------------------------------------------
// Adversarial probes: malformed payloads, oversized frames, disconnects
// ---------------------------------------------------------------------------

void RunMalformedProbes(const Options& options, const std::string& socket_path,
                        PhaseResult& result) {
  static const std::vector<std::string> corpus = {
      "this is not json",
      "{\"schema\":\"fgpar-rpc-v1\",\"op\":\"compile_run\"",
      "{\"schema\":\"wrong-schema\",\"op\":\"health\",\"id\":1}",
      "{\"schema\":\"fgpar-rpc-v1\",\"op\":\"no_such_op\",\"id\":2}",
      "{\"schema\":\"fgpar-rpc-v1\",\"op\":\"compile_run\",\"id\":3}",
      "{\"schema\":\"fgpar-rpc-v1\",\"op\":\"compile_run\",\"id\":4,"
      "\"kernel\":\"kernel k { }\",\"config\":{\"cores\":9999}}",
      std::string(100, '[') + std::string(100, ']'),
      std::string("{\"schema\":\"fgpar-rpc-v1\",\"op\":\"health\",\"id\":\x01"
                  "5}"),
  };
  int fd = ConnectWithRetry(socket_path, 10.0);
  if (fd < 0) {
    Violate(result, "malformed probes: cannot connect");
    return;
  }
  for (int i = 0; i < options.malformed; ++i) {
    const std::string& payload = corpus[static_cast<std::size_t>(i) %
                                        corpus.size()];
    if (!service::WriteFrame(fd, payload)) {
      ::close(fd);
      fd = ConnectWithRetry(socket_path, 10.0);
      if (fd < 0) {
        Violate(result, "malformed probes: daemon gone");
        return;
      }
      continue;
    }
    std::string response;
    if (service::ReadFrame(fd, response) != service::ReadStatus::kFrame) {
      Violate(result, "malformed probe " + std::to_string(i) +
                          ": no structured response");
      ::close(fd);
      fd = ConnectWithRetry(socket_path, 10.0);
      continue;
    }
    try {
      const JsonValue doc = ParseJson(response);
      if (doc.Get("code").AsI64() != service::kBadRequest) {
        Violate(result, "malformed probe " + std::to_string(i) +
                            ": expected 400, got " +
                            std::to_string(doc.Get("code").AsI64()));
      }
    } catch (const Error& e) {
      Violate(result, std::string("malformed probe response unparseable: ") +
                          e.what());
    }
  }
  // Oversized frame: declare 9 MiB; the daemon must refuse with a 400
  // without reading the (absent) body, then close.
  const std::uint32_t huge = (9u << 20);
  char header[4] = {static_cast<char>(huge & 0xFF),
                    static_cast<char>((huge >> 8) & 0xFF),
                    static_cast<char>((huge >> 16) & 0xFF),
                    static_cast<char>((huge >> 24) & 0xFF)};
  if (::send(fd, header, 4, MSG_NOSIGNAL) == 4) {
    std::string response;
    if (service::ReadFrame(fd, response) != service::ReadStatus::kFrame) {
      Violate(result, "oversized frame: no structured response");
    } else {
      try {
        const JsonValue doc = ParseJson(response);
        if (doc.Get("code").AsI64() != service::kBadRequest) {
          Violate(result, "oversized frame: expected 400");
        }
      } catch (const Error&) {
        Violate(result, "oversized frame: unparseable response");
      }
    }
  }
  ::close(fd);
}

void RunDisconnectProbes(const Options& options,
                         const std::string& socket_path, PhaseResult& result) {
  for (int i = 0; i < options.disconnects; ++i) {
    const int fd = ConnectWithRetry(socket_path, 10.0);
    if (fd < 0) {
      Violate(result, "disconnect probes: cannot connect");
      return;
    }
    if (i % 2 == 0) {
      // Vanish after two header bytes.
      const char partial[2] = {0x10, 0x00};
      (void)::send(fd, partial, 2, MSG_NOSIGNAL);
    } else {
      // Declare 64 bytes, send 10, vanish.
      const char header[4] = {64, 0, 0, 0};
      (void)::send(fd, header, 4, MSG_NOSIGNAL);
      (void)::send(fd, "half a fra", 10, MSG_NOSIGNAL);
    }
    ::close(fd);
  }
  // The daemon must still answer health after all of that.
  const int fd = ConnectWithRetry(socket_path, 10.0);
  if (fd < 0) {
    Violate(result, "health after disconnect probes: cannot connect");
    return;
  }
  Request health;
  health.op = Op::kHealth;
  health.id = 999999;
  std::string payload;
  int mutable_fd = fd;
  if (!Exchange(mutable_fd, socket_path, health, result, payload)) {
    Violate(result, "health after disconnect probes failed");
  }
  if (mutable_fd >= 0) {
    ::close(mutable_fd);
  }
}

/// Fetches the stats counters as a map (empty on failure, with violation).
std::map<std::string, std::uint64_t> FetchStats(const std::string& socket_path,
                                                PhaseResult& result) {
  std::map<std::string, std::uint64_t> stats;
  Request request;
  request.op = Op::kStats;
  request.id = 999998;
  int fd = -1;
  std::string payload;
  if (!Exchange(fd, socket_path, request, result, payload)) {
    return stats;
  }
  const JsonValue doc = ParseJson(payload);
  for (const auto& [name, value] : doc.Get("stats").AsObject()) {
    stats[name] = value.AsU64();
  }
  if (fd >= 0) {
    ::close(fd);
  }
  return stats;
}

// ---------------------------------------------------------------------------
// Daemon orchestration (spawn/kill/restart)
// ---------------------------------------------------------------------------

pid_t SpawnDaemon(const Options& options, const std::string& socket_path) {
  std::vector<std::string> args = {
      options.daemon,
      "--socket", socket_path,
      "--cache", options.work_dir + "/cache.fgc",
      "--quarantine-dir", options.work_dir + "/quarantine",
      "--workers", std::to_string(options.workers),
      "--queue-depth", std::to_string(options.queue_depth),
  };
  if (options.drill_crash_every > 0) {
    args.push_back("--drill-crash-every");
    args.push_back(std::to_string(options.drill_crash_every));
  }
  const pid_t pid = ::fork();
  if (pid < 0) {
    std::perror("fork");
    std::exit(1);
  }
  if (pid == 0) {
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (std::string& arg : args) {
      argv.push_back(arg.data());
    }
    argv.push_back(nullptr);
    ::execv(argv[0], argv.data());
    std::perror("execv fgpard");
    std::_Exit(127);
  }
  return pid;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  auto next_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      Usage();
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--version") == 0) {
      std::printf("fgpar-load %s config %s\n", BuildVersionString().c_str(),
                  BuildConfigHashHex().c_str());
      return 0;
    } else if (std::strcmp(arg, "--daemon") == 0) {
      options.daemon = next_value(i);
    } else if (std::strcmp(arg, "--socket") == 0) {
      options.socket = next_value(i);
    } else if (std::strcmp(arg, "--work-dir") == 0) {
      options.work_dir = next_value(i);
    } else if (std::strcmp(arg, "--smoke") == 0) {
      options.smoke = true;
    } else if (std::strcmp(arg, "--clients") == 0) {
      options.clients = std::atoi(next_value(i));
    } else if (std::strcmp(arg, "--fuzz") == 0) {
      options.fuzz = std::atoi(next_value(i));
    } else if (std::strcmp(arg, "--malformed") == 0) {
      options.malformed = std::atoi(next_value(i));
    } else if (std::strcmp(arg, "--disconnects") == 0) {
      options.disconnects = std::atoi(next_value(i));
    } else if (std::strcmp(arg, "--seed") == 0) {
      options.seed = static_cast<std::uint64_t>(std::atoll(next_value(i)));
    } else if (std::strcmp(arg, "--tier") == 0) {
      options.tier = sim::ParseRunTier(next_value(i));
    } else if (std::strcmp(arg, "--workers") == 0) {
      options.workers = std::atoi(next_value(i));
    } else if (std::strcmp(arg, "--queue-depth") == 0) {
      options.queue_depth = std::atoi(next_value(i));
    } else if (std::strcmp(arg, "--drill-crash-every") == 0) {
      options.drill_crash_every = std::atoi(next_value(i));
    } else if (std::strcmp(arg, "--kill9-restart") == 0) {
      options.kill9_restart = true;
    } else if (std::strcmp(arg, "--sigterm-finish") == 0) {
      options.sigterm_finish = true;
    } else if (std::strcmp(arg, "--max-p99-ms") == 0) {
      options.max_p99_ms = std::atof(next_value(i));
    } else {
      std::fprintf(stderr, "fgpar-load: unknown option %s\n", arg);
      Usage();
    }
  }
  if (options.daemon.empty() && options.socket.empty()) {
    Usage();
  }
  const bool spawning = !options.daemon.empty();
  std::string socket_path = options.socket;
  if (socket_path.empty()) {
    socket_path = "@fgpard-load-" + std::to_string(::getpid());
  }

  const std::vector<Request> mix = BuildMix(options);
  std::printf("fgpar-load: %zu well-formed requests, %d fuzz, %d malformed, "
              "%d disconnects, %d clients\n",
              mix.size(), options.fuzz, options.malformed,
              options.disconnects, options.clients);

  pid_t daemon_pid = -1;
  if (spawning) {
    // Fresh slate per run: a stale cache or quarantine from an earlier
    // invocation must not leak into this run's SLO accounting.
    std::error_code ec;
    std::filesystem::remove_all(options.work_dir, ec);
    std::filesystem::create_directories(options.work_dir, ec);
    if (ec) {
      std::fprintf(stderr, "fgpar-load: cannot create work dir %s: %s\n",
                   options.work_dir.c_str(), ec.message().c_str());
      return 1;
    }
    daemon_pid = SpawnDaemon(options, socket_path);
  }

  PhaseResult phase_a;
  RunPhase(options, socket_path, mix, phase_a);
  RunMalformedProbes(options, socket_path, phase_a);
  RunDisconnectProbes(options, socket_path, phase_a);

  std::size_t compared = 0;
  PhaseResult phase_b;
  if (options.kill9_restart && spawning) {
    // The crash: no warning, no cleanup.  Durability must already be on
    // disk.
    ::kill(daemon_pid, SIGKILL);
    int status = 0;
    ::waitpid(daemon_pid, &status, 0);
    daemon_pid = SpawnDaemon(options, socket_path);

    RunPhase(options, socket_path, mix, phase_b);
    const std::map<std::string, std::uint64_t> stats =
        FetchStats(socket_path, phase_b);
    for (std::size_t i = 0; i < mix.size(); ++i) {
      if (phase_a.codes[i] != service::kOk) {
        continue;
      }
      // Only fully-successful (non-degraded) responses are cacheable and
      // therefore byte-stable across the crash.
      const JsonValue doc = ParseJson(phase_a.responses[i]);
      if (doc.Get("result").Get("degraded").AsBool()) {
        continue;
      }
      ++compared;
      if (phase_b.responses[i] != phase_a.responses[i]) {
        Violate(phase_b,
                "request " + std::to_string(mix[i].id) +
                    ": post-restart response differs from pre-crash bytes");
      }
    }
    const auto hits = stats.find("cache_hits");
    if (compared > 0 &&
        (hits == stats.end() || hits->second < compared)) {
      Violate(phase_b, "restarted daemon should have served >= " +
                           std::to_string(compared) +
                           " responses from the replayed cache, saw " +
                           std::to_string(hits == stats.end() ? 0
                                                              : hits->second));
    }
    std::printf("fgpar-load: kill -9 + restart: %zu responses byte-compared "
                "against the replayed cache\n",
                compared);
  }

  // --max-p99-ms: the latency SLO, asserted from the daemon's own
  // service-latency histogram (stats op) while it is still serving.
  if (options.max_p99_ms > 0.0) {
    PhaseResult& sink = options.kill9_restart && spawning ? phase_b : phase_a;
    const std::map<std::string, std::uint64_t> stats =
        FetchStats(socket_path, sink);
    const auto p50 = stats.find("latency_p50_us");
    const auto p99 = stats.find("latency_p99_us");
    if (p99 == stats.end() || p50 == stats.end()) {
      Violate(sink, "stats response lacks latency_p50_us/latency_p99_us");
    } else {
      std::printf("fgpar-load: service latency p50 %.3f ms, p99 %.3f ms "
                  "(bound %.1f ms, %llu samples)\n",
                  static_cast<double>(p50->second) / 1e3,
                  static_cast<double>(p99->second) / 1e3, options.max_p99_ms,
                  static_cast<unsigned long long>(
                      stats.count("latency_samples")
                          ? stats.at("latency_samples")
                          : 0));
      if (static_cast<double>(p99->second) > options.max_p99_ms * 1e3) {
        Violate(sink, "p99 service latency " +
                          std::to_string(p99->second / 1000) +
                          " ms exceeds the --max-p99-ms bound of " +
                          std::to_string(options.max_p99_ms) + " ms");
      }
    }
  }

  // Graceful finish: SIGTERM drain or the shutdown op; either way the
  // daemon must exit 0.
  int daemon_exit_violations = 0;
  if (spawning) {
    if (options.sigterm_finish) {
      ::kill(daemon_pid, SIGTERM);
    } else {
      Request request;
      request.op = Op::kShutdown;
      request.id = 999997;
      int fd = -1;
      std::string payload;
      PhaseResult scratch;
      if (!Exchange(fd, socket_path, request, scratch, payload)) {
        ::kill(daemon_pid, SIGTERM);  // fall back so the run terminates
      }
      if (fd >= 0) {
        ::close(fd);
      }
    }
    int status = 0;
    ::waitpid(daemon_pid, &status, 0);
    if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
      ++daemon_exit_violations;
      std::fprintf(stderr,
                   "fgpar-load: daemon did not exit cleanly (status %d)\n",
                   status);
    }
  }

  // ---------------------------------------------------------------------
  // The verdict
  // ---------------------------------------------------------------------
  std::size_t ok = 0, missing = 0;
  for (std::size_t i = 0; i < mix.size(); ++i) {
    if (phase_a.codes[i] < 0) {
      ++missing;
    } else {
      ++ok;
    }
  }
  std::size_t violation_count = phase_a.violations.size() +
                                phase_b.violations.size() +
                                static_cast<std::size_t>(daemon_exit_violations);
  for (const PhaseResult* phase : {&phase_a, &phase_b}) {
    for (const std::string& violation : phase->violations) {
      std::fprintf(stderr, "SLO violation: %s\n", violation.c_str());
    }
  }
  std::printf("fgpar-load: %zu/%zu responses, %llu structured rejections "
              "absorbed, %zu byte-compared, %zu violations\n",
              ok, mix.size(),
              static_cast<unsigned long long>(
                  phase_a.rejections.load() + phase_b.rejections.load()),
              compared, violation_count);
  if (missing > 0 || violation_count > 0) {
    std::printf("SLO: FAIL\n");
    return 1;
  }
  std::printf("SLO: OK\n");
  return 0;
}
