// fgpard — the crash-safe, overload-tolerant compile-and-simulate daemon.
//
// Usage:
//   fgpard --socket PATH [options]
//
// Options:
//   --socket PATH        local stream socket to serve on; a leading '@'
//                        binds the Linux abstract namespace (no
//                        filesystem entry), anything else is a
//                        filesystem socket unlinked on clean shutdown
//   --cache FILE         persist the compile cache here ("fgpar-cache-v1",
//                        atomic temp+rename per insert; default: none).
//                        A daemon restarted after kill -9 replays the file
//                        and serves cached responses byte-identically.
//   --cache-entries N    cache capacity before FIFO eviction (default 4096)
//   --workers N          compile worker threads (default: FGPAR_SWEEP_THREADS
//                        or the host's hardware concurrency)
//   --queue-depth N      bounded request queue; overflow gets a structured
//                        503 (default 16)
//   --deadline S         per-request wall-clock deadline in seconds,
//                        measured from admission (default: none)
//   --cycle-budget N     simulated-cycle budget per measured execution;
//                        overruns degrade to a sequential-only result and
//                        then to a structured 408 (default: none)
//   --quarantine-dir DIR emit a repro bundle per quarantined request
//   --drill-crash-every N fault drill: every Nth executed (non-cached)
//                        compile_run fails with an injected error and is
//                        quarantined — exercises the structured-500 path
//   --trace FILE         write a Chrome trace_event capture of request
//                        spans on exit (open at ui.perfetto.dev)
//   --version            print version + build-config hash and exit
//
// Lifecycle: SIGTERM/SIGINT (or a shutdown request) drains — in-flight
// and queued requests finish, their responses are delivered, and the
// process exits 0.  kill -9 is recovered by the cache: every 200 was
// persisted before it was acknowledged, so the restarted daemon serves
// the same bytes.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "service/core.hpp"
#include "service/server.hpp"
#include "support/buildinfo.hpp"
#include "support/error.hpp"
#include "support/telemetry/sinks.hpp"

namespace {

using namespace fgpar;

[[noreturn]] void Usage() {
  std::fprintf(
      stderr,
      "usage: fgpard --socket PATH [--cache FILE] [--cache-entries N]\n"
      "              [--workers N] [--queue-depth N] [--deadline S]\n"
      "              [--cycle-budget N] [--quarantine-dir DIR]\n"
      "              [--drill-crash-every N] [--trace FILE] [--version]\n");
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path;
  std::string trace_path;
  service::ServiceConfig config;

  auto next_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      Usage();
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--version") == 0) {
      std::printf("fgpard %s config %s\n", BuildVersionString().c_str(),
                  BuildConfigHashHex().c_str());
      return 0;
    } else if (std::strcmp(arg, "--socket") == 0) {
      socket_path = next_value(i);
    } else if (std::strcmp(arg, "--cache") == 0) {
      config.cache_path = next_value(i);
    } else if (std::strcmp(arg, "--cache-entries") == 0) {
      config.cache_max_entries =
          static_cast<std::size_t>(std::atoll(next_value(i)));
    } else if (std::strcmp(arg, "--workers") == 0) {
      config.workers = std::atoi(next_value(i));
    } else if (std::strcmp(arg, "--queue-depth") == 0) {
      config.queue_depth = static_cast<std::size_t>(std::atoll(next_value(i)));
    } else if (std::strcmp(arg, "--deadline") == 0) {
      config.request_deadline_seconds = std::atof(next_value(i));
    } else if (std::strcmp(arg, "--cycle-budget") == 0) {
      config.cycle_budget =
          static_cast<std::uint64_t>(std::atoll(next_value(i)));
    } else if (std::strcmp(arg, "--quarantine-dir") == 0) {
      config.quarantine_dir = next_value(i);
    } else if (std::strcmp(arg, "--drill-crash-every") == 0) {
      config.drill_crash_every =
          static_cast<std::size_t>(std::atoll(next_value(i)));
    } else if (std::strcmp(arg, "--trace") == 0) {
      trace_path = next_value(i);
    } else {
      std::fprintf(stderr, "fgpard: unknown option %s\n", arg);
      Usage();
    }
  }
  if (socket_path.empty()) {
    Usage();
  }

  try {
    telemetry::ChromeTraceSink trace_sink;
    if (!trace_path.empty()) {
      config.telemetry = &trace_sink;
    }
    service::ServiceCore core(config);
    const service::CompileCache::Stats loaded = core.cache().stats();
    service::SocketServer server(core, socket_path);
    service::SocketServer::InstallSignalHandlers();
    server.Start();
    // The "listening" line is the readiness handshake load clients wait
    // for before connecting.
    std::printf("fgpard: listening on %s (%s; cache: %s, %llu entries"
                " replayed, %llu corrupt evicted)\n",
                socket_path.c_str(), BuildVersionString().c_str(),
                config.cache_path.empty() ? "memory-only"
                                          : config.cache_path.c_str(),
                static_cast<unsigned long long>(loaded.loaded),
                static_cast<unsigned long long>(loaded.corrupt_evicted));
    std::fflush(stdout);

    const int rc = server.ServeUntilShutdown();

    const auto counters = core.Counters();
    const auto get = [&counters](const char* name) -> unsigned long long {
      const auto it = counters.find(name);
      return it == counters.end() ? 0ull
                                  : static_cast<unsigned long long>(it->second);
    };
    std::printf("fgpard: drained; %llu requests (%llu ok, %llu rejected, "
                "%llu quarantined), cache %llu hits / %llu misses\n",
                get("requests_total"), get("responses_200"),
                get("responses_503"), get("quarantined"), get("cache_hits"),
                get("cache_misses"));
    if (!trace_path.empty()) {
      trace_sink.WriteFile(trace_path);
      std::printf("fgpard: trace written: %s\n", trace_path.c_str());
    }
    return rc;
  } catch (const fgpar::Error& e) {
    std::fprintf(stderr, "fgpard: %s\n", e.what());
    return 1;
  }
}
