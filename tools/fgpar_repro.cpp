// fgpar-repro — replays a quarantined-point repro bundle.
//
// Usage:
//   fgpar-repro <bundle-dir> [--trace <out.json>]
//
// A bundle (see harness/repro.hpp) holds the kernel source, the exact
// RunConfig of the failed attempt (seed, faults, watchdog, budgets), the
// recorded failure text, and the Machine::Snapshot() taken at the instant
// the parallel attempt failed.  This tool rebuilds the workload from the
// manifest, replays the verifying pipeline with the recorded
// configuration — the fault/watchdog settings force the instrumented
// reference loop — and checks the failure reproduces bit-exactly:
//
//   * the replay must fail (a clean completion means no repro);
//   * the exception text must match the recorded failure message;
//   * the machine snapshot at failure must byte-compare equal to the
//     bundled snapshot.bin (skipped when the bundle has no snapshot,
//     e.g. for failures outside a parallel attempt).
//
// Exit code 0 and a final "reproduced" line when all checks pass; exit 1
// otherwise, with the mismatch on stderr.
//
// --trace <out.json> additionally captures the replay as a Chrome
// trace_event file — compile pass spans plus the failing attempt's
// per-core issue, queue, and stall events — written whether or not the
// failure reproduces, so "what was the machine doing when it died" is
// inspectable at ui.perfetto.dev.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "harness/repro.hpp"
#include "harness/runner.hpp"
#include "kernels/sequoia.hpp"
#include "support/buildinfo.hpp"
#include "support/error.hpp"
#include "support/telemetry/sinks.hpp"

int main(int argc, char** argv) {
  using namespace fgpar;

  std::string bundle_dir;
  std::string trace_path;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--version") == 0) {
      std::printf("fgpar-repro %s config %s\n", BuildVersionString().c_str(),
                  BuildConfigHashHex().c_str());
      return 0;
    } else if (std::strcmp(arg, "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (std::strncmp(arg, "--trace=", 8) == 0) {
      trace_path = arg + 8;
    } else if (bundle_dir.empty() && arg[0] != '-') {
      bundle_dir = arg;
    } else {
      bundle_dir.clear();
      break;
    }
  }
  if (bundle_dir.empty()) {
    std::fprintf(stderr, "usage: fgpar-repro <bundle-dir> [--trace <out.json>]\n");
    return 2;
  }

  try {
    const harness::ReproBundle bundle =
        harness::LoadReproBundle(bundle_dir);
    std::printf("bundle: %s point %llu (%s), attempt %d of %d\n",
                bundle.experiment.c_str(),
                static_cast<unsigned long long>(bundle.point_index),
                bundle.label.c_str(), bundle.attempt, bundle.failure_attempts);
    std::printf("kernel: %s (trip %lld), seed 0x%llx\n",
                bundle.kernel_id.c_str(),
                static_cast<long long>(bundle.trip),
                static_cast<unsigned long long>(bundle.config.seed));
    std::printf("recorded failure: %s\n", bundle.failure_message.c_str());

    kernels::SequoiaKernel kernel;
    kernel.id = bundle.kernel_id;
    kernel.source = bundle.kernel_source;
    kernel.trip = bundle.trip;
    kernel.f64_params = bundle.f64_params;

    harness::RunConfig config = bundle.config;
    // Replay must fail loudly, not degrade: never fall back to sequential
    // numbers, and capture the machine state at the failing attempt.
    config.fallback.fall_back_to_sequential = false;
    std::vector<std::uint8_t> replay_snapshot;
    config.on_parallel_failure = [&](const sim::Machine& machine, const Error&,
                                     int) {
      replay_snapshot = machine.Snapshot();
    };
    telemetry::ChromeTraceSink trace_sink;
    if (!trace_path.empty()) {
      config.telemetry = &trace_sink;
    }

    const ir::Kernel parsed = kernels::ParseSequoia(kernel);
    harness::KernelRunner runner(parsed, kernels::SequoiaInit(kernel));

    std::string replay_message;
    bool replay_failed = false;
    try {
      (void)runner.Run(config);
    } catch (const Error& e) {
      replay_failed = true;
      replay_message = e.what();
    }
    // The trace covers the replay up to (and including) the failure; it
    // is written even when the repro checks below fail — a diverging
    // replay is exactly when you want to see what the machine did.
    if (!trace_path.empty()) {
      trace_sink.WriteFile(trace_path);
      std::printf("trace written: %s (open at ui.perfetto.dev)\n",
                  trace_path.c_str());
    }
    if (!replay_failed) {
      std::fprintf(stderr,
                   "NOT reproduced: the replay completed without failing\n");
      return 1;
    }

    bool ok = true;
    if (replay_message != bundle.failure_message) {
      std::fprintf(stderr,
                   "NOT reproduced: failure text differs\n  recorded: %s\n"
                   "  replayed: %s\n",
                   bundle.failure_message.c_str(), replay_message.c_str());
      ok = false;
    }
    if (!bundle.snapshot.empty() && replay_snapshot != bundle.snapshot) {
      std::fprintf(stderr,
                   "NOT reproduced: machine snapshot at failure differs "
                   "(recorded %zu bytes, replayed %zu bytes)\n",
                   bundle.snapshot.size(), replay_snapshot.size());
      ok = false;
    }
    if (!ok) {
      return 1;
    }
    std::printf("reproduced: failure text%s match the recorded run\n",
                bundle.snapshot.empty() ? "" : " and machine snapshot");
    return 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "fgpar-repro: %s\n", e.what());
    return 2;
  }
}
