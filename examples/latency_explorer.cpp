// latency_explorer: how queue parameters shape fine-grained parallelism.
//
// Sweeps the two hardware knobs of Section II — transfer latency and queue
// capacity — over a communication-heavy pipelined kernel and prints the
// resulting 4-core speedup grid.  Shows the paper's central sensitivity
// result (Figure 13) from a different angle: capacity buys tolerance to
// latency only up to the point where the dependence structure saturates.
#include <cstdio>

#include "frontend/parser.hpp"
#include "harness/runner.hpp"
#include "support/rng.hpp"
#include "support/str.hpp"
#include "support/table.hpp"

namespace {

constexpr const char* kKernel = R"(
kernel latency_probe {
  param i64 n;
  array f64 a[1024];
  array f64 o[1024];
  loop i = 0 .. n {
    f64 s1 = a[i] * 2.0 + 1.0;
    f64 s2 = s1 * s1 - a[i];
    f64 s3 = s2 / (abs(s1) + 1.0);
    f64 s4 = sqrt(abs(s2 + s3));
    o[i] = s4 * s3 + s2 - s1;
  }
}
)";

}  // namespace

int main() {
  using namespace fgpar;

  ir::Kernel kernel = frontend::ParseKernel(kKernel);
  harness::WorkloadInit init = [](std::uint64_t /*seed*/, const ir::Kernel& k,
                                  const ir::DataLayout& layout,
                                  ir::ParamEnv& params,
                                  std::vector<std::uint64_t>& memory) {
    Rng rng(5);
    for (const ir::Symbol& sym : k.symbols()) {
      if (sym.kind == ir::SymbolKind::kParam) {
        params.SetI64(sym.id, 500);
      } else if (sym.kind == ir::SymbolKind::kArray) {
        for (std::int64_t j = 0; j < sym.array_size; ++j) {
          memory[layout.AddressOf(sym.id) + static_cast<std::uint64_t>(j)] =
              std::bit_cast<std::uint64_t>(rng.NextDouble(0.5, 2.0));
        }
      }
    }
  };
  harness::KernelRunner runner(kernel, init);

  const std::vector<int> latencies = {1, 5, 10, 20, 50};
  const std::vector<int> capacities = {1, 2, 4, 8, 20};

  std::vector<std::string> header = {"capacity \\ latency"};
  for (int latency : latencies) {
    header.push_back(std::to_string(latency));
  }
  TextTable table(header);
  for (int capacity : capacities) {
    std::vector<std::string> row = {std::to_string(capacity)};
    for (int latency : latencies) {
      harness::RunConfig config;
      config.compile.num_cores = 4;
      config.queue.capacity = capacity;
      config.queue.transfer_latency = latency;
      const harness::KernelRun run = runner.Run(config);
      row.push_back(FormatFixed(run.speedup, 2));
    }
    table.AddRow(row);
  }
  std::printf("%s\n",
              table
                  .Render("4-core speedup of a pipelined dependence chain vs "
                          "queue transfer latency (columns)\nand queue capacity "
                          "(rows) — deeper queues hide more latency, up to the "
                          "dependence limit")
                  .c_str());
  return 0;
}
