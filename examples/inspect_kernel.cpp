// inspect_kernel: deep-dive into how the compiler parallelizes one kernel.
//
//   ./inspect_kernel [kernel-id] [cores] [--speculate] [--disasm]
//
// Prints the rewritten (fiberized) kernel, the per-core partition, the
// communication plan, and — after simulating — per-core cycle/stall
// breakdowns.  Defaults to lammps-1 on 4 cores.
#include <cstdio>
#include <cstring>
#include <string>

#include "analysis/index.hpp"
#include "compiler/compile.hpp"
#include "isa/disasm.hpp"
#include "kernels/experiments.hpp"
#include "kernels/sequoia.hpp"
#include "sim/machine.hpp"
#include "ir/printer.hpp"
#include "support/str.hpp"

int main(int argc, char** argv) {
  using namespace fgpar;

  std::string id = "lammps-1";
  int cores = 4;
  bool speculate = false;
  bool disasm = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--speculate") == 0) {
      speculate = true;
    } else if (std::strcmp(argv[i], "--disasm") == 0) {
      disasm = true;
    } else if (argv[i][0] >= '0' && argv[i][0] <= '9') {
      cores = std::atoi(argv[i]);
    } else {
      id = argv[i];
    }
  }

  const kernels::SequoiaKernel& spec = kernels::SequoiaKernelById(id);
  std::printf("=== %s (%s) — %s ===\n\n", spec.id.c_str(),
              spec.application.c_str(), spec.location.c_str());

  const ir::Kernel kernel = kernels::ParseSequoia(spec);
  const ir::DataLayout layout(kernel);
  compiler::CompileOptions options;
  options.num_cores = cores;
  options.speculation = speculate;

  const compiler::CompiledParallel compiled =
      compiler::CompileParallel(kernel, layout, options);

  std::printf("--- rewritten kernel (after split/speculation/forwarding/"
              "fiberize) ---\n%s\n",
              ir::PrintKernel(compiled.partition.kernel).c_str());

  const analysis::KernelIndex index(compiled.partition.kernel);
  std::printf("--- partitions (%d cores used) ---\n", compiled.cores_used);
  for (std::size_t c = 0; c < compiled.partition.partitions.size(); ++c) {
    std::printf("core %zu (%d compute ops):\n", c,
                compiled.partition.compute_ops_per_core[c]);
    for (ir::StmtId stmt_id : compiled.partition.partitions[c]) {
      const analysis::StmtEntry& entry = index.ByStmtId(stmt_id);
      std::string text = ir::PrintStmts(compiled.partition.kernel,
                                        {*entry.stmt}, 0);
      if (!text.empty() && text.back() == '\n') {
        text.pop_back();
      }
      std::printf("  s%-3d %s\n", stmt_id, text.c_str());
    }
  }

  std::printf("\n--- communication plan (%d loop transfers) ---\n",
              compiled.comm.com_ops());
  for (const compiler::Transfer& t : compiled.comm.transfers) {
    std::printf("  %s: core %d -> core %d (producer s%d, path depth %zu)\n",
                compiled.partition.kernel.temp(t.temp).name.c_str(), t.src_core,
                t.dst_core, t.producer_stmt, t.path.size());
  }
  for (const compiler::LiveOut& lo : compiled.comm.live_outs) {
    std::printf("  live-out %s: core %d -> core 0\n",
                compiled.partition.kernel.temp(lo.temp).name.c_str(), lo.src_core);
  }

  if (disasm) {
    std::printf("\n--- disassembly ---\n%s\n",
                isa::DisassembleProgram(compiled.program).c_str());
  }

  // Run and report per-core behaviour on a fresh machine.
  {
    const ir::Kernel k2 = kernels::ParseSequoia(spec);
    harness::KernelRunner runner(k2, kernels::SequoiaInit(spec));
    (void)runner;
  }
  sim::MachineConfig mconfig;
  mconfig.num_cores = compiled.cores_used;
  std::uint64_t words = 1024;
  while (words < layout.end() + 64) {
    words *= 2;
  }
  mconfig.memory_words = words;
  sim::Machine machine(mconfig, compiled.program);
  {
    ir::ParamEnv env(kernel);
    std::vector<std::uint64_t> image(layout.end(), 0);
    kernels::SequoiaInit(spec)(0x5EED, kernel, layout, env, image);
    for (const ir::Symbol& sym : kernel.symbols()) {
      if (sym.kind == ir::SymbolKind::kParam) {
        image[layout.ParamAddressOf(sym.id)] = env.GetRaw(sym.id);
      }
    }
    for (std::uint64_t a2 = 0; a2 < image.size(); ++a2) {
      machine.memory().WriteRaw(a2, image[a2]);
    }
  }
  machine.StartCoreAt(0, "main");
  for (int c = 1; c < compiled.cores_used; ++c) {
    machine.StartCoreAt(c, "driver");
  }
  machine.Run();
  std::printf("\n--- per-core pipeline behaviour ---\n");
  for (int c = 0; c < compiled.cores_used; ++c) {
    const sim::CoreStats& st = machine.core(c).stats();
    std::printf("core %d: %8llu instrs, raw stalls %8llu, deq-empty %8llu, "
                "enq-full %8llu\n",
                c, (unsigned long long)st.instructions,
                (unsigned long long)st.stall_raw,
                (unsigned long long)st.stall_queue_empty,
                (unsigned long long)st.stall_queue_full);
  }

  kernels::ExperimentConfig config;
  config.cores = cores;
  config.speculation = speculate;
  const harness::KernelRun run = kernels::RunKernel(spec, config);
  std::printf("\n--- simulation ---\n");
  std::printf("sequential: %s cycles (%s instructions)\n",
              FormatWithCommas(static_cast<long long>(run.seq_cycles)).c_str(),
              FormatWithCommas(static_cast<long long>(run.seq_instructions)).c_str());
  std::printf("parallel:   %s cycles (%s instructions, %s queue transfers)\n",
              FormatWithCommas(static_cast<long long>(run.par_cycles)).c_str(),
              FormatWithCommas(static_cast<long long>(run.par_instructions)).c_str(),
              FormatWithCommas(static_cast<long long>(run.par_queue_transfers)).c_str());
  std::printf("speedup:    %.2f   (load balance %.2f, %d queues used, "
              "peak queue occupancy %d/20)\n",
              run.speedup, run.load_balance, run.queues_used,
              run.max_queue_occupancy);
  return 0;
}
