// speculation: the Figure 10 control-flow speculation pattern.
//
// A loop whose body is dominated by an if-then-else with expensive,
// side-effect-free arms (the recurring pattern the paper found in its
// applications, e.g. sphot's collision-vs-boundary branch).  Without
// speculation, the arm computation waits for the condition value; with the
// @speculate directive (Section III-H), both arms execute ahead of time on
// different cores and the condition only selects which result commits — no
// rollback can ever be needed.
#include <cstdio>

#include "frontend/parser.hpp"
#include "harness/runner.hpp"
#include "support/rng.hpp"
#include "support/str.hpp"

namespace {

constexpr const char* kKernel = R"(
kernel fig10 {
  param i64 n;
  array f64 xs[1024];
  array f64 ys[1024];
  array f64 out[1024];
  loop i = 0 .. n {
    f64 cnd = xs[i] * ys[i] + xs[i];
    @speculate if (cnd < 2.0) {
      # Func2: expensive pure computation
      f64 t2 = sqrt(abs(xs[i] * 3.0 + ys[i])) / (xs[i] + 1.0) + ys[i]*ys[i];
      out[i] = t2;
    } else {
      # Func3: a different expensive pure computation
      f64 t3 = xs[i]*xs[i]*ys[i] + ys[i] / (abs(xs[i]) + 0.5) + 1.0;
      out[i] = t3;
    }
  }
}
)";

}  // namespace

int main() {
  using namespace fgpar;

  ir::Kernel kernel = frontend::ParseKernel(kKernel);
  harness::WorkloadInit init = [](std::uint64_t /*seed*/, const ir::Kernel& k,
                                  const ir::DataLayout& layout,
                                  ir::ParamEnv& params,
                                  std::vector<std::uint64_t>& memory) {
    Rng rng(99);
    for (const ir::Symbol& sym : k.symbols()) {
      if (sym.kind == ir::SymbolKind::kParam) {
        params.SetI64(sym.id, 600);
      } else if (sym.kind == ir::SymbolKind::kArray) {
        for (std::int64_t j = 0; j < sym.array_size; ++j) {
          memory[layout.AddressOf(sym.id) + static_cast<std::uint64_t>(j)] =
              std::bit_cast<std::uint64_t>(rng.NextDouble(0.5, 2.0));
        }
      }
    }
  };

  harness::KernelRunner runner(kernel, init);
  std::printf("Control-flow speculation (Figure 10 of the paper), 4 cores\n\n");
  for (bool speculate : {false, true}) {
    harness::RunConfig config;
    config.compile.num_cores = 4;
    config.compile.speculation = speculate;
    const harness::KernelRun run = runner.Run(config);
    std::printf("%-18s speedup %.2f  (%llu cycles, %d loop transfers)\n",
                speculate ? "with @speculate:" : "baseline:", run.speedup,
                static_cast<unsigned long long>(run.par_cycles), run.com_ops);
  }
  std::printf("\nBoth versions produce bit-identical memory — the limited\n"
              "speculation form never needs rollback.\n");
  return 0;
}
