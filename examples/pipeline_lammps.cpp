// pipeline_lammps: the Figure 2 example — a lammps loop body executing in
// a pipelined fashion across 3 cores.
//
// Uses the kernel language frontend, compiles for 1..4 cores, and shows how
// the loop's dependent statement chain pipelines across cores: each core
// runs every iteration of *its* fibers, with queue transfers decoupling the
// stages so different cores can be several iterations apart (bounded by the
// queue capacity).
#include <cstdio>

#include "frontend/parser.hpp"
#include "harness/runner.hpp"
#include "support/rng.hpp"
#include "support/str.hpp"

namespace {

constexpr const char* kLoop = R"(
# A lammps-style pair loop: gathered neighbor coordinates, a distance
# chain, a spline evaluation, and dependent force terms (Figure 2 shape).
kernel lammps_pipeline {
  param i64 n;
  param f64 rdr;
  array i64 jlist[1024];
  array f64 xt[1024];
  array f64 yt[1024];
  array f64 zt[1024];
  array f64 c0[1024];
  array f64 c1[1024];
  array f64 c2[1024];
  array f64 fout[1024];
  array f64 eout[1024];
  loop i = 0 .. n {
    i64 j = jlist[i];
    f64 dx = xt[j];
    f64 dy = yt[j];
    f64 dz = zt[j];
    f64 rsq = dx*dx + dy*dy + dz*dz;
    f64 r = sqrt(rsq);
    f64 p = r * rdr;
    i64 m = i64(p);
    f64 t = p - f64(m);
    f64 phi = (c2[m]*t + c1[m])*t + c0[m];
    f64 fpair = phi / (r + 0.1);
    fout[i] = fpair * dx;
    eout[i] = phi * 0.5 + fpair * r;
  }
}
)";

}  // namespace

int main() {
  using namespace fgpar;

  ir::Kernel kernel = frontend::ParseKernel(kLoop);
  harness::WorkloadInit init = [](std::uint64_t /*seed*/, const ir::Kernel& k,
                                  const ir::DataLayout& layout,
                                  ir::ParamEnv& params,
                                  std::vector<std::uint64_t>& memory) {
    Rng rng(7);
    for (const ir::Symbol& sym : k.symbols()) {
      if (sym.kind == ir::SymbolKind::kParam) {
        if (sym.type == ir::ScalarType::kI64) {
          params.SetI64(sym.id, 600);
        } else {
          params.SetF64(sym.id, 1.5);
        }
      } else if (sym.kind == ir::SymbolKind::kArray) {
        for (std::int64_t j = 0; j < sym.array_size; ++j) {
          const std::uint64_t addr =
              layout.AddressOf(sym.id) + static_cast<std::uint64_t>(j);
          if (sym.type == ir::ScalarType::kF64) {
            memory[addr] = std::bit_cast<std::uint64_t>(rng.NextDouble(0.5, 2.0));
          } else {
            memory[addr] = static_cast<std::uint64_t>(rng.NextInt(0, 1023));
          }
        }
      }
    }
  };

  harness::KernelRunner runner(kernel, init);
  std::printf("Pipelined execution of a lammps loop (Figure 2 of the paper)\n\n");
  std::printf("%6s  %12s  %8s  %10s  %8s\n", "cores", "cycles", "speedup",
              "transfers", "queues");

  std::uint64_t seq_cycles = 0;
  for (int cores : {1, 2, 3, 4}) {
    harness::RunConfig config;
    config.compile.num_cores = cores;
    if (cores == 1) {
      seq_cycles = runner.MeasureSequential(config);
      std::printf("%6d  %12s  %8s  %10s  %8s\n", 1,
                  FormatWithCommas(static_cast<long long>(seq_cycles)).c_str(),
                  "1.00", "-", "-");
      continue;
    }
    const harness::KernelRun run = runner.Run(config);
    std::printf("%6d  %12s  %8s  %10s  %8d\n", cores,
                FormatWithCommas(static_cast<long long>(run.par_cycles)).c_str(),
                FormatFixed(run.speedup, 2).c_str(),
                FormatWithCommas(static_cast<long long>(run.par_queue_transfers))
                    .c_str(),
                run.queues_used);
  }
  std::printf("\nEvery configuration verified bit-exactly against the "
              "reference interpreter.\n");
  return 0;
}
