// cg_solver: a mini-application built on the library — conjugate gradient
// on the simulated queue-accelerated multicore.
//
// This is how a downstream user composes the system: the three vector
// kernels of a CG step (the irs MatrixSolveCG shape, Table I) are written
// in the kernel language, compiled once for fine-grained parallel
// execution, and launched once per solver iteration on a 4-core simulated
// machine.  Solver state (x, r, p, q) lives in a host-side memory image
// that is loaded into the machine before each launch and read back after;
// the scalar reductions (p·q, r·r) come back through kernel epilogues and
// the host does the 2-flop alpha/beta arithmetic between launches —
// exactly the primary-core/secondary-core division of labour the paper's
// execution model prescribes.
//
// The system solved is a symmetric positive-definite tridiagonal operator
//   (A v)[i] = d*v[i] - v[i-1] - v[i+1]       (d > 2)
// and the example reports the residual per iteration, the simulated cycle
// cost per CG step, and the speedup over running the same kernels
// sequentially.
#include <cmath>
#include <cstdio>
#include <vector>

#include "compiler/compile.hpp"
#include "frontend/parser.hpp"
#include "ir/layout.hpp"
#include "sim/machine.hpp"
#include "support/rng.hpp"
#include "support/str.hpp"

namespace {

using namespace fgpar;

constexpr int kN = 256;          // unknowns (interior of a padded array)
constexpr double kDiag = 2.05;   // operator diagonal (> 2 => SPD)

/// q = A p;  pq = p . q     (p is padded: p[0] = p[n+1] = 0)
constexpr const char* kApKernel = R"(
kernel apply_a {
  param i64 n;
  param f64 diag;
  array f64 p[258];
  array f64 q[258];
  scalar f64 pq_out;
  carried f64 pq = 0.0;
  loop i = 1 .. n {
    f64 av = diag * p[i] - p[i-1] - p[i+1];
    q[i] = av;
    pq = pq + p[i] * av;
  }
  after {
    pq_out = pq;
  }
}
)";

/// x += alpha p;  r -= alpha q;  rr = r . r
constexpr const char* kUpdateKernel = R"(
kernel update_xr {
  param i64 n;
  param f64 alpha;
  array f64 x[258];
  array f64 r[258];
  array f64 p[258];
  array f64 q[258];
  scalar f64 rr_out;
  carried f64 rr = 0.0;
  loop i = 1 .. n {
    x[i] = x[i] + alpha * p[i];
    r[i] = r[i] - alpha * q[i];
    rr = rr + r[i] * r[i];
  }
  after {
    rr_out = rr;
  }
}
)";

/// p = r + beta p
constexpr const char* kDirectionKernel = R"(
kernel update_p {
  param i64 n;
  param f64 beta;
  array f64 r[258];
  array f64 p[258];
  loop i = 1 .. n {
    p[i] = r[i] + beta * p[i];
  }
}
)";

/// One compiled kernel plus its layout, ready to launch repeatedly.
struct LaunchableKernel {
  ir::Kernel kernel;
  ir::DataLayout layout;
  compiler::CompiledParallel parallel;
  isa::Program sequential;

  explicit LaunchableKernel(const char* source, int cores)
      : kernel(frontend::ParseKernel(source)),
        layout(kernel),
        parallel([&] {
          compiler::CompileOptions options;
          options.num_cores = cores;
          return compiler::CompileParallel(kernel, layout, options);
        }()),
        sequential(compiler::CompileSequential(kernel, layout,
                                               compiler::CompileOptions{})) {}

  ir::SymbolId Find(const std::string& name) const {
    for (const ir::Symbol& sym : kernel.symbols()) {
      if (sym.name == name) {
        return sym.id;
      }
    }
    throw Error("no symbol " + name + " in " + kernel.name());
  }
};

/// Host-side vectors for the solver state.
struct HostState {
  std::vector<double> x, r, p, q;  // padded to kN + 2
};

/// Launches one kernel: copies the named vectors in, runs, copies back.
/// Returns simulated cycles (core 0's halt).
std::uint64_t Launch(const LaunchableKernel& lk, bool parallel, HostState& state,
                     const std::vector<std::pair<std::string, std::vector<double>*>>& binds,
                     const std::vector<std::pair<std::string, double>>& f64_params,
                     double* scalar_out, const std::string& scalar_name) {
  sim::MachineConfig config;
  config.num_cores = parallel ? lk.parallel.cores_used : 1;
  std::uint64_t words = 1024;
  while (words < lk.layout.end() + 64) {
    words *= 2;
  }
  config.memory_words = words;

  sim::Machine machine(config, parallel ? lk.parallel.program : lk.sequential);
  // Parameters.
  for (const ir::Symbol& sym : lk.kernel.symbols()) {
    if (sym.kind != ir::SymbolKind::kParam) {
      continue;
    }
    if (sym.type == ir::ScalarType::kI64) {
      machine.memory().WriteI64(lk.layout.ParamAddressOf(sym.id), kN + 1);
    } else {
      for (const auto& [name, value] : f64_params) {
        if (sym.name == name) {
          machine.memory().WriteF64(lk.layout.ParamAddressOf(sym.id), value);
        }
      }
    }
  }
  // Vectors in.
  for (const auto& [name, vec] : binds) {
    const std::uint64_t base = lk.layout.AddressOf(lk.Find(name));
    for (std::size_t i = 0; i < vec->size(); ++i) {
      machine.memory().WriteF64(base + i, (*vec)[i]);
    }
  }

  machine.StartCoreAt(0, "main");
  if (parallel) {
    for (int c = 1; c < lk.parallel.cores_used; ++c) {
      machine.StartCoreAt(c, "driver");
    }
  }
  const sim::RunResult result = machine.Run();

  // Vectors out.
  for (const auto& [name, vec] : binds) {
    const std::uint64_t base = lk.layout.AddressOf(lk.Find(name));
    for (std::size_t i = 0; i < vec->size(); ++i) {
      (*vec)[i] = machine.memory().ReadF64(base + i);
    }
  }
  if (scalar_out != nullptr) {
    *scalar_out = machine.memory().ReadF64(lk.layout.AddressOf(lk.Find(scalar_name)));
  }
  (void)state;
  return result.core0_halt_cycle;
}

}  // namespace

int main() {
  const int cores = 4;
  LaunchableKernel apply_a(kApKernel, cores);
  LaunchableKernel update_xr(kUpdateKernel, cores);
  LaunchableKernel update_p(kDirectionKernel, cores);

  std::printf("CG on a %d-point SPD operator, kernels on %d simulated cores\n\n",
              kN, cores);

  std::uint64_t cycles_by_mode[2] = {0, 0};
  for (bool parallel : {false, true}) {
    HostState s;
    s.x.assign(kN + 2, 0.0);
    s.r.assign(kN + 2, 0.0);
    s.p.assign(kN + 2, 0.0);
    s.q.assign(kN + 2, 0.0);
    Rng rng(31);
    double rr = 0.0;
    for (int i = 1; i <= kN; ++i) {
      s.r[static_cast<std::size_t>(i)] = rng.NextDouble(-1.0, 1.0);  // r0 = b
      s.p[static_cast<std::size_t>(i)] = s.r[static_cast<std::size_t>(i)];
      rr += s.r[static_cast<std::size_t>(i)] * s.r[static_cast<std::size_t>(i)];
    }
    const double rr0 = rr;

    std::uint64_t total_cycles = 0;
    int iterations = 0;
    while (iterations < 50 && rr > 1e-18 * rr0) {
      double pq = 0.0;
      total_cycles += Launch(apply_a, parallel, s,
                             {{"p", &s.p}, {"q", &s.q}}, {{"diag", kDiag}}, &pq,
                             "pq_out");
      const double alpha = rr / pq;
      double rr_new = 0.0;
      total_cycles += Launch(update_xr, parallel, s,
                             {{"x", &s.x}, {"r", &s.r}, {"p", &s.p}, {"q", &s.q}},
                             {{"alpha", alpha}}, &rr_new, "rr_out");
      const double beta = rr_new / rr;
      total_cycles += Launch(update_p, parallel, s, {{"r", &s.r}, {"p", &s.p}},
                             {{"beta", beta}}, nullptr, "");
      rr = rr_new;
      ++iterations;
    }

    cycles_by_mode[parallel ? 1 : 0] = total_cycles;
    std::printf("%-11s %3d iterations, residual reduced %.1e x, "
                "%s simulated cycles (%s / CG step)\n",
                parallel ? "parallel:" : "sequential:", iterations,
                std::sqrt(rr0 / rr),
                FormatWithCommas(static_cast<long long>(total_cycles)).c_str(),
                FormatWithCommas(static_cast<long long>(
                                     total_cycles /
                                     static_cast<std::uint64_t>(iterations)))
                    .c_str());
  }

  std::printf("\nwhole-solver speedup: %.2f  (identical convergence — the "
              "parallel kernels are bit-exact)\n",
              static_cast<double>(cycles_by_mode[0]) /
                  static_cast<double>(cycles_by_mode[1]));
  return 0;
}
