// quickstart: the Figure 1 example, end to end.
//
// The paper's introductory example distributes
//     x = a*b + c*d;   y = x + e;   z = c*d - a*e;
// (per loop iteration) over two cores that exchange values through the
// hardware queues.  This example builds that kernel with the programmatic
// KernelBuilder API, compiles it sequentially and for 2 cores, runs both on
// the simulator, verifies the results bit-exactly against the reference
// interpreter, and reports the speedup.
#include <cstdio>

#include "harness/runner.hpp"
#include "ir/builder.hpp"
#include "ir/printer.hpp"
#include "support/rng.hpp"

int main() {
  using namespace fgpar;
  using ir::Val;

  // ---- build the kernel (Figure 1, wrapped in a loop over arrays) ----
  ir::KernelBuilder kb("fig1");
  Val n = kb.ParamI64("n");
  ir::ArrayHandle a = kb.ArrayF64("a", 512);
  ir::ArrayHandle b = kb.ArrayF64("b", 512);
  ir::ArrayHandle c = kb.ArrayF64("c", 512);
  ir::ArrayHandle d = kb.ArrayF64("d", 512);
  ir::ArrayHandle e = kb.ArrayF64("e", 512);
  ir::ArrayHandle x = kb.ArrayF64("x", 512);
  ir::ArrayHandle y = kb.ArrayF64("y", 512);
  ir::ArrayHandle z = kb.ArrayF64("z", 512);

  kb.StartLoop("i", kb.ConstI(0), n);
  Val i = kb.Iv();
  ir::TempHandle t_ab = kb.DeclTemp("t_ab", ir::ScalarType::kF64);
  ir::TempHandle t_cd = kb.DeclTemp("t_cd", ir::ScalarType::kF64);
  ir::TempHandle t_x = kb.DeclTemp("t_x", ir::ScalarType::kF64);
  kb.Assign(t_ab, kb.Load(a, i) * kb.Load(b, i));
  kb.Assign(t_cd, kb.Load(c, i) * kb.Load(d, i));
  kb.Assign(t_x, kb.Read(t_ab) + kb.Read(t_cd));
  kb.Store(x, i, kb.Read(t_x));
  kb.Store(y, i, kb.Read(t_x) + kb.Load(e, i));
  kb.Store(z, i, kb.Read(t_cd) - kb.Load(a, i) * kb.Load(e, i));
  ir::Kernel kernel = kb.Finish();

  std::printf("Kernel under test (Figure 1 of the paper):\n%s\n",
              ir::PrintKernel(kernel).c_str());

  // ---- workload ----
  harness::WorkloadInit init = [](std::uint64_t /*seed*/, const ir::Kernel& k,
                                  const ir::DataLayout& layout,
                                  ir::ParamEnv& params,
                                  std::vector<std::uint64_t>& memory) {
    Rng rng(2024);
    for (const ir::Symbol& sym : k.symbols()) {
      if (sym.kind == ir::SymbolKind::kParam) {
        params.SetI64(sym.id, 500);
      } else if (sym.kind == ir::SymbolKind::kArray) {
        for (std::int64_t j = 0; j < sym.array_size; ++j) {
          memory[layout.AddressOf(sym.id) + static_cast<std::uint64_t>(j)] =
              std::bit_cast<std::uint64_t>(rng.NextDouble(-1.0, 1.0));
        }
      }
    }
  };

  // ---- compile, simulate, verify, measure ----
  harness::KernelRunner runner(kernel, init);
  harness::RunConfig config;
  config.compile.num_cores = 2;
  const harness::KernelRun run = runner.Run(config);

  std::printf("sequential cycles: %llu\n",
              static_cast<unsigned long long>(run.seq_cycles));
  std::printf("2-core cycles:     %llu\n",
              static_cast<unsigned long long>(run.par_cycles));
  std::printf("speedup:           %.2f\n", run.speedup);
  std::printf("loop transfers:    %d (across %d hardware queues)\n", run.com_ops,
              run.queues_used);
  std::printf("\nResults verified bit-exactly against the reference "
              "interpreter.\n");
  return 0;
}
