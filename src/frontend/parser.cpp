#include "frontend/parser.hpp"

#include <map>

#include "frontend/lexer.hpp"
#include "ir/builder.hpp"
#include "ir/validate.hpp"

namespace fgpar::frontend {
namespace {

using ir::ArrayHandle;
using ir::BinOp;
using ir::Kernel;
using ir::KernelBuilder;
using ir::ScalarHandle;
using ir::ScalarType;
using ir::TempHandle;
using ir::UnOp;
using ir::Val;

class ParserImpl {
 public:
  explicit ParserImpl(const std::string& source)
      : tokens_(Lex(source)), kb_(nullptr) {}

  Kernel Run() {
    Expect(TokenKind::kKernel);
    const Token name = Expect(TokenKind::kIdent);
    kb_ = std::make_unique<KernelBuilder>(name.text);
    Expect(TokenKind::kLBrace);
    while (PeekIsDecl()) {
      ParseDecl();
    }
    ParseLoop();
    if (Peek().kind == TokenKind::kAfter) {
      Advance();
      Expect(TokenKind::kLBrace);
      while (Peek().kind != TokenKind::kRBrace) {
        ParseStatement();
      }
      Expect(TokenKind::kRBrace);
    }
    Expect(TokenKind::kRBrace);
    Expect(TokenKind::kEof);
    Kernel kernel = kb_->Finish();
    ir::CheckValid(kernel);
    return kernel;
  }

 private:
  // ---- token plumbing ----
  const Token& Peek(std::size_t ahead = 0) const {
    const std::size_t i = std::min(pos_ + ahead, tokens_.size() - 1);
    return tokens_[i];
  }
  const Token& Advance() { return tokens_[std::min(pos_++, tokens_.size() - 1)]; }
  bool Accept(TokenKind kind) {
    if (Peek().kind == kind) {
      Advance();
      return true;
    }
    return false;
  }
  const Token& Expect(TokenKind kind) {
    if (Peek().kind != kind) {
      Fail("expected " + TokenKindName(kind) + ", found " +
           TokenKindName(Peek().kind));
    }
    return Advance();
  }
  [[noreturn]] void Fail(const std::string& message) const {
    throw ParseError(message, Peek().line, Peek().column);
  }

  // ---- recursion guard ----
  // Expressions and statements recurse; pathological nesting ("((((..." or
  // a tower of ifs) must surface as a ParseError with a location, never as
  // a stack overflow.  The parser abandons the token stream on throw, so a
  // plain RAII counter is enough.
  static constexpr int kMaxNestingDepth = 256;
  struct DepthGuard {
    explicit DepthGuard(ParserImpl* p) : parser(p) {
      if (++parser->depth_ > kMaxNestingDepth) {
        parser->Fail("nesting too deep (limit " +
                     std::to_string(kMaxNestingDepth) + " levels)");
      }
    }
    ~DepthGuard() { --parser->depth_; }
    ParserImpl* parser;
  };

  // ---- name table ----
  enum class NameKind { kParam, kArray, kScalar, kTemp };
  struct Entity {
    NameKind kind;
    ScalarType type;
    Val param_val;  // kParam
    ArrayHandle array;
    ScalarHandle scalar;
    TempHandle temp;
    bool carried = false;
  };

  const Entity& Lookup(const Token& name) const {
    const auto it = names_.find(name.text);
    if (it == names_.end()) {
      throw ParseError("unknown identifier '" + name.text + "'", name.line,
                       name.column);
    }
    return it->second;
  }

  void Declare(const Token& name, Entity entity) {
    if (names_.contains(name.text) || name.text == iv_name_) {
      throw ParseError("redeclaration of '" + name.text + "'", name.line,
                       name.column);
    }
    names_.emplace(name.text, std::move(entity));
  }

  // ---- declarations ----
  bool PeekIsDecl() const {
    switch (Peek().kind) {
      case TokenKind::kParam: case TokenKind::kArray: case TokenKind::kScalar:
      case TokenKind::kCarried:
        return true;
      default:
        return false;
    }
  }

  ScalarType ParseType() {
    if (Accept(TokenKind::kI64)) {
      return ScalarType::kI64;
    }
    if (Accept(TokenKind::kF64)) {
      return ScalarType::kF64;
    }
    Fail("expected 'i64' or 'f64'");
  }

  void ParseDecl() {
    const TokenKind kind = Advance().kind;
    const ScalarType type = ParseType();
    const Token name = Expect(TokenKind::kIdent);
    switch (kind) {
      case TokenKind::kParam: {
        Val v = type == ScalarType::kI64 ? kb_->ParamI64(name.text)
                                         : kb_->ParamF64(name.text);
        Declare(name, Entity{NameKind::kParam, type, v, {}, {}, {}, false});
        break;
      }
      case TokenKind::kArray: {
        Expect(TokenKind::kLBracket);
        const Token size = Expect(TokenKind::kIntLit);
        Expect(TokenKind::kRBracket);
        ArrayHandle h = type == ScalarType::kI64
                            ? kb_->ArrayI64(name.text, size.int_value)
                            : kb_->ArrayF64(name.text, size.int_value);
        Declare(name, Entity{NameKind::kArray, type, {}, h, {}, {}, false});
        break;
      }
      case TokenKind::kScalar: {
        ScalarHandle h = type == ScalarType::kI64 ? kb_->ScalarI64(name.text)
                                                  : kb_->ScalarF64(name.text);
        Declare(name, Entity{NameKind::kScalar, type, {}, {}, h, {}, false});
        break;
      }
      case TokenKind::kCarried: {
        Expect(TokenKind::kAssign);
        TempHandle h;
        if (type == ScalarType::kI64) {
          const bool negative = Accept(TokenKind::kMinus);
          const Token lit = Expect(TokenKind::kIntLit);
          h = kb_->DeclCarriedI64(name.text,
                                  negative ? -lit.int_value : lit.int_value);
        } else {
          const bool negative = Accept(TokenKind::kMinus);
          const Token& lit = Peek();
          double value = 0.0;
          if (Accept(TokenKind::kFloatLit)) {
            value = lit.float_value;
          } else if (Accept(TokenKind::kIntLit)) {
            value = static_cast<double>(lit.int_value);
          } else {
            Fail("expected numeric initializer");
          }
          h = kb_->DeclCarriedF64(name.text, negative ? -value : value);
        }
        Declare(name, Entity{NameKind::kTemp, type, {}, {}, {}, h, true});
        break;
      }
      default:
        Fail("expected declaration");
    }
    Expect(TokenKind::kSemi);
  }

  // ---- loop ----
  void ParseLoop() {
    Expect(TokenKind::kLoop);
    const Token iv = Expect(TokenKind::kIdent);
    if (names_.contains(iv.text)) {
      throw ParseError("induction variable shadows declaration '" + iv.text + "'",
                       iv.line, iv.column);
    }
    iv_name_ = iv.text;
    Expect(TokenKind::kAssign);
    Val lower = ParseExpr();
    Expect(TokenKind::kDotDot);
    Val upper = ParseExpr();
    kb_->StartLoop(iv_name_, lower, upper);
    Expect(TokenKind::kLBrace);
    while (Peek().kind != TokenKind::kRBrace) {
      ParseStatement();
    }
    Expect(TokenKind::kRBrace);
    kb_->EndLoop();
  }

  // ---- statements ----
  void ParseStatement() {
    DepthGuard guard(this);
    kb_->SetLine(Peek().line);
    switch (Peek().kind) {
      case TokenKind::kI64:
      case TokenKind::kF64:
        ParseTempDef();
        return;
      case TokenKind::kAtSpeculate:
      case TokenKind::kIf:
        ParseIf();
        return;
      case TokenKind::kIdent:
        ParseAssignment();
        return;
      default:
        Fail("expected a statement, found " + TokenKindName(Peek().kind));
    }
  }

  void ParseTempDef() {
    const ScalarType type = ParseType();
    const Token name = Expect(TokenKind::kIdent);
    Expect(TokenKind::kAssign);
    Val value = ParseExpr();
    if (value.type() != type) {
      throw ParseError("initializer type mismatch for '" + name.text +
                           "' (use f64()/i64() casts)",
                       name.line, name.column);
    }
    Expect(TokenKind::kSemi);
    TempHandle h = kb_->DeclTemp(name.text, type);
    Declare(name, Entity{NameKind::kTemp, type, {}, {}, {}, h, false});
    kb_->Assign(h, value);
  }

  void ParseAssignment() {
    const Token name = Expect(TokenKind::kIdent);
    const Entity& entity = Lookup(name);
    if (Accept(TokenKind::kLBracket)) {
      if (entity.kind != NameKind::kArray) {
        throw ParseError("'" + name.text + "' is not an array", name.line,
                         name.column);
      }
      Val index = ParseExpr();
      Expect(TokenKind::kRBracket);
      Expect(TokenKind::kAssign);
      Val value = ParseExpr();
      Expect(TokenKind::kSemi);
      CheckAssignType(name, entity.type, value);
      kb_->Store(entity.array, index, value);
      return;
    }
    Expect(TokenKind::kAssign);
    Val value = ParseExpr();
    Expect(TokenKind::kSemi);
    CheckAssignType(name, entity.type, value);
    switch (entity.kind) {
      case NameKind::kScalar:
        kb_->StoreScalar(entity.scalar, value);
        return;
      case NameKind::kTemp:
        kb_->Assign(entity.temp, value);
        return;
      default:
        throw ParseError("cannot assign to '" + name.text + "'", name.line,
                         name.column);
    }
  }

  void CheckAssignType(const Token& name, ScalarType target, Val value) const {
    if (value.type() != target) {
      throw ParseError("assignment type mismatch for '" + name.text +
                           "' (use f64()/i64() casts)",
                       name.line, name.column);
    }
  }

  void ParseIf() {
    const bool speculate = Accept(TokenKind::kAtSpeculate);
    Expect(TokenKind::kIf);
    Expect(TokenKind::kLParen);
    Val cond = ParseExpr();
    if (cond.type() != ScalarType::kI64) {
      Fail("if condition must be i64");
    }
    Expect(TokenKind::kRParen);
    auto parse_block = [this] {
      Expect(TokenKind::kLBrace);
      while (Peek().kind != TokenKind::kRBrace) {
        ParseStatement();
      }
      Expect(TokenKind::kRBrace);
    };
    // KernelBuilder::If drives the block callbacks; parsing happens inside.
    bool has_else = false;
    kb_->If(
        cond, [&] { parse_block(); },
        [&] {
          if (Accept(TokenKind::kElse)) {
            has_else = true;
            parse_block();
          }
        },
        speculate);
    (void)has_else;
  }

  // ---- expressions (precedence climbing) ----
  Val ParseExpr() {
    DepthGuard guard(this);
    return ParseBitOr();
  }

  Val ParseBitOr() {
    Val lhs = ParseBitXor();
    while (Peek().kind == TokenKind::kPipe) {
      Advance();
      lhs = kb_->Binary(BinOp::kOr, lhs, ParseBitXor());
    }
    return lhs;
  }

  Val ParseBitXor() {
    Val lhs = ParseBitAnd();
    while (Peek().kind == TokenKind::kCaret) {
      Advance();
      lhs = kb_->Binary(BinOp::kXor, lhs, ParseBitAnd());
    }
    return lhs;
  }

  Val ParseBitAnd() {
    Val lhs = ParseEquality();
    while (Peek().kind == TokenKind::kAmp) {
      Advance();
      lhs = kb_->Binary(BinOp::kAnd, lhs, ParseEquality());
    }
    return lhs;
  }

  Val ParseEquality() {
    Val lhs = ParseRelational();
    for (;;) {
      if (Accept(TokenKind::kEq)) {
        lhs = kb_->Binary(BinOp::kEq, lhs, ParseRelational());
      } else if (Accept(TokenKind::kNe)) {
        lhs = kb_->Binary(BinOp::kNe, lhs, ParseRelational());
      } else {
        return lhs;
      }
    }
  }

  Val ParseRelational() {
    Val lhs = ParseShift();
    for (;;) {
      if (Accept(TokenKind::kLt)) {
        lhs = kb_->Binary(BinOp::kLt, lhs, ParseShift());
      } else if (Accept(TokenKind::kLe)) {
        lhs = kb_->Binary(BinOp::kLe, lhs, ParseShift());
      } else if (Accept(TokenKind::kGt)) {
        Val rhs = ParseShift();
        lhs = kb_->Binary(BinOp::kLt, rhs, lhs);
      } else if (Accept(TokenKind::kGe)) {
        Val rhs = ParseShift();
        lhs = kb_->Binary(BinOp::kLe, rhs, lhs);
      } else {
        return lhs;
      }
    }
  }

  Val ParseShift() {
    Val lhs = ParseAdditive();
    for (;;) {
      if (Accept(TokenKind::kShl)) {
        lhs = kb_->Binary(BinOp::kShl, lhs, ParseAdditive());
      } else if (Accept(TokenKind::kShr)) {
        lhs = kb_->Binary(BinOp::kShr, lhs, ParseAdditive());
      } else {
        return lhs;
      }
    }
  }

  Val ParseAdditive() {
    Val lhs = ParseMultiplicative();
    for (;;) {
      if (Accept(TokenKind::kPlus)) {
        lhs = kb_->Binary(BinOp::kAdd, lhs, ParseMultiplicative());
      } else if (Accept(TokenKind::kMinus)) {
        lhs = kb_->Binary(BinOp::kSub, lhs, ParseMultiplicative());
      } else {
        return lhs;
      }
    }
  }

  Val ParseMultiplicative() {
    Val lhs = ParseUnary();
    for (;;) {
      if (Accept(TokenKind::kStar)) {
        lhs = kb_->Binary(BinOp::kMul, lhs, ParseUnary());
      } else if (Accept(TokenKind::kSlash)) {
        lhs = kb_->Binary(BinOp::kDiv, lhs, ParseUnary());
      } else if (Accept(TokenKind::kPercent)) {
        lhs = kb_->Binary(BinOp::kRem, lhs, ParseUnary());
      } else {
        return lhs;
      }
    }
  }

  Val ParseUnary() {
    DepthGuard guard(this);
    if (Accept(TokenKind::kMinus)) {
      return kb_->Unary(UnOp::kNeg, ParseUnary());
    }
    if (Accept(TokenKind::kBang)) {
      return kb_->Unary(UnOp::kNot, ParseUnary());
    }
    return ParsePrimary();
  }

  Val ParseCall1(UnOp op) {
    Expect(TokenKind::kLParen);
    Val v = ParseExpr();
    Expect(TokenKind::kRParen);
    return kb_->Unary(op, v);
  }

  Val ParsePrimary() {
    const Token& tok = Peek();
    switch (tok.kind) {
      case TokenKind::kIntLit:
        Advance();
        return kb_->ConstI(tok.int_value);
      case TokenKind::kFloatLit:
        Advance();
        return kb_->ConstF(tok.float_value);
      case TokenKind::kLParen: {
        Advance();
        Val v = ParseExpr();
        Expect(TokenKind::kRParen);
        return v;
      }
      case TokenKind::kF64:
        Advance();
        return ParseCast(ScalarType::kF64);
      case TokenKind::kI64:
        Advance();
        return ParseCast(ScalarType::kI64);
      case TokenKind::kIdent:
        return ParseIdentExpr();
      default:
        Fail("expected an expression, found " + TokenKindName(tok.kind));
    }
  }

  Val ParseCast(ScalarType target) {
    Expect(TokenKind::kLParen);
    Val v = ParseExpr();
    Expect(TokenKind::kRParen);
    return target == ScalarType::kF64 ? kb_->ToF64(v) : kb_->ToI64(v);
  }

  Val ParseIdentExpr() {
    const Token name = Expect(TokenKind::kIdent);
    // Intrinsic calls.
    if (Peek().kind == TokenKind::kLParen) {
      if (name.text == "sqrt") {
        return ParseCall1(UnOp::kSqrt);
      }
      if (name.text == "abs") {
        return ParseCall1(UnOp::kAbs);
      }
      if (name.text == "min" || name.text == "max") {
        Expect(TokenKind::kLParen);
        Val a = ParseExpr();
        Expect(TokenKind::kComma);
        Val b = ParseExpr();
        Expect(TokenKind::kRParen);
        return kb_->Binary(name.text == "min" ? BinOp::kMin : BinOp::kMax, a, b);
      }
      if (name.text == "select") {
        Expect(TokenKind::kLParen);
        Val c = ParseExpr();
        Expect(TokenKind::kComma);
        Val a = ParseExpr();
        Expect(TokenKind::kComma);
        Val b = ParseExpr();
        Expect(TokenKind::kRParen);
        return kb_->Select(c, a, b);
      }
      throw ParseError("unknown function '" + name.text + "'", name.line,
                       name.column);
    }
    if (name.text == iv_name_) {
      return kb_->Iv();
    }
    const Entity& entity = Lookup(name);
    if (Accept(TokenKind::kLBracket)) {
      if (entity.kind != NameKind::kArray) {
        throw ParseError("'" + name.text + "' is not an array", name.line,
                         name.column);
      }
      Val index = ParseExpr();
      Expect(TokenKind::kRBracket);
      return kb_->Load(entity.array, index);
    }
    switch (entity.kind) {
      case NameKind::kParam:
        return entity.param_val;
      case NameKind::kScalar:
        return kb_->LoadScalar(entity.scalar);
      case NameKind::kTemp:
        return kb_->Read(entity.temp);
      case NameKind::kArray:
        throw ParseError("array '" + name.text + "' used without an index",
                         name.line, name.column);
    }
    FGPAR_UNREACHABLE("bad NameKind");
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  int depth_ = 0;
  std::unique_ptr<KernelBuilder> kb_;
  std::map<std::string, Entity> names_;
  std::string iv_name_;
};

}  // namespace

ir::Kernel ParseKernel(const std::string& source) { return ParserImpl(source).Run(); }

}  // namespace fgpar::frontend
