#include "frontend/lexer.hpp"

#include <cctype>
#include <charconv>
#include <map>

namespace fgpar::frontend {
namespace {

const std::map<std::string, TokenKind>& Keywords() {
  static const std::map<std::string, TokenKind> keywords = {
      {"kernel", TokenKind::kKernel}, {"param", TokenKind::kParam},
      {"array", TokenKind::kArray},   {"scalar", TokenKind::kScalar},
      {"carried", TokenKind::kCarried}, {"loop", TokenKind::kLoop},
      {"after", TokenKind::kAfter},   {"if", TokenKind::kIf},
      {"else", TokenKind::kElse},     {"i64", TokenKind::kI64},
      {"f64", TokenKind::kF64},
  };
  return keywords;
}

class LexerImpl {
 public:
  explicit LexerImpl(const std::string& source) : src_(source) {}

  std::vector<Token> Run() {
    std::vector<Token> tokens;
    for (;;) {
      SkipWhitespaceAndComments();
      if (AtEnd()) {
        tokens.push_back(Make(TokenKind::kEof));
        return tokens;
      }
      tokens.push_back(Next());
    }
  }

 private:
  bool AtEnd() const { return pos_ >= src_.size(); }
  char Peek(std::size_t ahead = 0) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }
  char Advance() {
    const char c = src_[pos_++];
    if (c == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    return c;
  }

  void SkipWhitespaceAndComments() {
    while (!AtEnd()) {
      const char c = Peek();
      if (std::isspace(static_cast<unsigned char>(c))) {
        Advance();
      } else if (c == '#') {
        while (!AtEnd() && Peek() != '\n') {
          Advance();
        }
      } else {
        return;
      }
    }
  }

  Token Make(TokenKind kind) const {
    Token t;
    t.kind = kind;
    t.line = tok_line_;
    t.column = tok_column_;
    return t;
  }

  [[noreturn]] void Fail(const std::string& message) const {
    throw ParseError(message, tok_line_, tok_column_);
  }

  Token Next() {
    tok_line_ = line_;
    tok_column_ = column_;
    const char c = Advance();
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      return Identifier(c);
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      return Number(c);
    }
    switch (c) {
      case '@': return Annotation();
      case '{': return Make(TokenKind::kLBrace);
      case '}': return Make(TokenKind::kRBrace);
      case '[': return Make(TokenKind::kLBracket);
      case ']': return Make(TokenKind::kRBracket);
      case '(': return Make(TokenKind::kLParen);
      case ')': return Make(TokenKind::kRParen);
      case ';': return Make(TokenKind::kSemi);
      case ',': return Make(TokenKind::kComma);
      case '+': return Make(TokenKind::kPlus);
      case '-': return Make(TokenKind::kMinus);
      case '*': return Make(TokenKind::kStar);
      case '/': return Make(TokenKind::kSlash);
      case '%': return Make(TokenKind::kPercent);
      case '&': return Make(TokenKind::kAmp);
      case '|': return Make(TokenKind::kPipe);
      case '^': return Make(TokenKind::kCaret);
      case '.':
        if (Peek() == '.') {
          Advance();
          return Make(TokenKind::kDotDot);
        }
        Fail("unexpected '.'");
      case '=':
        if (Peek() == '=') {
          Advance();
          return Make(TokenKind::kEq);
        }
        return Make(TokenKind::kAssign);
      case '!':
        if (Peek() == '=') {
          Advance();
          return Make(TokenKind::kNe);
        }
        return Make(TokenKind::kBang);
      case '<':
        if (Peek() == '=') {
          Advance();
          return Make(TokenKind::kLe);
        }
        if (Peek() == '<') {
          Advance();
          return Make(TokenKind::kShl);
        }
        return Make(TokenKind::kLt);
      case '>':
        if (Peek() == '=') {
          Advance();
          return Make(TokenKind::kGe);
        }
        if (Peek() == '>') {
          Advance();
          return Make(TokenKind::kShr);
        }
        return Make(TokenKind::kGt);
      default:
        Fail(std::string("unexpected character '") + c + "'");
    }
  }

  Token Identifier(char first) {
    std::string text(1, first);
    while (std::isalnum(static_cast<unsigned char>(Peek())) || Peek() == '_') {
      text.push_back(Advance());
    }
    const auto it = Keywords().find(text);
    if (it != Keywords().end()) {
      return Make(it->second);
    }
    Token t = Make(TokenKind::kIdent);
    t.text = std::move(text);
    return t;
  }

  Token Annotation() {
    std::string text;
    while (std::isalnum(static_cast<unsigned char>(Peek())) || Peek() == '_') {
      text.push_back(Advance());
    }
    if (text == "speculate") {
      return Make(TokenKind::kAtSpeculate);
    }
    Fail("unknown annotation '@" + text + "'");
  }

  Token Number(char first) {
    std::string text(1, first);
    bool is_float = false;
    while (std::isdigit(static_cast<unsigned char>(Peek()))) {
      text.push_back(Advance());
    }
    // A '.' starts a fraction only if not the '..' range operator.
    if (Peek() == '.' && Peek(1) != '.') {
      is_float = true;
      text.push_back(Advance());
      while (std::isdigit(static_cast<unsigned char>(Peek()))) {
        text.push_back(Advance());
      }
    }
    if (Peek() == 'e' || Peek() == 'E') {
      is_float = true;
      text.push_back(Advance());
      if (Peek() == '+' || Peek() == '-') {
        text.push_back(Advance());
      }
      if (!std::isdigit(static_cast<unsigned char>(Peek()))) {
        Fail("malformed exponent in numeric literal");
      }
      while (std::isdigit(static_cast<unsigned char>(Peek()))) {
        text.push_back(Advance());
      }
    }
    if (is_float) {
      Token t = Make(TokenKind::kFloatLit);
      // from_chars, not stod: an overflowing literal like 1e400 must be a
      // ParseError with a location, never a raw std::out_of_range.
      const auto [ptr, ec] = std::from_chars(
          text.data(), text.data() + text.size(), t.float_value);
      if (ec != std::errc() || ptr != text.data() + text.size()) {
        Fail("float literal out of range: " + text);
      }
      return t;
    }
    Token t = Make(TokenKind::kIntLit);
    std::int64_t value = 0;
    const auto [ptr, ec] =
        std::from_chars(text.data(), text.data() + text.size(), value);
    if (ec != std::errc() || ptr != text.data() + text.size()) {
      Fail("integer literal out of range: " + text);
    }
    t.int_value = value;
    return t;
  }

  const std::string& src_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
  int tok_line_ = 1;
  int tok_column_ = 1;
};

}  // namespace

std::vector<Token> Lex(const std::string& source) { return LexerImpl(source).Run(); }

std::string TokenKindName(TokenKind kind) {
  switch (kind) {
    case TokenKind::kIdent: return "identifier";
    case TokenKind::kIntLit: return "integer literal";
    case TokenKind::kFloatLit: return "float literal";
    case TokenKind::kKernel: return "'kernel'";
    case TokenKind::kParam: return "'param'";
    case TokenKind::kArray: return "'array'";
    case TokenKind::kScalar: return "'scalar'";
    case TokenKind::kCarried: return "'carried'";
    case TokenKind::kLoop: return "'loop'";
    case TokenKind::kAfter: return "'after'";
    case TokenKind::kIf: return "'if'";
    case TokenKind::kElse: return "'else'";
    case TokenKind::kI64: return "'i64'";
    case TokenKind::kF64: return "'f64'";
    case TokenKind::kAtSpeculate: return "'@speculate'";
    case TokenKind::kLBrace: return "'{'";
    case TokenKind::kRBrace: return "'}'";
    case TokenKind::kLBracket: return "'['";
    case TokenKind::kRBracket: return "']'";
    case TokenKind::kLParen: return "'('";
    case TokenKind::kRParen: return "')'";
    case TokenKind::kSemi: return "';'";
    case TokenKind::kComma: return "','";
    case TokenKind::kAssign: return "'='";
    case TokenKind::kDotDot: return "'..'";
    case TokenKind::kPlus: return "'+'";
    case TokenKind::kMinus: return "'-'";
    case TokenKind::kStar: return "'*'";
    case TokenKind::kSlash: return "'/'";
    case TokenKind::kPercent: return "'%'";
    case TokenKind::kAmp: return "'&'";
    case TokenKind::kPipe: return "'|'";
    case TokenKind::kCaret: return "'^'";
    case TokenKind::kShl: return "'<<'";
    case TokenKind::kShr: return "'>>'";
    case TokenKind::kEq: return "'=='";
    case TokenKind::kNe: return "'!='";
    case TokenKind::kLt: return "'<'";
    case TokenKind::kLe: return "'<='";
    case TokenKind::kGt: return "'>'";
    case TokenKind::kGe: return "'>='";
    case TokenKind::kBang: return "'!'";
    case TokenKind::kEof: return "end of input";
  }
  return "?";
}

}  // namespace fgpar::frontend
