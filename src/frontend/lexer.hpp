// Lexer for the kernel language (see docs in parser.hpp for the grammar).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/error.hpp"

namespace fgpar::frontend {

/// Parse/lex failure with source position baked into the message.
class ParseError : public Error {
 public:
  ParseError(const std::string& message, int line, int column)
      : Error("parse error at " + std::to_string(line) + ":" +
              std::to_string(column) + ": " + message),
        line_(line),
        column_(column) {}
  int line() const { return line_; }
  int column() const { return column_; }

 private:
  int line_;
  int column_;
};

enum class TokenKind : std::uint8_t {
  kIdent,
  kIntLit,
  kFloatLit,
  // keywords
  kKernel, kParam, kArray, kScalar, kCarried, kLoop, kAfter, kIf, kElse,
  kI64, kF64,
  // annotations
  kAtSpeculate,  // "@speculate"
  // punctuation / operators
  kLBrace, kRBrace, kLBracket, kRBracket, kLParen, kRParen,
  kSemi, kComma, kAssign, kDotDot,
  kPlus, kMinus, kStar, kSlash, kPercent,
  kAmp, kPipe, kCaret, kShl, kShr,
  kEq, kNe, kLt, kLe, kGt, kGe, kBang,
  kEof,
};

struct Token {
  TokenKind kind = TokenKind::kEof;
  std::string text;        // identifier spelling
  std::int64_t int_value = 0;
  double float_value = 0.0;
  int line = 0;
  int column = 0;
};

/// Tokenizes `source`.  `#` starts a comment running to end of line.
/// Throws ParseError on malformed input.
std::vector<Token> Lex(const std::string& source);

/// Mnemonic for diagnostics ("'..'", "identifier", ...).
std::string TokenKindName(TokenKind kind);

}  // namespace fgpar::frontend
