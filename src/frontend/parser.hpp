// Parser for the kernel language.
//
// Grammar (EBNF-ish):
//
//   kernel      := "kernel" IDENT "{" decl* loop after? "}"
//   decl        := "param"  type IDENT ";"
//                | "array"  type IDENT "[" INT "]" ";"
//                | "scalar" type IDENT ";"
//                | "carried" type IDENT "=" literal ";"
//   type        := "i64" | "f64"
//   loop        := "loop" IDENT "=" expr ".." expr "{" stmt* "}"
//   after       := "after" "{" stmt* "}"
//   stmt        := type IDENT "=" expr ";"                (temp definition)
//                | IDENT "=" expr ";"                     (carried temp or scalar)
//                | IDENT "[" expr "]" "=" expr ";"        (array store)
//                | "@speculate"? "if" "(" expr ")" block ("else" block)?
//   block       := "{" stmt* "}"
//   expr        := bit-or with C precedence:
//                  | ^ & (==|!=) (<|<=|>|>=) (<<|>>) (+|-) (*|/|%) unary
//   unary       := ("-" | "!") unary | primary
//   primary     := INT | FLOAT | IDENT | IDENT "[" expr "]" | "(" expr ")"
//                | call
//   call        := ("sqrt"|"abs") "(" expr ")"
//                | ("min"|"max") "(" expr "," expr ")"
//                | "select" "(" expr "," expr "," expr ")"
//                | ("f64"|"i64") "(" expr ")"             (explicit casts)
//
// Numeric literals type as f64 when they contain '.' or an exponent, i64
// otherwise; mixed-type arithmetic requires explicit f64()/i64() casts.
// `#` comments run to end of line.  Statement source lines feed the merge
// heuristics' proximity metric (paper Section III-B).
#pragma once

#include <string>

#include "ir/kernel.hpp"

namespace fgpar::frontend {

/// Parses one kernel; throws ParseError (with line:column) on bad input and
/// validates the result (throws fgpar::Error when validation fails).
ir::Kernel ParseKernel(const std::string& source);

}  // namespace fgpar::frontend
