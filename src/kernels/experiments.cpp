#include "kernels/experiments.hpp"

#include "harness/sweep.hpp"
#include "support/error.hpp"

namespace fgpar::kernels {

harness::RunConfig ToRunConfig(const ExperimentConfig& config) {
  harness::RunConfig run;
  run.compile.num_cores = config.cores;
  run.compile.speculation = config.speculation;
  run.compile.throughput_heuristic = config.throughput_heuristic;
  run.queue.capacity = config.queue_capacity;
  run.queue.transfer_latency = config.transfer_latency;
  run.verify = config.verify;
  run.tune_by_simulation = config.tune_by_simulation;
  run.force_slow_path = config.force_slow_path;
  run.force_tier = config.force_tier;
  run.backend = config.backend;
  return run;
}

harness::KernelRun RunKernel(const SequoiaKernel& kernel,
                             const ExperimentConfig& config) {
  return RunKernel(kernel, ToRunConfig(config));
}

harness::KernelRun RunKernel(const SequoiaKernel& kernel,
                             const harness::RunConfig& config) {
  const ir::Kernel parsed = ParseSequoia(kernel);
  harness::KernelRunner runner(parsed, SequoiaInit(kernel));
  harness::KernelRun run = runner.Run(config);
  run.kernel_name = kernel.id;
  return run;
}

std::vector<harness::KernelRun> RunAllKernels(const ExperimentConfig& config) {
  const std::vector<SequoiaKernel>& kernels = SequoiaKernels();
  return harness::RunSweep(
      kernels.size(), harness::ResolveSweepThreads(config.sweep_threads),
      [&](std::size_t i) { return RunKernel(kernels[i], config); });
}

double ApplicationSpeedup(const SequoiaApplication& app,
                          const std::map<std::string, double>& kernel_speedups) {
  double covered = 0.0;
  double scaled = 0.0;
  for (const std::string& id : app.kernel_ids) {
    const double weight = SequoiaKernelById(id).pct_time / 100.0;
    const auto it = kernel_speedups.find(id);
    FGPAR_CHECK_MSG(it != kernel_speedups.end(), "missing speedup for " + id);
    FGPAR_CHECK_MSG(it->second > 0.0, "non-positive speedup for " + id);
    covered += weight;
    scaled += weight / it->second;
  }
  FGPAR_CHECK_MSG(covered <= 1.0, "kernel weights exceed 100% for " + app.name);
  return 1.0 / ((1.0 - covered) + scaled);
}

}  // namespace fgpar::kernels
