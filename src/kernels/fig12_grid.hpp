// The Figure-12 sweep grid as a shared, named definition.
//
// The (kernel x cores) grid behind bench/fig12_speedup is also what the
// distributed sweep machinery shards: fgpar-coord serves it, worker
// processes run slices of it, and the offline journal merge validates
// against its fingerprint.  All of them must agree on the name, the
// point order, and the labels byte-for-byte — so the definition lives
// here, in one place, instead of being rebuilt by hand in each binary.
//
// Point layout (index order is the grid contract — changing it changes
// the fingerprint and orphans every journal):
//
//   index = cores_slot * kernel_count + kernel_slot
//
// i.e. all kernels at 2 cores first, then all kernels at 4 cores, with
// labels "<kernel-id> cores=<n>".
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "kernels/sequoia.hpp"

namespace fgpar::kernels {

struct Fig12Grid {
  std::string name = "fig12";
  std::vector<int> core_counts;            // {2, 4}
  std::size_t kernel_count = 0;            // 3 for --smoke, else all 18
  std::vector<std::string> labels;         // size() entries, index order

  std::size_t size() const { return labels.size(); }
  const SequoiaKernel& KernelAt(std::size_t index) const;
  int CoresAt(std::size_t index) const {
    return core_counts[index / kernel_count];
  }
};

/// Builds the grid (`smoke` = the 3-kernel CI subset).  The returned
/// object references the process-wide kernel table and is cheap to copy.
Fig12Grid MakeFig12Grid(bool smoke);

}  // namespace fgpar::kernels
