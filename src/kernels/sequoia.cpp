#include "kernels/sequoia.hpp"

#include <bit>

#include "frontend/parser.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace fgpar::kernels {
namespace {

std::vector<SequoiaKernel> BuildKernels() {
  std::vector<SequoiaKernel> kernels;

  // ---------------- lammps (pair_eam.cpp / neigh_half_bin.cpp) ----------------

  kernels.push_back(SequoiaKernel{
      "lammps-1", "lammps", "pair_eam.cpp, PairEAM::compute, line 182", 30.0,
      R"(# EAM density accumulation: gathered neighbor distance + cubic-spline
# interpolation, conditionally accumulated into the per-atom density.
kernel lammps_1 {
  param i64 n;
  param f64 rdr;
  param f64 cutsq;
  array i64 jlist[1024];
  array f64 xt[1024];
  array f64 yt[1024];
  array f64 zt[1024];
  array f64 rs0[1024];
  array f64 rs1[1024];
  array f64 rs2[1024];
  array f64 rs3[1024];
  scalar f64 rho_out;
  carried f64 rho = 0.0;
  loop i = 0 .. n {
    i64 j = jlist[i];
    f64 dx = xt[j];
    f64 dy = yt[j];
    f64 dz = zt[j];
    f64 rsq = dx*dx + dy*dy + dz*dz;
    f64 p = sqrt(rsq) * rdr;
    i64 m = i64(p);
    f64 t = p - f64(m);
    @speculate if (rsq < cutsq) {
      f64 dens = ((rs3[m]*t + rs2[m])*t + rs1[m])*t + rs0[m];
      rho = rho + dens;
    }
  }
  after {
    rho_out = rho;
  }
}
)",
      {{"rdr", 1.5}, {"cutsq", 11.0}},
      400});

  kernels.push_back(SequoiaKernel{
      "lammps-2", "lammps", "pair_eam.cpp, PairEAM::compute, line 214", 0.3,
      R"(# Embedding-energy derivative: per-atom spline lookup, no reduction.
kernel lammps_2 {
  param i64 n;
  param f64 rdrho;
  array f64 rho[1024];
  array f64 d0[1024];
  array f64 d1[1024];
  array f64 d2[1024];
  array f64 d3[1024];
  array f64 fp[1024];
  loop i = 0 .. n {
    f64 p = rho[i] * rdrho;
    i64 m = i64(p);
    f64 t = p - f64(m);
    @speculate if (t < 0.5) {
      f64 hi = ((d3[m]*t + d2[m])*t + d1[m])*t + d0[m];
      fp[i] = hi;
    } else {
      f64 lo = (d3[m] - d2[m]*t)*t + d0[m]*1.5 - d1[m];
      fp[i] = lo;
    }
  }
}
)",
      {{"rdrho", 1.8}},
      400});

  kernels.push_back(SequoiaKernel{
      "lammps-3", "lammps", "pair_eam.cpp, PairEAM::compute, line 247", 49.5,
      R"(# EAM pair-force loop: two spline interpolations, reciprocal chain,
# per-neighbor force stores plus the carried force accumulation.
kernel lammps_3 {
  param i64 n;
  param f64 rdr;
  array i64 jlist[1024];
  array f64 xt[1024];
  array f64 yt[1024];
  array f64 zt[1024];
  array f64 za0[1024];
  array f64 za1[1024];
  array f64 za2[1024];
  array f64 za3[1024];
  array f64 rb1[1024];
  array f64 rb2[1024];
  array f64 rb3[1024];
  array f64 fjx[1024];
  array f64 fjy[1024];
  array f64 fjz[1024];
  scalar f64 fx_out;
  scalar f64 fy_out;
  scalar f64 fz_out;
  carried f64 fx = 0.0;
  carried f64 fy = 0.0;
  carried f64 fz = 0.0;
  loop i = 0 .. n {
    i64 j = jlist[i];
    f64 dx = xt[j];
    f64 dy = yt[j];
    f64 dz = zt[j];
    f64 rsq = dx*dx + dy*dy + dz*dz;
    f64 r = sqrt(rsq);
    f64 p = r * rdr;
    i64 m = i64(p);
    f64 t = p - f64(m);
    f64 rhoip = (rb3[m]*t + rb2[m])*t + rb1[m];
    f64 z2 = ((za3[m]*t + za2[m])*t + za1[m])*t + za0[m];
    f64 z2p = (za3[m]*t*3.0 + za2[m]*2.0)*t + za1[m];
    f64 recip = 1.0 / r;
    f64 phi = z2 * recip;
    f64 phip = z2p * recip - phi * recip;
    f64 psip = rhoip + rhoip*phip + phi;
    f64 fpair = -psip * recip;
    fjx[i] = dx * fpair;
    fjy[i] = dy * fpair;
    fjz[i] = dz * fpair;
    fx = fx + dx * fpair;
    fy = fy + dy * fpair;
    fz = fz + dz * fpair;
  }
  after {
    fx_out = fx;
    fy_out = fy;
    fz_out = fz;
  }
}
)",
      {{"rdr", 1.5}},
      400});

  kernels.push_back(SequoiaKernel{
      "lammps-4", "lammps", "neigh_half_bin.cpp, Neighbor::half_bin_newton, 172",
      3.6,
      R"(# Neighbor-list build: distance filter with a carried append counter.
# The appends serialize on one core; the distance math spreads out.
kernel lammps_4 {
  param i64 n;
  param f64 cutsq;
  array i64 jlist[1024];
  array f64 xt[1024];
  array f64 yt[1024];
  array f64 zt[1024];
  array f64 rsqs[1024];
  array i64 neigh[1024];
  scalar i64 count_out;
  carried i64 cnt = 0;
  loop i = 0 .. n {
    i64 j = jlist[i];
    f64 dx = xt[j];
    f64 dy = yt[j];
    f64 dz = zt[j];
    f64 rsq = dx*dx + dy*dy + dz*dz;
    @speculate if (rsq < cutsq) {
      f64 diag = rsq * 0.5 + dx*dy*dz;
      rsqs[i] = diag;
      neigh[cnt] = j;
      cnt = cnt + 1;
    } else {
      f64 rej = rsq * 0.25;
      rsqs[i] = rej;
    }
  }
  after {
    count_out = cnt;
  }
}
)",
      {{"cutsq", 6.0}},
      400});

  kernels.push_back(SequoiaKernel{
      "lammps-5", "lammps", "neigh_half_bin.cpp, Neighbor::half_bin_newton, 199",
      3.6,
      R"(# Neighbor-list build variant with extra per-pair weighting work that
# is independent of the append chain.
kernel lammps_5 {
  param i64 n;
  param f64 cutsq;
  param f64 skin;
  array i64 jlist[1024];
  array f64 xt[1024];
  array f64 yt[1024];
  array f64 zt[1024];
  array f64 wts[1024];
  array f64 excl[1024];
  array i64 neigh[1024];
  scalar i64 count_out;
  carried i64 cnt = 0;
  loop i = 0 .. n {
    i64 j = jlist[i];
    f64 dx = xt[j];
    f64 dy = yt[j];
    f64 dz = zt[j];
    f64 rsq = dx*dx + dy*dy + dz*dz;
    f64 r = sqrt(rsq);
    @speculate if (rsq + f64(cnt) * 0.0001 < cutsq) {
      f64 w = excl[j] / (r + skin) + r * 0.25;
      wts[i] = w * w - excl[i];
      neigh[cnt] = j;
      cnt = cnt + 1;
    } else {
      f64 wf = excl[j] * 0.5 + r;
      wts[i] = wf;
    }
  }
  after {
    count_out = cnt;
  }
}
)",
      {{"cutsq", 6.0}, {"skin", 0.3}},
      400});

  // ---------------- irs (rmatmult3.c / MatrixSolve.c / DiffCoeff.c) -----------

  kernels.push_back(SequoiaKernel{
      "irs-1", "irs", "rmatmult3.c, rmatmult3, line 75", 55.6,
      R"(# Wide multi-point stencil matrix multiply: 15 coefficient planes, all
# terms independent — the most fiber-rich, least-dependent kernel.
kernel irs_1 {
  param i64 n;
  array f64 x[1024];
  array f64 dbl[1024];
  array f64 dbc[1024];
  array f64 dbr[1024];
  array f64 dcl[1024];
  array f64 dcc[1024];
  array f64 dcr[1024];
  array f64 dfl[1024];
  array f64 dfc[1024];
  array f64 dfr[1024];
  array f64 cbl[1024];
  array f64 cbc[1024];
  array f64 cbr[1024];
  array f64 ccl[1024];
  array f64 ccc[1024];
  array f64 ccr[1024];
  array f64 b[1024];
  loop i = 16 .. n {
    b[i] = dbl[i]*x[i-12] + dbc[i]*x[i-11] + dbr[i]*x[i-10]
         + dcl[i]*x[i-1]  + dcc[i]*x[i]    + dcr[i]*x[i+1]
         + dfl[i]*x[i+10] + dfc[i]*x[i+11] + dfr[i]*x[i+12]
         + cbl[i]*x[i-6]  + cbc[i]*x[i-5]  + cbr[i]*x[i-4]
         + ccl[i]*x[i+4]  + ccc[i]*x[i+5]  + ccr[i]*x[i+6];
  }
}
)",
      {},
      480});

  kernels.push_back(SequoiaKernel{
      "irs-2", "irs", "MatrixSolve.c, MatrixSolveCG, line 287", 5.1,
      R"(# CG update step: two AXPYs plus the residual dot product (the stored
# residual forwards straight into the reduction).
kernel irs_2 {
  param i64 n;
  param f64 alpha;
  array f64 xv[1024];
  array f64 rv[1024];
  array f64 pv[1024];
  array f64 qv[1024];
  scalar f64 rdot_out;
  carried f64 rdot = 0.0;
  loop i = 0 .. n {
    xv[i] = xv[i] + alpha * pv[i];
    rv[i] = rv[i] - alpha * qv[i];
    rdot = rdot + rv[i] * rv[i];
  }
  after {
    rdot_out = rdot;
  }
}
)",
      {{"alpha", 0.37}},
      400});

  kernels.push_back(SequoiaKernel{
      "irs-3", "irs", "MatrixSolve.c, MatrixSolveCG, line 250", 2.5,
      R"(# CG dot product with an independent vector update alongside it.
kernel irs_3 {
  param i64 n;
  param f64 beta;
  array f64 pv[1024];
  array f64 qv[1024];
  array f64 sv[1024];
  scalar f64 dot_out;
  carried f64 dot = 0.0;
  loop i = 0 .. n {
    dot = dot + pv[i] * qv[i];
    sv[i] = pv[i] * beta + qv[i];
  }
  after {
    dot_out = dot;
  }
}
)",
      {{"beta", 0.81}},
      400});

  kernels.push_back(SequoiaKernel{
      "irs-4", "irs", "DiffCoeff.c, DiffCoeff_3D, line 191", 0.6,
      R"(# Diffusion-coefficient geometry: left/right face areas and volumes
# combined through a harmonic mean — dense dataflow between temps.
kernel irs_4 {
  param i64 n;
  array f64 xc[1024];
  array f64 yc[1024];
  array f64 zc[1024];
  array f64 df[1024];
  loop i = 2 .. n {
    f64 dxl = xc[i] - xc[i-1];
    f64 dyl = yc[i] - yc[i-1];
    f64 dzl = zc[i] - zc[i-1];
    f64 dxr = xc[i+1] - xc[i];
    f64 dyr = yc[i+1] - yc[i];
    f64 dzr = zc[i+1] - zc[i];
    f64 al = dyl*dzl + dzl*dxl + dxl*dyl;
    f64 ar = dyr*dzr + dzr*dxr + dxr*dyr;
    f64 vl = abs(dxl*dyl*dzl) + 0.01;
    f64 vr = abs(dxr*dyr*dzr) + 0.01;
    f64 kl = al / vl;
    f64 kr = ar / vr;
    @speculate if (kl * kr > 0.0) {
      f64 dharm = 2.0*kl*kr / (abs(kl + kr) + 0.0001);
      df[i] = dharm;
    } else {
      f64 dmean = (kl + kr) * 0.5;
      df[i] = dmean;
    }
  }
}
)",
      {},
      400});

  kernels.push_back(SequoiaKernel{
      "irs-5", "irs", "DiffCoeff.c, DiffCoeff_3D, line 317", 1.5,
      R"(# Full 3D face-coefficient computation: cross products over two edge
# vectors, normalization, and four coupled outputs — the largest kernel.
kernel irs_5 {
  param i64 n;
  array f64 xc[1024];
  array f64 yc[1024];
  array f64 zc[1024];
  array f64 sig[1024];
  array f64 dfx[1024];
  array f64 dfy[1024];
  array f64 dfz[1024];
  array f64 dfm[1024];
  loop i = 2 .. n {
    f64 ex = xc[i+1] - xc[i-1];
    f64 ey = yc[i+1] - yc[i-1];
    f64 ez = zc[i+1] - zc[i-1];
    f64 gx = xc[i+2] - xc[i-2];
    f64 gy = yc[i+2] - yc[i-2];
    f64 gz = zc[i+2] - zc[i-2];
    f64 axx = ey*gz - ez*gy;
    f64 ayy = ez*gx - ex*gz;
    f64 azz = ex*gy - ey*gx;
    f64 anorm = sqrt(axx*axx + ayy*ayy + azz*azz) + 0.01;
    f64 sface = (sig[i] + sig[i+1]) * 0.5;
    f64 scale = sface / anorm;
    dfx[i] = scale * axx + ey*ez;
    dfy[i] = scale * ayy + ez*ex;
    dfz[i] = scale * azz + ex*ey;
    dfm[i] = sface * anorm + axx*ayy*azz;
  }
}
)",
      {},
      400});

  // ---------------- umt2k (snswp3d.f90) ----------------

  kernels.push_back(SequoiaKernel{
      "umt2k-1", "umt2k", "snswp3d.f90, snswp3d, line 96", 5.5,
      R"(# Angular-flux face terms: a handful of independent multiplies.
kernel umt2k_1 {
  param i64 n;
  param f64 mu;
  param f64 eta;
  array f64 a1[1024];
  array f64 a2[1024];
  array f64 a3[1024];
  array f64 a4[1024];
  array f64 psi[1024];
  array f64 psib[1024];
  array f64 psifp[1024];
  loop i = 0 .. n {
    f64 afp = a1[i]*mu + a2[i]*eta;
    f64 aez = a3[i]*mu - a4[i]*eta;
    psifp[i] = afp * psi[i] + aez * psib[i];
  }
}
)",
      {{"mu", 1.2}, {"eta", 0.8}},
      400});

  kernels.push_back(SequoiaKernel{
      "umt2k-2", "umt2k", "snswp3d.f90, snswp3d, line 117", 8.0,
      R"(# Upwind/downwind area sums: the loop body is only reductions inside a
# conditional — the pathological load-balance case of Table III.
kernel umt2k_2 {
  param i64 n;
  param f64 mu;
  param f64 eta;
  array f64 a1[1024];
  array f64 a2[1024];
  array f64 area[1024];
  array f64 aflux[1024];
  scalar f64 sumin_out;
  scalar f64 sumout_out;
  carried f64 sumin = 0.0;
  carried f64 sumout = 0.0;
  loop i = 0 .. n {
    f64 afp = a1[i]*mu - a2[i]*eta;
    # Renormalized upwind test: the threshold tracks the accumulated
    # inflow, putting the condition on the carried chain.
    @speculate if (afp < sumin * 0.0002) {
      f64 cin = afp * area[i];
      sumin = sumin - cin;
    } else {
      f64 cout = afp * aflux[i];
      sumout = sumout + cout;
    }
  }
  after {
    sumin_out = sumin;
    sumout_out = sumout;
  }
}
)",
      {{"mu", 1.2}, {"eta", 0.8}},
      400});

  kernels.push_back(SequoiaKernel{
      "umt2k-3", "umt2k", "snswp3d.f90, snswp3d, line 145", 5.2,
      R"(# Conditional source reductions with slightly more arithmetic per arm.
kernel umt2k_3 {
  param i64 n;
  param f64 mu;
  param f64 eta;
  param f64 wt;
  array f64 a1[1024];
  array f64 a2[1024];
  array f64 sigv[1024];
  array f64 qsrc[1024];
  scalar f64 phi_out;
  scalar f64 cur_out;
  carried f64 phi = 0.0;
  carried f64 cur = 0.0;
  loop i = 0 .. n {
    f64 adotn = a1[i]*mu - a2[i]*eta;
    @speculate if (adotn * 8.0 < phi * 0.001) {
      f64 inc = qsrc[i] * wt / (sigv[i] + 0.5);
      phi = phi + inc;
      cur = cur - adotn * inc;
    } else {
      f64 outc = sigv[i] * wt * 0.5;
      cur = cur + adotn * outc;
    }
  }
  after {
    phi_out = phi;
    cur_out = cur;
  }
}
)",
      {{"mu", 1.2}, {"eta", 0.8}, {"wt", 0.9}},
      400});

  kernels.push_back(SequoiaKernel{
      "umt2k-4", "umt2k", "snswp3d.f90, snswp3d, line 158", 22.6,
      R"(# The central corner-flux expression: numerator and denominator built
# from three face terms, then a division and the outgoing difference.
kernel umt2k_4 {
  param i64 n;
  param f64 mu;
  param f64 eta;
  param f64 xi;
  array f64 a1[1024];
  array f64 a2[1024];
  array f64 a3[1024];
  array f64 a4[1024];
  array f64 a5[1024];
  array f64 a6[1024];
  array f64 vol[1024];
  array f64 q[1024];
  array f64 sigt[1024];
  array f64 psifp[1024];
  array f64 psiez[1024];
  array f64 psinb[1024];
  array f64 psic[1024];
  array f64 psdiff[1024];
  loop i = 0 .. n {
    f64 v = vol[i];
    f64 afp = a1[i]*mu + a2[i]*eta;
    f64 aez = a3[i]*mu + a4[i]*xi;
    f64 anb = a5[i]*eta + a6[i]*xi;
    f64 den = sigt[i]*v + abs(afp) + abs(aez) + abs(anb) + 0.5;
    @speculate if (afp < 1.0) {
      f64 numu = q[i]*v + afp*psifp[i]*1.5 + aez*psiez[i] + anb*psinb[i];
      psic[i] = numu / den;
    } else {
      f64 numd = q[i]*v + aez*psiez[i] + anb*psinb[i] - afp*0.5;
      psic[i] = numd / den;
    }
    psdiff[i] = 2.0*den - psifp[i];
  }
}
)",
      {{"mu", 1.2}, {"eta", 0.8}, {"xi", 0.6}},
      400});

  kernels.push_back(SequoiaKernel{
      "umt2k-5", "umt2k", "snswp3d.f90, snswp3d, line 178", 1.0,
      R"(# Small coupled pair of outputs sharing intermediate face terms.
kernel umt2k_5 {
  param i64 n;
  param f64 mu;
  param f64 eta;
  array f64 a1[1024];
  array f64 a2[1024];
  array f64 o1[1024];
  array f64 o2[1024];
  loop i = 0 .. n {
    f64 t1 = a1[i] * mu;
    f64 t2 = a2[i] * eta;
    f64 s = t1 + t2;
    f64 d = t1 - t2;
    o1[i] = s*d + t1*t2;
    o2[i] = s / (abs(d) + 0.1) + d*d;
  }
}
)",
      {{"mu", 1.2}, {"eta", 0.8}},
      400});

  kernels.push_back(SequoiaKernel{
      "umt2k-6", "umt2k", "snswp3d.f90, snswp3d, line 208", 5.7,
      R"(# The one kernel the paper reports as a slowdown: a chain of dependent
# conditionals over a carried flux, with tiny blocks between them and a
# per-iteration consumer on another core.
kernel umt2k_6 {
  param i64 n;
  array f64 sig[1024];
  array f64 w[1024];
  array f64 th1[1024];
  array f64 th2[1024];
  array f64 inc1[1024];
  array f64 inc2[1024];
  array f64 aux[1024];
  array f64 fluxo[1024];
  scalar f64 flux_out;
  carried f64 flux = 1.0;
  loop i = 0 .. n {
    f64 s1 = sig[i] * flux;
    if (s1 < th1[i]) {
      flux = flux + inc1[i];
    }
    f64 s2 = flux * w[i];
    if (s2 < th2[i] * 2.0) {
      flux = flux - inc2[i];
    }
    aux[i] = s1 * 2.0 - w[i];
    fluxo[i] = s2;
  }
  after {
    flux_out = flux;
  }
}
)",
      {},
      400});

  // ---------------- sphot (execute.f) ----------------

  kernels.push_back(SequoiaKernel{
      "sphot-1", "sphot", "execute.f, execute, line 88", 0.6,
      R"(# Cross-section preparation: two short dependent chains combined.
kernel sphot_1 {
  param i64 n;
  param f64 c1;
  param f64 c2;
  array f64 e1[1024];
  array f64 e2[1024];
  array f64 o[1024];
  loop i = 0 .. n {
    f64 d1 = e1[i] * c1;
    f64 d2 = e2[i] * c2;
    @speculate if (d1 < d2) {
      f64 oa = d1/(d2 + 1.0) + sqrt(d2);
      o[i] = oa;
    } else {
      f64 ob = d2/(d1 + 1.0) + d1*d1;
      o[i] = ob;
    }
  }
}
)",
      {{"c1", 1.1}, {"c2", 0.9}},
      400});

  kernels.push_back(SequoiaKernel{
      "sphot-2", "sphot", "execute.f, execute, line 300", 37.5,
      R"(# Monte Carlo tracking step for one particle history: energy and weight
# are carried state, the collision-vs-boundary test reads them (distance
# to collision scales with energy), and both outcome computations are
# pure and side-effect-free — the Figure 10 speculation pattern.
kernel sphot_2 {
  param i64 n;
  array i64 cells[1024];
  array f64 sa[1024];
  array f64 ss[1024];
  array f64 rho1[1024];
  array f64 rho2[1024];
  array f64 rand1[1024];
  array f64 rand2[1024];
  array f64 dist[1024];
  array f64 xpos[1024];
  array f64 dirx[1024];
  array f64 eout[1024];
  array f64 wout[1024];
  scalar f64 en_out;
  scalar f64 absorbed_out;
  carried f64 en = 1.0;
  carried f64 wgt = 1.0;
  carried f64 absorbed = 0.0;
  loop i = 0 .. n {
    i64 cell = cells[i];
    f64 sigabs = sa[cell] * rho1[i];
    f64 sigsct = ss[cell] * rho2[i];
    f64 sigtot = sigabs + sigsct;
    f64 dcol = rand1[i] / sigtot;
    f64 dbnd = dist[i];
    @speculate if (dcol * en < dbnd) {
      f64 colfac = 1.0 - sigabs / (sigtot + 0.5);
      f64 wfac = 0.999 - rand2[i] * 0.0001;
      en = en * colfac;
      wgt = wgt * wfac;
    } else {
      f64 bndfac = 0.995 + rand2[i] * 0.001;
      f64 xfac = (xpos[i] + dbnd * dirx[i]) * 0.0001 + 0.9995;
      en = en * bndfac;
      wgt = wgt * xfac;
    }
    eout[i] = en;
    wout[i] = wgt;
    absorbed = absorbed + sigabs * rand2[i] * 0.01;
  }
  after {
    en_out = en;
    absorbed_out = absorbed;
  }
}
)",
      {},
      400});

  return kernels;
}

}  // namespace

const std::vector<SequoiaKernel>& SequoiaKernels() {
  static const std::vector<SequoiaKernel> kernels = BuildKernels();
  return kernels;
}

const SequoiaKernel& SequoiaKernelById(const std::string& id) {
  for (const SequoiaKernel& kernel : SequoiaKernels()) {
    if (kernel.id == id) {
      return kernel;
    }
  }
  throw Error("unknown Sequoia kernel id: " + id);
}

ir::Kernel ParseSequoia(const SequoiaKernel& kernel) {
  return frontend::ParseKernel(kernel.source);
}

harness::WorkloadInit SequoiaInit(const SequoiaKernel& kernel) {
  const std::map<std::string, double> f64_params = kernel.f64_params;
  const std::int64_t trip = kernel.trip;
  return [f64_params, trip](std::uint64_t seed, const ir::Kernel& k,
                            const ir::DataLayout& layout, ir::ParamEnv& params,
                            std::vector<std::uint64_t>& memory) {
    Rng rng(seed);
    for (const ir::Symbol& sym : k.symbols()) {
      switch (sym.kind) {
        case ir::SymbolKind::kParam:
          if (sym.type == ir::ScalarType::kI64) {
            params.SetI64(sym.id, trip);
          } else {
            const auto it = f64_params.find(sym.name);
            params.SetF64(sym.id, it != f64_params.end()
                                      ? it->second
                                      : rng.NextDouble(0.5, 2.0));
          }
          break;
        case ir::SymbolKind::kArray: {
          const std::uint64_t base = layout.AddressOf(sym.id);
          for (std::int64_t i = 0; i < sym.array_size; ++i) {
            if (sym.type == ir::ScalarType::kF64) {
              memory[base + static_cast<std::uint64_t>(i)] =
                  std::bit_cast<std::uint64_t>(rng.NextDouble(0.5, 2.0));
            } else {
              memory[base + static_cast<std::uint64_t>(i)] =
                  static_cast<std::uint64_t>(rng.NextInt(0, sym.array_size - 1));
            }
          }
          break;
        }
        case ir::SymbolKind::kScalar:
          break;  // outputs start at zero
      }
    }
  };
}

const std::vector<SequoiaApplication>& SequoiaApplications() {
  static const std::vector<SequoiaApplication> apps = {
      {"lammps", {"lammps-1", "lammps-2", "lammps-3", "lammps-4", "lammps-5"}},
      {"irs", {"irs-1", "irs-2", "irs-3", "irs-4", "irs-5"}},
      {"umt2k",
       {"umt2k-1", "umt2k-2", "umt2k-3", "umt2k-4", "umt2k-5", "umt2k-6"}},
      {"sphot", {"sphot-1", "sphot-2"}},
  };
  return apps;
}

}  // namespace fgpar::kernels
