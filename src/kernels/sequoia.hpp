// Reconstructions of the paper's 18 evaluation kernels (Table I).
//
// The paper extracted 18 hot innermost loops from the Sequoia tier-1
// benchmarks (lammps, irs, umt2k, sphot) into standalone kernel programs.
// Those sources are not available here, so each kernel below is a synthetic
// reconstruction written in the kernel language, modelled on the named loop
// (file/function/line from Table I) and on the structural data of Table III
// (fiber counts, dependence density, load balance, conditional content):
//
//  * lammps-1..3  — EAM pair potential: cubic-spline interpolation over
//                   gathered neighbor coordinates, force/density
//                   accumulation (pair_eam.cpp, PairEAM::compute);
//  * lammps-4..5  — half-bin neighbor-list construction: distance filter
//                   with a carried append counter (neigh_half_bin.cpp);
//  * irs-1        — rmatmult3: wide multi-point stencil matrix multiply,
//                   the most independent of all kernels;
//  * irs-2..3     — conjugate-gradient vector updates and dot products
//                   (MatrixSolve.c, MatrixSolveCG);
//  * irs-4..5     — 3D diffusion-coefficient geometry (DiffCoeff.c);
//  * umt2k-1..6   — discrete-ordinates sweep (snswp3d): angular flux
//                   terms, conditional upwind reductions (umt2k-2/3: the
//                   pathological load-balance cases), the central psic
//                   expression, and the dependent-conditional chain that
//                   the paper reports as the one slowdown (umt2k-6);
//  * sphot-1..2   — Monte Carlo photon transport: cross-section lookups
//                   and the collision-vs-boundary branch (the Figure 10
//                   speculation pattern).
//
// The `pct_time` column reproduces Table I verbatim and feeds the Table II
// whole-application projection.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "harness/runner.hpp"
#include "ir/kernel.hpp"

namespace fgpar::kernels {

struct SequoiaKernel {
  std::string id;           // e.g. "lammps-1"
  std::string application;  // "lammps", "irs", "umt2k", "sphot"
  std::string location;     // Table I: file, function, line
  double pct_time = 0.0;    // Table I: % of application runtime
  std::string source;       // kernel-language text
  /// Fixed values for named f64 params (others are seeded randomly).
  std::map<std::string, double> f64_params;
  std::int64_t trip = 400;  // value of the i64 parameter "n"
};

/// All 18 kernels, in Table I order.
const std::vector<SequoiaKernel>& SequoiaKernels();

/// Looks up one kernel by id; throws if unknown.
const SequoiaKernel& SequoiaKernelById(const std::string& id);

/// Parses the kernel source.
ir::Kernel ParseSequoia(const SequoiaKernel& kernel);

/// Builds the standard workload initializer for a kernel: f64 arrays get
/// deterministic values in [0.5, 2), i64 arrays get in-range indices, the
/// i64 parameter "n" gets `trip`, and f64 params come from `f64_params`
/// (or a seeded random value in [0.5, 2)).  Data derives from the run seed
/// the harness passes in (RunConfig::seed; its 0x5EED default reproduces
/// the historical workloads).
harness::WorkloadInit SequoiaInit(const SequoiaKernel& kernel);

/// Table I applications in order, with their kernels' ids.
struct SequoiaApplication {
  std::string name;
  std::vector<std::string> kernel_ids;
};
const std::vector<SequoiaApplication>& SequoiaApplications();

}  // namespace fgpar::kernels
