#include "kernels/fig12_grid.hpp"

#include <algorithm>

namespace fgpar::kernels {

const SequoiaKernel& Fig12Grid::KernelAt(std::size_t index) const {
  return SequoiaKernels()[index % kernel_count];
}

Fig12Grid MakeFig12Grid(bool smoke) {
  Fig12Grid grid;
  grid.core_counts = {2, 4};
  const std::vector<SequoiaKernel>& all = SequoiaKernels();
  grid.kernel_count = smoke ? std::min<std::size_t>(3, all.size()) : all.size();
  grid.labels.reserve(grid.core_counts.size() * grid.kernel_count);
  for (const int cores : grid.core_counts) {
    for (std::size_t k = 0; k < grid.kernel_count; ++k) {
      grid.labels.push_back(all[k].id + " cores=" + std::to_string(cores));
    }
  }
  return grid;
}

}  // namespace fgpar::kernels
