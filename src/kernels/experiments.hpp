// Experiment drivers for the paper's evaluation section (Section V).
//
// Each bench binary (bench/) calls into these helpers to regenerate one
// table or figure.  Results are always produced through the verifying
// KernelRunner, so a number is only ever printed for a run whose memory
// matched the golden model bit-for-bit.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "harness/runner.hpp"
#include "kernels/sequoia.hpp"

namespace fgpar::kernels {

struct ExperimentConfig {
  int cores = 4;
  int queue_capacity = 20;      // Section V default
  int transfer_latency = 5;     // Section V default
  bool speculation = false;
  bool throughput_heuristic = false;
  bool verify = true;
  /// Off by default: the paper's evaluation uses the static heuristics;
  /// dynamic-feedback version selection (Section III-I.1) is measured
  /// separately by bench/ablation_dynamic_feedback.
  bool tune_by_simulation = false;
  /// Host threads used by RunAllKernels to fan independent kernel
  /// pipelines across cores (results are deterministic regardless).
  /// <= 0 resolves via harness::ResolveSweepThreads: FGPAR_SWEEP_THREADS
  /// if set, else the host's hardware concurrency.
  int sweep_threads = 0;
  /// See harness::RunConfig::force_slow_path.
  bool force_slow_path = false;
  /// See harness::RunConfig::force_tier (kAuto = fastest eligible tier).
  sim::RunTier force_tier = sim::RunTier::kAuto;
  /// See harness::RunConfig::backend: kNative additionally executes the
  /// kernel on real host threads and records measured wall-clock numbers.
  compiler::BackendKind backend = compiler::BackendKind::kSim;
};

harness::RunConfig ToRunConfig(const ExperimentConfig& config);

/// Runs one kernel under `config`.
harness::KernelRun RunKernel(const SequoiaKernel& kernel,
                             const ExperimentConfig& config);

/// Runs one kernel under a fully specified RunConfig (seed, faults, cycle
/// budget, failure hooks, ...) — the entry point sweep supervision uses.
harness::KernelRun RunKernel(const SequoiaKernel& kernel,
                             const harness::RunConfig& config);

/// Runs all 18 kernels in Table I order.
std::vector<harness::KernelRun> RunAllKernels(const ExperimentConfig& config);

/// Whole-application speedup projection (Table II): combines per-kernel
/// speedups with Table I's runtime percentages via Amdahl's law —
/// speedup(app) = 1 / ((1 - sum(w_k)) + sum(w_k / s_k)).
double ApplicationSpeedup(const SequoiaApplication& app,
                          const std::map<std::string, double>& kernel_speedups);

}  // namespace fgpar::kernels
