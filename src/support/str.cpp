#include "support/str.hpp"

#include <cstdio>

namespace fgpar {

std::string FormatFixed(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

std::string FormatWithCommas(long long value) {
  const bool negative = value < 0;
  unsigned long long magnitude =
      negative ? 0ULL - static_cast<unsigned long long>(value)
               : static_cast<unsigned long long>(value);
  std::string digits = std::to_string(magnitude);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count != 0 && count % 3 == 0) {
      out.push_back(',');
    }
    out.push_back(*it);
    ++count;
  }
  if (negative) {
    out.push_back('-');
  }
  return {out.rbegin(), out.rend()};
}

std::string PadLeft(const std::string& s, std::size_t width) {
  if (s.size() >= width) {
    return s;
  }
  return std::string(width - s.size(), ' ') + s;
}

std::string PadRight(const std::string& s, std::size_t width) {
  if (s.size() >= width) {
    return s;
  }
  return s + std::string(width - s.size(), ' ');
}

}  // namespace fgpar
