// Deterministic pseudo-random number generation.
//
// All randomness in the library (workload initialization, property-test
// program generation) flows through Rng so runs are reproducible from a
// single seed.  The generator is SplitMix64-seeded xoshiro256**, which is
// fast and has no observable bias for our purposes.
#pragma once

#include <array>
#include <cstdint>

namespace fgpar {

/// Deterministic 64-bit PRNG (xoshiro256**).
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  /// Uniform 64-bit value.
  std::uint64_t NextU64();

  /// Uniform in [0, bound).  bound must be nonzero.
  std::uint64_t NextBelow(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t NextInt(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double NextDouble(double lo, double hi);

  /// Bernoulli draw with probability p of returning true.
  bool NextBool(double p = 0.5);

  /// Raw generator state, exposed for machine snapshots: restoring the
  /// state and continuing must reproduce the exact draw sequence of an
  /// uninterrupted run.
  const std::array<std::uint64_t, 4>& state() const { return state_; }
  void set_state(const std::array<std::uint64_t, 4>& state) { state_ = state; }

 private:
  std::array<std::uint64_t, 4> state_;
};

/// Deterministically combines two seeds into a new one (SplitMix64-based).
/// Used to derive per-component streams (workload init, fault injection,
/// per-retry reseeding) from the single RunConfig seed without correlation.
std::uint64_t MixSeed(std::uint64_t a, std::uint64_t b);

}  // namespace fgpar
