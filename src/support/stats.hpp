// Small statistics helpers used by the harness and benches when
// aggregating per-kernel results into the averages the paper reports.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace fgpar {

/// Arithmetic mean; returns 0 for an empty range.
double Mean(std::span<const double> values);

/// Geometric mean; all values must be positive.  Returns 0 for empty input.
double GeoMean(std::span<const double> values);

/// Minimum / maximum; input must be non-empty.
double Min(std::span<const double> values);
double Max(std::span<const double> values);

/// Fractional ranks (1-based; ties get the average of the ranks they
/// span), the standard preprocessing step for Spearman correlation.
std::vector<double> FractionalRanks(std::span<const double> values);

/// Pearson product-moment correlation.  The spans must be the same
/// non-empty length; returns 0 when either side has zero variance.
double PearsonCorrelation(std::span<const double> a,
                          std::span<const double> b);

/// Spearman rank correlation (Pearson over fractional ranks; tie-safe).
/// The predictor cross-validation's headline number: how well the
/// analytic model orders kernels by measured speedup.
double SpearmanCorrelation(std::span<const double> a,
                           std::span<const double> b);

/// Online accumulator for count/mean/min/max.
class RunningStats {
 public:
  void Add(double value);
  std::size_t count() const { return count_; }
  double mean() const;
  double min() const;
  double max() const;
  double sum() const { return sum_; }

 private:
  std::size_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace fgpar
