#include "support/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "support/error.hpp"

namespace fgpar {

double Mean(std::span<const double> values) {
  if (values.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  for (double v : values) {
    sum += v;
  }
  return sum / static_cast<double>(values.size());
}

double GeoMean(std::span<const double> values) {
  if (values.empty()) {
    return 0.0;
  }
  double log_sum = 0.0;
  for (double v : values) {
    FGPAR_CHECK_MSG(v > 0.0, "GeoMean requires positive values");
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

double Min(std::span<const double> values) {
  FGPAR_CHECK(!values.empty());
  double m = values[0];
  for (double v : values) {
    m = std::min(m, v);
  }
  return m;
}

double Max(std::span<const double> values) {
  FGPAR_CHECK(!values.empty());
  double m = values[0];
  for (double v : values) {
    m = std::max(m, v);
  }
  return m;
}

std::vector<double> FractionalRanks(std::span<const double> values) {
  const std::size_t n = values.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return values[a] < values[b];
  });
  std::vector<double> ranks(n, 0.0);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && values[order[j + 1]] == values[order[i]]) {
      ++j;
    }
    // Positions i..j (0-based) share the value; each gets the average of
    // the 1-based ranks i+1..j+1.
    const double rank = static_cast<double>(i + j) / 2.0 + 1.0;
    for (std::size_t k = i; k <= j; ++k) {
      ranks[order[k]] = rank;
    }
    i = j + 1;
  }
  return ranks;
}

double PearsonCorrelation(std::span<const double> a,
                          std::span<const double> b) {
  FGPAR_CHECK_MSG(a.size() == b.size() && !a.empty(),
                  "PearsonCorrelation requires equal non-empty spans");
  const double mean_a = Mean(a);
  const double mean_b = Mean(b);
  double cov = 0.0;
  double var_a = 0.0;
  double var_b = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double da = a[i] - mean_a;
    const double db = b[i] - mean_b;
    cov += da * db;
    var_a += da * da;
    var_b += db * db;
  }
  if (var_a == 0.0 || var_b == 0.0) {
    return 0.0;
  }
  return cov / std::sqrt(var_a * var_b);
}

double SpearmanCorrelation(std::span<const double> a,
                           std::span<const double> b) {
  const std::vector<double> ranks_a = FractionalRanks(a);
  const std::vector<double> ranks_b = FractionalRanks(b);
  return PearsonCorrelation(ranks_a, ranks_b);
}

void RunningStats::Add(double value) {
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
}

double RunningStats::mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double RunningStats::min() const {
  FGPAR_CHECK(count_ > 0);
  return min_;
}

double RunningStats::max() const {
  FGPAR_CHECK(count_ > 0);
  return max_;
}

}  // namespace fgpar
