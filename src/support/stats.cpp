#include "support/stats.hpp"

#include <cmath>

#include "support/error.hpp"

namespace fgpar {

double Mean(std::span<const double> values) {
  if (values.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  for (double v : values) {
    sum += v;
  }
  return sum / static_cast<double>(values.size());
}

double GeoMean(std::span<const double> values) {
  if (values.empty()) {
    return 0.0;
  }
  double log_sum = 0.0;
  for (double v : values) {
    FGPAR_CHECK_MSG(v > 0.0, "GeoMean requires positive values");
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

double Min(std::span<const double> values) {
  FGPAR_CHECK(!values.empty());
  double m = values[0];
  for (double v : values) {
    m = std::min(m, v);
  }
  return m;
}

double Max(std::span<const double> values) {
  FGPAR_CHECK(!values.empty());
  double m = values[0];
  for (double v : values) {
    m = std::max(m, v);
  }
  return m;
}

void RunningStats::Add(double value) {
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
}

double RunningStats::mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double RunningStats::min() const {
  FGPAR_CHECK(count_ > 0);
  return min_;
}

double RunningStats::max() const {
  FGPAR_CHECK(count_ > 0);
  return max_;
}

}  // namespace fgpar
