// Plain-text table rendering used by the bench harness to print the
// paper's tables and figure data series in aligned columns.
#pragma once

#include <string>
#include <vector>

namespace fgpar {

/// Column-aligned text table.  Columns are sized to their widest cell.
/// Numeric cells should be pre-formatted by the caller (see str.hpp).
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Appends a data row; must have the same arity as the header.
  void AddRow(std::vector<std::string> row);

  /// Appends a horizontal separator line before the next row.
  void AddSeparator();

  /// Renders the table, including a title line if non-empty.
  std::string Render(const std::string& title = "") const;

 private:
  struct Row {
    bool separator = false;
    std::vector<std::string> cells;
  };

  std::vector<std::string> header_;
  std::vector<Row> rows_;
};

}  // namespace fgpar
