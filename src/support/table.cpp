#include "support/table.hpp"

#include <sstream>

#include "support/error.hpp"
#include "support/str.hpp"

namespace fgpar {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {
  FGPAR_CHECK(!header_.empty());
}

void TextTable::AddRow(std::vector<std::string> row) {
  FGPAR_CHECK_MSG(row.size() == header_.size(), "row arity mismatch");
  rows_.push_back(Row{false, std::move(row)});
}

void TextTable::AddSeparator() { rows_.push_back(Row{true, {}}); }

std::string TextTable::Render(const std::string& title) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const Row& row : rows_) {
    if (row.separator) {
      continue;
    }
    for (std::size_t c = 0; c < row.cells.size(); ++c) {
      widths[c] = std::max(widths[c], row.cells[c].size());
    }
  }

  auto rule = [&] {
    std::string line = "+";
    for (std::size_t w : widths) {
      line += std::string(w + 2, '-') + "+";
    }
    return line + "\n";
  };
  auto emit_row = [&](const std::vector<std::string>& cells) {
    std::string line = "|";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      line += " " + PadLeft(cells[c], widths[c]) + " |";
    }
    return line + "\n";
  };

  std::ostringstream os;
  if (!title.empty()) {
    os << title << "\n";
  }
  os << rule() << emit_row(header_) << rule();
  for (const Row& row : rows_) {
    if (row.separator) {
      os << rule();
    } else {
      os << emit_row(row.cells);
    }
  }
  os << rule();
  return os.str();
}

}  // namespace fgpar
