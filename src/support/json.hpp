// Minimal deterministic JSON emitter for machine-readable bench artifacts.
//
// The goal is byte-for-byte reproducible output, not generality:
//
//  * keys are emitted in the order the caller writes them (callers that
//    need canonical order sort before writing, e.g. via std::map);
//  * doubles are rendered with std::to_chars shortest round-trip form, so
//    the same value always produces the same bytes on every run and every
//    standard library that implements to_chars correctly;
//  * output is pretty-printed with two-space indentation so artifacts
//    diff cleanly in review.
//
// Only the subset of JSON the artifacts need is supported: objects,
// arrays, strings, signed/unsigned integers, doubles, and booleans.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace fgpar {

class JsonWriter {
 public:
  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();

  /// Emits an object key; must be followed by exactly one value (or
  /// container) before the next Key call.
  void Key(std::string_view key);

  void String(std::string_view value);
  void Int(std::int64_t value);
  void UInt(std::uint64_t value);
  /// Shortest round-trip form; non-finite values are emitted as null
  /// (JSON has no NaN/Inf).
  void Double(double value);
  void Bool(bool value);

  /// Returns the completed document (with a trailing newline) and resets
  /// the writer.
  std::string Take();

 private:
  void BeforeValue();
  void Indent();

  std::string out_;
  int depth_ = 0;
  bool need_comma_ = false;   // a value was emitted at this depth
  bool pending_key_ = false;  // the next value completes a key
};

}  // namespace fgpar
