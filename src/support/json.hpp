// Minimal deterministic JSON emitter for machine-readable bench artifacts.
//
// The goal is byte-for-byte reproducible output, not generality:
//
//  * keys are emitted in the order the caller writes them (callers that
//    need canonical order sort before writing, e.g. via std::map);
//  * doubles are rendered with std::to_chars shortest round-trip form, so
//    the same value always produces the same bytes on every run and every
//    standard library that implements to_chars correctly;
//  * output is pretty-printed with two-space indentation so artifacts
//    diff cleanly in review.
//
// Only the subset of JSON the artifacts need is supported: objects,
// arrays, strings, signed/unsigned integers, doubles, and booleans.
//
// ParseJson is the matching reader, used by the repro tool to load bundle
// manifests.  It accepts exactly the documents the writer (or a careful
// human) produces — objects, arrays, strings with the writer's escapes,
// numbers, booleans, null — and throws fgpar::Error with an offset on
// malformed input.  Object keys keep last-wins semantics on duplicates.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace fgpar {

class JsonWriter {
 public:
  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();

  /// Emits an object key; must be followed by exactly one value (or
  /// container) before the next Key call.
  void Key(std::string_view key);

  void String(std::string_view value);
  void Int(std::int64_t value);
  void UInt(std::uint64_t value);
  /// Shortest round-trip form; non-finite values are emitted as null
  /// (JSON has no NaN/Inf).
  void Double(double value);
  void Bool(bool value);

  /// Returns the completed document (with a trailing newline) and resets
  /// the writer.
  std::string Take();

 private:
  void BeforeValue();
  void Indent();

  std::string out_;
  int depth_ = 0;
  bool need_comma_ = false;   // a value was emitted at this depth
  bool pending_key_ = false;  // the next value completes a key
};

/// A parsed JSON document.  Numbers are stored as doubles (the artifacts'
/// integer fields are all exactly representable) with the original text
/// kept for exact u64 round-trips via AsU64.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }

  /// Typed accessors; throw fgpar::Error when the kind does not match.
  bool AsBool() const;
  double AsDouble() const;
  std::int64_t AsI64() const;
  std::uint64_t AsU64() const;
  const std::string& AsString() const;
  const std::vector<JsonValue>& AsArray() const;
  const std::map<std::string, JsonValue>& AsObject() const;

  /// Object member lookup; throws when absent (Get) or returns nullptr
  /// (Find).
  const JsonValue& Get(const std::string& key) const;
  const JsonValue* Find(const std::string& key) const;

 private:
  friend JsonValue ParseJson(std::string_view text);
  friend class JsonParser;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string text_;  // string value, or the raw literal of a number
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;
};

/// Parses one complete JSON document; throws fgpar::Error (with a byte
/// offset) on malformed input or trailing garbage.
JsonValue ParseJson(std::string_view text);

}  // namespace fgpar
