// Error handling primitives shared by every fgpar module.
//
// The library reports unrecoverable internal inconsistencies through
// fgpar::Error (derived from std::runtime_error) so that callers — tests,
// benches, the harness — can catch and report them uniformly.  FGPAR_CHECK
// is used for invariant checks that must hold in release builds too; it is
// not compiled out.
#pragma once

#include <stdexcept>
#include <string>

namespace fgpar {

/// Exception type for all fgpar-internal failures (bad IR, compiler
/// invariant violations, simulator misuse, parse errors carry a subclass).
class Error : public std::runtime_error {
 public:
  explicit Error(std::string message) : std::runtime_error(std::move(message)) {}
};

namespace detail {
[[noreturn]] void ThrowCheckFailure(const char* file, int line, const char* expr,
                                    const std::string& message);
}  // namespace detail

}  // namespace fgpar

/// Always-on invariant check.  Throws fgpar::Error on failure.
#define FGPAR_CHECK(expr)                                                \
  do {                                                                   \
    if (!(expr)) {                                                       \
      ::fgpar::detail::ThrowCheckFailure(__FILE__, __LINE__, #expr, ""); \
    }                                                                    \
  } while (false)

/// Invariant check with a formatted context message.
#define FGPAR_CHECK_MSG(expr, msg)                                          \
  do {                                                                      \
    if (!(expr)) {                                                          \
      ::fgpar::detail::ThrowCheckFailure(__FILE__, __LINE__, #expr, (msg)); \
    }                                                                       \
  } while (false)

/// Marks unreachable code paths.
#define FGPAR_UNREACHABLE(msg)                                                 \
  ::fgpar::detail::ThrowCheckFailure(__FILE__, __LINE__, "unreachable", (msg))
