// String formatting helpers (no iostream state leakage, no locale).
#pragma once

#include <string>

namespace fgpar {

/// Fixed-point formatting with the given number of decimals ("1.32").
std::string FormatFixed(double value, int decimals);

/// Thousands-separated integer formatting ("1,234,567").
std::string FormatWithCommas(long long value);

/// Left/right padding to a field width.
std::string PadLeft(const std::string& s, std::size_t width);
std::string PadRight(const std::string& s, std::size_t width);

}  // namespace fgpar
