// Deterministic binary serialization primitives.
//
// ByteWriter/ByteReader produce and consume a flat little-endian byte
// stream, independent of host endianness and padding, so a serialized
// machine snapshot or checkpoint payload is byte-identical across hosts
// and compilers.  The reader is strict: reading past the end, or finishing
// with bytes left over (CheckFullyConsumed), throws fgpar::Error instead of
// silently producing garbage — corrupt or truncated inputs must fail loud.
//
// HexEncode/HexDecode map byte blobs to lowercase hex for line-oriented
// text formats (the sweep checkpoint journal), and Fnv1a64 provides the
// stable content fingerprint used by snapshot identity checks and
// checkpoint grid fingerprints.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace fgpar {

class ByteWriter {
 public:
  void U8(std::uint8_t value);
  void U32(std::uint32_t value);
  void U64(std::uint64_t value);
  void I64(std::int64_t value);
  /// Bit-exact (round-trips NaN payloads and signed zero).
  void F64(double value);
  void Bool(bool value);
  /// Length-prefixed (u64) byte string.
  void Str(std::string_view value);
  /// Length-prefixed (u64) u64 vector.
  void U64Vec(const std::vector<std::uint64_t>& values);

  const std::vector<std::uint8_t>& bytes() const { return bytes_; }
  std::vector<std::uint8_t> Take() { return std::move(bytes_); }

 private:
  std::vector<std::uint8_t> bytes_;
};

class ByteReader {
 public:
  /// The reader borrows `bytes`; it must outlive the reader.
  explicit ByteReader(const std::vector<std::uint8_t>& bytes)
      : data_(bytes.data()), size_(bytes.size()) {}
  ByteReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  std::uint8_t U8();
  std::uint32_t U32();
  std::uint64_t U64();
  std::int64_t I64();
  double F64();
  bool Bool();
  std::string Str();
  std::vector<std::uint64_t> U64Vec();

  std::size_t remaining() const { return size_ - pos_; }
  /// Throws if any bytes were left unread (trailing garbage).
  void CheckFullyConsumed() const;

 private:
  const std::uint8_t* Need(std::size_t n);

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

/// Lowercase hex of a byte blob (two chars per byte).
std::string HexEncode(const std::vector<std::uint8_t>& bytes);
std::string HexEncode(std::string_view bytes);

/// Inverse of HexEncode; throws fgpar::Error on odd length or non-hex
/// characters.
std::vector<std::uint8_t> HexDecode(std::string_view hex);
std::string HexDecodeToString(std::string_view hex);

/// FNV-1a over a byte sequence; stable across hosts.
std::uint64_t Fnv1a64(const void* data, std::size_t size,
                      std::uint64_t seed = 0xcbf29ce484222325ull);
std::uint64_t Fnv1a64(std::string_view text,
                      std::uint64_t seed = 0xcbf29ce484222325ull);

}  // namespace fgpar
