#include "support/buildinfo.hpp"

#include <cstdio>

#include "support/serial.hpp"

// The build system passes these through target_compile_definitions; the
// fallbacks keep non-CMake builds (e.g. single-file syntax checks)
// compiling.
#ifndef FGPAR_VERSION
#define FGPAR_VERSION "0.0.0-dev"
#endif
#ifndef FGPAR_BUILD_TYPE
#define FGPAR_BUILD_TYPE "unknown"
#endif
#ifndef FGPAR_COMPILER
#define FGPAR_COMPILER "unknown"
#endif

namespace fgpar {

const std::string& BuildVersion() {
  static const std::string version = FGPAR_VERSION;
  return version;
}

const std::string& BuildVersionString() {
  static const std::string line = std::string("fgpar ") + FGPAR_VERSION +
                                  " (" FGPAR_COMPILER ", " FGPAR_BUILD_TYPE
                                  ", c++20)";
  return line;
}

std::uint64_t BuildConfigHash() {
  static const std::uint64_t hash = Fnv1a64(BuildVersionString());
  return hash;
}

std::string BuildConfigHashHex() {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(BuildConfigHash()));
  return buf;
}

}  // namespace fgpar
