#include "support/error.hpp"

#include <sstream>

namespace fgpar::detail {

void ThrowCheckFailure(const char* file, int line, const char* expr,
                       const std::string& message) {
  std::ostringstream os;
  os << "FGPAR_CHECK failed at " << file << ':' << line << ": " << expr;
  if (!message.empty()) {
    os << " — " << message;
  }
  throw Error(os.str());
}

}  // namespace fgpar::detail
