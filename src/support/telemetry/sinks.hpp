// Concrete telemetry sinks.  All of them serialize internally so one sink
// instance can absorb events from every worker thread of a harness sweep.
//
//  * AggregatingSink  — in-memory statistics + ordered span log; the
//                       cheapest "is telemetry on" sink, used by tests and
//                       by --compile-stats to rebuild its report.
//  * JsonLinesSink    — one compact JSON object per event per line, for
//                       ad hoc piping into jq and friends.
//  * ChromeTraceSink  — accumulates a Chrome trace_event document viewable
//                       at ui.perfetto.dev or chrome://tracing.  Sim
//                       events map 1 cycle = 1 µs on per-stream "sim"
//                       process tracks; host spans land on a "host" track
//                       in real microseconds (dropped entirely when host
//                       fields are suppressed, so deterministic-mode
//                       traces are byte-stable).
//  * RingBufferSink   — bounded ring of the last N sim events, feeding
//                       PointFailure forensics in the sweep supervisor.
//  * StreamSink       — stateless adapter that re-stamps the stream lane
//                       before forwarding, so several machines (or retry
//                       attempts) stay distinguishable in one shared sink.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "support/telemetry/telemetry.hpp"

namespace fgpar::telemetry {

/// A completed span with owned strings/counters, as recorded by
/// AggregatingSink in completion order.
struct SpanRecord {
  std::string category;
  std::string name;
  int stream = 0;
  double start_seconds = 0.0;
  double wall_seconds = 0.0;
  std::map<std::string, std::int64_t> counters;
};

/// Counts sim events by kind, accumulates stall cycles by cause, and keeps
/// every span in completion order.
class AggregatingSink : public TelemetrySink {
 public:
  void OnSim(const SimEvent& event) override;
  void OnSpan(const SpanEvent& event) override;

  std::uint64_t SimCount(SimEventKind kind) const;
  /// Total stalled cycles attributed to `cause` (summed kStallEnd
  /// intervals; a stall still open when the run ends is not counted).
  std::uint64_t StallCycles(StallCause cause) const;
  std::vector<SpanRecord> Spans() const;
  std::vector<SpanRecord> SpansInCategory(std::string_view category) const;

 private:
  mutable std::mutex mu_;
  std::array<std::uint64_t, 5> sim_counts_{};
  std::array<std::uint64_t, 5> stall_cycles_{};
  std::vector<SpanRecord> spans_;
};

/// Writes one compact JSON object per event to `out`.  Span lines are
/// omitted when `include_host` is false (host wall times are not
/// deterministic).  The stream must outlive the sink.
class JsonLinesSink : public TelemetrySink {
 public:
  explicit JsonLinesSink(std::ostream& out,
                         bool include_host = !HostFieldsSuppressed());

  void OnSim(const SimEvent& event) override;
  void OnSpan(const SpanEvent& event) override;

 private:
  std::mutex mu_;
  std::ostream& out_;
  bool include_host_;
};

/// Accumulates events and renders them as one Chrome trace_event JSON
/// document ("fgpar-trace-v1").  Construct, run, then Render()/WriteFile().
class ChromeTraceSink : public TelemetrySink {
 public:
  explicit ChromeTraceSink(bool include_host = !HostFieldsSuppressed());

  void OnSim(const SimEvent& event) override;
  void OnSpan(const SpanEvent& event) override;

  /// The complete trace document (deterministic given deterministic
  /// events; span timestamps are host wall times, so byte-stable output
  /// requires include_host = false).
  std::string Render() const;
  void WriteFile(const std::string& path) const;

 private:
  mutable std::mutex mu_;
  bool include_host_;
  std::vector<SimEvent> sim_events_;
  std::vector<SpanRecord> spans_;
};

/// Keeps the most recent `capacity` sim events (spans are ignored — the
/// ring exists to answer "what was the machine doing right before it
/// failed").  SimEvent::name points at static opcode-name storage, so
/// retained events stay valid after the emitting machine is gone.
class RingBufferSink : public TelemetrySink {
 public:
  explicit RingBufferSink(std::size_t capacity);

  void OnSim(const SimEvent& event) override;
  void OnSpan(const SpanEvent&) override {}

  /// Oldest-to-newest contents.
  std::vector<SimEvent> Events() const;
  void Clear();

 private:
  mutable std::mutex mu_;
  std::size_t capacity_;
  std::deque<SimEvent> events_;
};

/// Forwards every event to `inner` with the stream lane re-stamped.
/// Stateless, so it needs no lock of its own; `inner` must outlive it.
class StreamSink : public TelemetrySink {
 public:
  StreamSink(TelemetrySink* inner, int stream)
      : inner_(inner), stream_(stream) {}

  void OnSim(const SimEvent& event) override;
  void OnSpan(const SpanEvent& event) override;

 private:
  TelemetrySink* inner_;
  int stream_;
};

/// Forwards every event to each of several sinks, in order.  Null entries
/// are skipped.  Stateless after construction (no lock of its own; the
/// targets serialize themselves); the targets must outlive it.  Used by
/// the sweep supervisor to tee a point's events into both the shared
/// trace sink and a per-point forensic ring.
class FanoutSink : public TelemetrySink {
 public:
  explicit FanoutSink(std::vector<TelemetrySink*> sinks)
      : sinks_(std::move(sinks)) {}

  void OnSim(const SimEvent& event) override;
  void OnSpan(const SpanEvent& event) override;

 private:
  std::vector<TelemetrySink*> sinks_;
};

}  // namespace fgpar::telemetry
