#include "support/telemetry/telemetry.hpp"

#include <cstdlib>

#include "support/error.hpp"

namespace fgpar::telemetry {

std::string_view SimEventKindName(SimEventKind kind) {
  switch (kind) {
    case SimEventKind::kIssue:
      return "issue";
    case SimEventKind::kQueueEnqueue:
      return "enqueue";
    case SimEventKind::kQueueDequeue:
      return "dequeue";
    case SimEventKind::kStallBegin:
      return "stall_begin";
    case SimEventKind::kStallEnd:
      return "stall_end";
  }
  FGPAR_UNREACHABLE("bad SimEventKind");
}

std::string_view StallCauseName(StallCause cause) {
  switch (cause) {
    case StallCause::kNone:
      return "none";
    case StallCause::kQueueEmpty:
      return "queue_empty";
    case StallCause::kQueueFull:
      return "queue_full";
    case StallCause::kPipeline:
      return "pipeline";
    case StallCause::kFrozen:
      return "frozen";
  }
  FGPAR_UNREACHABLE("bad StallCause");
}

double HostSecondsSinceEpoch() {
  // The epoch is pinned on first use; function-local static keeps it safe
  // under concurrent first calls from sweep workers.
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - epoch)
      .count();
}

bool HostFieldsSuppressed() {
  const char* env = std::getenv("FGPAR_BENCH_DETERMINISTIC");
  return env != nullptr && env[0] != '\0' &&
         !(env[0] == '0' && env[1] == '\0');
}

ScopedSpan::ScopedSpan(TelemetrySink* sink, std::string_view category,
                       std::string_view name, int stream)
    : sink_(sink), category_(category), name_(name), stream_(stream) {
  if (sink_ != nullptr) {
    start_seconds_ = HostSecondsSinceEpoch();
    start_ = std::chrono::steady_clock::now();
  }
}

ScopedSpan::~ScopedSpan() {
  if (sink_ == nullptr) {
    return;
  }
  SpanEvent event;
  event.category = category_;
  event.name = name_;
  event.stream = stream_;
  event.start_seconds = start_seconds_;
  event.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();
  event.counters = &counters_;
  try {
    sink_->OnSpan(event);
  } catch (...) {
    // A sink failure must not turn destruction into termination; spans are
    // observability, not control flow.
  }
}

void ScopedSpan::Note(const std::string& key, std::int64_t value) {
  counters_[key] = value;
}

void CounterRegistry::Count(const std::string& name, std::uint64_t value,
                            bool artifact) {
  counts_[name] = CountEntry{value, artifact};
}

void CounterRegistry::Metric(const std::string& name, double value,
                             bool artifact) {
  metrics_[name] = MetricEntry{value, artifact};
}

std::uint64_t CounterRegistry::count(const std::string& name) const {
  const auto it = counts_.find(name);
  FGPAR_CHECK_MSG(it != counts_.end(), "unknown counter: " + name);
  return it->second.value;
}

double CounterRegistry::metric(const std::string& name) const {
  const auto it = metrics_.find(name);
  FGPAR_CHECK_MSG(it != metrics_.end(), "unknown metric: " + name);
  return it->second.value;
}

bool CounterRegistry::HasCount(const std::string& name) const {
  return counts_.find(name) != counts_.end();
}

}  // namespace fgpar::telemetry
