// The unified telemetry spine: one structured event model shared by the
// simulator, the compiler, and the harness.
//
// Before this subsystem existed, "where do the cycles go?" was answered by
// four disconnected surfaces: a bare per-issue callback on sim::Machine,
// CoreStats counters, the pass manager's bespoke statistics structs, and
// the sweep supervisor's failure plumbing.  Telemetry replaces all of them
// with two event shapes and one counter container:
//
//  * SimEvent — a cycle-stamped simulator event (instruction issue, queue
//    enqueue/dequeue with occupancy, stall begin/end with cause).  Sim
//    events are a pure function of the simulated run: the same program and
//    seed produce the same event stream byte-for-byte, so traces can be
//    golden-tested like any other deterministic artifact.
//  * SpanEvent — a host-time interval (a compiler pass, a sweep point, a
//    supervisor retry) with an attached map of deterministic counters.
//    Host wall-clock values never enter the deterministic portion of any
//    artifact; sinks that serialize can drop spans wholesale (see
//    ChromeTraceSink's include_host and HostFieldsSuppressed()).
//  * CounterRegistry — named deterministic counters/metrics with a
//    per-entry artifact-visibility flag, so one registry can feed both the
//    byte-stable BENCH_*.json artifacts and wider diagnostic surfaces
//    (e.g. table3's extra columns) without two hand-rolled mappings.
//
// Zero overhead when off: every producer holds a nullable TelemetrySink*
// and emits nothing when it is null.  In particular sim::Machine keeps its
// fast-path eligibility rule — no sink installed ⇒ the predecoded RunFast
// loop, bit-identical statistics (tests/telemetry_test.cpp measures the
// sink-off delta; bench/micro_sim records it in BENCH_sim_throughput.json).
//
// Sinks (sinks.hpp): AggregatingSink (stats), JsonLinesSink (one JSON
// object per event), ChromeTraceSink (chrome://tracing / ui.perfetto.dev),
// RingBufferSink (bounded last-N ring for failure forensics), StreamSink
// (re-stamps the stream lane, for fanning many machines into one trace).
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>

namespace fgpar::telemetry {

// ---------------------------------------------------------------------------
// Simulator events
// ---------------------------------------------------------------------------

enum class SimEventKind : std::uint8_t {
  kIssue,         // an instruction issued (pc/opcode valid)
  kQueueEnqueue,  // a value entered a hardware queue (queue fields valid)
  kQueueDequeue,  // a value left a hardware queue (queue fields valid)
  kStallBegin,    // a core stopped issuing for `cause`
  kStallEnd,      // the core issued again (begin_cycle..cycle is the stall)
};

/// Why a core is not issuing.  kPipeline covers operand (RAW) waits and
/// busy unpipelined units — everything Core::Step reports as pipeline
/// busy; the queue causes mirror CoreStats::stall_queue_empty/full; kFrozen
/// is fault-injected core freezing.
enum class StallCause : std::uint8_t {
  kNone,
  kQueueEmpty,
  kQueueFull,
  kPipeline,
  kFrozen,
};

std::string_view SimEventKindName(SimEventKind kind);
std::string_view StallCauseName(StallCause cause);

/// One cycle-stamped simulator event.  Deterministic: produced only by the
/// instrumented reference run loop, in (cycle, core-evaluation) order.
struct SimEvent {
  SimEventKind kind = SimEventKind::kIssue;
  std::uint64_t cycle = 0;
  /// Trace lane ("process" in Chrome traces).  Producers emit 0; adapters
  /// (StreamSink) re-stamp it to keep multiple machines apart in one file.
  int stream = 0;
  int core = -1;
  std::int64_t pc = -1;
  /// Issue events: the opcode's mnemonic ("addi", "enqf", ...).  Points at
  /// static storage (isa::OpcodeName); never owned by the event.
  std::string_view name;
  // Stall events.
  StallCause cause = StallCause::kNone;
  std::uint64_t begin_cycle = 0;  // kStallEnd: where the interval started
  // Queue events: the directional channel and its occupancy after the op.
  int queue_src = -1;
  int queue_dst = -1;
  bool queue_is_fp = false;
  int occupancy = 0;
};

// ---------------------------------------------------------------------------
// Host-time spans
// ---------------------------------------------------------------------------

/// A completed host-time interval with attached deterministic counters.
/// Spans are emitted on completion (ScopedSpan's destructor); categories in
/// use: "pipeline"/"pass" (compiler), "point"/"retry" (sweep supervision).
struct SpanEvent {
  std::string_view category;
  std::string_view name;
  int stream = 0;
  double start_seconds = 0.0;  // host time relative to ProcessEpoch()
  double wall_seconds = 0.0;
  /// Deterministic counters attached to the span (may be null).
  const std::map<std::string, std::int64_t>* counters = nullptr;
};

/// Seconds since the process-wide telemetry epoch (first use).  All spans
/// share this single host timeline so one trace file lines them up.
double HostSecondsSinceEpoch();

/// True when FGPAR_BENCH_DETERMINISTIC is set non-empty/non-zero: sinks
/// that serialize must drop host-time fields so their output is a pure
/// function of the experiment inputs (same convention as BenchArtifact).
bool HostFieldsSuppressed();

// ---------------------------------------------------------------------------
// The sink interface
// ---------------------------------------------------------------------------

/// Receives telemetry events.  Producers treat a null sink pointer as
/// "telemetry off" and must not pay any per-event cost in that case.
///
/// Threading: one simulated machine emits from one thread, but harness
/// sweeps fan machines across host threads into a shared sink, so every
/// concrete sink in sinks.hpp serializes internally; custom sinks used
/// under a sweep must do the same.
class TelemetrySink {
 public:
  virtual ~TelemetrySink() = default;
  virtual void OnSim(const SimEvent& event) = 0;
  virtual void OnSpan(const SpanEvent& event) = 0;
};

/// RAII host-time span: measures construction→destruction and emits one
/// SpanEvent into `sink` (no-op when null).  Note() attaches deterministic
/// counters; counters() exposes the map for code that fills it indirectly
/// (the pass manager points CompileState::current_counters at it).
class ScopedSpan {
 public:
  ScopedSpan(TelemetrySink* sink, std::string_view category,
             std::string_view name, int stream = 0);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  void Note(const std::string& key, std::int64_t value);
  std::map<std::string, std::int64_t>& counters() { return counters_; }

 private:
  TelemetrySink* sink_;
  std::string category_;
  std::string name_;
  int stream_;
  double start_seconds_ = 0.0;
  std::chrono::steady_clock::time_point start_;
  std::map<std::string, std::int64_t> counters_;
};

// ---------------------------------------------------------------------------
// Counter registry
// ---------------------------------------------------------------------------

/// Named deterministic counters (u64) and metrics (double), each tagged
/// with whether it belongs in byte-stable bench artifacts or is a wider
/// diagnostic (artifact consumers iterate only the artifact subset, so
/// adding a diagnostic never changes artifact bytes).  Keys iterate in
/// lexicographic order, matching the artifact schema's key ordering.
class CounterRegistry {
 public:
  void Count(const std::string& name, std::uint64_t value,
             bool artifact = true);
  void Metric(const std::string& name, double value, bool artifact = true);

  /// Lookup; throws fgpar::Error when the name was never registered.
  std::uint64_t count(const std::string& name) const;
  double metric(const std::string& name) const;
  bool HasCount(const std::string& name) const;

  template <typename Fn>  // fn(name, value) over artifact-visible counts
  void ForEachArtifactCount(Fn&& fn) const {
    for (const auto& [name, entry] : counts_) {
      if (entry.artifact) {
        fn(name, entry.value);
      }
    }
  }
  template <typename Fn>  // fn(name, value) over artifact-visible metrics
  void ForEachArtifactMetric(Fn&& fn) const {
    for (const auto& [name, entry] : metrics_) {
      if (entry.artifact) {
        fn(name, entry.value);
      }
    }
  }

 private:
  struct CountEntry {
    std::uint64_t value = 0;
    bool artifact = true;
  };
  struct MetricEntry {
    double value = 0.0;
    bool artifact = true;
  };
  std::map<std::string, CountEntry> counts_;
  std::map<std::string, MetricEntry> metrics_;
};

}  // namespace fgpar::telemetry
