#include "support/telemetry/sinks.hpp"

#include <fstream>
#include <ostream>

#include "support/error.hpp"
#include "support/json.hpp"

namespace fgpar::telemetry {

namespace {

std::size_t KindIndex(SimEventKind kind) {
  return static_cast<std::size_t>(kind);
}
std::size_t CauseIndex(StallCause cause) {
  return static_cast<std::size_t>(cause);
}

/// Minimal JSON string escaping for the compact one-line format (event
/// names are opcode mnemonics and enum names, but a custom span name could
/// contain anything).
std::string Escaped(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string QueueTrackName(const SimEvent& event) {
  std::string name = "queue " + std::to_string(event.queue_src) + "->" +
                     std::to_string(event.queue_dst);
  if (event.queue_is_fp) {
    name += " fp";
  }
  return name;
}

SpanRecord ToRecord(const SpanEvent& event) {
  SpanRecord record;
  record.category = std::string(event.category);
  record.name = std::string(event.name);
  record.stream = event.stream;
  record.start_seconds = event.start_seconds;
  record.wall_seconds = event.wall_seconds;
  if (event.counters != nullptr) {
    record.counters = *event.counters;
  }
  return record;
}

}  // namespace

// ---------------------------------------------------------------------------
// AggregatingSink
// ---------------------------------------------------------------------------

void AggregatingSink::OnSim(const SimEvent& event) {
  std::lock_guard<std::mutex> lock(mu_);
  sim_counts_[KindIndex(event.kind)]++;
  if (event.kind == SimEventKind::kStallEnd) {
    stall_cycles_[CauseIndex(event.cause)] += event.cycle - event.begin_cycle;
  }
}

void AggregatingSink::OnSpan(const SpanEvent& event) {
  std::lock_guard<std::mutex> lock(mu_);
  spans_.push_back(ToRecord(event));
}

std::uint64_t AggregatingSink::SimCount(SimEventKind kind) const {
  std::lock_guard<std::mutex> lock(mu_);
  return sim_counts_[KindIndex(kind)];
}

std::uint64_t AggregatingSink::StallCycles(StallCause cause) const {
  std::lock_guard<std::mutex> lock(mu_);
  return stall_cycles_[CauseIndex(cause)];
}

std::vector<SpanRecord> AggregatingSink::Spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

std::vector<SpanRecord> AggregatingSink::SpansInCategory(
    std::string_view category) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SpanRecord> out;
  for (const SpanRecord& span : spans_) {
    if (span.category == category) {
      out.push_back(span);
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// JsonLinesSink
// ---------------------------------------------------------------------------

JsonLinesSink::JsonLinesSink(std::ostream& out, bool include_host)
    : out_(out), include_host_(include_host) {}

void JsonLinesSink::OnSim(const SimEvent& event) {
  std::string line = "{\"type\":\"sim\",\"kind\":\"";
  line += SimEventKindName(event.kind);
  line += "\",\"cycle\":" + std::to_string(event.cycle);
  line += ",\"stream\":" + std::to_string(event.stream);
  line += ",\"core\":" + std::to_string(event.core);
  switch (event.kind) {
    case SimEventKind::kIssue:
      line += ",\"pc\":" + std::to_string(event.pc);
      line += ",\"op\":\"" + Escaped(event.name) + "\"";
      break;
    case SimEventKind::kQueueEnqueue:
    case SimEventKind::kQueueDequeue:
      line += ",\"queue_src\":" + std::to_string(event.queue_src);
      line += ",\"queue_dst\":" + std::to_string(event.queue_dst);
      line += std::string(",\"fp\":") + (event.queue_is_fp ? "true" : "false");
      line += ",\"occupancy\":" + std::to_string(event.occupancy);
      break;
    case SimEventKind::kStallBegin:
      line += ",\"cause\":\"" + std::string(StallCauseName(event.cause)) + "\"";
      break;
    case SimEventKind::kStallEnd:
      line += ",\"cause\":\"" + std::string(StallCauseName(event.cause)) + "\"";
      line += ",\"begin_cycle\":" + std::to_string(event.begin_cycle);
      break;
  }
  line += "}\n";
  std::lock_guard<std::mutex> lock(mu_);
  out_ << line;
}

void JsonLinesSink::OnSpan(const SpanEvent& event) {
  if (!include_host_) {
    return;
  }
  std::string line = "{\"type\":\"span\",\"category\":\"";
  line += Escaped(event.category);
  line += "\",\"name\":\"";
  line += Escaped(event.name);
  line += "\"";
  line += ",\"stream\":" + std::to_string(event.stream);
  line += ",\"start_seconds\":" + std::to_string(event.start_seconds);
  line += ",\"wall_seconds\":" + std::to_string(event.wall_seconds);
  if (event.counters != nullptr && !event.counters->empty()) {
    line += ",\"counters\":{";
    bool first = true;
    for (const auto& [key, value] : *event.counters) {
      if (!first) {
        line += ",";
      }
      first = false;
      line += "\"";
      line += Escaped(key);
      line += "\":";
      line += std::to_string(value);
    }
    line += "}";
  }
  line += "}\n";
  std::lock_guard<std::mutex> lock(mu_);
  out_ << line;
}

// ---------------------------------------------------------------------------
// ChromeTraceSink
// ---------------------------------------------------------------------------

ChromeTraceSink::ChromeTraceSink(bool include_host)
    : include_host_(include_host) {}

void ChromeTraceSink::OnSim(const SimEvent& event) {
  std::lock_guard<std::mutex> lock(mu_);
  sim_events_.push_back(event);
}

void ChromeTraceSink::OnSpan(const SpanEvent& event) {
  if (!include_host_) {
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  spans_.push_back(ToRecord(event));
}

std::string ChromeTraceSink::Render() const {
  std::lock_guard<std::mutex> lock(mu_);

  // Sim streams become Chrome "processes" (pid = stream + 1; pid 0 is the
  // host track).  One cycle renders as one microsecond, so Perfetto's time
  // axis reads directly in cycles.
  std::map<int, bool> sim_pids;  // stream -> seen
  for (const SimEvent& event : sim_events_) {
    sim_pids[event.stream] = true;
  }

  JsonWriter json;
  json.BeginObject();
  json.Key("displayTimeUnit");
  json.String("ms");
  json.Key("otherData");
  json.BeginObject();
  json.Key("schema");
  json.String("fgpar-trace-v1");
  json.Key("time_unit");
  json.String("1 sim cycle = 1us (sim tracks); real us (host track)");
  json.EndObject();
  json.Key("traceEvents");
  json.BeginArray();

  const auto metadata = [&](int pid, const std::string& name) {
    json.BeginObject();
    json.Key("name");
    json.String("process_name");
    json.Key("ph");
    json.String("M");
    json.Key("pid");
    json.Int(pid);
    json.Key("args");
    json.BeginObject();
    json.Key("name");
    json.String(name);
    json.EndObject();
    json.EndObject();
  };
  if (!spans_.empty()) {
    metadata(0, "host");
  }
  for (const auto& [stream, seen] : sim_pids) {
    (void)seen;
    metadata(stream + 1, "sim stream " + std::to_string(stream));
  }

  for (const SimEvent& event : sim_events_) {
    switch (event.kind) {
      case SimEventKind::kIssue: {
        json.BeginObject();
        json.Key("name");
        json.String(event.name.empty() ? std::string_view("issue")
                                       : event.name);
        json.Key("cat");
        json.String("issue");
        json.Key("ph");
        json.String("X");
        json.Key("ts");
        json.UInt(event.cycle);
        json.Key("dur");
        json.UInt(1);
        json.Key("pid");
        json.Int(event.stream + 1);
        json.Key("tid");
        json.Int(event.core);
        json.Key("args");
        json.BeginObject();
        json.Key("pc");
        json.Int(event.pc);
        json.EndObject();
        json.EndObject();
        break;
      }
      case SimEventKind::kQueueEnqueue:
      case SimEventKind::kQueueDequeue: {
        // Counter track per directional queue: occupancy over time.
        json.BeginObject();
        json.Key("name");
        json.String(QueueTrackName(event));
        json.Key("cat");
        json.String("queue");
        json.Key("ph");
        json.String("C");
        json.Key("ts");
        json.UInt(event.cycle);
        json.Key("pid");
        json.Int(event.stream + 1);
        json.Key("args");
        json.BeginObject();
        json.Key("occupancy");
        json.Int(event.occupancy);
        json.EndObject();
        json.EndObject();
        break;
      }
      case SimEventKind::kStallBegin:
        break;  // rendered as one interval when the stall ends
      case SimEventKind::kStallEnd: {
        json.BeginObject();
        json.Key("name");
        json.String("stall:" + std::string(StallCauseName(event.cause)));
        json.Key("cat");
        json.String("stall");
        json.Key("ph");
        json.String("X");
        json.Key("ts");
        json.UInt(event.begin_cycle);
        json.Key("dur");
        json.UInt(event.cycle - event.begin_cycle);
        json.Key("pid");
        json.Int(event.stream + 1);
        json.Key("tid");
        json.Int(event.core);
        json.Key("args");
        json.BeginObject();
        json.EndObject();
        json.EndObject();
        break;
      }
    }
  }

  for (const SpanRecord& span : spans_) {
    json.BeginObject();
    json.Key("name");
    json.String(span.name);
    json.Key("cat");
    json.String(span.category);
    json.Key("ph");
    json.String("X");
    json.Key("ts");
    json.Double(span.start_seconds * 1e6);
    json.Key("dur");
    json.Double(span.wall_seconds * 1e6);
    json.Key("pid");
    json.Int(0);
    json.Key("tid");
    json.Int(span.stream);
    json.Key("args");
    json.BeginObject();
    for (const auto& [key, value] : span.counters) {
      json.Key(key);
      json.Int(value);
    }
    json.EndObject();
    json.EndObject();
  }

  json.EndArray();
  json.EndObject();
  return json.Take();
}

void ChromeTraceSink::WriteFile(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  FGPAR_CHECK_MSG(out.good(), "cannot open trace output: " + path);
  out << Render();
  FGPAR_CHECK_MSG(out.good(), "failed writing trace output: " + path);
}

// ---------------------------------------------------------------------------
// RingBufferSink
// ---------------------------------------------------------------------------

RingBufferSink::RingBufferSink(std::size_t capacity) : capacity_(capacity) {
  FGPAR_CHECK_MSG(capacity_ > 0, "ring capacity must be positive");
}

void RingBufferSink::OnSim(const SimEvent& event) {
  std::lock_guard<std::mutex> lock(mu_);
  if (events_.size() == capacity_) {
    events_.pop_front();
  }
  events_.push_back(event);
}

std::vector<SimEvent> RingBufferSink::Events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<SimEvent>(events_.begin(), events_.end());
}

void RingBufferSink::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
}

// ---------------------------------------------------------------------------
// StreamSink
// ---------------------------------------------------------------------------

void StreamSink::OnSim(const SimEvent& event) {
  SimEvent restamped = event;
  restamped.stream = stream_;
  inner_->OnSim(restamped);
}

void StreamSink::OnSpan(const SpanEvent& event) {
  SpanEvent restamped = event;
  restamped.stream = stream_;
  inner_->OnSpan(restamped);
}

// ---------------------------------------------------------------------------
// FanoutSink
// ---------------------------------------------------------------------------

void FanoutSink::OnSim(const SimEvent& event) {
  for (TelemetrySink* sink : sinks_) {
    if (sink != nullptr) {
      sink->OnSim(event);
    }
  }
}

void FanoutSink::OnSpan(const SpanEvent& event) {
  for (TelemetrySink* sink : sinks_) {
    if (sink != nullptr) {
      sink->OnSpan(event);
    }
  }
}

}  // namespace fgpar::telemetry
