#include "support/rng.hpp"

#include "support/error.hpp"

namespace fgpar {
namespace {

std::uint64_t SplitMix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t RotL(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) {
    word = SplitMix64(s);
  }
}

std::uint64_t Rng::NextU64() {
  const std::uint64_t result = RotL(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = RotL(state_[3], 45);
  return result;
}

std::uint64_t Rng::NextBelow(std::uint64_t bound) {
  FGPAR_CHECK(bound != 0);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t r = NextU64();
    if (r >= threshold) {
      return r % bound;
    }
  }
}

std::int64_t Rng::NextInt(std::int64_t lo, std::int64_t hi) {
  FGPAR_CHECK(lo <= hi);
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<std::int64_t>(NextU64());
  }
  return lo + static_cast<std::int64_t>(NextBelow(span));
}

double Rng::NextDouble() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::NextDouble(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

bool Rng::NextBool(double p) { return NextDouble() < p; }

std::uint64_t MixSeed(std::uint64_t a, std::uint64_t b) {
  std::uint64_t s = a ^ RotL(b, 32);
  std::uint64_t mixed = SplitMix64(s);
  return SplitMix64(s) ^ mixed;
}

}  // namespace fgpar
