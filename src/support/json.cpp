#include "support/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>

#include "support/error.hpp"

namespace fgpar {

void JsonWriter::BeforeValue() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // the key already placed the comma and indentation
  }
  if (need_comma_) {
    out_ += ',';
  }
  if (depth_ > 0) {
    out_ += '\n';
    Indent();
  }
}

void JsonWriter::Indent() {
  out_.append(static_cast<std::size_t>(depth_) * 2, ' ');
}

void JsonWriter::BeginObject() {
  BeforeValue();
  out_ += '{';
  ++depth_;
  need_comma_ = false;
}

void JsonWriter::EndObject() {
  FGPAR_CHECK(depth_ > 0 && !pending_key_);
  --depth_;
  if (need_comma_) {  // object had at least one member
    out_ += '\n';
    Indent();
  }
  out_ += '}';
  need_comma_ = true;
}

void JsonWriter::BeginArray() {
  BeforeValue();
  out_ += '[';
  ++depth_;
  need_comma_ = false;
}

void JsonWriter::EndArray() {
  FGPAR_CHECK(depth_ > 0 && !pending_key_);
  --depth_;
  if (need_comma_) {
    out_ += '\n';
    Indent();
  }
  out_ += ']';
  need_comma_ = true;
}

void JsonWriter::Key(std::string_view key) {
  FGPAR_CHECK(!pending_key_);
  String(key);
  out_ += ": ";
  need_comma_ = false;
  pending_key_ = true;
}

void JsonWriter::String(std::string_view value) {
  BeforeValue();
  out_ += '"';
  for (const char c : value) {
    switch (c) {
      case '"': out_ += "\\\""; break;
      case '\\': out_ += "\\\\"; break;
      case '\n': out_ += "\\n"; break;
      case '\r': out_ += "\\r"; break;
      case '\t': out_ += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out_ += buf;
        } else {
          out_ += c;
        }
    }
  }
  out_ += '"';
  need_comma_ = true;
}

void JsonWriter::Int(std::int64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
  need_comma_ = true;
}

void JsonWriter::UInt(std::uint64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
  need_comma_ = true;
}

void JsonWriter::Double(double value) {
  BeforeValue();
  if (!std::isfinite(value)) {
    out_ += "null";
  } else {
    char buf[64];
    const auto result = std::to_chars(buf, buf + sizeof(buf), value);
    FGPAR_CHECK(result.ec == std::errc());
    out_.append(buf, result.ptr);
  }
  need_comma_ = true;
}

void JsonWriter::Bool(bool value) {
  BeforeValue();
  out_ += value ? "true" : "false";
  need_comma_ = true;
}

std::string JsonWriter::Take() {
  FGPAR_CHECK_MSG(depth_ == 0 && !pending_key_,
                  "JsonWriter::Take with unterminated containers");
  out_ += '\n';
  std::string result = std::move(out_);
  out_.clear();
  need_comma_ = false;
  return result;
}

}  // namespace fgpar
