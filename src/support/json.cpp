#include "support/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

#include "support/error.hpp"

namespace fgpar {

void JsonWriter::BeforeValue() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // the key already placed the comma and indentation
  }
  if (need_comma_) {
    out_ += ',';
  }
  if (depth_ > 0) {
    out_ += '\n';
    Indent();
  }
}

void JsonWriter::Indent() {
  out_.append(static_cast<std::size_t>(depth_) * 2, ' ');
}

void JsonWriter::BeginObject() {
  BeforeValue();
  out_ += '{';
  ++depth_;
  need_comma_ = false;
}

void JsonWriter::EndObject() {
  FGPAR_CHECK(depth_ > 0 && !pending_key_);
  --depth_;
  if (need_comma_) {  // object had at least one member
    out_ += '\n';
    Indent();
  }
  out_ += '}';
  need_comma_ = true;
}

void JsonWriter::BeginArray() {
  BeforeValue();
  out_ += '[';
  ++depth_;
  need_comma_ = false;
}

void JsonWriter::EndArray() {
  FGPAR_CHECK(depth_ > 0 && !pending_key_);
  --depth_;
  if (need_comma_) {
    out_ += '\n';
    Indent();
  }
  out_ += ']';
  need_comma_ = true;
}

void JsonWriter::Key(std::string_view key) {
  FGPAR_CHECK(!pending_key_);
  String(key);
  out_ += ": ";
  need_comma_ = false;
  pending_key_ = true;
}

void JsonWriter::String(std::string_view value) {
  BeforeValue();
  out_ += '"';
  for (const char c : value) {
    switch (c) {
      case '"': out_ += "\\\""; break;
      case '\\': out_ += "\\\\"; break;
      case '\n': out_ += "\\n"; break;
      case '\r': out_ += "\\r"; break;
      case '\t': out_ += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out_ += buf;
        } else {
          out_ += c;
        }
    }
  }
  out_ += '"';
  need_comma_ = true;
}

void JsonWriter::Int(std::int64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
  need_comma_ = true;
}

void JsonWriter::UInt(std::uint64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
  need_comma_ = true;
}

void JsonWriter::Double(double value) {
  BeforeValue();
  if (!std::isfinite(value)) {
    out_ += "null";
  } else {
    char buf[64];
    const auto result = std::to_chars(buf, buf + sizeof(buf), value);
    FGPAR_CHECK(result.ec == std::errc());
    out_.append(buf, result.ptr);
  }
  need_comma_ = true;
}

void JsonWriter::Bool(bool value) {
  BeforeValue();
  out_ += value ? "true" : "false";
  need_comma_ = true;
}

std::string JsonWriter::Take() {
  FGPAR_CHECK_MSG(depth_ == 0 && !pending_key_,
                  "JsonWriter::Take with unterminated containers");
  out_ += '\n';
  std::string result = std::move(out_);
  out_.clear();
  need_comma_ = false;
  return result;
}

// ---------------------------------------------------------------------------
// Parsing

bool JsonValue::AsBool() const {
  FGPAR_CHECK_MSG(kind_ == Kind::kBool, "JSON value is not a boolean");
  return bool_;
}

double JsonValue::AsDouble() const {
  FGPAR_CHECK_MSG(kind_ == Kind::kNumber, "JSON value is not a number");
  return number_;
}

std::int64_t JsonValue::AsI64() const {
  FGPAR_CHECK_MSG(kind_ == Kind::kNumber, "JSON value is not a number");
  std::int64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(text_.data(), text_.data() + text_.size(), value);
  FGPAR_CHECK_MSG(ec == std::errc() && ptr == text_.data() + text_.size(),
                  "JSON number '" + text_ + "' is not an integer");
  return value;
}

std::uint64_t JsonValue::AsU64() const {
  FGPAR_CHECK_MSG(kind_ == Kind::kNumber, "JSON value is not a number");
  std::uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(text_.data(), text_.data() + text_.size(), value);
  FGPAR_CHECK_MSG(ec == std::errc() && ptr == text_.data() + text_.size(),
                  "JSON number '" + text_ + "' is not an unsigned integer");
  return value;
}

const std::string& JsonValue::AsString() const {
  FGPAR_CHECK_MSG(kind_ == Kind::kString, "JSON value is not a string");
  return text_;
}

const std::vector<JsonValue>& JsonValue::AsArray() const {
  FGPAR_CHECK_MSG(kind_ == Kind::kArray, "JSON value is not an array");
  return array_;
}

const std::map<std::string, JsonValue>& JsonValue::AsObject() const {
  FGPAR_CHECK_MSG(kind_ == Kind::kObject, "JSON value is not an object");
  return object_;
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  FGPAR_CHECK_MSG(kind_ == Kind::kObject, "JSON value is not an object");
  const auto it = object_.find(key);
  return it == object_.end() ? nullptr : &it->second;
}

const JsonValue& JsonValue::Get(const std::string& key) const {
  const JsonValue* value = Find(key);
  FGPAR_CHECK_MSG(value != nullptr, "JSON object has no member '" + key + "'");
  return *value;
}

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue Parse() {
    JsonValue value = ParseValue(0);
    SkipWhitespace();
    Expect(pos_ == text_.size(), "trailing characters after JSON document");
    return value;
  }

 private:
  // Deep enough for any artifact/manifest, shallow enough that malicious
  // nesting cannot overflow the stack.
  static constexpr int kMaxDepth = 64;

  [[noreturn]] void Fail(const std::string& message) const {
    throw Error("JSON parse error at offset " + std::to_string(pos_) + ": " +
                message);
  }
  void Expect(bool ok, const char* message) const {
    if (!ok) {
      Fail(message);
    }
  }

  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  bool Consume(char c) {
    if (Peek() == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') {
        return;
      }
      ++pos_;
    }
  }
  bool ConsumeLiteral(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) == literal) {
      pos_ += literal.size();
      return true;
    }
    return false;
  }

  JsonValue ParseValue(int depth) {
    Expect(depth < kMaxDepth, "nesting too deep");
    SkipWhitespace();
    Expect(pos_ < text_.size(), "unexpected end of input");
    JsonValue value;
    const char c = Peek();
    if (c == '{') {
      ++pos_;
      value.kind_ = JsonValue::Kind::kObject;
      SkipWhitespace();
      if (!Consume('}')) {
        do {
          SkipWhitespace();
          Expect(Peek() == '"', "expected object key string");
          const std::string key = ParseString();
          SkipWhitespace();
          Expect(Consume(':'), "expected ':' after object key");
          value.object_[key] = ParseValue(depth + 1);
          SkipWhitespace();
        } while (Consume(','));
        Expect(Consume('}'), "expected ',' or '}' in object");
      }
    } else if (c == '[') {
      ++pos_;
      value.kind_ = JsonValue::Kind::kArray;
      SkipWhitespace();
      if (!Consume(']')) {
        do {
          value.array_.push_back(ParseValue(depth + 1));
          SkipWhitespace();
        } while (Consume(','));
        Expect(Consume(']'), "expected ',' or ']' in array");
      }
    } else if (c == '"') {
      value.kind_ = JsonValue::Kind::kString;
      value.text_ = ParseString();
    } else if (ConsumeLiteral("true")) {
      value.kind_ = JsonValue::Kind::kBool;
      value.bool_ = true;
    } else if (ConsumeLiteral("false")) {
      value.kind_ = JsonValue::Kind::kBool;
      value.bool_ = false;
    } else if (ConsumeLiteral("null")) {
      value.kind_ = JsonValue::Kind::kNull;
    } else {
      value.kind_ = JsonValue::Kind::kNumber;
      const std::size_t start = pos_;
      if (Peek() == '-') {
        ++pos_;
      }
      while (std::isdigit(static_cast<unsigned char>(Peek())) != 0 ||
             Peek() == '.' || Peek() == 'e' || Peek() == 'E' || Peek() == '+' ||
             Peek() == '-') {
        ++pos_;
      }
      Expect(pos_ > start, "expected a JSON value");
      value.text_ = std::string(text_.substr(start, pos_ - start));
      const auto [ptr, ec] = std::from_chars(
          value.text_.data(), value.text_.data() + value.text_.size(),
          value.number_);
      if (ec != std::errc() ||
          ptr != value.text_.data() + value.text_.size()) {
        Fail("malformed number '" + value.text_ + "'");
      }
    }
    return value;
  }

  std::string ParseString() {
    Expect(Consume('"'), "expected '\"'");
    std::string out;
    for (;;) {
      Expect(pos_ < text_.size(), "unterminated string");
      const char c = text_[pos_++];
      if (c == '"') {
        return out;
      }
      if (c != '\\') {
        // JSON forbids raw control bytes inside strings; the writer always
        // escapes them.  Rejecting here keeps adversarial input from
        // smuggling unescaped framing bytes through round-trips.
        Expect(static_cast<unsigned char>(c) >= 0x20,
               "unescaped control character in string");
        out.push_back(c);
        continue;
      }
      Expect(pos_ < text_.size(), "unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'u': {
          Expect(pos_ + 4 <= text_.size(), "truncated \\u escape");
          unsigned code = 0;
          const auto [ptr, ec] =
              std::from_chars(text_.data() + pos_, text_.data() + pos_ + 4,
                              code, 16);
          Expect(ec == std::errc() && ptr == text_.data() + pos_ + 4,
                 "malformed \\u escape");
          pos_ += 4;
          // The writer only emits \u00xx for control bytes; reject the
          // rest rather than mis-decode multi-byte code points.
          Expect(code < 0x80, "unsupported \\u escape beyond U+007F");
          out.push_back(static_cast<char>(code));
          break;
        }
        default:
          Fail(std::string("unknown escape '\\") + e + "'");
      }
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

JsonValue ParseJson(std::string_view text) { return JsonParser(text).Parse(); }

}  // namespace fgpar
