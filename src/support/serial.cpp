#include "support/serial.hpp"

#include <bit>
#include <cstring>

#include "support/error.hpp"

namespace fgpar {

void ByteWriter::U8(std::uint8_t value) { bytes_.push_back(value); }

void ByteWriter::U32(std::uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    bytes_.push_back(static_cast<std::uint8_t>(value >> (8 * i)));
  }
}

void ByteWriter::U64(std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    bytes_.push_back(static_cast<std::uint8_t>(value >> (8 * i)));
  }
}

void ByteWriter::I64(std::int64_t value) {
  U64(static_cast<std::uint64_t>(value));
}

void ByteWriter::F64(double value) { U64(std::bit_cast<std::uint64_t>(value)); }

void ByteWriter::Bool(bool value) { U8(value ? 1 : 0); }

void ByteWriter::Str(std::string_view value) {
  U64(value.size());
  bytes_.insert(bytes_.end(), value.begin(), value.end());
}

void ByteWriter::U64Vec(const std::vector<std::uint64_t>& values) {
  U64(values.size());
  for (std::uint64_t v : values) {
    U64(v);
  }
}

const std::uint8_t* ByteReader::Need(std::size_t n) {
  FGPAR_CHECK_MSG(pos_ + n <= size_,
                  "truncated byte stream: need " + std::to_string(n) +
                      " bytes at offset " + std::to_string(pos_) + " of " +
                      std::to_string(size_));
  const std::uint8_t* p = data_ + pos_;
  pos_ += n;
  return p;
}

std::uint8_t ByteReader::U8() { return *Need(1); }

std::uint32_t ByteReader::U32() {
  const std::uint8_t* p = Need(4);
  std::uint32_t value = 0;
  for (int i = 0; i < 4; ++i) {
    value |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  }
  return value;
}

std::uint64_t ByteReader::U64() {
  const std::uint8_t* p = Need(8);
  std::uint64_t value = 0;
  for (int i = 0; i < 8; ++i) {
    value |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  }
  return value;
}

std::int64_t ByteReader::I64() { return static_cast<std::int64_t>(U64()); }

double ByteReader::F64() { return std::bit_cast<double>(U64()); }

bool ByteReader::Bool() {
  const std::uint8_t v = U8();
  FGPAR_CHECK_MSG(v <= 1, "corrupt byte stream: bool byte is " + std::to_string(v));
  return v != 0;
}

std::string ByteReader::Str() {
  const std::uint64_t n = U64();
  FGPAR_CHECK_MSG(n <= remaining(), "truncated byte stream: string of " +
                                        std::to_string(n) + " bytes with " +
                                        std::to_string(remaining()) + " left");
  const std::uint8_t* p = Need(static_cast<std::size_t>(n));
  return std::string(reinterpret_cast<const char*>(p),
                     static_cast<std::size_t>(n));
}

std::vector<std::uint64_t> ByteReader::U64Vec() {
  const std::uint64_t n = U64();
  FGPAR_CHECK_MSG(n * 8 <= remaining(),
                  "truncated byte stream: vector of " + std::to_string(n) +
                      " words with " + std::to_string(remaining()) +
                      " bytes left");
  std::vector<std::uint64_t> values;
  values.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    values.push_back(U64());
  }
  return values;
}

void ByteReader::CheckFullyConsumed() const {
  FGPAR_CHECK_MSG(pos_ == size_, "byte stream has " +
                                     std::to_string(size_ - pos_) +
                                     " trailing bytes");
}

namespace {
constexpr char kHexDigits[] = "0123456789abcdef";

int HexNibble(char c) {
  if (c >= '0' && c <= '9') {
    return c - '0';
  }
  if (c >= 'a' && c <= 'f') {
    return c - 'a' + 10;
  }
  if (c >= 'A' && c <= 'F') {
    return c - 'A' + 10;
  }
  return -1;
}

template <typename Seq>
std::string HexEncodeSeq(const Seq& bytes) {
  std::string out;
  out.reserve(bytes.size() * 2);
  for (const auto b : bytes) {
    const std::uint8_t v = static_cast<std::uint8_t>(b);
    out.push_back(kHexDigits[v >> 4]);
    out.push_back(kHexDigits[v & 0xF]);
  }
  return out;
}
}  // namespace

std::string HexEncode(const std::vector<std::uint8_t>& bytes) {
  return HexEncodeSeq(bytes);
}

std::string HexEncode(std::string_view bytes) { return HexEncodeSeq(bytes); }

std::vector<std::uint8_t> HexDecode(std::string_view hex) {
  FGPAR_CHECK_MSG(hex.size() % 2 == 0,
                  "hex string has odd length " + std::to_string(hex.size()));
  std::vector<std::uint8_t> bytes;
  bytes.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    const int hi = HexNibble(hex[i]);
    const int lo = HexNibble(hex[i + 1]);
    FGPAR_CHECK_MSG(hi >= 0 && lo >= 0,
                    "invalid hex byte at offset " + std::to_string(i));
    bytes.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
  }
  return bytes;
}

std::string HexDecodeToString(std::string_view hex) {
  const std::vector<std::uint8_t> bytes = HexDecode(hex);
  return std::string(bytes.begin(), bytes.end());
}

std::uint64_t Fnv1a64(const void* data, std::size_t size, std::uint64_t seed) {
  std::uint64_t hash = seed;
  const auto* p = static_cast<const std::uint8_t*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= p[i];
    hash *= 0x100000001b3ull;
  }
  return hash;
}

std::uint64_t Fnv1a64(std::string_view text, std::uint64_t seed) {
  return Fnv1a64(text.data(), text.size(), seed);
}

}  // namespace fgpar
