// Build identity shared by every fgpar binary.
//
// Two facts answer "which build produced this output?":
//
//  * BuildVersionString() — a human-readable one-liner ("fgpar 0.6.0
//    (GNU 13.2.0, Release, c++20)") printed by every tool's --version and
//    stamped into artifact headers;
//  * BuildConfigHash() — an FNV-1a fingerprint over the same fields, so
//    machine consumers can compare build identities without parsing the
//    string.
//
// Both derive from compile-time facts (version constant, compiler id,
// build type) and therefore vary across hosts and configurations — they
// are host-class information and must stay out of the byte-deterministic
// portion of any artifact, exactly like wall-clock fields (see
// BenchArtifact::ToJson and HostFieldsSuppressed()).
#pragma once

#include <cstdint>
#include <string>

namespace fgpar {

/// The release version alone ("0.6.0").
const std::string& BuildVersion();

/// Full identity line: "fgpar <version> (<compiler>, <build-type>, c++20)".
const std::string& BuildVersionString();

/// FNV-1a over the version-string fields; stable for a given build
/// configuration, different across versions/compilers/build types.
std::uint64_t BuildConfigHash();

/// BuildConfigHash as 16 lowercase hex digits.
std::string BuildConfigHashHex();

}  // namespace fgpar
