#include "native/backend.hpp"

namespace fgpar::native {

std::unique_ptr<compiler::Backend> MakeNativeBackend(
    std::size_t ring_capacity) {
  return std::make_unique<NativeBackend>(ring_capacity);
}

}  // namespace fgpar::native
