// Executes a target-independent LoweredProgram on real host threads.
//
// The sequential form runs on the calling thread.  The parallel form
// spawns one pinned std::thread per core and maps the plan's enq/deq items
// onto SPSC rings (ring.hpp), one ring per (sender, receiver, register
// class) triple — exactly the sim's queue identity, and single-producer/
// single-consumer by construction.  The run protocol mirrors the sim
// lowering minus the parts threads make redundant (function-pointer
// dispatch and TERMINATE):
//
//   primary (core 0): push each secondary's arguments (plan.comm.args
//     order) -> run its per-iteration plan items over the full trip ->
//     pop live-outs (plan.comm.live_outs order) -> pop one completion
//     token per secondary -> run the epilogue;
//   secondary c: pop arguments -> run its plan items -> push its
//     live-outs -> push completion token 1 on the (c, 0, int) ring.
//
// Timing is wall-clock only — it depends on the host scheduler and memory
// system and is deliberately excluded from deterministic artifacts
// (INTERNALS.md §14).
#pragma once

#include <cstdint>
#include <vector>

#include "compiler/lowered.hpp"
#include "native/ring.hpp"

namespace fgpar::native {

struct NativeRunStats {
  double wall_seconds = 0.0;
  std::uint64_t iterations = 0;

  // Parallel-form only (all zero for the sequential form).
  std::uint64_t queue_transfers = 0;  // values dequeued across all rings
  int rings_used = 0;                 // rings that carried at least one value
  int cores = 1;
};

/// Runs `lowered` over `memory` in place.  `params_raw` is the raw
/// parameter image (codegen.hpp RawParams).  Worker failures (bounds trap,
/// divide trap) abort the run cooperatively and rethrow on the caller.
NativeRunStats ExecuteNative(const compiler::LoweredProgram& lowered,
                             const std::vector<std::uint64_t>& params_raw,
                             std::vector<std::uint64_t>& memory,
                             std::size_t ring_capacity =
                                 SpscRing::kDefaultCapacity);

}  // namespace fgpar::native
