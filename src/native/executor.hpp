// Executes a target-independent LoweredProgram on real host threads.
//
// The sequential form runs on the calling thread.  The parallel form
// spawns one pinned std::thread per core and maps the plan's enq/deq items
// onto SPSC rings (ring.hpp), one ring per (sender, receiver, register
// class) triple — exactly the sim's queue identity, and single-producer/
// single-consumer by construction.  The run protocol mirrors the sim
// lowering minus the parts threads make redundant (function-pointer
// dispatch and TERMINATE):
//
//   primary (core 0): push each secondary's arguments (plan.comm.args
//     order) -> run its per-iteration plan items over the full trip ->
//     pop live-outs (plan.comm.live_outs order) -> pop one completion
//     token per secondary -> run the epilogue;
//   secondary c: pop arguments -> run its plan items -> push its
//     live-outs -> push completion token 1 on the (c, 0, int) ring.
//
// Timing is wall-clock only — it depends on the host scheduler and memory
// system and is deliberately excluded from deterministic artifacts
// (INTERNALS.md §14).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

#include "compiler/lowered.hpp"
#include "native/ring.hpp"

namespace fgpar::native {

struct NativeRunStats {
  double wall_seconds = 0.0;
  std::uint64_t iterations = 0;

  // Parallel-form only (all zero for the sequential form).
  std::uint64_t queue_transfers = 0;  // values dequeued across all rings
  int rings_used = 0;                 // rings that carried at least one value
  int cores = 1;
};

/// Knobs for the parallel form (ignored by the sequential form).
struct NativeExecOptions {
  std::size_t ring_capacity = SpscRing::kDefaultCapacity;

  /// Watchdog deadline per blocking ring wait, in milliseconds.  0 waits
  /// forever (the historical behaviour).  With a deadline armed, a worker
  /// whose peer wedges without dying — so the abort flag never flips —
  /// throws RingStallError instead of hanging the run; the executor then
  /// aborts every other worker cooperatively, joins all threads, and
  /// rethrows the stall as the run's structured error.
  std::uint64_t ring_wait_timeout_ms = 0;

  /// Test-only fault injector, called on every worker thread right after
  /// it starts (before any ring traffic), with the worker's core id and
  /// the shared abort flag.  A hook that blocks until the flag flips
  /// simulates a wedged-but-alive worker; the watchdog test uses this to
  /// prove a stall aborts cleanly within the deadline.
  std::function<void(int core, const std::atomic<bool>& aborted)> wedge_hook;
};

/// Runs `lowered` over `memory` in place.  `params_raw` is the raw
/// parameter image (codegen.hpp RawParams).  Worker failures (bounds trap,
/// divide trap) abort the run cooperatively and rethrow on the caller; a
/// ring wait exceeding options.ring_wait_timeout_ms rethrows as
/// RingStallError.
NativeRunStats ExecuteNative(const compiler::LoweredProgram& lowered,
                             const std::vector<std::uint64_t>& params_raw,
                             std::vector<std::uint64_t>& memory,
                             const NativeExecOptions& options);

/// Convenience overload keeping the original capacity-only signature.
NativeRunStats ExecuteNative(const compiler::LoweredProgram& lowered,
                             const std::vector<std::uint64_t>& params_raw,
                             std::vector<std::uint64_t>& memory,
                             std::size_t ring_capacity =
                                 SpscRing::kDefaultCapacity);

}  // namespace fgpar::native
