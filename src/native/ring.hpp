// Lock-free single-producer/single-consumer ring buffer — the native
// backend's stand-in for the paper's dedicated hardware queue
// (sim/hw_queue.hpp).  Semantics match the hardware contract:
//
//  * fixed capacity (20 slots by default, the paper's queue size);
//  * Push blocks while all slots are occupied, Pop blocks until a value is
//    available (the core "stalls and retries");
//  * strict FIFO order;
//  * raw 64-bit payloads — the int/fp distinction lives in the ring
//    *identity*, one ring per (sender, receiver, register class) triple.
//
// Memory ordering: head_ and tail_ are monotonic position counters, each
// written by exactly one thread.  The producer publishes a slot with a
// release store to tail_ after writing the slot; the consumer's acquire
// load of tail_ therefore observes the slot contents (and, transitively,
// everything the producer did before the Push — this is the happens-before
// edge the executor relies on for queue-carried values).  Symmetrically the
// consumer frees a slot with a release store to head_, and the producer's
// acquire load of head_ guarantees the consumer is done reading before the
// slot is overwritten.  Counters sit on separate cache lines so the two
// sides don't false-share.
//
// Blocking waits spin briefly, then yield: the harness must stay live on a
// single-CPU host, where a pure spin would starve the peer thread.
//
// Two independent escape hatches keep a blocking wait from becoming a
// permanent hang:
//
//  * SetAbort installs a cooperative flag the executor flips when any peer
//    worker throws — the wait aborts on the next poll;
//  * SetWaitTimeout arms a deadline — a wait that exceeds it throws
//    RingStallError, which carries the stalled operation and the time
//    waited, so the executor can surface "which side wedged" structurally
//    instead of hanging the whole process behind one dead peer.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "support/error.hpp"

namespace fgpar::native {

/// A blocking Push/Pop exceeded the armed wait deadline: the peer side is
/// wedged or dead without having tripped the abort flag.  Structured so the
/// executor (and tests) can distinguish a watchdog abort from a worker
/// failure.
class RingStallError : public Error {
 public:
  RingStallError(const char* op, std::uint64_t waited_ms)
      : Error(std::string("SPSC ") + op + " stalled for " +
              std::to_string(waited_ms) +
              " ms: peer worker is wedged or dead"),
        op_(op),
        waited_ms_(waited_ms) {}

  /// "push" (ring stayed full) or "pop" (ring stayed empty).
  const char* op() const { return op_; }
  /// Milliseconds the operation waited before giving up.
  std::uint64_t waited_ms() const { return waited_ms_; }

 private:
  const char* op_;
  std::uint64_t waited_ms_;
};

class SpscRing {
 public:
  static constexpr std::size_t kDefaultCapacity = 20;

  explicit SpscRing(std::size_t capacity = kDefaultCapacity)
      : capacity_(capacity), slots_(capacity) {
    FGPAR_CHECK_MSG(capacity > 0, "SPSC ring needs at least one slot");
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  /// Installs a cooperative abort flag consulted while a blocking Push/Pop
  /// waits; once it reads true the wait throws instead of spinning forever
  /// (a peer worker died and will never drain/fill the ring).
  void SetAbort(const std::atomic<bool>* abort) { abort_ = abort; }

  /// Arms a per-operation wait deadline: a blocking Push/Pop that waits
  /// longer than `timeout_ms` throws RingStallError.  0 (the default)
  /// waits forever.  The clock starts only once an operation actually
  /// blocks past its spin budget, so the deadline never taxes the fast
  /// path.
  void SetWaitTimeout(std::uint64_t timeout_ms) { timeout_ms_ = timeout_ms; }

  /// Blocking enqueue: waits while the ring is full.
  void Push(std::uint64_t value) {
    const std::uint64_t t = tail_.load(std::memory_order_relaxed);
    WaitState wait;
    while (t - head_.load(std::memory_order_acquire) >= capacity_) {
      Wait(wait, "push");
    }
    slots_[t % capacity_] = value;
    tail_.store(t + 1, std::memory_order_release);
  }

  /// Blocking dequeue: waits until a value is available.
  std::uint64_t Pop() {
    const std::uint64_t h = head_.load(std::memory_order_relaxed);
    WaitState wait;
    while (tail_.load(std::memory_order_acquire) == h) {
      Wait(wait, "pop");
    }
    const std::uint64_t value = slots_[h % capacity_];
    head_.store(h + 1, std::memory_order_release);
    return value;
  }

  /// Non-blocking enqueue; false if the ring is full.
  bool TryPush(std::uint64_t value) {
    const std::uint64_t t = tail_.load(std::memory_order_relaxed);
    if (t - head_.load(std::memory_order_acquire) >= capacity_) {
      return false;
    }
    slots_[t % capacity_] = value;
    tail_.store(t + 1, std::memory_order_release);
    return true;
  }

  /// Non-blocking dequeue; false if the ring is empty.
  bool TryPop(std::uint64_t& value) {
    const std::uint64_t h = head_.load(std::memory_order_relaxed);
    if (tail_.load(std::memory_order_acquire) == h) {
      return false;
    }
    value = slots_[h % capacity_];
    head_.store(h + 1, std::memory_order_release);
    return true;
  }

  std::size_t capacity() const { return capacity_; }

  /// Approximate occupancy (exact only when both sides are quiescent).
  std::size_t size() const {
    const std::uint64_t h = head_.load(std::memory_order_acquire);
    const std::uint64_t t = tail_.load(std::memory_order_acquire);
    return static_cast<std::size_t>(t - h);
  }

  /// Values fully transferred (dequeued) over the ring's lifetime.
  std::uint64_t total_transfers() const {
    return head_.load(std::memory_order_acquire);
  }

 private:
  /// Per-operation wait bookkeeping: the spin count and the lazily-armed
  /// deadline clock (started when the op first yields, not when it starts).
  struct WaitState {
    unsigned spins = 0;
    std::chrono::steady_clock::time_point blocked_since{};
  };

  void Wait(WaitState& wait, const char* what) const {
    if (abort_ != nullptr && abort_->load(std::memory_order_relaxed)) {
      throw Error(std::string("SPSC ") + what +
                  " aborted: peer worker failed");
    }
    if (++wait.spins < 64) {
#if defined(__x86_64__) || defined(__i386__)
      __builtin_ia32_pause();
#endif
      return;
    }
    if (wait.spins == 64) {
      wait.blocked_since = std::chrono::steady_clock::now();
    } else if (timeout_ms_ > 0) {
      const auto waited = std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - wait.blocked_since);
      if (static_cast<std::uint64_t>(waited.count()) >= timeout_ms_) {
        throw RingStallError(what,
                             static_cast<std::uint64_t>(waited.count()));
      }
    }
    // Past the spin budget the peer is likely descheduled (or this is a
    // one-CPU host); hand the processor over instead of burning it.
    std::this_thread::yield();
  }

  const std::size_t capacity_;
  std::vector<std::uint64_t> slots_;
  const std::atomic<bool>* abort_ = nullptr;
  std::uint64_t timeout_ms_ = 0;  // 0 = wait forever

  /// Consumer position (values popped); written only by the consumer.
  alignas(64) std::atomic<std::uint64_t> head_{0};
  /// Producer position (values pushed); written only by the producer.
  alignas(64) std::atomic<std::uint64_t> tail_{0};
};

}  // namespace fgpar::native
