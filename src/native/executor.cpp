#include "native/executor.hpp"

#include <atomic>
#include <chrono>
#include <exception>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <tuple>
#include <utility>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

#include "native/codegen.hpp"
#include "support/error.hpp"

namespace fgpar::native {
namespace {

std::int64_t AsI(std::uint64_t raw) { return static_cast<std::int64_t>(raw); }

/// One ring per (sender, receiver, register class) directed channel — the
/// sim's queue identity, and SPSC by construction: each channel has exactly
/// one sending and one receiving core.
struct RingKey {
  int src;
  int dst;
  bool fp;
  bool operator<(const RingKey& o) const {
    return std::tie(src, dst, fp) < std::tie(o.src, o.dst, o.fp);
  }
};

class RingMap {
 public:
  RingMap(std::size_t capacity, std::uint64_t wait_timeout_ms,
          const std::atomic<bool>* abort)
      : capacity_(capacity), wait_timeout_ms_(wait_timeout_ms),
        abort_(abort) {}

  /// Creates on first use; must only be called during single-threaded
  /// setup (workers capture resolved pointers, never the map).
  SpscRing* Get(int src, int dst, bool fp) {
    std::unique_ptr<SpscRing>& slot = rings_[RingKey{src, dst, fp}];
    if (slot == nullptr) {
      slot = std::make_unique<SpscRing>(capacity_);
      slot->SetAbort(abort_);
      slot->SetWaitTimeout(wait_timeout_ms_);
    }
    return slot.get();
  }

  std::uint64_t TotalTransfers() const {
    std::uint64_t total = 0;
    for (const auto& [key, ring] : rings_) {
      total += ring->total_transfers();
    }
    return total;
  }

  int RingsUsed() const {
    int used = 0;
    for (const auto& [key, ring] : rings_) {
      used += ring->total_transfers() > 0 ? 1 : 0;
    }
    return used;
  }

 private:
  std::map<RingKey, std::unique_ptr<SpscRing>> rings_;
  const std::size_t capacity_;
  const std::uint64_t wait_timeout_ms_;
  const std::atomic<bool>* abort_;
};

/// Compiles one core's per-iteration plan items, resolving enq/deq against
/// the ring map (mirrors lower.cpp EmitPlanItems).
StmtFn CompileItems(const Codegen& cg,
                    const std::vector<compiler::PlanItem>& items,
                    const compiler::CommPlan& comm, RingMap& rings) {
  std::vector<StmtFn> fns;
  fns.reserve(items.size());
  for (const compiler::PlanItem& item : items) {
    switch (item.kind) {
      case compiler::PlanItem::Kind::kStmt:
        fns.push_back(cg.CompileStmt(*item.stmt));
        break;
      case compiler::PlanItem::Kind::kIf: {
        const ExprFn cond = cg.CompileExpr(item.stmt->value);
        const StmtFn then_fn = CompileItems(cg, item.then_items, comm, rings);
        const StmtFn else_fn = CompileItems(cg, item.else_items, comm, rings);
        fns.push_back([cond, then_fn, else_fn](Frame& f) {
          if (AsI(cond(f)) != 0) {
            then_fn(f);
          } else {
            else_fn(f);
          }
        });
        break;
      }
      case compiler::PlanItem::Kind::kEnq: {
        const compiler::Transfer& t =
            comm.transfers[static_cast<std::size_t>(item.transfer)];
        SpscRing* ring =
            rings.Get(t.src_core, t.dst_core, t.type == ir::ScalarType::kF64);
        const std::size_t temp = static_cast<std::size_t>(t.temp);
        fns.push_back([ring, temp](Frame& f) { ring->Push(f.temps[temp]); });
        break;
      }
      case compiler::PlanItem::Kind::kDeq: {
        const compiler::Transfer& t =
            comm.transfers[static_cast<std::size_t>(item.transfer)];
        SpscRing* ring =
            rings.Get(t.src_core, t.dst_core, t.type == ir::ScalarType::kF64);
        const std::size_t temp = static_cast<std::size_t>(t.temp);
        fns.push_back([ring, temp](Frame& f) { f.temps[temp] = ring->Pop(); });
        break;
      }
    }
  }
  return [fns](Frame& f) {
    for (const StmtFn& fn : fns) {
      fn(f);
    }
  };
}

void PinThread(std::thread& thread, int core) {
#if defined(__linux__)
  const unsigned cpus = std::max(1u, std::thread::hardware_concurrency());
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<unsigned>(core) % cpus, &set);
  // Best-effort: affinity can be restricted (containers); a failure just
  // leaves the worker floating.
  (void)pthread_setaffinity_np(thread.native_handle(), sizeof(set), &set);
#else
  (void)thread;
  (void)core;
#endif
}

NativeRunStats RunSequential(const compiler::LoweredProgram& lowered,
                             const std::vector<std::uint64_t>& params_raw,
                             std::vector<std::uint64_t>& memory) {
  const ir::Kernel& kernel = *lowered.kernel;
  const ir::Loop& loop = kernel.loop();
  FGPAR_CHECK_MSG(loop.lower != ir::kNoExpr && loop.upper != ir::kNoExpr,
                  "kernel has no loop bounds");
  const Codegen cg(kernel, *lowered.layout);
  const ExprFn lower_fn = cg.CompileExpr(loop.lower);
  const ExprFn upper_fn = cg.CompileExpr(loop.upper);
  const StmtFn body = cg.CompileStmtList(loop.body);
  const StmtFn epilogue = cg.CompileStmtList(kernel.epilogue());

  Frame f;
  f.memory = memory.data();
  f.memory_size = memory.size();
  f.params = params_raw.data();
  f.temps = InitialTemps(kernel);

  NativeRunStats stats;
  const auto start = std::chrono::steady_clock::now();
  const std::int64_t lower = AsI(lower_fn(f));
  const std::int64_t upper = AsI(upper_fn(f));
  for (f.iv = lower; f.iv < upper; ++f.iv) {
    body(f);
    ++stats.iterations;
  }
  epilogue(f);
  const auto end = std::chrono::steady_clock::now();
  stats.wall_seconds = std::chrono::duration<double>(end - start).count();
  return stats;
}

NativeRunStats RunParallel(const compiler::LoweredProgram& lowered,
                           const std::vector<std::uint64_t>& params_raw,
                           std::vector<std::uint64_t>& memory,
                           const NativeExecOptions& options) {
  const ir::Kernel& kernel = *lowered.kernel;
  const compiler::ProgramPlan& plan = *lowered.plan;
  const compiler::CommPlan& comm = plan.comm;
  const int cores = static_cast<int>(plan.cores.size());
  const ir::Loop& loop = kernel.loop();
  FGPAR_CHECK_MSG(loop.lower != ir::kNoExpr && loop.upper != ir::kNoExpr,
                  "kernel has no loop bounds");

  std::atomic<bool> aborted{false};
  RingMap rings(options.ring_capacity, options.ring_wait_timeout_ms,
                &aborted);
  const Codegen cg(kernel, *lowered.layout);
  const ExprFn lower_fn = cg.CompileExpr(loop.lower);
  const ExprFn upper_fn = cg.CompileExpr(loop.upper);
  const StmtFn epilogue = cg.CompileStmtList(kernel.epilogue());
  const std::vector<std::uint64_t> initial_temps = InitialTemps(kernel);

  // ---- single-threaded setup: resolve every ring and closure ----
  struct ArgOp {
    SpscRing* ring;
    ir::SymbolId sym;
  };
  struct TempOp {
    SpscRing* ring;
    std::size_t temp;
  };
  struct CoreProgram {
    StmtFn body;
    std::vector<ArgOp> arg_pops;        // secondaries, comm.args order
    std::vector<TempOp> liveout_pushes; // secondaries, comm.live_outs order
    SpscRing* token_push = nullptr;     // secondaries: (c, 0, int)
  };

  std::vector<CoreProgram> programs(static_cast<std::size_t>(cores));
  std::vector<ArgOp> arg_pushes;   // primary, dispatch order
  std::vector<TempOp> liveout_pops;  // primary, comm.live_outs order
  std::vector<SpscRing*> token_pops;

  for (int c = 1; c < cores; ++c) {
    const auto it = comm.args.find(c);
    if (it != comm.args.end()) {
      for (const ir::SymbolId sym : it->second) {
        const bool fp = kernel.symbol(sym).type == ir::ScalarType::kF64;
        SpscRing* ring = rings.Get(0, c, fp);
        arg_pushes.push_back({ring, sym});
        programs[static_cast<std::size_t>(c)].arg_pops.push_back({ring, sym});
      }
    }
  }
  for (int c = 0; c < cores; ++c) {
    programs[static_cast<std::size_t>(c)].body = CompileItems(
        cg, plan.cores[static_cast<std::size_t>(c)].body, comm, rings);
  }
  for (const compiler::LiveOut& lo : comm.live_outs) {
    const bool fp = lo.type == ir::ScalarType::kF64;
    SpscRing* ring = rings.Get(lo.src_core, 0, fp);
    const std::size_t temp = static_cast<std::size_t>(lo.temp);
    liveout_pops.push_back({ring, temp});
    programs[static_cast<std::size_t>(lo.src_core)].liveout_pushes.push_back(
        {ring, temp});
  }
  for (int c = 1; c < cores; ++c) {
    SpscRing* ring = rings.Get(c, 0, /*fp=*/false);
    programs[static_cast<std::size_t>(c)].token_push = ring;
    token_pops.push_back(ring);
  }

  std::exception_ptr first_error;
  std::mutex error_mutex;
  const auto worker = [&](int c) {
    try {
      if (options.wedge_hook) {
        options.wedge_hook(c, aborted);
      }
      Frame f;
      f.memory = memory.data();
      f.memory_size = memory.size();
      f.temps = initial_temps;
      // Each worker owns its parameter image; secondaries overwrite their
      // slots with the values received over the rings (same values — the
      // protocol is exercised for fidelity, not necessity).
      std::vector<std::uint64_t> local_params = params_raw;
      f.params = local_params.data();
      const CoreProgram& prog = programs[static_cast<std::size_t>(c)];
      if (c == 0) {
        for (const ArgOp& op : arg_pushes) {
          op.ring->Push(params_raw[static_cast<std::size_t>(op.sym)]);
        }
      } else {
        for (const ArgOp& op : prog.arg_pops) {
          local_params[static_cast<std::size_t>(op.sym)] = op.ring->Pop();
        }
      }
      const std::int64_t lower = AsI(lower_fn(f));
      const std::int64_t upper = AsI(upper_fn(f));
      for (f.iv = lower; f.iv < upper; ++f.iv) {
        prog.body(f);
      }
      if (c == 0) {
        for (const TempOp& op : liveout_pops) {
          f.temps[op.temp] = op.ring->Pop();
        }
        for (SpscRing* ring : token_pops) {
          (void)ring->Pop();
        }
        epilogue(f);
      } else {
        for (const TempOp& op : prog.liveout_pushes) {
          op.ring->Push(f.temps[op.temp]);
        }
        prog.token_push->Push(1);
      }
    } catch (...) {
      aborted.store(true, std::memory_order_relaxed);
      const std::lock_guard<std::mutex> lock(error_mutex);
      if (first_error == nullptr) {
        first_error = std::current_exception();
      }
    }
  };

  NativeRunStats stats;
  stats.cores = cores;
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(cores));
  for (int c = 0; c < cores; ++c) {
    threads.emplace_back(worker, c);
    PinThread(threads.back(), c);
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  const auto end = std::chrono::steady_clock::now();
  stats.wall_seconds = std::chrono::duration<double>(end - start).count();
  if (first_error != nullptr) {
    std::rethrow_exception(first_error);
  }

  // Iteration count for the record (bounds are pure param expressions).
  {
    Frame f;
    f.memory = memory.data();
    f.memory_size = memory.size();
    f.params = params_raw.data();
    f.temps = initial_temps;
    const std::int64_t lower = AsI(lower_fn(f));
    const std::int64_t upper = AsI(upper_fn(f));
    stats.iterations =
        upper > lower ? static_cast<std::uint64_t>(upper - lower) : 0;
  }
  stats.queue_transfers = rings.TotalTransfers();
  stats.rings_used = rings.RingsUsed();
  return stats;
}

}  // namespace

NativeRunStats ExecuteNative(const compiler::LoweredProgram& lowered,
                             const std::vector<std::uint64_t>& params_raw,
                             std::vector<std::uint64_t>& memory,
                             const NativeExecOptions& options) {
  FGPAR_CHECK_MSG(lowered.kernel != nullptr && lowered.layout != nullptr,
                  "native executor needs a kernel and layout");
  if (lowered.sequential()) {
    return RunSequential(lowered, params_raw, memory);
  }
  return RunParallel(lowered, params_raw, memory, options);
}

NativeRunStats ExecuteNative(const compiler::LoweredProgram& lowered,
                             const std::vector<std::uint64_t>& params_raw,
                             std::vector<std::uint64_t>& memory,
                             std::size_t ring_capacity) {
  NativeExecOptions options;
  options.ring_capacity = ring_capacity;
  return ExecuteNative(lowered, params_raw, memory, options);
}

}  // namespace fgpar::native
