// Host-closure codegen for the native backend.
//
// Compiles kernel IR fragments into std::function closures over a Frame.
// The emitted semantics mirror ir::Interpreter bit for bit — same wrapping
// integer arithmetic, same divide traps, same shift masking, same
// fmin/fmax, same bounds checks, same both-arms Select — so a native run's
// output memory can be byte-compared against the interpreter's golden
// image.  Any divergence here is a correctness bug, not a tolerance.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "ir/kernel.hpp"
#include "ir/layout.hpp"

namespace fgpar::native {

/// Per-worker execution state.  `memory` is the shared data image; `params`
/// and `temps` are worker-private (each core receives its arguments over
/// the rings and keeps its own temp slots, like the sim's per-core register
/// files).
struct Frame {
  std::uint64_t* memory = nullptr;
  std::size_t memory_size = 0;
  const std::uint64_t* params = nullptr;  // raw value per SymbolId
  std::int64_t iv = 0;
  std::vector<std::uint64_t> temps;
};

using ExprFn = std::function<std::uint64_t(Frame&)>;
using StmtFn = std::function<void(Frame&)>;

class Codegen {
 public:
  Codegen(const ir::Kernel& kernel, const ir::DataLayout& layout)
      : kernel_(kernel), layout_(layout) {}

  ExprFn CompileExpr(ir::ExprId id) const;
  StmtFn CompileStmt(const ir::Stmt& stmt) const;
  StmtFn CompileStmtList(const std::vector<ir::Stmt>& stmts) const;

 private:
  const ir::Kernel& kernel_;
  const ir::DataLayout& layout_;
};

/// Fresh temp slots for a worker: carried temps at their declared initial
/// value, plain temps at 0 (Interpreter's constructor rule).
std::vector<std::uint64_t> InitialTemps(const ir::Kernel& kernel);

/// Raw parameter image indexed by SymbolId (non-param slots stay 0).
std::vector<std::uint64_t> RawParams(const ir::Kernel& kernel,
                                     const ir::ParamEnv& params);

}  // namespace fgpar::native
