#include "native/codegen.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <string>

#include "support/error.hpp"

namespace fgpar::native {
namespace {

std::uint64_t RawF(double v) { return std::bit_cast<std::uint64_t>(v); }
double AsF(std::uint64_t raw) { return std::bit_cast<double>(raw); }
std::uint64_t RawI(std::int64_t v) { return static_cast<std::uint64_t>(v); }
std::int64_t AsI(std::uint64_t raw) { return static_cast<std::int64_t>(raw); }

}  // namespace

ExprFn Codegen::CompileExpr(ir::ExprId id) const {
  const ir::ExprNode& node = kernel_.expr(id);
  switch (node.kind) {
    case ir::ExprKind::kConstI: {
      const std::uint64_t v = RawI(node.const_i);
      return [v](Frame&) { return v; };
    }
    case ir::ExprKind::kConstF: {
      const std::uint64_t v = RawF(node.const_f);
      return [v](Frame&) { return v; };
    }
    case ir::ExprKind::kIvRef:
      return [](Frame& f) { return RawI(f.iv); };
    case ir::ExprKind::kParamRef: {
      const ir::SymbolId sym = node.sym;
      return [sym](Frame& f) {
        return f.params[static_cast<std::size_t>(sym)];
      };
    }
    case ir::ExprKind::kScalarRef: {
      const std::uint64_t addr = layout_.AddressOf(node.sym);
      return [addr](Frame& f) {
        FGPAR_CHECK(addr < f.memory_size);
        return f.memory[addr];
      };
    }
    case ir::ExprKind::kArrayRef: {
      const ExprFn index = CompileExpr(node.child[0]);
      const std::uint64_t base = layout_.AddressOf(node.sym);
      const std::int64_t size = kernel_.symbol(node.sym).array_size;
      const std::string name = kernel_.symbol(node.sym).name;
      return [index, base, size, name](Frame& f) {
        const std::int64_t i = AsI(index(f));
        FGPAR_CHECK_MSG(i >= 0 && i < size,
                        "array index out of bounds: " + name + "[" +
                            std::to_string(i) + "], size " +
                            std::to_string(size));
        const std::uint64_t addr = base + static_cast<std::uint64_t>(i);
        FGPAR_CHECK(addr < f.memory_size);
        return f.memory[addr];
      };
    }
    case ir::ExprKind::kTempRef: {
      const std::size_t t = static_cast<std::size_t>(node.temp);
      return [t](Frame& f) { return f.temps[t]; };
    }
    case ir::ExprKind::kUnary: {
      const ExprFn v = CompileExpr(node.child[0]);
      const bool is_int = node.type == ir::ScalarType::kI64;
      switch (node.un) {
        case ir::UnOp::kNeg:
          return is_int
                     ? ExprFn([v](Frame& f) { return RawI(-AsI(v(f))); })
                     : ExprFn([v](Frame& f) { return RawF(-AsF(v(f))); });
        case ir::UnOp::kAbs:
          return is_int ? ExprFn([v](Frame& f) {
            const std::int64_t x = AsI(v(f));
            return RawI(x < 0 ? -x : x);
          })
                        : ExprFn([v](Frame& f) {
                            return RawF(std::fabs(AsF(v(f))));
                          });
        case ir::UnOp::kSqrt:
          return [v](Frame& f) { return RawF(std::sqrt(AsF(v(f)))); };
        case ir::UnOp::kNot:
          return [v](Frame& f) { return RawI(AsI(v(f)) == 0 ? 1 : 0); };
        case ir::UnOp::kI2F:
          return [v](Frame& f) {
            return RawF(static_cast<double>(AsI(v(f))));
          };
        case ir::UnOp::kF2I:
          return [v](Frame& f) {
            return RawI(static_cast<std::int64_t>(AsF(v(f))));
          };
      }
      FGPAR_UNREACHABLE("bad UnOp");
    }
    case ir::ExprKind::kBinary: {
      const ExprFn lf = CompileExpr(node.child[0]);
      const ExprFn rf = CompileExpr(node.child[1]);
      const ir::ScalarType in = kernel_.expr(node.child[0]).type;
      if (in == ir::ScalarType::kI64) {
        switch (node.bin) {
          // Add/sub/mul wrap (two's complement), like the interpreter and
          // the simulated machine; uint64 arithmetic keeps the wrap defined.
          case ir::BinOp::kAdd:
            return [lf, rf](Frame& f) {
              const std::uint64_t l = lf(f);
              return l + rf(f);
            };
          case ir::BinOp::kSub:
            return [lf, rf](Frame& f) {
              const std::uint64_t l = lf(f);
              return l - rf(f);
            };
          case ir::BinOp::kMul:
            return [lf, rf](Frame& f) {
              const std::uint64_t l = lf(f);
              return l * rf(f);
            };
          case ir::BinOp::kDiv:
            return [lf, rf](Frame& f) {
              const std::int64_t l = AsI(lf(f));
              const std::int64_t r = AsI(rf(f));
              FGPAR_CHECK_MSG(r != 0, "integer divide by zero");
              FGPAR_CHECK_MSG(l != INT64_MIN || r != -1,
                              "integer divide overflow");
              return RawI(l / r);
            };
          case ir::BinOp::kRem:
            return [lf, rf](Frame& f) {
              const std::int64_t l = AsI(lf(f));
              const std::int64_t r = AsI(rf(f));
              FGPAR_CHECK_MSG(r != 0, "integer remainder by zero");
              FGPAR_CHECK_MSG(l != INT64_MIN || r != -1,
                              "integer remainder overflow");
              return RawI(l % r);
            };
          case ir::BinOp::kMin:
            return [lf, rf](Frame& f) {
              const std::int64_t l = AsI(lf(f));
              return RawI(std::min(l, AsI(rf(f))));
            };
          case ir::BinOp::kMax:
            return [lf, rf](Frame& f) {
              const std::int64_t l = AsI(lf(f));
              return RawI(std::max(l, AsI(rf(f))));
            };
          case ir::BinOp::kAnd:
            return [lf, rf](Frame& f) {
              const std::uint64_t l = lf(f);
              return l & rf(f);
            };
          case ir::BinOp::kOr:
            return [lf, rf](Frame& f) {
              const std::uint64_t l = lf(f);
              return l | rf(f);
            };
          case ir::BinOp::kXor:
            return [lf, rf](Frame& f) {
              const std::uint64_t l = lf(f);
              return l ^ rf(f);
            };
          case ir::BinOp::kShl:
            return [lf, rf](Frame& f) {
              const std::uint64_t l = lf(f);
              return l << (AsI(rf(f)) & 63);
            };
          case ir::BinOp::kShr:
            return [lf, rf](Frame& f) {
              const std::int64_t l = AsI(lf(f));
              return RawI(l >> (AsI(rf(f)) & 63));
            };
          case ir::BinOp::kEq:
            return [lf, rf](Frame& f) {
              const std::int64_t l = AsI(lf(f));
              return RawI(l == AsI(rf(f)) ? 1 : 0);
            };
          case ir::BinOp::kNe:
            return [lf, rf](Frame& f) {
              const std::int64_t l = AsI(lf(f));
              return RawI(l != AsI(rf(f)) ? 1 : 0);
            };
          case ir::BinOp::kLt:
            return [lf, rf](Frame& f) {
              const std::int64_t l = AsI(lf(f));
              return RawI(l < AsI(rf(f)) ? 1 : 0);
            };
          case ir::BinOp::kLe:
            return [lf, rf](Frame& f) {
              const std::int64_t l = AsI(lf(f));
              return RawI(l <= AsI(rf(f)) ? 1 : 0);
            };
        }
        FGPAR_UNREACHABLE("bad BinOp");
      }
      switch (node.bin) {
        case ir::BinOp::kAdd:
          return [lf, rf](Frame& f) {
            const double l = AsF(lf(f));
            return RawF(l + AsF(rf(f)));
          };
        case ir::BinOp::kSub:
          return [lf, rf](Frame& f) {
            const double l = AsF(lf(f));
            return RawF(l - AsF(rf(f)));
          };
        case ir::BinOp::kMul:
          return [lf, rf](Frame& f) {
            const double l = AsF(lf(f));
            return RawF(l * AsF(rf(f)));
          };
        case ir::BinOp::kDiv:
          return [lf, rf](Frame& f) {
            const double l = AsF(lf(f));
            return RawF(l / AsF(rf(f)));
          };
        case ir::BinOp::kMin:
          return [lf, rf](Frame& f) {
            const double l = AsF(lf(f));
            return RawF(std::fmin(l, AsF(rf(f))));
          };
        case ir::BinOp::kMax:
          return [lf, rf](Frame& f) {
            const double l = AsF(lf(f));
            return RawF(std::fmax(l, AsF(rf(f))));
          };
        case ir::BinOp::kEq:
          return [lf, rf](Frame& f) {
            const double l = AsF(lf(f));
            return RawI(l == AsF(rf(f)) ? 1 : 0);
          };
        case ir::BinOp::kNe:
          return [lf, rf](Frame& f) {
            const double l = AsF(lf(f));
            return RawI(l != AsF(rf(f)) ? 1 : 0);
          };
        case ir::BinOp::kLt:
          return [lf, rf](Frame& f) {
            const double l = AsF(lf(f));
            return RawI(l < AsF(rf(f)) ? 1 : 0);
          };
        case ir::BinOp::kLe:
          return [lf, rf](Frame& f) {
            const double l = AsF(lf(f));
            return RawI(l <= AsF(rf(f)) ? 1 : 0);
          };
        default:
          FGPAR_UNREACHABLE("int-only operator on f64");
      }
    }
    case ir::ExprKind::kSelect: {
      const ExprFn cond = CompileExpr(node.child[0]);
      const ExprFn a = CompileExpr(node.child[1]);
      const ExprFn b = CompileExpr(node.child[2]);
      // Both arms are evaluated, matching the interpreter and the compiled
      // lowering; the condition only picks the result.
      return [cond, a, b](Frame& f) {
        const std::int64_t c = AsI(cond(f));
        const std::uint64_t av = a(f);
        const std::uint64_t bv = b(f);
        return c != 0 ? av : bv;
      };
    }
  }
  FGPAR_UNREACHABLE("bad ExprKind");
}

StmtFn Codegen::CompileStmt(const ir::Stmt& stmt) const {
  switch (stmt.kind) {
    case ir::StmtKind::kAssignTemp: {
      const std::size_t t = static_cast<std::size_t>(stmt.temp);
      const ExprFn value = CompileExpr(stmt.value);
      return [t, value](Frame& f) { f.temps[t] = value(f); };
    }
    case ir::StmtKind::kStoreScalar: {
      const std::uint64_t addr = layout_.AddressOf(stmt.sym);
      const ExprFn value = CompileExpr(stmt.value);
      return [addr, value](Frame& f) {
        FGPAR_CHECK(addr < f.memory_size);
        f.memory[addr] = value(f);
      };
    }
    case ir::StmtKind::kStoreArray: {
      const ExprFn index = CompileExpr(stmt.index);
      const ExprFn value = CompileExpr(stmt.value);
      const std::uint64_t base = layout_.AddressOf(stmt.sym);
      const std::int64_t size = kernel_.symbol(stmt.sym).array_size;
      const std::string name = kernel_.symbol(stmt.sym).name;
      return [index, value, base, size, name](Frame& f) {
        const std::int64_t i = AsI(index(f));
        FGPAR_CHECK_MSG(i >= 0 && i < size,
                        "array index out of bounds: " + name + "[" +
                            std::to_string(i) + "], size " +
                            std::to_string(size));
        const std::uint64_t addr = base + static_cast<std::uint64_t>(i);
        FGPAR_CHECK(addr < f.memory_size);
        f.memory[addr] = value(f);
      };
    }
    case ir::StmtKind::kIf: {
      const ExprFn cond = CompileExpr(stmt.value);
      const StmtFn then_fn = CompileStmtList(stmt.then_body);
      const StmtFn else_fn = CompileStmtList(stmt.else_body);
      return [cond, then_fn, else_fn](Frame& f) {
        if (AsI(cond(f)) != 0) {
          then_fn(f);
        } else {
          else_fn(f);
        }
      };
    }
  }
  FGPAR_UNREACHABLE("bad StmtKind");
}

StmtFn Codegen::CompileStmtList(const std::vector<ir::Stmt>& stmts) const {
  std::vector<StmtFn> fns;
  fns.reserve(stmts.size());
  for (const ir::Stmt& stmt : stmts) {
    fns.push_back(CompileStmt(stmt));
  }
  return [fns](Frame& f) {
    for (const StmtFn& fn : fns) {
      fn(f);
    }
  };
}

std::vector<std::uint64_t> InitialTemps(const ir::Kernel& kernel) {
  std::vector<std::uint64_t> temps(kernel.temps().size(), 0);
  for (const ir::Temp& t : kernel.temps()) {
    if (t.carried) {
      temps[static_cast<std::size_t>(t.id)] =
          t.type == ir::ScalarType::kI64 ? RawI(t.init_i) : RawF(t.init_f);
    }
  }
  return temps;
}

std::vector<std::uint64_t> RawParams(const ir::Kernel& kernel,
                                     const ir::ParamEnv& params) {
  std::vector<std::uint64_t> raw(kernel.symbols().size(), 0);
  for (const ir::Symbol& sym : kernel.symbols()) {
    if (sym.kind == ir::SymbolKind::kParam) {
      raw[static_cast<std::size_t>(sym.id)] = params.GetRaw(sym.id);
    }
  }
  return raw;
}

}  // namespace fgpar::native
