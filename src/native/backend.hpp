// The native backend: compiler::Backend implemented over host threads.
//
// NativeProgram materializes a LoweredProgram as host closures plus the
// ring-connected thread protocol (executor.hpp).  It keeps non-owning
// views into the lowered form, which therefore must outlive it — in
// practice the views point into a CompiledParallel (which owns kernel and
// plan) or into a caller-owned kernel/layout pair for the sequential form.
#pragma once

#include <memory>

#include "compiler/backend.hpp"
#include "native/executor.hpp"

namespace fgpar::native {

class NativeProgram final : public compiler::BackendProgram {
 public:
  explicit NativeProgram(const compiler::LoweredProgram& lowered,
                         std::size_t ring_capacity =
                             SpscRing::kDefaultCapacity)
      : lowered_(lowered), ring_capacity_(ring_capacity) {}

  compiler::BackendKind kind() const override {
    return compiler::BackendKind::kNative;
  }

  int cores() const { return lowered_.cores(); }

  /// Runs the program over `memory` in place (executor.hpp semantics).
  NativeRunStats Run(const std::vector<std::uint64_t>& params_raw,
                     std::vector<std::uint64_t>& memory) const {
    return ExecuteNative(lowered_, params_raw, memory, ring_capacity_);
  }

 private:
  compiler::LoweredProgram lowered_;
  std::size_t ring_capacity_;
};

class NativeBackend final : public compiler::Backend {
 public:
  explicit NativeBackend(std::size_t ring_capacity =
                             SpscRing::kDefaultCapacity)
      : ring_capacity_(ring_capacity) {}

  compiler::BackendKind kind() const override {
    return compiler::BackendKind::kNative;
  }

  std::unique_ptr<compiler::BackendProgram> Compile(
      const compiler::LoweredProgram& lowered) const override {
    return std::make_unique<NativeProgram>(lowered, ring_capacity_);
  }

 private:
  std::size_t ring_capacity_;
};

std::unique_ptr<compiler::Backend> MakeNativeBackend(
    std::size_t ring_capacity = SpscRing::kDefaultCapacity);

}  // namespace fgpar::native
