// Content-addressed compile cache ("fgpar-cache-v1").
//
// A cache entry maps (kernel-source hash, canonical-config hash) to the
// daemon's final deterministic response bytes, so a repeat request —
// including one arriving after a crash and restart — is served
// byte-identical to the cold run without recompiling or resimulating.
//
// Keying.  The kernel half is FNV-1a over the raw source bytes: two
// sources differing only in whitespace are, deliberately, distinct keys
// (the service does not canonicalize kernel text, so it never has to
// argue that a normalization is semantics-preserving).  The config half
// is FNV-1a over RunRequestConfig::CanonicalString(), whose fixed field
// order makes two different configurations collide only by hash accident
// on 128 combined bits.
//
// Persistence.  The file is line-oriented like the sweep checkpoint
// journal: a header line, then one "entry <key> <checksum> <hex payload>"
// line per cached response.  Every insert rewrites the file via the
// temp-file + atomic-rename idiom, so a kill -9 at any instant leaves
// either the old file or the new file — never a torn hybrid.  Each entry
// carries its own FNV-1a checksum; a corrupted line (torn hex, checksum
// mismatch, bad header) is detected on load, counted, and evicted — the
// daemon recompiles that job instead of serving garbage.
//
// Entries hold only fully-successful (status 200, non-degraded)
// responses: those are deterministic in the key alone.  Degraded and
// error responses depend on transient conditions (deadline pressure,
// cycle budget) and are never cached.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace fgpar::service {

struct CacheKey {
  std::uint64_t kernel_hash = 0;
  std::uint64_t config_hash = 0;

  bool operator<(const CacheKey& other) const {
    return std::tie(kernel_hash, config_hash) <
           std::tie(other.kernel_hash, other.config_hash);
  }
  bool operator==(const CacheKey& other) const {
    return kernel_hash == other.kernel_hash &&
           config_hash == other.config_hash;
  }
};

class CompileCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t corrupt_evicted = 0;   // load-time checksum/format failures
    std::uint64_t capacity_evicted = 0;  // FIFO evictions past max_entries
    std::uint64_t loaded = 0;            // entries replayed from disk
    std::size_t entries = 0;
  };

  /// `path` == "" keeps the cache memory-only (tests, --no-cache).
  /// Loading never throws: a missing file is a fresh cache and a corrupt
  /// file contributes only its intact entries.
  explicit CompileCache(std::string path, std::size_t max_entries = 4096);

  static CacheKey KeyFor(std::string_view kernel_source,
                         std::string_view canonical_config);

  /// Thread-safe; counts a hit or a miss.
  std::optional<std::string> Lookup(const CacheKey& key);

  /// Thread-safe; persists atomically before returning (an entry is never
  /// acknowledged in stats before it would survive a crash).  Re-inserting
  /// an existing key is a no-op — first result wins, which is also the
  /// determinism cross-check: a second compute of the same key must
  /// produce the same bytes.
  void Insert(const CacheKey& key, std::string response);

  Stats stats() const;
  const std::string& path() const { return path_; }

 private:
  void LoadLocked();
  void PersistLocked() const;

  const std::string path_;
  const std::size_t max_entries_;
  mutable std::mutex mutex_;
  std::map<CacheKey, std::string> entries_;
  std::deque<CacheKey> insertion_order_;  // FIFO eviction order
  Stats stats_;
};

}  // namespace fgpar::service
