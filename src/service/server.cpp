#include "service/server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <csignal>
#include <cstring>

#include "harness/sweep.hpp"
#include "support/error.hpp"

namespace fgpar::service {

namespace {

volatile std::sig_atomic_t g_stop_signal = 0;

}  // namespace

extern "C" void FgpardOnStopSignal(int) { g_stop_signal = 1; }

SocketServer::SocketServer(ServiceCore& core, std::string socket_path)
    : core_(core), socket_path_(std::move(socket_path)) {
  core_.set_queue_depth_probe([this] { return QueueDepth(); });
}

SocketServer::~SocketServer() {
  RequestStop();
  if (accept_thread_.joinable()) {
    // ServeUntilShutdown was never run (or aborted); drain here so no
    // thread outlives the object.
    ServeUntilShutdown();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
  }
}

void SocketServer::InstallSignalHandlers() {
  std::signal(SIGTERM, FgpardOnStopSignal);
  std::signal(SIGINT, FgpardOnStopSignal);
  // A client that disconnects mid-response must cost us an EPIPE errno,
  // not the process.
  std::signal(SIGPIPE, SIG_IGN);
}

void SocketServer::Start() {
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    throw Error(std::string("socket(): ") + std::strerror(errno));
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  socklen_t addr_len = sizeof(addr);
  if (!socket_path_.empty() && socket_path_[0] == '@') {
    // Linux abstract namespace: a leading NUL instead of the '@'.
    const std::size_t name_len = socket_path_.size() - 1;
    if (name_len + 1 > sizeof(addr.sun_path)) {
      throw Error("abstract socket name too long: " + socket_path_);
    }
    addr.sun_path[0] = '\0';
    std::memcpy(addr.sun_path + 1, socket_path_.data() + 1, name_len);
    addr_len = static_cast<socklen_t>(offsetof(sockaddr_un, sun_path) + 1 +
                                      name_len);
  } else {
    if (socket_path_.size() + 1 > sizeof(addr.sun_path)) {
      throw Error("socket path too long: " + socket_path_);
    }
    std::memcpy(addr.sun_path, socket_path_.c_str(), socket_path_.size() + 1);
    ::unlink(socket_path_.c_str());  // a stale socket from a crashed run
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), addr_len) != 0) {
    throw Error("bind(" + socket_path_ + "): " + std::strerror(errno));
  }
  if (::listen(listen_fd_, 64) != 0) {
    throw Error("listen(" + socket_path_ + "): " + std::strerror(errno));
  }

  const int workers = core_.config().workers > 0
                          ? core_.config().workers
                          : harness::ResolveSweepThreads(0);
  workers_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  accepting_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
}

void SocketServer::RequestStop() { stop_.store(true, std::memory_order_relaxed); }

bool SocketServer::StopRequested() const {
  return stop_.load(std::memory_order_relaxed) || g_stop_signal != 0 ||
         core_.shutdown_requested();
}

std::size_t SocketServer::QueueDepth() const {
  std::lock_guard<std::mutex> lock(queue_mutex_);
  return queue_.size();
}

void SocketServer::AcceptLoop() {
  while (!StopRequested()) {
    pollfd pfd{};
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    // Short timeout so a drain request is noticed promptly even with no
    // client traffic.
    const int ready = ::poll(&pfd, 1, 200);
    if (ready <= 0) {
      continue;  // timeout or EINTR: re-check the stop flag
    }
    const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) {
      continue;
    }
    std::lock_guard<std::mutex> lock(conn_mutex_);
    conn_fds_.push_back(fd);
    conn_threads_.emplace_back([this, fd] { ServeConnection(fd); });
  }
  accepting_.store(false, std::memory_order_release);
}

void SocketServer::WorkerLoop() {
  for (;;) {
    std::unique_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock,
                     [this] { return !queue_.empty() || workers_stop_; });
      if (queue_.empty()) {
        return;  // workers_stop_ with a drained queue: done
      }
      job = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    // Never throws — every outcome is a structured response.
    std::string response = core_.Handle(job->request, job->admitted);
    job->response.set_value(std::move(response));
    {
      std::lock_guard<std::mutex> lock(queue_mutex_);
      --in_flight_;
    }
    queue_cv_.notify_all();  // wake the drain waiter and idle workers
  }
}

void SocketServer::ServeConnection(int fd) {
  std::string payload;
  for (;;) {
    const ReadStatus status = ReadFrame(fd, payload);
    if (status == ReadStatus::kClosed || status == ReadStatus::kDisconnect) {
      break;  // mid-stream disconnects are the client's prerogative
    }
    if (status == ReadStatus::kOversized) {
      // The declared length was refused before reading the body, so the
      // stream position is unknowable: answer and close.
      WriteFrame(fd, core_.RejectBadFrame(
                         "declared frame length exceeds the 8 MiB cap"));
      break;
    }
    Request request;
    try {
      request = ParseRequest(payload);
    } catch (const Error&) {
      // Malformed payload: HandleFrame re-parses and produces the
      // structured 400 (double parse only on the error path).
      if (!WriteFrame(fd, core_.HandleFrame(payload))) {
        break;
      }
      continue;
    }
    std::string response;
    if (request.op != Op::kCompileRun) {
      // health/stats/shutdown bypass the bounded queue: they must answer
      // even when every worker is busy and the queue is full.
      response = core_.Handle(request);
    } else if (StopRequested()) {
      response = core_.RejectDraining(request);
    } else {
      std::future<std::string> pending;
      std::size_t depth = 0;
      {
        std::lock_guard<std::mutex> lock(queue_mutex_);
        depth = queue_.size();
        if (depth < core_.config().queue_depth) {
          auto job = std::make_unique<Job>();
          job->request = request;
          job->admitted = std::chrono::steady_clock::now();
          pending = job->response.get_future();
          queue_.push_back(std::move(job));
        }
      }
      if (pending.valid()) {
        queue_cv_.notify_one();
        response = pending.get();
      } else {
        response = core_.RejectOverloaded(request, depth,
                                          core_.config().queue_depth);
      }
    }
    if (!WriteFrame(fd, response)) {
      break;
    }
  }
  ::close(fd);
}

int SocketServer::ServeUntilShutdown() {
  while (!StopRequested()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  RequestStop();  // make the drain sticky whatever triggered it

  // 1. No new connections.
  if (accept_thread_.joinable()) {
    accept_thread_.join();
  }

  // 2. Queued and in-flight jobs finish; their responses are delivered by
  //    the connection threads still blocked on the futures.
  {
    std::unique_lock<std::mutex> lock(queue_mutex_);
    queue_cv_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
    workers_stop_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
  workers_.clear();

  // 3. Unblock connection threads parked in ReadFrame and join them.
  {
    std::lock_guard<std::mutex> lock(conn_mutex_);
    for (const int fd : conn_fds_) {
      ::shutdown(fd, SHUT_RDWR);
    }
  }
  for (std::thread& conn : conn_threads_) {
    conn.join();
  }
  conn_threads_.clear();
  conn_fds_.clear();

  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (!socket_path_.empty() && socket_path_[0] != '@') {
    ::unlink(socket_path_.c_str());
  }
  return 0;
}

}  // namespace fgpar::service
