#include "service/core.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <utility>
#include <vector>

#include "frontend/parser.hpp"
#include "harness/repro.hpp"
#include "harness/runner.hpp"
#include "support/buildinfo.hpp"
#include "support/error.hpp"
#include "support/json.hpp"
#include "support/rng.hpp"
#include "support/telemetry/sinks.hpp"

namespace fgpar::service {

namespace {

std::string Hex64(std::uint64_t value) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(value));
  return buf;
}

/// The same deterministic workload fgparc builds: i64 params get the
/// request's trip count, f64 params and arrays derive from the run seed.
harness::WorkloadInit MakeInit(std::int64_t trip) {
  return [trip](std::uint64_t seed, const ir::Kernel& kernel,
                const ir::DataLayout& layout, ir::ParamEnv& params,
                std::vector<std::uint64_t>& memory) {
    Rng rng(seed);
    for (const ir::Symbol& sym : kernel.symbols()) {
      switch (sym.kind) {
        case ir::SymbolKind::kParam:
          if (sym.type == ir::ScalarType::kI64) {
            params.SetI64(sym.id, trip);
          } else {
            params.SetF64(sym.id, rng.NextDouble(0.5, 2.0));
          }
          break;
        case ir::SymbolKind::kArray: {
          const std::uint64_t base = layout.AddressOf(sym.id);
          for (std::int64_t i = 0; i < sym.array_size; ++i) {
            memory[base + static_cast<std::uint64_t>(i)] =
                sym.type == ir::ScalarType::kF64
                    ? std::bit_cast<std::uint64_t>(rng.NextDouble(0.5, 2.0))
                    : static_cast<std::uint64_t>(
                          rng.NextInt(0, sym.array_size - 1));
          }
          break;
        }
        case ir::SymbolKind::kScalar:
          break;
      }
    }
  };
}

harness::RunConfig ToRunConfig(const RunRequestConfig& config,
                               std::uint64_t cycle_budget) {
  harness::RunConfig run;
  run.compile.num_cores = config.cores;
  run.compile.speculation = config.speculate;
  run.compile.throughput_heuristic = config.throughput || config.merge == 2;
  run.compile.multi_pair_merge = config.merge == 1;
  run.queue.transfer_latency = config.latency;
  run.queue.capacity = config.capacity;
  run.threads_per_core = config.smt;
  run.tune_by_simulation = config.tune;
  run.seed = config.seed;
  run.max_cycles = cycle_budget;
  run.force_tier = config.tier;
  run.backend = config.backend;
  return run;
}

/// Renders the deterministic result object — exactly the bytes the cache
/// stores, so a cache hit is byte-identical to the cold response by
/// construction.
std::string BuildResultBody(const harness::KernelRun& run, bool degraded,
                            std::string_view degraded_reason) {
  JsonWriter w;
  w.BeginObject();
  w.Key("kernel");
  w.String(run.kernel_name);
  w.Key("degraded");
  w.Bool(degraded);
  if (degraded) {
    w.Key("degraded_reason");
    w.String(degraded_reason);
  }
  const telemetry::CounterRegistry registry = harness::KernelRunTelemetry(run);
  w.Key("counters");
  w.BeginObject();
  registry.ForEachArtifactCount(
      [&w](const std::string& name, std::uint64_t value) {
        w.Key(name);
        w.UInt(value);
      });
  w.EndObject();
  w.Key("metrics");
  w.BeginObject();
  registry.ForEachArtifactMetric([&w](const std::string& name, double value) {
    w.Key(name);
    w.Double(value);
  });
  w.EndObject();
  w.EndObject();
  std::string body = w.Take();
  while (!body.empty() && body.back() == '\n') {
    body.pop_back();
  }
  return body;
}

/// Wraps a result body in the response envelope.  Rendered by hand so the
/// cached body can be spliced in verbatim: the envelope is a pure function
/// of (id, body), which is what makes cached and cold responses to the
/// same request byte-identical.
std::string OkEnvelope(std::uint64_t id, std::string_view body) {
  std::string out;
  out.reserve(body.size() + 96);
  out += "{\"schema\":\"";
  out += kRpcSchema;
  out += "\",\"id\":";
  out += std::to_string(id);
  out += ",\"op\":\"compile_run\",\"status\":\"ok\",\"code\":200,\"result\":";
  out += body;
  out += "}";
  return out;
}

}  // namespace

ServiceCore::ServiceCore(const ServiceConfig& config)
    : config_(config), cache_(config.cache_path, config.cache_max_entries) {}

void ServiceCore::CountResponse(int code) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++counters_["requests_total"];
  ++counters_["responses_" + std::to_string(code)];
}

std::string ServiceCore::HandleFrame(std::string_view payload) {
  Request request;
  try {
    request = ParseRequest(payload);
  } catch (const Error& e) {
    CountResponse(kBadRequest);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++counters_["bad_requests"];
    }
    return BuildErrorResponse(0, Op::kHealth, kBadRequest, "bad_request",
                              e.what());
  }
  return Handle(request);
}

std::string ServiceCore::Handle(const Request& request) {
  return Handle(request, std::chrono::steady_clock::now());
}

std::string ServiceCore::Handle(
    const Request& request,
    std::chrono::steady_clock::time_point admitted) {
  switch (request.op) {
    case Op::kHealth:
      return HandleHealth(request);
    case Op::kStats:
      return HandleStats(request);
    case Op::kShutdown:
      return HandleShutdown(request);
    case Op::kCompileRun:
      break;
  }
  telemetry::ScopedSpan span(config_.telemetry, "request", "compile_run",
                             static_cast<int>(request.id & 0x7fffffff));
  bool cache_hit = false;
  const std::string response = HandleCompileRun(request, admitted, cache_hit);
  span.Note("cache_hit", cache_hit ? 1 : 0);
  RecordLatency(std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                              admitted)
                    .count());
  return response;
}

void ServiceCore::RecordLatency(double seconds) {
  const auto us = static_cast<std::uint64_t>(seconds * 1e6);
  std::lock_guard<std::mutex> lock(mutex_);
  if (latency_us_.size() < kLatencyWindow) {
    latency_us_.push_back(us);
  } else {
    latency_us_[latency_next_] = us;
  }
  latency_next_ = (latency_next_ + 1) % kLatencyWindow;
}

std::string ServiceCore::HandleCompileRun(
    const Request& request,
    std::chrono::steady_clock::time_point admitted, bool& cache_hit) {
  const std::string canonical = request.config.CanonicalString();
  const CacheKey key = CompileCache::KeyFor(request.kernel, canonical);

  // Rung 1 of the degradation ladder: a cached result is free, so it is
  // served even when the deadline has already expired.
  if (std::optional<std::string> body = cache_.Lookup(key)) {
    cache_hit = true;
    CountResponse(kOk);
    return OkEnvelope(request.id, *body);
  }

  // Quarantined (kernel, config) pairs are refused without re-running:
  // one poison job must not grind the worker pool down repeatedly.
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = quarantine_.find(key);
    if (it != quarantine_.end()) {
      ++counters_["requests_total"];
      ++counters_["responses_" + std::to_string(kInternal)];
      return BuildErrorResponse(
          request.id, Op::kCompileRun, kInternal, "quarantined",
          "quarantined after earlier failure: " + it->second.message +
              (it->second.repro_bundle.empty()
                   ? ""
                   : " (repro bundle " + it->second.repro_bundle + ")"));
    }
  }

  const auto deadline_expired = [&] {
    if (config_.request_deadline_seconds <= 0.0) {
      return false;
    }
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      admitted)
            .count();
    return elapsed > config_.request_deadline_seconds;
  };
  if (deadline_expired()) {
    CountResponse(kDeadline);
    return BuildErrorResponse(request.id, Op::kCompileRun, kDeadline,
                              "deadline",
                              "deadline expired while the request was queued");
  }

  // Frontend errors are the client's problem: structured 400 with the
  // parser's message, no quarantine, no repro bundle.
  std::optional<ir::Kernel> kernel;
  try {
    kernel.emplace(frontend::ParseKernel(request.kernel));
  } catch (const Error& e) {
    CountResponse(kBadRequest);
    return BuildErrorResponse(request.id, Op::kCompileRun, kBadRequest,
                              "bad_kernel", e.what());
  }

  const harness::RunConfig run_config =
      ToRunConfig(request.config, config_.cycle_budget);
  try {
    const std::uint64_t executed =
        executed_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (config_.drill_crash_every > 0 &&
        executed % config_.drill_crash_every == 0) {
      throw Error("injected drill failure (--drill-crash-every " +
                  std::to_string(config_.drill_crash_every) + ")");
    }
    harness::KernelRunner runner(*kernel, MakeInit(request.config.trip));
    const harness::KernelRun run = runner.Run(run_config);
    const std::string body = BuildResultBody(run, /*degraded=*/false, "");
    // Insert persists atomically before the response leaves the daemon,
    // so any 200 a client ever sees is already crash-durable.
    cache_.Insert(key, body);
    CountResponse(kOk);
    return OkEnvelope(request.id, body);
  } catch (const harness::CycleBudgetError& e) {
    // Rung 2: the full pipeline blew its simulated-cycle budget.  Retry as
    // a sequential-only measurement — no parallel compile, no tuning, one
    // single-core simulation — which is the cheapest result still worth
    // returning.  Never cached: it reflects this daemon's budget, not the
    // request's content.
    if (!deadline_expired()) {
      try {
        harness::KernelRunner runner(*kernel, MakeInit(request.config.trip));
        const std::uint64_t seq_cycles = runner.MeasureSequential(run_config);
        harness::KernelRun degraded;
        degraded.kernel_name = kernel->name();
        degraded.seq_cycles = seq_cycles;
        degraded.par_cycles = seq_cycles;
        degraded.speedup = 1.0;
        degraded.cores_used = 1;
        degraded.fallback_used = true;
        degraded.failure_reason = e.what();
        {
          std::lock_guard<std::mutex> lock(mutex_);
          ++counters_["degraded"];
        }
        CountResponse(kOk);
        return OkEnvelope(request.id,
                          BuildResultBody(degraded, /*degraded=*/true,
                                          e.what()));
      } catch (const Error&) {
        // Sequential overran too; fall through to the structured 408.
      }
    }
    CountResponse(kDeadline);
    return BuildErrorResponse(request.id, Op::kCompileRun, kDeadline,
                              "deadline", e.what());
  } catch (const Error& e) {
    return Quarantine(request, key, kernel->name(), e.what());
  } catch (const std::exception& e) {
    return Quarantine(request, key, kernel->name(), e.what());
  }
}

std::string ServiceCore::Quarantine(const Request& request,
                                    const CacheKey& key,
                                    std::string_view kernel_name,
                                    std::string_view message) {
  QuarantineRecord record;
  record.message = std::string(message);
  if (!config_.quarantine_dir.empty()) {
    harness::ReproBundle bundle;
    bundle.experiment = "fgpard";
    bundle.label = std::string(kernel_name) + " " +
                   request.config.CanonicalString();
    bundle.point_index = request.id;
    bundle.kernel_id = std::string(kernel_name);
    bundle.kernel_source = request.kernel;
    bundle.trip = request.config.trip;
    bundle.config = ToRunConfig(request.config, config_.cycle_budget);
    bundle.failure_message = record.message;
    bundle.failure_attempts = 1;
    const std::string name = "repro_fgpard_" + Hex64(key.kernel_hash) + "_" +
                             Hex64(key.config_hash);
    try {
      harness::WriteReproBundle(config_.quarantine_dir, name, bundle);
      record.repro_bundle = name;
    } catch (const Error& e) {
      // A full disk must not turn a structured 500 into a crash; the
      // emit failure travels in the response instead.
      record.message += " (repro bundle emission failed: ";
      record.message += e.what();
      record.message += ")";
    }
  }
  std::map<std::string, std::uint64_t> extra;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    quarantine_.emplace(key, record);
    ++counters_["requests_total"];
    ++counters_["responses_" + std::to_string(kInternal)];
    ++counters_["quarantined"];
  }
  std::string text = "execution failed: " + record.message;
  if (!record.repro_bundle.empty()) {
    text += " (repro bundle " + record.repro_bundle + ")";
  }
  return BuildErrorResponse(request.id, Op::kCompileRun, kInternal,
                            "quarantined", text, extra);
}

std::string ServiceCore::HandleHealth(const Request& request) {
  CountResponse(kOk);
  JsonWriter w;
  w.BeginObject();
  w.Key("schema");
  w.String(kRpcSchema);
  w.Key("id");
  w.UInt(request.id);
  w.Key("op");
  w.String("health");
  w.Key("status");
  w.String("ok");
  w.Key("code");
  w.Int(kOk);
  w.Key("health");
  w.BeginObject();
  w.Key("version");
  w.String(BuildVersionString());
  w.Key("config_hash");
  w.String(BuildConfigHashHex());
  w.Key("workers");
  w.Int(config_.workers);
  w.Key("queue_capacity");
  w.UInt(config_.queue_depth);
  w.Key("queue_depth");
  w.UInt(queue_depth_probe_ ? queue_depth_probe_() : 0);
  w.Key("cache_entries");
  w.UInt(cache_.stats().entries);
  w.Key("draining");
  w.Bool(shutdown_requested());
  w.EndObject();
  w.EndObject();
  return w.Take();
}

std::string ServiceCore::HandleStats(const Request& request) {
  CountResponse(kOk);
  JsonWriter w;
  w.BeginObject();
  w.Key("schema");
  w.String(kRpcSchema);
  w.Key("id");
  w.UInt(request.id);
  w.Key("op");
  w.String("stats");
  w.Key("status");
  w.String("ok");
  w.Key("code");
  w.Int(kOk);
  w.Key("stats");
  w.BeginObject();
  for (const auto& [name, value] : Counters()) {
    w.Key(name);
    w.UInt(value);
  }
  w.EndObject();
  w.EndObject();
  return w.Take();
}

std::string ServiceCore::HandleShutdown(const Request& request) {
  shutdown_requested_.store(true, std::memory_order_relaxed);
  CountResponse(kOk);
  JsonWriter w;
  w.BeginObject();
  w.Key("schema");
  w.String(kRpcSchema);
  w.Key("id");
  w.UInt(request.id);
  w.Key("op");
  w.String("shutdown");
  w.Key("status");
  w.String("ok");
  w.Key("code");
  w.Int(kOk);
  w.Key("message");
  w.String("draining; the daemon exits when in-flight work completes");
  w.EndObject();
  return w.Take();
}

std::string ServiceCore::RejectOverloaded(const Request& request,
                                          std::size_t depth,
                                          std::size_t capacity) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++counters_["requests_total"];
    ++counters_["responses_" + std::to_string(kRejected)];
    ++counters_["rejected_overloaded"];
  }
  return BuildErrorResponse(
      request.id, request.op, kRejected, "overloaded",
      "request queue is full; retry with backoff",
      {{"queue_depth", depth}, {"queue_capacity", capacity}});
}

std::string ServiceCore::RejectDraining(const Request& request) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++counters_["requests_total"];
    ++counters_["responses_" + std::to_string(kRejected)];
    ++counters_["rejected_draining"];
  }
  return BuildErrorResponse(request.id, request.op, kRejected, "draining",
                            "daemon is draining for shutdown");
}

std::string ServiceCore::RejectBadFrame(std::string_view message) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++counters_["requests_total"];
    ++counters_["responses_" + std::to_string(kBadRequest)];
    ++counters_["bad_frames"];
  }
  return BuildErrorResponse(0, Op::kHealth, kBadRequest, "bad_frame", message);
}

std::map<std::string, std::uint64_t> ServiceCore::Counters() const {
  std::map<std::string, std::uint64_t> snapshot;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    snapshot = counters_;
    snapshot["quarantine_entries"] = quarantine_.size();
    // Service-latency percentiles over the bounded sample window
    // (nearest-rank on a sorted copy; 4096 u64s, cheap enough for a
    // stats op).  Reported even when 0 samples so dashboards see the
    // keys from the first scrape.
    std::vector<std::uint64_t> sorted = latency_us_;
    std::sort(sorted.begin(), sorted.end());
    const auto percentile = [&sorted](double q) -> std::uint64_t {
      if (sorted.empty()) {
        return 0;
      }
      const auto rank = static_cast<std::size_t>(
          std::ceil(q * static_cast<double>(sorted.size())));
      return sorted[(rank == 0 ? 1 : rank) - 1];
    };
    snapshot["latency_samples"] = sorted.size();
    snapshot["latency_p50_us"] = percentile(0.50);
    snapshot["latency_p99_us"] = percentile(0.99);
  }
  const CompileCache::Stats cache = cache_.stats();
  snapshot["cache_hits"] = cache.hits;
  snapshot["cache_misses"] = cache.misses;
  snapshot["cache_insertions"] = cache.insertions;
  snapshot["cache_corrupt_evicted"] = cache.corrupt_evicted;
  snapshot["cache_capacity_evicted"] = cache.capacity_evicted;
  snapshot["cache_loaded"] = cache.loaded;
  snapshot["cache_entries"] = cache.entries;
  snapshot["executed"] = executed_.load(std::memory_order_relaxed);
  return snapshot;
}

}  // namespace fgpar::service
