#include "service/cache.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "support/error.hpp"
#include "support/serial.hpp"

namespace fgpar::service {

namespace {

constexpr const char kCacheVersion[] = "fgpar-cache-v1";

std::string Hex64(std::uint64_t value) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(value));
  return buf;
}

bool ParseHex64(std::string_view text, std::uint64_t& value) {
  if (text.size() != 16) {
    return false;
  }
  value = 0;
  for (const char c : text) {
    value <<= 4;
    if (c >= '0' && c <= '9') {
      value |= static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      value |= static_cast<std::uint64_t>(c - 'a' + 10);
    } else {
      return false;
    }
  }
  return true;
}

}  // namespace

CompileCache::CompileCache(std::string path, std::size_t max_entries)
    : path_(std::move(path)), max_entries_(max_entries) {
  std::lock_guard<std::mutex> lock(mutex_);
  LoadLocked();
}

CacheKey CompileCache::KeyFor(std::string_view kernel_source,
                              std::string_view canonical_config) {
  CacheKey key;
  key.kernel_hash = Fnv1a64(kernel_source);
  key.config_hash = Fnv1a64(canonical_config);
  return key;
}

std::optional<std::string> CompileCache::Lookup(const CacheKey& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  ++stats_.hits;
  return it->second;
}

void CompileCache::Insert(const CacheKey& key, std::string response) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (entries_.count(key) != 0) {
    return;  // first result wins; concurrent workers may race benignly
  }
  entries_[key] = std::move(response);
  insertion_order_.push_back(key);
  ++stats_.insertions;
  while (max_entries_ > 0 && entries_.size() > max_entries_) {
    entries_.erase(insertion_order_.front());
    insertion_order_.pop_front();
    ++stats_.capacity_evicted;
  }
  stats_.entries = entries_.size();
  if (!path_.empty()) {
    PersistLocked();
  }
}

CompileCache::Stats CompileCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats snapshot = stats_;
  snapshot.entries = entries_.size();
  return snapshot;
}

void CompileCache::LoadLocked() {
  if (path_.empty()) {
    return;
  }
  std::ifstream in(path_, std::ios::binary);
  if (!in.good()) {
    return;  // fresh cache
  }
  std::string header;
  if (!std::getline(in, header)) {
    ++stats_.corrupt_evicted;  // empty file: count and start fresh
    return;
  }
  std::istringstream header_stream(header);
  std::string version;
  header_stream >> version;
  if (version != kCacheVersion) {
    // Unknown format (torn header or future version): serve nothing from
    // it rather than guess.  The file is rewritten on the next insert.
    ++stats_.corrupt_evicted;
    return;
  }
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) {
      continue;
    }
    std::istringstream line_stream(line);
    std::string tag, khash_text, chash_text, checksum_text, hex;
    line_stream >> tag >> khash_text >> chash_text >> checksum_text >> hex;
    CacheKey key;
    std::uint64_t checksum = 0;
    if (tag != "entry" || !ParseHex64(khash_text, key.kernel_hash) ||
        !ParseHex64(chash_text, key.config_hash) ||
        !ParseHex64(checksum_text, checksum)) {
      ++stats_.corrupt_evicted;
      continue;
    }
    std::string payload;
    try {
      payload = HexDecodeToString(hex);
    } catch (const Error&) {
      ++stats_.corrupt_evicted;  // torn hex (e.g. odd length)
      continue;
    }
    if (Fnv1a64(payload) != checksum || entries_.count(key) != 0) {
      ++stats_.corrupt_evicted;
      continue;
    }
    entries_[key] = std::move(payload);
    insertion_order_.push_back(key);
    ++stats_.loaded;
  }
  stats_.entries = entries_.size();
}

void CompileCache::PersistLocked() const {
  const std::string tmp = path_ + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    FGPAR_CHECK_MSG(out.good(), "cannot open " + tmp + " for writing");
    out << kCacheVersion << '\n';
    // Written in insertion order so a reloaded cache keeps the same FIFO
    // eviction sequence as the process that wrote it.
    for (const CacheKey& key : insertion_order_) {
      const std::string& payload = entries_.at(key);
      out << "entry " << Hex64(key.kernel_hash) << ' '
          << Hex64(key.config_hash) << ' ' << Hex64(Fnv1a64(payload)) << ' '
          << HexEncode(payload) << '\n';
    }
    out.flush();
    FGPAR_CHECK_MSG(out.good(), "failed writing " + tmp);
  }
  FGPAR_CHECK_MSG(std::rename(tmp.c_str(), path_.c_str()) == 0,
                  "failed renaming " + tmp + " to " + path_);
}

}  // namespace fgpar::service
