#include "service/protocol.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "harness/autotune.hpp"
#include "support/error.hpp"
#include "support/json.hpp"

namespace fgpar::service {

std::string_view OpName(Op op) {
  switch (op) {
    case Op::kCompileRun: return "compile_run";
    case Op::kHealth: return "health";
    case Op::kStats: return "stats";
    case Op::kShutdown: return "shutdown";
  }
  return "unknown";
}

std::string RunRequestConfig::CanonicalString() const {
  std::string out = "fgpar-cfg-v1";
  const auto field = [&out](const char* name, std::uint64_t value) {
    out += ';';
    out += name;
    out += '=';
    out += std::to_string(value);
  };
  field("cores", static_cast<std::uint64_t>(cores));
  field("latency", static_cast<std::uint64_t>(latency));
  field("capacity", static_cast<std::uint64_t>(capacity));
  field("smt", static_cast<std::uint64_t>(smt));
  field("speculate", speculate ? 1 : 0);
  field("throughput", throughput ? 1 : 0);
  field("tune", tune ? 1 : 0);
  field("merge", static_cast<std::uint64_t>(merge));
  field("trip", static_cast<std::uint64_t>(trip));
  field("seed", seed);
  // `tier` is deliberately absent: run tiers are bit-identical, so a
  // tier-only change must hit the same cache entry (locked by
  // ServiceCache.TierNeverChangesTheKey).  `backend` is deliberately
  // present: native responses carry measured wall-clock fields that a
  // cached sim entry does not have (and vice versa), so the two must
  // occupy distinct cache entries.
  out += ";backend=";
  out += compiler::BackendKindName(backend);
  return out;
}

namespace {

// Bounds mirror fgparc's CLI validation: generous enough for any paper
// experiment, tight enough that a hostile request cannot demand an
// absurd simulation.
void ValidateConfig(const RunRequestConfig& config) {
  const auto check = [](bool ok, const char* what) {
    if (!ok) {
      throw Error(std::string("invalid config: ") + what);
    }
  };
  check(config.cores >= 1 && config.cores <= 64, "cores must be in [1, 64]");
  check(config.latency >= 0 && config.latency <= 10000,
        "latency must be in [0, 10000]");
  check(config.capacity >= 1 && config.capacity <= 100000,
        "capacity must be in [1, 100000]");
  check(config.smt >= 1 && config.smt <= 8, "smt must be in [1, 8]");
  check(config.trip >= 1 && config.trip <= 10'000'000,
        "trip must be in [1, 10000000]");
  check(!(config.throughput && config.merge == 1),
        "throughput and merge=multi_pair are mutually exclusive");
}

int ReadI32(const JsonValue& value, const char* what, std::int64_t lo,
            std::int64_t hi) {
  const std::int64_t v = value.AsI64();
  if (v < lo || v > hi) {
    throw Error(std::string("invalid config: ") + what + " out of range");
  }
  return static_cast<int>(v);
}

}  // namespace

Request ParseRequest(std::string_view payload) {
  const JsonValue doc = ParseJson(payload);
  const JsonValue* schema = doc.Find("schema");
  if (schema == nullptr || schema->AsString() != kRpcSchema) {
    throw Error(std::string("request schema must be \"") + kRpcSchema + "\"");
  }
  Request request;
  request.id = doc.Get("id").AsU64();
  const std::string& op = doc.Get("op").AsString();
  if (op == "compile_run") {
    request.op = Op::kCompileRun;
  } else if (op == "health") {
    request.op = Op::kHealth;
  } else if (op == "stats") {
    request.op = Op::kStats;
  } else if (op == "shutdown") {
    request.op = Op::kShutdown;
  } else {
    throw Error("unknown op '" + op + "'");
  }
  if (request.op != Op::kCompileRun) {
    return request;
  }
  request.kernel = doc.Get("kernel").AsString();
  if (request.kernel.empty()) {
    throw Error("compile_run requires a non-empty kernel");
  }
  if (const JsonValue* config = doc.Find("config")) {
    RunRequestConfig& c = request.config;
    if (const JsonValue* v = config->Find("cores")) {
      c.cores = ReadI32(*v, "cores", 1, 64);
    }
    if (const JsonValue* v = config->Find("latency")) {
      c.latency = ReadI32(*v, "latency", 0, 10000);
    }
    if (const JsonValue* v = config->Find("capacity")) {
      c.capacity = ReadI32(*v, "capacity", 1, 100000);
    }
    if (const JsonValue* v = config->Find("smt")) {
      c.smt = ReadI32(*v, "smt", 1, 8);
    }
    if (const JsonValue* v = config->Find("speculate")) {
      c.speculate = v->AsBool();
    }
    if (const JsonValue* v = config->Find("throughput")) {
      c.throughput = v->AsBool();
    }
    if (const JsonValue* v = config->Find("tune")) {
      c.tune = v->AsBool();
    }
    if (const JsonValue* v = config->Find("merge")) {
      // harness::MergeShapeFromName throws "unknown merge shape ..." on
      // anything but affinity/multi_pair/throughput — a structured 400.
      c.merge = harness::MergeShapeFromName(v->AsString());
    }
    if (const JsonValue* v = config->Find("trip")) {
      c.trip = v->AsI64();
    }
    if (const JsonValue* v = config->Find("seed")) {
      c.seed = v->AsU64();
    }
    if (const JsonValue* v = config->Find("tier")) {
      // sim::ParseRunTier throws a clear Error ("unknown run tier ...")
      // which the daemon reports as a structured 400, like every other
      // invalid-config field.
      c.tier = sim::ParseRunTier(v->AsString());
    }
    if (const JsonValue* v = config->Find("backend")) {
      // Same contract: ParseBackendKind throws "unknown backend ..." and
      // the daemon answers with a structured 400.
      c.backend = compiler::ParseBackendKind(v->AsString());
    }
  }
  ValidateConfig(request.config);
  return request;
}

std::string EncodeRequest(const Request& request) {
  JsonWriter w;
  w.BeginObject();
  w.Key("schema");
  w.String(kRpcSchema);
  w.Key("op");
  w.String(OpName(request.op));
  w.Key("id");
  w.UInt(request.id);
  if (request.op == Op::kCompileRun) {
    w.Key("kernel");
    w.String(request.kernel);
    w.Key("config");
    w.BeginObject();
    w.Key("cores");
    w.Int(request.config.cores);
    w.Key("latency");
    w.Int(request.config.latency);
    w.Key("capacity");
    w.Int(request.config.capacity);
    w.Key("smt");
    w.Int(request.config.smt);
    w.Key("speculate");
    w.Bool(request.config.speculate);
    w.Key("throughput");
    w.Bool(request.config.throughput);
    w.Key("tune");
    w.Bool(request.config.tune);
    w.Key("merge");
    w.String(harness::MergeShapeName(request.config.merge));
    w.Key("trip");
    w.Int(request.config.trip);
    w.Key("seed");
    w.UInt(request.config.seed);
    w.Key("tier");
    w.String(sim::RunTierName(request.config.tier));
    w.Key("backend");
    w.String(compiler::BackendKindName(request.config.backend));
    w.EndObject();
  }
  w.EndObject();
  return w.Take();
}

std::string BuildErrorResponse(
    std::uint64_t id, Op op, int code, std::string_view kind,
    std::string_view message,
    const std::map<std::string, std::uint64_t>& extra) {
  JsonWriter w;
  w.BeginObject();
  w.Key("schema");
  w.String(kRpcSchema);
  w.Key("id");
  w.UInt(id);
  w.Key("op");
  w.String(OpName(op));
  w.Key("status");
  w.String("error");
  w.Key("code");
  w.Int(code);
  w.Key("error");
  w.BeginObject();
  w.Key("kind");
  w.String(kind);
  w.Key("message");
  w.String(message);
  for (const auto& [key, value] : extra) {
    w.Key(key);
    w.UInt(value);
  }
  w.EndObject();
  w.EndObject();
  return w.Take();
}

// ---------------------------------------------------------------------------
// Frame I/O

namespace {

// Restartable full read: false only on EOF/error before `size` bytes.
bool ReadExact(int fd, void* buffer, std::size_t size) {
  auto* p = static_cast<char*>(buffer);
  while (size > 0) {
    const ssize_t n = ::read(fd, p, size);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    if (n == 0) {
      return false;
    }
    p += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

ReadStatus ReadFrame(int fd, std::string& payload) {
  unsigned char header[4];
  // The first header byte distinguishes a clean close from a mid-frame
  // disconnect.
  for (;;) {
    const ssize_t n = ::read(fd, header, 1);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return ReadStatus::kClosed;
    }
    if (n == 0) {
      return ReadStatus::kClosed;
    }
    break;
  }
  if (!ReadExact(fd, header + 1, 3)) {
    return ReadStatus::kDisconnect;
  }
  const std::uint32_t length = static_cast<std::uint32_t>(header[0]) |
                               (static_cast<std::uint32_t>(header[1]) << 8) |
                               (static_cast<std::uint32_t>(header[2]) << 16) |
                               (static_cast<std::uint32_t>(header[3]) << 24);
  if (length > kMaxFrameBytes) {
    return ReadStatus::kOversized;
  }
  payload.resize(length);
  if (length > 0 && !ReadExact(fd, payload.data(), length)) {
    return ReadStatus::kDisconnect;
  }
  return ReadStatus::kFrame;
}

bool WriteFrame(int fd, std::string_view payload) {
  const std::string frame = EncodeFrame(payload);
  const char* p = frame.data();
  std::size_t remaining = frame.size();
  while (remaining > 0) {
    // MSG_NOSIGNAL: a vanished peer yields EPIPE instead of killing the
    // process with SIGPIPE.
    const ssize_t n = ::send(fd, p, remaining, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    p += n;
    remaining -= static_cast<std::size_t>(n);
  }
  return true;
}

std::string EncodeFrame(std::string_view payload) {
  FGPAR_CHECK_MSG(payload.size() <= kMaxFrameBytes,
                  "frame payload exceeds kMaxFrameBytes");
  const auto length = static_cast<std::uint32_t>(payload.size());
  std::string frame;
  frame.reserve(4 + payload.size());
  frame.push_back(static_cast<char>(length & 0xFF));
  frame.push_back(static_cast<char>((length >> 8) & 0xFF));
  frame.push_back(static_cast<char>((length >> 16) & 0xFF));
  frame.push_back(static_cast<char>((length >> 24) & 0xFF));
  frame.append(payload);
  return frame;
}

std::optional<std::string> DecodeFrame(std::string_view buffer,
                                       std::size_t& pos) {
  if (buffer.size() - pos < 4) {
    return std::nullopt;
  }
  const auto b = [&](std::size_t i) {
    return static_cast<std::uint32_t>(
        static_cast<unsigned char>(buffer[pos + i]));
  };
  const std::uint32_t length = b(0) | (b(1) << 8) | (b(2) << 16) | (b(3) << 24);
  if (length > kMaxFrameBytes) {
    throw Error("frame length " + std::to_string(length) +
                " exceeds the 8 MiB protocol cap");
  }
  if (buffer.size() - pos - 4 < length) {
    return std::nullopt;
  }
  std::string payload(buffer.substr(pos + 4, length));
  pos += 4 + length;
  return payload;
}

}  // namespace fgpar::service
