// ServiceCore: the transport-independent request engine behind fgpard.
//
// The socket server (server.hpp) owns connections, admission control, and
// worker threads; everything else — cache lookup, kernel compile + run,
// the graceful-degradation ladder, quarantine, counters — lives here, so
// tests can drive the full request semantics in-process with plain
// strings and no sockets.
//
// compile_run request lifecycle:
//
//   1. cache   — key = (FNV(kernel bytes), FNV(canonical config)); a hit
//                is served byte-identically to the cold response (the
//                cache stores the deterministic result body; the envelope
//                is re-rendered around the caller's request id);
//   2. budget  — a request whose wall-clock deadline expired while it
//                queued is answered 408 without burning a worker on it;
//   3. compile — frontend parse errors are the client's fault: 400 with
//                the parser's line/column message, never quarantined;
//   4. run     — the full verifying pipeline under the daemon's simulated
//                cycle budget;
//   5. ladder  — a budget/deadline overrun degrades: retry as a
//                sequential-only measurement (cheaper by the parallel
//                compile, tuning, and N-core simulation) and answer 200
//                with degraded=true; if even that overruns, a structured
//                408.  Degraded results are never cached;
//   6. quarantine — any other failure (verify mismatch, internal error,
//                injected drill fault) quarantines the (kernel, config)
//                key: a repro bundle is emitted, the request gets a
//                structured 500, and repeat offenders are refused
//                immediately without re-running.
//
// health / stats / shutdown are cheap and lock-light by design: the
// server handles them inline (off the bounded queue), so they keep
// working while the daemon is saturated — that is the whole point of a
// health endpoint.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "service/cache.hpp"
#include "service/protocol.hpp"
#include "support/telemetry/telemetry.hpp"

namespace fgpar::service {

struct ServiceConfig {
  /// Worker threads executing compile_run requests (<=0: resolve like the
  /// sweep engine — FGPAR_SWEEP_THREADS, else hardware concurrency).
  int workers = 0;
  /// Bounded request queue; a compile_run arriving with the queue full is
  /// rejected with a structured 503 instead of queuing unboundedly.
  std::size_t queue_depth = 16;
  /// Per-request wall-clock deadline, measured from admission (0 = none).
  double request_deadline_seconds = 0.0;
  /// Simulated-cycle budget per measured execution (0 = unlimited);
  /// the deterministic half of the deadline mechanism.
  std::uint64_t cycle_budget = 0;
  /// Compile-cache persistence path ("" = memory-only).
  std::string cache_path;
  std::size_t cache_max_entries = 4096;
  /// Repro bundles for quarantined requests land here ("" = don't emit).
  std::string quarantine_dir;
  /// Fault drill: every Nth *executed* (non-cached) compile_run throws an
  /// injected failure before running, exercising the quarantine + repro +
  /// structured-500 path end to end (0 = off).  The CI soak job and the
  /// quarantine tests both run through this seam.
  std::size_t drill_crash_every = 0;
  /// Telemetry sink shared by all requests (non-owning; null = off).
  /// Each request is bracketed by a "request" span carrying op/code/
  /// cache-hit counters.
  telemetry::TelemetrySink* telemetry = nullptr;
};

class ServiceCore {
 public:
  explicit ServiceCore(const ServiceConfig& config);

  /// Parses one frame payload and dispatches it.  Never throws: anything
  /// malformed becomes a structured 400 (with id 0 when the payload was
  /// too broken to carry one — the protocol is sequential per connection,
  /// so clients correlate by order).
  std::string HandleFrame(std::string_view payload);

  /// Dispatches an already-parsed request.  `admitted` anchors the
  /// deadline (the server passes enqueue time so queue wait counts).
  std::string Handle(const Request& request);
  std::string Handle(const Request& request,
                     std::chrono::steady_clock::time_point admitted);

  /// Structured 503 builders; both count into stats.  The server calls
  /// these at admission time — rejected requests never reach Handle.
  std::string RejectOverloaded(const Request& request,
                               std::size_t depth, std::size_t capacity);
  std::string RejectDraining(const Request& request);
  /// Structured 400 for frame-level violations (oversized declared
  /// length), where no payload was ever read.
  std::string RejectBadFrame(std::string_view message);

  bool shutdown_requested() const {
    return shutdown_requested_.load(std::memory_order_relaxed);
  }

  /// Lets health/stats report live queue depth without the core owning
  /// the queue.
  void set_queue_depth_probe(std::function<std::size_t()> probe) {
    queue_depth_probe_ = std::move(probe);
  }

  CompileCache& cache() { return cache_; }
  const ServiceConfig& config() const { return config_; }

  /// Counter snapshot (also what the stats op serializes).
  std::map<std::string, std::uint64_t> Counters() const;

 private:
  std::string HandleCompileRun(const Request& request,
                               std::chrono::steady_clock::time_point admitted,
                               bool& cache_hit);
  std::string HandleHealth(const Request& request);
  std::string HandleStats(const Request& request);
  std::string HandleShutdown(const Request& request);
  std::string Quarantine(const Request& request, const CacheKey& key,
                         std::string_view kernel_name,
                         std::string_view message);
  void CountResponse(int code);
  void RecordLatency(double seconds);

  const ServiceConfig config_;
  CompileCache cache_;
  std::function<std::size_t()> queue_depth_probe_;
  std::atomic<bool> shutdown_requested_{false};
  std::atomic<std::uint64_t> executed_{0};  // non-cached compile_runs started

  struct QuarantineRecord {
    std::string message;
    std::string repro_bundle;  // bundle name, or "" when not emitted
  };
  mutable std::mutex mutex_;  // guards counters_, quarantine_, latency_*
  std::map<std::string, std::uint64_t> counters_;
  std::map<CacheKey, QuarantineRecord> quarantine_;

  /// compile_run service latency (admission -> response, queue wait
  /// included), in microseconds, kept in a bounded ring so an immortal
  /// daemon cannot grow without bound.  The stats op reports p50/p99 over
  /// this window (latency_p50_us / latency_p99_us / latency_samples).
  static constexpr std::size_t kLatencyWindow = 4096;
  std::vector<std::uint64_t> latency_us_;
  std::size_t latency_next_ = 0;
};

}  // namespace fgpar::service
