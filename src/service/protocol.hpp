// The fgpar-rpc-v1 wire protocol: length-prefixed JSON over a local
// stream socket.
//
// Framing.  Every message — request or response — is one frame:
//
//   [u32 little-endian payload length][payload bytes]
//
// The payload is a single JSON document.  Frames longer than
// kMaxFrameBytes are a protocol violation: the daemon answers with a
// structured 400 and closes the connection instead of buffering an
// attacker-chosen allocation.  A short read (peer vanished mid-frame) is
// reported distinctly from a clean end-of-stream so the server can count
// mid-stream disconnects without treating them as errors.
//
// Requests ({"schema","op","id",...}):
//
//   compile_run — kernel source + run configuration; the daemon compiles,
//                 simulates, verifies, and returns the deterministic
//                 result (served byte-identically from the compile cache
//                 on repeat requests);
//   health      — liveness + queue/worker/buildinfo snapshot, handled
//                 inline so it works even when the request queue is full;
//   stats       — the daemon's counter registry (requests by outcome,
//                 cache hit/miss/eviction, quarantine count);
//   shutdown    — ask the daemon to drain in-flight work and exit 0.
//
// Responses echo {"schema","id","op"} and carry {"status","code"}:
// 200 ok, 400 bad_request (malformed frame/JSON/kernel), 408 deadline,
// 500 internal (including quarantined kernels), 503 rejected (queue full
// or draining).  Every rejection is structured — the daemon never
// silently drops a well-framed request.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>

#include "compiler/backend.hpp"
#include "sim/config.hpp"

namespace fgpar::service {

inline constexpr char kRpcSchema[] = "fgpar-rpc-v1";
/// Upper bound on one frame's payload (requests carry kernel source, not
/// bulk data; 8 MiB is orders of magnitude above any legitimate kernel).
inline constexpr std::uint32_t kMaxFrameBytes = 8u << 20;

// Status codes (HTTP-flavoured so log readers need no legend).
inline constexpr int kOk = 200;
inline constexpr int kBadRequest = 400;
inline constexpr int kDeadline = 408;
inline constexpr int kInternal = 500;
inline constexpr int kRejected = 503;

enum class Op : std::uint8_t { kCompileRun, kHealth, kStats, kShutdown };

std::string_view OpName(Op op);

/// The per-request run configuration, mirroring fgparc's CLI knobs.
/// Every semantic field participates in the cache key (see
/// CanonicalString), so two requests collide only when they are the same
/// job; `tier` alone is excluded — run tiers are bit-identical by
/// contract, so tier-only variants of a request share one cache entry.
struct RunRequestConfig {
  int cores = 4;
  int latency = 5;    // queue transfer latency, cycles
  int capacity = 20;  // queue slots
  int smt = 1;        // hardware threads per physical core
  bool speculate = false;
  bool throughput = false;
  bool tune = false;
  /// Merge-heuristic shape (harness::TunePoint encoding: 0 = affinity,
  /// 1 = multi_pair, 2 = throughput).  The JSON field is the shape name
  /// ("merge": "multi_pair").  With this knob every autotuner
  /// configuration — a TUNE_<kernel>.json best point — is addressable as
  /// a service request; `throughput: true` remains the back-compat
  /// spelling of merge=throughput.
  int merge = 0;
  std::int64_t trip = 400;
  std::uint64_t seed = 0x5EED;
  /// Simulator run tier ("auto", "slow", "fast", "threaded"; see
  /// sim::MachineConfig::force_tier).  Not part of the cache key: all
  /// tiers produce byte-identical results, so pinning a tier only changes
  /// how fast a cold request simulates, never what it returns.
  sim::RunTier tier = sim::RunTier::kAuto;
  /// Execution backend ("sim" or "native"; see harness::RunConfig::
  /// backend).  Unlike `tier`, this IS part of the cache key: a native
  /// run carries extra result fields (measured wall-clock numbers), so a
  /// native response must never be served from — or overwrite — the sim
  /// entry for the same kernel and config.
  compiler::BackendKind backend = compiler::BackendKind::kSim;

  /// Canonical, unambiguous text form — the config half of the
  /// content-addressed cache key.  Field order is fixed; adding a field
  /// later changes every key, which is exactly the invalidation a
  /// semantics change requires.
  std::string CanonicalString() const;
};

struct Request {
  Op op = Op::kHealth;
  std::uint64_t id = 0;
  std::string kernel;  // compile_run: kernel-language source text
  RunRequestConfig config;
};

/// Parses and validates one request payload.  Throws fgpar::Error with a
/// human-readable reason on anything malformed: bad JSON, wrong schema,
/// unknown op, missing kernel, or out-of-range configuration values.
Request ParseRequest(std::string_view payload);

/// Renders a request payload (the client side of ParseRequest).
std::string EncodeRequest(const Request& request);

/// Builds a structured non-200 response.  `extra` entries land in the
/// "error" object next to "kind" and "message" (used for queue depth in
/// 503s and repro-bundle names in 500s).
std::string BuildErrorResponse(
    std::uint64_t id, Op op, int code, std::string_view kind,
    std::string_view message,
    const std::map<std::string, std::uint64_t>& extra = {});

// ---------------------------------------------------------------------------
// Frame I/O over a connected stream-socket fd.
// ---------------------------------------------------------------------------

enum class ReadStatus {
  kFrame,        // a complete frame was read
  kClosed,       // clean end of stream before any byte of a frame
  kDisconnect,   // the peer vanished mid-frame (short read)
  kOversized,    // declared length exceeds kMaxFrameBytes (nothing read)
};

/// Blocking read of one frame.  kOversized leaves the connection
/// undrained — the caller should answer with a structured 400 and close.
ReadStatus ReadFrame(int fd, std::string& payload);

/// Blocking write of one frame; returns false when the peer is gone
/// (EPIPE/reset) — never raises SIGPIPE.
bool WriteFrame(int fd, std::string_view payload);

/// Pure helpers for tests and in-memory use: EncodeFrame prepends the
/// length prefix; DecodeFrame consumes one frame from `buffer` starting
/// at `pos` (advancing it) or returns nullopt when incomplete.  Throws
/// fgpar::Error on an oversized declared length.
std::string EncodeFrame(std::string_view payload);
std::optional<std::string> DecodeFrame(std::string_view buffer,
                                       std::size_t& pos);

}  // namespace fgpar::service
