#include "service/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstddef>
#include <cstdlib>
#include <cstring>
#include <thread>

namespace fgpar::service {

namespace {

int ConnectTcp(const std::string& spec) {
  // spec is "host:port" (the "tcp:" prefix already stripped).
  const std::size_t colon = spec.rfind(':');
  if (colon == std::string::npos || colon + 1 >= spec.size()) {
    errno = EINVAL;
    return -1;
  }
  std::string host = spec.substr(0, colon);
  if (host.empty() || host == "localhost") {
    host = "127.0.0.1";
  }
  const int port = std::atoi(spec.c_str() + colon + 1);
  if (port <= 0 || port > 65535) {
    errno = EINVAL;
    return -1;
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return -1;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    errno = EINVAL;
    return -1;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    return -1;
  }
  return fd;
}

}  // namespace

int ConnectOnce(const std::string& address) {
  if (address.rfind("tcp:", 0) == 0) {
    return ConnectTcp(address.substr(4));
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return -1;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  socklen_t addr_len = sizeof(addr);
  if (address.size() >= sizeof(addr.sun_path)) {
    ::close(fd);
    errno = ENAMETOOLONG;
    return -1;
  }
  if (!address.empty() && address[0] == '@') {
    const std::size_t name_len = address.size() - 1;
    addr.sun_path[0] = '\0';
    std::memcpy(addr.sun_path + 1, address.data() + 1, name_len);
    addr_len =
        static_cast<socklen_t>(offsetof(sockaddr_un, sun_path) + 1 + name_len);
  } else {
    std::memcpy(addr.sun_path, address.c_str(), address.size() + 1);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), addr_len) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    return -1;
  }
  return fd;
}

int ConnectWithBackoff(const std::string& address, double budget_seconds,
                       unsigned cap_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(budget_seconds);
  unsigned backoff_ms = 5;
  for (;;) {
    const int fd = ConnectOnce(address);
    if (fd >= 0) {
      return fd;
    }
    if (std::chrono::steady_clock::now() >= deadline) {
      return -1;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
    backoff_ms = std::min(cap_ms, backoff_ms * 2);
  }
}

}  // namespace fgpar::service
