// The fgpard socket server: connections, admission control, lifecycle.
//
// Transport is a local stream socket.  Paths starting with '@' bind the
// Linux abstract namespace (no filesystem entry, no 108-byte path
// anxiety, auto-cleanup on exit); any other path is a regular filesystem
// socket that is unlinked on clean shutdown.
//
// Threading model, smallest thing that meets the guarantees:
//
//   accept thread   — poll()s the listening socket with a short timeout
//                     so stop requests are noticed promptly; one thread
//                     per accepted connection (clients are few and local);
//   conn threads    — read frames sequentially; health/stats/shutdown are
//                     answered inline (they must work under overload),
//                     compile_run goes through TryEnqueue;
//   worker pool     — sized like the sweep engine's thread fan-out
//                     (FGPAR_SWEEP_THREADS / hardware concurrency when
//                     ServiceConfig::workers <= 0); workers pop jobs and
//                     run ServiceCore::Handle with the admission
//                     timestamp, so queue wait counts against the
//                     request's deadline.
//
// Admission control: the job queue is bounded by
// ServiceConfig::queue_depth.  A compile_run that would overflow it gets
// ServiceCore::RejectOverloaded — a structured 503 with the observed
// depth — immediately, on the connection thread.  The daemon never
// queues unboundedly and never silently drops a well-framed request.
//
// Lifecycle: SIGTERM (or a shutdown request) begins a drain — new
// connections stop being accepted, new compile_runs get a structured 503
// "draining", queued and in-flight jobs finish and their responses are
// delivered, then ServeUntilShutdown returns 0.  SIGKILL needs no
// cooperation: every cached response was persisted before it was
// acknowledged, so a restarted daemon serves byte-identical responses
// from the replayed cache.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/core.hpp"
#include "service/protocol.hpp"

namespace fgpar::service {

class SocketServer {
 public:
  /// `core` must outlive the server.
  SocketServer(ServiceCore& core, std::string socket_path);
  ~SocketServer();

  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  /// Binds and listens; throws fgpar::Error on failure.  After Start the
  /// socket accepts connections even before ServeUntilShutdown runs.
  void Start();

  /// Installs the process-wide SIGTERM/SIGINT drain handler and ignores
  /// SIGPIPE.  Call once from the daemon main; tests that stop the server
  /// programmatically (RequestStop) can skip it.
  static void InstallSignalHandlers();

  /// Serves until a drain is requested (signal, shutdown op, or
  /// RequestStop), then drains — in-flight and queued jobs complete and
  /// their responses are delivered — and returns 0.
  int ServeUntilShutdown();

  /// Programmatic SIGTERM equivalent (thread-safe).
  void RequestStop();

  std::size_t QueueDepth() const;

 private:
  struct Job {
    Request request;
    std::chrono::steady_clock::time_point admitted;
    std::promise<std::string> response;
  };

  void AcceptLoop();
  void WorkerLoop();
  void ServeConnection(int fd);
  bool StopRequested() const;

  ServiceCore& core_;
  const std::string socket_path_;
  int listen_fd_ = -1;

  std::atomic<bool> stop_{false};      // drain requested
  std::atomic<bool> accepting_{false}; // accept loop live

  mutable std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<std::unique_ptr<Job>> queue_;
  std::size_t in_flight_ = 0;  // jobs popped but not yet answered
  bool workers_stop_ = false;

  std::thread accept_thread_;
  std::vector<std::thread> workers_;

  std::mutex conn_mutex_;
  std::vector<int> conn_fds_;
  std::vector<std::thread> conn_threads_;
};

}  // namespace fgpar::service
