// Client-side socket plumbing shared by every fgpar-rpc-v1 consumer
// (fgpar-load, the distributed sweep worker, tests).
//
// Address forms mirror the listeners':
//
//   @name          — Linux abstract-namespace stream socket;
//   tcp:host:port  — TCP (the multi-host transport; host is an IPv4
//                    dotted quad or "localhost");
//   anything else  — filesystem AF_UNIX socket path.
//
// A daemon restart (crash-and-recover soaks, coordinator failover) shows
// up client-side as ECONNREFUSED / ENOENT for however long the process
// takes to come back.  ConnectWithBackoff absorbs exactly that: it retries
// transient connect failures on a deterministic capped-exponential
// schedule (5, 10, 20, ... ms, capped) until the budget elapses, so probes
// measure the service, not the scheduler's restart latency.  The schedule
// is fixed — no randomized jitter — because reproducible soak timings
// matter more here than thundering-herd etiquette on a local socket.
#pragma once

#include <string>

namespace fgpar::service {

/// One connect attempt to `address`; returns the connected fd or -1
/// (errno preserved from the failing call).
int ConnectOnce(const std::string& address);

/// Deterministic capped-backoff connect: retries ConnectOnce until it
/// succeeds or `budget_seconds` of wall clock has elapsed.  Sleeps
/// 5, 10, 20, 40, ... ms between attempts, capped at `cap_ms`.
/// Returns the connected fd or -1 once the budget is exhausted.
int ConnectWithBackoff(const std::string& address, double budget_seconds,
                       unsigned cap_ms = 160);

}  // namespace fgpar::service
