#include "harness/supervisor.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <mutex>
#include <optional>
#include <thread>

#include "harness/checkpoint.hpp"
#include "harness/runner.hpp"
#include "harness/sweep.hpp"
#include "support/rng.hpp"
#include "support/serial.hpp"

namespace fgpar::harness {

namespace {

std::string MessageOf(const std::exception_ptr& exception) {
  try {
    std::rethrow_exception(exception);
  } catch (const std::exception& e) {
    return e.what();
  } catch (...) {
    return "unknown exception";
  }
}

/// Parses a non-negative count from an environment variable (0/unset =
/// disabled).  Used by the kill and drain drills below.
std::size_t CountFromEnv(const char* name) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') {
    return 0;
  }
  char* end = nullptr;
  const unsigned long long value = std::strtoull(env, &end, 10);
  return end != env && *end == '\0' ? static_cast<std::size_t>(value) : 0;
}

/// The SIGTERM drain flag.  sig_atomic_t for the handler; the sweep
/// workers read it through DrainRequested (a plain load is fine — the
/// flag only ever goes 0 -> 1 and staleness merely delays the skip by one
/// point).
volatile std::sig_atomic_t g_drain_requested = 0;

extern "C" void FgparSupervisorOnSigterm(int) { g_drain_requested = 1; }

}  // namespace

bool SweepSupervisor::DrainRequested() { return g_drain_requested != 0; }
void SweepSupervisor::RequestDrain() { g_drain_requested = 1; }
void SweepSupervisor::ResetDrainForTest() { g_drain_requested = 0; }

SweepSupervisor::SweepSupervisor(SupervisorConfig config)
    : config_(std::move(config)) {
  FGPAR_CHECK_MSG(!config_.name.empty(), "SweepSupervisor needs a name");
  FGPAR_CHECK_MSG(config_.global_indices.empty() ||
                      config_.global_indices.size() == config_.labels.size(),
                  "SupervisorConfig::global_indices must map every label "
                  "(got " +
                      std::to_string(config_.global_indices.size()) +
                      " indices for " +
                      std::to_string(config_.labels.size()) + " labels)");
}

std::uint64_t SweepSupervisor::AttemptSeed(std::uint64_t base_seed,
                                           std::size_t index, int attempt) {
  if (attempt == 0) {
    return base_seed;
  }
  // index + 1 so point 0's retry stream differs from the base stream.
  return MixSeed(MixSeed(base_seed, static_cast<std::uint64_t>(index) + 1),
                 static_cast<std::uint64_t>(attempt));
}

SweepOutcome SweepSupervisor::Run(const PointBody& body,
                                  const ReproEmitter& repro) {
  const std::size_t count = config_.labels.size();
  SweepOutcome outcome;
  outcome.payloads.resize(count);
  outcome.completed.assign(count, 0);

  // Distributed slices run under a local index i but present the grid's
  // global index everywhere a point is identified: seeds, journal keys,
  // PointContext, and failures.  Single host: identity.
  const auto global = [this](std::size_t i) {
    return config_.global_indices.empty() ? i : config_.global_indices[i];
  };

  std::optional<SweepCheckpoint> journal;
  if (!config_.checkpoint_path.empty()) {
    const std::uint64_t fingerprint =
        config_.grid_fingerprint != 0
            ? config_.grid_fingerprint
            : GridFingerprint(config_.name, config_.labels);
    journal = config_.resume
                  ? SweepCheckpoint::LoadOrCreate(
                        config_.checkpoint_path, config_.name, fingerprint,
                        config_.slice_fingerprint)
                  : SweepCheckpoint(config_.checkpoint_path, config_.name,
                                    fingerprint, config_.slice_fingerprint);
    for (std::size_t i = 0; i < count; ++i) {
      if (const std::string* payload = journal->PointPayload(global(i))) {
        outcome.payloads[i] = *payload;
        outcome.completed[i] = 1;
        ++outcome.resumed_points;
      }
    }
  }

  if (config_.drain_on_sigterm) {
    std::signal(SIGTERM, FgparSupervisorOnSigterm);
  }
  const std::size_t exit_after = CountFromEnv("FGPAR_SUPERVISOR_EXIT_AFTER");
  const std::size_t sigterm_after =
      CountFromEnv("FGPAR_SUPERVISOR_SIGTERM_AFTER");
  std::mutex mutex;  // guards the journal and the kill counter
  std::size_t journaled_this_run = 0;
  std::atomic<std::size_t> skipped{0};
  std::vector<std::optional<PointFailure>> failed(count);

  detail::RunSweepIndices(
      count, ResolveSweepThreads(config_.sweep_threads), [&](std::size_t i) {
        if (outcome.completed[i]) {
          return;  // replayed from the journal
        }
        if (config_.drain_on_sigterm && DrainRequested()) {
          // SIGTERM drain: never start new work.  The point is neither
          // completed nor failed; --resume recomputes exactly these.
          // Gated on the opt-in: the flag is process-wide and sticky, so a
          // sweep that never installed the handler must not lose points to
          // a leftover request.
          skipped.fetch_add(1, std::memory_order_relaxed);
          return;
        }
        if (config_.skip_point && config_.skip_point(i)) {
          // The coordinator stole this point from our lease: drop it
          // without completing or failing it — its new owner computes it.
          skipped.fetch_add(1, std::memory_order_relaxed);
          return;
        }
        const int attempts = 1 + std::max(0, config_.max_retries);
        PointContext context;
        context.index = global(i);
        context.label = config_.labels[i];
        context.cycle_budget = config_.point_cycle_budget;
        context.deadline_seconds = config_.point_deadline_seconds;

        // Telemetry routing for this point: the shared sink (re-stamped to
        // this point's stream lane) and/or a forensic ring of the last N
        // sim events, teed together when both are configured.
        std::optional<telemetry::RingBufferSink> ring;
        if (config_.failure_ring_capacity > 0) {
          ring.emplace(config_.failure_ring_capacity);
        }
        telemetry::StreamSink lane(config_.telemetry, static_cast<int>(i));
        std::optional<telemetry::FanoutSink> tee;
        if (config_.telemetry != nullptr && ring.has_value()) {
          tee.emplace(std::vector<telemetry::TelemetrySink*>{&lane, &*ring});
          context.telemetry = &*tee;
        } else if (config_.telemetry != nullptr) {
          context.telemetry = &lane;
        } else if (ring.has_value()) {
          context.telemetry = &*ring;
        }

        std::exception_ptr last_error;
        bool deadline_exceeded = false;

        for (int attempt = 0; attempt < attempts; ++attempt) {
          if (attempt > 0 && config_.retry_backoff_seconds > 0.0) {
            const double backoff = std::min(
                config_.retry_backoff_cap_seconds,
                config_.retry_backoff_seconds *
                    static_cast<double>(std::uint64_t{1} << (attempt - 1)));
            std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
          }
          context.attempt = attempt;
          context.seed = AttemptSeed(config_.base_seed, global(i), attempt);
          if (ring.has_value()) {
            ring->Clear();  // last_events reflects the final attempt only
          }
          // The attempt span (category "point" for the first try, "retry"
          // for re-runs) is emitted even when the body throws — the trace
          // shows exactly where the wall-clock went.
          telemetry::ScopedSpan span(config_.telemetry,
                                     attempt == 0 ? "point" : "retry",
                                     context.label, static_cast<int>(i));
          span.Note("index", static_cast<std::int64_t>(global(i)));
          span.Note("attempt", attempt);
          const auto start = std::chrono::steady_clock::now();
          try {
            std::string payload = body(context);
            const double elapsed =
                std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                              start)
                    .count();
            if (config_.point_deadline_seconds > 0.0 &&
                elapsed > config_.point_deadline_seconds) {
              throw DeadlineError(
                  "point " + std::to_string(global(i)) + " (" + context.label +
                  ") exceeded its wall-clock deadline: " +
                  std::to_string(elapsed) + "s > " +
                  std::to_string(config_.point_deadline_seconds) + "s");
            }
            std::lock_guard<std::mutex> lock(mutex);
            outcome.payloads[i] = std::move(payload);
            outcome.completed[i] = 1;
            if (journal) {
              journal->RecordPoint(global(i), outcome.payloads[i]);
              ++journaled_this_run;
              if (exit_after > 0 && journaled_this_run >= exit_after) {
                // The resume drill: die exactly like an external kill -9,
                // with the journal durably holding this point.
                std::raise(SIGKILL);
              }
              if (sigterm_after > 0 && journaled_this_run >= sigterm_after) {
                // The drain drill: a reproducible stand-in for an external
                // SIGTERM arriving mid-sweep.
                std::raise(SIGTERM);
              }
            }
            return;
          } catch (const DeadlineError&) {
            last_error = std::current_exception();
            deadline_exceeded = true;
          } catch (...) {
            last_error = std::current_exception();
            deadline_exceeded = false;
          }
        }

        PointFailure failure;
        failure.index = global(i);
        failure.label = context.label;
        failure.message = MessageOf(last_error);
        failure.attempts = attempts;
        failure.last_seed = context.seed;
        failure.deadline_exceeded = deadline_exceeded;
        failure.exception = last_error;
        if (ring.has_value()) {
          failure.last_events = ring->Events();
        }
        if (repro) {
          try {
            failure.repro_bundle = repro(context, failure);
          } catch (const std::exception& e) {
            failure.message += "; repro bundle emission failed: ";
            failure.message += e.what();
          }
        }
        std::lock_guard<std::mutex> lock(mutex);
        failed[i] = std::move(failure);
      });

  for (std::size_t i = 0; i < count; ++i) {
    if (failed[i]) {
      outcome.failures.push_back(std::move(*failed[i]));
    }
  }
  outcome.skipped_points = skipped.load(std::memory_order_relaxed);
  outcome.stopped = config_.drain_on_sigterm && DrainRequested();
  return outcome;
}

void AddFailurePoints(const SweepOutcome& outcome, BenchArtifact& artifact) {
  for (const PointFailure& failure : outcome.failures) {
    BenchArtifact::Failure f;
    f.label = failure.label;
    f.index = failure.index;
    f.message = failure.message;
    f.attempts = static_cast<std::uint64_t>(failure.attempts);
    f.seed = failure.last_seed;
    f.deadline_exceeded = failure.deadline_exceeded;
    f.repro_bundle = failure.repro_bundle;
    artifact.failures.push_back(std::move(f));
  }
}

std::string EncodeKernelRun(const KernelRun& run) {
  ByteWriter w;
  w.U8(1);  // payload version
  w.Str(run.kernel_name);
  w.U64(run.seq_cycles);
  w.U64(run.par_cycles);
  w.F64(run.speedup);
  w.U32(static_cast<std::uint32_t>(run.cores_used));
  w.U32(static_cast<std::uint32_t>(run.initial_fibers));
  w.U32(static_cast<std::uint32_t>(run.data_deps));
  w.F64(run.load_balance);
  w.U32(static_cast<std::uint32_t>(run.com_ops));
  w.U32(static_cast<std::uint32_t>(run.queues_used));
  w.U64(run.seq_instructions);
  w.U64(run.par_instructions);
  w.U64(run.par_queue_transfers);
  w.U32(static_cast<std::uint32_t>(run.max_queue_occupancy));
  w.Bool(run.fallback_used);
  w.U32(static_cast<std::uint32_t>(run.retries));
  w.Str(run.failure_reason);
  w.U64(run.fault_stats.latency_jitters);
  w.U64(run.fault_stats.jitter_cycles_added);
  w.U64(run.fault_stats.enqueue_rejects);
  w.U64(run.fault_stats.payload_flips);
  w.U64(run.fault_stats.mem_inflations);
  w.U64(run.fault_stats.core_freezes);
  const std::vector<std::uint8_t>& bytes = w.bytes();
  return std::string(bytes.begin(), bytes.end());
}

KernelRun DecodeKernelRun(const std::string& payload) {
  const std::vector<std::uint8_t> bytes(payload.begin(), payload.end());
  ByteReader r(bytes);
  const std::uint8_t version = r.U8();
  FGPAR_CHECK_MSG(version == 1, "unsupported KernelRun payload version " +
                                    std::to_string(version));
  KernelRun run;
  run.kernel_name = r.Str();
  run.seq_cycles = r.U64();
  run.par_cycles = r.U64();
  run.speedup = r.F64();
  run.cores_used = static_cast<int>(r.U32());
  run.initial_fibers = static_cast<int>(r.U32());
  run.data_deps = static_cast<int>(r.U32());
  run.load_balance = r.F64();
  run.com_ops = static_cast<int>(r.U32());
  run.queues_used = static_cast<int>(r.U32());
  run.seq_instructions = r.U64();
  run.par_instructions = r.U64();
  run.par_queue_transfers = r.U64();
  run.max_queue_occupancy = static_cast<int>(r.U32());
  run.fallback_used = r.Bool();
  run.retries = static_cast<int>(r.U32());
  run.failure_reason = r.Str();
  run.fault_stats.latency_jitters = r.U64();
  run.fault_stats.jitter_cycles_added = r.U64();
  run.fault_stats.enqueue_rejects = r.U64();
  run.fault_stats.payload_flips = r.U64();
  run.fault_stats.mem_inflations = r.U64();
  run.fault_stats.core_freezes = r.U64();
  r.CheckFullyConsumed();
  return run;
}

}  // namespace fgpar::harness
