// Machine-readable bench artifacts (BENCH_*.json).
//
// Every experiment binary emits, next to its human-readable table, one
// JSON document describing the full result grid: one point per (kernel,
// machine configuration) pair with its deterministic simulation results
// (speedup, simulated cycles, instruction counts) and, separately, host
// measurements (wall-clock seconds, simulated instructions per host
// second).  The split matters: with host fields excluded, the document is
// a pure function of the experiment inputs — byte-identical across runs,
// hosts, and sweep thread counts — which is what the determinism tests
// assert.  Host fields are confined to the top-level "host" object and the
// per-point "host" objects so consumers (and tests) can strip them
// structurally.
//
// Schema "fgpar-bench-v1" (all keys in lexicographic order):
//   {
//     "schema": "fgpar-bench-v1",
//     "name": "<experiment>",            // e.g. "fig12"
//     "points": [
//       {
//         "label":    "<human label>",   // e.g. "lammps-1 cores=2"
//         "params":   { "<k>": "<v>", ... },   // configuration, strings
//         "metrics":  { "<k>": <double>, ... } // deterministic results
//         "counters": { "<k>": <uint64>, ... } // deterministic counts
//         "host":     { "<k>": <double>, ... } // wall-clock measurements
//       }, ...
//     ],
//     "host": {                          // whole-run host measurements
//       "sweep_threads": <int>,
//       "wall_seconds": <double>, ...
//     }
//   }
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "support/telemetry/sinks.hpp"

namespace fgpar::harness {

struct KernelRun;

struct BenchArtifact {
  struct Point {
    std::string label;
    std::map<std::string, std::string> params;
    std::map<std::string, double> metrics;
    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, double> host;
  };

  /// A quarantined grid point (see harness/supervisor.hpp): the point ran
  /// out of retries and is recorded instead of aborting the sweep.  The
  /// "failures" section is rendered only when non-empty, so clean-run
  /// artifacts are byte-identical to the pre-supervisor format.  All
  /// fields are deterministic (the bundle is referenced by name, not
  /// path, so artifacts from different scratch directories still match).
  struct Failure {
    std::string label;
    std::uint64_t index = 0;
    std::string message;
    std::uint64_t attempts = 0;
    std::uint64_t seed = 0;
    bool deadline_exceeded = false;
    std::string repro_bundle;  // emitted bundle name, or ""
  };

  std::string name;  // experiment id, also names the output file
  std::vector<Point> points;
  std::vector<Failure> failures;       // quarantined points, index order
  std::map<std::string, double> host;  // whole-run host measurements

  /// Renders the document.  With include_host=false the top-level "host"
  /// object and every point's "host" object are omitted, leaving only the
  /// deterministic portion.
  std::string ToJson(bool include_host = true) const;

  /// Writes BENCH_<name>.json into $FGPAR_BENCH_DIR (default: the current
  /// directory) and returns the path written.
  std::string WriteFile() const;
};

/// Fills a point's deterministic fields from one verified kernel run by
/// iterating the artifact-visible entries of KernelRunTelemetry's counter
/// registry: speedup, sequential/parallel cycles and instruction counts,
/// queue traffic, and the resilience counters.
void AddKernelRunFields(const KernelRun& run, BenchArtifact::Point& point);

/// Builds a "compile_<kernel>" artifact from one pipeline run's "pass"
/// telemetry spans (as captured by an AggregatingSink): one point per
/// pass, in pipeline order, with the IR sizes before/after and the pass's
/// own deterministic counters.  Per-pass wall time goes into each point's
/// "host" object and the pipeline total into the top-level "host" object,
/// so the deterministic portion stays byte-identical across runs and
/// hosts.
BenchArtifact MakeCompileStatsArtifact(
    const std::string& kernel, const std::string& pipeline,
    const std::vector<telemetry::SpanRecord>& pass_spans);

}  // namespace fgpar::harness
