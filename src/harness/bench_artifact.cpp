#include "harness/bench_artifact.hpp"

#include <cstdlib>
#include <fstream>

#include "harness/runner.hpp"
#include "support/buildinfo.hpp"
#include "support/error.hpp"
#include "support/json.hpp"

namespace fgpar::harness {

namespace {

void WriteStringMap(JsonWriter& w, const std::map<std::string, std::string>& m) {
  w.BeginObject();
  for (const auto& [key, value] : m) {
    w.Key(key);
    w.String(value);
  }
  w.EndObject();
}

void WriteDoubleMap(JsonWriter& w, const std::map<std::string, double>& m) {
  w.BeginObject();
  for (const auto& [key, value] : m) {
    w.Key(key);
    w.Double(value);
  }
  w.EndObject();
}

void WriteCounterMap(JsonWriter& w,
                     const std::map<std::string, std::uint64_t>& m) {
  w.BeginObject();
  for (const auto& [key, value] : m) {
    w.Key(key);
    w.UInt(value);
  }
  w.EndObject();
}

}  // namespace

std::string BenchArtifact::ToJson(bool include_host) const {
  JsonWriter w;
  w.BeginObject();
  w.Key("schema");
  w.String("fgpar-bench-v1");
  w.Key("name");
  w.String(name);
  w.Key("points");
  w.BeginArray();
  for (const Point& point : points) {
    w.BeginObject();
    w.Key("label");
    w.String(point.label);
    w.Key("params");
    WriteStringMap(w, point.params);
    w.Key("metrics");
    WriteDoubleMap(w, point.metrics);
    w.Key("counters");
    WriteCounterMap(w, point.counters);
    if (include_host) {
      w.Key("host");
      WriteDoubleMap(w, point.host);
    }
    w.EndObject();
  }
  w.EndArray();
  if (!failures.empty()) {
    w.Key("failures");
    w.BeginArray();
    for (const Failure& failure : failures) {
      w.BeginObject();
      w.Key("attempts");
      w.UInt(failure.attempts);
      w.Key("deadline_exceeded");
      w.Bool(failure.deadline_exceeded);
      w.Key("index");
      w.UInt(failure.index);
      w.Key("label");
      w.String(failure.label);
      w.Key("message");
      w.String(failure.message);
      w.Key("repro_bundle");
      w.String(failure.repro_bundle);
      w.Key("seed");
      w.UInt(failure.seed);
      w.EndObject();
    }
    w.EndArray();
  }
  if (include_host) {
    w.Key("host");
    WriteDoubleMap(w, host);
    // Build identity travels with the host section: it varies across
    // compilers and build types, so — like wall-clock fields — it must be
    // absent from the byte-deterministic portion.
    w.Key("buildinfo");
    w.BeginObject();
    w.Key("config_hash");
    w.String(BuildConfigHashHex());
    w.Key("version");
    w.String(BuildVersionString());
    w.EndObject();
  }
  w.EndObject();
  return w.Take();
}

std::string BenchArtifact::WriteFile() const {
  FGPAR_CHECK_MSG(!name.empty(), "BenchArtifact::WriteFile without a name");
  std::string dir = ".";
  if (const char* env = std::getenv("FGPAR_BENCH_DIR")) {
    if (*env != '\0') {
      dir = env;
    }
  }
  // FGPAR_BENCH_DETERMINISTIC=1 strips the host objects from the written
  // file, leaving only the portion that is a pure function of the
  // experiment inputs — used by the golden-output guard tests to diff
  // artifacts byte-for-byte across hosts and refactors.
  bool include_host = true;
  if (const char* env = std::getenv("FGPAR_BENCH_DETERMINISTIC")) {
    if (*env != '\0' && *env != '0') {
      include_host = false;
    }
  }
  const std::string path = dir + "/BENCH_" + name + ".json";
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  FGPAR_CHECK_MSG(out.good(), "cannot open " + path + " for writing");
  out << ToJson(include_host);
  out.close();
  FGPAR_CHECK_MSG(out.good(), "failed writing " + path);
  return path;
}

void AddKernelRunFields(const KernelRun& run, BenchArtifact::Point& point) {
  const telemetry::CounterRegistry registry = KernelRunTelemetry(run);
  registry.ForEachArtifactMetric(
      [&](const std::string& name, double value) {
        point.metrics[name] = value;
      });
  registry.ForEachArtifactCount(
      [&](const std::string& name, std::uint64_t value) {
        point.counters[name] = value;
      });
}

BenchArtifact MakeCompileStatsArtifact(
    const std::string& kernel, const std::string& pipeline,
    const std::vector<telemetry::SpanRecord>& pass_spans) {
  BenchArtifact artifact;
  artifact.name = "compile_" + kernel;
  int index = 0;
  double total_wall_seconds = 0.0;
  for (const telemetry::SpanRecord& span : pass_spans) {
    BenchArtifact::Point point;
    point.label = kernel + " " + pipeline + ":" + span.name;
    point.params["kernel"] = kernel;
    point.params["pipeline"] = pipeline;
    point.params["pass"] = span.name;
    point.params["index"] = std::to_string(index++);
    // The span counters already carry the reserved IR-delta keys
    // (stmts/temps/exprs before/after) next to the pass's Note() counters.
    for (const auto& [key, value] : span.counters) {
      point.counters[key] = static_cast<std::uint64_t>(value);
    }
    point.host["wall_seconds"] = span.wall_seconds;
    total_wall_seconds += span.wall_seconds;
    artifact.points.push_back(std::move(point));
  }
  artifact.host["wall_seconds"] = total_wall_seconds;
  return artifact;
}

}  // namespace fgpar::harness
