// Host-parallel sweep engine for independent simulation points.
//
// Every experiment in bench/ is a grid of independent (kernel, machine
// configuration) points; each point runs a complete compile–simulate–
// verify pipeline with no shared mutable state (the pipeline owns all of
// its machines, and the kernel tables are immutable after first use).
// RunSweep fans such a grid across std::threads and collects results in
// index order, so the output of a sweep is a pure function of its inputs:
// running with 1 thread or N threads produces identical result vectors.
//
// Work distribution is a shared atomic cursor (work stealing at the
// granularity of one point), which keeps long-running points from
// serializing behind a static partition.  Failure handling is aggregate
// and deterministic: every point runs to completion (or failure) even
// after another point has failed, every failure is captured with its grid
// index, and the sweep then throws one SweepError describing all of them
// in index order.  The failure set — like the result vector — is a pure
// function of the grid, independent of the thread count; and a resilient
// caller (the sweep supervisor) gets per-point attribution instead of
// losing every failure after the first.
#pragma once

#include <cstddef>
#include <exception>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "support/error.hpp"

namespace fgpar::harness {

/// One failed sweep point: its grid index, the human-readable message of
/// the exception it threw, and the original exception (rethrowable for
/// callers that need the concrete type).
struct SweepPointFailure {
  std::size_t index = 0;
  std::string message;
  std::exception_ptr exception;
};

/// Aggregate failure of a sweep: every point that threw, in index order.
/// what() lists all of them, so even an unaware catch-and-print caller
/// reports the full picture instead of the first casualty.
class SweepError : public Error {
 public:
  SweepError(std::vector<SweepPointFailure> failures, std::size_t total_points);

  const std::vector<SweepPointFailure>& failures() const { return failures_; }
  std::size_t total_points() const { return total_points_; }

 private:
  std::vector<SweepPointFailure> failures_;
  std::size_t total_points_;
};

/// Number of worker threads a sweep should use.
///
///  * requested >= 1: use exactly that;
///  * otherwise: the FGPAR_SWEEP_THREADS environment variable if set to a
///    positive integer, else std::thread::hardware_concurrency (at least 1).
int ResolveSweepThreads(int requested);

namespace detail {
/// Runs body(0..count-1), each index exactly once, on `threads` workers
/// (clamped to count; <= 1 runs inline on the calling thread).  Every
/// index runs even if earlier ones throw; after all workers drain, any
/// failures are thrown together as one SweepError in index order.
void RunSweepIndices(std::size_t count, int threads,
                     const std::function<void(std::size_t)>& body);
}  // namespace detail

/// Evaluates fn(i) for i in [0, count) on `threads` host threads and
/// returns the results in index order.  fn must be callable concurrently
/// from multiple threads; results are deterministic and independent of the
/// thread count.
template <typename Fn>
auto RunSweep(std::size_t count, int threads, Fn&& fn)
    -> std::vector<decltype(fn(std::size_t{0}))> {
  std::vector<decltype(fn(std::size_t{0}))> results(count);
  detail::RunSweepIndices(count, threads,
                          [&](std::size_t i) { results[i] = fn(i); });
  return results;
}

}  // namespace fgpar::harness
