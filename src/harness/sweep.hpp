// Host-parallel sweep engine for independent simulation points.
//
// Every experiment in bench/ is a grid of independent (kernel, machine
// configuration) points; each point runs a complete compile–simulate–
// verify pipeline with no shared mutable state (the pipeline owns all of
// its machines, and the kernel tables are immutable after first use).
// RunSweep fans such a grid across std::threads and collects results in
// index order, so the output of a sweep is a pure function of its inputs:
// running with 1 thread or N threads produces identical result vectors.
//
// Work distribution is a shared atomic cursor (work stealing at the
// granularity of one point), which keeps long-running points from
// serializing behind a static partition.  Exceptions thrown by a point are
// captured per index and the lowest-index failure is rethrown after all
// workers drain — again matching what a sequential loop would have thrown
// first.
#pragma once

#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

namespace fgpar::harness {

/// Number of worker threads a sweep should use.
///
///  * requested >= 1: use exactly that;
///  * otherwise: the FGPAR_SWEEP_THREADS environment variable if set to a
///    positive integer, else std::thread::hardware_concurrency (at least 1).
int ResolveSweepThreads(int requested);

namespace detail {
/// Runs body(0..count-1), each index exactly once, on `threads` workers
/// (clamped to count; <= 1 runs inline on the calling thread).  If any
/// body invocation throws, the exception for the smallest index is
/// rethrown after all workers finish.
void RunSweepIndices(std::size_t count, int threads,
                     const std::function<void(std::size_t)>& body);
}  // namespace detail

/// Evaluates fn(i) for i in [0, count) on `threads` host threads and
/// returns the results in index order.  fn must be callable concurrently
/// from multiple threads; results are deterministic and independent of the
/// thread count.
template <typename Fn>
auto RunSweep(std::size_t count, int threads, Fn&& fn)
    -> std::vector<decltype(fn(std::size_t{0}))> {
  std::vector<decltype(fn(std::size_t{0}))> results(count);
  detail::RunSweepIndices(count, threads,
                          [&](std::size_t i) { results[i] = fn(i); });
  return results;
}

}  // namespace fgpar::harness
