// The compile–simulate–verify–measure pipeline used by tests, benches, and
// examples.
//
// Every kernel execution is checked three ways before any number is
// reported: the reference interpreter (golden model), the compiled
// sequential program on the simulator, and the compiled fine-grained
// parallel program on 2..N cores must all leave bit-identical memory.
// Speedup is sequential cycles / parallel cycles, measured at core 0's
// halt, exactly like the paper's "speedup over sequential execution time".
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "analysis/profile.hpp"
#include "compiler/compile.hpp"
#include "ir/interp.hpp"
#include "ir/kernel.hpp"
#include "ir/layout.hpp"
#include "sim/machine.hpp"

namespace fgpar::harness {

/// Fills parameter values and initial array contents.  Receives the kernel,
/// its layout, the parameter environment to populate, and the raw memory
/// image (sized layout.end()) to initialize.
using WorkloadInit = std::function<void(const ir::Kernel&, const ir::DataLayout&,
                                        ir::ParamEnv&, std::vector<std::uint64_t>&)>;

struct RunConfig {
  compiler::CompileOptions compile;
  sim::QueueConfig queue;      // paper defaults: 20 slots, 5 cycles
  sim::CacheConfig cache;
  sim::CoreTiming timing;
  /// SMT mode: hardware threads per physical core (Section II's untested
  /// "multiple hardware threads on the same core" option).  The compiled
  /// code is identical; only the machine changes.
  int threads_per_core = 1;
  bool verify = true;          // compare all executions bit-exactly
  bool collect_profile = true; // profile feedback for the cost model
  /// Multi-version compilation (paper Section III-I.1): compile every
  /// candidate partitioning and keep the one that simulates fastest on the
  /// training workload.  When false, the compiler's static makespan
  /// objective chooses.
  bool tune_by_simulation = true;
};

struct KernelRun {
  std::string kernel_name;
  std::uint64_t seq_cycles = 0;
  std::uint64_t par_cycles = 0;
  double speedup = 0.0;
  int cores_used = 0;

  // Table III statistics.
  int initial_fibers = 0;
  int data_deps = 0;
  double load_balance = 0.0;
  int com_ops = 0;
  int queues_used = 0;

  // Extra diagnostics.
  std::uint64_t seq_instructions = 0;
  std::uint64_t par_instructions = 0;
  std::uint64_t par_queue_transfers = 0;
  int max_queue_occupancy = 0;  // high-water mark of any single queue
};

class KernelRunner {
 public:
  KernelRunner(const ir::Kernel& kernel, WorkloadInit init);

  /// Runs the full pipeline for `config`; throws on any mismatch between
  /// the interpreter, sequential, and parallel executions.
  KernelRun Run(const RunConfig& config) const;

  /// Sequential-only measurement (golden-checked).
  std::uint64_t MeasureSequential(const RunConfig& config) const;

  const ir::Kernel& kernel() const { return kernel_; }
  const ir::DataLayout& layout() const { return layout_; }

 private:
  struct Prepared {
    ir::ParamEnv params;
    std::vector<std::uint64_t> image;  // initial memory incl. param block
  };
  Prepared Prepare() const;
  std::vector<std::uint64_t> GoldenMemory(const Prepared& prepared) const;
  sim::MachineConfig MachineConfigFor(const RunConfig& config, int cores) const;
  void LoadImage(sim::Machine& machine, const std::vector<std::uint64_t>& image) const;
  void CompareMemory(const sim::Machine& machine,
                     const std::vector<std::uint64_t>& golden,
                     const std::string& what) const;

  ir::Kernel kernel_;
  ir::DataLayout layout_;
  WorkloadInit init_;
};

}  // namespace fgpar::harness
