// The compile–simulate–verify–measure pipeline used by tests, benches, and
// examples.
//
// Every kernel execution is checked three ways before any number is
// reported: the reference interpreter (golden model), the compiled
// sequential program on the simulator, and the compiled fine-grained
// parallel program on 2..N cores must all leave bit-identical memory.
// Speedup is sequential cycles / parallel cycles, measured at core 0's
// halt, exactly like the paper's "speedup over sequential execution time".
//
// Resilience: the parallel measurement may be run under deterministic
// fault injection (RunConfig::faults) and a stall watchdog.  When the
// parallel machine deadlocks, trips the watchdog, or fails verification,
// the runner retries with reseeded faults up to FallbackPolicy::max_retries
// times and then degrades gracefully to the already-verified sequential
// execution instead of throwing — KernelRun records `fallback_used`,
// `retries`, and `failure_reason` so degraded-mode numbers stay visible.
// Everything — workload initialization, fault schedules, multi-version
// tuning — is derived from the single RunConfig::seed, so any run
// (including a fault-injected one) is bit-reproducible from one integer.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "analysis/profile.hpp"
#include "compiler/backend.hpp"
#include "compiler/compile.hpp"
#include "ir/interp.hpp"
#include "ir/kernel.hpp"
#include "ir/layout.hpp"
#include "model/analytic.hpp"
#include "sim/fault.hpp"
#include "sim/machine.hpp"
#include "support/telemetry/telemetry.hpp"

namespace fgpar::harness {

/// Fills parameter values and initial array contents.  Receives the run's
/// deterministic seed (RunConfig::seed), the kernel, its layout, the
/// parameter environment to populate, and the raw memory image (sized
/// layout.end()) to initialize.  Initializers are free to ignore the seed,
/// but seed-honouring initializers make the whole run reproducible from
/// RunConfig::seed alone.
using WorkloadInit =
    std::function<void(std::uint64_t seed, const ir::Kernel&,
                       const ir::DataLayout&, ir::ParamEnv&,
                       std::vector<std::uint64_t>&)>;

/// Thrown when a simulated execution's memory differs from the golden
/// model.  Distinguished from other errors so the fallback logic can
/// classify fault-induced corruption.
class VerifyError : public Error {
 public:
  explicit VerifyError(std::string message) : Error(std::move(message)) {}
};

/// Thrown when a measured execution exceeds RunConfig::max_cycles: the
/// machine was paused at the budget boundary instead of being allowed to
/// run (or hang) further.  Distinguished so sweep supervision can treat
/// budget overruns as deadline-class failures.
class CycleBudgetError : public Error {
 public:
  explicit CycleBudgetError(std::string message) : Error(std::move(message)) {}
};

/// What the runner does when the parallel execution fails (deadlock,
/// watchdog trip, verify mismatch, or any fault-induced error).
struct FallbackPolicy {
  /// Failed parallel runs are retried this many times with reseeded fault
  /// schedules before falling back.  Retries are skipped when fault
  /// injection is off (reruns would fail identically).
  int max_retries = 2;
  /// After the retry budget: degrade to the verified sequential execution
  /// (true) or rethrow the failure (false).
  bool fall_back_to_sequential = true;
};

struct RunConfig {
  compiler::CompileOptions compile;
  sim::QueueConfig queue;      // paper defaults: 20 slots, 5 cycles
  sim::CacheConfig cache;
  sim::CoreTiming timing;
  /// SMT mode: hardware threads per physical core (Section II's untested
  /// "multiple hardware threads on the same core" option).  The compiled
  /// code is identical; only the machine changes.
  int threads_per_core = 1;
  bool verify = true;          // compare all executions bit-exactly
  bool collect_profile = true; // profile feedback for the cost model
  /// Multi-version compilation (paper Section III-I.1): compile every
  /// candidate partitioning and keep the one that simulates fastest on the
  /// training workload.  When false, the compiler's static makespan
  /// objective chooses.
  bool tune_by_simulation = true;
  /// Select-stage cost model (non-owning; null = the default behaviour
  /// above).  When set, candidates are enumerated and scored by this model
  /// with zero training simulations — it takes precedence over
  /// tune_by_simulation (see compiler::SelectPass).
  const compiler::CostModel* cost_model = nullptr;
  /// When set, the parallel compile's per-candidate explanation records
  /// (compiler::CandidateReport — one per enumerated candidate, built or
  /// rejected, with cost-model attribution) are copied here.  Powers
  /// `fgparc --explain-select`.
  std::vector<compiler::CandidateReport>* candidate_reports_out = nullptr;
  /// The single deterministic seed for the run: workload initialization and
  /// each attempt's fault schedule derive from it (multi-version tuning is
  /// already deterministic).  The default reproduces the historical
  /// SequoiaInit workloads.
  std::uint64_t seed = 0x5EED;
  /// Fault injection for the measured parallel machine (disabled by
  /// default).  The golden model, the sequential baseline, and the tuning
  /// evaluator always run fault-free: they are the trusted reference the
  /// degraded parallel execution is judged against.  FaultConfig::seed is
  /// ignored here; each attempt uses MixSeed(seed, attempt).
  sim::FaultConfig faults;
  /// Stall watchdog for simulated machines (0 = disabled; see
  /// MachineConfig::stall_watchdog_cycles).
  std::uint64_t stall_watchdog_cycles = 0;
  /// Forces every simulated machine onto the instrumented reference run
  /// loop (see MachineConfig::force_slow_path).  Results are bit-identical
  /// either way; used by the fast/slow equivalence tests and benchmarks.
  bool force_slow_path = false;
  /// Pins every simulated machine to one run tier (see
  /// MachineConfig::force_tier; kAuto picks the fastest eligible tier).
  /// Results are bit-identical across tiers — this knob exists so the
  /// sweep engine, fgpard, and micro_sim can pin or compare tiers, and so
  /// the tier-equivalence tests can demand a specific loop.
  sim::RunTier force_tier = sim::RunTier::kAuto;
  /// Execution backend.  kSim (default) runs everything on the simulator.
  /// kNative additionally executes the kernel for real on host threads —
  /// sequential closures on one thread, the selected partition on one
  /// pinned std::thread per core with enq/deq on SPSC rings sized
  /// queue.capacity — verifies both memories against the golden model, and
  /// records measured wall-clock numbers in KernelRun::native_*.  The sim
  /// measurements (and thus every deterministic artifact byte) are
  /// unchanged; native timing is wall-clock-only by design.
  compiler::BackendKind backend = compiler::BackendKind::kSim;
  /// Simulated-cycle budget for the measured sequential and parallel
  /// executions (0 = unlimited).  A run still going at this cycle is
  /// paused at the next loop boundary and reported as a CycleBudgetError —
  /// the per-point deadline mechanism for sweep supervision.  Golden-model
  /// interpretation and multi-version tuning are never budgeted.
  std::uint64_t max_cycles = 0;
  /// Observation hook invoked after each failed parallel attempt (before
  /// any retry), with the failed machine still intact — used to capture a
  /// state snapshot for repro bundles.  Hook errors propagate.
  std::function<void(const sim::Machine& machine, const Error& error,
                     int attempt)>
      on_parallel_failure;
  /// Telemetry sink for the run (non-owning; null = off, keeping every
  /// machine on the fast path).  When set: the parallel compile emits
  /// pipeline/pass spans, and each measured parallel attempt emits sim
  /// events through a StreamSink stamped with the attempt index, so
  /// retries land on distinct trace lanes.  The golden model, the
  /// sequential baseline, and the multi-version tuning runs stay untraced
  /// — they are reference measurements, not the subject of the trace.
  telemetry::TelemetrySink* telemetry = nullptr;
  FallbackPolicy fallback;
};

struct KernelRun {
  std::string kernel_name;
  std::uint64_t seq_cycles = 0;
  std::uint64_t par_cycles = 0;
  double speedup = 0.0;
  int cores_used = 0;

  // Table III statistics.
  int initial_fibers = 0;
  int data_deps = 0;
  double load_balance = 0.0;
  int com_ops = 0;
  int queues_used = 0;

  // Extra diagnostics.
  std::uint64_t seq_instructions = 0;
  std::uint64_t par_instructions = 0;
  std::uint64_t par_queue_transfers = 0;
  int max_queue_occupancy = 0;  // high-water mark of any single queue

  // Resilience diagnostics.
  bool fallback_used = false;      // parallel failed; sequential numbers used
  int retries = 0;                 // failed parallel attempts before success/fallback
  std::string failure_reason;      // empty on a clean run
  sim::FaultStats fault_stats;     // injected-fault counters (last attempt)

  // Threaded-tier translation/deopt counters, summed over the measured
  // sequential and parallel machines (sim.threaded.* in the registry;
  // all zero when the run resolved to a lower tier).
  sim::ThreadedStats threaded_stats;

  // Native-backend measurements (RunConfig::backend == kNative only; never
  // journaled — fgpar_ckpt_v1 carries sim results, and wall-clock numbers
  // are host-dependent by nature).
  bool native_run = false;       // the native backend executed this kernel
  bool native_verified = false;  // both native memories matched the golden model
  double native_seq_seconds = 0.0;
  double native_par_seconds = 0.0;
  double native_speedup = 0.0;   // measured wall-clock seq/par
  std::uint64_t native_queue_transfers = 0;
  int native_rings_used = 0;
  int native_cores = 0;
};

/// The single KernelRun -> named-statistics mapping.  Every consumer of a
/// run's numbers reads this registry instead of plumbing struct fields by
/// hand: bench artifacts iterate the artifact-visible subset (exactly the
/// fgpar-bench-v1 point schema), while wider tables (table3) also read
/// the diagnostic-only entries (initial_fibers, data_deps,
/// max_queue_occupancy).
telemetry::CounterRegistry KernelRunTelemetry(const KernelRun& run);

class KernelRunner {
 public:
  KernelRunner(const ir::Kernel& kernel, WorkloadInit init);

  /// Runs the full pipeline for `config`.  Throws on golden/sequential
  /// mismatches and compile errors; parallel-execution failures follow
  /// config.fallback (by default they degrade to sequential, never throw).
  KernelRun Run(const RunConfig& config) const;

  /// Sequential-only measurement (golden-checked).
  std::uint64_t MeasureSequential(const RunConfig& config) const;

  /// The profile feedback a Run under `config` would collect (Section
  /// III-I.3): one interpretation of the prepared workload through the
  /// cache model.  The autotuner predicts with this so the analytic model
  /// sees the same memory latencies the simulated compile does.
  analysis::ProfileData CollectProfile(const RunConfig& config) const;

  /// Whole-kernel analytic prediction under `config` — no simulation.
  /// Reproduces the candidate a compile under `config` would select
  /// (rewrite front half + static merge over the same profile feedback),
  /// then costs it at execution granularity against the prepared workload
  /// (model::PredictKernelOnWorkload).  The autotuner ranks its search
  /// space with this; the predictor cross-validation bench scores it.
  model::Prediction Predict(const RunConfig& config) const;

  const ir::Kernel& kernel() const { return kernel_; }
  const ir::DataLayout& layout() const { return layout_; }

 private:
  struct Prepared {
    ir::ParamEnv params;
    std::vector<std::uint64_t> image;  // initial memory incl. param block
  };
  Prepared Prepare(const RunConfig& config) const;
  std::vector<std::uint64_t> GoldenMemory(const Prepared& prepared) const;
  sim::MachineConfig MachineConfigFor(const RunConfig& config, int cores) const;
  void LoadImage(sim::Machine& machine, const std::vector<std::uint64_t>& image) const;
  void CompareMemory(const sim::Machine& machine,
                     const std::vector<std::uint64_t>& golden,
                     const std::string& what) const;

  ir::Kernel kernel_;
  ir::DataLayout layout_;
  WorkloadInit init_;
};

}  // namespace fgpar::harness
