#include "harness/autotune.hpp"

#include <algorithm>
#include <cmath>

#include "harness/supervisor.hpp"
#include "model/analytic.hpp"
#include "support/error.hpp"
#include "support/json.hpp"

namespace fgpar::harness {

std::string_view MergeShapeName(int merge) {
  switch (merge) {
    case 0:
      return "affinity";
    case 1:
      return "multi_pair";
    case 2:
      return "throughput";
    default:
      throw Error("unknown merge shape code " + std::to_string(merge));
  }
}

int MergeShapeFromName(std::string_view name) {
  if (name == "affinity") {
    return 0;
  }
  if (name == "multi_pair") {
    return 1;
  }
  if (name == "throughput") {
    return 2;
  }
  throw Error("unknown merge shape name '" + std::string(name) + "'");
}

std::string TunePointLabel(const TunePoint& point) {
  return "c" + std::to_string(point.cores) + " q" +
         std::to_string(point.queue_capacity) + " spec=" +
         (point.speculation ? "1" : "0") + " merge=" +
         std::string(MergeShapeName(point.merge));
}

std::vector<TunePoint> TuneSpace::Enumerate() const {
  std::vector<TunePoint> points;
  for (int cores : core_counts) {
    for (int capacity : queue_capacities) {
      for (int merge : merges) {
        for (bool spec : speculation) {
          TunePoint point;
          point.cores = cores;
          point.queue_capacity = capacity;
          point.speculation = spec;
          point.merge = merge;
          points.push_back(point);
        }
      }
    }
  }
  return points;
}

RunConfig ApplyTunePoint(RunConfig base, const TunePoint& point) {
  base.compile.num_cores = point.cores;
  base.compile.speculation = point.speculation;
  base.compile.multi_pair_merge = point.merge == 1;
  base.compile.throughput_heuristic = point.merge == 2;
  base.queue.capacity = point.queue_capacity;
  base.compile.assumed_queue_capacity = point.queue_capacity;
  return base;
}

const TunePoint& BestPoint(const TuneResult& result) {
  FGPAR_CHECK_MSG(result.best_index < result.candidates.size(),
                  "tune result best_index out of range");
  return result.candidates[result.best_index].point;
}

TuneResult AutotuneKernel(const ir::Kernel& kernel, const WorkloadInit& init,
                          const TuneSpace& space, const TuneOptions& options) {
  TuneResult result;
  result.kernel = kernel.name();

  std::vector<TunePoint> points = space.Enumerate();
  FGPAR_CHECK_MSG(!points.empty(), "autotune space enumerates no points");
  // The default config is part of the space by construction: it must be
  // simulated to anchor the never-worse-than-default guarantee.
  auto default_it = std::find(points.begin(), points.end(),
                              options.default_point);
  if (default_it == points.end()) {
    points.push_back(options.default_point);
    default_it = std::prev(points.end());
  }
  result.default_index =
      static_cast<std::size_t>(default_it - points.begin());
  result.enumerated = points.size();

  KernelRunner runner(kernel, init);
  RunConfig base;
  base.seed = options.seed;
  base.verify = options.verify;
  base.collect_profile = true;
  base.tune_by_simulation = false;  // static selection, same as the predictor

  // ---- predict every point (compile front half only) ----
  result.candidates.reserve(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    TuneCandidate candidate;
    candidate.index = i;
    candidate.point = points[i];
    try {
      const model::Prediction prediction =
          runner.Predict(ApplyTunePoint(base, points[i]));
      candidate.feasible = true;
      candidate.predicted_speedup = prediction.speedup;
    } catch (const Error& e) {
      candidate.note = e.what();
    }
    result.candidates.push_back(std::move(candidate));
  }

  // ---- rank and pick the frontier (top predicted + the default) ----
  std::vector<std::size_t> order(points.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    order[i] = i;
  }
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     const TuneCandidate& ca = result.candidates[a];
                     const TuneCandidate& cb = result.candidates[b];
                     if (ca.feasible != cb.feasible) {
                       return ca.feasible;
                     }
                     if (ca.predicted_speedup != cb.predicted_speedup) {
                       return ca.predicted_speedup > cb.predicted_speedup;
                     }
                     return a < b;
                   });
  const std::size_t target = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::floor(
             options.frontier_fraction *
             static_cast<double>(result.enumerated))));
  std::vector<std::size_t> frontier(
      order.begin(),
      order.begin() + static_cast<std::ptrdiff_t>(
                          std::min(target, order.size())));
  if (std::find(frontier.begin(), frontier.end(), result.default_index) ==
      frontier.end()) {
    // The default replaces the worst frontier member, keeping the
    // simulated share at the configured bound.
    frontier.back() = result.default_index;
  }
  std::sort(frontier.begin(), frontier.end());  // simulate in index order
  result.frontier_size = frontier.size();

  // ---- simulate the frontier under the supervisor ----
  SupervisorConfig supervisor_config;
  supervisor_config.name = "autotune-" + result.kernel;
  for (std::size_t index : frontier) {
    supervisor_config.labels.push_back(
        TunePointLabel(result.candidates[index].point));
  }
  supervisor_config.sweep_threads = options.sweep_threads;
  supervisor_config.base_seed = options.seed;
  supervisor_config.max_retries = options.max_retries;
  supervisor_config.point_deadline_seconds = options.point_deadline_seconds;
  supervisor_config.failure_budget = frontier.size();  // caller judges
  supervisor_config.checkpoint_path = options.checkpoint_path;
  supervisor_config.resume = !options.checkpoint_path.empty();
  SweepSupervisor supervisor(supervisor_config);
  const SweepOutcome outcome = supervisor.Run([&](const PointContext& ctx) {
    RunConfig config = ApplyTunePoint(base, points[frontier[ctx.index]]);
    config.seed = ctx.seed;
    config.max_cycles = ctx.cycle_budget;
    return EncodeKernelRun(runner.Run(config));
  });
  for (std::size_t local = 0; local < frontier.size(); ++local) {
    TuneCandidate& candidate = result.candidates[frontier[local]];
    if (local < outcome.completed.size() && outcome.completed[local]) {
      const KernelRun run = DecodeKernelRun(outcome.payloads[local]);
      candidate.simulated = true;
      candidate.simulated_speedup = run.speedup;
      if (run.fallback_used) {
        candidate.note = "parallel execution fell back to sequential: " +
                         run.failure_reason;
      }
      ++result.simulated;
    }
  }
  for (const PointFailure& failure : outcome.failures) {
    result.candidates[frontier[failure.index]].note = failure.message;
  }

  // ---- choose: the default, unless a frontier member simulated strictly
  // faster (ties keep the default / the earlier index) ----
  result.best_index = result.default_index;
  result.best_speedup =
      result.candidates[result.default_index].simulated_speedup;
  result.default_speedup = result.best_speedup;
  for (std::size_t index : frontier) {
    const TuneCandidate& candidate = result.candidates[index];
    if (candidate.simulated &&
        candidate.simulated_speedup > result.best_speedup) {
      result.best_index = index;
      result.best_speedup = candidate.simulated_speedup;
    }
  }
  return result;
}

// ---- fgpar-tune-v1 codec ---------------------------------------------------

std::string EncodeTuneArtifact(const TuneResult& result) {
  JsonWriter w;
  w.BeginObject();
  w.Key("schema");
  w.String(kTuneSchema);
  w.Key("kernel");
  w.String(result.kernel);
  w.Key("enumerated");
  w.UInt(result.enumerated);
  w.Key("frontier");
  w.UInt(result.frontier_size);
  w.Key("simulated");
  w.UInt(result.simulated);
  w.Key("default_index");
  w.UInt(result.default_index);
  w.Key("best_index");
  w.UInt(result.best_index);
  w.Key("default_speedup");
  w.Double(result.default_speedup);
  w.Key("best_speedup");
  w.Double(result.best_speedup);
  w.Key("candidates");
  w.BeginArray();
  for (const TuneCandidate& candidate : result.candidates) {
    w.BeginObject();
    w.Key("index");
    w.UInt(candidate.index);
    w.Key("cores");
    w.Int(candidate.point.cores);
    w.Key("queue_capacity");
    w.Int(candidate.point.queue_capacity);
    w.Key("speculation");
    w.Bool(candidate.point.speculation);
    w.Key("merge");
    w.String(MergeShapeName(candidate.point.merge));
    w.Key("feasible");
    w.Bool(candidate.feasible);
    w.Key("predicted_speedup");
    w.Double(candidate.predicted_speedup);
    w.Key("simulated");
    w.Bool(candidate.simulated);
    w.Key("simulated_speedup");
    w.Double(candidate.simulated_speedup);
    if (!candidate.note.empty()) {
      w.Key("note");
      w.String(candidate.note);
    }
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.Take();
}

TuneResult ParseTuneArtifact(std::string_view json) {
  const JsonValue doc = ParseJson(json);
  const std::string& schema = doc.Get("schema").AsString();
  if (schema != kTuneSchema) {
    throw Error("tune artifact has schema '" + schema + "', expected '" +
                kTuneSchema + "'");
  }
  TuneResult result;
  result.kernel = doc.Get("kernel").AsString();
  result.enumerated = static_cast<std::size_t>(doc.Get("enumerated").AsU64());
  result.frontier_size = static_cast<std::size_t>(doc.Get("frontier").AsU64());
  result.simulated = static_cast<std::size_t>(doc.Get("simulated").AsU64());
  result.default_index =
      static_cast<std::size_t>(doc.Get("default_index").AsU64());
  result.best_index = static_cast<std::size_t>(doc.Get("best_index").AsU64());
  result.default_speedup = doc.Get("default_speedup").AsDouble();
  result.best_speedup = doc.Get("best_speedup").AsDouble();
  for (const JsonValue& entry : doc.Get("candidates").AsArray()) {
    TuneCandidate candidate;
    candidate.index = static_cast<std::size_t>(entry.Get("index").AsU64());
    candidate.point.cores = static_cast<int>(entry.Get("cores").AsI64());
    candidate.point.queue_capacity =
        static_cast<int>(entry.Get("queue_capacity").AsI64());
    candidate.point.speculation = entry.Get("speculation").AsBool();
    candidate.point.merge =
        MergeShapeFromName(entry.Get("merge").AsString());
    candidate.feasible = entry.Get("feasible").AsBool();
    candidate.predicted_speedup = entry.Get("predicted_speedup").AsDouble();
    candidate.simulated = entry.Get("simulated").AsBool();
    candidate.simulated_speedup = entry.Get("simulated_speedup").AsDouble();
    if (const JsonValue* note = entry.Find("note")) {
      candidate.note = note->AsString();
    }
    result.candidates.push_back(std::move(candidate));
  }
  if (result.best_index >= result.candidates.size() ||
      result.default_index >= result.candidates.size()) {
    throw Error("tune artifact indices out of range");
  }
  return result;
}

}  // namespace fgpar::harness
