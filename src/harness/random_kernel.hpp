// Random kernel generation for property-based testing.
//
// Generates structurally varied but always-valid kernels (random expression
// trees, gathers through an index array, conditionals, reductions) together
// with a matching workload initializer.  The compiler test suite feeds
// these through the full interpreter / sequential / parallel triple check:
// whatever the partitioner decides for an arbitrary program, memory must
// come out bit-identical.
#pragma once

#include <cstdint>

#include "harness/runner.hpp"
#include "ir/kernel.hpp"

namespace fgpar::harness {

struct RandomKernelCase {
  ir::Kernel kernel;
  WorkloadInit init;
};

/// Deterministic in `seed`.  `with_conditionals` adds if/else statements
/// (including an occasional @speculate one); `with_reduction` adds a
/// loop-carried accumulator and an epilogue store.
RandomKernelCase GenerateRandomKernel(std::uint64_t seed,
                                      bool with_conditionals = true,
                                      bool with_reduction = true);

}  // namespace fgpar::harness
