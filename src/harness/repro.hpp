// Self-contained repro bundles for quarantined sweep failures.
//
// When the sweep supervisor quarantines a grid point, the experiment
// binary emits one directory holding everything needed to replay the
// failure on any machine with this toolchain — no access to the original
// sweep, scratch directory, or host required:
//
//   <dir>/<name>/
//     kernel.fk      — the kernel source text, verbatim
//     manifest.json  — schema "fgpar-repro-v1": kernel identity and
//                      workload parameters (trip, fixed f64 params), the
//                      RunConfig fields the run deviated from defaults on
//                      (cores, queue geometry, seed, fault config, budgets,
//                      runner retry policy), and the recorded failure
//     snapshot.bin   — Machine::Snapshot() of the last failed parallel
//                      attempt, taken at the exact failure point ("" when
//                      the failure happened outside a parallel attempt)
//
// `fgpar-repro <dir>` (tools/fgpar_repro.cpp) replays the bundle through
// the full verifying pipeline with the recorded configuration — faults,
// watchdog, and budgets force the instrumented reference loop — and
// reports whether the recorded failure reproduces bit-exactly, comparing
// both the exception text and the machine snapshot at failure.
//
// The manifest stores only fields the harness round-trips explicitly
// (schema v1); RunConfig fields not listed above are assumed to be at
// their defaults, which holds for every experiment binary in bench/.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "harness/runner.hpp"

namespace fgpar::harness {

struct ReproBundle {
  // Provenance.
  std::string experiment;  // e.g. "fig12"
  std::string label;       // grid-point label
  std::uint64_t point_index = 0;
  int attempt = 0;         // supervisor attempt that failed last

  // Workload: kernel source plus the standard-initializer parameters.
  std::string kernel_id;
  std::string kernel_source;
  std::int64_t trip = 400;
  std::map<std::string, double> f64_params;

  // The run configuration (seed included; see header comment for which
  // fields travel).
  RunConfig config;

  // The recorded failure.
  std::string failure_message;
  int failure_attempts = 0;

  // Machine::Snapshot() of the last failed parallel attempt (may be
  // empty, e.g. for golden/sequential failures).
  std::vector<std::uint8_t> snapshot;
};

/// Writes `<dir>/<name>/{kernel.fk,manifest.json,snapshot.bin}` (creating
/// directories) and returns the bundle directory path.
std::string WriteReproBundle(const std::string& dir, const std::string& name,
                             const ReproBundle& bundle);

/// Loads a bundle directory; throws fgpar::Error on a missing file, a
/// schema mismatch, or a malformed manifest.
ReproBundle LoadReproBundle(const std::string& dir);

}  // namespace fgpar::harness
