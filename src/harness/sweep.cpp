#include "harness/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <sstream>
#include <string>
#include <thread>

namespace fgpar::harness {

namespace {

std::string MessageOf(const std::exception_ptr& exception) {
  try {
    std::rethrow_exception(exception);
  } catch (const std::exception& e) {
    return e.what();
  } catch (...) {
    return "unknown exception";
  }
}

std::string DescribeFailures(const std::vector<SweepPointFailure>& failures,
                             std::size_t total_points) {
  std::ostringstream os;
  os << "sweep failed: " << failures.size() << " of " << total_points
     << " points";
  for (const SweepPointFailure& f : failures) {
    os << "\n  point " << f.index << ": " << f.message;
  }
  return os.str();
}

}  // namespace

SweepError::SweepError(std::vector<SweepPointFailure> failures,
                       std::size_t total_points)
    : Error(DescribeFailures(failures, total_points)),
      failures_(std::move(failures)),
      total_points_(total_points) {}

int ResolveSweepThreads(int requested) {
  if (requested >= 1) {
    return requested;
  }
  if (const char* env = std::getenv("FGPAR_SWEEP_THREADS")) {
    char* end = nullptr;
    const long value = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && value >= 1 && value <= 1024) {
      return static_cast<int>(value);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw >= 1 ? static_cast<int>(hw) : 1;
}

namespace detail {

void RunSweepIndices(std::size_t count, int threads,
                     const std::function<void(std::size_t)>& body) {
  if (count == 0) {
    return;
  }
  const std::size_t workers =
      std::min<std::size_t>(threads < 1 ? 1 : static_cast<std::size_t>(threads),
                            count);
  // One exception slot per point; a failure never stops the sweep, so the
  // failure set (like the result vector) is deterministic and identical
  // for every thread count.
  std::vector<std::exception_ptr> errors(count);

  if (workers <= 1) {
    // Inline: no thread overhead; also the deterministic reference the
    // sweep tests compare multi-threaded runs against.
    for (std::size_t i = 0; i < count; ++i) {
      try {
        body(i);
      } catch (...) {
        errors[i] = std::current_exception();
      }
    }
  } else {
    std::atomic<std::size_t> next{0};
    const auto worker = [&]() {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= count) {
          return;
        }
        try {
          body(i);
        } catch (...) {
          errors[i] = std::current_exception();
        }
      }
    };

    std::vector<std::thread> pool;
    pool.reserve(workers - 1);
    for (std::size_t w = 1; w < workers; ++w) {
      pool.emplace_back(worker);
    }
    worker();  // the calling thread is worker 0
    for (std::thread& t : pool) {
      t.join();
    }
  }

  std::vector<SweepPointFailure> failures;
  for (std::size_t i = 0; i < count; ++i) {
    if (errors[i]) {
      failures.push_back(SweepPointFailure{i, MessageOf(errors[i]), errors[i]});
    }
  }
  if (!failures.empty()) {
    throw SweepError(std::move(failures), count);
  }
}

}  // namespace detail
}  // namespace fgpar::harness
