#include "harness/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <string>
#include <thread>

namespace fgpar::harness {

int ResolveSweepThreads(int requested) {
  if (requested >= 1) {
    return requested;
  }
  if (const char* env = std::getenv("FGPAR_SWEEP_THREADS")) {
    char* end = nullptr;
    const long value = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && value >= 1 && value <= 1024) {
      return static_cast<int>(value);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw >= 1 ? static_cast<int>(hw) : 1;
}

namespace detail {

void RunSweepIndices(std::size_t count, int threads,
                     const std::function<void(std::size_t)>& body) {
  if (count == 0) {
    return;
  }
  const std::size_t workers =
      std::min<std::size_t>(threads < 1 ? 1 : static_cast<std::size_t>(threads),
                            count);
  if (workers <= 1) {
    // Inline: identical semantics (including first-failure-by-index) with
    // no thread overhead; also the deterministic reference the sweep tests
    // compare multi-threaded runs against.
    for (std::size_t i = 0; i < count; ++i) {
      body(i);
    }
    return;
  }

  std::atomic<std::size_t> next{0};
  std::vector<std::exception_ptr> errors(count);
  std::atomic<bool> failed{false};

  const auto worker = [&]() {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) {
        return;
      }
      if (failed.load(std::memory_order_relaxed)) {
        // A point already failed; finish fast.  Skipped points keep a null
        // exception slot, and the rethrow below picks the smallest failed
        // index, so the observable error matches a sequential run whenever
        // the first failure is the first index to fail.
        continue;
      }
      try {
        body(i);
      } catch (...) {
        errors[i] = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (std::size_t w = 1; w < workers; ++w) {
    pool.emplace_back(worker);
  }
  worker();  // the calling thread is worker 0
  for (std::thread& t : pool) {
    t.join();
  }

  if (failed.load()) {
    for (std::size_t i = 0; i < count; ++i) {
      if (errors[i]) {
        std::rethrow_exception(errors[i]);
      }
    }
  }
}

}  // namespace detail
}  // namespace fgpar::harness
