#include "harness/runner.hpp"

#include <algorithm>
#include <exception>
#include <sstream>

#include "ir/validate.hpp"
#include "native/codegen.hpp"
#include "native/executor.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"
#include "support/telemetry/sinks.hpp"

namespace fgpar::harness {

namespace {

/// Byte-compares a native run's output memory against the golden image
/// (the native analogue of KernelRunner::CompareMemory, which reads a sim
/// machine instead of a host vector).
void CompareNativeMemory(const std::vector<std::uint64_t>& actual,
                         const std::vector<std::uint64_t>& golden,
                         const std::string& kernel, const std::string& what) {
  for (std::uint64_t addr = 0; addr < golden.size(); ++addr) {
    if (actual[addr] != golden[addr]) {
      std::ostringstream os;
      os << "memory mismatch in " << what << " for kernel '" << kernel
         << "' at address " << addr << ": golden=0x" << std::hex
         << golden[addr] << " actual=0x" << actual[addr];
      throw VerifyError(os.str());
    }
  }
}

/// Run-to-completion under RunConfig::max_cycles: a machine still going at
/// the budget is paused at the next loop boundary and reported as a
/// CycleBudgetError instead of spinning until Machine's own hard limit.
sim::RunResult RunBounded(sim::Machine& machine, std::uint64_t max_cycles,
                          const std::string& kernel, const char* what) {
  if (max_cycles == 0) {
    return machine.Run();
  }
  const sim::PauseResult outcome = machine.RunUntil(max_cycles);
  if (!outcome.finished) {
    throw CycleBudgetError(
        "kernel '" + kernel + "': " + what +
        " exceeded the cycle budget: paused at cycle " +
        std::to_string(machine.now()) + " (budget " +
        std::to_string(max_cycles) + ")");
  }
  return outcome.result;
}

}  // namespace

KernelRunner::KernelRunner(const ir::Kernel& kernel, WorkloadInit init)
    : kernel_(kernel), layout_(kernel_, /*base=*/64), init_(std::move(init)) {
  ir::CheckValid(kernel_);
}

KernelRunner::Prepared KernelRunner::Prepare(const RunConfig& config) const {
  Prepared prepared{ir::ParamEnv(kernel_),
                    std::vector<std::uint64_t>(layout_.end(), 0)};
  init_(config.seed, kernel_, layout_, prepared.params, prepared.image);
  prepared.params.CheckComplete(kernel_);
  // Publish parameter values into the layout's parameter block so compiled
  // code can load them at startup.
  for (const ir::Symbol& sym : kernel_.symbols()) {
    if (sym.kind == ir::SymbolKind::kParam) {
      prepared.image[layout_.ParamAddressOf(sym.id)] = prepared.params.GetRaw(sym.id);
    }
  }
  return prepared;
}

std::vector<std::uint64_t> KernelRunner::GoldenMemory(const Prepared& prepared) const {
  std::vector<std::uint64_t> memory = prepared.image;
  ir::Interpreter interp(kernel_, layout_, prepared.params, memory);
  interp.Run();
  return memory;
}

sim::MachineConfig KernelRunner::MachineConfigFor(const RunConfig& config,
                                                  int cores) const {
  sim::MachineConfig machine;
  machine.num_cores = cores;
  machine.threads_per_core = std::min(config.threads_per_core, cores);
  machine.timing = config.timing;
  machine.cache = config.cache;
  machine.queue = config.queue;
  machine.stall_watchdog_cycles = config.stall_watchdog_cycles;
  machine.force_slow_path = config.force_slow_path;
  machine.force_tier = config.force_tier;
  // Round the data region up to a power-of-two-ish budget with headroom.
  std::uint64_t words = 1024;
  while (words < layout_.end() + 64) {
    words *= 2;
  }
  machine.memory_words = words;
  return machine;
}

void KernelRunner::LoadImage(sim::Machine& machine,
                             const std::vector<std::uint64_t>& image) const {
  for (std::uint64_t addr = 0; addr < image.size(); ++addr) {
    machine.memory().WriteRaw(addr, image[addr]);
  }
}

void KernelRunner::CompareMemory(const sim::Machine& machine,
                                 const std::vector<std::uint64_t>& golden,
                                 const std::string& what) const {
  for (std::uint64_t addr = 0; addr < golden.size(); ++addr) {
    const std::uint64_t actual = machine.memory().ReadRaw(addr);
    if (actual != golden[addr]) {
      std::ostringstream os;
      os << "memory mismatch in " << what << " for kernel '" << kernel_.name()
         << "' at address " << addr << ": golden=0x" << std::hex << golden[addr]
         << " actual=0x" << actual;
      // Identify which symbol the address falls in, for debuggability.
      for (const ir::Symbol& sym : kernel_.symbols()) {
        if (sym.kind == ir::SymbolKind::kParam) {
          continue;
        }
        const std::uint64_t base = layout_.AddressOf(sym.id);
        const std::uint64_t size =
            sym.kind == ir::SymbolKind::kArray
                ? static_cast<std::uint64_t>(sym.array_size)
                : 1;
        if (addr >= base && addr < base + size) {
          os << std::dec << " (symbol " << sym.name << "[" << (addr - base) << "])";
          break;
        }
      }
      throw VerifyError(os.str());
    }
  }
}

std::uint64_t KernelRunner::MeasureSequential(const RunConfig& config) const {
  const Prepared prepared = Prepare(config);
  const isa::Program program =
      compiler::CompileSequential(kernel_, layout_, config.compile);
  sim::Machine machine(MachineConfigFor(config, 1), program);
  LoadImage(machine, prepared.image);
  machine.StartCoreAt(0, "main");
  const sim::RunResult result =
      RunBounded(machine, config.max_cycles, kernel_.name(), "sequential execution");
  if (config.verify) {
    CompareMemory(machine, GoldenMemory(prepared), "sequential codegen");
  }
  return result.core0_halt_cycle;
}

analysis::ProfileData KernelRunner::CollectProfile(const RunConfig& config) const {
  const Prepared prepared = Prepare(config);
  return analysis::ProfileData::Collect(kernel_, layout_, prepared.params,
                                        prepared.image, config.cache);
}

model::Prediction KernelRunner::Predict(const RunConfig& config) const {
  const Prepared prepared = Prepare(config);
  compiler::CompileOptions options = config.compile;
  // Mirror Run: the compile must assume the queues it will execute on.
  options.assumed_queue_capacity = config.queue.capacity;
  analysis::ProfileData profile;
  if (config.collect_profile) {
    profile = analysis::ProfileData::Collect(kernel_, layout_, prepared.params,
                                             prepared.image, config.cache);
  }
  return model::PredictKernelOnWorkload(
      kernel_, options, config.collect_profile ? &profile : nullptr, layout_,
      prepared.params, prepared.image, config.cache);
}

KernelRun KernelRunner::Run(const RunConfig& config) const {
  const Prepared prepared = Prepare(config);
  const std::vector<std::uint64_t> golden = GoldenMemory(prepared);

  // ---- profile feedback (Section III-I.3) ----
  analysis::ProfileData profile;
  if (config.collect_profile) {
    profile = analysis::ProfileData::Collect(kernel_, layout_, prepared.params,
                                             prepared.image, config.cache);
  }

  KernelRun run;
  run.kernel_name = kernel_.name();

  // The static capacity-deadlock checker must reason about the queues the
  // code will actually run on.
  compiler::CompileOptions compile_options = config.compile;
  compile_options.assumed_queue_capacity = config.queue.capacity;

  // ---- sequential baseline ----
  {
    const isa::Program program =
        compiler::CompileSequential(kernel_, layout_, compile_options);
    sim::Machine machine(MachineConfigFor(config, 1), program);
    LoadImage(machine, prepared.image);
    machine.StartCoreAt(0, "main");
    const sim::RunResult result =
        RunBounded(machine, config.max_cycles, kernel_.name(), "sequential execution");
    if (config.verify) {
      CompareMemory(machine, golden, "sequential codegen");
    }
    run.seq_cycles = result.core0_halt_cycle;
    run.seq_instructions = result.instructions;
    run.threaded_stats += machine.threaded_stats();
  }

  // ---- fine-grained parallel ----
  {
    // Dynamic feedback for multi-version compilation: run each candidate
    // on the training image and report its cycles.
    compiler::PartitionEvaluator evaluator =
        [&](const isa::Program& program, int cores) -> std::uint64_t {
      // Train on the hardware the compiler assumes (paper methodology:
      // heuristics are tuned for the default 5-cycle queues even when the
      // deployment hardware differs, as in the Figure 13 sweep).  Training
      // is always fault-free: it ranks candidates, it does not stress them.
      RunConfig training = config;
      training.queue.transfer_latency = config.compile.assumed_transfer_latency;
      sim::Machine machine(MachineConfigFor(training, cores), program);
      LoadImage(machine, prepared.image);
      machine.StartCoreAt(0, compiler::CompiledParallel::kPrimaryEntry);
      for (int c = 1; c < cores; ++c) {
        machine.StartCoreAt(c, compiler::CompiledParallel::kDriverEntry);
      }
      return machine.Run().core0_halt_cycle;
    };
    // With a telemetry sink, the compile contributes its pipeline/pass
    // spans to the same event stream as the measured execution.
    compiler::PipelineInstrumentation compile_instrumentation;
    compile_instrumentation.telemetry = config.telemetry;
    const compiler::CompiledParallel compiled = compiler::CompileParallel(
        kernel_, layout_, compile_options,
        config.collect_profile ? &profile : nullptr,
        config.tune_by_simulation ? &evaluator : nullptr,
        config.telemetry != nullptr ? &compile_instrumentation : nullptr,
        config.cost_model);
    if (config.candidate_reports_out != nullptr) {
      *config.candidate_reports_out = compiled.candidate_reports;
    }
    run.cores_used = compiled.cores_used;
    run.initial_fibers = compiled.partition.initial_fibers;
    run.data_deps = compiled.partition.data_deps;
    run.load_balance = compiled.partition.load_balance;
    run.com_ops = compiled.comm.com_ops();

    // Measured parallel run, optionally under injected faults.  A failed
    // attempt (deadlock, watchdog trip, verification mismatch, or any
    // fault-induced error) is retried with a reseeded fault schedule; when
    // the budget is exhausted the runner degrades to the already-verified
    // sequential execution instead of throwing.
    const bool faults_on = config.faults.AnyEnabled();
    const int attempts =
        faults_on ? 1 + std::max(0, config.fallback.max_retries) : 1;
    bool parallel_ok = false;
    std::exception_ptr last_failure;
    for (int attempt = 0; attempt < attempts && !parallel_ok; ++attempt) {
      sim::MachineConfig mc = MachineConfigFor(config, compiled.cores_used);
      if (faults_on) {
        mc.faults = config.faults;
        mc.faults.seed =
            MixSeed(MixSeed(config.seed, config.faults.seed),
                    static_cast<std::uint64_t>(attempt));
      }
      sim::Machine machine(mc, compiled.program);
      LoadImage(machine, prepared.image);
      machine.StartCoreAt(0, compiler::CompiledParallel::kPrimaryEntry);
      for (int c = 1; c < compiled.cores_used; ++c) {
        machine.StartCoreAt(c, compiler::CompiledParallel::kDriverEntry);
      }
      // Each attempt traces into its own stream lane, so a retried point's
      // attempts stay distinguishable in one trace file.  (An enclosing
      // StreamSink — e.g. the sweep supervisor's per-point lane — restamps
      // again downstream; the outermost lane wins.)
      telemetry::StreamSink attempt_lane(config.telemetry, attempt);
      if (config.telemetry != nullptr) {
        machine.SetTelemetry(&attempt_lane);
      }
      // The observation hook sees every failed attempt — including ones
      // that will propagate — so a repro bundle can capture the machine
      // state at the exact failure point.
      const auto note_failure = [&](const Error& e) {
        if (config.on_parallel_failure) {
          config.on_parallel_failure(machine, e, attempt);
        }
      };
      const auto record_failure = [&](const Error& e) {
        note_failure(e);
        last_failure = std::current_exception();
        run.failure_reason = e.what();
        run.fault_stats = machine.fault_injector().stats();
        ++run.retries;
      };
      try {
        const sim::RunResult result = RunBounded(
            machine, config.max_cycles, kernel_.name(), "parallel execution");
        // Under injected faults, verify even when config.verify is off: a
        // silently corrupted result must trigger retry/fallback, never be
        // reported as a speedup.
        if (config.verify || faults_on) {
          CompareMemory(machine, golden,
                        "parallel codegen (" +
                            std::to_string(compiled.cores_used) + " cores)");
        }
        run.par_cycles = result.core0_halt_cycle;
        run.par_instructions = result.instructions;
        run.par_queue_transfers = machine.queues().TotalTransfers();
        run.queues_used = machine.queues().UsedChannelCount();
        run.max_queue_occupancy = machine.queues().MaxOccupancy();
        run.fault_stats = machine.fault_injector().stats();
        run.threaded_stats += machine.threaded_stats();
        parallel_ok = true;
      } catch (const sim::DeadlockError& e) {
        record_failure(e);
      } catch (const sim::StallError& e) {
        record_failure(e);
      } catch (const VerifyError& e) {
        // A mismatch without faults is a real compiler bug: surface it.
        if (!faults_on) {
          note_failure(e);
          throw;
        }
        record_failure(e);
      } catch (const Error& e) {
        // Injected bit flips can trip arbitrary machine checks (bad
        // addresses, division by zero, ...).  Without faults such errors
        // are genuine and must propagate.
        if (!faults_on) {
          note_failure(e);
          throw;
        }
        record_failure(e);
      }
    }
    if (!parallel_ok) {
      if (!config.fallback.fall_back_to_sequential) {
        std::rethrow_exception(last_failure);
      }
      // Graceful degradation: report the verified sequential execution.
      run.fallback_used = true;
      run.cores_used = 1;
      run.par_cycles = run.seq_cycles;
      run.par_instructions = run.seq_instructions;
      run.par_queue_transfers = 0;
      run.queues_used = 0;
      run.max_queue_occupancy = 0;
    }

    // ---- native-backend execution (real host threads + SPSC rings) ----
    // Runs after the sim measurements so every simulated number (and thus
    // every deterministic artifact byte) is untouched by the backend knob.
    // Both native forms are always verified against the golden model —
    // unverified wall-clock numbers would be meaningless.
    if (config.backend == compiler::BackendKind::kNative) {
      telemetry::ScopedSpan span(config.telemetry, "native", "native.run");
      const std::vector<std::uint64_t> params_raw =
          native::RawParams(kernel_, prepared.params);
      const std::size_t ring_capacity =
          config.queue.capacity > 0
              ? static_cast<std::size_t>(config.queue.capacity)
              : native::SpscRing::kDefaultCapacity;

      std::vector<std::uint64_t> seq_memory = prepared.image;
      const native::NativeRunStats seq_stats = native::ExecuteNative(
          {&kernel_, &layout_, nullptr}, params_raw, seq_memory);
      CompareNativeMemory(seq_memory, golden, kernel_.name(),
                          "native sequential execution");

      std::vector<std::uint64_t> par_memory = prepared.image;
      const native::NativeRunStats par_stats =
          native::ExecuteNative(compiled.lowered(), params_raw, par_memory,
                                ring_capacity);
      CompareNativeMemory(par_memory, golden, kernel_.name(),
                          "native parallel execution (" +
                              std::to_string(par_stats.cores) + " threads)");

      run.native_run = true;
      run.native_verified = true;
      run.native_seq_seconds = seq_stats.wall_seconds;
      run.native_par_seconds = par_stats.wall_seconds;
      run.native_speedup =
          par_stats.wall_seconds > 0.0
              ? seq_stats.wall_seconds / par_stats.wall_seconds
              : 0.0;
      run.native_queue_transfers = par_stats.queue_transfers;
      run.native_rings_used = par_stats.rings_used;
      run.native_cores = par_stats.cores;
      span.Note("native.queue.transfers",
                static_cast<std::int64_t>(par_stats.queue_transfers));
      span.Note("native.queue.rings",
                static_cast<std::int64_t>(par_stats.rings_used));
      span.Note("native.cores", par_stats.cores);
      span.Note("native.verified", 1);
    }
  }

  run.speedup = static_cast<double>(run.seq_cycles) /
                static_cast<double>(std::max<std::uint64_t>(1, run.par_cycles));
  return run;
}

telemetry::CounterRegistry KernelRunTelemetry(const KernelRun& run) {
  telemetry::CounterRegistry registry;
  // Artifact-visible entries: exactly the fgpar-bench-v1 point schema
  // (bench_artifact::AddKernelRunFields iterates these, so adding one here
  // changes artifact bytes — diagnostic entries below do not).
  registry.Metric("speedup", run.speedup);
  registry.Metric("load_balance", run.load_balance);
  registry.Count("seq_cycles", run.seq_cycles);
  registry.Count("par_cycles", run.par_cycles);
  registry.Count("seq_instructions", run.seq_instructions);
  registry.Count("par_instructions", run.par_instructions);
  registry.Count("queue_transfers", run.par_queue_transfers);
  registry.Count("cores_used", static_cast<std::uint64_t>(run.cores_used));
  registry.Count("com_ops", static_cast<std::uint64_t>(run.com_ops));
  registry.Count("queues_used", static_cast<std::uint64_t>(run.queues_used));
  registry.Count("fallback_used", run.fallback_used ? 1 : 0);
  registry.Count("retries", static_cast<std::uint64_t>(run.retries));
  // Diagnostic-only entries (tables, traces — never artifact points).
  registry.Count("initial_fibers",
                 static_cast<std::uint64_t>(run.initial_fibers),
                 /*artifact=*/false);
  registry.Count("data_deps", static_cast<std::uint64_t>(run.data_deps),
                 /*artifact=*/false);
  registry.Count("max_queue_occupancy",
                 static_cast<std::uint64_t>(run.max_queue_occupancy),
                 /*artifact=*/false);
  // Threaded-tier translation observability.  Deliberately artifact=false:
  // these vary with the resolved run tier while every artifact-visible
  // number above is tier-invariant, so bench artifacts (and the service
  // responses derived from them) stay byte-identical across tiers.
  const sim::ThreadedStats& ts = run.threaded_stats;
  registry.Count("sim.threaded.blocks_translated", ts.blocks_translated,
                 /*artifact=*/false);
  registry.Count("sim.threaded.traces", ts.traces, /*artifact=*/false);
  registry.Count("sim.threaded.trace_enters", ts.trace_enters,
                 /*artifact=*/false);
  registry.Count("sim.threaded.trace_exits", ts.trace_exits,
                 /*artifact=*/false);
  registry.Count("sim.threaded.instructions", ts.threaded_instructions,
                 /*artifact=*/false);
  registry.Count("sim.threaded.deopt_memory", ts.deopt_memory,
                 /*artifact=*/false);
  registry.Count("sim.threaded.deopt_queue", ts.deopt_queue,
                 /*artifact=*/false);
  registry.Count("sim.threaded.deopt_call_ret", ts.deopt_call_ret,
                 /*artifact=*/false);
  registry.Count("sim.threaded.deopt_cap", ts.deopt_cap, /*artifact=*/false);
  registry.Count("sim.threaded.deopt_end", ts.deopt_end, /*artifact=*/false);
  registry.Count("sim.threaded.deopt_boundary", ts.deopt_boundary,
                 /*artifact=*/false);
  registry.Count("sim.threaded.deopt_multi_core", ts.deopt_multi_core,
                 /*artifact=*/false);
  // Native-backend entries exist only for native runs, so sim-backend
  // artifacts keep their historical bytes.  The deterministic facts
  // (verification, ring traffic, thread count) are artifact-visible — they
  // define the BENCH_native.json point schema — while wall-clock numbers
  // are host-dependent and stay out of deterministic artifacts by design
  // (INTERNALS.md §14); benches report them via per-point host fields.
  if (run.native_run) {
    registry.Count("native.verified", run.native_verified ? 1 : 0);
    registry.Count("native.queue_transfers", run.native_queue_transfers);
    registry.Count("native.rings_used",
                   static_cast<std::uint64_t>(run.native_rings_used));
    registry.Count("native.cores",
                   static_cast<std::uint64_t>(run.native_cores));
    registry.Metric("native.wall_speedup", run.native_speedup,
                    /*artifact=*/false);
    registry.Metric("native.seq_seconds", run.native_seq_seconds,
                    /*artifact=*/false);
    registry.Metric("native.par_seconds", run.native_par_seconds,
                    /*artifact=*/false);
  }
  return registry;
}

}  // namespace fgpar::harness
