#include "harness/repro.hpp"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "support/error.hpp"
#include "support/json.hpp"

namespace fgpar::harness {

namespace {

constexpr const char kSchema[] = "fgpar-repro-v1";

void WriteWholeFile(const std::filesystem::path& path,
                    const char* data, std::size_t size) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  FGPAR_CHECK_MSG(out.good(), "cannot open " + path.string() + " for writing");
  out.write(data, static_cast<std::streamsize>(size));
  out.close();
  FGPAR_CHECK_MSG(out.good(), "failed writing " + path.string());
}

std::string ReadWholeFile(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  FGPAR_CHECK_MSG(in.good(), "cannot open " + path.string());
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

}  // namespace

std::string WriteReproBundle(const std::string& dir, const std::string& name,
                             const ReproBundle& bundle) {
  const std::filesystem::path root = std::filesystem::path(dir) / name;
  std::error_code ec;
  std::filesystem::create_directories(root, ec);
  FGPAR_CHECK_MSG(!ec, "cannot create repro bundle directory " + root.string() +
                           ": " + ec.message());

  WriteWholeFile(root / "kernel.fk", bundle.kernel_source.data(),
                 bundle.kernel_source.size());
  WriteWholeFile(root / "snapshot.bin",
                 reinterpret_cast<const char*>(bundle.snapshot.data()),
                 bundle.snapshot.size());

  JsonWriter w;
  w.BeginObject();
  w.Key("schema");
  w.String(kSchema);
  w.Key("experiment");
  w.String(bundle.experiment);
  w.Key("label");
  w.String(bundle.label);
  w.Key("point_index");
  w.UInt(bundle.point_index);
  w.Key("attempt");
  w.Int(bundle.attempt);
  w.Key("kernel");
  w.BeginObject();
  w.Key("id");
  w.String(bundle.kernel_id);
  w.Key("trip");
  w.Int(bundle.trip);
  w.Key("f64_params");
  w.BeginObject();
  for (const auto& [key, value] : bundle.f64_params) {
    w.Key(key);
    w.Double(value);
  }
  w.EndObject();
  w.EndObject();
  w.Key("config");
  w.BeginObject();
  w.Key("cores");
  w.Int(bundle.config.compile.num_cores);
  w.Key("speculation");
  w.Bool(bundle.config.compile.speculation);
  w.Key("throughput_heuristic");
  w.Bool(bundle.config.compile.throughput_heuristic);
  w.Key("queue_capacity");
  w.Int(bundle.config.queue.capacity);
  w.Key("transfer_latency");
  w.Int(bundle.config.queue.transfer_latency);
  w.Key("threads_per_core");
  w.Int(bundle.config.threads_per_core);
  w.Key("tune_by_simulation");
  w.Bool(bundle.config.tune_by_simulation);
  w.Key("seed");
  w.UInt(bundle.config.seed);
  w.Key("stall_watchdog_cycles");
  w.UInt(bundle.config.stall_watchdog_cycles);
  w.Key("max_cycles");
  w.UInt(bundle.config.max_cycles);
  w.Key("runner_max_retries");
  w.Int(bundle.config.fallback.max_retries);
  w.Key("faults");
  w.BeginObject();
  w.Key("seed");
  w.UInt(bundle.config.faults.seed);
  w.Key("queue_jitter_prob");
  w.Double(bundle.config.faults.queue_jitter_prob);
  w.Key("queue_jitter_max_cycles");
  w.Int(bundle.config.faults.queue_jitter_max_cycles);
  w.Key("queue_reject_prob");
  w.Double(bundle.config.faults.queue_reject_prob);
  w.Key("payload_flip_prob");
  w.Double(bundle.config.faults.payload_flip_prob);
  w.Key("mem_fault_prob");
  w.Double(bundle.config.faults.mem_fault_prob);
  w.Key("mem_fault_extra_cycles");
  w.Int(bundle.config.faults.mem_fault_extra_cycles);
  w.Key("core_freeze_prob");
  w.Double(bundle.config.faults.core_freeze_prob);
  w.Key("core_freeze_cycles");
  w.Int(bundle.config.faults.core_freeze_cycles);
  w.EndObject();
  w.EndObject();
  w.Key("failure");
  w.BeginObject();
  w.Key("message");
  w.String(bundle.failure_message);
  w.Key("attempts");
  w.Int(bundle.failure_attempts);
  w.EndObject();
  w.EndObject();
  const std::string manifest = w.Take();
  WriteWholeFile(root / "manifest.json", manifest.data(), manifest.size());
  return root.string();
}

ReproBundle LoadReproBundle(const std::string& dir) {
  const std::filesystem::path root(dir);
  const JsonValue manifest = ParseJson(ReadWholeFile(root / "manifest.json"));
  FGPAR_CHECK_MSG(manifest.Get("schema").AsString() == kSchema,
                  dir + "/manifest.json: unsupported schema '" +
                      manifest.Get("schema").AsString() + "' (this build reads " +
                      kSchema + ")");

  ReproBundle bundle;
  bundle.experiment = manifest.Get("experiment").AsString();
  bundle.label = manifest.Get("label").AsString();
  bundle.point_index = manifest.Get("point_index").AsU64();
  bundle.attempt = static_cast<int>(manifest.Get("attempt").AsI64());

  const JsonValue& kernel = manifest.Get("kernel");
  bundle.kernel_id = kernel.Get("id").AsString();
  bundle.trip = kernel.Get("trip").AsI64();
  for (const auto& [key, value] : kernel.Get("f64_params").AsObject()) {
    bundle.f64_params[key] = value.AsDouble();
  }
  bundle.kernel_source = ReadWholeFile(root / "kernel.fk");

  const JsonValue& config = manifest.Get("config");
  bundle.config.compile.num_cores =
      static_cast<int>(config.Get("cores").AsI64());
  bundle.config.compile.speculation = config.Get("speculation").AsBool();
  bundle.config.compile.throughput_heuristic =
      config.Get("throughput_heuristic").AsBool();
  bundle.config.queue.capacity =
      static_cast<int>(config.Get("queue_capacity").AsI64());
  bundle.config.queue.transfer_latency =
      static_cast<int>(config.Get("transfer_latency").AsI64());
  bundle.config.threads_per_core =
      static_cast<int>(config.Get("threads_per_core").AsI64());
  bundle.config.tune_by_simulation = config.Get("tune_by_simulation").AsBool();
  bundle.config.seed = config.Get("seed").AsU64();
  bundle.config.stall_watchdog_cycles =
      config.Get("stall_watchdog_cycles").AsU64();
  bundle.config.max_cycles = config.Get("max_cycles").AsU64();
  bundle.config.fallback.max_retries =
      static_cast<int>(config.Get("runner_max_retries").AsI64());

  const JsonValue& faults = config.Get("faults");
  bundle.config.faults.seed = faults.Get("seed").AsU64();
  bundle.config.faults.queue_jitter_prob =
      faults.Get("queue_jitter_prob").AsDouble();
  bundle.config.faults.queue_jitter_max_cycles =
      static_cast<int>(faults.Get("queue_jitter_max_cycles").AsI64());
  bundle.config.faults.queue_reject_prob =
      faults.Get("queue_reject_prob").AsDouble();
  bundle.config.faults.payload_flip_prob =
      faults.Get("payload_flip_prob").AsDouble();
  bundle.config.faults.mem_fault_prob = faults.Get("mem_fault_prob").AsDouble();
  bundle.config.faults.mem_fault_extra_cycles =
      static_cast<int>(faults.Get("mem_fault_extra_cycles").AsI64());
  bundle.config.faults.core_freeze_prob =
      faults.Get("core_freeze_prob").AsDouble();
  bundle.config.faults.core_freeze_cycles =
      static_cast<int>(faults.Get("core_freeze_cycles").AsI64());
  // The checker must assume the queues the code will run on, exactly like
  // the runner does.
  bundle.config.compile.assumed_queue_capacity = bundle.config.queue.capacity;

  const JsonValue& failure = manifest.Get("failure");
  bundle.failure_message = failure.Get("message").AsString();
  bundle.failure_attempts = static_cast<int>(failure.Get("attempts").AsI64());

  const std::string snapshot = ReadWholeFile(root / "snapshot.bin");
  bundle.snapshot.assign(snapshot.begin(), snapshot.end());
  return bundle;
}

}  // namespace fgpar::harness
