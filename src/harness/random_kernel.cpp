#include "harness/random_kernel.hpp"

#include <bit>

#include "ir/builder.hpp"
#include "support/rng.hpp"

namespace fgpar::harness {
namespace {

using ir::ArrayHandle;
using ir::KernelBuilder;
using ir::ScalarHandle;
using ir::ScalarType;
using ir::TempHandle;
using ir::Val;

constexpr std::int64_t kArraySize = 48;

class Generator {
 public:
  Generator(std::uint64_t seed, bool with_conditionals, bool with_reduction)
      : rng_(seed),
        with_conditionals_(with_conditionals),
        with_reduction_(with_reduction),
        kb_("random_" + std::to_string(seed)) {}

  ir::Kernel Build() {
    scale_ = kb_.ParamF64("scale");
    n_ = kb_.ParamI64("n");
    a_ = kb_.ArrayF64("a", kArraySize);
    b_ = kb_.ArrayF64("b", kArraySize);
    out_ = kb_.ArrayF64("out", kArraySize);
    out2_ = kb_.ArrayF64("out2", kArraySize);
    idx_ = kb_.ArrayI64("idx", kArraySize);
    result_ = kb_.ScalarF64("result");
    TempHandle sum{};
    if (with_reduction_) {
      sum = kb_.DeclCarriedF64("sum", 0.0);
    }

    kb_.StartLoop("i", kb_.ConstI(2), n_);

    // A handful of top-level temporary definitions.
    const int num_temps = static_cast<int>(rng_.NextInt(2, 6));
    for (int t = 0; t < num_temps; ++t) {
      TempHandle temp = kb_.DeclTemp("t" + std::to_string(t), ScalarType::kF64);
      kb_.Assign(temp, RandomF64Expr(3));
      temps_.push_back(temp);
    }

    // Unconditional store.
    kb_.Store(out_, kb_.Iv(), RandomF64Expr(2));

    // Optional conditional store with both arms.
    if (with_conditionals_ && rng_.NextBool(0.8)) {
      Val cond = RandomCond();
      const bool speculate = rng_.NextBool(0.4);
      kb_.If(
          cond, [&] { kb_.Store(out2_, kb_.Iv(), RandomF64Expr(2)); },
          [&] { kb_.Store(out2_, kb_.Iv(), RandomF64Expr(2)); }, speculate);
    } else {
      kb_.Store(out2_, kb_.Iv(), RandomF64Expr(2));
    }

    if (with_reduction_) {
      kb_.Assign(sum, kb_.Read(sum) + ReadSomeTemp());
    }

    kb_.EndLoop();
    if (with_reduction_) {
      kb_.StoreScalar(result_, kb_.Read(sum) * scale_);
    } else {
      kb_.StoreScalar(result_, kb_.ConstF(1.0));
    }
    return kb_.Finish();
  }

 private:
  Val RandomIndex() {
    switch (rng_.NextBelow(4)) {
      case 0:
        return kb_.Iv();
      case 1:
        return kb_.Iv() + kb_.ConstI(rng_.NextInt(-2, 2));
      case 2:
        return kb_.Load(idx_, kb_.Iv());  // gather
      default:
        return kb_.Iv() - kb_.ConstI(rng_.NextInt(0, 2));
    }
  }

  Val ReadSomeTemp() {
    if (temps_.empty()) {
      return kb_.ConstF(rng_.NextDouble(0.5, 2.0));
    }
    return kb_.Read(temps_[rng_.NextBelow(temps_.size())]);
  }

  Val RandomF64Leaf() {
    switch (rng_.NextBelow(5)) {
      case 0:
        return kb_.Load(a_, RandomIndex());
      case 1:
        return kb_.Load(b_, RandomIndex());
      case 2:
        return scale_;
      case 3:
        return kb_.ConstF(rng_.NextDouble(0.25, 4.0));
      default:
        return ReadSomeTemp();
    }
  }

  Val RandomF64Expr(int depth) {
    if (depth <= 0 || rng_.NextBool(0.25)) {
      return RandomF64Leaf();
    }
    switch (rng_.NextBelow(8)) {
      case 0:
        return RandomF64Expr(depth - 1) + RandomF64Expr(depth - 1);
      case 1:
        return RandomF64Expr(depth - 1) - RandomF64Expr(depth - 1);
      case 2:
        return RandomF64Expr(depth - 1) * RandomF64Expr(depth - 1);
      case 3:
        // Division with a denominator bounded away from zero.
        return RandomF64Expr(depth - 1) /
               (kb_.Abs(RandomF64Expr(depth - 1)) + kb_.ConstF(1.0));
      case 4:
        return kb_.Sqrt(kb_.Abs(RandomF64Expr(depth - 1)));
      case 5:
        return kb_.Min(RandomF64Expr(depth - 1), RandomF64Expr(depth - 1));
      case 6:
        return kb_.Max(RandomF64Expr(depth - 1), RandomF64Expr(depth - 1));
      default:
        return -RandomF64Expr(depth - 1);
    }
  }

  Val RandomCond() {
    switch (rng_.NextBelow(3)) {
      case 0:
        return (kb_.Iv() % kb_.ConstI(rng_.NextInt(2, 5))) == kb_.ConstI(0);
      case 1:
        return kb_.Load(idx_, kb_.Iv()) < kb_.ConstI(rng_.NextInt(8, 40));
      default:
        return RandomF64Leaf() < RandomF64Leaf();
    }
  }

  Rng rng_;
  bool with_conditionals_;
  bool with_reduction_;
  KernelBuilder kb_;
  Val scale_;
  Val n_;
  ArrayHandle a_, b_, out_, out2_, idx_;
  ScalarHandle result_;
  std::vector<TempHandle> temps_;
};

}  // namespace

RandomKernelCase GenerateRandomKernel(std::uint64_t seed, bool with_conditionals,
                                      bool with_reduction) {
  Generator generator(seed, with_conditionals, with_reduction);
  RandomKernelCase out{generator.Build(), nullptr};
  // The workload is a property of the generated case, so its data derives
  // from the case seed, not the run seed.
  out.init = [seed](std::uint64_t /*run_seed*/, const ir::Kernel& kernel,
                    const ir::DataLayout& layout, ir::ParamEnv& params,
                    std::vector<std::uint64_t>& memory) {
    Rng rng(seed ^ 0xDA7A0123);
    for (const ir::Symbol& sym : kernel.symbols()) {
      switch (sym.kind) {
        case ir::SymbolKind::kParam:
          if (sym.type == ir::ScalarType::kF64) {
            params.SetF64(sym.id, rng.NextDouble(0.5, 2.0));
          } else {
            params.SetI64(sym.id, kArraySize - 2);  // loop upper bound
          }
          break;
        case ir::SymbolKind::kArray: {
          const std::uint64_t base = layout.AddressOf(sym.id);
          for (std::int64_t i = 0; i < sym.array_size; ++i) {
            if (sym.type == ir::ScalarType::kF64) {
              memory[base + static_cast<std::uint64_t>(i)] =
                  std::bit_cast<std::uint64_t>(rng.NextDouble(0.25, 4.0));
            } else {
              // Index arrays hold safe in-range subscripts.
              memory[base + static_cast<std::uint64_t>(i)] =
                  static_cast<std::uint64_t>(rng.NextInt(0, kArraySize - 1));
            }
          }
          break;
        }
        case ir::SymbolKind::kScalar:
          break;  // outputs start at zero
      }
    }
  };
  return out;
}

}  // namespace fgpar::harness
