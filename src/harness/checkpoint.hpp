// Sweep checkpoint journal ("fgpar-ckpt-v1").
//
// A resilient sweep survives being killed — including kill -9 — between
// points: every completed point is journaled to a small text file, and a
// resumed run skips the points the journal already holds, reproducing the
// exact artifact an uninterrupted run would have written (the payloads are
// the deterministic per-point results, so replay-from-journal and
// recompute are byte-identical by construction).
//
// Format, line-oriented text so a human can inspect progress mid-sweep:
//
//   fgpar-ckpt-v1 <name> <fingerprint-hex16>
//   point <index> <hex payload>
//   ...
//
// The fingerprint is an FNV-1a hash over the sweep's name, point count,
// and per-point labels: a journal written for one grid can never be
// (mis)applied to another — edits to the kernel set, the core counts, or
// the point order all change the fingerprint and are rejected with a
// clear error instead of silently mixing results.
//
// Durability: the journal is rewritten whole through a temp file and an
// atomic rename on every recorded point.  A crash at any instant leaves
// either the previous journal or the new one, never a torn file; grids
// are at most a few hundred points, so the rewrite is microseconds.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace fgpar::harness {

/// Fingerprint of a sweep grid: name, point count, and point labels in
/// order.  Stable across hosts and runs (FNV-1a over the text).
std::uint64_t GridFingerprint(std::string_view name,
                              const std::vector<std::string>& labels);

class SweepCheckpoint {
 public:
  /// A fresh, empty journal bound to (path, name, fingerprint).  Nothing
  /// is written until the first RecordPoint.
  SweepCheckpoint(std::string path, std::string name,
                  std::uint64_t fingerprint);

  /// Loads the journal at `path` if it exists (for --resume); a missing
  /// file yields an empty journal.  Throws fgpar::Error when the file
  /// exists but has the wrong version, belongs to a different sweep name
  /// or grid fingerprint, or is corrupt (bad header, malformed point
  /// line, bad hex, duplicate or out-of-order garbage).
  static SweepCheckpoint LoadOrCreate(std::string path, std::string name,
                                      std::uint64_t fingerprint);

  bool HasPoint(std::size_t index) const;
  /// The journaled payload for `index`, or nullptr if not completed.
  const std::string* PointPayload(std::size_t index) const;
  std::size_t CompletedCount() const { return points_.size(); }

  /// Journals a completed point (its opaque encoded result) and durably
  /// rewrites the file via temp + atomic rename.  Re-recording an index
  /// with a different payload throws: a deterministic sweep can never
  /// legitimately produce two results for one point.
  void RecordPoint(std::size_t index, const std::string& payload);

  const std::string& path() const { return path_; }
  const std::string& name() const { return name_; }
  std::uint64_t fingerprint() const { return fingerprint_; }

 private:
  void WriteFileAtomic() const;

  std::string path_;
  std::string name_;
  std::uint64_t fingerprint_ = 0;
  std::map<std::size_t, std::string> points_;  // index -> opaque payload
};

}  // namespace fgpar::harness
