// Sweep checkpoint journal ("fgpar-ckpt-v1").
//
// A resilient sweep survives being killed — including kill -9 — between
// points: every completed point is journaled to a small text file, and a
// resumed run skips the points the journal already holds, reproducing the
// exact artifact an uninterrupted run would have written (the payloads are
// the deterministic per-point results, so replay-from-journal and
// recompute are byte-identical by construction).
//
// Format, line-oriented text so a human can inspect progress mid-sweep:
//
//   fgpar-ckpt-v1 <name> <fingerprint-hex16> [slice=<hex16>]
//   point <index> <hex payload>
//   ...
//
// The fingerprint is an FNV-1a hash over the sweep's name, point count,
// and per-point labels: a journal written for one grid can never be
// (mis)applied to another — edits to the kernel set, the core counts, or
// the point order all change the fingerprint and are rejected with a
// clear error instead of silently mixing results.
//
// Distributed sweeps add the optional `slice=` header token: a worker
// journaling one slice of a larger grid stamps SliceFingerprint(grid
// fingerprint, its global point indices) next to the grid fingerprint, so
// a worker can never resume against the wrong slice — and a whole-grid
// load can never accidentally adopt a slice journal (or vice versa).
// Journals written before the token existed parse exactly as before: a
// header with no `slice=` token is a whole-grid journal.
//
// Durability: the journal is rewritten whole through a temp file and an
// atomic rename on every recorded point.  A crash at any instant leaves
// either the previous journal or the new one, never a torn file; grids
// are at most a few hundred points, so the rewrite is microseconds.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace fgpar::harness {

/// Fingerprint of a sweep grid: name, point count, and point labels in
/// order.  Stable across hosts and runs (FNV-1a over the text).
std::uint64_t GridFingerprint(std::string_view name,
                              const std::vector<std::string>& labels);

/// Fingerprint of a slice of a grid: the whole-grid fingerprint mixed
/// with the slice's size and global point indices in lease order.  Two
/// leases over the same grid with different point sets — or the same
/// points in a different order — have different slice fingerprints.
/// Never zero (zero is the "whole grid, no slice" sentinel).
std::uint64_t SliceFingerprint(std::uint64_t grid_fingerprint,
                               const std::vector<std::size_t>& indices);

class SweepCheckpoint {
 public:
  /// A fresh, empty journal bound to (path, name, fingerprint).  Nothing
  /// is written until the first RecordPoint.  `slice_fingerprint` != 0
  /// binds the journal to one slice of the grid (see SliceFingerprint).
  SweepCheckpoint(std::string path, std::string name,
                  std::uint64_t fingerprint,
                  std::uint64_t slice_fingerprint = 0);

  /// Loads the journal at `path` if it exists (for --resume); a missing
  /// file yields an empty journal.  Throws fgpar::Error when the file
  /// exists but has the wrong version, belongs to a different sweep name,
  /// grid fingerprint, or slice (a slice journal under a whole-grid
  /// expectation and vice versa both reject), or is corrupt (bad header,
  /// malformed point line, bad hex, duplicate or out-of-order garbage).
  static SweepCheckpoint LoadOrCreate(std::string path, std::string name,
                                      std::uint64_t fingerprint,
                                      std::uint64_t slice_fingerprint = 0);

  bool HasPoint(std::size_t index) const;
  /// The journaled payload for `index`, or nullptr if not completed.
  const std::string* PointPayload(std::size_t index) const;
  std::size_t CompletedCount() const { return points_.size(); }

  /// Journals a completed point (its opaque encoded result) and durably
  /// rewrites the file via temp + atomic rename.  Re-recording an index
  /// with a different payload throws: a deterministic sweep can never
  /// legitimately produce two results for one point.
  void RecordPoint(std::size_t index, const std::string& payload);

  /// Replaces the in-memory point set without touching the file (used by
  /// the distributed coordinator to adopt a tolerantly-merged load; see
  /// dist/journal_merge.hpp).  The next RecordPoint persists everything.
  void RestorePoints(std::map<std::size_t, std::string> points);

  const std::string& path() const { return path_; }
  const std::string& name() const { return name_; }
  std::uint64_t fingerprint() const { return fingerprint_; }
  std::uint64_t slice_fingerprint() const { return slice_fingerprint_; }

 private:
  void WriteFileAtomic() const;

  std::string path_;
  std::string name_;
  std::uint64_t fingerprint_ = 0;
  std::uint64_t slice_fingerprint_ = 0;  // 0 = whole grid
  std::map<std::size_t, std::string> points_;  // index -> opaque payload
};

}  // namespace fgpar::harness
