// Resilient sweep supervision: deadlines, retry, quarantine, resume.
//
// RunSweep (sweep.hpp) gives a grid all-or-nothing semantics: any point
// failure aborts the whole run (now with full attribution, but still
// losing every completed point).  SweepSupervisor layers the production
// posture on top, one policy at a time:
//
//  * deadline — every point gets a host wall-clock budget
//    (point_deadline_seconds) and a simulated cycle budget
//    (point_cycle_budget, delivered to the body through PointContext so
//    it can feed RunConfig::max_cycles / the stall watchdog);
//  * retry — a failed point is retried up to max_retries times with
//    capped exponential backoff; attempt 0 always uses the base seed
//    (so a clean sweep is byte-identical to an unsupervised one) and
//    each retry reseeds deterministically from (base, index, attempt);
//  * quarantine — a point that exhausts its retries becomes a structured
//    PointFailure (exception text, attempt count, last seed, optional
//    repro-bundle name) in the SweepOutcome instead of an exception; the
//    sweep always runs to the end, and the caller decides pass/fail
//    against SupervisorConfig::failure_budget;
//  * resume — completed points are journaled through SweepCheckpoint
//    ("fgpar-ckpt-v1", atomic rename per point), so a sweep killed at any
//    instant — including SIGKILL — resumes by replaying journaled
//    payloads and recomputing only what is missing.  Payloads hold only
//    deterministic results, so a resumed artifact is byte-identical to an
//    uninterrupted run.
//
// The supervisor is domain-agnostic: a point body returns its result as
// an opaque encoded string (see EncodeKernelRun for the KernelRun codec),
// which is exactly what gets journaled.  Everything here is deterministic
// except host wall-clock measurements.
//
// For tests and fault drills, FGPAR_SUPERVISOR_EXIT_AFTER=<n> makes the
// supervisor raise SIGKILL after journaling n new points this run — a
// reproducible stand-in for an external kill -9 mid-sweep.  The graceful
// counterpart, FGPAR_SUPERVISOR_SIGTERM_AFTER=<n>, raises SIGTERM at the
// same place; with SupervisorConfig::drain_on_sigterm the sweep finishes
// in-flight points, journals them, and returns SweepOutcome::stopped so
// the caller exits 0 and a later --resume completes the grid.
#pragma once

#include <cstdint>
#include <exception>
#include <functional>
#include <string>
#include <vector>

#include "harness/bench_artifact.hpp"
#include "support/error.hpp"
#include "support/telemetry/sinks.hpp"

namespace fgpar::harness {

struct KernelRun;

/// A point whose host wall-clock exceeded the configured deadline.  The
/// result (if any) is discarded and the attempt counts as failed.
class DeadlineError : public Error {
 public:
  explicit DeadlineError(std::string message) : Error(std::move(message)) {}
};

struct SupervisorConfig {
  /// Sweep name; names the checkpoint journal and the artifact.
  std::string name;
  /// One label per grid point, in index order.  Together with `name` they
  /// fingerprint the grid: a checkpoint journal from a different grid is
  /// rejected on resume instead of silently merged.
  std::vector<std::string> labels;
  /// Host worker threads (<=0: harness::ResolveSweepThreads).
  int sweep_threads = 0;
  /// Attempt-0 seed for every point (the unsupervised sweep's seed).
  std::uint64_t base_seed = 0x5EED;
  /// Failed points are retried this many times with fresh seeds.
  int max_retries = 0;
  /// Host-side backoff before retry k: base * 2^(k-1), capped.  Zero
  /// disables sleeping (the default — simulator failures are
  /// deterministic in the seed, so backoff only matters for host-level
  /// flakiness such as disk pressure).
  double retry_backoff_seconds = 0.0;
  double retry_backoff_cap_seconds = 2.0;
  /// Host wall-clock budget per attempt (0 = unlimited).
  double point_deadline_seconds = 0.0;
  /// Simulated-cycle budget per attempt, delivered via PointContext
  /// (0 = unlimited).
  std::uint64_t point_cycle_budget = 0;
  /// The sweep reports success while quarantined failures stay within
  /// this budget (see WithinFailureBudget).
  std::size_t failure_budget = 0;
  /// Journal path ("" = no checkpointing).
  std::string checkpoint_path;
  /// Load an existing journal and skip its completed points.  When false
  /// an existing journal is restarted from scratch.
  bool resume = false;
  /// Distributed slices: maps each local grid index to the enclosing
  /// grid's global index.  When set (size must equal labels.size()),
  /// PointContext::index, retry seeding, journal point keys, and
  /// PointFailure::index all use the global index, so running point g in
  /// a slice is bit-identical — same attempt seeds, same journal record —
  /// to running it in the whole grid.  Empty = identity (single host).
  std::vector<std::size_t> global_indices;
  /// Overrides the grid fingerprint stamped into the journal header
  /// (0 = computed from name + labels, the single-host default).  A
  /// distributed worker sets the WHOLE grid's fingerprint here while
  /// `labels` holds only its slice, so an orphaned worker journal still
  /// validates against the full grid when merged offline.
  std::uint64_t grid_fingerprint = 0;
  /// Slice fingerprint stamped into the journal header (see
  /// harness::SliceFingerprint); 0 = whole-grid journal.  Distributed
  /// workers set this so a journal can never resume against the wrong
  /// slice.
  std::uint64_t slice_fingerprint = 0;
  /// Consulted immediately before starting each not-yet-completed point
  /// (with its LOCAL index); returning true skips the point — it is
  /// neither completed nor failed, and counts into
  /// SweepOutcome::skipped_points.  Distributed workers use this to drop
  /// points the coordinator has stolen from their lease mid-run.
  std::function<bool(std::size_t)> skip_point;
  /// Telemetry sink shared by the whole sweep (non-owning; null = off).
  /// Every attempt is bracketed by a host span — category "point" for
  /// attempt 0, "retry" for re-runs — named after the point's label and
  /// carrying `index`/`attempt` counters, and the point body receives the
  /// sink through PointContext::telemetry with the stream lane re-stamped
  /// to the point index, so concurrent points stay distinguishable.
  telemetry::TelemetrySink* telemetry = nullptr;
  /// When > 0, each in-flight point additionally tees its sim events into
  /// a bounded ring of this capacity; a quarantined point's final-attempt
  /// ring contents are published as PointFailure::last_events — "what was
  /// the machine doing right before it failed" forensics.  Works with or
  /// without a shared `telemetry` sink.
  std::size_t failure_ring_capacity = 0;
  /// Graceful SIGTERM: install a handler that asks the sweep to drain —
  /// points already running finish (and are journaled), points not yet
  /// started are skipped, and Run returns with SweepOutcome::stopped set
  /// so the caller can checkpoint, report, and exit 0.  Complements the
  /// SIGKILL/resume guarantee: TERM drains cleanly, KILL is recovered by
  /// --resume.  The handler is process-wide and idempotent.
  bool drain_on_sigterm = false;
};

/// Everything one attempt needs to be exactly reproducible.
struct PointContext {
  std::size_t index = 0;
  std::string label;
  int attempt = 0;            // 0 = first try
  std::uint64_t seed = 0;     // attempt 0: base_seed; retries: reseeded
  std::uint64_t cycle_budget = 0;
  double deadline_seconds = 0.0;
  /// The supervisor's telemetry routing for this attempt (stream lane
  /// already stamped with the point index; includes the failure ring when
  /// configured).  Bodies pass it straight to RunConfig::telemetry.  Null
  /// when the sweep is untraced and no failure ring was requested.
  telemetry::TelemetrySink* telemetry = nullptr;
};

/// A quarantined point: every attempt failed (or overran its deadline).
struct PointFailure {
  std::size_t index = 0;
  std::string label;
  std::string message;        // last attempt's exception text
  int attempts = 0;           // total attempts made (1 + retries)
  std::uint64_t last_seed = 0;
  bool deadline_exceeded = false;  // last failure was the wall-clock deadline
  std::string repro_bundle;   // bundle name from the ReproEmitter, or ""
  std::exception_ptr exception;    // last attempt's exception
  /// The final attempt's last sim events, oldest first (empty unless
  /// SupervisorConfig::failure_ring_capacity > 0).  Event names point at
  /// static opcode storage, so the vector stays valid indefinitely.
  std::vector<telemetry::SimEvent> last_events;
};

struct SweepOutcome {
  std::vector<std::string> payloads;  // encoded result per completed point
  std::vector<char> completed;        // 1 = payload valid
  std::vector<PointFailure> failures; // quarantined points, index order
  std::size_t resumed_points = 0;     // replayed from the journal
  /// SIGTERM drain: the sweep stopped early.  In-flight points finished
  /// (and were journaled); `skipped_points` were never started and are
  /// neither completed nor failed — a --resume run recomputes exactly
  /// those.
  bool stopped = false;
  std::size_t skipped_points = 0;
};

class SweepSupervisor {
 public:
  /// Computes one point attempt and returns its encoded deterministic
  /// result (the journal payload).  Throwing fgpar::Error (or anything
  /// else) marks the attempt failed.
  using PointBody = std::function<std::string(const PointContext&)>;
  /// Called once per quarantined point with the final attempt's context
  /// and the failure record; returns the emitted bundle's name ("" for
  /// none).  Emitter errors are appended to the failure message, never
  /// propagated.
  using ReproEmitter =
      std::function<std::string(const PointContext&, const PointFailure&)>;

  explicit SweepSupervisor(SupervisorConfig config);

  /// Runs the whole grid under the configured policies.  Never throws for
  /// point failures (they are quarantined); does throw for checkpoint
  /// corruption/mismatch and other supervisor-level errors.
  SweepOutcome Run(const PointBody& body, const ReproEmitter& repro = nullptr);

  /// True when the outcome's quarantined failures fit the failure budget
  /// (the process-exit-code policy).
  bool WithinFailureBudget(const SweepOutcome& outcome) const {
    return outcome.failures.size() <= config_.failure_budget;
  }

  /// The deterministic seed for (index, attempt): attempt 0 is the base
  /// seed verbatim, each retry derives a fresh stream.
  static std::uint64_t AttemptSeed(std::uint64_t base_seed, std::size_t index,
                                   int attempt);

  const SupervisorConfig& config() const { return config_; }

  /// The process-wide SIGTERM drain flag (see
  /// SupervisorConfig::drain_on_sigterm).  RequestDrain is what the signal
  /// handler calls; tests use it to simulate a delivered SIGTERM, and
  /// ResetDrainForTest clears the sticky flag between cases.
  static bool DrainRequested();
  static void RequestDrain();
  static void ResetDrainForTest();

 private:
  SupervisorConfig config_;
};

/// Appends a SweepOutcome's quarantined failures to a bench artifact (the
/// "failures" section; omitted entirely when no point failed, keeping
/// clean-run artifacts byte-identical to the pre-supervisor format).
void AddFailurePoints(const SweepOutcome& outcome, BenchArtifact& artifact);

/// Codec for KernelRun checkpoint payloads: a versioned little-endian
/// byte stream of the deterministic fields only (host wall-clock never
/// enters the journal).  Decode rejects truncated or trailing bytes.
std::string EncodeKernelRun(const KernelRun& run);
KernelRun DecodeKernelRun(const std::string& payload);

}  // namespace fgpar::harness
