#include "harness/checkpoint.hpp"

#include <charconv>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "support/error.hpp"
#include "support/serial.hpp"

namespace fgpar::harness {

namespace {
constexpr const char kCheckpointVersion[] = "fgpar-ckpt-v1";

std::string FingerprintHex(std::uint64_t fingerprint) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(fingerprint));
  return buf;
}

std::size_t ParseIndex(std::string_view text, const std::string& path) {
  std::size_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  FGPAR_CHECK_MSG(ec == std::errc() && ptr == text.data() + text.size(),
                  "corrupt checkpoint " + path + ": bad point index '" +
                      std::string(text) + "'");
  return value;
}
}  // namespace

std::uint64_t GridFingerprint(std::string_view name,
                              const std::vector<std::string>& labels) {
  std::uint64_t hash = Fnv1a64(name);
  hash = Fnv1a64(std::to_string(labels.size()), hash);
  for (const std::string& label : labels) {
    hash = Fnv1a64(label, hash);
    // Separator so labels can't be reassociated.  Note the explicit
    // string_view: a bare char* literal would overload-resolve to
    // Fnv1a64(const void*, size_t) with the seed as the byte count.
    hash = Fnv1a64(std::string_view("\x1f", 1), hash);
  }
  return hash;
}

std::uint64_t SliceFingerprint(std::uint64_t grid_fingerprint,
                               const std::vector<std::size_t>& indices) {
  std::uint64_t hash =
      Fnv1a64(std::string_view("slice"), grid_fingerprint);
  hash = Fnv1a64(std::to_string(indices.size()), hash);
  for (const std::size_t index : indices) {
    hash = Fnv1a64(std::to_string(index), hash);
    hash = Fnv1a64(std::string_view("\x1f", 1), hash);
  }
  // 0 means "whole grid" everywhere a slice fingerprint travels; dodge
  // the astronomically unlikely collision deterministically.
  return hash == 0 ? 1 : hash;
}

SweepCheckpoint::SweepCheckpoint(std::string path, std::string name,
                                 std::uint64_t fingerprint,
                                 std::uint64_t slice_fingerprint)
    : path_(std::move(path)),
      name_(std::move(name)),
      fingerprint_(fingerprint),
      slice_fingerprint_(slice_fingerprint) {}

SweepCheckpoint SweepCheckpoint::LoadOrCreate(std::string path,
                                              std::string name,
                                              std::uint64_t fingerprint,
                                              std::uint64_t slice_fingerprint) {
  SweepCheckpoint checkpoint(std::move(path), std::move(name), fingerprint,
                             slice_fingerprint);
  std::ifstream in(checkpoint.path_, std::ios::binary);
  if (!in.good()) {
    return checkpoint;  // no journal yet: fresh sweep
  }

  std::string header;
  FGPAR_CHECK_MSG(static_cast<bool>(std::getline(in, header)),
                  "corrupt checkpoint " + checkpoint.path_ + ": empty file");
  std::istringstream header_stream(header);
  std::string version, file_name, file_fingerprint, file_slice;
  header_stream >> version >> file_name >> file_fingerprint >> file_slice;
  FGPAR_CHECK_MSG(
      version == kCheckpointVersion,
      "unsupported checkpoint version '" + version + "' in " +
          checkpoint.path_ + " (this build reads " + kCheckpointVersion + ")");
  FGPAR_CHECK_MSG(file_name == checkpoint.name_,
                  "checkpoint " + checkpoint.path_ + " belongs to sweep '" +
                      file_name + "', not '" + checkpoint.name_ + "'");
  FGPAR_CHECK_MSG(
      file_fingerprint == FingerprintHex(fingerprint),
      "checkpoint " + checkpoint.path_ +
          " was written for a different grid (fingerprint " + file_fingerprint +
          ", expected " + FingerprintHex(fingerprint) +
          "); the sweep's points changed — delete the checkpoint to start over");
  if (slice_fingerprint == 0) {
    FGPAR_CHECK_MSG(
        file_slice.empty(),
        "checkpoint " + checkpoint.path_ + " belongs to a grid slice (" +
            file_slice +
            "), not the whole grid; a worker journal cannot seed a "
            "whole-grid resume — merge it instead (fgpar-coord --merge-dir)");
  } else {
    const std::string expected = "slice=" + FingerprintHex(slice_fingerprint);
    FGPAR_CHECK_MSG(
        !file_slice.empty(),
        "checkpoint " + checkpoint.path_ +
            " is a whole-grid journal but this run expects slice " + expected);
    FGPAR_CHECK_MSG(
        file_slice == expected,
        "checkpoint " + checkpoint.path_ +
            " was written for a different slice of this grid (" + file_slice +
            ", expected " + expected +
            "); a worker must never resume against the wrong slice");
  }

  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) {
      continue;
    }
    std::istringstream line_stream(line);
    std::string tag, index_text, hex;
    line_stream >> tag >> index_text >> hex;
    FGPAR_CHECK_MSG(tag == "point",
                    "corrupt checkpoint " + checkpoint.path_ +
                        ": unexpected line '" + line + "'");
    const std::size_t index = ParseIndex(index_text, checkpoint.path_);
    FGPAR_CHECK_MSG(!checkpoint.points_.count(index),
                    "corrupt checkpoint " + checkpoint.path_ +
                        ": duplicate point " + std::to_string(index));
    checkpoint.points_[index] = HexDecodeToString(hex);
  }
  return checkpoint;
}

void SweepCheckpoint::RestorePoints(std::map<std::size_t, std::string> points) {
  points_ = std::move(points);
}

bool SweepCheckpoint::HasPoint(std::size_t index) const {
  return points_.count(index) != 0;
}

const std::string* SweepCheckpoint::PointPayload(std::size_t index) const {
  const auto it = points_.find(index);
  return it == points_.end() ? nullptr : &it->second;
}

void SweepCheckpoint::RecordPoint(std::size_t index,
                                  const std::string& payload) {
  const auto it = points_.find(index);
  if (it != points_.end()) {
    FGPAR_CHECK_MSG(it->second == payload,
                    "checkpoint " + path_ + ": point " + std::to_string(index) +
                        " re-recorded with a different result — the sweep is "
                        "not deterministic");
    return;
  }
  points_[index] = payload;
  WriteFileAtomic();
}

void SweepCheckpoint::WriteFileAtomic() const {
  const std::string tmp = path_ + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    FGPAR_CHECK_MSG(out.good(), "cannot open " + tmp + " for writing");
    out << kCheckpointVersion << ' ' << name_ << ' '
        << FingerprintHex(fingerprint_);
    if (slice_fingerprint_ != 0) {
      out << " slice=" << FingerprintHex(slice_fingerprint_);
    }
    out << '\n';
    for (const auto& [index, payload] : points_) {
      out << "point " << index << ' ' << HexEncode(payload) << '\n';
    }
    out.flush();
    FGPAR_CHECK_MSG(out.good(), "failed writing " + tmp);
  }
  FGPAR_CHECK_MSG(std::rename(tmp.c_str(), path_.c_str()) == 0,
                  "failed renaming " + tmp + " to " + path_);
}

}  // namespace fgpar::harness
