// The deterministic per-kernel autotuner: predict everything, simulate
// only the frontier (ROADMAP item 5; ComPar-style config search).
//
// A TuneSpace enumerates per-kernel configurations over the axes the paper
// explores — merge heuristic shape x core count x queue capacity x
// speculation.  Every enumerated point is scored with the analytical
// latency-hiding predictor (src/model/analytic.*) — a compile front half,
// no lowering, no simulation — and only the top-K predicted frontier
// (plus the default config, always) is simulated through the existing
// supervised sweep machinery.  The chosen config is the best *simulated*
// frontier member and is never worse than the default: the default is
// always simulated and only a strictly faster point replaces it.
//
// Everything is deterministic: the enumeration order is fixed, predictor
// scores are pure functions of the kernel + profile, ranking ties break
// toward the lower enumeration index, and the frontier simulations run
// under the supervisor with the standard deterministic seeding.  Results
// are serialized as `fgpar-tune-v1` artifacts so tuned configs are
// addressable by tools, the daemon, and distributed sweeps.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "harness/runner.hpp"
#include "ir/kernel.hpp"

namespace fgpar::harness {

/// One configuration in the search space.
struct TunePoint {
  int cores = 4;
  int queue_capacity = 20;
  bool speculation = false;
  /// Merge heuristic shape: 0 = single-pair affinity (the default),
  /// 1 = multi-pair merging, 2 = the throughput heuristic.
  int merge = 0;

  friend bool operator==(const TunePoint& a, const TunePoint& b) {
    return a.cores == b.cores && a.queue_capacity == b.queue_capacity &&
           a.speculation == b.speculation && a.merge == b.merge;
  }
};

/// "affinity" / "multi_pair" / "throughput"; throws on other values.
std::string_view MergeShapeName(int merge);
/// Parses a MergeShapeName back to its code; throws on unknown names.
int MergeShapeFromName(std::string_view name);

/// Deterministic human-readable label, e.g. "c4 q20 spec=0 merge=affinity".
std::string TunePointLabel(const TunePoint& point);

/// The per-kernel search space; Enumerate() yields points in fixed nested
/// order (cores, then capacities, then merges, then speculation).
struct TuneSpace {
  std::vector<int> core_counts{2, 3, 4};
  std::vector<int> queue_capacities{4, 8, 20};
  std::vector<int> merges{0, 1, 2};
  std::vector<bool> speculation{false, true};

  std::vector<TunePoint> Enumerate() const;
};

/// One enumerated point's full record.
struct TuneCandidate {
  std::size_t index = 0;  // enumeration order
  TunePoint point;
  bool feasible = false;           // predictor front-half compile succeeded
  double predicted_speedup = 0.0;  // 0 when infeasible
  bool simulated = false;          // point was in the simulated frontier
  double simulated_speedup = 0.0;  // 0 unless simulated successfully
  std::string note;                // infeasibility / failure reason, or ""
};

struct TuneOptions {
  /// Upper bound on the simulated share of the enumerated space.  The
  /// frontier size is max(1, floor(fraction * enumerated)), default in.
  double frontier_fraction = 0.25;
  /// The baseline config: always simulated, never beaten by a slower pick.
  TunePoint default_point;
  std::uint64_t seed = 0x5EED;
  int sweep_threads = 0;  // frontier simulation fan-out (<=0: resolve)
  bool verify = true;
  int max_retries = 0;                  // supervisor retries per frontier point
  double point_deadline_seconds = 0.0;  // 0 = unlimited
  std::string checkpoint_path;          // supervisor journal ("" = none)
};

struct TuneResult {
  std::string kernel;
  std::vector<TuneCandidate> candidates;  // enumeration order
  std::size_t enumerated = 0;
  std::size_t frontier_size = 0;  // points picked for simulation
  std::size_t simulated = 0;      // simulations that produced a result
  std::size_t best_index = 0;     // chosen config (candidate index)
  std::size_t default_index = 0;
  double best_speedup = 0.0;     // simulated speedup of the chosen config
  double default_speedup = 0.0;  // simulated speedup of the default config
};

/// Runs the full predict-rank-simulate-choose loop for one kernel.
TuneResult AutotuneKernel(const ir::Kernel& kernel, const WorkloadInit& init,
                          const TuneSpace& space, const TuneOptions& options);

/// Applies a tune point's knobs onto a run configuration (compile cores,
/// merge shape, speculation, queue capacity + the capacity the deadlock
/// checker assumes).
RunConfig ApplyTunePoint(RunConfig base, const TunePoint& point);

/// The chosen config of a result.
const TunePoint& BestPoint(const TuneResult& result);

// ---- fgpar-tune-v1 artifact codec -----------------------------------------

inline constexpr char kTuneSchema[] = "fgpar-tune-v1";

/// Deterministic JSON rendering (every field is simulation-derived or
/// static; no host data enters the artifact).
std::string EncodeTuneArtifact(const TuneResult& result);

/// Parses an artifact back; throws fgpar::Error on wrong schema or shape.
TuneResult ParseTuneArtifact(std::string_view json);

}  // namespace fgpar::harness
