// Opcode definitions for the simulated machine.
//
// The instruction set is a small load/store RISC ISA modelled loosely on a
// PowerPC A2-class in-order core, extended — exactly as Section II of the
// paper describes — with `enq`/`deq` instructions that move register values
// through dedicated core-to-core hardware queues.  There are separate queue
// instructions for general-purpose (integer) and floating-point values,
// mirroring the paper's separate GPR and FPR queues.
//
// Memory is word-addressed: one address names one 64-bit slot that holds
// either an int64 or a double (the opcode determines the interpretation).
#pragma once

#include <cstdint>
#include <string_view>

namespace fgpar::isa {

enum class Opcode : std::uint8_t {
  // ---- integer ALU (gpr x gpr -> gpr) ----
  kAddI,
  kSubI,
  kMulI,
  kDivI,  // traps (simulator Error) on divide-by-zero
  kRemI,
  kAndI,
  kOrI,
  kXorI,
  kShlI,
  kShrI,  // arithmetic shift right
  kMinI,
  kMaxI,
  // ---- integer moves / immediates ----
  kLiI,   // gpr[dst] = imm
  kMovI,  // gpr[dst] = gpr[src1]
  // ---- integer comparisons (gpr result: 0 or 1) ----
  kCeqI,
  kCneI,
  kCltI,
  kCleI,
  // ---- floating-point ALU (fpr x fpr -> fpr) ----
  kAddF,
  kSubF,
  kMulF,
  kDivF,
  kNegF,   // unary: fpr[dst] = -fpr[src1]
  kAbsF,   // unary
  kSqrtF,  // unary
  kMinF,
  kMaxF,
  kFmaF,  // fpr[dst] = fpr[src1] * fpr[src2] + fpr[dst]
  // ---- floating-point moves / immediates / conversions ----
  kLiF,   // fpr[dst] = fimm
  kMovF,  // fpr[dst] = fpr[src1]
  kItoF,  // fpr[dst] = double(gpr[src1])
  kFtoI,  // gpr[dst] = int64(trunc(fpr[src1]))
  // ---- floating-point comparisons (gpr result: 0 or 1) ----
  kCeqF,
  kCltF,
  kCleF,
  // ---- memory (word-addressed 64-bit slots) ----
  kLdI,   // gpr[dst] = mem[gpr[src1] + imm]
  kLdIX,  // gpr[dst] = mem[gpr[src1] + gpr[src2]]
  kStI,   // mem[gpr[src1] + imm] = gpr[dst]     (dst is the VALUE register)
  kStIX,  // mem[gpr[src1] + gpr[src2]] = gpr[dst]
  kLdF,   // fpr[dst] = mem[gpr[src1] + imm]
  kLdFX,  // fpr[dst] = mem[gpr[src1] + gpr[src2]]
  kStF,   // mem[gpr[src1] + imm] = fpr[dst]
  kStFX,  // mem[gpr[src1] + gpr[src2]] = fpr[dst]
  // ---- control flow ----
  kJmp,    // pc = imm
  kBz,     // if (gpr[src1] == 0) pc = imm
  kBnz,    // if (gpr[src1] != 0) pc = imm
  kCall,   // push pc+1; pc = imm
  kCallR,  // push pc+1; pc = gpr[src1]   (used by the runtime driver)
  kRet,    // pc = pop
  kHalt,   // core stops
  kNop,
  // ---- hardware communication queues (Section II of the paper) ----
  kEnqI,  // enqueue gpr[src1] to the int queue toward core `queue`
  kDeqI,  // dequeue from the int queue from core `queue` into gpr[dst]
  kEnqF,  // enqueue fpr[src1] to the fp queue toward core `queue`
  kDeqF,  // dequeue from the fp queue from core `queue` into fpr[dst]
};

/// Number of opcodes (for table sizing).
inline constexpr int kNumOpcodes = static_cast<int>(Opcode::kDeqF) + 1;

/// Mnemonic for disassembly ("addi", "enqf", ...).
std::string_view OpcodeName(Opcode op);

/// Classification helpers used by the simulator and the code generator.
bool IsBranch(Opcode op);     // jmp/bz/bnz (not call/ret)
bool IsLoad(Opcode op);       // ldi/ldix/ldf/ldfx
bool IsStore(Opcode op);      // sti/stix/stf/stfx
bool IsQueueOp(Opcode op);    // enq/deq (either class)
bool IsEnqueue(Opcode op);    // enqi/enqf
bool IsDequeue(Opcode op);    // deqi/deqf
bool IsFpQueueOp(Opcode op);  // enqf/deqf
bool IsCallOrRet(Opcode op);  // call/callr/ret (call-stack ops)

/// True for opcodes the direct-threaded simulator tier (sim/threaded.hpp)
/// can bake into a compiled trace: pure register ALU/moves/compares,
/// immediates, branches, halt, and nop.  Loads/stores (cache-model
/// boundary), queue ops (cross-core timing), and call/ret (call-stack
/// depth checks) always deoptimize to the interpreted tiers.
bool IsThreadedTraceable(Opcode op);

/// Register-file sizes of the simulated core.
inline constexpr int kNumGpr = 64;
inline constexpr int kNumFpr = 64;

}  // namespace fgpar::isa
