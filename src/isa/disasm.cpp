#include "isa/disasm.hpp"

#include <sstream>

#include "support/error.hpp"
#include "support/str.hpp"

namespace fgpar::isa {
namespace {

std::string G(std::uint8_t r) { return "r" + std::to_string(r); }
std::string F(std::uint8_t r) { return "f" + std::to_string(r); }

enum class Shape {
  kGGG,     // dst, a, b (all gpr)
  kGG,      // dst, a
  kFFF,
  kFF,
  kGFF,     // gpr dst, fpr a, fpr b (fp compares)
  kFG,      // fpr dst, gpr src (itof)
  kGF,      // gpr dst, fpr src (ftoi)
  kImmI,    // dst, imm
  kImmF,    // dst, fimm
  kLoadG,   // dst, [base + imm]
  kLoadGX,  // dst, [base + idx]
  kLoadF,
  kLoadFX,
  kStoreG,
  kStoreGX,
  kStoreF,
  kStoreFX,
  kJump,
  kBranch,
  kCallR,
  kBare,
  kQueueG,
  kQueueF,
};

Shape ShapeOf(Opcode op) {
  switch (op) {
    case Opcode::kAddI: case Opcode::kSubI: case Opcode::kMulI: case Opcode::kDivI:
    case Opcode::kRemI: case Opcode::kAndI: case Opcode::kOrI: case Opcode::kXorI:
    case Opcode::kShlI: case Opcode::kShrI: case Opcode::kMinI: case Opcode::kMaxI:
    case Opcode::kCeqI: case Opcode::kCneI: case Opcode::kCltI: case Opcode::kCleI:
      return Shape::kGGG;
    case Opcode::kMovI:
      return Shape::kGG;
    case Opcode::kAddF: case Opcode::kSubF: case Opcode::kMulF: case Opcode::kDivF:
    case Opcode::kMinF: case Opcode::kMaxF: case Opcode::kFmaF:
      return Shape::kFFF;
    case Opcode::kNegF: case Opcode::kAbsF: case Opcode::kSqrtF: case Opcode::kMovF:
      return Shape::kFF;
    case Opcode::kCeqF: case Opcode::kCltF: case Opcode::kCleF:
      return Shape::kGFF;
    case Opcode::kItoF:
      return Shape::kFG;
    case Opcode::kFtoI:
      return Shape::kGF;
    case Opcode::kLiI:
      return Shape::kImmI;
    case Opcode::kLiF:
      return Shape::kImmF;
    case Opcode::kLdI:
      return Shape::kLoadG;
    case Opcode::kLdIX:
      return Shape::kLoadGX;
    case Opcode::kLdF:
      return Shape::kLoadF;
    case Opcode::kLdFX:
      return Shape::kLoadFX;
    case Opcode::kStI:
      return Shape::kStoreG;
    case Opcode::kStIX:
      return Shape::kStoreGX;
    case Opcode::kStF:
      return Shape::kStoreF;
    case Opcode::kStFX:
      return Shape::kStoreFX;
    case Opcode::kJmp: case Opcode::kCall:
      return Shape::kJump;
    case Opcode::kBz: case Opcode::kBnz:
      return Shape::kBranch;
    case Opcode::kCallR:
      return Shape::kCallR;
    case Opcode::kRet: case Opcode::kHalt: case Opcode::kNop:
      return Shape::kBare;
    case Opcode::kEnqI: case Opcode::kDeqI:
      return Shape::kQueueG;
    case Opcode::kEnqF: case Opcode::kDeqF:
      return Shape::kQueueF;
  }
  FGPAR_UNREACHABLE("bad opcode");
}

}  // namespace

std::string Disassemble(const Instruction& i) {
  std::ostringstream os;
  os << OpcodeName(i.op) << ' ';
  switch (ShapeOf(i.op)) {
    case Shape::kGGG: os << G(i.dst) << ", " << G(i.src1) << ", " << G(i.src2); break;
    case Shape::kGG: os << G(i.dst) << ", " << G(i.src1); break;
    case Shape::kFFF: os << F(i.dst) << ", " << F(i.src1) << ", " << F(i.src2); break;
    case Shape::kFF: os << F(i.dst) << ", " << F(i.src1); break;
    case Shape::kGFF: os << G(i.dst) << ", " << F(i.src1) << ", " << F(i.src2); break;
    case Shape::kFG: os << F(i.dst) << ", " << G(i.src1); break;
    case Shape::kGF: os << G(i.dst) << ", " << F(i.src1); break;
    case Shape::kImmI: os << G(i.dst) << ", " << i.imm; break;
    case Shape::kImmF: os << F(i.dst) << ", " << i.fimm; break;
    case Shape::kLoadG: os << G(i.dst) << ", [" << G(i.src1) << " + " << i.imm << ']'; break;
    case Shape::kLoadGX: os << G(i.dst) << ", [" << G(i.src1) << " + " << G(i.src2) << ']'; break;
    case Shape::kLoadF: os << F(i.dst) << ", [" << G(i.src1) << " + " << i.imm << ']'; break;
    case Shape::kLoadFX: os << F(i.dst) << ", [" << G(i.src1) << " + " << G(i.src2) << ']'; break;
    case Shape::kStoreG: os << '[' << G(i.src1) << " + " << i.imm << "], " << G(i.dst); break;
    case Shape::kStoreGX: os << '[' << G(i.src1) << " + " << G(i.src2) << "], " << G(i.dst); break;
    case Shape::kStoreF: os << '[' << G(i.src1) << " + " << i.imm << "], " << F(i.dst); break;
    case Shape::kStoreFX: os << '[' << G(i.src1) << " + " << G(i.src2) << "], " << F(i.dst); break;
    case Shape::kJump: os << '@' << i.imm; break;
    case Shape::kBranch: os << G(i.src1) << ", @" << i.imm; break;
    case Shape::kCallR: os << G(i.src1); break;
    case Shape::kBare: break;
    case Shape::kQueueG:
      os << "q" << i.queue << (IsDequeue(i.op) ? (", " + G(i.dst)) : (", " + G(i.src1)));
      break;
    case Shape::kQueueF:
      os << "q" << i.queue << (IsDequeue(i.op) ? (", " + F(i.dst)) : (", " + F(i.src1)));
      break;
  }
  return os.str();
}

std::string DisassembleProgram(const Program& program) {
  // Invert the symbol table so labels print at their pc.
  std::multimap<std::int64_t, std::string> by_pc;
  for (const auto& [name, pc] : program.symbols()) {
    by_pc.emplace(pc, name);
  }
  std::ostringstream os;
  for (std::int64_t pc = 0; pc < static_cast<std::int64_t>(program.size()); ++pc) {
    auto [lo, hi] = by_pc.equal_range(pc);
    for (auto it = lo; it != hi; ++it) {
      os << it->second << ":\n";
    }
    os << PadLeft(std::to_string(pc), 5) << "  "
       << PadRight(Disassemble(program.at(pc)), 36);
    if (!program.CommentAt(pc).empty()) {
      os << " ; " << program.CommentAt(pc);
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace fgpar::isa
