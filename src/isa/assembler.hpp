// Assembler: builds Programs with symbolic labels and forward references.
//
// Used directly by tests/benches for hand-written machine programs, and by
// the compiler backend (src/compiler/lower.cpp) as its emission interface.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "isa/program.hpp"

namespace fgpar::isa {

/// Opaque label handle.
struct Label {
  int id = -1;
};

/// Register operand wrappers so call sites read unambiguously.
struct Gpr {
  std::uint8_t index = 0;
};
struct Fpr {
  std::uint8_t index = 0;
};

class Assembler {
 public:
  Assembler();

  // ---- labels ----
  Label NewLabel();
  /// Creates a label that is also exported in the Program symbol table.
  Label NewNamedLabel(const std::string& name);
  /// Binds `label` to the current emission position.
  void Bind(Label label);

  /// Attaches a debug comment to the next emitted instruction.
  void Comment(std::string text);

  // ---- integer ALU ----
  void AddI(Gpr dst, Gpr a, Gpr b) { EmitRRR(Opcode::kAddI, dst.index, a.index, b.index); }
  void SubI(Gpr dst, Gpr a, Gpr b) { EmitRRR(Opcode::kSubI, dst.index, a.index, b.index); }
  void MulI(Gpr dst, Gpr a, Gpr b) { EmitRRR(Opcode::kMulI, dst.index, a.index, b.index); }
  void DivI(Gpr dst, Gpr a, Gpr b) { EmitRRR(Opcode::kDivI, dst.index, a.index, b.index); }
  void RemI(Gpr dst, Gpr a, Gpr b) { EmitRRR(Opcode::kRemI, dst.index, a.index, b.index); }
  void AndI(Gpr dst, Gpr a, Gpr b) { EmitRRR(Opcode::kAndI, dst.index, a.index, b.index); }
  void OrI(Gpr dst, Gpr a, Gpr b) { EmitRRR(Opcode::kOrI, dst.index, a.index, b.index); }
  void XorI(Gpr dst, Gpr a, Gpr b) { EmitRRR(Opcode::kXorI, dst.index, a.index, b.index); }
  void ShlI(Gpr dst, Gpr a, Gpr b) { EmitRRR(Opcode::kShlI, dst.index, a.index, b.index); }
  void ShrI(Gpr dst, Gpr a, Gpr b) { EmitRRR(Opcode::kShrI, dst.index, a.index, b.index); }
  void MinI(Gpr dst, Gpr a, Gpr b) { EmitRRR(Opcode::kMinI, dst.index, a.index, b.index); }
  void MaxI(Gpr dst, Gpr a, Gpr b) { EmitRRR(Opcode::kMaxI, dst.index, a.index, b.index); }
  void LiI(Gpr dst, std::int64_t imm);
  void MovI(Gpr dst, Gpr src) { EmitRRR(Opcode::kMovI, dst.index, src.index, 0); }
  void CeqI(Gpr dst, Gpr a, Gpr b) { EmitRRR(Opcode::kCeqI, dst.index, a.index, b.index); }
  void CneI(Gpr dst, Gpr a, Gpr b) { EmitRRR(Opcode::kCneI, dst.index, a.index, b.index); }
  void CltI(Gpr dst, Gpr a, Gpr b) { EmitRRR(Opcode::kCltI, dst.index, a.index, b.index); }
  void CleI(Gpr dst, Gpr a, Gpr b) { EmitRRR(Opcode::kCleI, dst.index, a.index, b.index); }

  // ---- floating point ----
  void AddF(Fpr dst, Fpr a, Fpr b) { EmitRRR(Opcode::kAddF, dst.index, a.index, b.index); }
  void SubF(Fpr dst, Fpr a, Fpr b) { EmitRRR(Opcode::kSubF, dst.index, a.index, b.index); }
  void MulF(Fpr dst, Fpr a, Fpr b) { EmitRRR(Opcode::kMulF, dst.index, a.index, b.index); }
  void DivF(Fpr dst, Fpr a, Fpr b) { EmitRRR(Opcode::kDivF, dst.index, a.index, b.index); }
  void NegF(Fpr dst, Fpr a) { EmitRRR(Opcode::kNegF, dst.index, a.index, 0); }
  void AbsF(Fpr dst, Fpr a) { EmitRRR(Opcode::kAbsF, dst.index, a.index, 0); }
  void SqrtF(Fpr dst, Fpr a) { EmitRRR(Opcode::kSqrtF, dst.index, a.index, 0); }
  void MinF(Fpr dst, Fpr a, Fpr b) { EmitRRR(Opcode::kMinF, dst.index, a.index, b.index); }
  void MaxF(Fpr dst, Fpr a, Fpr b) { EmitRRR(Opcode::kMaxF, dst.index, a.index, b.index); }
  void FmaF(Fpr acc, Fpr a, Fpr b) { EmitRRR(Opcode::kFmaF, acc.index, a.index, b.index); }
  void LiF(Fpr dst, double value);
  void MovF(Fpr dst, Fpr src) { EmitRRR(Opcode::kMovF, dst.index, src.index, 0); }
  void ItoF(Fpr dst, Gpr src) { EmitRRR(Opcode::kItoF, dst.index, src.index, 0); }
  void FtoI(Gpr dst, Fpr src) { EmitRRR(Opcode::kFtoI, dst.index, src.index, 0); }
  void CeqF(Gpr dst, Fpr a, Fpr b) { EmitRRR(Opcode::kCeqF, dst.index, a.index, b.index); }
  void CltF(Gpr dst, Fpr a, Fpr b) { EmitRRR(Opcode::kCltF, dst.index, a.index, b.index); }
  void CleF(Gpr dst, Fpr a, Fpr b) { EmitRRR(Opcode::kCleF, dst.index, a.index, b.index); }

  // ---- memory ----
  void LdI(Gpr dst, Gpr base, std::int64_t offset);
  void LdIX(Gpr dst, Gpr base, Gpr index) { EmitRRR(Opcode::kLdIX, dst.index, base.index, index.index); }
  void StI(Gpr value, Gpr base, std::int64_t offset);
  void StIX(Gpr value, Gpr base, Gpr index) { EmitRRR(Opcode::kStIX, value.index, base.index, index.index); }
  void LdF(Fpr dst, Gpr base, std::int64_t offset);
  void LdFX(Fpr dst, Gpr base, Gpr index) { EmitRRR(Opcode::kLdFX, dst.index, base.index, index.index); }
  void StF(Fpr value, Gpr base, std::int64_t offset);
  void StFX(Fpr value, Gpr base, Gpr index) { EmitRRR(Opcode::kStFX, value.index, base.index, index.index); }

  // ---- control ----
  void Jmp(Label target);
  void Bz(Gpr cond, Label target);
  void Bnz(Gpr cond, Label target);
  void Call(Label target);
  void CallR(Gpr target) { EmitRRR(Opcode::kCallR, 0, target.index, 0); }
  void Ret() { EmitRRR(Opcode::kRet, 0, 0, 0); }
  void Halt() { EmitRRR(Opcode::kHalt, 0, 0, 0); }
  void Nop() { EmitRRR(Opcode::kNop, 0, 0, 0); }

  /// Loads the (eventual) pc of `target` into a register — used to pass
  /// outlined-function "pointers" through queues (Section III-G).
  void LiLabel(Gpr dst, Label target);

  // ---- hardware queues ----
  void EnqI(int remote_core, Gpr value);
  void DeqI(int remote_core, Gpr dst);
  void EnqF(int remote_core, Fpr value);
  void DeqF(int remote_core, Fpr dst);

  /// Current emission position (next instruction's pc).
  std::int64_t Here() const { return static_cast<std::int64_t>(code_.size()); }

  /// Resolves all labels and produces the final program.  Throws if any
  /// referenced label was never bound.
  Program Finish();

 private:
  struct Fixup {
    std::size_t pc;
    int label_id;
  };

  void EmitRRR(Opcode op, std::uint8_t dst, std::uint8_t s1, std::uint8_t s2);
  void EmitQueue(Opcode op, int remote_core, std::uint8_t reg);
  Instruction& Emit(Instruction instr);

  std::vector<Instruction> code_;
  std::vector<std::string> comments_;
  std::string pending_comment_;
  std::vector<std::int64_t> label_pcs_;  // -1 while unbound
  std::map<std::string, int> named_labels_;
  std::vector<Fixup> fixups_;
  bool finished_ = false;
};

}  // namespace fgpar::isa
