#include "isa/opcode.hpp"

#include "support/error.hpp"

namespace fgpar::isa {

std::string_view OpcodeName(Opcode op) {
  switch (op) {
    case Opcode::kAddI: return "addi";
    case Opcode::kSubI: return "subi";
    case Opcode::kMulI: return "muli";
    case Opcode::kDivI: return "divi";
    case Opcode::kRemI: return "remi";
    case Opcode::kAndI: return "andi";
    case Opcode::kOrI: return "ori";
    case Opcode::kXorI: return "xori";
    case Opcode::kShlI: return "shli";
    case Opcode::kShrI: return "shri";
    case Opcode::kMinI: return "mini";
    case Opcode::kMaxI: return "maxi";
    case Opcode::kLiI: return "lii";
    case Opcode::kMovI: return "movi";
    case Opcode::kCeqI: return "ceqi";
    case Opcode::kCneI: return "cnei";
    case Opcode::kCltI: return "clti";
    case Opcode::kCleI: return "clei";
    case Opcode::kAddF: return "addf";
    case Opcode::kSubF: return "subf";
    case Opcode::kMulF: return "mulf";
    case Opcode::kDivF: return "divf";
    case Opcode::kNegF: return "negf";
    case Opcode::kAbsF: return "absf";
    case Opcode::kSqrtF: return "sqrtf";
    case Opcode::kMinF: return "minf";
    case Opcode::kMaxF: return "maxf";
    case Opcode::kFmaF: return "fmaf";
    case Opcode::kLiF: return "lif";
    case Opcode::kMovF: return "movf";
    case Opcode::kItoF: return "itof";
    case Opcode::kFtoI: return "ftoi";
    case Opcode::kCeqF: return "ceqf";
    case Opcode::kCltF: return "cltf";
    case Opcode::kCleF: return "clef";
    case Opcode::kLdI: return "ldi";
    case Opcode::kLdIX: return "ldix";
    case Opcode::kStI: return "sti";
    case Opcode::kStIX: return "stix";
    case Opcode::kLdF: return "ldf";
    case Opcode::kLdFX: return "ldfx";
    case Opcode::kStF: return "stf";
    case Opcode::kStFX: return "stfx";
    case Opcode::kJmp: return "jmp";
    case Opcode::kBz: return "bz";
    case Opcode::kBnz: return "bnz";
    case Opcode::kCall: return "call";
    case Opcode::kCallR: return "callr";
    case Opcode::kRet: return "ret";
    case Opcode::kHalt: return "halt";
    case Opcode::kNop: return "nop";
    case Opcode::kEnqI: return "enqi";
    case Opcode::kDeqI: return "deqi";
    case Opcode::kEnqF: return "enqf";
    case Opcode::kDeqF: return "deqf";
  }
  FGPAR_UNREACHABLE("bad opcode");
}

bool IsBranch(Opcode op) {
  return op == Opcode::kJmp || op == Opcode::kBz || op == Opcode::kBnz;
}

bool IsLoad(Opcode op) {
  return op == Opcode::kLdI || op == Opcode::kLdIX || op == Opcode::kLdF ||
         op == Opcode::kLdFX;
}

bool IsStore(Opcode op) {
  return op == Opcode::kStI || op == Opcode::kStIX || op == Opcode::kStF ||
         op == Opcode::kStFX;
}

bool IsQueueOp(Opcode op) { return IsEnqueue(op) || IsDequeue(op); }

bool IsEnqueue(Opcode op) { return op == Opcode::kEnqI || op == Opcode::kEnqF; }

bool IsDequeue(Opcode op) { return op == Opcode::kDeqI || op == Opcode::kDeqF; }

bool IsFpQueueOp(Opcode op) { return op == Opcode::kEnqF || op == Opcode::kDeqF; }

bool IsCallOrRet(Opcode op) {
  return op == Opcode::kCall || op == Opcode::kCallR || op == Opcode::kRet;
}

bool IsThreadedTraceable(Opcode op) {
  return !IsLoad(op) && !IsStore(op) && !IsQueueOp(op) && !IsCallOrRet(op);
}

}  // namespace fgpar::isa
