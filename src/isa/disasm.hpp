// Disassembler for debugging compiled programs.
#pragma once

#include <string>

#include "isa/program.hpp"

namespace fgpar::isa {

/// Renders one instruction ("addf f3, f1, f2").
std::string Disassemble(const Instruction& instr);

/// Renders a whole program with pcs, symbols, and debug comments.
std::string DisassembleProgram(const Program& program);

}  // namespace fgpar::isa
