#include "isa/program.hpp"

#include "support/error.hpp"

namespace fgpar::isa {

Program::Program(std::vector<Instruction> code,
                 std::map<std::string, std::int64_t> symbols,
                 std::vector<std::string> comments)
    : code_(std::move(code)),
      symbols_(std::move(symbols)),
      comments_(std::move(comments)) {
  comments_.resize(code_.size());
  for (const auto& [name, pc] : symbols_) {
    FGPAR_CHECK_MSG(pc >= 0 && static_cast<std::size_t>(pc) <= code_.size(),
                    "symbol '" + name + "' out of range");
  }
}

const Instruction& Program::at(std::int64_t pc) const {
  FGPAR_CHECK_MSG(pc >= 0 && static_cast<std::size_t>(pc) < code_.size(),
                  "pc out of range: " + std::to_string(pc));
  return code_[static_cast<std::size_t>(pc)];
}

std::int64_t Program::EntryOf(const std::string& symbol) const {
  auto it = symbols_.find(symbol);
  FGPAR_CHECK_MSG(it != symbols_.end(), "unknown program symbol: " + symbol);
  return it->second;
}

bool Program::HasSymbol(const std::string& symbol) const {
  return symbols_.contains(symbol);
}

const std::string& Program::CommentAt(std::int64_t pc) const {
  FGPAR_CHECK(pc >= 0 && static_cast<std::size_t>(pc) < comments_.size());
  return comments_[static_cast<std::size_t>(pc)];
}

}  // namespace fgpar::isa
