// Static per-instruction operand metadata, used by the simulator's
// predecoded fast path (sim/decoded.hpp).
//
// The slow (instrumented) simulator path re-derives an instruction's source
// registers from a switch on every issue attempt (Core::SourcesReadyAt);
// the fast path asks once, at Machine construction, via OperandsOf and then
// iterates flat arrays.  Both must agree exactly — the golden cycle tests
// (tests/sim_golden_test.cpp) and the fast/slow equivalence tests lock this.
//
// When adding an opcode: extend the switch in decode.cpp (it has no default
// case, so -Wswitch flags the omission), mirror the change in
// Core::SourcesReadyAt, and re-run the golden tests.
#pragma once

#include <cstdint>

#include "isa/opcode.hpp"
#include "isa/program.hpp"

namespace fgpar::isa {

/// The source registers an instruction reads before it can issue.  For
/// stores, the value register (`dst`) is a source; for fused multiply-add,
/// the accumulator (`dst`) is read-modify-write.
struct DecodedOperands {
  std::uint8_t gpr[3] = {0, 0, 0};  // gpr indices read at issue
  std::uint8_t num_gpr = 0;
  std::uint8_t fpr[3] = {0, 0, 0};  // fpr indices read at issue
  std::uint8_t num_fpr = 0;
};

/// Extracts the issue-time source registers of `instr`.
DecodedOperands OperandsOf(const Instruction& instr);

}  // namespace fgpar::isa
