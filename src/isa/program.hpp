// Instruction and Program containers.
//
// A Program is a flat instruction vector with branch targets already
// resolved to absolute pcs, plus a symbol table mapping label names (e.g.
// outlined-function entry points like "F2") to pcs.  Programs are produced
// by the Assembler (hand-written tests/benches) or by the compiler backend.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "isa/opcode.hpp"

namespace fgpar::isa {

/// One decoded machine instruction.  Field meaning depends on the opcode;
/// see the comments in opcode.hpp.  For stores, `dst` names the register
/// holding the value to be stored.
struct Instruction {
  Opcode op = Opcode::kNop;
  std::uint8_t dst = 0;
  std::uint8_t src1 = 0;
  std::uint8_t src2 = 0;
  std::int16_t queue = -1;   // remote core index for enq/deq
  std::int64_t imm = 0;      // immediate / resolved branch target / offset
  double fimm = 0.0;         // floating-point immediate (kLiF)
};

/// A complete program image for one or more cores.  All cores of a machine
/// share one program image; each core starts at its own entry pc.
class Program {
 public:
  Program() = default;
  Program(std::vector<Instruction> code, std::map<std::string, std::int64_t> symbols,
          std::vector<std::string> comments);

  const std::vector<Instruction>& code() const { return code_; }
  std::size_t size() const { return code_.size(); }
  const Instruction& at(std::int64_t pc) const;

  /// Looks up a named entry point; throws if absent.
  std::int64_t EntryOf(const std::string& symbol) const;
  bool HasSymbol(const std::string& symbol) const;
  const std::map<std::string, std::int64_t>& symbols() const { return symbols_; }

  /// Per-pc debug comment (may be empty); aligned with code().
  const std::string& CommentAt(std::int64_t pc) const;

 private:
  std::vector<Instruction> code_;
  std::map<std::string, std::int64_t> symbols_;
  std::vector<std::string> comments_;
};

}  // namespace fgpar::isa
