#include "isa/assembler.hpp"

#include "support/error.hpp"

namespace fgpar::isa {

Assembler::Assembler() = default;

Label Assembler::NewLabel() {
  label_pcs_.push_back(-1);
  return Label{static_cast<int>(label_pcs_.size()) - 1};
}

Label Assembler::NewNamedLabel(const std::string& name) {
  FGPAR_CHECK_MSG(!named_labels_.contains(name), "duplicate label name: " + name);
  Label label = NewLabel();
  named_labels_[name] = label.id;
  return label;
}

void Assembler::Bind(Label label) {
  FGPAR_CHECK(label.id >= 0 && static_cast<std::size_t>(label.id) < label_pcs_.size());
  FGPAR_CHECK_MSG(label_pcs_[static_cast<std::size_t>(label.id)] == -1,
                  "label bound twice");
  label_pcs_[static_cast<std::size_t>(label.id)] = Here();
}

void Assembler::Comment(std::string text) { pending_comment_ = std::move(text); }

Instruction& Assembler::Emit(Instruction instr) {
  FGPAR_CHECK_MSG(!finished_, "assembler already finished");
  code_.push_back(instr);
  comments_.push_back(std::move(pending_comment_));
  pending_comment_.clear();
  return code_.back();
}

void Assembler::EmitRRR(Opcode op, std::uint8_t dst, std::uint8_t s1, std::uint8_t s2) {
  Emit(Instruction{.op = op, .dst = dst, .src1 = s1, .src2 = s2});
}

void Assembler::EmitQueue(Opcode op, int remote_core, std::uint8_t reg) {
  FGPAR_CHECK_MSG(remote_core >= 0 && remote_core < 32767, "bad remote core id");
  Instruction instr{.op = op, .queue = static_cast<std::int16_t>(remote_core)};
  if (IsDequeue(op)) {
    instr.dst = reg;
  } else {
    instr.src1 = reg;
  }
  Emit(instr);
}

void Assembler::LiI(Gpr dst, std::int64_t imm) {
  Emit(Instruction{.op = Opcode::kLiI, .dst = dst.index, .imm = imm});
}

void Assembler::LiF(Fpr dst, double value) {
  Emit(Instruction{.op = Opcode::kLiF, .dst = dst.index, .fimm = value});
}

void Assembler::LdI(Gpr dst, Gpr base, std::int64_t offset) {
  Emit(Instruction{.op = Opcode::kLdI, .dst = dst.index, .src1 = base.index, .imm = offset});
}

void Assembler::StI(Gpr value, Gpr base, std::int64_t offset) {
  Emit(Instruction{.op = Opcode::kStI, .dst = value.index, .src1 = base.index, .imm = offset});
}

void Assembler::LdF(Fpr dst, Gpr base, std::int64_t offset) {
  Emit(Instruction{.op = Opcode::kLdF, .dst = dst.index, .src1 = base.index, .imm = offset});
}

void Assembler::StF(Fpr value, Gpr base, std::int64_t offset) {
  Emit(Instruction{.op = Opcode::kStF, .dst = value.index, .src1 = base.index, .imm = offset});
}

void Assembler::Jmp(Label target) {
  fixups_.push_back(Fixup{code_.size(), target.id});
  Emit(Instruction{.op = Opcode::kJmp});
}

void Assembler::Bz(Gpr cond, Label target) {
  fixups_.push_back(Fixup{code_.size(), target.id});
  Emit(Instruction{.op = Opcode::kBz, .src1 = cond.index});
}

void Assembler::Bnz(Gpr cond, Label target) {
  fixups_.push_back(Fixup{code_.size(), target.id});
  Emit(Instruction{.op = Opcode::kBnz, .src1 = cond.index});
}

void Assembler::Call(Label target) {
  fixups_.push_back(Fixup{code_.size(), target.id});
  Emit(Instruction{.op = Opcode::kCall});
}

void Assembler::LiLabel(Gpr dst, Label target) {
  fixups_.push_back(Fixup{code_.size(), target.id});
  Emit(Instruction{.op = Opcode::kLiI, .dst = dst.index});
}

void Assembler::EnqI(int remote_core, Gpr value) {
  EmitQueue(Opcode::kEnqI, remote_core, value.index);
}

void Assembler::DeqI(int remote_core, Gpr dst) {
  EmitQueue(Opcode::kDeqI, remote_core, dst.index);
}

void Assembler::EnqF(int remote_core, Fpr value) {
  EmitQueue(Opcode::kEnqF, remote_core, value.index);
}

void Assembler::DeqF(int remote_core, Fpr dst) {
  EmitQueue(Opcode::kDeqF, remote_core, dst.index);
}

Program Assembler::Finish() {
  FGPAR_CHECK_MSG(!finished_, "assembler already finished");
  finished_ = true;
  for (const Fixup& fixup : fixups_) {
    FGPAR_CHECK(fixup.label_id >= 0 &&
                static_cast<std::size_t>(fixup.label_id) < label_pcs_.size());
    const std::int64_t target = label_pcs_[static_cast<std::size_t>(fixup.label_id)];
    FGPAR_CHECK_MSG(target >= 0, "reference to unbound label");
    code_[fixup.pc].imm = target;
  }
  std::map<std::string, std::int64_t> symbols;
  for (const auto& [name, id] : named_labels_) {
    const std::int64_t pc = label_pcs_[static_cast<std::size_t>(id)];
    FGPAR_CHECK_MSG(pc >= 0, "named label never bound: " + name);
    symbols[name] = pc;
  }
  return Program(std::move(code_), std::move(symbols), std::move(comments_));
}

}  // namespace fgpar::isa
