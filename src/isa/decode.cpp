#include "isa/decode.hpp"

namespace fgpar::isa {

DecodedOperands OperandsOf(const Instruction& instr) {
  DecodedOperands ops;
  auto g = [&ops](std::uint8_t r) { ops.gpr[ops.num_gpr++] = r; };
  auto f = [&ops](std::uint8_t r) { ops.fpr[ops.num_fpr++] = r; };
  switch (instr.op) {
    case Opcode::kAddI: case Opcode::kSubI: case Opcode::kMulI: case Opcode::kDivI:
    case Opcode::kRemI: case Opcode::kAndI: case Opcode::kOrI: case Opcode::kXorI:
    case Opcode::kShlI: case Opcode::kShrI: case Opcode::kMinI: case Opcode::kMaxI:
    case Opcode::kCeqI: case Opcode::kCneI: case Opcode::kCltI: case Opcode::kCleI:
      g(instr.src1);
      g(instr.src2);
      break;
    case Opcode::kMovI:
      g(instr.src1);
      break;
    case Opcode::kLiI: case Opcode::kLiF: case Opcode::kJmp: case Opcode::kCall:
    case Opcode::kRet: case Opcode::kHalt: case Opcode::kNop:
      break;
    case Opcode::kAddF: case Opcode::kSubF: case Opcode::kMulF: case Opcode::kDivF:
    case Opcode::kMinF: case Opcode::kMaxF: case Opcode::kCeqF: case Opcode::kCltF:
    case Opcode::kCleF:
      f(instr.src1);
      f(instr.src2);
      break;
    case Opcode::kFmaF:
      f(instr.src1);
      f(instr.src2);
      f(instr.dst);  // accumulator is read-modify-write
      break;
    case Opcode::kNegF: case Opcode::kAbsF: case Opcode::kSqrtF: case Opcode::kMovF:
      f(instr.src1);
      break;
    case Opcode::kItoF:
      g(instr.src1);
      break;
    case Opcode::kFtoI:
      f(instr.src1);
      break;
    case Opcode::kLdI: case Opcode::kLdF:
      g(instr.src1);
      break;
    case Opcode::kLdIX: case Opcode::kLdFX:
      g(instr.src1);
      g(instr.src2);
      break;
    case Opcode::kStI:
      g(instr.src1);
      g(instr.dst);  // value register
      break;
    case Opcode::kStIX:
      g(instr.src1);
      g(instr.src2);
      g(instr.dst);
      break;
    case Opcode::kStF:
      g(instr.src1);
      f(instr.dst);
      break;
    case Opcode::kStFX:
      g(instr.src1);
      g(instr.src2);
      f(instr.dst);
      break;
    case Opcode::kBz: case Opcode::kBnz: case Opcode::kCallR:
      g(instr.src1);
      break;
    case Opcode::kEnqI:
      g(instr.src1);
      break;
    case Opcode::kEnqF:
      f(instr.src1);
      break;
    case Opcode::kDeqI: case Opcode::kDeqF:
      break;
  }
  return ops;
}

}  // namespace fgpar::isa
