// Statements of the loop-kernel IR.
//
// Every statement carries a kernel-unique id (for analysis maps) and a
// source line number; the paper's third merge heuristic ("greater proximity
// in the serial source code", Section III-B) consumes the line numbers.
#pragma once

#include <vector>

#include "ir/expr.hpp"

namespace fgpar::ir {

using StmtId = int;

enum class StmtKind : std::uint8_t {
  kAssignTemp,   // temp = value
  kStoreScalar,  // sym = value
  kStoreArray,   // sym[index] = value
  kIf,           // if (value != 0) then_body else else_body
};

struct Stmt {
  StmtId id = -1;
  StmtKind kind = StmtKind::kAssignTemp;
  int source_line = 0;
  TempId temp = -1;     // kAssignTemp
  SymbolId sym = -1;    // stores
  ExprId index = kNoExpr;  // kStoreArray
  ExprId value = kNoExpr;  // RHS, or the condition of kIf
  std::vector<Stmt> then_body;  // kIf
  std::vector<Stmt> else_body;  // kIf
  /// Author-supplied directive (paper Section III-I.1): both arms are safe
  /// to execute unconditionally, enabling the Section III-H control-flow
  /// speculation transformation.
  bool speculation_safe = false;
};

}  // namespace fgpar::ir
