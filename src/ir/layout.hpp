// DataLayout: assigns memory addresses to a kernel's symbols, and ParamEnv
// holds runtime values for its scalar parameters.
//
// The same layout is consumed by the reference interpreter, the compiler
// backend, and the workload initializer, so all three agree on where every
// array and scalar lives — which is what makes bit-exact comparison of the
// interpreter, sequential codegen, and parallel codegen possible.
#pragma once

#include <cstdint>
#include <vector>

#include "ir/kernel.hpp"

namespace fgpar::ir {

class DataLayout {
 public:
  /// Lays out all memory-resident symbols starting at `base`, aligning each
  /// allocation to a cache-line boundary and separating allocations with a
  /// guard word (so accidental off-by-one indexing faults loudly in the
  /// interpreter's bounds checks rather than silently reading a neighbour).
  explicit DataLayout(const Kernel& kernel, std::uint64_t base = 64,
                      int align_words = 8);

  /// Base address of an array, or the slot address of a scalar.  Params
  /// have no data address (throws); see ParamAddressOf.
  std::uint64_t AddressOf(SymbolId sym) const;

  /// Address of a parameter's slot in the kernel's parameter block.  The
  /// harness writes parameter values there before launch; the primary core
  /// loads them at startup and forwards what the secondaries need through
  /// the queues (Section III-G).
  std::uint64_t ParamAddressOf(SymbolId sym) const;

  /// One-past-the-end of the laid-out region.
  std::uint64_t end() const { return end_; }

 private:
  std::vector<std::int64_t> address_;        // -1 for params
  std::vector<std::int64_t> param_address_;  // -1 for non-params
  std::uint64_t end_;
};

/// Runtime values of kernel parameters, stored as raw 64-bit payloads.
class ParamEnv {
 public:
  explicit ParamEnv(const Kernel& kernel);

  void SetI64(SymbolId sym, std::int64_t value);
  void SetF64(SymbolId sym, double value);
  std::int64_t GetI64(SymbolId sym) const;
  double GetF64(SymbolId sym) const;
  std::uint64_t GetRaw(SymbolId sym) const;
  bool IsSet(SymbolId sym) const;

  /// Throws unless every parameter has been assigned a value.
  void CheckComplete(const Kernel& kernel) const;

 private:
  const Kernel* kernel_;
  std::vector<std::uint64_t> raw_;
  std::vector<bool> set_;
};

}  // namespace fgpar::ir
