#include "ir/interp.hpp"

#include <bit>
#include <cmath>
#include <cstdint>

#include "support/error.hpp"

namespace fgpar::ir {
namespace {

std::uint64_t RawF(double v) { return std::bit_cast<std::uint64_t>(v); }
double AsF(std::uint64_t raw) { return std::bit_cast<double>(raw); }
std::uint64_t RawI(std::int64_t v) { return static_cast<std::uint64_t>(v); }
std::int64_t AsI(std::uint64_t raw) { return static_cast<std::int64_t>(raw); }

}  // namespace

Interpreter::Interpreter(const Kernel& kernel, const DataLayout& layout,
                         const ParamEnv& params, std::vector<std::uint64_t>& memory)
    : kernel_(kernel),
      layout_(layout),
      params_(params),
      memory_(memory),
      temp_values_(kernel.temps().size(), 0) {
  params_.CheckComplete(kernel_);
  // Carried temps start at their declared initial value; plain temps at 0.
  for (const Temp& t : kernel_.temps()) {
    if (t.carried) {
      temp_values_[static_cast<std::size_t>(t.id)] =
          t.type == ScalarType::kI64 ? RawI(t.init_i) : RawF(t.init_f);
    }
  }
}

void Interpreter::CheckArrayIndex(SymbolId sym, std::int64_t index) const {
  const Symbol& s = kernel_.symbol(sym);
  FGPAR_CHECK_MSG(index >= 0 && index < s.array_size,
                  "array index out of bounds: " + s.name + "[" +
                      std::to_string(index) + "], size " +
                      std::to_string(s.array_size));
}

std::uint64_t Interpreter::Eval(ExprId id) {
  ++stats_.exprs_evaluated;
  const ExprNode& node = kernel_.expr(id);
  switch (node.kind) {
    case ExprKind::kConstI:
      return RawI(node.const_i);
    case ExprKind::kConstF:
      return RawF(node.const_f);
    case ExprKind::kIvRef:
      return RawI(iv_);
    case ExprKind::kParamRef:
      return params_.GetRaw(node.sym);
    case ExprKind::kScalarRef: {
      const std::uint64_t addr = layout_.AddressOf(node.sym);
      FGPAR_CHECK(addr < memory_.size());
      if (observer_) {
        observer_(node.sym, addr, /*is_write=*/false);
      }
      return memory_[addr];
    }
    case ExprKind::kArrayRef: {
      const std::int64_t index = AsI(Eval(node.child[0]));
      CheckArrayIndex(node.sym, index);
      const std::uint64_t addr =
          layout_.AddressOf(node.sym) + static_cast<std::uint64_t>(index);
      FGPAR_CHECK(addr < memory_.size());
      if (observer_) {
        observer_(node.sym, addr, /*is_write=*/false);
      }
      return memory_[addr];
    }
    case ExprKind::kTempRef:
      return temp_values_[static_cast<std::size_t>(node.temp)];
    case ExprKind::kUnary: {
      const std::uint64_t v = Eval(node.child[0]);
      switch (node.un) {
        case UnOp::kNeg:
          return node.type == ScalarType::kI64 ? RawI(-AsI(v)) : RawF(-AsF(v));
        case UnOp::kAbs:
          return node.type == ScalarType::kI64
                     ? RawI(AsI(v) < 0 ? -AsI(v) : AsI(v))
                     : RawF(std::fabs(AsF(v)));
        case UnOp::kSqrt:
          return RawF(std::sqrt(AsF(v)));
        case UnOp::kNot:
          return RawI(AsI(v) == 0 ? 1 : 0);
        case UnOp::kI2F:
          return RawF(static_cast<double>(AsI(v)));
        case UnOp::kF2I:
          return RawI(static_cast<std::int64_t>(AsF(v)));
      }
      FGPAR_UNREACHABLE("bad UnOp");
    }
    case ExprKind::kBinary: {
      const std::uint64_t lraw = Eval(node.child[0]);
      const std::uint64_t rraw = Eval(node.child[1]);
      const ScalarType in = kernel_.expr(node.child[0]).type;
      if (in == ScalarType::kI64) {
        const std::int64_t l = AsI(lraw);
        const std::int64_t r = AsI(rraw);
        // Add/sub/mul wrap (two's complement) to match the simulated
        // machine; uint64 arithmetic keeps the wrap defined in C++.
        const std::uint64_t lu = static_cast<std::uint64_t>(l);
        const std::uint64_t ru = static_cast<std::uint64_t>(r);
        switch (node.bin) {
          case BinOp::kAdd: return RawI(static_cast<std::int64_t>(lu + ru));
          case BinOp::kSub: return RawI(static_cast<std::int64_t>(lu - ru));
          case BinOp::kMul: return RawI(static_cast<std::int64_t>(lu * ru));
          case BinOp::kDiv:
            FGPAR_CHECK_MSG(r != 0, "integer divide by zero");
            FGPAR_CHECK_MSG(l != INT64_MIN || r != -1, "integer divide overflow");
            return RawI(l / r);
          case BinOp::kRem:
            FGPAR_CHECK_MSG(r != 0, "integer remainder by zero");
            FGPAR_CHECK_MSG(l != INT64_MIN || r != -1,
                            "integer remainder overflow");
            return RawI(l % r);
          case BinOp::kMin: return RawI(std::min(l, r));
          case BinOp::kMax: return RawI(std::max(l, r));
          case BinOp::kAnd: return RawI(l & r);
          case BinOp::kOr: return RawI(l | r);
          case BinOp::kXor: return RawI(l ^ r);
          case BinOp::kShl:
            return RawI(static_cast<std::int64_t>(static_cast<std::uint64_t>(l)
                                                  << (r & 63)));
          case BinOp::kShr: return RawI(l >> (r & 63));
          case BinOp::kEq: return RawI(l == r ? 1 : 0);
          case BinOp::kNe: return RawI(l != r ? 1 : 0);
          case BinOp::kLt: return RawI(l < r ? 1 : 0);
          case BinOp::kLe: return RawI(l <= r ? 1 : 0);
        }
      } else {
        const double l = AsF(lraw);
        const double r = AsF(rraw);
        switch (node.bin) {
          case BinOp::kAdd: return RawF(l + r);
          case BinOp::kSub: return RawF(l - r);
          case BinOp::kMul: return RawF(l * r);
          case BinOp::kDiv: return RawF(l / r);
          case BinOp::kMin: return RawF(std::fmin(l, r));
          case BinOp::kMax: return RawF(std::fmax(l, r));
          case BinOp::kEq: return RawI(l == r ? 1 : 0);
          case BinOp::kNe: return RawI(l != r ? 1 : 0);
          case BinOp::kLt: return RawI(l < r ? 1 : 0);
          case BinOp::kLe: return RawI(l <= r ? 1 : 0);
          default:
            FGPAR_UNREACHABLE("int-only operator on f64");
        }
      }
      FGPAR_UNREACHABLE("bad BinOp");
    }
    case ExprKind::kSelect: {
      // Both arms are evaluated, matching the compiled lowering; the
      // condition only picks the result.
      const std::int64_t cond = AsI(Eval(node.child[0]));
      const std::uint64_t a = Eval(node.child[1]);
      const std::uint64_t b = Eval(node.child[2]);
      return cond != 0 ? a : b;
    }
  }
  FGPAR_UNREACHABLE("bad ExprKind");
}

void Interpreter::Exec(const Stmt& stmt) {
  ++stats_.stmts_executed;
  current_stmt_ = stmt.id;
  if (stmt_observer_) {
    stmt_observer_(stmt.id);
  }
  switch (stmt.kind) {
    case StmtKind::kAssignTemp:
      temp_values_[static_cast<std::size_t>(stmt.temp)] = Eval(stmt.value);
      break;
    case StmtKind::kStoreScalar: {
      const std::uint64_t addr = layout_.AddressOf(stmt.sym);
      FGPAR_CHECK(addr < memory_.size());
      if (observer_) {
        observer_(stmt.sym, addr, /*is_write=*/true);
      }
      memory_[addr] = Eval(stmt.value);
      break;
    }
    case StmtKind::kStoreArray: {
      const std::int64_t index = AsI(Eval(stmt.index));
      CheckArrayIndex(stmt.sym, index);
      const std::uint64_t addr =
          layout_.AddressOf(stmt.sym) + static_cast<std::uint64_t>(index);
      FGPAR_CHECK(addr < memory_.size());
      if (observer_) {
        observer_(stmt.sym, addr, /*is_write=*/true);
      }
      memory_[addr] = Eval(stmt.value);
      break;
    }
    case StmtKind::kIf: {
      const std::int64_t cond = AsI(Eval(stmt.value));
      ExecList(cond != 0 ? stmt.then_body : stmt.else_body);
      break;
    }
  }
}

void Interpreter::ExecList(const std::vector<Stmt>& stmts) {
  for (const Stmt& stmt : stmts) {
    Exec(stmt);
  }
}

InterpStats Interpreter::Run() {
  const Loop& loop = kernel_.loop();
  FGPAR_CHECK_MSG(loop.lower != kNoExpr && loop.upper != kNoExpr,
                  "kernel has no loop bounds");
  const std::int64_t lower = AsI(Eval(loop.lower));
  const std::int64_t upper = AsI(Eval(loop.upper));
  for (iv_ = lower; iv_ < upper; ++iv_) {
    ExecList(loop.body);
    ++stats_.iterations;
  }
  ExecList(kernel_.epilogue());
  return stats_;
}

std::uint64_t Interpreter::TempValue(TempId temp) const {
  FGPAR_CHECK(temp >= 0 && static_cast<std::size_t>(temp) < temp_values_.size());
  return temp_values_[static_cast<std::size_t>(temp)];
}

}  // namespace fgpar::ir
