// KernelBuilder: the programmatic construction API for kernels.
//
// Used by the textual frontend, by tests, and by the random-program
// generator.  Expressions are built through the lightweight `Val` handle,
// which overloads arithmetic operators with full type checking (mixed
// int/double arithmetic must be made explicit through casts, as in the
// kernel language).
//
//   KernelBuilder kb("axpy");
//   Val alpha = kb.ParamF64("alpha");
//   Val n = kb.ParamI64("n");
//   ArrayHandle x = kb.ArrayF64("x", 1024), y = kb.ArrayF64("y", 1024);
//   kb.StartLoop("i", kb.ConstI(0), n);
//   kb.Store(y, kb.Iv(), alpha * kb.Load(x, kb.Iv()) + kb.Load(y, kb.Iv()));
//   Kernel k = kb.Finish();
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "ir/kernel.hpp"

namespace fgpar::ir {

class KernelBuilder;

/// Expression handle; cheap to copy.
class Val {
 public:
  Val() = default;
  Val(KernelBuilder* kb, ExprId id) : kb_(kb), id_(id) {}
  ExprId id() const { return id_; }
  bool valid() const { return kb_ != nullptr && id_ != kNoExpr; }
  ScalarType type() const;

  Val operator+(Val rhs) const;
  Val operator-(Val rhs) const;
  Val operator*(Val rhs) const;
  Val operator/(Val rhs) const;
  Val operator%(Val rhs) const;
  Val operator&(Val rhs) const;
  Val operator|(Val rhs) const;
  Val operator^(Val rhs) const;
  Val operator<<(Val rhs) const;
  Val operator>>(Val rhs) const;
  Val operator==(Val rhs) const;
  Val operator!=(Val rhs) const;
  Val operator<(Val rhs) const;
  Val operator<=(Val rhs) const;
  Val operator>(Val rhs) const;   // lowered as rhs < lhs
  Val operator>=(Val rhs) const;  // lowered as rhs <= lhs
  Val operator-() const;

 private:
  KernelBuilder* kb_ = nullptr;
  ExprId id_ = kNoExpr;
};

/// Handles for declared entities.
struct ArrayHandle {
  SymbolId id = -1;
};
struct ScalarHandle {
  SymbolId id = -1;
};
struct TempHandle {
  TempId id = -1;
};

class KernelBuilder {
 public:
  explicit KernelBuilder(std::string name);
  ~KernelBuilder();
  KernelBuilder(const KernelBuilder&) = delete;
  KernelBuilder& operator=(const KernelBuilder&) = delete;

  // ---- declarations ----
  Val ParamI64(const std::string& name);
  Val ParamF64(const std::string& name);
  ArrayHandle ArrayI64(const std::string& name, std::int64_t size);
  ArrayHandle ArrayF64(const std::string& name, std::int64_t size);
  ScalarHandle ScalarI64(const std::string& name);
  ScalarHandle ScalarF64(const std::string& name);
  TempHandle DeclTemp(const std::string& name, ScalarType type);
  TempHandle DeclCarriedI64(const std::string& name, std::int64_t init);
  TempHandle DeclCarriedF64(const std::string& name, double init);

  /// Looks up a previously declared entity by name (frontend support).
  bool HasName(const std::string& name) const;

  // ---- expressions ----
  Val ConstI(std::int64_t value);
  Val ConstF(double value);
  Val Iv();  // induction variable (valid inside the loop)
  Val Load(ArrayHandle array, Val index);
  Val LoadScalar(ScalarHandle scalar);
  Val Read(TempHandle temp);
  Val Unary(UnOp op, Val operand);
  Val Binary(BinOp op, Val lhs, Val rhs);
  Val Sqrt(Val v) { return Unary(UnOp::kSqrt, v); }
  Val Abs(Val v) { return Unary(UnOp::kAbs, v); }
  Val Not(Val v) { return Unary(UnOp::kNot, v); }
  Val ToF64(Val v);
  Val ToI64(Val v);
  Val Min(Val a, Val b) { return Binary(BinOp::kMin, a, b); }
  Val Max(Val a, Val b) { return Binary(BinOp::kMax, a, b); }
  Val Select(Val cond, Val if_true, Val if_false);

  // ---- statements ----
  /// Sets the source line attached to subsequently added statements.  When
  /// never called, lines auto-increment per statement.
  void SetLine(int line);
  void Assign(TempHandle temp, Val value);
  void Store(ArrayHandle array, Val index, Val value);
  void StoreScalar(ScalarHandle scalar, Val value);
  /// if (cond != 0) { then_fn() } else { else_fn() }.  `speculation_safe`
  /// is the paper's source directive marking both arms safe for ahead-of-
  /// time execution (Section III-H).
  void If(Val cond, const std::function<void()>& then_fn,
          const std::function<void()>& else_fn = nullptr,
          bool speculation_safe = false);

  // ---- loop structure ----
  /// Begins the loop; statements added afterwards form the body.
  void StartLoop(const std::string& iv_name, Val lower, Val upper);
  /// Ends the loop; statements added afterwards form the epilogue, which
  /// executes once after the loop (on the primary core).
  void EndLoop();

  /// Validates and returns the finished kernel.
  Kernel Finish();

  /// Access for Val operators.
  Kernel& kernel_under_construction() { return *kernel_; }

 private:
  friend class Val;
  Val MakeVal(ExprNode node);
  std::vector<Stmt>* CurrentList();
  int NextLine();
  void CheckNameFree(const std::string& name);

  std::unique_ptr<Kernel> kernel_;
  enum class Phase { kDecl, kLoop, kEpilogue, kDone } phase_ = Phase::kDecl;
  std::vector<std::vector<Stmt>*> stmt_stack_;
  int line_counter_ = 0;
  int explicit_line_ = -1;
  bool finished_ = false;
};

}  // namespace fgpar::ir
