#include "ir/builder.hpp"

#include "support/error.hpp"

namespace fgpar::ir {

ScalarType Val::type() const {
  FGPAR_CHECK_MSG(valid(), "use of invalid Val");
  return kb_->kernel_under_construction().expr(id_).type;
}

Val Val::operator+(Val rhs) const { return kb_->Binary(BinOp::kAdd, *this, rhs); }
Val Val::operator-(Val rhs) const { return kb_->Binary(BinOp::kSub, *this, rhs); }
Val Val::operator*(Val rhs) const { return kb_->Binary(BinOp::kMul, *this, rhs); }
Val Val::operator/(Val rhs) const { return kb_->Binary(BinOp::kDiv, *this, rhs); }
Val Val::operator%(Val rhs) const { return kb_->Binary(BinOp::kRem, *this, rhs); }
Val Val::operator&(Val rhs) const { return kb_->Binary(BinOp::kAnd, *this, rhs); }
Val Val::operator|(Val rhs) const { return kb_->Binary(BinOp::kOr, *this, rhs); }
Val Val::operator^(Val rhs) const { return kb_->Binary(BinOp::kXor, *this, rhs); }
Val Val::operator<<(Val rhs) const { return kb_->Binary(BinOp::kShl, *this, rhs); }
Val Val::operator>>(Val rhs) const { return kb_->Binary(BinOp::kShr, *this, rhs); }
Val Val::operator==(Val rhs) const { return kb_->Binary(BinOp::kEq, *this, rhs); }
Val Val::operator!=(Val rhs) const { return kb_->Binary(BinOp::kNe, *this, rhs); }
Val Val::operator<(Val rhs) const { return kb_->Binary(BinOp::kLt, *this, rhs); }
Val Val::operator<=(Val rhs) const { return kb_->Binary(BinOp::kLe, *this, rhs); }
Val Val::operator>(Val rhs) const { return kb_->Binary(BinOp::kLt, rhs, *this); }
Val Val::operator>=(Val rhs) const { return kb_->Binary(BinOp::kLe, rhs, *this); }
Val Val::operator-() const { return kb_->Unary(UnOp::kNeg, *this); }

KernelBuilder::KernelBuilder(std::string name)
    : kernel_(std::make_unique<Kernel>(std::move(name))) {}

KernelBuilder::~KernelBuilder() = default;

void KernelBuilder::CheckNameFree(const std::string& name) {
  FGPAR_CHECK_MSG(!HasName(name), "duplicate declaration: " + name);
}

bool KernelBuilder::HasName(const std::string& name) const {
  for (const Symbol& s : kernel_->symbols()) {
    if (s.name == name) {
      return true;
    }
  }
  for (const Temp& t : kernel_->temps()) {
    if (t.name == name) {
      return true;
    }
  }
  return false;
}

Val KernelBuilder::MakeVal(ExprNode node) {
  return Val(this, kernel_->AddExpr(node));
}

Val KernelBuilder::ParamI64(const std::string& name) {
  CheckNameFree(name);
  const SymbolId id = static_cast<SymbolId>(kernel_->symbols().size());
  kernel_->mutable_symbols().push_back(
      Symbol{id, name, SymbolKind::kParam, ScalarType::kI64, 0});
  return MakeVal(ExprNode{.kind = ExprKind::kParamRef, .type = ScalarType::kI64,
                          .sym = id});
}

Val KernelBuilder::ParamF64(const std::string& name) {
  CheckNameFree(name);
  const SymbolId id = static_cast<SymbolId>(kernel_->symbols().size());
  kernel_->mutable_symbols().push_back(
      Symbol{id, name, SymbolKind::kParam, ScalarType::kF64, 0});
  return MakeVal(ExprNode{.kind = ExprKind::kParamRef, .type = ScalarType::kF64,
                          .sym = id});
}

ArrayHandle KernelBuilder::ArrayI64(const std::string& name, std::int64_t size) {
  CheckNameFree(name);
  FGPAR_CHECK_MSG(size > 0, "array size must be positive: " + name);
  const SymbolId id = static_cast<SymbolId>(kernel_->symbols().size());
  kernel_->mutable_symbols().push_back(
      Symbol{id, name, SymbolKind::kArray, ScalarType::kI64, size});
  return ArrayHandle{id};
}

ArrayHandle KernelBuilder::ArrayF64(const std::string& name, std::int64_t size) {
  CheckNameFree(name);
  FGPAR_CHECK_MSG(size > 0, "array size must be positive: " + name);
  const SymbolId id = static_cast<SymbolId>(kernel_->symbols().size());
  kernel_->mutable_symbols().push_back(
      Symbol{id, name, SymbolKind::kArray, ScalarType::kF64, size});
  return ArrayHandle{id};
}

ScalarHandle KernelBuilder::ScalarI64(const std::string& name) {
  CheckNameFree(name);
  const SymbolId id = static_cast<SymbolId>(kernel_->symbols().size());
  kernel_->mutable_symbols().push_back(
      Symbol{id, name, SymbolKind::kScalar, ScalarType::kI64, 0});
  return ScalarHandle{id};
}

ScalarHandle KernelBuilder::ScalarF64(const std::string& name) {
  CheckNameFree(name);
  const SymbolId id = static_cast<SymbolId>(kernel_->symbols().size());
  kernel_->mutable_symbols().push_back(
      Symbol{id, name, SymbolKind::kScalar, ScalarType::kF64, 0});
  return ScalarHandle{id};
}

TempHandle KernelBuilder::DeclTemp(const std::string& name, ScalarType type) {
  CheckNameFree(name);
  const TempId id = static_cast<TempId>(kernel_->temps().size());
  kernel_->mutable_temps().push_back(Temp{id, name, type, false, 0, 0.0});
  return TempHandle{id};
}

TempHandle KernelBuilder::DeclCarriedI64(const std::string& name, std::int64_t init) {
  CheckNameFree(name);
  const TempId id = static_cast<TempId>(kernel_->temps().size());
  kernel_->mutable_temps().push_back(
      Temp{id, name, ScalarType::kI64, true, init, 0.0});
  return TempHandle{id};
}

TempHandle KernelBuilder::DeclCarriedF64(const std::string& name, double init) {
  CheckNameFree(name);
  const TempId id = static_cast<TempId>(kernel_->temps().size());
  kernel_->mutable_temps().push_back(Temp{id, name, ScalarType::kF64, true, 0, init});
  return TempHandle{id};
}

Val KernelBuilder::ConstI(std::int64_t value) {
  return MakeVal(ExprNode{.kind = ExprKind::kConstI, .type = ScalarType::kI64,
                          .const_i = value});
}

Val KernelBuilder::ConstF(double value) {
  return MakeVal(ExprNode{.kind = ExprKind::kConstF, .type = ScalarType::kF64,
                          .const_f = value});
}

Val KernelBuilder::Iv() {
  return MakeVal(ExprNode{.kind = ExprKind::kIvRef, .type = ScalarType::kI64});
}

Val KernelBuilder::Load(ArrayHandle array, Val index) {
  const Symbol& sym = kernel_->symbol(array.id);
  FGPAR_CHECK_MSG(sym.kind == SymbolKind::kArray, "Load target must be an array");
  FGPAR_CHECK_MSG(index.type() == ScalarType::kI64, "array index must be i64");
  ExprNode node{.kind = ExprKind::kArrayRef, .type = sym.type, .sym = array.id};
  node.child[0] = index.id();
  return MakeVal(node);
}

Val KernelBuilder::LoadScalar(ScalarHandle scalar) {
  const Symbol& sym = kernel_->symbol(scalar.id);
  FGPAR_CHECK_MSG(sym.kind == SymbolKind::kScalar, "LoadScalar target must be scalar");
  return MakeVal(ExprNode{.kind = ExprKind::kScalarRef, .type = sym.type,
                          .sym = scalar.id});
}

Val KernelBuilder::Read(TempHandle temp) {
  const Temp& t = kernel_->temp(temp.id);
  return MakeVal(ExprNode{.kind = ExprKind::kTempRef, .type = t.type, .temp = t.id});
}

Val KernelBuilder::Unary(UnOp op, Val operand) {
  FGPAR_CHECK_MSG(operand.valid(), "invalid operand");
  const ScalarType in = operand.type();
  ScalarType out = in;
  switch (op) {
    case UnOp::kNeg:
    case UnOp::kAbs:
      break;
    case UnOp::kSqrt:
      FGPAR_CHECK_MSG(in == ScalarType::kF64, "sqrt requires f64");
      break;
    case UnOp::kNot:
      FGPAR_CHECK_MSG(in == ScalarType::kI64, "not requires i64");
      break;
    case UnOp::kI2F:
      FGPAR_CHECK_MSG(in == ScalarType::kI64, "i2f requires i64");
      out = ScalarType::kF64;
      break;
    case UnOp::kF2I:
      FGPAR_CHECK_MSG(in == ScalarType::kF64, "f2i requires f64");
      out = ScalarType::kI64;
      break;
  }
  ExprNode node{.kind = ExprKind::kUnary, .type = out, .un = op};
  node.child[0] = operand.id();
  return MakeVal(node);
}

Val KernelBuilder::Binary(BinOp op, Val lhs, Val rhs) {
  FGPAR_CHECK_MSG(lhs.valid() && rhs.valid(), "invalid operand");
  FGPAR_CHECK_MSG(lhs.type() == rhs.type(),
                  "operand type mismatch (insert explicit casts)");
  if (IsIntOnly(op)) {
    FGPAR_CHECK_MSG(lhs.type() == ScalarType::kI64, "int-only operator on f64");
  }
  const ScalarType out = IsComparison(op) ? ScalarType::kI64 : lhs.type();
  ExprNode node{.kind = ExprKind::kBinary, .type = out, .bin = op};
  node.child[0] = lhs.id();
  node.child[1] = rhs.id();
  return MakeVal(node);
}

Val KernelBuilder::ToF64(Val v) {
  return v.type() == ScalarType::kF64 ? v : Unary(UnOp::kI2F, v);
}

Val KernelBuilder::ToI64(Val v) {
  return v.type() == ScalarType::kI64 ? v : Unary(UnOp::kF2I, v);
}

Val KernelBuilder::Select(Val cond, Val if_true, Val if_false) {
  FGPAR_CHECK_MSG(cond.type() == ScalarType::kI64, "select condition must be i64");
  FGPAR_CHECK_MSG(if_true.type() == if_false.type(), "select arm type mismatch");
  ExprNode node{.kind = ExprKind::kSelect, .type = if_true.type()};
  node.child[0] = cond.id();
  node.child[1] = if_true.id();
  node.child[2] = if_false.id();
  return MakeVal(node);
}

std::vector<Stmt>* KernelBuilder::CurrentList() {
  if (!stmt_stack_.empty()) {
    return stmt_stack_.back();
  }
  switch (phase_) {
    case Phase::kLoop:
      return &kernel_->mutable_loop().body;
    case Phase::kEpilogue:
      return &kernel_->mutable_epilogue();
    default:
      throw Error("statements may only be added inside StartLoop/EndLoop "
                  "or the epilogue");
  }
}

void KernelBuilder::SetLine(int line) { explicit_line_ = line; }

int KernelBuilder::NextLine() {
  if (explicit_line_ >= 0) {
    const int line = explicit_line_;
    explicit_line_ = -1;
    return line;
  }
  return ++line_counter_;
}

void KernelBuilder::Assign(TempHandle temp, Val value) {
  const Temp& t = kernel_->temp(temp.id);
  FGPAR_CHECK_MSG(value.type() == t.type, "assignment type mismatch: " + t.name);
  Stmt stmt;
  stmt.id = kernel_->AllocateStmtId();
  stmt.kind = StmtKind::kAssignTemp;
  stmt.source_line = NextLine();
  stmt.temp = temp.id;
  stmt.value = value.id();
  CurrentList()->push_back(std::move(stmt));
}

void KernelBuilder::Store(ArrayHandle array, Val index, Val value) {
  const Symbol& sym = kernel_->symbol(array.id);
  FGPAR_CHECK_MSG(sym.kind == SymbolKind::kArray, "Store target must be an array");
  FGPAR_CHECK_MSG(index.type() == ScalarType::kI64, "array index must be i64");
  FGPAR_CHECK_MSG(value.type() == sym.type, "store type mismatch: " + sym.name);
  Stmt stmt;
  stmt.id = kernel_->AllocateStmtId();
  stmt.kind = StmtKind::kStoreArray;
  stmt.source_line = NextLine();
  stmt.sym = array.id;
  stmt.index = index.id();
  stmt.value = value.id();
  CurrentList()->push_back(std::move(stmt));
}

void KernelBuilder::StoreScalar(ScalarHandle scalar, Val value) {
  const Symbol& sym = kernel_->symbol(scalar.id);
  FGPAR_CHECK_MSG(sym.kind == SymbolKind::kScalar, "StoreScalar target must be scalar");
  FGPAR_CHECK_MSG(value.type() == sym.type, "store type mismatch: " + sym.name);
  Stmt stmt;
  stmt.id = kernel_->AllocateStmtId();
  stmt.kind = StmtKind::kStoreScalar;
  stmt.source_line = NextLine();
  stmt.sym = scalar.id;
  stmt.value = value.id();
  CurrentList()->push_back(std::move(stmt));
}

void KernelBuilder::If(Val cond, const std::function<void()>& then_fn,
                       const std::function<void()>& else_fn, bool speculation_safe) {
  FGPAR_CHECK_MSG(cond.type() == ScalarType::kI64, "if condition must be i64");
  Stmt stmt;
  stmt.id = kernel_->AllocateStmtId();
  stmt.kind = StmtKind::kIf;
  stmt.source_line = NextLine();
  stmt.value = cond.id();
  stmt.speculation_safe = speculation_safe;

  std::vector<Stmt>* parent = CurrentList();
  parent->push_back(std::move(stmt));
  Stmt& placed = parent->back();

  stmt_stack_.push_back(&placed.then_body);
  then_fn();
  stmt_stack_.pop_back();
  if (else_fn) {
    stmt_stack_.push_back(&placed.else_body);
    else_fn();
    stmt_stack_.pop_back();
  }
}

void KernelBuilder::StartLoop(const std::string& iv_name, Val lower, Val upper) {
  FGPAR_CHECK_MSG(phase_ == Phase::kDecl, "StartLoop called twice");
  FGPAR_CHECK_MSG(lower.type() == ScalarType::kI64 && upper.type() == ScalarType::kI64,
                  "loop bounds must be i64");
  kernel_->mutable_loop().iv_name = iv_name;
  kernel_->mutable_loop().lower = lower.id();
  kernel_->mutable_loop().upper = upper.id();
  phase_ = Phase::kLoop;
}

void KernelBuilder::EndLoop() {
  FGPAR_CHECK_MSG(phase_ == Phase::kLoop, "EndLoop without StartLoop");
  FGPAR_CHECK_MSG(stmt_stack_.empty(), "EndLoop inside an If body");
  phase_ = Phase::kEpilogue;
}

Kernel KernelBuilder::Finish() {
  FGPAR_CHECK_MSG(!finished_, "Finish called twice");
  FGPAR_CHECK_MSG(phase_ == Phase::kLoop || phase_ == Phase::kEpilogue,
                  "kernel has no loop");
  FGPAR_CHECK_MSG(stmt_stack_.empty(), "Finish inside an If body");
  finished_ = true;
  phase_ = Phase::kDone;
  return std::move(*kernel_);
}

}  // namespace fgpar::ir
