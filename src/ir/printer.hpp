// Pretty-printer: renders a kernel in (approximately) the kernel language
// syntax, for debugging and golden tests of compiler passes.
#pragma once

#include <string>

#include "ir/kernel.hpp"

namespace fgpar::ir {

/// Renders one expression.
std::string PrintExpr(const Kernel& kernel, ExprId id);

/// Renders a statement list at the given indent depth.
std::string PrintStmts(const Kernel& kernel, const std::vector<Stmt>& stmts,
                       int indent = 0);

/// Renders the whole kernel: declarations, loop, epilogue.
std::string PrintKernel(const Kernel& kernel);

}  // namespace fgpar::ir
