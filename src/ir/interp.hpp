// Reference interpreter — the golden model.
//
// Executes a kernel sequentially over the same flat word memory and
// DataLayout the simulator uses, with identical arithmetic semantics to the
// simulated ISA (trunc-toward-zero conversions, fmin/fmax, masked shifts,
// trapping integer division).  Every compiled execution — sequential or
// fine-grained parallel — must produce bit-identical memory to this
// interpreter; that property anchors the whole compiler test suite.
//
// Array accesses are bounds-checked against the declared array sizes, so a
// mis-built kernel faults here before it ever reaches the simulator.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "ir/kernel.hpp"
#include "ir/layout.hpp"

namespace fgpar::ir {

/// Observes every memory access the interpreter performs (profile feedback,
/// Section III-I.3 of the paper).
using AccessObserver =
    std::function<void(SymbolId sym, std::uint64_t addr, bool is_write)>;

struct InterpStats {
  std::uint64_t iterations = 0;
  std::uint64_t stmts_executed = 0;
  std::uint64_t exprs_evaluated = 0;
};

class Interpreter {
 public:
  Interpreter(const Kernel& kernel, const DataLayout& layout,
              const ParamEnv& params, std::vector<std::uint64_t>& memory);

  /// Runs loop + epilogue; mutates `memory`.
  InterpStats Run();

  /// Installs a memory-access observer (must be called before Run).
  void SetAccessObserver(AccessObserver observer) { observer_ = std::move(observer); }

  /// Final raw value of a temp after Run (for live-out checks in tests).
  std::uint64_t TempValue(TempId temp) const;

 private:
  std::uint64_t Eval(ExprId id);
  void ExecList(const std::vector<Stmt>& stmts);
  void Exec(const Stmt& stmt);
  void CheckArrayIndex(SymbolId sym, std::int64_t index) const;

  const Kernel& kernel_;
  const DataLayout& layout_;
  const ParamEnv& params_;
  std::vector<std::uint64_t>& memory_;
  std::vector<std::uint64_t> temp_values_;
  std::int64_t iv_ = 0;
  InterpStats stats_;
  AccessObserver observer_;
};

}  // namespace fgpar::ir
