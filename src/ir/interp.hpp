// Reference interpreter — the golden model.
//
// Executes a kernel sequentially over the same flat word memory and
// DataLayout the simulator uses, with identical arithmetic semantics to the
// simulated ISA (trunc-toward-zero conversions, fmin/fmax, masked shifts,
// trapping integer division).  Every compiled execution — sequential or
// fine-grained parallel — must produce bit-identical memory to this
// interpreter; that property anchors the whole compiler test suite.
//
// Array accesses are bounds-checked against the declared array sizes, so a
// mis-built kernel faults here before it ever reaches the simulator.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "ir/kernel.hpp"
#include "ir/layout.hpp"

namespace fgpar::ir {

/// Observes every memory access the interpreter performs (profile feedback,
/// Section III-I.3 of the paper).
using AccessObserver =
    std::function<void(SymbolId sym, std::uint64_t addr, bool is_write)>;

/// Observes every statement execution (called once per Exec, before the
/// statement runs).  Profile collection uses this to learn per-statement
/// execution frequencies — how often each conditional arm is actually taken.
using StmtObserver = std::function<void(StmtId stmt)>;

struct InterpStats {
  std::uint64_t iterations = 0;
  std::uint64_t stmts_executed = 0;
  std::uint64_t exprs_evaluated = 0;
};

class Interpreter {
 public:
  Interpreter(const Kernel& kernel, const DataLayout& layout,
              const ParamEnv& params, std::vector<std::uint64_t>& memory);

  /// Runs loop + epilogue; mutates `memory`.
  InterpStats Run();

  /// Installs a memory-access observer (must be called before Run).
  void SetAccessObserver(AccessObserver observer) { observer_ = std::move(observer); }

  /// Installs a statement-execution observer (must be called before Run).
  void SetStmtObserver(StmtObserver observer) { stmt_observer_ = std::move(observer); }

  /// Id of the statement currently executing — valid inside an observer
  /// callback (-1 while evaluating loop bounds).  Lets profile collection
  /// attribute accesses to individual statements, not just symbols.
  StmtId current_stmt() const { return current_stmt_; }

  /// Final raw value of a temp after Run (for live-out checks in tests).
  std::uint64_t TempValue(TempId temp) const;

 private:
  std::uint64_t Eval(ExprId id);
  void ExecList(const std::vector<Stmt>& stmts);
  void Exec(const Stmt& stmt);
  void CheckArrayIndex(SymbolId sym, std::int64_t index) const;

  const Kernel& kernel_;
  const DataLayout& layout_;
  const ParamEnv& params_;
  std::vector<std::uint64_t>& memory_;
  std::vector<std::uint64_t> temp_values_;
  std::int64_t iv_ = 0;
  StmtId current_stmt_ = -1;
  InterpStats stats_;
  AccessObserver observer_;
  StmtObserver stmt_observer_;
};

}  // namespace fgpar::ir
