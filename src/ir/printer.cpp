#include "ir/printer.hpp"

#include <sstream>

#include "support/error.hpp"
#include "support/str.hpp"

namespace fgpar::ir {
namespace {

std::string Indent(int depth) { return std::string(static_cast<std::size_t>(depth) * 2, ' '); }

}  // namespace

std::string PrintExpr(const Kernel& k, ExprId id) {
  const ExprNode& node = k.expr(id);
  switch (node.kind) {
    case ExprKind::kConstI:
      return std::to_string(node.const_i);
    case ExprKind::kConstF: {
      std::ostringstream os;
      os << node.const_f;
      std::string s = os.str();
      if (s.find('.') == std::string::npos && s.find('e') == std::string::npos &&
          s.find("inf") == std::string::npos && s.find("nan") == std::string::npos) {
        s += ".0";
      }
      return s;
    }
    case ExprKind::kIvRef:
      return k.loop().iv_name;
    case ExprKind::kParamRef:
    case ExprKind::kScalarRef:
      return k.symbol(node.sym).name;
    case ExprKind::kArrayRef:
      return k.symbol(node.sym).name + "[" + PrintExpr(k, node.child[0]) + "]";
    case ExprKind::kTempRef:
      return k.temp(node.temp).name;
    case ExprKind::kUnary:
      switch (node.un) {
        case UnOp::kNeg:
          return "(-" + PrintExpr(k, node.child[0]) + ")";
        case UnOp::kNot:
          return "(!" + PrintExpr(k, node.child[0]) + ")";
        case UnOp::kI2F:  // printed in the language's cast spelling so the
          return "f64(" + PrintExpr(k, node.child[0]) + ")";
        case UnOp::kF2I:  // printed kernel re-parses (see printer tests)
          return "i64(" + PrintExpr(k, node.child[0]) + ")";
        default:
          return std::string(UnOpName(node.un)) + "(" +
                 PrintExpr(k, node.child[0]) + ")";
      }
    case ExprKind::kBinary:
      if (node.bin == BinOp::kMin || node.bin == BinOp::kMax) {
        return std::string(BinOpName(node.bin)) + "(" + PrintExpr(k, node.child[0]) +
               ", " + PrintExpr(k, node.child[1]) + ")";
      }
      return "(" + PrintExpr(k, node.child[0]) + " " +
             std::string(BinOpName(node.bin)) + " " + PrintExpr(k, node.child[1]) +
             ")";
    case ExprKind::kSelect:
      return "select(" + PrintExpr(k, node.child[0]) + ", " +
             PrintExpr(k, node.child[1]) + ", " + PrintExpr(k, node.child[2]) + ")";
  }
  FGPAR_UNREACHABLE("bad ExprKind");
}

std::string PrintStmts(const Kernel& k, const std::vector<Stmt>& stmts, int indent) {
  std::ostringstream os;
  for (const Stmt& stmt : stmts) {
    os << Indent(indent);
    switch (stmt.kind) {
      case StmtKind::kAssignTemp: {
        // Plain temps are single-assignment: their one assignment is also
        // their declaration, so print it in the kernel language's defining
        // form — this keeps PrintKernel output re-parseable.
        const Temp& temp = k.temp(stmt.temp);
        if (!temp.carried) {
          os << TypeName(temp.type) << ' ';
        }
        os << temp.name << " = " << PrintExpr(k, stmt.value) << ";";
        break;
      }
      case StmtKind::kStoreScalar:
        os << k.symbol(stmt.sym).name << " = " << PrintExpr(k, stmt.value) << ";";
        break;
      case StmtKind::kStoreArray:
        os << k.symbol(stmt.sym).name << "[" << PrintExpr(k, stmt.index)
           << "] = " << PrintExpr(k, stmt.value) << ";";
        break;
      case StmtKind::kIf:
        os << (stmt.speculation_safe ? "@speculate " : "") << "if ("
           << PrintExpr(k, stmt.value) << ") {\n"
           << PrintStmts(k, stmt.then_body, indent + 1) << Indent(indent) << "}";
        if (!stmt.else_body.empty()) {
          os << " else {\n"
             << PrintStmts(k, stmt.else_body, indent + 1) << Indent(indent) << "}";
        }
        break;
    }
    os << "   # line " << stmt.source_line << ", s" << stmt.id << "\n";
  }
  return os.str();
}

std::string PrintKernel(const Kernel& k) {
  std::ostringstream os;
  os << "kernel " << k.name() << " {\n";
  for (const Symbol& sym : k.symbols()) {
    os << "  ";
    switch (sym.kind) {
      case SymbolKind::kParam:
        os << "param " << TypeName(sym.type) << " " << sym.name << ";";
        break;
      case SymbolKind::kScalar:
        os << "scalar " << TypeName(sym.type) << " " << sym.name << ";";
        break;
      case SymbolKind::kArray:
        os << "array " << TypeName(sym.type) << " " << sym.name << "["
           << sym.array_size << "];";
        break;
    }
    os << "\n";
  }
  for (const Temp& t : k.temps()) {
    if (t.carried) {
      os << "  carried " << TypeName(t.type) << " " << t.name << " = "
         << (t.type == ScalarType::kI64 ? std::to_string(t.init_i)
                                        : FormatFixed(t.init_f, 6))
         << ";\n";
    }
  }
  os << "  loop " << k.loop().iv_name << " = " << PrintExpr(k, k.loop().lower)
     << " .. " << PrintExpr(k, k.loop().upper) << " {\n"
     << PrintStmts(k, k.loop().body, 2) << "  }\n";
  if (!k.epilogue().empty()) {
    os << "  after {\n" << PrintStmts(k, k.epilogue(), 2) << "  }\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace fgpar::ir
