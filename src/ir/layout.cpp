#include "ir/layout.hpp"

#include <bit>

#include "support/error.hpp"

namespace fgpar::ir {

DataLayout::DataLayout(const Kernel& kernel, std::uint64_t base, int align_words) {
  FGPAR_CHECK(align_words >= 1);
  std::uint64_t cursor = base;
  auto align = [&](std::uint64_t x) {
    const std::uint64_t a = static_cast<std::uint64_t>(align_words);
    return (x + a - 1) / a * a;
  };
  address_.resize(kernel.symbols().size(), -1);
  param_address_.resize(kernel.symbols().size(), -1);
  for (const Symbol& sym : kernel.symbols()) {
    switch (sym.kind) {
      case SymbolKind::kParam:
        param_address_[static_cast<std::size_t>(sym.id)] =
            static_cast<std::int64_t>(cursor);
        cursor += 1;
        break;
      case SymbolKind::kScalar:
        cursor = align(cursor);
        address_[static_cast<std::size_t>(sym.id)] = static_cast<std::int64_t>(cursor);
        cursor += 1 + 1;  // slot + guard word
        break;
      case SymbolKind::kArray:
        cursor = align(cursor);
        address_[static_cast<std::size_t>(sym.id)] = static_cast<std::int64_t>(cursor);
        cursor += static_cast<std::uint64_t>(sym.array_size) + 1;  // + guard
        break;
    }
  }
  end_ = align(cursor);
}

std::uint64_t DataLayout::AddressOf(SymbolId sym) const {
  FGPAR_CHECK_MSG(sym >= 0 && static_cast<std::size_t>(sym) < address_.size(),
                  "bad symbol id in layout");
  const std::int64_t addr = address_[static_cast<std::size_t>(sym)];
  FGPAR_CHECK_MSG(addr >= 0, "parameters have no memory address");
  return static_cast<std::uint64_t>(addr);
}

std::uint64_t DataLayout::ParamAddressOf(SymbolId sym) const {
  FGPAR_CHECK_MSG(sym >= 0 && static_cast<std::size_t>(sym) < param_address_.size(),
                  "bad symbol id in layout");
  const std::int64_t addr = param_address_[static_cast<std::size_t>(sym)];
  FGPAR_CHECK_MSG(addr >= 0, "symbol is not a parameter");
  return static_cast<std::uint64_t>(addr);
}

ParamEnv::ParamEnv(const Kernel& kernel)
    : kernel_(&kernel),
      raw_(kernel.symbols().size(), 0),
      set_(kernel.symbols().size(), false) {}

void ParamEnv::SetI64(SymbolId sym, std::int64_t value) {
  const Symbol& s = kernel_->symbol(sym);
  FGPAR_CHECK_MSG(s.kind == SymbolKind::kParam && s.type == ScalarType::kI64,
                  "SetI64 on non-i64-param: " + s.name);
  raw_[static_cast<std::size_t>(sym)] = static_cast<std::uint64_t>(value);
  set_[static_cast<std::size_t>(sym)] = true;
}

void ParamEnv::SetF64(SymbolId sym, double value) {
  const Symbol& s = kernel_->symbol(sym);
  FGPAR_CHECK_MSG(s.kind == SymbolKind::kParam && s.type == ScalarType::kF64,
                  "SetF64 on non-f64-param: " + s.name);
  raw_[static_cast<std::size_t>(sym)] = std::bit_cast<std::uint64_t>(value);
  set_[static_cast<std::size_t>(sym)] = true;
}

std::int64_t ParamEnv::GetI64(SymbolId sym) const {
  FGPAR_CHECK_MSG(IsSet(sym), "parameter not set: " + kernel_->symbol(sym).name);
  return static_cast<std::int64_t>(raw_[static_cast<std::size_t>(sym)]);
}

double ParamEnv::GetF64(SymbolId sym) const {
  FGPAR_CHECK_MSG(IsSet(sym), "parameter not set: " + kernel_->symbol(sym).name);
  return std::bit_cast<double>(raw_[static_cast<std::size_t>(sym)]);
}

std::uint64_t ParamEnv::GetRaw(SymbolId sym) const {
  FGPAR_CHECK_MSG(IsSet(sym), "parameter not set: " + kernel_->symbol(sym).name);
  return raw_[static_cast<std::size_t>(sym)];
}

bool ParamEnv::IsSet(SymbolId sym) const {
  FGPAR_CHECK(sym >= 0 && static_cast<std::size_t>(sym) < set_.size());
  return set_[static_cast<std::size_t>(sym)];
}

void ParamEnv::CheckComplete(const Kernel& kernel) const {
  for (const Symbol& sym : kernel.symbols()) {
    if (sym.kind == SymbolKind::kParam) {
      FGPAR_CHECK_MSG(IsSet(sym.id), "unset kernel parameter: " + sym.name);
    }
  }
}

}  // namespace fgpar::ir
