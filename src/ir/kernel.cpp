#include "ir/kernel.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace fgpar::ir {

std::string_view TypeName(ScalarType type) {
  return type == ScalarType::kI64 ? "i64" : "f64";
}

bool IsComparison(BinOp op) {
  return op == BinOp::kEq || op == BinOp::kNe || op == BinOp::kLt || op == BinOp::kLe;
}

bool IsIntOnly(BinOp op) {
  switch (op) {
    case BinOp::kRem: case BinOp::kAnd: case BinOp::kOr: case BinOp::kXor:
    case BinOp::kShl: case BinOp::kShr:
      return true;
    default:
      return false;
  }
}

std::string_view UnOpName(UnOp op) {
  switch (op) {
    case UnOp::kNeg: return "neg";
    case UnOp::kAbs: return "abs";
    case UnOp::kSqrt: return "sqrt";
    case UnOp::kNot: return "not";
    case UnOp::kI2F: return "i2f";
    case UnOp::kF2I: return "f2i";
  }
  FGPAR_UNREACHABLE("bad UnOp");
}

std::string_view BinOpName(BinOp op) {
  switch (op) {
    case BinOp::kAdd: return "+";
    case BinOp::kSub: return "-";
    case BinOp::kMul: return "*";
    case BinOp::kDiv: return "/";
    case BinOp::kRem: return "%";
    case BinOp::kMin: return "min";
    case BinOp::kMax: return "max";
    case BinOp::kAnd: return "&";
    case BinOp::kOr: return "|";
    case BinOp::kXor: return "^";
    case BinOp::kShl: return "<<";
    case BinOp::kShr: return ">>";
    case BinOp::kEq: return "==";
    case BinOp::kNe: return "!=";
    case BinOp::kLt: return "<";
    case BinOp::kLe: return "<=";
  }
  FGPAR_UNREACHABLE("bad BinOp");
}

int ChildCount(const ExprNode& node) {
  switch (node.kind) {
    case ExprKind::kConstI: case ExprKind::kConstF: case ExprKind::kIvRef:
    case ExprKind::kParamRef: case ExprKind::kScalarRef: case ExprKind::kTempRef:
      return 0;
    case ExprKind::kArrayRef: case ExprKind::kUnary:
      return 1;
    case ExprKind::kBinary:
      return 2;
    case ExprKind::kSelect:
      return 3;
  }
  FGPAR_UNREACHABLE("bad ExprKind");
}

bool IsPartitionLeaf(ExprKind kind) {
  switch (kind) {
    case ExprKind::kConstI: case ExprKind::kConstF: case ExprKind::kIvRef:
    case ExprKind::kParamRef: case ExprKind::kScalarRef: case ExprKind::kTempRef:
    case ExprKind::kArrayRef:
      return true;
    default:
      return false;
  }
}

const Symbol& Kernel::symbol(SymbolId id) const {
  FGPAR_CHECK_MSG(id >= 0 && static_cast<std::size_t>(id) < symbols_.size(),
                  "bad symbol id");
  return symbols_[static_cast<std::size_t>(id)];
}

const Temp& Kernel::temp(TempId id) const {
  FGPAR_CHECK_MSG(id >= 0 && static_cast<std::size_t>(id) < temps_.size(),
                  "bad temp id");
  return temps_[static_cast<std::size_t>(id)];
}

const ExprNode& Kernel::expr(ExprId id) const {
  FGPAR_CHECK_MSG(id >= 0 && static_cast<std::size_t>(id) < exprs_.size(),
                  "bad expr id");
  return exprs_[static_cast<std::size_t>(id)];
}

ExprId Kernel::AddExpr(ExprNode node) {
  exprs_.push_back(node);
  return static_cast<ExprId>(exprs_.size()) - 1;
}

namespace {
void RenumberList(std::vector<Stmt>& stmts, int& next) {
  for (Stmt& stmt : stmts) {
    stmt.id = next++;
    if (stmt.kind == StmtKind::kIf) {
      RenumberList(stmt.then_body, next);
      RenumberList(stmt.else_body, next);
    }
  }
}
}  // namespace

void Kernel::RenumberStmts() {
  int next = 0;
  RenumberList(loop_.body, next);
  RenumberList(epilogue_, next);
  next_stmt_id_ = next;
}

void Kernel::VisitExpr(ExprId id, const std::function<void(ExprId)>& fn) const {
  const ExprNode& node = expr(id);
  for (int c = 0; c < ChildCount(node); ++c) {
    VisitExpr(node.child[static_cast<std::size_t>(c)], fn);
  }
  fn(id);
}

void Kernel::VisitStmts(const std::vector<Stmt>& stmts,
                        const std::function<void(const Stmt&)>& fn) {
  for (const Stmt& stmt : stmts) {
    fn(stmt);
    if (stmt.kind == StmtKind::kIf) {
      VisitStmts(stmt.then_body, fn);
      VisitStmts(stmt.else_body, fn);
    }
  }
}

void Kernel::VisitAllStmts(const std::function<void(const Stmt&)>& fn) const {
  VisitStmts(loop_.body, fn);
  VisitStmts(epilogue_, fn);
}

std::vector<TempId> Kernel::TempsReadBy(ExprId id) const {
  std::vector<TempId> out;
  VisitExpr(id, [&](ExprId e) {
    const ExprNode& node = expr(e);
    if (node.kind == ExprKind::kTempRef &&
        std::find(out.begin(), out.end(), node.temp) == out.end()) {
      out.push_back(node.temp);
    }
  });
  return out;
}

std::vector<SymbolId> Kernel::SymbolsReadBy(ExprId id) const {
  std::vector<SymbolId> out;
  VisitExpr(id, [&](ExprId e) {
    const ExprNode& node = expr(e);
    if ((node.kind == ExprKind::kScalarRef || node.kind == ExprKind::kArrayRef) &&
        std::find(out.begin(), out.end(), node.sym) == out.end()) {
      out.push_back(node.sym);
    }
  });
  return out;
}

bool Kernel::UsesIv(ExprId id) const {
  bool uses = false;
  VisitExpr(id, [&](ExprId e) { uses |= expr(e).kind == ExprKind::kIvRef; });
  return uses;
}

int Kernel::ExprDepth(ExprId id) const {
  const ExprNode& node = expr(id);
  int depth = 0;
  for (int c = 0; c < ChildCount(node); ++c) {
    depth = std::max(depth, ExprDepth(node.child[static_cast<std::size_t>(c)]));
  }
  return depth + 1;
}

int Kernel::ComputeOpCount(ExprId id) const {
  int count = 0;
  VisitExpr(id, [&](ExprId e) {
    if (!IsPartitionLeaf(expr(e).kind)) {
      ++count;
    }
  });
  return count;
}

}  // namespace fgpar::ir
