#include "ir/validate.hpp"

#include <map>
#include <set>
#include <sstream>

#include "support/error.hpp"

namespace fgpar::ir {
namespace {

/// One (if-statement, branch) step on a statement's control path.
struct PathStep {
  StmtId if_stmt;
  bool then_branch;
  bool operator==(const PathStep&) const = default;
};
using ControlPath = std::vector<PathStep>;

class Validator {
 public:
  explicit Validator(const Kernel& kernel) : k_(kernel) {}

  std::vector<std::string> Run() {
    CheckBounds();
    CollectDefs(k_.loop().body, {}, /*in_epilogue=*/false);
    CollectDefs(k_.epilogue(), {}, /*in_epilogue=*/true);
    CheckAssignmentCounts();
    CheckUses(k_.loop().body, {}, /*in_epilogue=*/false);
    CheckUses(k_.epilogue(), {}, /*in_epilogue=*/true);
    return problems_;
  }

 private:
  void Problem(const std::string& message) { problems_.push_back(message); }

  void CheckExprWellFormed(ExprId id) {
    if (id < 0 || static_cast<std::size_t>(id) >= k_.expr_count()) {
      Problem("expression id out of range: " + std::to_string(id));
      return;
    }
    const ExprNode& node = k_.expr(id);
    for (int c = 0; c < ChildCount(node); ++c) {
      const ExprId child = node.child[static_cast<std::size_t>(c)];
      if (child < 0 || static_cast<std::size_t>(child) >= k_.expr_count()) {
        Problem("child expression id out of range under expr " + std::to_string(id));
        return;
      }
      CheckExprWellFormed(child);
    }
    // Local type re-checks.
    switch (node.kind) {
      case ExprKind::kArrayRef:
        if (k_.symbol(node.sym).kind != SymbolKind::kArray) {
          Problem("ArrayRef of non-array symbol " + k_.symbol(node.sym).name);
        }
        if (k_.expr(node.child[0]).type != ScalarType::kI64) {
          Problem("non-i64 array index under expr " + std::to_string(id));
        }
        break;
      case ExprKind::kBinary:
        if (k_.expr(node.child[0]).type != k_.expr(node.child[1]).type) {
          Problem("binary operand type mismatch under expr " + std::to_string(id));
        }
        if (IsIntOnly(node.bin) && k_.expr(node.child[0]).type != ScalarType::kI64) {
          Problem("int-only operator applied to f64 under expr " + std::to_string(id));
        }
        break;
      case ExprKind::kSelect:
        if (k_.expr(node.child[0]).type != ScalarType::kI64) {
          Problem("select condition is not i64 under expr " + std::to_string(id));
        }
        if (k_.expr(node.child[1]).type != k_.expr(node.child[2]).type) {
          Problem("select arm type mismatch under expr " + std::to_string(id));
        }
        break;
      default:
        break;
    }
  }

  void CheckBoundExprRestriction(ExprId id, const char* which) {
    k_.VisitExpr(id, [&](ExprId e) {
      switch (k_.expr(e).kind) {
        case ExprKind::kConstI: case ExprKind::kConstF: case ExprKind::kParamRef:
        case ExprKind::kUnary: case ExprKind::kBinary:
          break;
        default:
          Problem(std::string("loop ") + which +
                  " bound may reference only constants and parameters");
      }
    });
  }

  void CheckBounds() {
    if (k_.loop().lower == kNoExpr || k_.loop().upper == kNoExpr) {
      Problem("kernel has no loop bounds");
      return;
    }
    CheckExprWellFormed(k_.loop().lower);
    CheckExprWellFormed(k_.loop().upper);
    CheckBoundExprRestriction(k_.loop().lower, "lower");
    CheckBoundExprRestriction(k_.loop().upper, "upper");
    if (k_.expr(k_.loop().lower).type != ScalarType::kI64 ||
        k_.expr(k_.loop().upper).type != ScalarType::kI64) {
      Problem("loop bounds must be i64");
    }
  }

  void CollectDefs(const std::vector<Stmt>& stmts, const ControlPath& path,
                   bool in_epilogue) {
    for (const Stmt& stmt : stmts) {
      if (!seen_stmt_ids_.insert(stmt.id).second) {
        Problem("duplicate statement id " + std::to_string(stmt.id));
      }
      if (stmt.kind == StmtKind::kAssignTemp) {
        defs_[stmt.temp].push_back(Def{stmt.id, path, in_epilogue});
      }
      if (stmt.kind == StmtKind::kIf) {
        ControlPath then_path = path;
        then_path.push_back(PathStep{stmt.id, true});
        CollectDefs(stmt.then_body, then_path, in_epilogue);
        ControlPath else_path = path;
        else_path.push_back(PathStep{stmt.id, false});
        CollectDefs(stmt.else_body, else_path, in_epilogue);
      }
    }
  }

  void CheckAssignmentCounts() {
    for (const Temp& t : k_.temps()) {
      const auto it = defs_.find(t.id);
      const std::size_t count = it == defs_.end() ? 0 : it->second.size();
      if (!t.carried && count > 1) {
        Problem("plain temp assigned more than once: " + t.name);
      }
    }
  }

  void CheckUseOfTemp(TempId temp, StmtId use_stmt, const ControlPath& use_path,
                      bool use_in_epilogue) {
    const Temp& t = k_.temp(temp);
    if (t.carried) {
      return;  // carried temps always hold a defined value
    }
    const auto it = defs_.find(temp);
    if (it == defs_.end() || it->second.empty()) {
      Problem("use of never-assigned temp " + t.name);
      return;
    }
    const Def& def = it->second.front();
    if (use_in_epilogue) {
      // Epilogue reads observe the last iteration's value; require the
      // definition to be unconditional in the loop body so the value is
      // defined whenever the loop ran, or to be an earlier epilogue def.
      if (!def.in_epilogue && !def.path.empty()) {
        Problem("epilogue reads conditionally-assigned temp " + t.name);
      }
      if (def.in_epilogue && def.stmt >= use_stmt) {
        Problem("epilogue use of temp " + t.name + " precedes its definition");
      }
      return;
    }
    if (def.in_epilogue) {
      Problem("loop body reads epilogue-defined temp " + t.name);
      return;
    }
    if (def.stmt >= use_stmt) {
      Problem("use of temp " + t.name + " precedes its definition (stmt " +
              std::to_string(use_stmt) + ")");
      return;
    }
    // Dominance: def path must be a prefix of the use path.
    if (def.path.size() > use_path.size()) {
      Problem("use of temp " + t.name + " not dominated by its definition");
      return;
    }
    for (std::size_t i = 0; i < def.path.size(); ++i) {
      if (!(def.path[i] == use_path[i])) {
        Problem("use of temp " + t.name + " not dominated by its definition");
        return;
      }
    }
  }

  void CheckUsesInExpr(ExprId id, StmtId use_stmt, const ControlPath& path,
                       bool in_epilogue) {
    CheckExprWellFormed(id);
    k_.VisitExpr(id, [&](ExprId e) {
      const ExprNode& node = k_.expr(e);
      if (node.kind == ExprKind::kTempRef) {
        CheckUseOfTemp(node.temp, use_stmt, path, in_epilogue);
      }
      if (node.kind == ExprKind::kIvRef && in_epilogue) {
        Problem("epilogue references the induction variable");
      }
    });
  }

  void CheckUses(const std::vector<Stmt>& stmts, const ControlPath& path,
                 bool in_epilogue) {
    for (const Stmt& stmt : stmts) {
      switch (stmt.kind) {
        case StmtKind::kAssignTemp:
        case StmtKind::kStoreScalar:
          CheckUsesInExpr(stmt.value, stmt.id, path, in_epilogue);
          break;
        case StmtKind::kStoreArray:
          CheckUsesInExpr(stmt.index, stmt.id, path, in_epilogue);
          CheckUsesInExpr(stmt.value, stmt.id, path, in_epilogue);
          break;
        case StmtKind::kIf: {
          CheckUsesInExpr(stmt.value, stmt.id, path, in_epilogue);
          ControlPath then_path = path;
          then_path.push_back(PathStep{stmt.id, true});
          CheckUses(stmt.then_body, then_path, in_epilogue);
          ControlPath else_path = path;
          else_path.push_back(PathStep{stmt.id, false});
          CheckUses(stmt.else_body, else_path, in_epilogue);
          break;
        }
      }
      if (stmt.kind == StmtKind::kStoreScalar || stmt.kind == StmtKind::kStoreArray) {
        const SymbolKind kind = k_.symbol(stmt.sym).kind;
        const SymbolKind want = stmt.kind == StmtKind::kStoreArray
                                    ? SymbolKind::kArray
                                    : SymbolKind::kScalar;
        if (kind != want) {
          Problem("store target kind mismatch for " + k_.symbol(stmt.sym).name);
        }
      }
    }
  }

  struct Def {
    StmtId stmt;
    ControlPath path;
    bool in_epilogue;
  };

  const Kernel& k_;
  std::vector<std::string> problems_;
  std::map<TempId, std::vector<Def>> defs_;
  std::set<StmtId> seen_stmt_ids_;
};

}  // namespace

std::vector<std::string> ValidateKernel(const Kernel& kernel) {
  return Validator(kernel).Run();
}

void CheckValid(const Kernel& kernel) {
  const std::vector<std::string> problems = ValidateKernel(kernel);
  if (problems.empty()) {
    return;
  }
  std::ostringstream os;
  os << "invalid kernel '" << kernel.name() << "':";
  for (const std::string& p : problems) {
    os << "\n  - " << p;
  }
  throw Error(os.str());
}

}  // namespace fgpar::ir
