// Kernel validator.
//
// The builder already rejects type errors at construction time; the
// validator re-checks everything on the finished kernel so that compiler
// passes that rewrite IR are also covered, and adds the structural rules
// that only make sense on a complete kernel:
//
//  * loop bounds reference only constants and parameters;
//  * plain (non-carried) temps are assigned by exactly one statement, and
//    every use is dominated by that assignment (the definition's control
//    path is a prefix of the use's control path and precedes it in program
//    order);
//  * carried temps are assigned at least once in the loop body;
//  * expression and statement references are in range, statement ids are
//    unique, and types are consistent.
#pragma once

#include <string>
#include <vector>

#include "ir/kernel.hpp"

namespace fgpar::ir {

/// Returns human-readable problems; empty means valid.
std::vector<std::string> ValidateKernel(const Kernel& kernel);

/// Throws fgpar::Error listing all problems if the kernel is invalid.
void CheckValid(const Kernel& kernel);

}  // namespace fgpar::ir
