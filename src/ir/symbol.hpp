// Symbols (memory-resident scalars and arrays, read-only parameters) and
// temporaries (per-iteration values and loop-carried accumulators).
#pragma once

#include <cstdint>
#include <string>

#include "ir/expr.hpp"

namespace fgpar::ir {

enum class SymbolKind : std::uint8_t {
  kParam,   // read-only scalar, register-resident, passed to each partition
  kScalar,  // one memory word
  kArray,   // contiguous block of memory words
};

struct Symbol {
  SymbolId id = -1;
  std::string name;
  SymbolKind kind = SymbolKind::kScalar;
  ScalarType type = ScalarType::kF64;
  std::int64_t array_size = 0;  // elements; kArray only
};

struct Temp {
  TempId id = -1;
  std::string name;
  ScalarType type = ScalarType::kF64;
  /// Loop-carried accumulator: holds `init_*` before the first iteration and
  /// its last assigned value across iterations; readable in the epilogue.
  bool carried = false;
  std::int64_t init_i = 0;
  double init_f = 0.0;
};

}  // namespace fgpar::ir
