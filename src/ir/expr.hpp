// Expression trees — the representation the paper's fiber-partitioning
// algorithm (Section III-A) operates on.
//
// Expressions are immutable nodes stored in a per-kernel arena and referred
// to by ExprId, which makes the partitioner's per-node bookkeeping (fiber
// assignment, cost annotation) a plain indexed array.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace fgpar::ir {

using ExprId = int;
using SymbolId = int;
using TempId = int;
inline constexpr ExprId kNoExpr = -1;

enum class ScalarType : std::uint8_t { kI64, kF64 };

std::string_view TypeName(ScalarType type);

enum class UnOp : std::uint8_t {
  kNeg,
  kAbs,
  kSqrt,
  kNot,  // int: x == 0 ? 1 : 0
  kI2F,
  kF2I,
};

enum class BinOp : std::uint8_t {
  kAdd,
  kSub,
  kMul,
  kDiv,
  kRem,  // int only
  kMin,
  kMax,
  kAnd,  // int only
  kOr,   // int only
  kXor,  // int only
  kShl,  // int only
  kShr,  // int only
  // comparisons: result type is always kI64
  kEq,
  kNe,
  kLt,
  kLe,
};

bool IsComparison(BinOp op);
bool IsIntOnly(BinOp op);
std::string_view UnOpName(UnOp op);
std::string_view BinOpName(BinOp op);

enum class ExprKind : std::uint8_t {
  kConstI,
  kConstF,
  kIvRef,      // the loop induction variable (i64)
  kParamRef,   // read-only scalar parameter (register-resident live-in)
  kScalarRef,  // load of a memory-resident scalar symbol
  kArrayRef,   // load of array element; child[0] is the index expression
  kTempRef,    // value of a temporary computed this iteration
  kUnary,      // child[0]
  kBinary,     // child[0], child[1]
  kSelect,     // child[0] ? child[1] : child[2]; child[0] has type i64
};

struct ExprNode {
  ExprKind kind = ExprKind::kConstI;
  ScalarType type = ScalarType::kI64;
  UnOp un = UnOp::kNeg;
  BinOp bin = BinOp::kAdd;
  std::int64_t const_i = 0;
  double const_f = 0.0;
  SymbolId sym = -1;
  TempId temp = -1;
  std::array<ExprId, 3> child = {kNoExpr, kNoExpr, kNoExpr};
};

/// Number of children for a node of the given kind (ArrayRef has 1: index).
int ChildCount(const ExprNode& node);

/// A leaf in the paper's sense — "memory loads or literal values" plus
/// parameter/induction/temporary references; leaves are never assigned to a
/// fiber by the partitioning algorithm.
bool IsPartitionLeaf(ExprKind kind);

}  // namespace fgpar::ir
