// Kernel: one counted loop plus an epilogue, over typed symbols and temps.
//
// This mirrors the shape the paper transforms: an innermost hot loop whose
// body is partitioned into fine-grained parallel threads (Section III), and
// a sequential continuation (the epilogue) that runs on the primary core
// and may consume values computed inside the loop — the live variables of
// Section III-F.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "ir/expr.hpp"
#include "ir/stmt.hpp"
#include "ir/symbol.hpp"

namespace fgpar::ir {

struct Loop {
  std::string iv_name = "i";
  ExprId lower = kNoExpr;  // may reference params/constants only
  ExprId upper = kNoExpr;  // iv runs over [lower, upper)
  std::vector<Stmt> body;
};

class Kernel {
 public:
  explicit Kernel(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  // ---- arenas (populated by KernelBuilder) ----
  const std::vector<Symbol>& symbols() const { return symbols_; }
  const std::vector<Temp>& temps() const { return temps_; }
  const Symbol& symbol(SymbolId id) const;
  const Temp& temp(TempId id) const;
  const ExprNode& expr(ExprId id) const;
  std::size_t expr_count() const { return exprs_.size(); }

  const Loop& loop() const { return loop_; }
  const std::vector<Stmt>& epilogue() const { return epilogue_; }
  int stmt_count() const { return next_stmt_id_; }

  // ---- traversal helpers ----
  /// Visits `id` and all transitive children in post-order.
  void VisitExpr(ExprId id, const std::function<void(ExprId)>& fn) const;
  /// Visits every statement in a statement list recursively (pre-order),
  /// including the bodies of nested kIf statements.
  static void VisitStmts(const std::vector<Stmt>& stmts,
                         const std::function<void(const Stmt&)>& fn);
  /// Visits loop body and epilogue statements.
  void VisitAllStmts(const std::function<void(const Stmt&)>& fn) const;

  /// Collects the TempIds read by an expression (transitively).
  std::vector<TempId> TempsReadBy(ExprId id) const;
  /// Collects the SymbolIds of arrays/scalars loaded by an expression.
  std::vector<SymbolId> SymbolsReadBy(ExprId id) const;
  /// True if the expression (transitively) references the induction var.
  bool UsesIv(ExprId id) const;
  /// Depth of the expression tree (leaves have depth 1).
  int ExprDepth(ExprId id) const;
  /// Number of non-leaf (compute) nodes in the expression tree.
  int ComputeOpCount(ExprId id) const;

  // Mutation is reserved for the builder and compiler passes.
  std::vector<Symbol>& mutable_symbols() { return symbols_; }
  std::vector<Temp>& mutable_temps() { return temps_; }
  std::vector<ExprNode>& mutable_exprs() { return exprs_; }
  Loop& mutable_loop() { return loop_; }
  std::vector<Stmt>& mutable_epilogue() { return epilogue_; }
  ExprId AddExpr(ExprNode node);
  int AllocateStmtId() { return next_stmt_id_++; }

  /// Reassigns statement ids in flattened program order (loop body first,
  /// then epilogue).  Compiler passes that insert statements call this so
  /// the invariant "ids increase in program order" keeps holding.
  void RenumberStmts();

 private:
  std::string name_;
  std::vector<Symbol> symbols_;
  std::vector<Temp> temps_;
  std::vector<ExprNode> exprs_;
  Loop loop_;
  std::vector<Stmt> epilogue_;
  int next_stmt_id_ = 0;
};

}  // namespace fgpar::ir
