#include "analysis/cost.hpp"

#include "support/error.hpp"

namespace fgpar::analysis {

CostModel::CostModel(const sim::CoreTiming& timing, const sim::CacheConfig& cache,
                     const ProfileData* profile)
    : timing_(timing), cache_(cache), profile_(profile) {}

double CostModel::LoadCost(ir::SymbolId sym) const {
  const double fallback = static_cast<double>(cache_.l1_latency);
  return profile_ == nullptr ? fallback : profile_->LoadLatency(sym, fallback);
}

double CostModel::OpCost(const ir::ExprNode& node) const {
  switch (node.kind) {
    case ir::ExprKind::kConstI:
    case ir::ExprKind::kConstF:
    case ir::ExprKind::kIvRef:
    case ir::ExprKind::kParamRef:
    case ir::ExprKind::kTempRef:
      return 0.0;  // register-resident
    case ir::ExprKind::kScalarRef:
    case ir::ExprKind::kArrayRef:
      return LoadCost(node.sym);
    case ir::ExprKind::kUnary:
      switch (node.un) {
        case ir::UnOp::kSqrt:
          return static_cast<double>(timing_.fp_sqrt);
        case ir::UnOp::kNot:
          return static_cast<double>(timing_.int_alu);
        default:
          return static_cast<double>(
              node.type == ir::ScalarType::kF64 ? timing_.fp_alu : timing_.int_alu);
      }
    case ir::ExprKind::kBinary: {
      const bool is_fp = node.type == ir::ScalarType::kF64 ||
                         (ir::IsComparison(node.bin) &&
                          node.kind == ir::ExprKind::kBinary);
      switch (node.bin) {
        case ir::BinOp::kMul:
          return static_cast<double>(node.type == ir::ScalarType::kF64
                                         ? timing_.fp_mul
                                         : timing_.int_mul);
        case ir::BinOp::kDiv:
          return static_cast<double>(node.type == ir::ScalarType::kF64
                                         ? timing_.fp_div
                                         : timing_.int_div);
        case ir::BinOp::kRem:
          return static_cast<double>(timing_.int_div);
        default:
          return static_cast<double>(
              is_fp && node.type == ir::ScalarType::kF64 ? timing_.fp_alu
                                                         : timing_.int_alu);
      }
    }
    case ir::ExprKind::kSelect:
      return static_cast<double>(timing_.int_alu + timing_.taken_branch_penalty);
  }
  FGPAR_UNREACHABLE("bad ExprKind");
}

double CostModel::ExprCost(const ir::Kernel& kernel, ir::ExprId expr) const {
  double total = 0.0;
  kernel.VisitExpr(expr, [&](ir::ExprId e) { total += OpCost(kernel.expr(e)); });
  return total;
}

double CostModel::StmtCost(const ir::Kernel& kernel, const ir::Stmt& stmt) const {
  switch (stmt.kind) {
    case ir::StmtKind::kAssignTemp:
      return ExprCost(kernel, stmt.value);
    case ir::StmtKind::kStoreScalar:
      return ExprCost(kernel, stmt.value) + static_cast<double>(cache_.l1_latency);
    case ir::StmtKind::kStoreArray:
      return ExprCost(kernel, stmt.index) + ExprCost(kernel, stmt.value) +
             static_cast<double>(cache_.l1_latency);
    case ir::StmtKind::kIf:
      return ExprCost(kernel, stmt.value) +
             static_cast<double>(timing_.branch + timing_.taken_branch_penalty);
  }
  FGPAR_UNREACHABLE("bad StmtKind");
}

}  // namespace fgpar::analysis
