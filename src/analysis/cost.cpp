#include "analysis/cost.hpp"

#include <algorithm>
#include <set>
#include <utility>

#include "support/error.hpp"

namespace fgpar::analysis {

CostModel::CostModel(const sim::CoreTiming& timing, const sim::CacheConfig& cache,
                     const ProfileData* profile)
    : timing_(timing), cache_(cache), profile_(profile) {}

double CostModel::LoadCost(ir::SymbolId sym) const {
  const double fallback = static_cast<double>(cache_.l1_latency);
  return profile_ == nullptr ? fallback : profile_->LoadLatency(sym, fallback);
}

double CostModel::OpCost(const ir::ExprNode& node) const {
  switch (node.kind) {
    case ir::ExprKind::kConstI:
    case ir::ExprKind::kConstF:
    case ir::ExprKind::kIvRef:
    case ir::ExprKind::kParamRef:
    case ir::ExprKind::kTempRef:
      return 0.0;  // register-resident
    case ir::ExprKind::kScalarRef:
    case ir::ExprKind::kArrayRef:
      return LoadCost(node.sym);
    case ir::ExprKind::kUnary:
      switch (node.un) {
        case ir::UnOp::kSqrt:
          return static_cast<double>(timing_.fp_sqrt);
        case ir::UnOp::kNot:
          return static_cast<double>(timing_.int_alu);
        default:
          return static_cast<double>(
              node.type == ir::ScalarType::kF64 ? timing_.fp_alu : timing_.int_alu);
      }
    case ir::ExprKind::kBinary: {
      const bool is_fp = node.type == ir::ScalarType::kF64 ||
                         (ir::IsComparison(node.bin) &&
                          node.kind == ir::ExprKind::kBinary);
      switch (node.bin) {
        case ir::BinOp::kMul:
          return static_cast<double>(node.type == ir::ScalarType::kF64
                                         ? timing_.fp_mul
                                         : timing_.int_mul);
        case ir::BinOp::kDiv:
          return static_cast<double>(node.type == ir::ScalarType::kF64
                                         ? timing_.fp_div
                                         : timing_.int_div);
        case ir::BinOp::kRem:
          return static_cast<double>(timing_.int_div);
        default:
          return static_cast<double>(
              is_fp && node.type == ir::ScalarType::kF64 ? timing_.fp_alu
                                                         : timing_.int_alu);
      }
    }
    case ir::ExprKind::kSelect:
      return static_cast<double>(timing_.int_alu + timing_.taken_branch_penalty);
  }
  FGPAR_UNREACHABLE("bad ExprKind");
}

double CostModel::ExprCost(const ir::Kernel& kernel, ir::ExprId expr) const {
  double total = 0.0;
  kernel.VisitExpr(expr, [&](ir::ExprId e) { total += OpCost(kernel.expr(e)); });
  return total;
}

double CostModel::StmtCost(const ir::Kernel& kernel, const ir::Stmt& stmt) const {
  switch (stmt.kind) {
    case ir::StmtKind::kAssignTemp:
      return ExprCost(kernel, stmt.value);
    case ir::StmtKind::kStoreScalar:
      return ExprCost(kernel, stmt.value) + static_cast<double>(cache_.l1_latency);
    case ir::StmtKind::kStoreArray:
      return ExprCost(kernel, stmt.index) + ExprCost(kernel, stmt.value) +
             static_cast<double>(cache_.l1_latency);
    case ir::StmtKind::kIf:
      return ExprCost(kernel, stmt.value) +
             static_cast<double>(timing_.branch + timing_.taken_branch_penalty);
  }
  FGPAR_UNREACHABLE("bad StmtKind");
}

double CostModel::LoadCostAt(ir::StmtId stmt, ir::SymbolId sym) const {
  const double fallback = static_cast<double>(cache_.l1_latency);
  return profile_ == nullptr ? fallback
                             : profile_->LoadLatencyAt(stmt, sym, fallback);
}

double CostModel::ExprOccupancy(const ir::Kernel& kernel, ir::ExprId expr,
                                ir::StmtId stmt) const {
  const double issue = static_cast<double>(timing_.int_alu);
  double total = 0.0;
  kernel.VisitExpr(expr, [&](ir::ExprId e) {
    const ir::ExprNode& node = kernel.expr(e);
    switch (node.kind) {
      case ir::ExprKind::kConstI:
      case ir::ExprKind::kConstF:
        total += issue;  // immediate materialization
        break;
      case ir::ExprKind::kIvRef:
      case ir::ExprKind::kParamRef:
      case ir::ExprKind::kTempRef:
        break;  // register operands of the consuming instruction
      case ir::ExprKind::kScalarRef:
        // Address materialization + the load itself.
        total += issue + LoadCostAt(stmt, node.sym);
        break;
      case ir::ExprKind::kArrayRef:
        // Base materialization + index add + the load.
        total += 2.0 * issue + LoadCostAt(stmt, node.sym);
        break;
      default:
        total += std::max(OpCost(node), issue);
        break;
    }
  });
  return total;
}

double CostModel::StmtOccupancy(const ir::Kernel& kernel,
                                const ir::Stmt& stmt) const {
  const double issue = static_cast<double>(timing_.int_alu);
  switch (stmt.kind) {
    case ir::StmtKind::kAssignTemp:
      return ExprOccupancy(kernel, stmt.value, stmt.id);
    case ir::StmtKind::kStoreScalar:
      // Address materialization + store issue; the store buffer hides the
      // write latency from the issuing core.
      return ExprOccupancy(kernel, stmt.value, stmt.id) + 2.0 * issue;
    case ir::StmtKind::kStoreArray:
      return ExprOccupancy(kernel, stmt.index, stmt.id) +
             ExprOccupancy(kernel, stmt.value, stmt.id) + 3.0 * issue;
    case ir::StmtKind::kIf:
      // Condition + branch only; arm statements are costed individually,
      // weighted by their profiled execution frequency.
      return ExprOccupancy(kernel, stmt.value, stmt.id) +
             static_cast<double>(timing_.branch + timing_.taken_branch_penalty);
  }
  FGPAR_UNREACHABLE("bad StmtKind");
}

namespace {

/// Reachability closure over an adjacency matrix (graphs here are small:
/// fiber counts are bounded by statement counts, partitions by cores).
void Closure(std::vector<std::vector<bool>>& reach) {
  const std::size_t n = reach.size();
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t i = 0; i < n; ++i) {
      if (!reach[i][k]) {
        continue;
      }
      for (std::size_t j = 0; j < n; ++j) {
        reach[i][j] = reach[i][j] || reach[k][j];
      }
    }
  }
}

}  // namespace

PartitionFeatures ExtractPartitionFeatures(const PartitionGraph& graph,
                                           double transfer_latency,
                                           double queue_op_cost) {
  const std::size_t n = graph.node_cost.size();
  FGPAR_CHECK_MSG(graph.node_part.size() == n,
                  "PartitionGraph node_cost/node_part size mismatch");
  PartitionFeatures f;
  int num_parts = 0;
  for (int part : graph.node_part) {
    FGPAR_CHECK_MSG(part >= 0, "negative partition index");
    num_parts = std::max(num_parts, part + 1);
  }
  f.partitions = num_parts;
  for (double cost : graph.node_cost) {
    f.total_cost += cost;
  }
  if (n == 0 || num_parts == 0) {
    return f;
  }

  std::vector<double> part_cost(static_cast<std::size_t>(num_parts), 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    part_cost[static_cast<std::size_t>(graph.node_part[i])] +=
        graph.node_cost[i];
  }
  f.max_part_cost = *std::max_element(part_cost.begin(), part_cost.end());
  f.min_part_cost = *std::min_element(part_cost.begin(), part_cost.end());
  f.balance_ratio = (num_parts >= 2 && f.min_part_cost > 0.0)
                        ? f.max_part_cost / f.min_part_cost
                        : 1.0;

  // Transfers: one queue transfer per iteration per distinct
  // (producer node, consumer partition) — a producer enqueues a computed
  // value once per consuming partition, however many consumers live there.
  std::set<std::pair<int, int>> cross_node_pairs;   // (producer, consumer)
  std::set<std::pair<int, int>> node_to_part;       // (producer, part)
  for (const PartitionGraph::Edge& edge : graph.edges) {
    const int pu = graph.node_part[static_cast<std::size_t>(edge.producer)];
    const int pv = graph.node_part[static_cast<std::size_t>(edge.consumer)];
    if (pu != pv) {
      cross_node_pairs.insert({edge.producer, edge.consumer});
      node_to_part.insert({edge.producer, pv});
    }
  }
  f.cross_edges = static_cast<int>(cross_node_pairs.size());
  f.transfers = static_cast<int>(node_to_part.size());

  // Queue-op pipeline occupancy per partition: one enqueue issued at the
  // producer, one dequeue received at the consumer, per transfer.
  std::vector<double> queue_ops(static_cast<std::size_t>(num_parts), 0.0);
  for (const auto& [producer, part] : node_to_part) {
    queue_ops[static_cast<std::size_t>(
        graph.node_part[static_cast<std::size_t>(producer)])] += queue_op_cost;
    queue_ops[static_cast<std::size_t>(part)] += queue_op_cost;
  }
  f.queue_cost_max = 0.0;
  f.bottleneck_cost = 0.0;
  for (int p = 0; p < num_parts; ++p) {
    f.queue_cost_max = std::max(
        f.queue_cost_max, queue_ops[static_cast<std::size_t>(p)]);
    f.bottleneck_cost = std::max(
        f.bottleneck_cost, part_cost[static_cast<std::size_t>(p)] +
                               queue_ops[static_cast<std::size_t>(p)]);
  }

  // Critical path through the node graph: condense node-level SCCs (a
  // cycle's members execute as one serial unit), then take the longest
  // cost path, cross-partition hops paying the transfer latency plus the
  // enqueue/dequeue pair.
  std::vector<std::vector<bool>> nreach(n, std::vector<bool>(n, false));
  for (const PartitionGraph::Edge& edge : graph.edges) {
    nreach[static_cast<std::size_t>(edge.producer)]
          [static_cast<std::size_t>(edge.consumer)] = true;
  }
  Closure(nreach);
  // Condensation: representative = smallest node index in the SCC.
  std::vector<int> rep(n);
  for (std::size_t i = 0; i < n; ++i) {
    rep[i] = static_cast<int>(i);
    for (std::size_t j = 0; j < i; ++j) {
      if (nreach[i][j] && nreach[j][i]) {
        rep[i] = rep[j];
        break;
      }
    }
  }
  std::vector<double> super_cost(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    super_cost[static_cast<std::size_t>(rep[i])] += graph.node_cost[i];
  }
  const double hop = transfer_latency + 2.0 * queue_op_cost;
  // Longest path over the condensation via iteration to fixpoint in
  // topological effect: relax edges n times (the condensation is a DAG of
  // at most n supernodes, so n rounds reach the fixpoint).
  std::vector<double> path(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    if (rep[i] == static_cast<int>(i)) {
      path[i] = super_cost[i];
    }
  }
  for (std::size_t round = 0; round < n; ++round) {
    bool changed = false;
    for (const PartitionGraph::Edge& edge : graph.edges) {
      const int u = rep[static_cast<std::size_t>(edge.producer)];
      const int v = rep[static_cast<std::size_t>(edge.consumer)];
      if (u == v) {
        continue;
      }
      const double edge_cost =
          graph.node_part[static_cast<std::size_t>(edge.producer)] !=
                  graph.node_part[static_cast<std::size_t>(edge.consumer)]
              ? hop
              : 0.0;
      const double candidate = path[static_cast<std::size_t>(u)] + edge_cost +
                               super_cost[static_cast<std::size_t>(v)];
      if (candidate > path[static_cast<std::size_t>(v)]) {
        path[static_cast<std::size_t>(v)] = candidate;
        changed = true;
      }
    }
    if (!changed) {
      break;
    }
  }
  f.critical_path = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    f.critical_path = std::max(f.critical_path, path[i]);
  }

  // Cyclic inter-partition dependences: every partition on a dependence
  // cycle serializes with its cycle-mates each iteration (the in-order
  // core blocks in the dequeue that closes the cycle), paying the full
  // member compute plus one round-trip hop per intra-cycle channel.
  std::vector<std::vector<bool>> preach(
      static_cast<std::size_t>(num_parts),
      std::vector<bool>(static_cast<std::size_t>(num_parts), false));
  std::set<std::pair<int, int>> part_channels;  // directed partition pairs
  for (const auto& [producer, consumer] : cross_node_pairs) {
    const int pu = graph.node_part[static_cast<std::size_t>(producer)];
    const int pv = graph.node_part[static_cast<std::size_t>(consumer)];
    preach[static_cast<std::size_t>(pu)][static_cast<std::size_t>(pv)] = true;
    part_channels.insert({pu, pv});
  }
  Closure(preach);
  f.scc_partitions = 0;
  f.cycle_penalty = 0.0;
  std::vector<bool> counted(static_cast<std::size_t>(num_parts), false);
  for (int i = 0; i < num_parts; ++i) {
    if (counted[static_cast<std::size_t>(i)]) {
      continue;
    }
    std::vector<int> members{i};
    for (int j = i + 1; j < num_parts; ++j) {
      if (preach[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] &&
          preach[static_cast<std::size_t>(j)][static_cast<std::size_t>(i)]) {
        members.push_back(j);
      }
    }
    if (members.size() < 2) {
      continue;
    }
    double scc_time = 0.0;
    int scc_channels = 0;
    for (int m : members) {
      counted[static_cast<std::size_t>(m)] = true;
      scc_time += part_cost[static_cast<std::size_t>(m)];
    }
    for (const auto& [pu, pv] : part_channels) {
      const bool u_in = std::find(members.begin(), members.end(), pu) !=
                        members.end();
      const bool v_in = std::find(members.begin(), members.end(), pv) !=
                        members.end();
      if (u_in && v_in) {
        ++scc_channels;
      }
    }
    scc_time += static_cast<double>(scc_channels) * hop;
    f.scc_partitions += static_cast<int>(members.size());
    f.cycle_penalty = std::max(f.cycle_penalty, scc_time);
  }
  return f;
}

}  // namespace fgpar::analysis
