// Static execution-time estimates (paper Section III-B, second heuristic):
// "The compute time is a static estimate obtained using fixed latencies for
// compute operations, and profile feedback data for memory access miss
// latencies."
#pragma once

#include <vector>

#include "analysis/profile.hpp"
#include "ir/kernel.hpp"
#include "sim/config.hpp"

namespace fgpar::analysis {

class CostModel {
 public:
  CostModel(const sim::CoreTiming& timing, const sim::CacheConfig& cache,
            const ProfileData* profile);

  /// Estimated cycles to evaluate an expression tree (compute latencies for
  /// internal nodes, profiled average latency for loads).
  double ExprCost(const ir::Kernel& kernel, ir::ExprId expr) const;

  /// Estimated cycles for one statement (expression costs + store cost).
  /// If statements cost their condition only; bodies are costed separately.
  double StmtCost(const ir::Kernel& kernel, const ir::Stmt& stmt) const;

  /// Average latency assumed for a load of `sym` (profiled, or the L1
  /// latency when no profile is available).
  double LoadCost(ir::SymbolId sym) const;

  /// Like LoadCost but at per-statement granularity: the profiled average
  /// for (stmt, sym) when recorded, else the symbol average, else L1.
  /// Only meaningful when the profile was collected on the same kernel the
  /// statement ids refer to.
  double LoadCostAt(ir::StmtId stmt, ir::SymbolId sym) const;

  /// Execution-occupancy estimate for one statement: the cycles the
  /// issuing in-order core is busy or blocked executing it, including the
  /// instruction-issue cycles StmtCost ignores (immediate materialization,
  /// array address arithmetic, the store issue itself — stores retire
  /// through the store buffer, so they pay issue, not memory latency) and
  /// resolving loads at per-statement profile granularity.  If statements
  /// cost condition + branch; arm statements are costed individually by
  /// callers, weighted by profiled execution frequency.  This feeds the
  /// analytic speedup predictor; the merge heuristics keep StmtCost, so
  /// compiled plans (and their goldens) are unchanged.
  double StmtOccupancy(const ir::Kernel& kernel, const ir::Stmt& stmt) const;

 private:
  double OpCost(const ir::ExprNode& node) const;
  double ExprOccupancy(const ir::Kernel& kernel, ir::ExprId expr,
                       ir::StmtId stmt) const;

  sim::CoreTiming timing_;
  sim::CacheConfig cache_;
  const ProfileData* profile_;  // may be null
};

// ---------------------------------------------------------------------------
// Partition feature extraction (Table III catalog + latency-hiding terms).
// ---------------------------------------------------------------------------

/// A partitioned dependence graph at fiber-node granularity, decoupled
/// from the compiler's CodeGraph so the analysis layer stays below the
/// compiler.  Nodes are indexed [0, node_cost.size()); node_part maps each
/// node to its partition; edges are producer -> consumer dependences
/// (duplicates allowed — they are deduplicated per (producer, consumer
/// partition) for transfer counting, matching the one-queue-transfer-per-
/// value-per-iteration hardware model).
struct PartitionGraph {
  struct Edge {
    int producer = 0;
    int consumer = 0;
  };
  std::vector<double> node_cost;  // estimated cycles per iteration
  std::vector<int> node_part;     // node -> partition index
  std::vector<Edge> edges;
};

/// Static latency-hiding features of one candidate partitioning — the
/// Table III catalog (load balance, communication ops) plus the critical-
/// path and cyclic-serialization terms an analytical speedup predictor
/// needs.  All values are deterministic functions of the graph.
struct PartitionFeatures {
  int partitions = 0;
  double total_cost = 0.0;      // sum of node costs: sequential work/iter
  double max_part_cost = 0.0;   // bottleneck partition's compute
  double min_part_cost = 0.0;
  double balance_ratio = 1.0;   // max/min partition cost (1.0 when <2 parts)
  int cross_edges = 0;          // node-level dependences crossing partitions
  int transfers = 0;            // distinct (producer node, consumer part)
                                // pairs: queue transfers per iteration
  double queue_cost_max = 0.0;  // worst per-partition enq+deq occupancy
  double bottleneck_cost = 0.0; // max over partitions of compute + enq/deq
                                // occupancy: the pipeline throughput bound
  double critical_path = 0.0;   // longest cost path through the node DAG
                                // (SCCs condensed), cross-partition hops
                                // paying transfer_latency + 2*queue_op
  int scc_partitions = 0;       // partitions on a cyclic inter-partition
                                // dependence (cannot pipeline past it)
  double cycle_penalty = 0.0;   // per-iteration round-trip serialization
                                // charged to the largest partition cycle
};

/// Extracts the feature vector.  `transfer_latency` is the queue transfer
/// latency (cycles) a cross-partition value pays; `queue_op_cost` is the
/// pipeline occupancy of one enqueue or dequeue instruction.
PartitionFeatures ExtractPartitionFeatures(const PartitionGraph& graph,
                                           double transfer_latency,
                                           double queue_op_cost);

}  // namespace fgpar::analysis
