// Static execution-time estimates (paper Section III-B, second heuristic):
// "The compute time is a static estimate obtained using fixed latencies for
// compute operations, and profile feedback data for memory access miss
// latencies."
#pragma once

#include "analysis/profile.hpp"
#include "ir/kernel.hpp"
#include "sim/config.hpp"

namespace fgpar::analysis {

class CostModel {
 public:
  CostModel(const sim::CoreTiming& timing, const sim::CacheConfig& cache,
            const ProfileData* profile);

  /// Estimated cycles to evaluate an expression tree (compute latencies for
  /// internal nodes, profiled average latency for loads).
  double ExprCost(const ir::Kernel& kernel, ir::ExprId expr) const;

  /// Estimated cycles for one statement (expression costs + store cost).
  /// If statements cost their condition only; bodies are costed separately.
  double StmtCost(const ir::Kernel& kernel, const ir::Stmt& stmt) const;

  /// Average latency assumed for a load of `sym` (profiled, or the L1
  /// latency when no profile is available).
  double LoadCost(ir::SymbolId sym) const;

 private:
  double OpCost(const ir::ExprNode& node) const;

  sim::CoreTiming timing_;
  sim::CacheConfig cache_;
  const ProfileData* profile_;  // may be null
};

}  // namespace fgpar::analysis
