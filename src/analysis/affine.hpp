// Affine analysis of array subscripts, the core of memory disambiguation
// (paper Section III-I.2).
//
// An index expression is normalized to the form  coeff * iv + base, where
// `base` splits into a compile-time constant plus an optional opaque
// residue (a structural fingerprint of any iv-free subexpression, e.g. a
// parameter).  Two accesses can then be compared across arbitrary iteration
// distances:
//
//   a[3*i + 1] vs a[3*i + 2]   -> never conflict ((1-2) % 3 != 0)
//   a[i]       vs a[i]         -> conflict only at distance 0
//   a[i]       vs a[i - 1]     -> conflict at distance 1 (loop-carried)
//   a[idx[i]]  vs anything     -> unknown (conservatively conflicts)
#pragma once

#include <cstdint>
#include <optional>

#include "ir/kernel.hpp"

namespace fgpar::analysis {

struct LinearIndex {
  bool affine = false;        // false => nothing is known
  std::int64_t coeff = 0;     // multiplier on the induction variable
  std::int64_t offset = 0;    // compile-time constant part
  std::uint64_t residue = 0;  // fingerprint of iv-free opaque part (0 = none)
};

/// Attempts to normalize `index` into LinearIndex form.
LinearIndex AnalyzeIndex(const ir::Kernel& kernel, ir::ExprId index);

/// How two accesses with these subscripts may collide.
enum class Overlap {
  kNever,         // provably disjoint at every iteration distance
  kSameIterOnly,  // identical address exactly when both run the same iteration
  kMayConflict,   // anything else (includes loop-carried and unknown)
};

Overlap CompareIndices(const LinearIndex& a, const LinearIndex& b);

/// True when the two subscripts are provably the same address in the same
/// iteration (used by store-to-load forwarding).
bool SameAddressSameIteration(const LinearIndex& a, const LinearIndex& b);

}  // namespace fgpar::analysis
