#include "analysis/control.hpp"

namespace fgpar::analysis {

bool IsPrefix(const ControlPath& prefix, const ControlPath& path) {
  if (prefix.size() > path.size()) {
    return false;
  }
  for (std::size_t i = 0; i < prefix.size(); ++i) {
    if (!(prefix[i] == path[i])) {
      return false;
    }
  }
  return true;
}

bool MutuallyExclusive(const ControlPath& a, const ControlPath& b) {
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (a[i].if_stmt != b[i].if_stmt) {
      return false;  // paths already diverged structurally; not comparable
    }
    if (a[i].then_branch != b[i].then_branch) {
      return true;  // same if, opposite branches
    }
  }
  return false;
}

ControlPath CommonPrefix(const ControlPath& a, const ControlPath& b) {
  ControlPath out;
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n && a[i] == b[i]; ++i) {
    out.push_back(a[i]);
  }
  return out;
}

}  // namespace fgpar::analysis
