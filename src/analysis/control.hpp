// Control-dependence analysis (paper Section III-E).
//
// "We compute a set of control flow predicates for each statement.  A
// control flow predicate is a conditional variable paired with a value such
// that the statement can be executed only if the variable has the
// corresponding value."
//
// Here a statement's control path is the ordered list of enclosing if
// statements together with the branch taken; predicate-set operations
// (prefix/dominance, mutual exclusivity) are defined over these paths.
#pragma once

#include <vector>

#include "ir/kernel.hpp"

namespace fgpar::analysis {

struct PathStep {
  ir::StmtId if_stmt = -1;
  bool then_branch = true;
  bool operator==(const PathStep&) const = default;
};

using ControlPath = std::vector<PathStep>;

/// True if `prefix` is a (non-strict) prefix of `path` — i.e. code at
/// `prefix` dominates-and-guards code at `path`.
bool IsPrefix(const ControlPath& prefix, const ControlPath& path);

/// True if two paths diverge at some common if statement (one takes then,
/// the other else) — statements on such paths can never execute in the same
/// iteration.
bool MutuallyExclusive(const ControlPath& a, const ControlPath& b);

/// Longest common prefix.
ControlPath CommonPrefix(const ControlPath& a, const ControlPath& b);

}  // namespace fgpar::analysis
