// KernelIndex: a flattened, cross-referenced view of a kernel's statements.
//
// For every statement (including nested ones) it records program order, the
// control path (Section III-E predicates), temps read/written, and all
// memory accesses with their affine subscript analysis.  The fiber
// partitioner, the dependence-graph builder, and the code generator all
// work from this index.
#pragma once

#include <map>
#include <vector>

#include "analysis/affine.hpp"
#include "analysis/control.hpp"
#include "ir/kernel.hpp"

namespace fgpar::analysis {

struct MemAccess {
  ir::SymbolId sym = -1;
  bool is_write = false;
  bool is_scalar = false;      // scalar symbol (fixed address)
  LinearIndex index;           // for array accesses
};

struct StmtEntry {
  ir::StmtId id = -1;
  const ir::Stmt* stmt = nullptr;
  ControlPath path;
  int order = 0;               // flattened program-order position
  bool in_epilogue = false;
  bool is_if = false;
  ir::TempId temp_written = -1;          // kAssignTemp only
  std::vector<ir::TempId> temps_read;    // from value/index/cond expressions
  std::vector<MemAccess> accesses;       // loads and the store, if any
};

class KernelIndex {
 public:
  explicit KernelIndex(const ir::Kernel& kernel);

  const ir::Kernel& kernel() const { return *kernel_; }
  const std::vector<StmtEntry>& entries() const { return entries_; }
  const StmtEntry& ByStmtId(ir::StmtId id) const;
  bool HasStmt(ir::StmtId id) const;

  /// All statements assigning `temp` (exactly one for plain temps).
  const std::vector<ir::StmtId>& DefsOf(ir::TempId temp) const;
  /// All statements reading `temp` (including if-conditions).
  const std::vector<ir::StmtId>& UsesOf(ir::TempId temp) const;

 private:
  void Walk(const std::vector<ir::Stmt>& stmts, const ControlPath& path,
            bool in_epilogue);
  void CollectExprInfo(ir::ExprId expr, StmtEntry& entry);

  const ir::Kernel* kernel_;
  std::vector<StmtEntry> entries_;
  std::map<ir::StmtId, std::size_t> by_id_;
  std::map<ir::TempId, std::vector<ir::StmtId>> defs_;
  std::map<ir::TempId, std::vector<ir::StmtId>> uses_;
  std::vector<ir::StmtId> empty_;
  int order_counter_ = 0;
};

}  // namespace fgpar::analysis
