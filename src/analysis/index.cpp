#include "analysis/index.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace fgpar::analysis {

KernelIndex::KernelIndex(const ir::Kernel& kernel) : kernel_(&kernel) {
  Walk(kernel.loop().body, {}, /*in_epilogue=*/false);
  Walk(kernel.epilogue(), {}, /*in_epilogue=*/true);
}

void KernelIndex::CollectExprInfo(ir::ExprId expr, StmtEntry& entry) {
  kernel_->VisitExpr(expr, [&](ir::ExprId e) {
    const ir::ExprNode& node = kernel_->expr(e);
    switch (node.kind) {
      case ir::ExprKind::kTempRef:
        if (std::find(entry.temps_read.begin(), entry.temps_read.end(),
                      node.temp) == entry.temps_read.end()) {
          entry.temps_read.push_back(node.temp);
        }
        break;
      case ir::ExprKind::kScalarRef:
        entry.accesses.push_back(
            MemAccess{node.sym, /*is_write=*/false, /*is_scalar=*/true, {}});
        break;
      case ir::ExprKind::kArrayRef:
        entry.accesses.push_back(
            MemAccess{node.sym, /*is_write=*/false, /*is_scalar=*/false,
                      AnalyzeIndex(*kernel_, node.child[0])});
        break;
      default:
        break;
    }
  });
}

void KernelIndex::Walk(const std::vector<ir::Stmt>& stmts, const ControlPath& path,
                       bool in_epilogue) {
  for (const ir::Stmt& stmt : stmts) {
    StmtEntry entry;
    entry.id = stmt.id;
    entry.stmt = &stmt;
    entry.path = path;
    entry.order = order_counter_++;
    entry.in_epilogue = in_epilogue;
    switch (stmt.kind) {
      case ir::StmtKind::kAssignTemp:
        entry.temp_written = stmt.temp;
        CollectExprInfo(stmt.value, entry);
        defs_[stmt.temp].push_back(stmt.id);
        break;
      case ir::StmtKind::kStoreScalar:
        CollectExprInfo(stmt.value, entry);
        entry.accesses.push_back(
            MemAccess{stmt.sym, /*is_write=*/true, /*is_scalar=*/true, {}});
        break;
      case ir::StmtKind::kStoreArray:
        CollectExprInfo(stmt.index, entry);
        CollectExprInfo(stmt.value, entry);
        entry.accesses.push_back(
            MemAccess{stmt.sym, /*is_write=*/true, /*is_scalar=*/false,
                      AnalyzeIndex(*kernel_, stmt.index)});
        break;
      case ir::StmtKind::kIf:
        entry.is_if = true;
        CollectExprInfo(stmt.value, entry);
        break;
    }
    for (ir::TempId t : entry.temps_read) {
      uses_[t].push_back(stmt.id);
    }
    FGPAR_CHECK_MSG(!by_id_.contains(stmt.id), "duplicate stmt id in index");
    by_id_[stmt.id] = entries_.size();
    entries_.push_back(std::move(entry));

    if (stmt.kind == ir::StmtKind::kIf) {
      ControlPath then_path = path;
      then_path.push_back(PathStep{stmt.id, true});
      Walk(stmt.then_body, then_path, in_epilogue);
      ControlPath else_path = path;
      else_path.push_back(PathStep{stmt.id, false});
      Walk(stmt.else_body, else_path, in_epilogue);
    }
  }
}

const StmtEntry& KernelIndex::ByStmtId(ir::StmtId id) const {
  const auto it = by_id_.find(id);
  FGPAR_CHECK_MSG(it != by_id_.end(), "unknown stmt id: " + std::to_string(id));
  return entries_[it->second];
}

bool KernelIndex::HasStmt(ir::StmtId id) const { return by_id_.contains(id); }

const std::vector<ir::StmtId>& KernelIndex::DefsOf(ir::TempId temp) const {
  const auto it = defs_.find(temp);
  return it == defs_.end() ? empty_ : it->second;
}

const std::vector<ir::StmtId>& KernelIndex::UsesOf(ir::TempId temp) const {
  const auto it = uses_.find(temp);
  return it == uses_.end() ? empty_ : it->second;
}

}  // namespace fgpar::analysis
