#include "analysis/profile.hpp"

#include "sim/memory.hpp"

namespace fgpar::analysis {

double ProfileData::LoadLatency(ir::SymbolId sym, double fallback) const {
  const auto it = per_symbol_.find(sym);
  if (it == per_symbol_.end() || it->second.accesses == 0) {
    return fallback;
  }
  return it->second.total_latency / static_cast<double>(it->second.accesses);
}

double ProfileData::LoadLatencyAt(ir::StmtId stmt, ir::SymbolId sym,
                                  double fallback) const {
  const auto it = per_stmt_.find({stmt, sym});
  if (it == per_stmt_.end() || it->second.accesses == 0) {
    return LoadLatency(sym, fallback);
  }
  return it->second.total_latency / static_cast<double>(it->second.accesses);
}

std::uint64_t ProfileData::AccessCount(ir::SymbolId sym) const {
  const auto it = per_symbol_.find(sym);
  return it == per_symbol_.end() ? 0 : it->second.accesses;
}

std::uint64_t ProfileData::StmtCount(ir::StmtId stmt) const {
  const auto it = stmt_counts_.find(stmt);
  return it == stmt_counts_.end() ? 0 : it->second;
}

double ProfileData::StmtFrequency(ir::StmtId stmt, double fallback) const {
  if (iterations_ == 0) {
    return fallback;
  }
  return static_cast<double>(StmtCount(stmt)) /
         static_cast<double>(iterations_);
}

void ProfileData::SetLatency(ir::SymbolId sym, double avg_latency,
                             std::uint64_t count) {
  per_symbol_[sym] =
      PerSymbol{count, avg_latency * static_cast<double>(count)};
}

ProfileData ProfileData::Collect(const ir::Kernel& kernel,
                                 const ir::DataLayout& layout,
                                 const ir::ParamEnv& params,
                                 const std::vector<std::uint64_t>& memory,
                                 const sim::CacheConfig& cache) {
  ProfileData profile;
  sim::CacheTagArray l1(cache.l1_sets, cache.l1_ways, cache.line_words);
  sim::CacheTagArray l2(cache.l2_sets, cache.l2_ways, cache.line_words);

  std::vector<std::uint64_t> scratch = memory;  // profiling must not mutate
  ir::Interpreter interp(kernel, layout, params, scratch);
  interp.SetAccessObserver(
      [&](ir::SymbolId sym, std::uint64_t addr, bool /*is_write*/) {
        int latency = cache.l1_latency;
        if (!l1.Access(addr)) {
          latency = l2.Access(addr) ? cache.l2_latency : cache.mem_latency;
        }
        PerSymbol& entry = profile.per_symbol_[sym];
        ++entry.accesses;
        entry.total_latency += static_cast<double>(latency);
        PerSymbol& at = profile.per_stmt_[{interp.current_stmt(), sym}];
        ++at.accesses;
        at.total_latency += static_cast<double>(latency);
      });
  interp.SetStmtObserver(
      [&](ir::StmtId stmt) { ++profile.stmt_counts_[stmt]; });
  profile.iterations_ = interp.Run().iterations;
  return profile;
}

}  // namespace fgpar::analysis
