#include "analysis/affine.hpp"

namespace fgpar::analysis {
namespace {

std::uint64_t Mix(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
  return h == 0 ? 1 : h;  // 0 is reserved for "no residue"
}

LinearIndex NonAffine() { return LinearIndex{}; }

LinearIndex Analyze(const ir::Kernel& k, ir::ExprId id) {
  const ir::ExprNode& node = k.expr(id);
  switch (node.kind) {
    case ir::ExprKind::kConstI:
      return LinearIndex{true, 0, node.const_i, 0};
    case ir::ExprKind::kIvRef:
      return LinearIndex{true, 1, 0, 0};
    case ir::ExprKind::kParamRef:
      return LinearIndex{true, 0, 0,
                         Mix(0xC0FFEE, static_cast<std::uint64_t>(node.sym))};
    case ir::ExprKind::kUnary: {
      if (node.un != ir::UnOp::kNeg) {
        return NonAffine();
      }
      LinearIndex v = Analyze(k, node.child[0]);
      if (!v.affine) {
        return NonAffine();
      }
      v.coeff = -v.coeff;
      v.offset = -v.offset;
      if (v.residue != 0) {
        v.residue = Mix(0x4E4547, v.residue);  // "NEG"
      }
      return v;
    }
    case ir::ExprKind::kBinary: {
      const LinearIndex l = Analyze(k, node.child[0]);
      const LinearIndex r = Analyze(k, node.child[1]);
      if (!l.affine || !r.affine) {
        return NonAffine();
      }
      switch (node.bin) {
        case ir::BinOp::kAdd: {
          LinearIndex out{true, l.coeff + r.coeff, l.offset + r.offset, 0};
          if (l.residue != 0 && r.residue != 0) {
            // Commutative combine so p+q and q+p fingerprint identically.
            out.residue = Mix(0x414444, l.residue ^ r.residue);  // "ADD"
          } else {
            out.residue = l.residue | r.residue;
          }
          return out;
        }
        case ir::BinOp::kSub: {
          LinearIndex out{true, l.coeff - r.coeff, l.offset - r.offset, 0};
          if (l.residue == r.residue) {
            out.residue = 0;  // identical opaque terms cancel
          } else if (l.residue != 0 && r.residue != 0) {
            out.residue = Mix(Mix(0x535542, l.residue), r.residue);  // "SUB"
          } else if (r.residue != 0) {
            out.residue = Mix(0x535542, r.residue);
          } else {
            out.residue = l.residue;
          }
          return out;
        }
        case ir::BinOp::kMul: {
          const LinearIndex* scale = nullptr;
          const LinearIndex* term = nullptr;
          if (l.coeff == 0 && l.residue == 0) {
            scale = &l;
            term = &r;
          } else if (r.coeff == 0 && r.residue == 0) {
            scale = &r;
            term = &l;
          } else {
            return NonAffine();
          }
          LinearIndex out{true, term->coeff * scale->offset,
                          term->offset * scale->offset, 0};
          if (term->residue != 0) {
            out.residue = Mix(Mix(0x4D554C, term->residue),  // "MUL"
                              static_cast<std::uint64_t>(scale->offset));
          }
          return out;
        }
        default:
          return NonAffine();
      }
    }
    default:
      return NonAffine();
  }
}

}  // namespace

LinearIndex AnalyzeIndex(const ir::Kernel& kernel, ir::ExprId index) {
  return Analyze(kernel, index);
}

Overlap CompareIndices(const LinearIndex& a, const LinearIndex& b) {
  if (!a.affine || !b.affine) {
    return Overlap::kMayConflict;
  }
  if (a.residue != b.residue) {
    return Overlap::kMayConflict;
  }
  if (a.coeff == b.coeff) {
    const std::int64_t c = a.coeff;
    const std::int64_t d = a.offset - b.offset;
    if (c == 0) {
      return d == 0 ? Overlap::kMayConflict  // same fixed address every iter
                    : Overlap::kNever;
    }
    if (d % c != 0) {
      return Overlap::kNever;
    }
    return d == 0 ? Overlap::kSameIterOnly : Overlap::kMayConflict;
  }
  return Overlap::kMayConflict;
}

bool SameAddressSameIteration(const LinearIndex& a, const LinearIndex& b) {
  return a.affine && b.affine && a.residue == b.residue && a.coeff == b.coeff &&
         a.offset == b.offset;
}

}  // namespace fgpar::analysis
