// Profile feedback (paper Section III-I.3).
//
// "The compiler is unable to accurately estimate execution time, and it
// needs to use a profile directed feedback mechanism for this."
//
// ProfileData records, per memory symbol, the average access latency
// observed during a profiling run.  Collect() executes the kernel once in
// the reference interpreter against a scratch copy of memory, feeding every
// access through a single-core model of the cache hierarchy — the analogue
// of the paper's profiling runs on Blue Gene hardware.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "ir/interp.hpp"
#include "ir/kernel.hpp"
#include "ir/layout.hpp"
#include "sim/config.hpp"

namespace fgpar::analysis {

class ProfileData {
 public:
  /// Average observed load latency for `sym`; `fallback` when never seen.
  double LoadLatency(ir::SymbolId sym, double fallback) const;

  /// Number of accesses observed for `sym` (0 if never seen).
  std::uint64_t AccessCount(ir::SymbolId sym) const;

  /// Profiles `kernel` by interpreting it over a copy of `memory`.
  static ProfileData Collect(const ir::Kernel& kernel, const ir::DataLayout& layout,
                             const ir::ParamEnv& params,
                             const std::vector<std::uint64_t>& memory,
                             const sim::CacheConfig& cache);

  /// Testing/override hook.
  void SetLatency(ir::SymbolId sym, double avg_latency, std::uint64_t count);

 private:
  struct PerSymbol {
    std::uint64_t accesses = 0;
    double total_latency = 0.0;
  };
  std::map<ir::SymbolId, PerSymbol> per_symbol_;
};

}  // namespace fgpar::analysis
