// Profile feedback (paper Section III-I.3).
//
// "The compiler is unable to accurately estimate execution time, and it
// needs to use a profile directed feedback mechanism for this."
//
// ProfileData records, per memory symbol, the average access latency
// observed during a profiling run.  Collect() executes the kernel once in
// the reference interpreter against a scratch copy of memory, feeding every
// access through a single-core model of the cache hierarchy — the analogue
// of the paper's profiling runs on Blue Gene hardware.
#pragma once

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "ir/interp.hpp"
#include "ir/kernel.hpp"
#include "ir/layout.hpp"
#include "sim/config.hpp"

namespace fgpar::analysis {

class ProfileData {
 public:
  /// Average observed load latency for `sym`; `fallback` when never seen.
  double LoadLatency(ir::SymbolId sym, double fallback) const;

  /// Average observed latency for `sym` accessed by statement `stmt`.
  /// Falls back to the symbol-wide average, then to `fallback`.  Per-
  /// statement granularity matters when statements with different locality
  /// share a symbol (a streaming read beside a re-read): the symbol-wide
  /// average dilutes both, which misleads any model costing the statements
  /// individually — the analytic predictor in particular.
  double LoadLatencyAt(ir::StmtId stmt, ir::SymbolId sym,
                       double fallback) const;

  /// Number of accesses observed for `sym` (0 if never seen).
  std::uint64_t AccessCount(ir::SymbolId sym) const;

  /// How many times statement `stmt` executed during the profiling run
  /// (0 if never) — conditional arms execute only when taken.
  std::uint64_t StmtCount(ir::StmtId stmt) const;

  /// Loop iterations the profiling run executed.
  std::uint64_t iterations() const { return iterations_; }

  /// Average executions of `stmt` per loop iteration (1.0 for
  /// unconditional body statements, the taken fraction for guarded ones).
  /// Falls back to `fallback` when the profile has no execution counts
  /// (e.g. a hand-built profile).
  double StmtFrequency(ir::StmtId stmt, double fallback = 1.0) const;

  /// Profiles `kernel` by interpreting it over a copy of `memory`.
  static ProfileData Collect(const ir::Kernel& kernel, const ir::DataLayout& layout,
                             const ir::ParamEnv& params,
                             const std::vector<std::uint64_t>& memory,
                             const sim::CacheConfig& cache);

  /// Testing/override hook.
  void SetLatency(ir::SymbolId sym, double avg_latency, std::uint64_t count);

 private:
  struct PerSymbol {
    std::uint64_t accesses = 0;
    double total_latency = 0.0;
  };
  std::map<ir::SymbolId, PerSymbol> per_symbol_;
  // Keyed by the accessing statement's id; only meaningful for consumers
  // holding the same kernel the profile was collected on.
  std::map<std::pair<ir::StmtId, ir::SymbolId>, PerSymbol> per_stmt_;
  std::map<ir::StmtId, std::uint64_t> stmt_counts_;
  std::uint64_t iterations_ = 0;
};

}  // namespace fgpar::analysis
