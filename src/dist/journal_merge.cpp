#include "dist/journal_merge.hpp"

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "support/serial.hpp"

namespace fgpar::dist {

namespace {

constexpr const char kCheckpointVersion[] = "fgpar-ckpt-v1";
constexpr std::size_t kQuarantineTextCap = 96;

std::string Truncate(const std::string& text) {
  if (text.size() <= kQuarantineTextCap) {
    return text;
  }
  return text.substr(0, kQuarantineTextCap) + "...";
}

std::string FingerprintHex(std::uint64_t fingerprint) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(fingerprint));
  return buf;
}

void QuarantineLine(MergeResult& result, const std::string& path,
                    std::size_t line, std::string reason,
                    const std::string& text) {
  QuarantinedRecord record;
  record.file = path;
  record.line = line;
  record.reason = std::move(reason);
  record.text = Truncate(text);
  result.quarantined.push_back(std::move(record));
}

/// Strict hex decode that reports instead of throwing: returns false on
/// odd length or a non-hex digit.
bool TryHexDecode(const std::string& hex, std::string& out) {
  if (hex.size() % 2 != 0) {
    return false;
  }
  out.clear();
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    unsigned value = 0;
    for (int k = 0; k < 2; ++k) {
      const char c = hex[i + k];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        return false;
      }
    }
    out.push_back(static_cast<char>(value));
  }
  return true;
}

bool LooksLikeSliceToken(const std::string& token) {
  if (token.rfind("slice=", 0) != 0 || token.size() != 6 + 16) {
    return false;
  }
  return std::all_of(token.begin() + 6, token.end(), [](char c) {
    return (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f');
  });
}

}  // namespace

void MergeJournalFile(const std::string& path, std::string_view name,
                      std::uint64_t fingerprint, std::size_t total_points,
                      MergeResult& result, const PayloadValidator& validator) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    QuarantineLine(result, path, 0, "unreadable journal file", "");
    return;
  }
  result.files_read += 1;

  std::string header;
  if (!std::getline(in, header)) {
    QuarantineLine(result, path, 0, "empty journal file", "");
    return;
  }
  {
    std::istringstream header_stream(header);
    std::string version, file_name, file_fingerprint, file_slice, excess;
    header_stream >> version >> file_name >> file_fingerprint >> file_slice >>
        excess;
    if (version != kCheckpointVersion) {
      QuarantineLine(result, path, 1,
                     "unsupported journal version '" + version + "'", header);
      return;
    }
    if (file_name != name) {
      QuarantineLine(result, path, 1,
                     "journal belongs to sweep '" + file_name + "', not '" +
                         std::string(name) + "'",
                     header);
      return;
    }
    if (file_fingerprint != FingerprintHex(fingerprint)) {
      QuarantineLine(result, path, 1,
                     "grid fingerprint mismatch (journal " + file_fingerprint +
                         ", sweep " + FingerprintHex(fingerprint) + ")",
                     header);
      return;
    }
    // The slice token binds a journal to one lease's point set; any
    // well-formed slice of *this* grid merges fine (that is the whole
    // point of merging), but a mangled token means a mangled header.
    if (!file_slice.empty() && !LooksLikeSliceToken(file_slice)) {
      QuarantineLine(result, path, 1,
                     "malformed slice token '" + file_slice + "'", header);
      return;
    }
    if (!excess.empty()) {
      QuarantineLine(result, path, 1, "trailing header token '" + excess + "'",
                     header);
      return;
    }
  }

  std::string line;
  std::size_t line_number = 1;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) {
      continue;
    }
    std::istringstream line_stream(line);
    std::string tag, index_text, hex, excess;
    line_stream >> tag >> index_text >> hex >> excess;
    if (tag != "point" || index_text.empty() || hex.empty() ||
        !excess.empty()) {
      QuarantineLine(result, path, line_number, "malformed point line", line);
      continue;
    }
    std::size_t index = 0;
    const auto [ptr, ec] = std::from_chars(
        index_text.data(), index_text.data() + index_text.size(), index);
    if (ec != std::errc() || ptr != index_text.data() + index_text.size()) {
      QuarantineLine(result, path, line_number,
                     "bad point index '" + index_text + "'", line);
      continue;
    }
    if (index >= total_points) {
      QuarantineLine(result, path, line_number,
                     "point index " + std::to_string(index) +
                         " outside the grid (" + std::to_string(total_points) +
                         " points)",
                     line);
      continue;
    }
    std::string payload;
    if (!TryHexDecode(hex, payload)) {
      QuarantineLine(result, path, line_number, "malformed payload hex", line);
      continue;
    }
    if (validator) {
      const std::string reason = validator(index, payload);
      if (!reason.empty()) {
        QuarantineLine(result, path, line_number,
                       "payload rejected: " + reason, line);
        continue;
      }
    }
    const auto it = result.points.find(index);
    if (it != result.points.end()) {
      if (it->second == payload) {
        result.duplicate_points += 1;  // benign re-commit, discard
      } else {
        // First-committed-wins: the earlier record (earlier file in the
        // sorted order, or earlier line) stays authoritative.
        QuarantineLine(result, path, line_number,
                       "conflicting duplicate of point " +
                           std::to_string(index) +
                           " (differs from an earlier record)",
                       line);
      }
      continue;
    }
    result.points.emplace(index, std::move(payload));
  }
}

MergeResult MergeJournalFiles(const std::vector<std::string>& paths,
                              std::string_view name, std::uint64_t fingerprint,
                              std::size_t total_points,
                              const PayloadValidator& validator) {
  MergeResult result;
  for (const std::string& path : paths) {
    MergeJournalFile(path, name, fingerprint, total_points, result, validator);
  }
  return result;
}

std::vector<std::string> ListJournalFiles(const std::string& dir,
                                          std::string_view suffix) {
  std::vector<std::string> paths;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file()) {
      continue;
    }
    const std::string path = entry.path().string();
    if (path.size() >= suffix.size() &&
        path.compare(path.size() - suffix.size(), suffix.size(), suffix) == 0) {
      paths.push_back(path);
    }
  }
  std::sort(paths.begin(), paths.end());
  return paths;
}

}  // namespace fgpar::dist
