// The distributed sweep worker: pulls leases from the coordinator, runs
// them through the existing SweepSupervisor, and streams results back.
//
// One worker process = one RunWorker call.  The loop:
//
//   hello (want_work) -> lease grant -> run the slice under the
//   supervisor -> final report (completions, failures, want_work) ->
//   next lease ... -> Grant::kDone -> return stats.
//
// While a lease runs, a heartbeat thread reports every heartbeat_ms:
// it renews the lease, drains completed points to the coordinator (so a
// worker killed mid-lease loses at most heartbeat_ms of finished work
// plus the in-flight point), flags the point currently being computed
// (crash attribution), and learns about steals — points the coordinator
// re-granted to an idle worker, which this worker then skips via the
// supervisor's skip_point hook.
//
// Identity discipline: the supervisor runs the slice with
// global_indices, the whole-grid fingerprint, and a slice fingerprint,
// so every point is computed with exactly the seed and journal record a
// single-host run would produce — the merged artifact is byte-identical
// by construction.  The worker's per-lease journal (global indices,
// whole-grid fingerprint, slice= header) is belt-and-braces: it only
// matters when the COORDINATOR also dies, in which case it is tolerantly
// merged offline (dist/journal_merge.hpp).
//
// Connection loss is absorbed by ConnectWithBackoff for up to
// connect_budget_seconds — long enough to ride out a coordinator
// restart — after which the worker throws and exits; its lease expires
// server-side and the points move on.
//
// Crash drills (tests and the chaos CI job):
//   FGPAR_DIST_KILL_AFTER=<n>   SIGKILL when starting the (n+1)-th point
//                               this process — n points finished, the
//                               next attributed as in-progress;
//   FGPAR_DIST_CRASH_POINT=<i>  SIGKILL whenever starting global point
//                               i — a deterministically poisoned point
//                               that kills every host it lands on, which
//                               the coordinator's crash budget must turn
//                               into a quarantine, not a dead fleet.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "harness/supervisor.hpp"

namespace fgpar::dist {

struct WorkerOptions {
  /// Coordinator address (see service/client.hpp for the forms).
  std::string address;
  /// Worker name for lease records and journal file names; should be
  /// unique per process (the caller typically appends the pid).
  std::string worker;
  /// Directory for per-lease journals ("" = no local journaling).
  std::string journal_dir;
  /// How long to keep retrying a dead connection before giving up.
  double connect_budget_seconds = 10.0;
  /// The WHOLE grid, identical on every worker and the coordinator.
  std::string sweep_name;
  std::vector<std::string> labels;
  /// Template for each lease's supervisor run: seeds, retries,
  /// deadlines, cycle budgets, thread count.  The worker overrides the
  /// identity fields (name, labels, global_indices, fingerprints,
  /// checkpoint_path, skip_point, failure_budget) per lease.
  harness::SupervisorConfig supervisor;
};

struct WorkerStats {
  std::size_t leases = 0;
  std::size_t completed = 0;       // points computed and reported
  std::size_t failed = 0;          // points whose retries were exhausted
  std::size_t stolen_skips = 0;    // points skipped because of steals
  std::size_t revoked_leases = 0;  // leases the coordinator declared dead
};

/// Runs the worker loop until the coordinator reports the sweep done.
/// `body` receives PointContext with the GLOBAL index — the same body a
/// single-host sweep uses works unchanged.  Throws fgpar::Error when the
/// coordinator is unreachable past the connect budget or rejects this
/// worker (wrong grid).
WorkerStats RunWorker(const WorkerOptions& options,
                      const harness::SweepSupervisor::PointBody& body,
                      const harness::SweepSupervisor::ReproEmitter& repro =
                          nullptr);

}  // namespace fgpar::dist
