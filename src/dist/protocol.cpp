#include "dist/protocol.hpp"

#include <cstdio>

#include "support/error.hpp"
#include "support/json.hpp"
#include "support/serial.hpp"

namespace fgpar::dist {

namespace {

std::string Hex16(std::uint64_t value) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(value));
  return buf;
}

std::uint64_t ParseHex16(const std::string& text, const char* field) {
  FGPAR_CHECK_MSG(text.size() == 16,
                  std::string("fgpar-dist-v1: field '") + field +
                      "' must be 16 hex digits, got '" + text + "'");
  std::uint64_t value = 0;
  for (const char c : text) {
    value <<= 4;
    if (c >= '0' && c <= '9') {
      value |= static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      value |= static_cast<std::uint64_t>(c - 'a' + 10);
    } else {
      FGPAR_CHECK_MSG(false, std::string("fgpar-dist-v1: field '") + field +
                                 "' has non-hex digit '" + c + "'");
    }
  }
  return value;
}

const JsonValue& RequireSchema(const JsonValue& doc) {
  const JsonValue* schema = doc.Find("schema");
  FGPAR_CHECK_MSG(schema != nullptr && schema->AsString() == kDistSchema,
                  std::string("fgpar-dist-v1: missing or wrong schema "
                              "(expected \"") +
                      kDistSchema + "\")");
  return doc;
}

void WriteIndexArray(JsonWriter& w, const std::vector<std::size_t>& indices) {
  w.BeginArray();
  for (const std::size_t index : indices) {
    w.UInt(index);
  }
  w.EndArray();
}

std::vector<std::size_t> ReadIndexArray(const JsonValue& value) {
  std::vector<std::size_t> out;
  out.reserve(value.AsArray().size());
  for (const JsonValue& entry : value.AsArray()) {
    out.push_back(static_cast<std::size_t>(entry.AsU64()));
  }
  return out;
}

}  // namespace

std::string_view GrantName(Grant grant) {
  switch (grant) {
    case Grant::kLease:
      return "lease";
    case Grant::kWait:
      return "wait";
    case Grant::kDone:
      return "done";
  }
  return "wait";
}

std::string EncodeReport(const WorkerReport& report) {
  JsonWriter w;
  w.BeginObject();
  w.Key("schema");
  w.String(kDistSchema);
  w.Key("type");
  w.String("report");
  w.Key("worker");
  w.String(report.worker);
  w.Key("fingerprint");
  w.String(Hex16(report.fingerprint));
  w.Key("lease");
  w.UInt(report.lease_id);
  if (report.has_in_progress) {
    w.Key("in_progress");
    w.UInt(report.in_progress);
  }
  w.Key("completed");
  w.BeginArray();
  for (const CompletedPoint& point : report.completed) {
    w.BeginObject();
    w.Key("index");
    w.UInt(point.index);
    w.Key("payload");
    w.String(HexEncode(point.payload));
    if (point.wall_ms > 0.0) {
      w.Key("wall_ms");
      w.Double(point.wall_ms);
    }
    w.EndObject();
  }
  w.EndArray();
  w.Key("failed");
  w.BeginArray();
  for (const FailedPoint& point : report.failed) {
    w.BeginObject();
    w.Key("index");
    w.UInt(point.index);
    w.Key("message");
    w.String(point.message);
    w.Key("repro_bundle");
    w.String(point.repro_bundle);
    w.EndObject();
  }
  w.EndArray();
  w.Key("want_work");
  w.Bool(report.want_work);
  w.EndObject();
  return w.Take();
}

WorkerReport ParseReport(std::string_view payload) {
  const JsonValue doc = RequireSchema(ParseJson(payload));
  const JsonValue* type = doc.Find("type");
  FGPAR_CHECK_MSG(type != nullptr && type->AsString() == "report",
                  "fgpar-dist-v1: expected a \"report\" message");
  WorkerReport report;
  report.worker = doc.Get("worker").AsString();
  FGPAR_CHECK_MSG(!report.worker.empty(),
                  "fgpar-dist-v1: report needs a non-empty worker name");
  report.fingerprint =
      ParseHex16(doc.Get("fingerprint").AsString(), "fingerprint");
  report.lease_id = doc.Get("lease").AsU64();
  if (const JsonValue* in_progress = doc.Find("in_progress")) {
    report.has_in_progress = true;
    report.in_progress = static_cast<std::size_t>(in_progress->AsU64());
  }
  for (const JsonValue& entry : doc.Get("completed").AsArray()) {
    CompletedPoint point;
    point.index = static_cast<std::size_t>(entry.Get("index").AsU64());
    point.payload = HexDecodeToString(entry.Get("payload").AsString());
    if (const JsonValue* wall = entry.Find("wall_ms")) {
      point.wall_ms = wall->AsDouble();
    }
    report.completed.push_back(std::move(point));
  }
  for (const JsonValue& entry : doc.Get("failed").AsArray()) {
    FailedPoint point;
    point.index = static_cast<std::size_t>(entry.Get("index").AsU64());
    point.message = entry.Get("message").AsString();
    if (const JsonValue* bundle = entry.Find("repro_bundle")) {
      point.repro_bundle = bundle->AsString();
    }
    report.failed.push_back(std::move(point));
  }
  report.want_work = doc.Get("want_work").AsBool();
  return report;
}

std::string EncodeReply(const CoordinatorReply& reply) {
  JsonWriter w;
  w.BeginObject();
  w.Key("schema");
  w.String(kDistSchema);
  w.Key("type");
  w.String("reply");
  w.Key("code");
  w.Int(reply.code);
  if (!reply.error.empty()) {
    w.Key("error");
    w.String(reply.error);
  }
  w.Key("grant");
  w.String(GrantName(reply.grant));
  w.Key("lease");
  w.UInt(reply.lease_id);
  w.Key("points");
  WriteIndexArray(w, reply.points);
  w.Key("lease_revoked");
  w.Bool(reply.lease_revoked);
  w.Key("owned");
  WriteIndexArray(w, reply.owned);
  w.Key("lease_ms");
  w.UInt(reply.lease_ms);
  w.Key("heartbeat_ms");
  w.UInt(reply.heartbeat_ms);
  w.Key("retry_ms");
  w.UInt(reply.retry_ms);
  w.EndObject();
  return w.Take();
}

CoordinatorReply ParseReply(std::string_view payload) {
  const JsonValue doc = RequireSchema(ParseJson(payload));
  const JsonValue* type = doc.Find("type");
  FGPAR_CHECK_MSG(type != nullptr && type->AsString() == "reply",
                  "fgpar-dist-v1: expected a \"reply\" message");
  CoordinatorReply reply;
  reply.code = static_cast<int>(doc.Get("code").AsI64());
  if (const JsonValue* error = doc.Find("error")) {
    reply.error = error->AsString();
  }
  const std::string& grant = doc.Get("grant").AsString();
  if (grant == "lease") {
    reply.grant = Grant::kLease;
  } else if (grant == "wait") {
    reply.grant = Grant::kWait;
  } else if (grant == "done") {
    reply.grant = Grant::kDone;
  } else {
    FGPAR_CHECK_MSG(false,
                    "fgpar-dist-v1: unknown grant kind '" + grant + "'");
  }
  reply.lease_id = doc.Get("lease").AsU64();
  reply.points = ReadIndexArray(doc.Get("points"));
  reply.lease_revoked = doc.Get("lease_revoked").AsBool();
  reply.owned = ReadIndexArray(doc.Get("owned"));
  reply.lease_ms = doc.Get("lease_ms").AsU64();
  reply.heartbeat_ms = doc.Get("heartbeat_ms").AsU64();
  reply.retry_ms = doc.Get("retry_ms").AsU64();
  return reply;
}

}  // namespace fgpar::dist
