#include "dist/worker.hpp"

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdlib>
#include <mutex>
#include <optional>
#include <set>
#include <thread>

#include "dist/protocol.hpp"
#include "harness/checkpoint.hpp"
#include "service/client.hpp"
#include "service/protocol.hpp"
#include "support/error.hpp"

namespace fgpar::dist {

namespace {

std::optional<std::size_t> IndexFromEnv(const char* name) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') {
    return std::nullopt;
  }
  char* end = nullptr;
  const unsigned long long value = std::strtoull(env, &end, 10);
  if (end == env || *end != '\0') {
    return std::nullopt;
  }
  return static_cast<std::size_t>(value);
}

/// One coordinator connection with serialized request/reply exchanges and
/// transparent reconnect (bounded by the connect budget per outage).
class DistClient {
 public:
  DistClient(std::string address, double budget_seconds)
      : address_(std::move(address)), budget_seconds_(budget_seconds) {}

  ~DistClient() {
    if (fd_ >= 0) {
      ::close(fd_);
    }
  }

  CoordinatorReply Exchange(const WorkerReport& report) {
    std::lock_guard<std::mutex> lock(mutex_);
    const std::string payload = EncodeReport(report);
    // A dead connection is retried with a fresh one; the cap bounds a
    // pathological coordinator that accepts and instantly drops.
    for (int attempt = 0; attempt < 8; ++attempt) {
      if (fd_ < 0) {
        fd_ = service::ConnectWithBackoff(address_, budget_seconds_);
        FGPAR_CHECK_MSG(fd_ >= 0,
                        "worker cannot reach coordinator at " + address_ +
                            " within " + std::to_string(budget_seconds_) +
                            "s");
      }
      if (!service::WriteFrame(fd_, payload)) {
        Drop();
        continue;
      }
      std::string reply_payload;
      if (service::ReadFrame(fd_, reply_payload) !=
          service::ReadStatus::kFrame) {
        Drop();
        continue;
      }
      CoordinatorReply reply = ParseReply(reply_payload);
      FGPAR_CHECK_MSG(reply.code == 200,
                      "coordinator rejected worker report: " + reply.error);
      return reply;
    }
    throw Error("coordinator at " + address_ +
                " keeps dropping the connection mid-exchange");
  }

 private:
  void Drop() {
    ::close(fd_);
    fd_ = -1;
  }

  std::mutex mutex_;
  std::string address_;
  double budget_seconds_;
  int fd_ = -1;
};

/// Shared between the lease's supervisor run and its heartbeat thread.
struct LeaseState {
  std::mutex mutex;
  std::condition_variable cv;               // wakes the heartbeat thread
  std::set<std::size_t> owned;              // global indices still ours
  bool revoked = false;
  std::vector<CompletedPoint> pending;      // finished, not yet reported
  std::optional<std::size_t> in_progress;   // global index being computed
};

void FillLeaseReport(WorkerReport& report, LeaseState& state) {
  std::lock_guard<std::mutex> lock(state.mutex);
  report.completed = std::move(state.pending);
  state.pending.clear();
  if (state.in_progress) {
    report.has_in_progress = true;
    report.in_progress = *state.in_progress;
  }
}

void RestoreUnreported(WorkerReport& report, LeaseState& state) {
  // An exchange failed after draining: put the completions back so the
  // next report (or the final one) carries them.
  std::lock_guard<std::mutex> lock(state.mutex);
  state.pending.insert(state.pending.begin(),
                       std::make_move_iterator(report.completed.begin()),
                       std::make_move_iterator(report.completed.end()));
  report.completed.clear();
}

}  // namespace

WorkerStats RunWorker(const WorkerOptions& options,
                      const harness::SweepSupervisor::PointBody& body,
                      const harness::SweepSupervisor::ReproEmitter& repro) {
  FGPAR_CHECK_MSG(!options.worker.empty(), "worker needs a name");
  FGPAR_CHECK_MSG(!options.labels.empty(), "worker needs the grid labels");
  const std::uint64_t fingerprint =
      harness::GridFingerprint(options.sweep_name, options.labels);
  const std::optional<std::size_t> kill_after =
      IndexFromEnv("FGPAR_DIST_KILL_AFTER");
  const std::optional<std::size_t> crash_point =
      IndexFromEnv("FGPAR_DIST_CRASH_POINT");
  std::atomic<std::size_t> computed_this_process{0};

  DistClient client(options.address, options.connect_budget_seconds);
  WorkerStats stats;

  WorkerReport next;
  next.worker = options.worker;
  next.fingerprint = fingerprint;
  next.want_work = true;
  CoordinatorReply reply = client.Exchange(next);

  for (;;) {
    if (reply.grant == Grant::kDone) {
      return stats;
    }
    if (reply.grant == Grant::kWait) {
      const auto nap = std::chrono::milliseconds(
          reply.retry_ms > 0 ? reply.retry_ms : 100);
      std::this_thread::sleep_for(nap);
      WorkerReport poll;
      poll.worker = options.worker;
      poll.fingerprint = fingerprint;
      poll.want_work = true;
      reply = client.Exchange(poll);
      continue;
    }

    // Grant::kLease — run the slice.
    const std::uint64_t lease_id = reply.lease_id;
    const std::vector<std::size_t> points = reply.points;
    const std::uint64_t heartbeat_ms =
        reply.heartbeat_ms > 0 ? reply.heartbeat_ms : 1000;
    stats.leases += 1;

    LeaseState state;
    state.owned.insert(points.begin(), points.end());

    harness::SupervisorConfig config = options.supervisor;
    config.name = options.sweep_name;
    config.labels.clear();
    config.labels.reserve(points.size());
    for (const std::size_t global : points) {
      FGPAR_CHECK_MSG(global < options.labels.size(),
                      "coordinator granted point " + std::to_string(global) +
                          " outside the grid");
      config.labels.push_back(options.labels[global]);
    }
    config.global_indices = points;
    config.grid_fingerprint = fingerprint;
    config.slice_fingerprint = harness::SliceFingerprint(fingerprint, points);
    config.checkpoint_path =
        options.journal_dir.empty()
            ? ""
            : options.journal_dir + "/" + options.worker + ".lease" +
                  std::to_string(lease_id) + ".ckpt";
    config.resume = false;
    // Local failures never abort the worker: they are reported upstream
    // and the coordinator applies the grid-wide budget.
    config.failure_budget = points.size();
    config.drain_on_sigterm = false;
    config.skip_point = [&state, &points](std::size_t local) {
      const std::size_t global = points[local];
      std::lock_guard<std::mutex> lock(state.mutex);
      return state.revoked || state.owned.count(global) == 0;
    };

    const auto wrapped_body =
        [&](const harness::PointContext& context) -> std::string {
      if (crash_point && context.index == *crash_point) {
        // The poisoned point: kills every worker that touches it.
        std::raise(SIGKILL);
      }
      if (kill_after &&
          computed_this_process.load(std::memory_order_relaxed) >=
              *kill_after) {
        // Die mid-point: finished work is journaled (and mostly
        // reported); this point is in-progress and gets re-queued with a
        // crash attributed.
        std::raise(SIGKILL);
      }
      {
        std::lock_guard<std::mutex> lock(state.mutex);
        state.in_progress = context.index;
      }
      const auto point_start = std::chrono::steady_clock::now();
      std::string payload = body(context);
      const double wall_ms =
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - point_start)
              .count();
      {
        std::lock_guard<std::mutex> lock(state.mutex);
        CompletedPoint point;
        point.index = context.index;
        point.payload = payload;
        point.wall_ms = wall_ms;  // feeds the coordinator's lease sizing
        state.pending.push_back(std::move(point));
        state.in_progress.reset();
      }
      // Flush eagerly: the heartbeat thread reports this completion now,
      // not up to heartbeat_ms from now, so a crash right after a point
      // loses (nearly) nothing.
      state.cv.notify_one();
      computed_this_process.fetch_add(1, std::memory_order_relaxed);
      return payload;
    };

    std::atomic<bool> stop_heartbeat{false};
    std::thread heartbeat([&] {
      for (;;) {
        {
          // Event-driven with a timed fallback: wake the moment a point
          // completes (eager result flush), or after heartbeat_ms with
          // nothing to flush (pure lease renewal).
          std::unique_lock<std::mutex> lock(state.mutex);
          state.cv.wait_for(lock, std::chrono::milliseconds(heartbeat_ms),
                            [&] {
                              return !state.pending.empty() ||
                                     stop_heartbeat.load(
                                         std::memory_order_relaxed);
                            });
        }
        if (stop_heartbeat.load(std::memory_order_relaxed)) {
          return;  // the final report drains anything left
        }
        WorkerReport beat;
        beat.worker = options.worker;
        beat.fingerprint = fingerprint;
        beat.lease_id = lease_id;
        beat.want_work = false;
        FillLeaseReport(beat, state);
        try {
          const CoordinatorReply pulse = client.Exchange(beat);
          std::lock_guard<std::mutex> lock(state.mutex);
          if (pulse.lease_revoked) {
            state.revoked = true;
          } else {
            state.owned.clear();
            state.owned.insert(pulse.owned.begin(), pulse.owned.end());
          }
        } catch (const Error&) {
          // The coordinator is unreachable past the budget; stop doing
          // work (the lease is expiring server-side anyway) and let the
          // final exchange surface the error to the caller.
          RestoreUnreported(beat, state);
          std::lock_guard<std::mutex> lock(state.mutex);
          state.revoked = true;
          return;
        }
      }
    });

    harness::SweepSupervisor supervisor(config);
    harness::SweepOutcome outcome;
    try {
      outcome = supervisor.Run(wrapped_body, repro);
    } catch (...) {
      stop_heartbeat.store(true, std::memory_order_relaxed);
      state.cv.notify_one();
      heartbeat.join();
      throw;
    }
    stop_heartbeat.store(true, std::memory_order_relaxed);
    state.cv.notify_one();
    heartbeat.join();

    WorkerReport final_report;
    final_report.worker = options.worker;
    final_report.fingerprint = fingerprint;
    final_report.lease_id = lease_id;
    final_report.want_work = true;
    FillLeaseReport(final_report, state);
    final_report.has_in_progress = false;  // nothing is running any more
    for (const harness::PointFailure& failure : outcome.failures) {
      FailedPoint point;
      point.index = failure.index;  // already global
      point.message = failure.message;
      point.repro_bundle = failure.repro_bundle;
      final_report.failed.push_back(std::move(point));
    }
    for (const char done : outcome.completed) {
      // Counts every point this lease finished, including ones already
      // drained upstream by the heartbeat.
      stats.completed += done ? 1 : 0;
    }
    stats.failed += outcome.failures.size();
    stats.stolen_skips += outcome.skipped_points;
    {
      std::lock_guard<std::mutex> lock(state.mutex);
      if (state.revoked) {
        stats.revoked_leases += 1;
      }
    }
    reply = client.Exchange(final_report);
  }
}

}  // namespace fgpar::dist
