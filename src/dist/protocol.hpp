// The fgpar-dist-v1 coordination protocol: worker-pull RPC between sweep
// workers and the coordinator, carried over fgpar-rpc-v1 frames (u32-LE
// length prefix + JSON payload, 8 MiB cap — see service/protocol.hpp).
//
// The protocol is deliberately worker-pull: the coordinator never
// initiates a message, so a worker that dies, hangs, or partitions needs
// no cleanup handshake — its lease simply expires (or its connection
// EOFs) and the points go back on the queue.  Every exchange is one
// round trip:
//
//   worker  -> WorkerReport   what I finished, what failed, what I'm
//                             computing now, and whether I want work
//   coord   -> CoordinatorReply  a lease grant, "wait and retry", or
//                             "the sweep is done" — plus the live view
//                             of the worker's lease (renewed deadline,
//                             surviving points after any steal)
//
// A report with lease_id 0 and want_work=true is the hello; a report
// with completions and want_work=false is a pure flush/heartbeat.  The
// worker commits results *before* asking for more work, so a worker
// killed between reports loses at most its in-flight point.
//
// Duplicate completions (two workers racing the same stolen/revoked
// point) are legal and resolved first-committed-wins by the coordinator;
// the later commit is acknowledged and discarded.  The grid fingerprint
// travels in every report so a worker pointed at the wrong coordinator
// (or a stale binary with a different grid) is rejected with a
// structured 400 instead of corrupting the merge.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace fgpar::dist {

inline constexpr char kDistSchema[] = "fgpar-dist-v1";

/// One completed point travelling to the coordinator.  The payload is the
/// supervisor's opaque encoded result (exactly what the journal stores),
/// hex-encoded for JSON transport.
struct CompletedPoint {
  std::size_t index = 0;     // global grid index
  std::string payload;       // raw (decoded) journal payload bytes
  /// Worker-observed wall time computing the point, milliseconds.  Feeds
  /// the coordinator's adaptive lease sizing (LeaseTable::RecordPointCost)
  /// and never enters the journal or the artifact.  0 = unmeasured (a
  /// report without the field parses fine — older workers stay valid).
  double wall_ms = 0.0;
};

/// A point the worker's supervisor quarantined (retries exhausted).  The
/// failure is deterministic in the seed, so the coordinator quarantines
/// it grid-wide rather than burning other workers on it.
struct FailedPoint {
  std::size_t index = 0;
  std::string message;
  std::string repro_bundle;  // bundle name on the worker's disk, or ""
};

struct WorkerReport {
  std::string worker;             // worker name, for logs and lease records
  std::uint64_t fingerprint = 0;  // whole-grid fingerprint (must match)
  std::uint64_t lease_id = 0;     // 0 = no lease held (hello)
  bool has_in_progress = false;
  std::size_t in_progress = 0;    // crash-attribution marker
  std::vector<CompletedPoint> completed;
  std::vector<FailedPoint> failed;
  bool want_work = false;
};

enum class Grant : std::uint8_t {
  kLease,  // points[] is a fresh lease (lease_id names it)
  kWait,   // nothing to hand out right now; retry after retry_ms
  kDone,   // every point is committed or quarantined; worker may exit
};

std::string_view GrantName(Grant grant);

struct CoordinatorReply {
  int code = 200;            // service-style status; != 200 carries `error`
  std::string error;
  Grant grant = Grant::kWait;
  std::uint64_t lease_id = 0;
  std::vector<std::size_t> points;  // kLease: granted global indices
  /// The worker's *existing* lease after this report was applied: still
  /// alive?  Which points does it still own (steals remove some)?  The
  /// worker skips points no longer in `owned`.
  bool lease_revoked = false;
  std::vector<std::size_t> owned;
  std::uint64_t lease_ms = 0;      // deadline budget for the (re)newed lease
  std::uint64_t heartbeat_ms = 0;  // report at least this often
  std::uint64_t retry_ms = 0;      // kWait: ask again after this long
};

/// Codec + validation, mirroring service::ParseRequest's posture: throws
/// fgpar::Error with a human-readable reason on bad JSON, wrong schema,
/// or missing/ill-typed fields.
std::string EncodeReport(const WorkerReport& report);
WorkerReport ParseReport(std::string_view payload);
std::string EncodeReply(const CoordinatorReply& reply);
CoordinatorReply ParseReply(std::string_view payload);

}  // namespace fgpar::dist
