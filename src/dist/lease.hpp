// Lease bookkeeping for the distributed sweep coordinator.
//
// The coordinator shards a sweep grid across worker processes by handing
// out *leases*: time-bounded claims on a set of global point indices.  A
// worker must heartbeat (renew) its lease before the deadline; a missed
// heartbeat means the worker is presumed dead, the lease is revoked, and
// its unfinished points go back on the queue for someone else.  Idle
// workers with nothing queued *steal* the tail of the largest in-flight
// lease, so one slow worker never serializes the sweep's tail.
//
// Lease sizes adapt to observed point cost (Config::target_slice_ms):
// workers report each completed point's wall time, the table keeps a
// deterministic EWMA, and fresh grants are sized so one slice is worth
// roughly the target duration — expensive grids hand out small slices
// (cheap revocation, natural balance), cheap grids hand out big ones
// (fewer round trips).  Stealing still covers the case adaptation
// cannot: a single point that is much slower than the average.
//
// LeaseTable is the pure, deterministic core of that policy: no sockets,
// no threads, no clock — every operation takes an explicit `now_ms`
// (milliseconds on the caller's monotonic clock), so the whole state
// machine is unit-testable with scripted time.  The coordinator server
// (server.cpp) wraps it in a mutex and feeds it real time and real
// connections.
//
// Determinism rules that keep the merged artifact byte-identical no
// matter which workers die when:
//  * pending points are held sorted by global index and handed out in
//    index order;
//  * revoked points re-enter the queue in index order (std::set);
//  * lease ids are a monotonic counter, never reused;
//  * completion is first-committed-wins — a duplicate completion of an
//    already-committed point is acknowledged and discarded (the payload
//    equality check lives in the journal merge, not here).
//
// Crash attribution: when a lease is revoked, the point the worker had
// marked in-progress gets a crash count.  A point whose crash count
// reaches the budget is quarantined — handed to no one else — so one
// poisoned point (a kernel that reliably kills its host) cannot eat the
// whole worker fleet.  Completing a point erases its crash count: a slow
// point that eventually finishes is not a poisoned point.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace fgpar::dist {

struct Lease {
  std::uint64_t id = 0;
  std::string worker;                  // worker-supplied name, diagnostics
  std::set<std::size_t> points;        // global indices still owed
  std::size_t in_progress = 0;         // point the worker last reported active
  bool has_in_progress = false;
  std::uint64_t deadline_ms = 0;       // revoke when now_ms passes this
};

struct LeaseGrant {
  std::uint64_t lease_id = 0;
  std::vector<std::size_t> points;     // global indices, ascending
  bool stolen = false;                 // points came off another lease
};

/// Pure lease/queue/quarantine state for one sweep grid.  Not thread-safe;
/// the coordinator serializes access.
class LeaseTable {
 public:
  struct Config {
    std::size_t total_points = 0;      // grid size; indices [0, n)
    std::size_t slice_points = 8;      // max points per fresh grant
    std::uint64_t lease_ms = 10'000;   // heartbeat deadline per renewal
    /// A point revoked-while-in-progress this many times is quarantined.
    std::size_t crash_budget = 3;
    /// Adaptive slice sizing: aim a fresh grant at roughly this much
    /// worker wall time, using the EWMA of completed-point costs fed in
    /// via RecordPointCost.  Expensive points shrink grants (a revoked
    /// lease re-queues less work, the tail balances without stealing);
    /// cheap points grow them back up to slice_points.  0 disables
    /// adaptation: grants are always slice_points, and recorded costs
    /// only update the telemetry accessors.
    std::uint64_t target_slice_ms = 0;
  };

  explicit LeaseTable(Config config);

  /// Marks a point completed (first-committed-wins).  Returns true when
  /// this call committed the point, false when it was already committed
  /// (duplicate — benign) or quarantined.  Clears the point's crash count
  /// and removes it from whichever lease holds it.
  bool Complete(std::size_t point);

  /// Worker-reported point failure that exhausted the worker-side retry
  /// budget: quarantine immediately (no other worker will fare better —
  /// the failure is deterministic in the seed).
  void QuarantineReported(std::size_t point, const std::string& reason);

  /// Grants work to `worker` at `now_ms`: pending points first (up to
  /// slice_points); when the queue is dry, steals the tail half of the
  /// in-flight lease with the most remaining points (leaving it at least
  /// one).  Empty grant (lease_id 0) = nothing to hand out right now.
  LeaseGrant Acquire(const std::string& worker, std::uint64_t now_ms);

  /// Heartbeat: extends `lease_id`'s deadline.  Returns false when the
  /// lease no longer exists (revoked or fully completed) — the worker
  /// must drop any uncommitted work and re-Acquire.
  bool Renew(std::uint64_t lease_id, std::uint64_t now_ms);

  /// Records which point the worker is currently computing (crash
  /// attribution).  Ignored for unknown leases.
  void SetInProgress(std::uint64_t lease_id, std::size_t point);

  /// Revokes every lease whose deadline has passed; unfinished points are
  /// re-queued in index order, the in-progress point's crash count is
  /// bumped (quarantining it when the budget is hit).  Returns the number
  /// of leases revoked.
  std::size_t RevokeExpired(std::uint64_t now_ms);

  /// Revokes one lease immediately (connection EOF = the worker is gone;
  /// no need to wait out the heartbeat).  Same re-queue/attribution as
  /// RevokeExpired.  False when the lease doesn't exist.
  bool RevokeLease(std::uint64_t lease_id);

  /// True when `lease_id` is live and still owns `point` (a stolen point
  /// no longer passes — its old owner must skip it).
  bool LeaseOwns(std::uint64_t lease_id, std::size_t point) const;

  /// Feeds one completed point's observed wall time (milliseconds on the
  /// worker's clock) into the cost EWMA that sizes fresh grants.  The
  /// update is a pure function of the observation sequence — the same
  /// completions in the same order always produce the same grants — and
  /// non-positive samples are ignored (old workers report no timing).
  void RecordPointCost(double wall_ms);

  /// Points a fresh grant would hand out right now:
  /// clamp(target_slice_ms / cost EWMA, 1, slice_points); slice_points
  /// until adaptation is enabled *and* at least one cost was recorded.
  std::size_t FreshSlicePoints() const;

  /// All points are either committed or quarantined: the sweep is over.
  bool Done() const;

  std::size_t pending_count() const { return pending_.size(); }
  std::size_t committed_count() const { return committed_.size(); }
  const std::map<std::size_t, std::string>& quarantined() const {
    return quarantined_;
  }
  const std::map<std::uint64_t, Lease>& leases() const { return leases_; }
  const Config& config() const { return config_; }
  double point_cost_ewma() const { return cost_ewma_; }
  std::size_t cost_samples() const { return cost_samples_; }

 private:
  void RequeueLease(Lease& lease);
  void Quarantine(std::size_t point, const std::string& reason);

  Config config_;
  std::set<std::size_t> pending_;               // ascending global indices
  std::set<std::size_t> committed_;
  std::map<std::size_t, std::string> quarantined_;  // point -> reason
  std::map<std::size_t, std::size_t> crash_counts_;
  std::map<std::uint64_t, Lease> leases_;
  std::uint64_t next_lease_id_ = 1;
  double cost_ewma_ = 0.0;        // per-point wall ms; 0 until first sample
  std::size_t cost_samples_ = 0;
};

}  // namespace fgpar::dist
