// Deterministic, damage-tolerant merge of fgpar-ckpt-v1 worker journals.
//
// Workers journal their completed points locally (global grid indices,
// whole-grid fingerprint in the header — see harness/checkpoint.hpp), so
// after any mixture of crashes the coordinator is left with a pile of
// journal files of unknown integrity: some complete, some from killed
// workers, possibly truncated mid-write by a dying filesystem, possibly
// overlapping (stolen points computed twice).  The merge turns that pile
// into one authoritative point map with three guarantees:
//
//  * deterministic — files are processed in the caller-given order
//    (fgpar-coord sorts paths lexicographically), points land sorted by
//    global index, and duplicate conflicts resolve first-committed-wins,
//    so the same pile of bytes always merges to the same map;
//  * fingerprint-checked — a journal whose header names a different
//    sweep or grid is rejected whole; a record whose index is outside
//    the grid, whose hex is malformed, or whose payload fails the
//    caller's validator is rejected individually;
//  * never fatal, never silent — every rejected file or record becomes a
//    structured QuarantinedRecord (file, line, reason, offending text)
//    in the result instead of an exception or a silent drop.  Corrupt
//    input costs re-computing those points, nothing more.
//
// This is deliberately a separate, *tolerant* reader next to
// SweepCheckpoint::LoadOrCreate's *strict* one: a worker resuming its own
// journal wants corruption loud and fatal (its own disk is lying to it);
// a coordinator merging a dead worker's journal wants every good record
// it can get.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace fgpar::dist {

struct QuarantinedRecord {
  std::string file;
  std::size_t line = 0;  // 1-based; 0 = file-level problem (unreadable, header)
  std::string reason;
  std::string text;      // the offending line, truncated for readability
};

struct MergeResult {
  /// Global index -> payload, first-committed-wins across files.
  std::map<std::size_t, std::string> points;
  std::vector<QuarantinedRecord> quarantined;
  std::size_t files_read = 0;
  std::size_t duplicate_points = 0;  // byte-identical re-commits, discarded
};

/// Returns "" when (index, payload) is acceptable, else a reason string;
/// lets the caller reject records whose payload doesn't decode (e.g. via
/// DecodeKernelRun) without this layer knowing the codec.
using PayloadValidator =
    std::function<std::string(std::size_t index, const std::string& payload)>;

/// Merges one journal into `result` under the rules above.  `name` and
/// `fingerprint` are the sweep's; `total_points` bounds valid indices.
void MergeJournalFile(const std::string& path, std::string_view name,
                      std::uint64_t fingerprint, std::size_t total_points,
                      MergeResult& result,
                      const PayloadValidator& validator = nullptr);

/// Merges `paths` in the given order (sort first for determinism).
MergeResult MergeJournalFiles(const std::vector<std::string>& paths,
                              std::string_view name, std::uint64_t fingerprint,
                              std::size_t total_points,
                              const PayloadValidator& validator = nullptr);

/// Every regular file directly in `dir` whose name ends in `suffix`,
/// sorted lexicographically.  The deterministic input order for
/// fgpar-coord --merge-dir.
std::vector<std::string> ListJournalFiles(const std::string& dir,
                                          std::string_view suffix = ".ckpt");

}  // namespace fgpar::dist
