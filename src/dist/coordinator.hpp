// The distributed sweep coordinator's brain: applies worker reports to
// the lease table and the authoritative whole-grid journal, and decides
// what each worker does next.
//
// This class owns policy, not plumbing: it has no sockets and no clock
// (every entry point takes an explicit now_ms), so the full protocol
// state machine — grants, renewals, steals, revocations, duplicate
// commits, crash-budget quarantine — is unit-testable with scripted
// time.  CoordinatorServer (server.hpp) adds the listener, one thread
// per connection, a revocation ticker, and real monotonic time.
//
// Durability model: every committed point is immediately journaled to
// the coordinator's own whole-grid fgpar-ckpt-v1 file (atomic rename per
// point, same guarantee as a single-host sweep).  A coordinator killed
// at any instant restarts by tolerantly merging its own journal plus
// every worker journal it can find (dist/journal_merge.hpp) and adopting
// the result — workers reconnect, their stale leases are gone, and the
// sweep continues from the merged frontier.  First-committed-wins on
// duplicates keeps the restart byte-identical to an uninterrupted run.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "dist/lease.hpp"
#include "dist/protocol.hpp"
#include "harness/checkpoint.hpp"

namespace fgpar::dist {

class Coordinator {
 public:
  struct Config {
    std::string name;                  // sweep name (journal + artifact)
    std::vector<std::string> labels;   // the WHOLE grid, in index order
    std::string checkpoint_path;       // coordinator journal ("" = none)
    std::size_t slice_points = 8;      // fresh-grant size
    std::uint64_t lease_ms = 10'000;   // heartbeat deadline
    std::uint64_t heartbeat_ms = 2'000;  // advertised report cadence
    std::uint64_t retry_ms = 200;      // advertised idle-poll backoff
    std::size_t crash_budget = 3;      // worker deaths before quarantine
    /// Adaptive lease sizing target (LeaseTable::Config::target_slice_ms):
    /// fresh grants are sized so one slice costs roughly this much worker
    /// wall time, per the EWMA of reported completed-point times.
    /// 0 keeps the fixed slice_points grant size.
    std::uint64_t target_slice_ms = 0;
  };

  explicit Coordinator(Config config);

  /// Adopts an already-merged point map (coordinator restart: the caller
  /// merges its own journal + worker journals first).  Out-of-range
  /// indices are ignored.  Call before any worker traffic.
  void AdoptPoints(const std::map<std::size_t, std::string>& points);

  /// Applies one worker report and builds the reply: commit completions
  /// (first-committed-wins, journaled), quarantine reported failures,
  /// record crash attribution, renew or report-revoked the lease, grant
  /// work (pending first, then stealing) when asked.
  CoordinatorReply Apply(const WorkerReport& report, std::uint64_t now_ms);

  /// Lease sweep for the ticker thread; returns leases revoked.
  std::size_t RevokeExpired(std::uint64_t now_ms) {
    return leases_.RevokeExpired(now_ms);
  }

  /// Immediate revocation on connection EOF.
  bool RevokeLease(std::uint64_t lease_id) {
    return leases_.RevokeLease(lease_id);
  }

  bool Done() const { return leases_.Done(); }

  /// A quarantined point's story for the artifact's failures section.
  struct FailureInfo {
    std::size_t index = 0;
    std::string message;
    std::string repro_bundle;  // worker-reported bundle name, or ""
  };

  const std::map<std::size_t, std::string>& points() const { return points_; }
  std::vector<FailureInfo> failures() const;
  std::uint64_t fingerprint() const { return fingerprint_; }
  const Config& config() const { return config_; }
  const LeaseTable& leases() const { return leases_; }
  std::size_t duplicate_commits() const { return duplicate_commits_; }

 private:
  Config config_;
  std::uint64_t fingerprint_ = 0;
  LeaseTable leases_;
  std::map<std::size_t, std::string> points_;  // committed payloads
  /// Worker-reported failure details, keyed by point; the lease table's
  /// quarantine reasons cover crash-budget exhaustion, this map carries
  /// the richer story (exception text, repro bundle) when a worker
  /// reported the failure itself.
  std::map<std::size_t, FailedPoint> reported_failures_;
  std::optional<harness::SweepCheckpoint> journal_;
  std::size_t duplicate_commits_ = 0;
};

}  // namespace fgpar::dist
