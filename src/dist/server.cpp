#include "dist/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <csignal>
#include <cstddef>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "service/protocol.hpp"
#include "support/error.hpp"

namespace fgpar::dist {

namespace {

std::size_t CountFromEnv(const char* name) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') {
    return 0;
  }
  char* end = nullptr;
  const unsigned long long value = std::strtoull(env, &end, 10);
  return end != env && *end == '\0' ? static_cast<std::size_t>(value) : 0;
}

int ListenTcp(const std::string& spec, int& bound_port) {
  // spec is "host:port" with the "tcp:" prefix stripped; the host names
  // the interface to bind ("localhost"/empty = loopback).
  const std::size_t colon = spec.rfind(':');
  FGPAR_CHECK_MSG(colon != std::string::npos,
                  "tcp listen address needs host:port, got tcp:" + spec);
  std::string host = spec.substr(0, colon);
  if (host.empty() || host == "localhost") {
    host = "127.0.0.1";
  }
  const int port = std::atoi(spec.c_str() + colon + 1);
  FGPAR_CHECK_MSG(port >= 0 && port <= 65535,
                  "tcp listen port out of range in tcp:" + spec);
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  FGPAR_CHECK_MSG(fd >= 0, std::string("socket(): ") + std::strerror(errno));
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw Error("bad tcp listen host in tcp:" + spec);
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string message =
        "bind(tcp:" + spec + "): " + std::strerror(errno);
    ::close(fd);
    throw Error(message);
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) ==
      0) {
    bound_port = static_cast<int>(ntohs(bound.sin_port));
  }
  if (::listen(fd, 64) != 0) {
    const std::string message =
        "listen(tcp:" + spec + "): " + std::strerror(errno);
    ::close(fd);
    throw Error(message);
  }
  return fd;
}

int ListenUnix(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  FGPAR_CHECK_MSG(fd >= 0, std::string("socket(): ") + std::strerror(errno));
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  socklen_t addr_len = sizeof(addr);
  if (!path.empty() && path[0] == '@') {
    const std::size_t name_len = path.size() - 1;
    if (name_len + 1 > sizeof(addr.sun_path)) {
      ::close(fd);
      throw Error("abstract socket name too long: " + path);
    }
    addr.sun_path[0] = '\0';
    std::memcpy(addr.sun_path + 1, path.data() + 1, name_len);
    addr_len = static_cast<socklen_t>(offsetof(sockaddr_un, sun_path) + 1 +
                                      name_len);
  } else {
    if (path.size() + 1 > sizeof(addr.sun_path)) {
      ::close(fd);
      throw Error("socket path too long: " + path);
    }
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    ::unlink(path.c_str());  // a stale socket from a crashed run
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), addr_len) != 0) {
    const std::string message = "bind(" + path + "): " + std::strerror(errno);
    ::close(fd);
    throw Error(message);
  }
  if (::listen(fd, 64) != 0) {
    const std::string message = "listen(" + path + "): " + std::strerror(errno);
    ::close(fd);
    throw Error(message);
  }
  return fd;
}

}  // namespace

CoordinatorServer::CoordinatorServer(Coordinator& coordinator,
                                     std::string address)
    : coordinator_(coordinator),
      address_(std::move(address)),
      epoch_(std::chrono::steady_clock::now()),
      exit_after_(CountFromEnv("FGPAR_COORD_EXIT_AFTER")) {}

CoordinatorServer::~CoordinatorServer() { Stop(); }

std::uint64_t CoordinatorServer::NowMs() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

void CoordinatorServer::Start() {
  // A worker that dies mid-reply must cost us an EPIPE, not the process.
  std::signal(SIGPIPE, SIG_IGN);
  if (address_.rfind("tcp:", 0) == 0) {
    listen_fd_ = ListenTcp(address_.substr(4), bound_port_);
  } else {
    listen_fd_ = ListenUnix(address_);
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  ticker_thread_ = std::thread([this] { TickerLoop(); });
}

void CoordinatorServer::WaitUntilDone() {
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [this] {
    return coordinator_.Done() || stop_.load(std::memory_order_relaxed);
  });
}

void CoordinatorServer::Stop() {
  if (stop_.exchange(true, std::memory_order_relaxed)) {
    // Second caller: the first is (or was) tearing down; just make sure
    // the waiter wakes.
    done_cv_.notify_all();
    return;
  }
  done_cv_.notify_all();
  if (accept_thread_.joinable()) {
    accept_thread_.join();
  }
  if (ticker_thread_.joinable()) {
    ticker_thread_.join();
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const int fd : conn_fds_) {
      ::shutdown(fd, SHUT_RDWR);
    }
  }
  for (std::thread& conn : conn_threads_) {
    conn.join();
  }
  conn_threads_.clear();
  conn_fds_.clear();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (!address_.empty() && address_[0] != '@' &&
      address_.rfind("tcp:", 0) != 0) {
    ::unlink(address_.c_str());
  }
}

void CoordinatorServer::AcceptLoop() {
  while (!stop_.load(std::memory_order_relaxed)) {
    pollfd pfd{};
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, 100);
    if (ready <= 0) {
      continue;  // timeout or EINTR: re-check the stop flag
    }
    // SOCK_CLOEXEC is load-bearing: the coordinator forks worker
    // processes while connections are live.  A leaked accepted fd in a
    // sibling keeps a dead coordinator's side of another worker's
    // connection open, so that worker's recv() never sees EOF and it
    // hangs forever instead of exiting when the coordinator is killed.
    const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) {
      continue;
    }
    std::lock_guard<std::mutex> lock(mutex_);
    conn_fds_.push_back(fd);
    conn_threads_.emplace_back([this, fd] { ServeConnection(fd); });
  }
}

void CoordinatorServer::TickerLoop() {
  const std::uint64_t lease_ms = coordinator_.config().lease_ms;
  const auto period =
      std::chrono::milliseconds(std::max<std::uint64_t>(lease_ms / 4, 25));
  while (!stop_.load(std::memory_order_relaxed)) {
    std::this_thread::sleep_for(period);
    std::lock_guard<std::mutex> lock(mutex_);
    coordinator_.RevokeExpired(NowMs());
  }
}

void CoordinatorServer::ServeConnection(int fd) {
  // Leases granted over this connection: revoked the instant the
  // connection EOFs (the worker is gone; no need to wait out the
  // heartbeat deadline).
  std::vector<std::uint64_t> granted;
  std::string payload;
  for (;;) {
    const service::ReadStatus status = service::ReadFrame(fd, payload);
    if (status != service::ReadStatus::kFrame) {
      if (status == service::ReadStatus::kOversized) {
        CoordinatorReply reply;
        reply.code = 400;
        reply.error = "frame exceeds the 8 MiB cap";
        service::WriteFrame(fd, EncodeReply(reply));
      }
      break;
    }
    CoordinatorReply reply;
    try {
      const WorkerReport report = ParseReport(payload);
      std::lock_guard<std::mutex> lock(mutex_);
      const std::size_t before = coordinator_.points().size();
      reply = coordinator_.Apply(report, NowMs());
      commits_this_run_ += coordinator_.points().size() - before;
      if (reply.grant == Grant::kLease) {
        granted.push_back(reply.lease_id);
      }
      if (coordinator_.Done()) {
        done_cv_.notify_all();
      }
      if (exit_after_ > 0 && commits_this_run_ >= exit_after_) {
        // The coordinator crash drill: die exactly like an external
        // kill -9, with the journal durably holding every commit so far.
        std::raise(SIGKILL);
      }
    } catch (const Error& e) {
      reply = CoordinatorReply{};
      reply.code = 400;
      reply.error = e.what();
    }
    if (!service::WriteFrame(fd, EncodeReply(reply))) {
      break;
    }
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const std::uint64_t lease_id : granted) {
      coordinator_.RevokeLease(lease_id);
    }
    // Drop the fd from the shutdown list before closing so Stop() can
    // never shut down a number the kernel has since recycled.
    conn_fds_.erase(std::remove(conn_fds_.begin(), conn_fds_.end(), fd),
                    conn_fds_.end());
  }
  ::close(fd);
}

}  // namespace fgpar::dist
