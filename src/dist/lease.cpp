#include "dist/lease.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace fgpar::dist {

LeaseTable::LeaseTable(Config config) : config_(config) {
  FGPAR_CHECK_MSG(config_.total_points > 0, "LeaseTable needs a non-empty grid");
  FGPAR_CHECK_MSG(config_.slice_points > 0, "slice_points must be >= 1");
  for (std::size_t i = 0; i < config_.total_points; ++i) {
    pending_.insert(i);
  }
}

bool LeaseTable::Complete(std::size_t point) {
  if (committed_.count(point) || quarantined_.count(point)) {
    return false;  // duplicate or late completion: benign, discard
  }
  committed_.insert(point);
  pending_.erase(point);
  crash_counts_.erase(point);  // it finished; it was slow, not poisoned
  for (auto it = leases_.begin(); it != leases_.end();) {
    Lease& lease = it->second;
    lease.points.erase(point);
    if (lease.has_in_progress && lease.in_progress == point) {
      lease.has_in_progress = false;
    }
    it = lease.points.empty() ? leases_.erase(it) : std::next(it);
  }
  return true;
}

void LeaseTable::QuarantineReported(std::size_t point,
                                    const std::string& reason) {
  if (committed_.count(point)) {
    return;  // someone else already finished it; the failure is moot
  }
  Quarantine(point, reason);
}

void LeaseTable::RecordPointCost(double wall_ms) {
  if (!(wall_ms > 0.0)) {
    return;  // unmeasured (old worker) or clock nonsense: no update
  }
  // First sample seeds the EWMA; later samples blend in at 1/4.  The
  // sequence of recorded costs fully determines the EWMA (and therefore
  // every grant size) — no clock reads, no floating-point environment
  // dependence beyond IEEE doubles.
  if (cost_samples_ == 0) {
    cost_ewma_ = wall_ms;
  } else {
    cost_ewma_ += (wall_ms - cost_ewma_) * 0.25;
  }
  ++cost_samples_;
}

std::size_t LeaseTable::FreshSlicePoints() const {
  if (config_.target_slice_ms == 0 || cost_samples_ == 0 ||
      !(cost_ewma_ > 0.0)) {
    return config_.slice_points;
  }
  const double ideal =
      static_cast<double>(config_.target_slice_ms) / cost_ewma_;
  if (ideal >= static_cast<double>(config_.slice_points)) {
    return config_.slice_points;
  }
  if (ideal <= 1.0) {
    return 1;
  }
  return static_cast<std::size_t>(ideal);
}

LeaseGrant LeaseTable::Acquire(const std::string& worker,
                               std::uint64_t now_ms) {
  LeaseGrant grant;
  const std::size_t slice = FreshSlicePoints();
  if (!pending_.empty()) {
    auto it = pending_.begin();
    while (it != pending_.end() && grant.points.size() < slice) {
      grant.points.push_back(*it);
      it = pending_.erase(it);
    }
  } else {
    // Work stealing: take the tail half (at least one point, leaving at
    // least one) of the in-flight lease with the most remaining points.
    // Ties break toward the oldest lease (smallest id) — deterministic.
    Lease* victim = nullptr;
    for (auto& [id, lease] : leases_) {
      if (lease.points.size() < 2) {
        continue;
      }
      if (victim == nullptr || lease.points.size() > victim->points.size()) {
        victim = &lease;
      }
    }
    if (victim != nullptr) {
      const std::size_t take = victim->points.size() / 2;
      for (std::size_t k = 0; k < take; ++k) {
        auto last = std::prev(victim->points.end());
        grant.points.push_back(*last);
        victim->points.erase(last);
      }
      std::sort(grant.points.begin(), grant.points.end());
      grant.stolen = true;
    }
  }
  if (grant.points.empty()) {
    return grant;  // lease_id 0: wait (or done — caller checks Done())
  }
  Lease lease;
  lease.id = next_lease_id_++;
  lease.worker = worker;
  lease.points.insert(grant.points.begin(), grant.points.end());
  lease.deadline_ms = now_ms + config_.lease_ms;
  grant.lease_id = lease.id;
  leases_.emplace(lease.id, std::move(lease));
  return grant;
}

bool LeaseTable::Renew(std::uint64_t lease_id, std::uint64_t now_ms) {
  const auto it = leases_.find(lease_id);
  if (it == leases_.end()) {
    return false;
  }
  it->second.deadline_ms = now_ms + config_.lease_ms;
  return true;
}

void LeaseTable::SetInProgress(std::uint64_t lease_id, std::size_t point) {
  const auto it = leases_.find(lease_id);
  if (it == leases_.end() || !it->second.points.count(point)) {
    return;  // stale report (revoked lease, or the point was stolen)
  }
  it->second.in_progress = point;
  it->second.has_in_progress = true;
}

std::size_t LeaseTable::RevokeExpired(std::uint64_t now_ms) {
  std::size_t revoked = 0;
  for (auto it = leases_.begin(); it != leases_.end();) {
    if (it->second.deadline_ms <= now_ms) {
      RequeueLease(it->second);
      it = leases_.erase(it);
      ++revoked;
    } else {
      ++it;
    }
  }
  return revoked;
}

bool LeaseTable::RevokeLease(std::uint64_t lease_id) {
  const auto it = leases_.find(lease_id);
  if (it == leases_.end()) {
    return false;
  }
  RequeueLease(it->second);
  leases_.erase(it);
  return true;
}

bool LeaseTable::LeaseOwns(std::uint64_t lease_id, std::size_t point) const {
  const auto it = leases_.find(lease_id);
  return it != leases_.end() && it->second.points.count(point) != 0;
}

bool LeaseTable::Done() const {
  return committed_.size() + quarantined_.size() >= config_.total_points;
}

void LeaseTable::RequeueLease(Lease& lease) {
  // The in-progress point is the one the crash gets attributed to: the
  // worker died (or went silent) while computing it.
  if (lease.has_in_progress && lease.points.count(lease.in_progress)) {
    const std::size_t point = lease.in_progress;
    const std::size_t crashes = ++crash_counts_[point];
    if (crashes >= config_.crash_budget) {
      lease.points.erase(point);
      Quarantine(point, "crashed " + std::to_string(crashes) +
                            " worker(s); crash budget " +
                            std::to_string(config_.crash_budget) +
                            " exhausted");
    }
  }
  // std::set -> std::set keeps the re-queue in global index order.
  pending_.insert(lease.points.begin(), lease.points.end());
  lease.points.clear();
}

void LeaseTable::Quarantine(std::size_t point, const std::string& reason) {
  if (quarantined_.count(point)) {
    return;
  }
  quarantined_.emplace(point, reason);
  pending_.erase(point);
  crash_counts_.erase(point);
  for (auto it = leases_.begin(); it != leases_.end();) {
    Lease& lease = it->second;
    lease.points.erase(point);
    if (lease.has_in_progress && lease.in_progress == point) {
      lease.has_in_progress = false;
    }
    it = lease.points.empty() ? leases_.erase(it) : std::next(it);
  }
}

}  // namespace fgpar::dist
