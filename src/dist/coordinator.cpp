#include "dist/coordinator.hpp"

#include <cstdio>

#include "support/error.hpp"

namespace fgpar::dist {

namespace {

LeaseTable::Config LeaseConfigFor(const Coordinator::Config& config) {
  LeaseTable::Config lease;
  lease.total_points = config.labels.size();
  lease.slice_points = config.slice_points;
  lease.lease_ms = config.lease_ms;
  lease.crash_budget = config.crash_budget;
  lease.target_slice_ms = config.target_slice_ms;
  return lease;
}

std::string Hex16(std::uint64_t value) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(value));
  return buf;
}

}  // namespace

Coordinator::Coordinator(Config config)
    : config_(std::move(config)),
      fingerprint_(harness::GridFingerprint(config_.name, config_.labels)),
      leases_(LeaseConfigFor(config_)) {
  FGPAR_CHECK_MSG(!config_.labels.empty(),
                  "Coordinator needs a non-empty grid");
  if (!config_.checkpoint_path.empty()) {
    journal_.emplace(config_.checkpoint_path, config_.name, fingerprint_);
  }
}

void Coordinator::AdoptPoints(const std::map<std::size_t, std::string>& points) {
  std::map<std::size_t, std::string> accepted;
  for (const auto& [index, payload] : points) {
    if (index >= config_.labels.size()) {
      continue;
    }
    if (leases_.Complete(index)) {
      points_[index] = payload;
      accepted.emplace(index, payload);
    }
  }
  if (journal_) {
    // In-memory only; the next RecordPoint persists everything.  Until
    // then the merged data still lives in the source journals on disk.
    journal_->RestorePoints(points_);
  }
  (void)accepted;
}

CoordinatorReply Coordinator::Apply(const WorkerReport& report,
                                    std::uint64_t now_ms) {
  CoordinatorReply reply;
  reply.lease_ms = config_.lease_ms;
  reply.heartbeat_ms = config_.heartbeat_ms;
  reply.retry_ms = config_.retry_ms;

  if (report.fingerprint != fingerprint_) {
    reply.code = 400;
    reply.error = "grid fingerprint mismatch: worker " +
                  Hex16(report.fingerprint) + ", coordinator " +
                  Hex16(fingerprint_) +
                  " — the worker is running a different grid";
    return reply;
  }

  const bool lease_known =
      report.lease_id != 0 && leases_.leases().count(report.lease_id) != 0;
  reply.lease_revoked = report.lease_id != 0 && !lease_known;

  // Completions first — they are durable the moment they are journaled,
  // and they count even from a revoked lease (the work is done and
  // deterministic; first-committed-wins handles any race).
  for (const CompletedPoint& point : report.completed) {
    if (point.index >= config_.labels.size()) {
      continue;  // out-of-range: a broken worker, not a broken sweep
    }
    if (leases_.Complete(point.index)) {
      points_[point.index] = point.payload;
      if (journal_) {
        journal_->RecordPoint(point.index, point.payload);
      }
      // First commit only: a duplicate's timing re-measures work the EWMA
      // already counted, and racing late commits would make grant sizes
      // depend on which worker lost the race.
      leases_.RecordPointCost(point.wall_ms);
    } else {
      ++duplicate_commits_;
    }
  }
  for (const FailedPoint& point : report.failed) {
    if (point.index >= config_.labels.size()) {
      continue;
    }
    leases_.QuarantineReported(point.index, point.message);
    reported_failures_.emplace(point.index, point);
  }

  // The lease may have legitimately vanished above (its last point
  // committed); only a lease that was already gone on entry is "revoked"
  // from the worker's point of view.
  if (lease_known) {
    leases_.Renew(report.lease_id, now_ms);
    if (report.has_in_progress) {
      leases_.SetInProgress(report.lease_id, report.in_progress);
    }
    const auto it = leases_.leases().find(report.lease_id);
    if (it != leases_.leases().end()) {
      reply.owned.assign(it->second.points.begin(), it->second.points.end());
      reply.lease_id = report.lease_id;
    }
  }

  if (report.want_work) {
    const LeaseGrant grant = leases_.Acquire(report.worker, now_ms);
    if (grant.lease_id != 0) {
      reply.grant = Grant::kLease;
      reply.lease_id = grant.lease_id;
      reply.points = grant.points;
      reply.owned = grant.points;
    } else {
      reply.grant = leases_.Done() ? Grant::kDone : Grant::kWait;
    }
  } else {
    reply.grant = leases_.Done() ? Grant::kDone : Grant::kWait;
  }
  return reply;
}

std::vector<Coordinator::FailureInfo> Coordinator::failures() const {
  std::vector<FailureInfo> out;
  for (const auto& [index, reason] : leases_.quarantined()) {
    FailureInfo info;
    info.index = index;
    const auto it = reported_failures_.find(index);
    if (it != reported_failures_.end()) {
      info.message = it->second.message;
      info.repro_bundle = it->second.repro_bundle;
    } else {
      info.message = reason;
    }
    out.push_back(std::move(info));
  }
  return out;
}

}  // namespace fgpar::dist
