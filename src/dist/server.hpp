// The coordinator's plumbing: listener, per-connection threads, lease
// ticker, real time.  All policy lives in Coordinator (coordinator.hpp);
// this class only moves frames and enforces the two liveness rules the
// pure core cannot see:
//
//  * connection EOF revokes every lease granted over that connection
//    immediately — a worker that died (or was SIGKILLed) should not tie
//    up its points for a full heartbeat timeout;
//  * a background ticker sweeps expired leases every lease_ms/4, so a
//    worker that is alive-but-wedged (holding its socket open, sending
//    nothing) is revoked by the heartbeat deadline.
//
// Address forms match service/client.hpp: "@name" (abstract AF_UNIX),
// "tcp:host:port" (the multi-host transport; port 0 picks a free port,
// see bound_port()), anything else a filesystem AF_UNIX path.
//
// Crash drill: FGPAR_COORD_EXIT_AFTER=<n> makes the server raise SIGKILL
// immediately after the n-th point committed this run — with the
// coordinator journal durably holding that point, exactly like an
// external kill -9.  The restart path (merge journals, AdoptPoints,
// serve again) is what the chaos test exercises.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "dist/coordinator.hpp"

namespace fgpar::dist {

class CoordinatorServer {
 public:
  /// Does not take ownership of `coordinator`; the caller keeps it alive
  /// across Start/Stop (and reads points()/failures() after the sweep).
  CoordinatorServer(Coordinator& coordinator, std::string address);
  ~CoordinatorServer();

  CoordinatorServer(const CoordinatorServer&) = delete;
  CoordinatorServer& operator=(const CoordinatorServer&) = delete;

  /// Binds, listens, and spawns the accept loop and the lease ticker.
  /// Throws fgpar::Error on bind/listen failure.
  void Start();

  /// Blocks until every grid point is committed or quarantined (or Stop
  /// was called from elsewhere).  Workers polling after this point get
  /// Grant::kDone and exit on their own.
  void WaitUntilDone();

  /// Stops accepting, closes live connections, joins every thread.
  /// Idempotent.
  void Stop();

  /// Non-blocking done check (locked) for supervising loops that also
  /// need to reap and re-spawn worker processes between polls.
  bool DoneNow() {
    std::lock_guard<std::mutex> lock(mutex_);
    return coordinator_.Done();
  }

  /// The actual TCP port after Start() with "tcp:host:0" (0 otherwise).
  int bound_port() const { return bound_port_; }

  /// Milliseconds on the server's monotonic clock (0 at construction).
  std::uint64_t NowMs() const;

 private:
  void AcceptLoop();
  void TickerLoop();
  void ServeConnection(int fd);

  Coordinator& coordinator_;
  std::string address_;
  int listen_fd_ = -1;
  int bound_port_ = 0;
  std::atomic<bool> stop_{false};
  std::chrono::steady_clock::time_point epoch_;

  std::mutex mutex_;  // guards coordinator_, conn state, and done_cv_
  std::condition_variable done_cv_;
  std::vector<int> conn_fds_;
  std::vector<std::thread> conn_threads_;
  std::thread accept_thread_;
  std::thread ticker_thread_;
  std::size_t commits_this_run_ = 0;
  std::size_t exit_after_ = 0;  // FGPAR_COORD_EXIT_AFTER drill
};

}  // namespace fgpar::dist
