#include "compiler/graph.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "analysis/affine.hpp"
#include "analysis/control.hpp"
#include "support/error.hpp"

namespace fgpar::compiler {
namespace {

using analysis::KernelIndex;
using analysis::StmtEntry;

/// Union-find over statement ids.
class UnionFind {
 public:
  void Ensure(ir::StmtId id) { parent_.try_emplace(id, id); }
  ir::StmtId Find(ir::StmtId id) {
    Ensure(id);
    ir::StmtId root = id;
    while (parent_[root] != root) {
      root = parent_[root];
    }
    while (parent_[id] != root) {
      const ir::StmtId next = parent_[id];
      parent_[id] = root;
      id = next;
    }
    return root;
  }
  void Union(ir::StmtId a, ir::StmtId b) { parent_[Find(a)] = Find(b); }

 private:
  std::map<ir::StmtId, ir::StmtId> parent_;
};

/// Collects the loop-body non-if statements transitively guarded by `stmt`
/// (which must be an if).
void GuardedStmts(const ir::Stmt& if_stmt, std::vector<ir::StmtId>& out) {
  auto walk = [&](const std::vector<ir::Stmt>& body, auto&& self) -> void {
    for (const ir::Stmt& s : body) {
      if (s.kind == ir::StmtKind::kIf) {
        self(s.then_body, self);
        self(s.else_body, self);
      } else {
        out.push_back(s.id);
      }
    }
  };
  walk(if_stmt.then_body, walk);
  walk(if_stmt.else_body, walk);
}

}  // namespace

int StmtComputeOps(const ir::Kernel& kernel, const ir::Stmt& stmt) {
  int ops = 0;
  switch (stmt.kind) {
    case ir::StmtKind::kAssignTemp:
    case ir::StmtKind::kStoreScalar:
      ops = kernel.ComputeOpCount(stmt.value);
      break;
    case ir::StmtKind::kStoreArray:
      ops = kernel.ComputeOpCount(stmt.value) + kernel.ComputeOpCount(stmt.index);
      break;
    case ir::StmtKind::kIf:
      ops = kernel.ComputeOpCount(stmt.value);
      break;
  }
  return ops;
}

int CodeGraph::NodeOf(ir::StmtId stmt) const {
  for (const auto& [id, node] : stmt_to_node_) {
    if (id == stmt) {
      return node;
    }
  }
  throw Error("statement not in code graph: " + std::to_string(stmt));
}

CodeGraph BuildCodeGraph(const KernelIndex& index, const analysis::CostModel& cost) {
  const ir::Kernel& kernel = index.kernel();
  CodeGraph graph;
  UnionFind fuse;

  // Partitionable statements: loop-body non-if statements.
  std::vector<const StmtEntry*> members;
  for (const StmtEntry& entry : index.entries()) {
    if (!entry.in_epilogue && !entry.is_if) {
      members.push_back(&entry);
      fuse.Ensure(entry.id);
    }
  }

  // ---- fusion: loop-carried temporaries ----
  for (const ir::Temp& temp : kernel.temps()) {
    if (!temp.carried) {
      continue;
    }
    ir::StmtId anchor = -1;
    auto touch = [&](ir::StmtId id) {
      const StmtEntry& entry = index.ByStmtId(id);
      if (entry.in_epilogue) {
        return;  // epilogue is primary-only; no fusion effect
      }
      // An if reading a carried temp fuses everything it guards with the
      // carried group (the guarded code needs the value's core context).
      if (entry.is_if) {
        std::vector<ir::StmtId> guarded;
        GuardedStmts(*entry.stmt, guarded);
        for (ir::StmtId g : guarded) {
          if (anchor == -1) {
            anchor = g;
          } else {
            fuse.Union(anchor, g);
          }
        }
        return;
      }
      if (anchor == -1) {
        anchor = id;
      } else {
        fuse.Union(anchor, id);
      }
    };
    for (ir::StmtId id : index.DefsOf(temp.id)) {
      touch(id);
    }
    for (ir::StmtId id : index.UsesOf(temp.id)) {
      touch(id);
    }
  }

  // ---- fusion: memory conflicts ----
  struct Access {
    const StmtEntry* entry;
    analysis::MemAccess access;
  };
  std::map<ir::SymbolId, std::vector<Access>> by_symbol;
  for (const StmtEntry* entry : members) {
    for (const analysis::MemAccess& access : entry->accesses) {
      by_symbol[access.sym].push_back(Access{entry, access});
    }
  }
  for (const auto& [sym, accesses] : by_symbol) {
    for (std::size_t i = 0; i < accesses.size(); ++i) {
      for (std::size_t j = i + 1; j < accesses.size(); ++j) {
        const Access& a = accesses[i];
        const Access& b = accesses[j];
        if (a.entry->id == b.entry->id) {
          continue;  // same statement, same core by definition
        }
        if (!a.access.is_write && !b.access.is_write) {
          continue;  // read-read never conflicts
        }
        bool conflict = true;
        if (a.access.is_scalar) {
          conflict = true;  // fixed address, collides at every distance
        } else {
          switch (analysis::CompareIndices(a.access.index, b.access.index)) {
            case analysis::Overlap::kNever:
              conflict = false;
              break;
            case analysis::Overlap::kSameIterOnly:
              // Same-iteration-only conflicts from mutually exclusive
              // branches can never actually co-occur.
              conflict = !analysis::MutuallyExclusive(a.entry->path, b.entry->path);
              break;
            case analysis::Overlap::kMayConflict:
              conflict = true;
              break;
          }
        }
        if (conflict) {
          fuse.Union(a.entry->id, b.entry->id);
        }
      }
    }
  }

  // ---- build nodes from fusion classes ----
  std::map<ir::StmtId, int> root_to_node;
  for (const StmtEntry* entry : members) {
    const ir::StmtId root = fuse.Find(entry->id);
    auto [it, inserted] = root_to_node.try_emplace(
        root, static_cast<int>(graph.nodes.size()));
    if (inserted) {
      graph.nodes.emplace_back();
      graph.nodes.back().min_line = entry->stmt->source_line;
    }
    GraphNode& node = graph.nodes[static_cast<std::size_t>(it->second)];
    node.stmts.push_back(entry->id);
    node.cost += cost.StmtCost(kernel, *entry->stmt);
    node.min_line = std::min(node.min_line, entry->stmt->source_line);
    node.compute_ops += StmtComputeOps(kernel, *entry->stmt);
    graph.stmt_to_node_.emplace_back(entry->id, it->second);
  }

  // ---- edges: temp dataflow + control dependences ----
  std::set<std::pair<ir::StmtId, ir::StmtId>> seen;
  for (const ir::Temp& temp : kernel.temps()) {
    if (temp.carried) {
      continue;  // carried deps are internal to a fused node
    }
    const auto& defs = index.DefsOf(temp.id);
    if (defs.empty()) {
      continue;
    }
    const ir::StmtId def = defs.front();
    const StmtEntry& def_entry = index.ByStmtId(def);
    if (def_entry.in_epilogue) {
      continue;
    }
    for (ir::StmtId use : index.UsesOf(temp.id)) {
      const StmtEntry& use_entry = index.ByStmtId(use);
      if (use_entry.in_epilogue) {
        continue;  // live-out handling, not a loop dependence
      }
      if (use_entry.is_if) {
        // Control dependence: cond producer -> every guarded statement.
        std::vector<ir::StmtId> guarded;
        GuardedStmts(*use_entry.stmt, guarded);
        for (ir::StmtId g : guarded) {
          if (g != def && seen.emplace(def, g).second) {
            graph.edges.push_back(DepEdge{def, g, /*is_control=*/true});
          }
        }
      } else if (use != def && seen.emplace(def, use).second) {
        graph.edges.push_back(DepEdge{def, use, /*is_control=*/false});
        ++graph.data_dep_count;
      }
    }
  }
  return graph;
}

}  // namespace fgpar::compiler
