#include "compiler/check.hpp"

#include <map>
#include <sstream>
#include <vector>

#include "support/error.hpp"

namespace fgpar::compiler {
namespace {

/// Collects the if statements appearing in any core plan, in a stable order.
void CollectIfs(const std::vector<PlanItem>& items, std::vector<ir::StmtId>& out) {
  for (const PlanItem& item : items) {
    if (item.kind == PlanItem::Kind::kIf) {
      bool seen = false;
      for (ir::StmtId id : out) {
        seen |= id == item.stmt->id;
      }
      if (!seen) {
        out.push_back(item.stmt->id);
      }
      CollectIfs(item.then_items, out);
      CollectIfs(item.else_items, out);
    }
  }
}

struct QueueKey {
  int src;
  int dst;
  bool is_fp;
  auto operator<=>(const QueueKey&) const = default;
};

void Trace(const std::vector<PlanItem>& items, int core, const CommPlan& comm,
           const std::map<ir::StmtId, bool>& branch,
           std::map<QueueKey, std::vector<int>>& enq_seq,
           std::map<QueueKey, std::vector<int>>& deq_seq) {
  for (const PlanItem& item : items) {
    switch (item.kind) {
      case PlanItem::Kind::kStmt:
        break;
      case PlanItem::Kind::kIf: {
        const auto it = branch.find(item.stmt->id);
        FGPAR_CHECK_MSG(it != branch.end(), "if without a branch assignment");
        Trace(it->second ? item.then_items : item.else_items, core, comm, branch,
              enq_seq, deq_seq);
        break;
      }
      case PlanItem::Kind::kEnq: {
        const Transfer& t = comm.transfers[static_cast<std::size_t>(item.transfer)];
        enq_seq[{t.src_core, t.dst_core, t.type == ir::ScalarType::kF64}]
            .push_back(t.id);
        break;
      }
      case PlanItem::Kind::kDeq: {
        const Transfer& t = comm.transfers[static_cast<std::size_t>(item.transfer)];
        deq_seq[{t.src_core, t.dst_core, t.type == ir::ScalarType::kF64}]
            .push_back(t.id);
        break;
      }
    }
  }
}

}  // namespace

void CheckCommunicationPairing(const ir::Kernel& kernel, const ProgramPlan& plan) {
  (void)kernel;
  std::vector<ir::StmtId> ifs;
  for (const CorePlan& core : plan.cores) {
    CollectIfs(core.body, ifs);
  }
  FGPAR_CHECK_MSG(ifs.size() <= 20, "too many conditionals to check exhaustively");

  const std::uint64_t combos = 1ull << ifs.size();
  for (std::uint64_t mask = 0; mask < combos; ++mask) {
    std::map<ir::StmtId, bool> branch;
    for (std::size_t i = 0; i < ifs.size(); ++i) {
      branch[ifs[i]] = ((mask >> i) & 1) != 0;
    }
    std::map<QueueKey, std::vector<int>> enq_seq;
    std::map<QueueKey, std::vector<int>> deq_seq;
    for (const CorePlan& core : plan.cores) {
      Trace(core.body, core.core, plan.comm, branch, enq_seq, deq_seq);
    }
    // Every queue's enqueue sequence must equal its dequeue sequence.
    for (const auto& [key, enqs] : enq_seq) {
      const auto it = deq_seq.find(key);
      const std::vector<int> empty;
      const std::vector<int>& deqs = it == deq_seq.end() ? empty : it->second;
      if (enqs != deqs) {
        std::ostringstream os;
        os << "communication pairing violated on queue " << key.src << "->"
           << key.dst << (key.is_fp ? " (fp)" : " (int)") << " under branch mask "
           << mask << ": enq sequence [";
        for (int id : enqs) os << ' ' << id;
        os << " ] vs deq sequence [";
        for (int id : deqs) os << ' ' << id;
        os << " ]";
        throw Error(os.str());
      }
      if (it != deq_seq.end()) {
        deq_seq.erase(it);
      }
    }
    for (const auto& [key, deqs] : deq_seq) {
      if (!deqs.empty()) {
        std::ostringstream os;
        os << "dequeue without matching enqueue on queue " << key.src << "->"
           << key.dst << (key.is_fp ? " (fp)" : " (int)") << " under branch mask "
           << mask;
        throw Error(os.str());
      }
    }
  }
}

}  // namespace fgpar::compiler
