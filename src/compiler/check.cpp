#include "compiler/check.hpp"

#include <algorithm>
#include <map>
#include <sstream>
#include <vector>

#include "support/error.hpp"

namespace fgpar::compiler {
namespace {

/// Collects the if statements appearing in any core plan, in a stable order.
void CollectIfs(const std::vector<PlanItem>& items, std::vector<ir::StmtId>& out) {
  for (const PlanItem& item : items) {
    if (item.kind == PlanItem::Kind::kIf) {
      bool seen = false;
      for (ir::StmtId id : out) {
        seen |= id == item.stmt->id;
      }
      if (!seen) {
        out.push_back(item.stmt->id);
      }
      CollectIfs(item.then_items, out);
      CollectIfs(item.else_items, out);
    }
  }
}

struct QueueKey {
  int src;
  int dst;
  bool is_fp;
  auto operator<=>(const QueueKey&) const = default;
};

void Trace(const std::vector<PlanItem>& items, int core, const CommPlan& comm,
           const std::map<ir::StmtId, bool>& branch,
           std::map<QueueKey, std::vector<int>>& enq_seq,
           std::map<QueueKey, std::vector<int>>& deq_seq) {
  for (const PlanItem& item : items) {
    switch (item.kind) {
      case PlanItem::Kind::kStmt:
        break;
      case PlanItem::Kind::kIf: {
        const auto it = branch.find(item.stmt->id);
        FGPAR_CHECK_MSG(it != branch.end(), "if without a branch assignment");
        Trace(it->second ? item.then_items : item.else_items, core, comm, branch,
              enq_seq, deq_seq);
        break;
      }
      case PlanItem::Kind::kEnq: {
        const Transfer& t = comm.transfers[static_cast<std::size_t>(item.transfer)];
        enq_seq[{t.src_core, t.dst_core, t.type == ir::ScalarType::kF64}]
            .push_back(t.id);
        break;
      }
      case PlanItem::Kind::kDeq: {
        const Transfer& t = comm.transfers[static_cast<std::size_t>(item.transfer)];
        deq_seq[{t.src_core, t.dst_core, t.type == ir::ScalarType::kF64}]
            .push_back(t.id);
        break;
      }
    }
  }
}

/// One queue operation of one core, in program order, with branches
/// resolved.  The unit of the capacity-deadlock simulation.
struct QueueOp {
  bool is_enq = false;
  QueueKey key{};
  int transfer = -1;
};

void CollectOps(const std::vector<PlanItem>& items, const CommPlan& comm,
                const std::map<ir::StmtId, bool>& branch,
                std::vector<QueueOp>& out) {
  for (const PlanItem& item : items) {
    switch (item.kind) {
      case PlanItem::Kind::kStmt:
        break;
      case PlanItem::Kind::kIf: {
        const auto it = branch.find(item.stmt->id);
        FGPAR_CHECK_MSG(it != branch.end(), "if without a branch assignment");
        CollectOps(it->second ? item.then_items : item.else_items, comm, branch,
                   out);
        break;
      }
      case PlanItem::Kind::kEnq: {
        const Transfer& t = comm.transfers[static_cast<std::size_t>(item.transfer)];
        out.push_back(QueueOp{
            true, {t.src_core, t.dst_core, t.type == ir::ScalarType::kF64},
            t.id});
        break;
      }
      case PlanItem::Kind::kDeq: {
        const Transfer& t = comm.transfers[static_cast<std::size_t>(item.transfer)];
        out.push_back(QueueOp{
            false, {t.src_core, t.dst_core, t.type == ir::ScalarType::kF64},
            t.id});
        break;
      }
    }
  }
}

/// Greedily executes every core's queue-op sequence against capacity-
/// bounded occupancy counters.  Returns true when every core completes its
/// iteration; on failure, `diag` (if non-null) receives one line per
/// blocked core.  Greedy maximal progress decides deadlock exactly here:
/// each queue has a single sender and a single receiver, so firing one
/// enabled op can never disable another (see the header comment).
bool SimulateIterationAtCapacity(const ProgramPlan& plan,
                                 const std::vector<std::vector<QueueOp>>& ops,
                                 int capacity, std::string* diag) {
  std::vector<std::size_t> pos(ops.size(), 0);
  std::map<QueueKey, int> occupancy;
  bool progress = true;
  while (progress) {
    progress = false;
    for (std::size_t c = 0; c < ops.size(); ++c) {
      while (pos[c] < ops[c].size()) {
        const QueueOp& op = ops[c][pos[c]];
        if (op.is_enq) {
          int& occ = occupancy[op.key];
          if (occ >= capacity) {
            break;
          }
          ++occ;
        } else {
          int& occ = occupancy[op.key];
          if (occ <= 0) {
            break;
          }
          --occ;
        }
        ++pos[c];
        progress = true;
      }
    }
  }
  bool complete = true;
  std::ostringstream os;
  for (std::size_t c = 0; c < ops.size(); ++c) {
    if (pos[c] >= ops[c].size()) {
      continue;
    }
    complete = false;
    const QueueOp& op = ops[c][pos[c]];
    os << "  core " << plan.cores[c].core << ": blocked "
       << (op.is_enq ? "enqueuing transfer " : "dequeuing transfer ")
       << op.transfer << " on " << (op.key.is_fp ? "fp" : "int") << " queue "
       << op.key.src << "->" << op.key.dst << " (occupancy "
       << occupancy[op.key] << "/" << capacity << ", op " << pos[c] + 1
       << " of " << ops[c].size() << ")\n";
  }
  if (!complete && diag != nullptr) {
    *diag = os.str();
  }
  return complete;
}

/// Resolves each core's queue-op sequence under one branch assignment.
std::vector<std::vector<QueueOp>> ResolveOps(
    const ProgramPlan& plan, const std::map<ir::StmtId, bool>& branch) {
  std::vector<std::vector<QueueOp>> ops;
  ops.reserve(plan.cores.size());
  for (const CorePlan& core : plan.cores) {
    std::vector<QueueOp> seq;
    CollectOps(core.body, plan.comm, branch, seq);
    ops.push_back(std::move(seq));
  }
  return ops;
}

/// Enumerates the branch assignments of a plan (shared by both checkers).
std::vector<ir::StmtId> PlanIfs(const ProgramPlan& plan) {
  std::vector<ir::StmtId> ifs;
  for (const CorePlan& core : plan.cores) {
    CollectIfs(core.body, ifs);
  }
  FGPAR_CHECK_MSG(ifs.size() <= 20, "too many conditionals to check exhaustively");
  return ifs;
}

std::map<ir::StmtId, bool> BranchAssignment(const std::vector<ir::StmtId>& ifs,
                                            std::uint64_t mask) {
  std::map<ir::StmtId, bool> branch;
  for (std::size_t i = 0; i < ifs.size(); ++i) {
    branch[ifs[i]] = ((mask >> i) & 1) != 0;
  }
  return branch;
}

}  // namespace

void CheckCommunicationPairing(const ir::Kernel& kernel, const ProgramPlan& plan) {
  (void)kernel;
  const std::vector<ir::StmtId> ifs = PlanIfs(plan);

  const std::uint64_t combos = 1ull << ifs.size();
  for (std::uint64_t mask = 0; mask < combos; ++mask) {
    const std::map<ir::StmtId, bool> branch = BranchAssignment(ifs, mask);
    std::map<QueueKey, std::vector<int>> enq_seq;
    std::map<QueueKey, std::vector<int>> deq_seq;
    for (const CorePlan& core : plan.cores) {
      Trace(core.body, core.core, plan.comm, branch, enq_seq, deq_seq);
    }
    // Every queue's enqueue sequence must equal its dequeue sequence.
    for (const auto& [key, enqs] : enq_seq) {
      const auto it = deq_seq.find(key);
      const std::vector<int> empty;
      const std::vector<int>& deqs = it == deq_seq.end() ? empty : it->second;
      if (enqs != deqs) {
        std::ostringstream os;
        os << "communication pairing violated on queue " << key.src << "->"
           << key.dst << (key.is_fp ? " (fp)" : " (int)") << " under branch mask "
           << mask << ": enq sequence [";
        for (int id : enqs) os << ' ' << id;
        os << " ] vs deq sequence [";
        for (int id : deqs) os << ' ' << id;
        os << " ]";
        throw Error(os.str());
      }
      if (it != deq_seq.end()) {
        deq_seq.erase(it);
      }
    }
    for (const auto& [key, deqs] : deq_seq) {
      if (!deqs.empty()) {
        std::ostringstream os;
        os << "dequeue without matching enqueue on queue " << key.src << "->"
           << key.dst << (key.is_fp ? " (fp)" : " (int)") << " under branch mask "
           << mask;
        throw Error(os.str());
      }
    }
  }
}

void CheckQueueCapacity(const ProgramPlan& plan, int capacity) {
  if (capacity <= 0) {
    return;  // unlimited capacity: bounded-buffer deadlock is impossible
  }
  const std::vector<ir::StmtId> ifs = PlanIfs(plan);
  const std::uint64_t combos = 1ull << ifs.size();
  for (std::uint64_t mask = 0; mask < combos; ++mask) {
    const std::vector<std::vector<QueueOp>> ops =
        ResolveOps(plan, BranchAssignment(ifs, mask));
    std::string diag;
    if (!SimulateIterationAtCapacity(plan, ops, capacity, &diag)) {
      std::ostringstream os;
      os << "queue capacity deadlock: with capacity " << capacity
         << " the plan reaches a cyclic wait under branch mask " << mask;
      const int required = RequiredQueueCapacity(plan);
      if (required > 0) {
        os << " (plan requires capacity >= " << required << ")";
      } else {
        os << " (no finite capacity suffices: ordering deadlock)";
      }
      os << ":\n" << diag;
      throw Error(os.str());
    }
  }
}

int RequiredQueueCapacity(const ProgramPlan& plan) {
  const std::vector<ir::StmtId> ifs = PlanIfs(plan);
  const std::uint64_t combos = 1ull << ifs.size();
  int required = 1;
  for (std::uint64_t mask = 0; mask < combos; ++mask) {
    const std::vector<std::vector<QueueOp>> ops =
        ResolveOps(plan, BranchAssignment(ifs, mask));
    // The worst-case need never exceeds the longest per-queue enqueue
    // sequence of the iteration: with that many slots the sender can run
    // its whole iteration without blocking.
    std::map<QueueKey, int> enq_counts;
    int bound = 1;
    for (const std::vector<QueueOp>& seq : ops) {
      for (const QueueOp& op : seq) {
        if (op.is_enq) {
          bound = std::max(bound, ++enq_counts[op.key]);
        }
      }
    }
    int cap = required;  // monotone: smaller masks' result is a floor
    while (cap <= bound &&
           !SimulateIterationAtCapacity(plan, ops, cap, nullptr)) {
      ++cap;
    }
    if (cap > bound) {
      return -1;  // deadlocks even with enough slots for every enqueue
    }
    required = std::max(required, cap);
  }
  return required;
}

}  // namespace fgpar::compiler
