// Communication planning (paper Sections III-D, III-F, III-G).
//
// After partitioning, every cross-core dataflow becomes a Transfer: the
// producer core enqueues the value after computing it, the consumer core
// dequeues it before first use.  Three classes of values move:
//
//  * per-iteration transfers — temp values (including branch-condition
//    values, Section III-E) consumed by statements or replicated ifs on
//    another core; these are the "Com Ops" of Table III;
//  * live-outs (Section III-F) — final values of temps the epilogue reads,
//    sent once to the primary core after the loop;
//  * function arguments (Section III-G) — parameter values each outlined
//    function needs, enqueued by the primary right after the function
//    pointer.
#pragma once

#include <map>
#include <vector>

#include "analysis/control.hpp"
#include "analysis/index.hpp"
#include "compiler/partition.hpp"

namespace fgpar::compiler {

struct Transfer {
  int id = -1;
  ir::TempId temp = -1;
  ir::ScalarType type = ir::ScalarType::kF64;
  int src_core = -1;
  int dst_core = -1;
  ir::StmtId producer_stmt = -1;
  analysis::ControlPath path;  // producer's control path (both sides place
                               // their queue op at this predicate level)
};

struct LiveOut {
  ir::TempId temp = -1;
  ir::ScalarType type = ir::ScalarType::kF64;
  int src_core = -1;  // always sent to core 0
};

struct CommPlan {
  std::vector<Transfer> transfers;
  std::vector<LiveOut> live_outs;
  /// Params each secondary core needs, ascending symbol id.
  std::map<int, std::vector<ir::SymbolId>> args;
  /// If statements each core must replicate (Section III-E).
  std::map<int, std::vector<ir::StmtId>> replicated_ifs;

  /// "Com Ops" of Table III: enqueue/dequeue pairs in the loop code.
  int com_ops() const { return static_cast<int>(transfers.size()); }
};

/// Plans all communication for one statement→core mapping.  Accepts the
/// bare CoreAssignment so the multi-version candidate loop can plan many
/// candidates against one shared kernel/index without copying either.
CommPlan BuildCommPlan(const analysis::KernelIndex& index,
                       const CoreAssignment& assignment);

}  // namespace fgpar::compiler
