// The code graph (paper Section III-B).
//
// "Once fibers have been identified, a graph (called the code graph) is
// built.  Each node in this code graph represents a fiber.  Edges between
// nodes represent data and control dependences between code sections."
//
// Nodes are groups of fiberized loop-body statements.  Before any affinity
// merging, statements that must share a core are pre-fused:
//
//  * all defs and uses of a loop-carried temporary (a cross-core carried
//    value would serialize every iteration on the transfer latency, and
//    the paper keeps reductions sequential);
//  * statements with unresolvable memory conflicts: for every symbol, any
//    two accesses at least one of which is a write are fused unless the
//    affine subscript analysis proves them disjoint at every iteration
//    distance, or they conflict only in the same iteration from mutually
//    exclusive branches.  This is what keeps the pipelined cross-core
//    execution (cores may be several iterations apart, bounded by queue
//    capacity) sound without speculation hardware.
#pragma once

#include <vector>

#include "analysis/cost.hpp"
#include "analysis/index.hpp"
#include "ir/kernel.hpp"

namespace fgpar::compiler {

struct GraphNode {
  std::vector<ir::StmtId> stmts;  // loop-body non-if statements
  double cost = 0.0;              // estimated cycles (Section III-B heuristic 2)
  int min_line = 0;               // source proximity (heuristic 3)
  int compute_ops = 0;            // for Table III load balance
};

struct DepEdge {
  ir::StmtId producer;
  ir::StmtId consumer;
  bool is_control = false;  // condition-value dependence (Section III-E)
};

struct CodeGraph {
  std::vector<GraphNode> nodes;
  std::vector<DepEdge> edges;  // statement-level, producer -> consumer
  /// "Data Deps" of Table III: data dependences between initial fibers.
  int data_dep_count = 0;

  /// Node index containing a statement.
  int NodeOf(ir::StmtId stmt) const;

 private:
  friend CodeGraph BuildCodeGraph(const analysis::KernelIndex& index,
                                  const analysis::CostModel& cost);
  std::vector<std::pair<ir::StmtId, int>> stmt_to_node_;
};

/// Builds the fused code graph for a fiberized kernel.
CodeGraph BuildCodeGraph(const analysis::KernelIndex& index,
                         const analysis::CostModel& cost);

/// Compute-op count of one statement (internal expression nodes, including
/// the store subscript).
int StmtComputeOps(const ir::Kernel& kernel, const ir::Stmt& stmt);

}  // namespace fgpar::compiler
