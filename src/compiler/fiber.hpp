// Fiber formation (paper Section III-A).
//
// "We define a fiber to be a sequence of instructions without any control
// flow or memory carried dependences among its instructions.  We partition
// the code into fibers, thus exposing fine-grained parallelism."
//
// The partitioning algorithm operates per statement on its expression tree,
// exactly as in the paper: leaves (memory loads, literals, parameter /
// temporary / induction-variable references) stay unassigned, and a
// post-order traversal over the internal (compute) nodes applies three
// rules:
//   1. all children unassigned            -> start a new fiber;
//   2. all assigned children in one fiber -> continue that fiber;
//   3. assigned children in many fibers   -> start a new fiber.
//
// Fiberize() then *materializes* every fiber as its own statement
// (`@fiber_n = <subtree>`), with fiber-boundary children replaced by
// temporary references.  After this rewrite a statement IS a fiber: the
// code graph, the merge heuristics, and the communication inserter all
// operate at statement granularity, and cross-fiber dataflow is ordinary
// temp use-def that the queue hardware can carry.
//
// Store statements additionally get their stored value bound to a
// temporary (`@sv = rhs; a[i] = @sv`) and if conditions are reduced to a
// bare temporary reference (`@cnd = cond; if (@cnd)`), so that stored
// values and branch conditions are transferable values too (Sections III-D
// and III-E).
#pragma once

#include "ir/kernel.hpp"

namespace fgpar::compiler {

struct FiberStats {
  /// "Initial Fibers" of Table III: total fibers found across the loop
  /// body's statements.
  int initial_fibers = 0;
  /// Statements in the rewritten loop body (excluding if structure).
  int fiber_statements = 0;
};

/// Rewrites `kernel` in place so every loop-body statement is one fiber.
FiberStats Fiberize(ir::Kernel& kernel);

}  // namespace fgpar::compiler
