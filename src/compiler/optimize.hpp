// Scalar optimizations shared by the sequential and parallel pipelines.
//
// Both pipelines run these after splitting/forwarding so the baseline and
// the fine-grained parallel code are compared at the same optimization
// level (the paper's speedups are over "the base sequential version" of
// the same compiler).
//
//  * FoldConstants: evaluates constant subexpressions at compile time with
//    exactly the interpreter's arithmetic (so folding can never change
//    results).  Folding a trapping integer division/remainder by zero is
//    refused — the runtime trap is preserved.
//  * EliminateDeadTemps: removes assignments to plain temporaries that are
//    never read (forwarding and fiberization can orphan values); carried
//    temps and anything the epilogue reads are kept.
#pragma once

#include "ir/kernel.hpp"

namespace fgpar::compiler {

/// Folds constant subexpressions in place; returns nodes folded.
int FoldConstants(ir::Kernel& kernel);

/// Removes dead plain-temp assignments in place; returns statements removed.
int EliminateDeadTemps(ir::Kernel& kernel);

}  // namespace fgpar::compiler
