#include "compiler/pass.hpp"

#include <algorithm>

#include "compiler/backend.hpp"
#include "compiler/check.hpp"
#include "compiler/lowered.hpp"
#include "support/error.hpp"
#include "support/str.hpp"

namespace fgpar::compiler {

void CompileState::Note(const std::string& key, std::int64_t value) {
  if (current_counters != nullptr) {
    (*current_counters)[key] = value;
  }
}

void Pass::CheckInvariants(const CompileState& state) const {
  (void)state;  // no invariants by default
}

namespace {

/// Builds the KernelIndex, the CostModel, and the code graph (Section
/// III-B) from the fully rewritten kernel.  Later stages read all three
/// from the state.
class GraphPass final : public Pass {
 public:
  const char* name() const override { return "graph"; }
  const char* description() const override {
    return "build the code graph: KernelIndex + CostModel + fused "
           "dependence graph (Section III-B)";
  }
  void Run(CompileState& state) override {
    state.index.emplace(state.kernel());
    state.cost.emplace(sim::CoreTiming{}, sim::CacheConfig{},
                       state.options.use_profile ? state.profile : nullptr);
    state.graph.emplace(BuildCodeGraph(*state.index, *state.cost));
    state.partition.data_deps = state.graph->data_dep_count;
    state.Note("graph_nodes",
               static_cast<std::int64_t>(state.graph->nodes.size()));
    state.Note("dep_edges",
               static_cast<std::int64_t>(state.graph->edges.size()));
    state.Note("data_deps", state.graph->data_dep_count);
  }
  void CheckInvariants(const CompileState& state) const override {
    FGPAR_CHECK_MSG(state.graph.has_value() && state.index.has_value(),
                    "graph stage left no code graph in the state");
  }
};

/// Merges the code graph into candidate partitionings.  With an evaluator
/// the full Section III-I.1 candidate set is enumerated for dynamic
/// feedback; without one, the static heuristics produce the single best
/// merge.
class MergePass final : public Pass {
 public:
  const char* name() const override { return "merge"; }
  const char* description() const override {
    return "merge the code graph into candidate partitionings "
           "(Section III-B heuristics; III-I.1 multi-version set)";
  }
  void Run(CompileState& state) override {
    FGPAR_CHECK_MSG(state.graph.has_value(),
                    "merge stage requires the graph stage");
    state.candidates =
        state.evaluator != nullptr
            ? EnumerateCandidates(*state.graph, state.options)
            : std::vector<std::vector<MergedPartition>>{
                  MergeGraph(*state.graph, state.options)};
    state.Note("candidates",
               static_cast<std::int64_t>(state.candidates.size()));
  }
  void CheckInvariants(const CompileState& state) const override {
    FGPAR_CHECK_MSG(!state.candidates.empty(),
                    "merge stage produced no candidate partitionings");
  }
};

/// The multi-version candidate loop (Section III-I.1): every candidate
/// partitioning is assigned to cores, communication-planned, proven
/// pairable and capacity-deadlock-free, and lowered; the evaluator (when
/// present) measures each built program and the best one wins.  Only the
/// per-candidate mapping state (CoreAssignment) is materialized — the
/// kernel and its index are shared read-only across all candidates.
class SelectPass final : public Pass {
 public:
  const char* name() const override { return "select"; }
  const char* description() const override {
    return "build every candidate (cores -> comm plan -> pairing/capacity "
           "proofs -> lower), pick by dynamic feedback or static objective";
  }
  void Run(CompileState& state) override {
    FGPAR_CHECK_MSG(state.index.has_value() && !state.candidates.empty(),
                    "select stage requires the graph and merge stages");
    FGPAR_CHECK_MSG(state.layout != nullptr,
                    "select stage requires a data layout to lower against");
    const analysis::KernelIndex& index = *state.index;
    const ir::Kernel& kernel = state.kernel();

    struct Built {
      isa::Program program;
      ProgramPlan plan;
      CoreAssignment assignment;
      std::uint64_t measured = 0;
    };
    std::optional<Built> best;
    state.rejected_candidates.clear();
    int built_count = 0;
    for (std::size_t i = 0; i < state.candidates.size(); ++i) {
      try {
        CoreAssignment assignment = AssignCores(index, state.candidates[i]);
        CommPlan comm = BuildCommPlan(index, assignment);
        ProgramPlan plan = BuildProgramPlan(index, assignment, std::move(comm));
        CheckCommunicationPairing(kernel, plan);
        CheckQueueCapacity(plan, state.options.assumed_queue_capacity);
        Built built{LowerToSim({&kernel, state.layout, &plan}),
                    std::move(plan), std::move(assignment), 0};
        if (state.evaluator != nullptr) {
          built.measured = (*state.evaluator)(
              built.program,
              static_cast<int>(built.assignment.partitions.size()));
        }
        ++built_count;
        if (!best.has_value() || built.measured < best->measured) {
          best = std::move(built);
        }
      } catch (const Error& e) {
        // Candidate rejected (pairing/capacity/lowering); try the next one
        // and keep the diagnostic for the aggregate error and --compile-stats.
        state.rejected_candidates.push_back(
            "candidate " + std::to_string(i + 1) + "/" +
            std::to_string(state.candidates.size()) + " (" +
            std::to_string(state.candidates[i].size()) +
            " partitions): " + e.what());
      }
    }
    state.Note("candidates_built", built_count);
    state.Note("candidates_rejected",
               static_cast<std::int64_t>(state.rejected_candidates.size()));
    if (!best.has_value()) {
      std::string message =
          "no candidate partitioning compiled successfully (" +
          std::to_string(state.candidates.size()) + " candidates)";
      for (const std::string& reason : state.rejected_candidates) {
        message += "\n  " + reason;
      }
      throw Error(message);
    }
    state.Note("partitions",
               static_cast<std::int64_t>(best->assignment.partitions.size()));
    state.Note("com_ops", best->plan.comm.com_ops());
    if (state.evaluator != nullptr) {
      state.Note("best_measured_cycles",
                 static_cast<std::int64_t>(best->measured));
    }
    static_cast<CoreAssignment&>(state.partition) = std::move(best->assignment);
    state.plan = std::move(best->plan);
    state.program = std::move(best->program);
  }
  void CheckInvariants(const CompileState& state) const override {
    FGPAR_CHECK_MSG(state.plan.has_value() && state.program.has_value(),
                    "select stage left no chosen plan/program");
    // Every loop-body statement must be owned by exactly one core.
    for (const analysis::StmtEntry& entry : state.index->entries()) {
      if (entry.in_epilogue || entry.is_if) {
        continue;
      }
      FGPAR_CHECK_MSG(state.partition.core_of.contains(entry.id),
                      "statement s" + std::to_string(entry.id) +
                          " not assigned to any core");
    }
    // Pairing-after-comm: re-prove that the chosen plan's queue operations
    // pair on every control path (the per-candidate proof ran on the same
    // plan; this guards future stages that might reorder plan items).
    CheckCommunicationPairing(state.kernel(), *state.plan);
  }
};

/// Lowers the scalar kernel for a single core (the paper's sequential
/// baseline).
class LowerSequentialPass final : public Pass {
 public:
  const char* name() const override { return "lower"; }
  const char* description() const override {
    return "lower the scalar kernel to the single-core baseline program";
  }
  void Run(CompileState& state) override {
    FGPAR_CHECK_MSG(state.layout != nullptr,
                    "lower stage requires a data layout");
    state.program = LowerToSim({&state.kernel(), state.layout, nullptr});
    state.Note("code_words",
               static_cast<std::int64_t>(state.program->size()));
  }
  void CheckInvariants(const CompileState& state) const override {
    FGPAR_CHECK_MSG(state.program.has_value(),
                    "lower stage produced no program");
  }
};

}  // namespace

std::unique_ptr<Pass> MakeGraphPass() { return std::make_unique<GraphPass>(); }
std::unique_ptr<Pass> MakeMergePass() { return std::make_unique<MergePass>(); }
std::unique_ptr<Pass> MakeSelectPass() { return std::make_unique<SelectPass>(); }
std::unique_ptr<Pass> MakeLowerSequentialPass() {
  return std::make_unique<LowerSequentialPass>();
}

}  // namespace fgpar::compiler
