#include "compiler/pass.hpp"

#include <algorithm>
#include <cmath>

#include "compiler/backend.hpp"
#include "compiler/check.hpp"
#include "compiler/cost_model.hpp"
#include "compiler/lowered.hpp"
#include "support/error.hpp"
#include "support/str.hpp"

namespace fgpar::compiler {

void CompileState::Note(const std::string& key, std::int64_t value) {
  if (current_counters != nullptr) {
    (*current_counters)[key] = value;
  }
}

void Pass::CheckInvariants(const CompileState& state) const {
  (void)state;  // no invariants by default
}

namespace {

/// Builds the KernelIndex, the CostModel, and the code graph (Section
/// III-B) from the fully rewritten kernel.  Later stages read all three
/// from the state.
class GraphPass final : public Pass {
 public:
  const char* name() const override { return "graph"; }
  const char* description() const override {
    return "build the code graph: KernelIndex + CostModel + fused "
           "dependence graph (Section III-B)";
  }
  void Run(CompileState& state) override {
    state.index.emplace(state.kernel());
    state.cost.emplace(sim::CoreTiming{}, sim::CacheConfig{},
                       state.options.use_profile ? state.profile : nullptr);
    state.graph.emplace(BuildCodeGraph(*state.index, *state.cost));
    state.partition.data_deps = state.graph->data_dep_count;
    state.Note("graph_nodes",
               static_cast<std::int64_t>(state.graph->nodes.size()));
    state.Note("dep_edges",
               static_cast<std::int64_t>(state.graph->edges.size()));
    state.Note("data_deps", state.graph->data_dep_count);
  }
  void CheckInvariants(const CompileState& state) const override {
    FGPAR_CHECK_MSG(state.graph.has_value() && state.index.has_value(),
                    "graph stage left no code graph in the state");
  }
};

/// Merges the code graph into candidate partitionings.  With an evaluator
/// or a pluggable cost model the full Section III-I.1 candidate set is
/// enumerated for per-candidate scoring; without either, the static
/// heuristics produce the single best merge.
class MergePass final : public Pass {
 public:
  const char* name() const override { return "merge"; }
  const char* description() const override {
    return "merge the code graph into candidate partitionings "
           "(Section III-B heuristics; III-I.1 multi-version set)";
  }
  void Run(CompileState& state) override {
    FGPAR_CHECK_MSG(state.graph.has_value(),
                    "merge stage requires the graph stage");
    state.candidates =
        state.evaluator != nullptr || state.cost_model != nullptr
            ? EnumerateCandidates(*state.graph, state.options)
            : std::vector<std::vector<MergedPartition>>{
                  MergeGraph(*state.graph, state.options)};
    state.Note("candidates",
               static_cast<std::int64_t>(state.candidates.size()));
  }
  void CheckInvariants(const CompileState& state) const override {
    FGPAR_CHECK_MSG(!state.candidates.empty(),
                    "merge stage produced no candidate partitionings");
  }
};

/// The multi-version candidate loop (Section III-I.1): every candidate
/// partitioning is assigned to cores, communication-planned, proven
/// pairable and capacity-deadlock-free, and lowered; the active cost
/// model (the pluggable state.cost_model, or the simulate-to-score model
/// wrapping the evaluator) scores each built program and the best one
/// wins.  Only the per-candidate mapping state (CoreAssignment) is
/// materialized — the kernel and its index are shared read-only across
/// all candidates.
class SelectPass final : public Pass {
 public:
  const char* name() const override { return "select"; }
  const char* description() const override {
    return "build every candidate (cores -> comm plan -> pairing/capacity "
           "proofs -> lower), pick by dynamic feedback or static objective";
  }
  void Run(CompileState& state) override {
    FGPAR_CHECK_MSG(state.index.has_value() && !state.candidates.empty(),
                    "select stage requires the graph and merge stages");
    FGPAR_CHECK_MSG(state.layout != nullptr,
                    "select stage requires a data layout to lower against");
    const analysis::KernelIndex& index = *state.index;
    const ir::Kernel& kernel = state.kernel();

    // The active cost model: the pluggable one, else the simulate-to-score
    // wrapper around the evaluator (byte-identical to the historical
    // evaluator loop), else none (single static candidate; first wins).
    std::optional<SimulateCostModel> simulate;
    const CostModel* model = state.cost_model;
    if (model == nullptr && state.evaluator != nullptr) {
      simulate.emplace(*state.evaluator);
      model = &*simulate;
    }
    const std::string model_name =
        model != nullptr ? std::string(model->name()) : "none";

    struct Built {
      isa::Program program;
      ProgramPlan plan;
      CoreAssignment assignment;
      double cost = 0.0;
      std::size_t index = 0;
    };
    std::optional<Built> best;
    state.rejected_candidates.clear();
    state.candidate_reports.clear();
    int built_count = 0;
    for (std::size_t i = 0; i < state.candidates.size(); ++i) {
      CandidateReport report;
      report.index = i;
      report.partitions = state.candidates[i].size();
      report.model = model_name;
      try {
        CoreAssignment assignment = AssignCores(index, state.candidates[i]);
        CommPlan comm = BuildCommPlan(index, assignment);
        ProgramPlan plan = BuildProgramPlan(index, assignment, std::move(comm));
        CheckCommunicationPairing(kernel, plan);
        CheckQueueCapacity(plan, state.options.assumed_queue_capacity);
        Built built{LowerToSim({&kernel, state.layout, &plan}),
                    std::move(plan), std::move(assignment), 0.0, i};
        if (model != nullptr) {
          ScoredCandidate scored =
              model->Score(state, built.program, built.plan, built.assignment);
          built.cost = scored.cost;
          report.cost = scored.cost;
          report.detail = std::move(scored.detail);
          report.features = std::move(scored.features);
        } else {
          report.detail = "static objective chose this candidate";
        }
        report.built = true;
        ++built_count;
        if (!best.has_value() || built.cost < best->cost) {
          best = std::move(built);
        }
      } catch (const Error& e) {
        // Candidate rejected (pairing/capacity/lowering); try the next one
        // and keep the diagnostic for the aggregate error and --compile-stats.
        state.rejected_candidates.push_back(
            "candidate " + std::to_string(i + 1) + "/" +
            std::to_string(state.candidates.size()) + " (" +
            std::to_string(state.candidates[i].size()) +
            " partitions): " + e.what());
        report.detail = e.what();
      }
      state.candidate_reports.push_back(std::move(report));
    }
    state.Note("candidates_built", built_count);
    state.Note("candidates_rejected",
               static_cast<std::int64_t>(state.rejected_candidates.size()));
    if (!best.has_value()) {
      std::string message =
          "no candidate partitioning compiled successfully (" +
          std::to_string(state.candidates.size()) + " candidates)";
      for (const std::string& reason : state.rejected_candidates) {
        message += "\n  " + reason;
      }
      throw Error(message);
    }
    state.candidate_reports[best->index].selected = true;
    state.Note("partitions",
               static_cast<std::int64_t>(best->assignment.partitions.size()));
    state.Note("com_ops", best->plan.comm.com_ops());
    if (simulate.has_value()) {
      // Historical counter: exact cycles measured for the winner.  The
      // simulate model's cost is the measured count verbatim (integers are
      // exact in a double far beyond any cycle count the trainer produces).
      state.Note("best_measured_cycles",
                 static_cast<std::int64_t>(std::llround(best->cost)));
    } else if (model != nullptr) {
      // Pluggable models score in fractional cycles; keep the counter
      // integral (milli-cycles) so --compile-stats stays integer-valued.
      state.Note("best_model_cost_milli",
                 static_cast<std::int64_t>(std::llround(best->cost * 1000.0)));
    }
    static_cast<CoreAssignment&>(state.partition) = std::move(best->assignment);
    state.plan = std::move(best->plan);
    state.program = std::move(best->program);
  }
  void CheckInvariants(const CompileState& state) const override {
    FGPAR_CHECK_MSG(state.plan.has_value() && state.program.has_value(),
                    "select stage left no chosen plan/program");
    // Every loop-body statement must be owned by exactly one core.
    for (const analysis::StmtEntry& entry : state.index->entries()) {
      if (entry.in_epilogue || entry.is_if) {
        continue;
      }
      FGPAR_CHECK_MSG(state.partition.core_of.contains(entry.id),
                      "statement s" + std::to_string(entry.id) +
                          " not assigned to any core");
    }
    // Pairing-after-comm: re-prove that the chosen plan's queue operations
    // pair on every control path (the per-candidate proof ran on the same
    // plan; this guards future stages that might reorder plan items).
    CheckCommunicationPairing(state.kernel(), *state.plan);
  }
};

/// Lowers the scalar kernel for a single core (the paper's sequential
/// baseline).
class LowerSequentialPass final : public Pass {
 public:
  const char* name() const override { return "lower"; }
  const char* description() const override {
    return "lower the scalar kernel to the single-core baseline program";
  }
  void Run(CompileState& state) override {
    FGPAR_CHECK_MSG(state.layout != nullptr,
                    "lower stage requires a data layout");
    state.program = LowerToSim({&state.kernel(), state.layout, nullptr});
    state.Note("code_words",
               static_cast<std::int64_t>(state.program->size()));
  }
  void CheckInvariants(const CompileState& state) const override {
    FGPAR_CHECK_MSG(state.program.has_value(),
                    "lower stage produced no program");
  }
};

}  // namespace

std::unique_ptr<Pass> MakeGraphPass() { return std::make_unique<GraphPass>(); }
std::unique_ptr<Pass> MakeMergePass() { return std::make_unique<MergePass>(); }
std::unique_ptr<Pass> MakeSelectPass() { return std::make_unique<SelectPass>(); }
std::unique_ptr<Pass> MakeLowerSequentialPass() {
  return std::make_unique<LowerSequentialPass>();
}

}  // namespace fgpar::compiler
