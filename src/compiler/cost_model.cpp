#include "compiler/cost_model.hpp"

namespace fgpar::compiler {

ScoredCandidate SimulateCostModel::Score(const CompileState& state,
                                         const isa::Program& program,
                                         const ProgramPlan& plan,
                                         const CoreAssignment& assignment) const {
  (void)state;
  (void)plan;
  const std::uint64_t measured =
      (*evaluator_)(program, static_cast<int>(assignment.partitions.size()));
  ScoredCandidate scored;
  scored.cost = static_cast<double>(measured);
  scored.detail = "measured " + std::to_string(measured) +
                  " cycles on the training workload";
  scored.features.emplace_back("measured_cycles",
                               static_cast<double>(measured));
  return scored;
}

}  // namespace fgpar::compiler
