#include "compiler/lower.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "isa/assembler.hpp"
#include "support/error.hpp"

namespace fgpar::compiler {
namespace {

using isa::Assembler;
using isa::Fpr;
using isa::Gpr;
using isa::Label;

// Fixed general-purpose registers every generated function sets up.
constexpr std::uint8_t kZero = 0;   // always 0
constexpr std::uint8_t kOne = 1;    // always 1
constexpr std::uint8_t kIv = 2;     // induction variable
constexpr std::uint8_t kUpper = 3;  // loop upper bound
constexpr std::uint8_t kFirstDedicatedG = 4;
constexpr std::uint8_t kDriverScratch = 4;  // used only by the driver loop

/// Emits one function's worth of code: register assignment, expression and
/// statement lowering, the loop skeleton, and plan-item walking.
class FnEmitter {
 public:
  FnEmitter(Assembler& a, const ir::Kernel& kernel, const ir::DataLayout& layout)
      : a_(a), k_(kernel), layout_(layout) {}

  /// A value in a register.  Scratch registers must be released; a
  /// last-use read of a locally-allocated temp also carries its release.
  struct R {
    std::uint8_t reg = 0;
    bool scratch = false;
    bool fp = false;
    ir::TempId release_local = -1;  // local temp whose register frees here
  };

  // ---- function prologue pieces ----

  void SetupConstants() {
    a_.LiI(Gpr{kZero}, 0);
    a_.LiI(Gpr{kOne}, 1);
  }

  /// Declares the *pinned* temps (carried values, queue-transferred values,
  /// live-outs, epilogue inputs): they hold one register for the whole
  /// function and are zero/init-initialized.  Must be called before
  /// emission so dedicated registers and the scratch pool don't collide.
  void DedicateTemps(const std::set<ir::TempId>& temps) {
    for (ir::TempId t : temps) {
      const bool fp = k_.temp(t).type == ir::ScalarType::kF64;
      auto& map = fp ? temp_reg_f_ : temp_reg_g_;
      auto& next = fp ? next_f_ : next_g_;
      FGPAR_CHECK_MSG(next < kScratchReserve(fp),
                      "out of dedicated registers for temps in kernel " + k_.name());
      map[t] = next++;
      pinned_.insert(t);
    }
  }

  /// Registers the read counts of locally-allocated temps: a local temp's
  /// register is claimed at its defining assignment and recycled after its
  /// textually last read (every runtime read is re-dominated by a fresh
  /// definition each iteration, so textual lifetime bounds runtime
  /// lifetime).
  void SetLocalReadCounts(const std::map<ir::TempId, int>& reads) {
    local_reads_ = reads;
  }

  void DedicateParams(const std::set<ir::SymbolId>& params) {
    for (ir::SymbolId p : params) {
      const bool fp = k_.symbol(p).type == ir::ScalarType::kF64;
      auto& map = fp ? param_reg_f_ : param_reg_g_;
      auto& next = fp ? next_f_ : next_g_;
      FGPAR_CHECK_MSG(next < kScratchReserve(fp),
                      "out of dedicated registers for params in kernel " + k_.name());
      map[p] = next++;
    }
  }

  /// Primary: loads parameter values from the layout's parameter block.
  void LoadParams() {
    for (const auto& [sym, reg] : param_reg_g_) {
      a_.Comment("param " + k_.symbol(sym).name);
      a_.LdI(Gpr{reg}, Gpr{kZero},
             static_cast<std::int64_t>(layout_.ParamAddressOf(sym)));
    }
    for (const auto& [sym, reg] : param_reg_f_) {
      a_.Comment("param " + k_.symbol(sym).name);
      a_.LdF(Fpr{reg}, Gpr{kZero},
             static_cast<std::int64_t>(layout_.ParamAddressOf(sym)));
    }
  }

  /// Secondary: receives parameter values from the primary's queues, in
  /// ascending symbol-id order per register class (the primary enqueues in
  /// ascending symbol-id order, so each class's FIFO order matches).
  void DeqParams(const std::vector<ir::SymbolId>& args) {
    for (ir::SymbolId sym : args) {
      a_.Comment("arg " + k_.symbol(sym).name);
      if (k_.symbol(sym).type == ir::ScalarType::kF64) {
        a_.DeqF(0, Fpr{param_reg_f_.at(sym)});
      } else {
        a_.DeqI(0, Gpr{param_reg_g_.at(sym)});
      }
    }
  }

  /// Initializes dedicated temp registers: carried temps to their declared
  /// initial value, plain temps to zero (matching the interpreter).
  void InitTemps() {
    for (const auto& [t, reg] : temp_reg_g_) {
      const ir::Temp& temp = k_.temp(t);
      a_.LiI(Gpr{reg}, temp.carried ? temp.init_i : 0);
    }
    for (const auto& [t, reg] : temp_reg_f_) {
      const ir::Temp& temp = k_.temp(t);
      a_.LiF(Fpr{reg}, temp.carried ? temp.init_f : 0.0);
    }
  }

  // ---- the loop skeleton ----

  /// Emits for (iv = lower; iv < upper; ++iv) { body() } as a rotated
  /// loop (guard + bottom test) so steady-state iterations pay exactly one
  /// taken branch.
  void EmitLoop(const std::function<void()>& body) {
    EmitExprInto(k_.loop().lower, kIv, /*fp=*/false);
    EmitExprInto(k_.loop().upper, kUpper, /*fp=*/false);
    Label top = a_.NewLabel();
    Label end = a_.NewLabel();
    R guard = AllocG();
    a_.CltI(Gpr{guard.reg}, Gpr{kIv}, Gpr{kUpper});
    a_.Bz(Gpr{guard.reg}, end);
    Release(guard);
    a_.Bind(top);
    body();
    a_.AddI(Gpr{kIv}, Gpr{kIv}, Gpr{kOne});
    R cond = AllocG();
    a_.CltI(Gpr{cond.reg}, Gpr{kIv}, Gpr{kUpper});
    a_.Bnz(Gpr{cond.reg}, top);
    Release(cond);
    a_.Bind(end);
  }

  // ---- statement / plan-item emission ----

  void EmitStmtList(const std::vector<ir::Stmt>& stmts) {
    for (const ir::Stmt& stmt : stmts) {
      EmitStmt(stmt);
    }
  }

  void EmitStmt(const ir::Stmt& stmt) {
    switch (stmt.kind) {
      case ir::StmtKind::kAssignTemp: {
        a_.Comment(k_.temp(stmt.temp).name + " = ...");
        const bool fp = k_.temp(stmt.temp).type == ir::ScalarType::kF64;
        std::uint8_t target;
        if (pinned_.contains(stmt.temp)) {
          target = fp ? temp_reg_f_.at(stmt.temp) : temp_reg_g_.at(stmt.temp);
        } else if (local_live_.contains(stmt.temp)) {
          // Carried-style re-assignment of an already-live local cannot
          // happen (locals are plain SSA temps); defensive lookup only.
          target = local_live_.at(stmt.temp);
        } else {
          target = ClaimLocal(stmt.temp, fp);
        }
        EmitExprInto(stmt.value, target, fp);
        // A local temp that is never read frees immediately.
        if (!pinned_.contains(stmt.temp)) {
          auto it = local_reads_.find(stmt.temp);
          if (it == local_reads_.end() || it->second == 0) {
            (fp ? local_free_f_ : local_free_g_).push_back(target);
            local_live_.erase(stmt.temp);
          }
        }
        break;
      }
      case ir::StmtKind::kStoreScalar: {
        a_.Comment("store " + k_.symbol(stmt.sym).name);
        R value = EmitExpr(stmt.value);
        const std::int64_t addr =
            static_cast<std::int64_t>(layout_.AddressOf(stmt.sym));
        if (value.fp) {
          a_.StF(Fpr{value.reg}, Gpr{kZero}, addr);
        } else {
          a_.StI(Gpr{value.reg}, Gpr{kZero}, addr);
        }
        Release(value);
        break;
      }
      case ir::StmtKind::kStoreArray: {
        a_.Comment("store " + k_.symbol(stmt.sym).name + "[...]");
        R index = EmitExpr(stmt.index);
        R value = EmitExpr(stmt.value);
        R base = AllocG();
        a_.LiI(Gpr{base.reg},
               static_cast<std::int64_t>(layout_.AddressOf(stmt.sym)));
        if (value.fp) {
          a_.StFX(Fpr{value.reg}, Gpr{base.reg}, Gpr{index.reg});
        } else {
          a_.StIX(Gpr{value.reg}, Gpr{base.reg}, Gpr{index.reg});
        }
        Release(base);
        Release(value);
        Release(index);
        break;
      }
      case ir::StmtKind::kIf:
        EmitIf(stmt, [&] { EmitStmtList(stmt.then_body); },
               [&] { EmitStmtList(stmt.else_body); });
        break;
    }
  }

  void EmitIf(const ir::Stmt& stmt, const std::function<void()>& then_fn,
              const std::function<void()>& else_fn) {
    R cond = EmitExpr(stmt.value);
    Label else_label = a_.NewLabel();
    Label end_label = a_.NewLabel();
    a_.Bz(Gpr{cond.reg}, else_label);
    Release(cond);
    then_fn();
    a_.Jmp(end_label);
    a_.Bind(else_label);
    else_fn();
    a_.Bind(end_label);
  }

  void EmitPlanItems(const std::vector<PlanItem>& items, const CommPlan& comm) {
    for (const PlanItem& item : items) {
      switch (item.kind) {
        case PlanItem::Kind::kStmt:
          EmitStmt(*item.stmt);
          break;
        case PlanItem::Kind::kIf:
          EmitIf(*item.stmt, [&] { EmitPlanItems(item.then_items, comm); },
                 [&] { EmitPlanItems(item.else_items, comm); });
          break;
        case PlanItem::Kind::kEnq: {
          const Transfer& t =
              comm.transfers[static_cast<std::size_t>(item.transfer)];
          a_.Comment("send " + k_.temp(t.temp).name + " -> core " +
                     std::to_string(t.dst_core));
          if (t.type == ir::ScalarType::kF64) {
            a_.EnqF(t.dst_core, Fpr{TempReg(t.temp, true)});
          } else {
            a_.EnqI(t.dst_core, Gpr{TempReg(t.temp, false)});
          }
          break;
        }
        case PlanItem::Kind::kDeq: {
          const Transfer& t =
              comm.transfers[static_cast<std::size_t>(item.transfer)];
          a_.Comment("recv " + k_.temp(t.temp).name + " <- core " +
                     std::to_string(t.src_core));
          if (t.type == ir::ScalarType::kF64) {
            a_.DeqF(t.src_core, Fpr{TempReg(t.temp, true)});
          } else {
            a_.DeqI(t.src_core, Gpr{TempReg(t.temp, false)});
          }
          break;
        }
      }
    }
  }

  // ---- queue helpers for prologue/epilogue traffic ----

  void EnqTempTo(int core, ir::TempId temp) {
    if (k_.temp(temp).type == ir::ScalarType::kF64) {
      a_.EnqF(core, Fpr{temp_reg_f_.at(temp)});
    } else {
      a_.EnqI(core, Gpr{temp_reg_g_.at(temp)});
    }
  }

  void DeqTempFrom(int core, ir::TempId temp) {
    if (k_.temp(temp).type == ir::ScalarType::kF64) {
      a_.DeqF(core, Fpr{temp_reg_f_.at(temp)});
    } else {
      a_.DeqI(core, Gpr{temp_reg_g_.at(temp)});
    }
  }

  void EnqParamTo(int core, ir::SymbolId sym) {
    if (k_.symbol(sym).type == ir::ScalarType::kF64) {
      a_.EnqF(core, Fpr{param_reg_f_.at(sym)});
    } else {
      a_.EnqI(core, Gpr{param_reg_g_.at(sym)});
    }
  }

  Assembler& assembler() { return a_; }

  /// Register of a pinned or currently-live local temp.
  std::uint8_t TempReg(ir::TempId t, bool fp) {
    auto& pinned_map = fp ? temp_reg_f_ : temp_reg_g_;
    const auto it = pinned_map.find(t);
    if (it != pinned_map.end()) {
      return it->second;
    }
    const auto local_it = local_live_.find(t);
    FGPAR_CHECK_MSG(local_it != local_live_.end(),
                    "read of local temp with no live register: " + k_.temp(t).name);
    return local_it->second;
  }

  /// Claims a register for a local temp's defining assignment.
  std::uint8_t ClaimLocal(ir::TempId t, bool fp) {
    FGPAR_CHECK_MSG(!local_live_.contains(t), "local temp redefined");
    auto& pool = fp ? local_free_f_ : local_free_g_;
    std::uint8_t reg;
    if (!pool.empty()) {
      reg = pool.back();
      pool.pop_back();
    } else {
      auto& next = fp ? next_f_ : next_g_;
      FGPAR_CHECK_MSG(next < kScratchReserve(fp),
                      "out of registers for local temps in kernel " + k_.name());
      reg = next++;
    }
    local_live_[t] = reg;
    return reg;
  }

  // ---- expression lowering ----

  /// Evaluates `id` directly into `target` (no extra move for compound
  /// expressions; a single move/load/li for leaves).
  void EmitExprInto(ir::ExprId id, std::uint8_t target, bool fp) {
    const ir::ExprNode& node = k_.expr(id);
    switch (node.kind) {
      case ir::ExprKind::kUnary:
      case ir::ExprKind::kBinary:
      case ir::ExprKind::kSelect:
      case ir::ExprKind::kConstI:
      case ir::ExprKind::kConstF:
      case ir::ExprKind::kScalarRef:
      case ir::ExprKind::kArrayRef: {
        R r = EmitExpr(id, static_cast<int>(target));
        FGPAR_CHECK(r.reg == target);
        return;
      }
      default: {
        // Register-resident leaves need a move (unless already in place).
        R r = EmitExpr(id);
        if (r.reg != target || r.fp != fp) {
          if (fp) {
            a_.MovF(Fpr{target}, Fpr{r.reg});
          } else {
            a_.MovI(Gpr{target}, Gpr{r.reg});
          }
        }
        Release(r);
        return;
      }
    }
  }

  /// Evaluates `id`; if `target` >= 0 the result is produced in that
  /// register (valid only for value-producing node kinds, see EmitExprInto).
  R EmitExpr(ir::ExprId id, int target = -1) {
    const ir::ExprNode& node = k_.expr(id);
    const bool node_fp = node.type == ir::ScalarType::kF64;
    auto dest = [&]() {
      if (target >= 0) {
        return R{static_cast<std::uint8_t>(target), false, node_fp};
      }
      return node_fp ? AllocF() : AllocG();
    };
    switch (node.kind) {
      case ir::ExprKind::kConstI: {
        R r = dest();
        a_.LiI(Gpr{r.reg}, node.const_i);
        return r;
      }
      case ir::ExprKind::kConstF: {
        R r = dest();
        a_.LiF(Fpr{r.reg}, node.const_f);
        return r;
      }
      case ir::ExprKind::kIvRef:
        return R{kIv, false, false};
      case ir::ExprKind::kParamRef:
        if (node_fp) {
          return R{param_reg_f_.at(node.sym), false, true};
        }
        return R{param_reg_g_.at(node.sym), false, false};
      case ir::ExprKind::kTempRef: {
        const std::uint8_t reg = TempReg(node.temp, node_fp);
        ir::TempId release = -1;
        if (!pinned_.contains(node.temp)) {
          auto it = local_reads_.find(node.temp);
          FGPAR_CHECK_MSG(it != local_reads_.end() && it->second > 0,
                          "unaccounted read of local temp " +
                              k_.temp(node.temp).name);
          if (--it->second == 0) {
            release = node.temp;  // recycled by the consuming Release()
          }
        }
        return R{reg, false, node_fp, release};
      }
      case ir::ExprKind::kScalarRef: {
        const std::int64_t addr =
            static_cast<std::int64_t>(layout_.AddressOf(node.sym));
        R r = dest();
        if (node_fp) {
          a_.LdF(Fpr{r.reg}, Gpr{kZero}, addr);
        } else {
          a_.LdI(Gpr{r.reg}, Gpr{kZero}, addr);
        }
        return r;
      }
      case ir::ExprKind::kArrayRef: {
        R index = EmitExpr(node.child[0]);
        R base = AllocG();
        a_.LiI(Gpr{base.reg},
               static_cast<std::int64_t>(layout_.AddressOf(node.sym)));
        R result = dest();
        if (node_fp) {
          a_.LdFX(Fpr{result.reg}, Gpr{base.reg}, Gpr{index.reg});
        } else {
          a_.LdIX(Gpr{result.reg}, Gpr{base.reg}, Gpr{index.reg});
        }
        Release(base);
        Release(index);
        return result;
      }
      case ir::ExprKind::kUnary:
        return EmitUnary(node, target);
      case ir::ExprKind::kBinary:
        return EmitBinary(node, target);
      case ir::ExprKind::kSelect: {
        R cond = EmitExpr(node.child[0]);
        R a = EmitExpr(node.child[1]);
        R b = EmitExpr(node.child[2]);
        Label end = a_.NewLabel();
        R result = dest();
        if (node_fp) {
          a_.MovF(Fpr{result.reg}, Fpr{a.reg});
          a_.Bnz(Gpr{cond.reg}, end);
          a_.MovF(Fpr{result.reg}, Fpr{b.reg});
        } else {
          a_.MovI(Gpr{result.reg}, Gpr{a.reg});
          a_.Bnz(Gpr{cond.reg}, end);
          a_.MovI(Gpr{result.reg}, Gpr{b.reg});
        }
        a_.Bind(end);
        Release(b);
        Release(a);
        Release(cond);
        return result;
      }
    }
    FGPAR_UNREACHABLE("bad ExprKind");
  }

  void Release(R r) {
    if (r.release_local >= 0) {
      const auto it = local_live_.find(r.release_local);
      if (it != local_live_.end() && it->second == r.reg) {
        (r.fp ? local_free_f_ : local_free_g_).push_back(r.reg);
        local_live_.erase(it);
      }
      return;
    }
    if (!r.scratch) {
      return;
    }
    auto& pool = r.fp ? free_f_ : free_g_;
    pool.push_back(r.reg);
  }

 private:
  static std::uint8_t kScratchReserve(bool fp) {
    // Top 12 registers of each file are the scratch pool.
    return fp ? isa::kNumFpr - 12 : isa::kNumGpr - 12;
  }

  R AllocG() {
    if (free_g_.empty()) {
      FGPAR_CHECK_MSG(scratch_g_ < isa::kNumGpr,
                      "out of integer scratch registers in kernel " + k_.name());
      return R{scratch_g_++, true, false};
    }
    const std::uint8_t reg = free_g_.back();
    free_g_.pop_back();
    return R{reg, true, false};
  }

  R AllocF() {
    if (free_f_.empty()) {
      FGPAR_CHECK_MSG(scratch_f_ < isa::kNumFpr,
                      "out of fp scratch registers in kernel " + k_.name());
      return R{scratch_f_++, true, true};
    }
    const std::uint8_t reg = free_f_.back();
    free_f_.pop_back();
    return R{reg, true, true};
  }

  R EmitUnary(const ir::ExprNode& node, int target = -1) {
    auto dest_g = [&]() {
      return target >= 0 ? R{static_cast<std::uint8_t>(target), false, false}
                         : AllocG();
    };
    auto dest_f = [&]() {
      return target >= 0 ? R{static_cast<std::uint8_t>(target), false, true}
                         : AllocF();
    };
    R operand = EmitExpr(node.child[0]);
    switch (node.un) {
      case ir::UnOp::kNeg:
        if (node.type == ir::ScalarType::kF64) {
          R r = dest_f();
          a_.NegF(Fpr{r.reg}, Fpr{operand.reg});
          Release(operand);
          return r;
        } else {
          R r = dest_g();
          a_.SubI(Gpr{r.reg}, Gpr{kZero}, Gpr{operand.reg});
          Release(operand);
          return r;
        }
      case ir::UnOp::kAbs:
        if (node.type == ir::ScalarType::kF64) {
          R r = dest_f();
          a_.AbsF(Fpr{r.reg}, Fpr{operand.reg});
          Release(operand);
          return r;
        } else {
          R neg = AllocG();
          a_.SubI(Gpr{neg.reg}, Gpr{kZero}, Gpr{operand.reg});
          R r = dest_g();
          a_.MaxI(Gpr{r.reg}, Gpr{operand.reg}, Gpr{neg.reg});
          Release(neg);
          Release(operand);
          return r;
        }
      case ir::UnOp::kSqrt: {
        R r = dest_f();
        a_.SqrtF(Fpr{r.reg}, Fpr{operand.reg});
        Release(operand);
        return r;
      }
      case ir::UnOp::kNot: {
        R r = dest_g();
        a_.CeqI(Gpr{r.reg}, Gpr{operand.reg}, Gpr{kZero});
        Release(operand);
        return r;
      }
      case ir::UnOp::kI2F: {
        R r = dest_f();
        a_.ItoF(Fpr{r.reg}, Gpr{operand.reg});
        Release(operand);
        return r;
      }
      case ir::UnOp::kF2I: {
        R r = dest_g();
        a_.FtoI(Gpr{r.reg}, Fpr{operand.reg});
        Release(operand);
        return r;
      }
    }
    FGPAR_UNREACHABLE("bad UnOp");
  }

  R EmitBinary(const ir::ExprNode& node, int target = -1) {
    R lhs = EmitExpr(node.child[0]);
    R rhs = EmitExpr(node.child[1]);
    const bool operands_fp = lhs.fp;
    auto rg = [&](auto emit) {
      R r = target >= 0 ? R{static_cast<std::uint8_t>(target), false, false}
                        : AllocG();
      emit(r.reg);
      Release(rhs);
      Release(lhs);
      return r;
    };
    auto rf = [&](auto emit) {
      R r = target >= 0 ? R{static_cast<std::uint8_t>(target), false, true}
                        : AllocF();
      emit(r.reg);
      Release(rhs);
      Release(lhs);
      return r;
    };
    const std::uint8_t a = lhs.reg;
    const std::uint8_t b = rhs.reg;
    if (!operands_fp) {
      switch (node.bin) {
        case ir::BinOp::kAdd: return rg([&](std::uint8_t d) { a_.AddI(Gpr{d}, Gpr{a}, Gpr{b}); });
        case ir::BinOp::kSub: return rg([&](std::uint8_t d) { a_.SubI(Gpr{d}, Gpr{a}, Gpr{b}); });
        case ir::BinOp::kMul: return rg([&](std::uint8_t d) { a_.MulI(Gpr{d}, Gpr{a}, Gpr{b}); });
        case ir::BinOp::kDiv: return rg([&](std::uint8_t d) { a_.DivI(Gpr{d}, Gpr{a}, Gpr{b}); });
        case ir::BinOp::kRem: return rg([&](std::uint8_t d) { a_.RemI(Gpr{d}, Gpr{a}, Gpr{b}); });
        case ir::BinOp::kMin: return rg([&](std::uint8_t d) { a_.MinI(Gpr{d}, Gpr{a}, Gpr{b}); });
        case ir::BinOp::kMax: return rg([&](std::uint8_t d) { a_.MaxI(Gpr{d}, Gpr{a}, Gpr{b}); });
        case ir::BinOp::kAnd: return rg([&](std::uint8_t d) { a_.AndI(Gpr{d}, Gpr{a}, Gpr{b}); });
        case ir::BinOp::kOr: return rg([&](std::uint8_t d) { a_.OrI(Gpr{d}, Gpr{a}, Gpr{b}); });
        case ir::BinOp::kXor: return rg([&](std::uint8_t d) { a_.XorI(Gpr{d}, Gpr{a}, Gpr{b}); });
        case ir::BinOp::kShl: return rg([&](std::uint8_t d) { a_.ShlI(Gpr{d}, Gpr{a}, Gpr{b}); });
        case ir::BinOp::kShr: return rg([&](std::uint8_t d) { a_.ShrI(Gpr{d}, Gpr{a}, Gpr{b}); });
        case ir::BinOp::kEq: return rg([&](std::uint8_t d) { a_.CeqI(Gpr{d}, Gpr{a}, Gpr{b}); });
        case ir::BinOp::kNe: return rg([&](std::uint8_t d) { a_.CneI(Gpr{d}, Gpr{a}, Gpr{b}); });
        case ir::BinOp::kLt: return rg([&](std::uint8_t d) { a_.CltI(Gpr{d}, Gpr{a}, Gpr{b}); });
        case ir::BinOp::kLe: return rg([&](std::uint8_t d) { a_.CleI(Gpr{d}, Gpr{a}, Gpr{b}); });
      }
    } else {
      switch (node.bin) {
        case ir::BinOp::kAdd: return rf([&](std::uint8_t d) { a_.AddF(Fpr{d}, Fpr{a}, Fpr{b}); });
        case ir::BinOp::kSub: return rf([&](std::uint8_t d) { a_.SubF(Fpr{d}, Fpr{a}, Fpr{b}); });
        case ir::BinOp::kMul: return rf([&](std::uint8_t d) { a_.MulF(Fpr{d}, Fpr{a}, Fpr{b}); });
        case ir::BinOp::kDiv: return rf([&](std::uint8_t d) { a_.DivF(Fpr{d}, Fpr{a}, Fpr{b}); });
        case ir::BinOp::kMin: return rf([&](std::uint8_t d) { a_.MinF(Fpr{d}, Fpr{a}, Fpr{b}); });
        case ir::BinOp::kMax: return rf([&](std::uint8_t d) { a_.MaxF(Fpr{d}, Fpr{a}, Fpr{b}); });
        case ir::BinOp::kEq: return rg([&](std::uint8_t d) { a_.CeqF(Gpr{d}, Fpr{a}, Fpr{b}); });
        case ir::BinOp::kLt: return rg([&](std::uint8_t d) { a_.CltF(Gpr{d}, Fpr{a}, Fpr{b}); });
        case ir::BinOp::kLe: return rg([&](std::uint8_t d) { a_.CleF(Gpr{d}, Fpr{a}, Fpr{b}); });
        case ir::BinOp::kNe: {
          R r = rg([&](std::uint8_t d) { a_.CeqF(Gpr{d}, Fpr{a}, Fpr{b}); });
          a_.XorI(Gpr{r.reg}, Gpr{r.reg}, Gpr{kOne});
          return r;
        }
        default:
          FGPAR_UNREACHABLE("int-only operator on f64 operands");
      }
    }
    FGPAR_UNREACHABLE("bad BinOp");
  }

  Assembler& a_;
  const ir::Kernel& k_;
  const ir::DataLayout& layout_;
  std::map<ir::TempId, std::uint8_t> temp_reg_g_;
  std::map<ir::TempId, std::uint8_t> temp_reg_f_;
  std::map<ir::SymbolId, std::uint8_t> param_reg_g_;
  std::map<ir::SymbolId, std::uint8_t> param_reg_f_;
  std::uint8_t next_g_ = kFirstDedicatedG;
  std::uint8_t next_f_ = 0;
  std::uint8_t scratch_g_ = kScratchReserve(false);
  std::uint8_t scratch_f_ = kScratchReserve(true);
  std::vector<std::uint8_t> free_g_;
  std::vector<std::uint8_t> free_f_;
  std::set<ir::TempId> pinned_;
  std::map<ir::TempId, int> local_reads_;
  std::map<ir::TempId, std::uint8_t> local_live_;
  std::vector<std::uint8_t> local_free_g_;
  std::vector<std::uint8_t> local_free_f_;
};

// ---- referenced-entity collection ----

void CollectFromExpr(const ir::Kernel& k, ir::ExprId expr,
                     std::set<ir::TempId>& temps, std::set<ir::SymbolId>& params) {
  k.VisitExpr(expr, [&](ir::ExprId e) {
    const ir::ExprNode& node = k.expr(e);
    if (node.kind == ir::ExprKind::kTempRef) {
      temps.insert(node.temp);
    } else if (node.kind == ir::ExprKind::kParamRef) {
      params.insert(node.sym);
    }
  });
}

void CollectFromStmt(const ir::Kernel& k, const ir::Stmt& stmt,
                     std::set<ir::TempId>& temps, std::set<ir::SymbolId>& params) {
  switch (stmt.kind) {
    case ir::StmtKind::kAssignTemp:
      temps.insert(stmt.temp);
      CollectFromExpr(k, stmt.value, temps, params);
      break;
    case ir::StmtKind::kStoreScalar:
      CollectFromExpr(k, stmt.value, temps, params);
      break;
    case ir::StmtKind::kStoreArray:
      CollectFromExpr(k, stmt.index, temps, params);
      CollectFromExpr(k, stmt.value, temps, params);
      break;
    case ir::StmtKind::kIf:
      CollectFromExpr(k, stmt.value, temps, params);
      for (const ir::Stmt& s : stmt.then_body) {
        CollectFromStmt(k, s, temps, params);
      }
      for (const ir::Stmt& s : stmt.else_body) {
        CollectFromStmt(k, s, temps, params);
      }
      break;
  }
}

/// Counts TempRef occurrences exactly as emission will perform them.
void CountReadsExpr(const ir::Kernel& k, ir::ExprId expr,
                    std::map<ir::TempId, int>& reads) {
  k.VisitExpr(expr, [&](ir::ExprId e) {
    const ir::ExprNode& node = k.expr(e);
    if (node.kind == ir::ExprKind::kTempRef) {
      ++reads[node.temp];
    }
  });
}

void CountReadsStmt(const ir::Kernel& k, const ir::Stmt& stmt,
                    std::map<ir::TempId, int>& reads) {
  switch (stmt.kind) {
    case ir::StmtKind::kAssignTemp:
    case ir::StmtKind::kStoreScalar:
      CountReadsExpr(k, stmt.value, reads);
      break;
    case ir::StmtKind::kStoreArray:
      CountReadsExpr(k, stmt.index, reads);
      CountReadsExpr(k, stmt.value, reads);
      break;
    case ir::StmtKind::kIf:
      CountReadsExpr(k, stmt.value, reads);
      for (const ir::Stmt& sub : stmt.then_body) {
        CountReadsStmt(k, sub, reads);
      }
      for (const ir::Stmt& sub : stmt.else_body) {
        CountReadsStmt(k, sub, reads);
      }
      break;
  }
}

void CountReadsItems(const ir::Kernel& k, const std::vector<PlanItem>& items,
                     std::map<ir::TempId, int>& reads) {
  for (const PlanItem& item : items) {
    switch (item.kind) {
      case PlanItem::Kind::kStmt:
        CountReadsStmt(k, *item.stmt, reads);
        break;
      case PlanItem::Kind::kIf:
        CountReadsExpr(k, item.stmt->value, reads);
        CountReadsItems(k, item.then_items, reads);
        CountReadsItems(k, item.else_items, reads);
        break;
      case PlanItem::Kind::kEnq:
      case PlanItem::Kind::kDeq:
        break;  // queue ops address pinned registers directly
    }
  }
}

void CollectFromItems(const ir::Kernel& k, const std::vector<PlanItem>& items,
                      const CommPlan& comm, std::set<ir::TempId>& temps,
                      std::set<ir::SymbolId>& params) {
  for (const PlanItem& item : items) {
    switch (item.kind) {
      case PlanItem::Kind::kStmt:
        CollectFromStmt(k, *item.stmt, temps, params);
        break;
      case PlanItem::Kind::kIf:
        CollectFromExpr(k, item.stmt->value, temps, params);
        CollectFromItems(k, item.then_items, comm, temps, params);
        CollectFromItems(k, item.else_items, comm, temps, params);
        break;
      case PlanItem::Kind::kEnq:
      case PlanItem::Kind::kDeq:
        temps.insert(
            comm.transfers[static_cast<std::size_t>(item.transfer)].temp);
        break;
    }
  }
}

}  // namespace

isa::Program LowerSequential(const ir::Kernel& kernel, const ir::DataLayout& layout) {
  std::set<ir::TempId> temps;
  std::set<ir::SymbolId> params;
  for (const ir::Stmt& stmt : kernel.loop().body) {
    CollectFromStmt(kernel, stmt, temps, params);
  }
  for (const ir::Stmt& stmt : kernel.epilogue()) {
    CollectFromStmt(kernel, stmt, temps, params);
  }
  CollectFromExpr(kernel, kernel.loop().lower, temps, params);
  CollectFromExpr(kernel, kernel.loop().upper, temps, params);

  std::map<ir::TempId, int> reads;
  for (const ir::Stmt& stmt : kernel.loop().body) {
    CountReadsStmt(kernel, stmt, reads);
  }
  std::set<ir::TempId> pinned;
  for (ir::TempId t : temps) {
    if (kernel.temp(t).carried) {
      pinned.insert(t);
    }
  }
  // Epilogue inputs must survive the loop and be defined on zero trips.
  {
    std::map<ir::TempId, int> epilogue_reads;
    for (const ir::Stmt& stmt : kernel.epilogue()) {
      CountReadsStmt(kernel, stmt, epilogue_reads);
      CountReadsStmt(kernel, stmt, reads);
    }
    for (const auto& [t, count] : epilogue_reads) {
      (void)count;
      pinned.insert(t);
    }
  }

  Assembler asm2;
  isa::Label main = asm2.NewNamedLabel("main");
  asm2.Bind(main);
  FnEmitter emitter(asm2, kernel, layout);
  emitter.DedicateParams(params);
  emitter.DedicateTemps(pinned);
  emitter.SetLocalReadCounts(reads);
  emitter.SetupConstants();
  emitter.LoadParams();
  emitter.InitTemps();
  emitter.EmitLoop([&] { emitter.EmitStmtList(kernel.loop().body); });
  emitter.EmitStmtList(kernel.epilogue());
  emitter.assembler().Halt();
  return asm2.Finish();
}

isa::Program LowerParallel(const ir::Kernel& kernel, const ir::DataLayout& layout,
                           const ProgramPlan& plan) {
  const int cores = static_cast<int>(plan.cores.size());
  FGPAR_CHECK_MSG(cores >= 1, "plan has no cores");
  Assembler a;
  isa::Label main = a.NewNamedLabel("main");
  isa::Label driver = a.NewNamedLabel("driver");
  std::vector<isa::Label> fn_labels;
  for (int c = 1; c < cores; ++c) {
    fn_labels.push_back(a.NewNamedLabel("F" + std::to_string(c)));
  }

  // ---- primary core ----
  a.Bind(main);
  {
    FnEmitter emitter(a, kernel, layout);
    std::set<ir::TempId> temps;
    std::set<ir::SymbolId> params;
    CollectFromItems(kernel, plan.cores[0].body, plan.comm, temps, params);
    for (const ir::Stmt& stmt : kernel.epilogue()) {
      CollectFromStmt(kernel, stmt, temps, params);
    }
    CollectFromExpr(kernel, kernel.loop().lower, temps, params);
    CollectFromExpr(kernel, kernel.loop().upper, temps, params);
    for (const LiveOut& lo : plan.comm.live_outs) {
      temps.insert(lo.temp);
    }
    // The primary also holds (and forwards) every secondary's arguments.
    for (const auto& [core, args] : plan.comm.args) {
      params.insert(args.begin(), args.end());
    }
    std::map<ir::TempId, int> reads;
    CountReadsItems(kernel, plan.cores[0].body, reads);
    std::set<ir::TempId> pinned;
    for (ir::TempId t : temps) {
      if (kernel.temp(t).carried) {
        pinned.insert(t);
      }
    }
    for (const Transfer& t : plan.comm.transfers) {
      if (t.src_core == 0 || t.dst_core == 0) {
        pinned.insert(t.temp);
      }
    }
    for (const LiveOut& lo : plan.comm.live_outs) {
      pinned.insert(lo.temp);
    }
    {
      std::map<ir::TempId, int> epilogue_reads;
      for (const ir::Stmt& stmt : kernel.epilogue()) {
        CountReadsStmt(kernel, stmt, epilogue_reads);
        CountReadsStmt(kernel, stmt, reads);
      }
      for (const auto& [t, count] : epilogue_reads) {
        (void)count;
        pinned.insert(t);
      }
    }
    emitter.DedicateParams(params);
    emitter.DedicateTemps(pinned);
    emitter.SetLocalReadCounts(reads);
    emitter.SetupConstants();
    emitter.LoadParams();
    emitter.InitTemps();

    // Dispatch: function pointer, then arguments (Section III-G).
    for (int c = 1; c < cores; ++c) {
      a.Comment("dispatch F" + std::to_string(c) + " to core " + std::to_string(c));
      // r63 is the top of the scratch pool; it is only ever live within a
      // single expression, so it is free between statements.
      a.LiLabel(Gpr{63}, fn_labels[static_cast<std::size_t>(c - 1)]);
      a.EnqI(c, Gpr{63});
      const auto it = plan.comm.args.find(c);
      if (it != plan.comm.args.end()) {
        for (ir::SymbolId sym : it->second) {
          emitter.EnqParamTo(c, sym);
        }
      }
    }

    emitter.EmitLoop([&] { emitter.EmitPlanItems(plan.cores[0].body, plan.comm); });

    // Collect live-outs, then completion tokens (Figure 9's "Enque(#P, ...)").
    for (const LiveOut& lo : plan.comm.live_outs) {
      a.Comment("live-out " + kernel.temp(lo.temp).name);
      emitter.DeqTempFrom(lo.src_core, lo.temp);
    }
    for (int c = 1; c < cores; ++c) {
      a.Comment("completion token from core " + std::to_string(c));
      a.DeqI(c, Gpr{63});
    }

    emitter.EmitStmtList(kernel.epilogue());

    for (int c = 1; c < cores; ++c) {
      a.Comment("terminate core " + std::to_string(c));
      a.EnqI(c, Gpr{0});  // kZero still holds 0
    }
    a.Halt();
  }

  // ---- shared secondary driver (Section III-G) ----
  a.Bind(driver);
  {
    isa::Label halt = a.NewLabel();
    isa::Label top = a.NewLabel();
    a.Bind(top);
    a.Comment("driver: wait for work from primary");
    a.DeqI(0, Gpr{kDriverScratch});
    a.Bz(Gpr{kDriverScratch}, halt);
    a.CallR(Gpr{kDriverScratch});
    a.Jmp(top);
    a.Bind(halt);
    a.Halt();
  }

  // ---- outlined functions ----
  for (int c = 1; c < cores; ++c) {
    a.Bind(fn_labels[static_cast<std::size_t>(c - 1)]);
    FnEmitter emitter(a, kernel, layout);
    std::set<ir::TempId> temps;
    std::set<ir::SymbolId> params;
    CollectFromItems(kernel, plan.cores[static_cast<std::size_t>(c)].body,
                     plan.comm, temps, params);
    CollectFromExpr(kernel, kernel.loop().lower, temps, params);
    CollectFromExpr(kernel, kernel.loop().upper, temps, params);
    for (const LiveOut& lo : plan.comm.live_outs) {
      if (lo.src_core == c) {
        temps.insert(lo.temp);
      }
    }
    std::map<ir::TempId, int> reads;
    CountReadsItems(kernel, plan.cores[static_cast<std::size_t>(c)].body, reads);
    std::set<ir::TempId> pinned;
    for (ir::TempId t : temps) {
      if (kernel.temp(t).carried) {
        pinned.insert(t);
      }
    }
    for (const Transfer& t : plan.comm.transfers) {
      if (t.src_core == c || t.dst_core == c) {
        pinned.insert(t.temp);
      }
    }
    for (const LiveOut& lo : plan.comm.live_outs) {
      if (lo.src_core == c) {
        pinned.insert(lo.temp);
      }
    }
    emitter.DedicateParams(params);
    emitter.DedicateTemps(pinned);
    emitter.SetLocalReadCounts(reads);
    emitter.SetupConstants();
    const auto args_it = plan.comm.args.find(c);
    if (args_it != plan.comm.args.end()) {
      emitter.DeqParams(args_it->second);
    }
    emitter.InitTemps();
    emitter.EmitLoop(
        [&] { emitter.EmitPlanItems(plan.cores[static_cast<std::size_t>(c)].body,
                                    plan.comm); });
    for (const LiveOut& lo : plan.comm.live_outs) {
      if (lo.src_core == c) {
        a.Comment("live-out " + kernel.temp(lo.temp).name + " -> primary");
        emitter.EnqTempTo(0, lo.temp);
      }
    }
    a.Comment("completion token -> primary");
    a.LiI(Gpr{63}, 1);
    a.EnqI(0, Gpr{63});
    a.Ret();
  }

  return a.Finish();
}

}  // namespace fgpar::compiler
