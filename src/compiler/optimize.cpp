#include "compiler/optimize.hpp"
#include "compiler/pass.hpp"

#include <cmath>
#include <map>
#include <set>

#include "support/error.hpp"

namespace fgpar::compiler {
namespace {

using ir::BinOp;
using ir::ExprId;
using ir::ExprKind;
using ir::ExprNode;
using ir::Kernel;
using ir::Stmt;
using ir::UnOp;

class Folder {
 public:
  explicit Folder(Kernel& kernel) : k_(kernel) {}

  int Run() {
    Walk(k_.mutable_loop().body);
    Walk(k_.mutable_epilogue());
    if (k_.loop().lower != ir::kNoExpr) {
      k_.mutable_loop().lower = Fold(k_.loop().lower);
      k_.mutable_loop().upper = Fold(k_.loop().upper);
    }
    return folded_;
  }

 private:
  void Walk(std::vector<Stmt>& stmts) {
    for (Stmt& stmt : stmts) {
      switch (stmt.kind) {
        case ir::StmtKind::kAssignTemp:
        case ir::StmtKind::kStoreScalar:
          stmt.value = Fold(stmt.value);
          break;
        case ir::StmtKind::kStoreArray:
          stmt.index = Fold(stmt.index);
          stmt.value = Fold(stmt.value);
          break;
        case ir::StmtKind::kIf:
          stmt.value = Fold(stmt.value);
          Walk(stmt.then_body);
          Walk(stmt.else_body);
          break;
      }
    }
  }

  bool IsConst(ExprId id) const {
    const ExprKind kind = k_.expr(id).kind;
    return kind == ExprKind::kConstI || kind == ExprKind::kConstF;
  }

  ExprId MakeConstI(std::int64_t v) {
    ++folded_;
    return k_.AddExpr(ExprNode{.kind = ExprKind::kConstI,
                               .type = ir::ScalarType::kI64,
                               .const_i = v});
  }

  ExprId MakeConstF(double v) {
    ++folded_;
    return k_.AddExpr(ExprNode{.kind = ExprKind::kConstF,
                               .type = ir::ScalarType::kF64,
                               .const_f = v});
  }

  ExprId Fold(ExprId id) {
    const ExprNode node = k_.expr(id);  // copy: arena may grow
    switch (node.kind) {
      case ExprKind::kUnary: {
        const ExprId child = Fold(node.child[0]);
        if (!IsConst(child)) {
          return Rebuild(id, node, {child});
        }
        const ExprNode& c = k_.expr(child);
        switch (node.un) {
          case UnOp::kNeg:
            return node.type == ir::ScalarType::kI64 ? MakeConstI(-c.const_i)
                                                     : MakeConstF(-c.const_f);
          case UnOp::kAbs:
            return node.type == ir::ScalarType::kI64
                       ? MakeConstI(c.const_i < 0 ? -c.const_i : c.const_i)
                       : MakeConstF(std::fabs(c.const_f));
          case UnOp::kSqrt:
            return MakeConstF(std::sqrt(c.const_f));
          case UnOp::kNot:
            return MakeConstI(c.const_i == 0 ? 1 : 0);
          case UnOp::kI2F:
            return MakeConstF(static_cast<double>(c.const_i));
          case UnOp::kF2I:
            return MakeConstI(static_cast<std::int64_t>(c.const_f));
        }
        FGPAR_UNREACHABLE("bad UnOp");
      }
      case ExprKind::kBinary: {
        const ExprId lhs = Fold(node.child[0]);
        const ExprId rhs = Fold(node.child[1]);
        if (!IsConst(lhs) || !IsConst(rhs)) {
          return Rebuild(id, node, {lhs, rhs});
        }
        const ExprNode& l = k_.expr(lhs);
        const ExprNode& r = k_.expr(rhs);
        if (k_.expr(node.child[0]).type == ir::ScalarType::kI64 ||
            l.kind == ExprKind::kConstI) {
          const std::int64_t a = l.const_i;
          const std::int64_t b = r.const_i;
          switch (node.bin) {
            case BinOp::kAdd: return MakeConstI(a + b);
            case BinOp::kSub: return MakeConstI(a - b);
            case BinOp::kMul: return MakeConstI(a * b);
            case BinOp::kDiv:
              if (b == 0) {
                return Rebuild(id, node, {lhs, rhs});  // preserve the trap
              }
              return MakeConstI(a / b);
            case BinOp::kRem:
              if (b == 0) {
                return Rebuild(id, node, {lhs, rhs});
              }
              return MakeConstI(a % b);
            case BinOp::kMin: return MakeConstI(std::min(a, b));
            case BinOp::kMax: return MakeConstI(std::max(a, b));
            case BinOp::kAnd: return MakeConstI(a & b);
            case BinOp::kOr: return MakeConstI(a | b);
            case BinOp::kXor: return MakeConstI(a ^ b);
            case BinOp::kShl:
              return MakeConstI(static_cast<std::int64_t>(
                  static_cast<std::uint64_t>(a) << (b & 63)));
            case BinOp::kShr: return MakeConstI(a >> (b & 63));
            case BinOp::kEq: return MakeConstI(a == b ? 1 : 0);
            case BinOp::kNe: return MakeConstI(a != b ? 1 : 0);
            case BinOp::kLt: return MakeConstI(a < b ? 1 : 0);
            case BinOp::kLe: return MakeConstI(a <= b ? 1 : 0);
          }
        } else {
          const double a = l.const_f;
          const double b = r.const_f;
          switch (node.bin) {
            case BinOp::kAdd: return MakeConstF(a + b);
            case BinOp::kSub: return MakeConstF(a - b);
            case BinOp::kMul: return MakeConstF(a * b);
            case BinOp::kDiv: return MakeConstF(a / b);
            case BinOp::kMin: return MakeConstF(std::fmin(a, b));
            case BinOp::kMax: return MakeConstF(std::fmax(a, b));
            case BinOp::kEq: return MakeConstI(a == b ? 1 : 0);
            case BinOp::kNe: return MakeConstI(a != b ? 1 : 0);
            case BinOp::kLt: return MakeConstI(a < b ? 1 : 0);
            case BinOp::kLe: return MakeConstI(a <= b ? 1 : 0);
            default:
              FGPAR_UNREACHABLE("int-only operator on f64");
          }
        }
        FGPAR_UNREACHABLE("bad BinOp");
      }
      case ExprKind::kSelect: {
        const ExprId cond = Fold(node.child[0]);
        const ExprId a = Fold(node.child[1]);
        const ExprId b = Fold(node.child[2]);
        if (IsConst(cond) && IsConst(a) && IsConst(b)) {
          // Select evaluates both arms; only fold when both are constants
          // so a potential trap in the unselected arm is preserved.
          ++folded_;
          return k_.expr(cond).const_i != 0 ? a : b;
        }
        return Rebuild(id, node, {cond, a, b});
      }
      case ExprKind::kArrayRef: {
        const ExprId index = Fold(node.child[0]);
        return Rebuild(id, node, {index});
      }
      default:
        return id;
    }
  }

  ExprId Rebuild(ExprId original, const ExprNode& node,
                 std::initializer_list<ExprId> children) {
    bool changed = false;
    ExprNode clone = node;
    int c = 0;
    for (ExprId child : children) {
      changed |= child != node.child[static_cast<std::size_t>(c)];
      clone.child[static_cast<std::size_t>(c)] = child;
      ++c;
    }
    return changed ? k_.AddExpr(clone) : original;
  }

  Kernel& k_;
  int folded_ = 0;
};

}  // namespace

int FoldConstants(ir::Kernel& kernel) { return Folder(kernel).Run(); }

int EliminateDeadTemps(ir::Kernel& kernel) {
  // Uses of each temp anywhere in the kernel.
  std::map<ir::TempId, int> uses;
  auto count_expr = [&](ExprId id) {
    kernel.VisitExpr(id, [&](ExprId e) {
      const ExprNode& node = kernel.expr(e);
      if (node.kind == ExprKind::kTempRef) {
        ++uses[node.temp];
      }
    });
  };
  kernel.VisitAllStmts([&](const Stmt& stmt) {
    switch (stmt.kind) {
      case ir::StmtKind::kAssignTemp:
      case ir::StmtKind::kStoreScalar:
      case ir::StmtKind::kIf:
        count_expr(stmt.value);
        break;
      case ir::StmtKind::kStoreArray:
        count_expr(stmt.index);
        count_expr(stmt.value);
        break;
    }
  });

  int removed = 0;
  // Iterate to a fixed point: removing one dead assignment can orphan the
  // temps it read.
  for (;;) {
    bool changed = false;
    auto sweep = [&](std::vector<Stmt>& stmts, auto&& self) -> void {
      std::vector<Stmt> kept;
      kept.reserve(stmts.size());
      for (Stmt& stmt : stmts) {
        if (stmt.kind == ir::StmtKind::kIf) {
          self(stmt.then_body, self);
          self(stmt.else_body, self);
          kept.push_back(std::move(stmt));
          continue;
        }
        const bool dead = stmt.kind == ir::StmtKind::kAssignTemp &&
                          !kernel.temp(stmt.temp).carried &&
                          uses[stmt.temp] == 0;
        if (dead) {
          // The removed RHS no longer uses anything.
          kernel.VisitExpr(stmt.value, [&](ExprId e) {
            const ExprNode& node = kernel.expr(e);
            if (node.kind == ExprKind::kTempRef) {
              --uses[node.temp];
            }
          });
          ++removed;
          changed = true;
        } else {
          kept.push_back(std::move(stmt));
        }
      }
      stmts = std::move(kept);
    };
    sweep(kernel.mutable_loop().body, sweep);
    sweep(kernel.mutable_epilogue(), sweep);
    if (!changed) {
      break;
    }
  }
  if (removed > 0) {
    kernel.RenumberStmts();
  }
  return removed;
}


namespace {

/// Pipeline registrations (see pass.hpp / pipeline.cpp).
class FoldPass final : public Pass {
 public:
  const char* name() const override { return "fold"; }
  const char* description() const override {
    return "fold constant subexpressions with the interpreter's exact "
           "arithmetic (traps preserved)";
  }
  bool mutates_ir() const override { return true; }
  void Run(CompileState& state) override {
    state.Note("folded", FoldConstants(state.kernel()));
  }
};

class DcePass final : public Pass {
 public:
  const char* name() const override { return "dce"; }
  const char* description() const override {
    return "remove assignments to plain temporaries that are never read";
  }
  bool mutates_ir() const override { return true; }
  void Run(CompileState& state) override {
    state.Note("removed", EliminateDeadTemps(state.kernel()));
  }
};

}  // namespace

std::unique_ptr<Pass> MakeFoldPass() { return std::make_unique<FoldPass>(); }
std::unique_ptr<Pass> MakeDcePass() { return std::make_unique<DcePass>(); }

}  // namespace fgpar::compiler
