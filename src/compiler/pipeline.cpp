#include "compiler/pipeline.hpp"

#include <chrono>

#include "ir/printer.hpp"
#include "ir/validate.hpp"
#include "support/error.hpp"

namespace fgpar::compiler {

namespace {

int CountStmts(const ir::Kernel& kernel) {
  int count = 0;
  kernel.VisitAllStmts([&](const ir::Stmt&) { ++count; });
  return count;
}

}  // namespace

PassManager& PassManager::Add(std::unique_ptr<Pass> pass) {
  FGPAR_CHECK_MSG(!HasPass(pass->name()),
                  "duplicate pass '" + std::string(pass->name()) +
                      "' in pipeline '" + name_ + "'");
  passes_.push_back(std::move(pass));
  return *this;
}

std::vector<std::string> PassManager::PassNames() const {
  std::vector<std::string> names;
  names.reserve(passes_.size());
  for (const auto& pass : passes_) {
    names.emplace_back(pass->name());
  }
  return names;
}

bool PassManager::HasPass(const std::string& name) const {
  for (const auto& pass : passes_) {
    if (name == pass->name()) {
      return true;
    }
  }
  return false;
}

std::string PassManager::Describe() const {
  std::string out = "pipeline '" + name_ + "' (" +
                    std::to_string(passes_.size()) + " passes):\n";
  for (const auto& pass : passes_) {
    std::string name = pass->name();
    if (name.size() < 10) {
      name.append(10 - name.size(), ' ');
    }
    out += "  " + name + " " + pass->description() + "\n";
  }
  return out;
}

void PassManager::Run(CompileState& state,
                      const PipelineInstrumentation* instrumentation) const {
  static const PipelineInstrumentation kDefaults;
  const PipelineInstrumentation& instr =
      instrumentation != nullptr ? *instrumentation : kDefaults;
  PassStatistics* stats = instr.statistics;
  if (stats != nullptr) {
    stats->pipeline = name_;
    stats->passes.clear();
    stats->total_wall_seconds = 0.0;
  }
  for (const auto& pass : passes_) {
    PassStat stat;
    stat.pass = pass->name();
    stat.stmts_before = CountStmts(state.kernel());
    stat.temps_before = static_cast<int>(state.kernel().temps().size());
    stat.exprs_before = static_cast<int>(state.kernel().expr_count());

    state.current_counters = &stat.counters;
    const auto start = std::chrono::steady_clock::now();
    try {
      pass->Run(state);
    } catch (...) {
      state.current_counters = nullptr;
      throw;
    }
    stat.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    state.current_counters = nullptr;

    stat.stmts_after = CountStmts(state.kernel());
    stat.temps_after = static_cast<int>(state.kernel().temps().size());
    stat.exprs_after = static_cast<int>(state.kernel().expr_count());

    // The manager, not the next pass, is what catches a broken rewrite:
    // every IR-mutating pass is followed by the full kernel validator, and
    // failures are attributed to the pass that produced the invalid IR.
    if (instr.verify_each_pass && pass->mutates_ir()) {
      try {
        ir::CheckValid(state.kernel());
      } catch (const Error& e) {
        throw Error("pass '" + stat.pass + "' (pipeline '" + name_ +
                    "') produced invalid IR: " + e.what());
      }
    }
    try {
      pass->CheckInvariants(state);
    } catch (const Error& e) {
      throw Error("pass '" + stat.pass + "' (pipeline '" + name_ +
                  "') violated its invariants: " + e.what());
    }

    if (instr.dump_sink &&
        (instr.dump_after == "all" || instr.dump_after == stat.pass)) {
      instr.dump_sink(stat.pass, ir::PrintKernel(state.kernel()));
    }
    if (stats != nullptr) {
      stats->total_wall_seconds += stat.wall_seconds;
      stats->passes.push_back(std::move(stat));
    }
  }
}

void AddScalarRewritePasses(PassManager& manager, const CompileOptions& options,
                            bool parallel) {
  manager.Add(MakeSplitPass());
  manager.Add(MakeFoldPass());
  if (parallel && options.speculation) {
    manager.Add(MakeSpeculatePass());
  }
  manager.Add(MakeForwardPass());
  manager.Add(MakeDcePass());
}

std::vector<std::string> ScalarRewritePassNames(const CompileOptions& options,
                                                bool parallel) {
  PassManager manager("scalar");
  AddScalarRewritePasses(manager, options, parallel);
  return manager.PassNames();
}

PassManager BuildSequentialPipeline(const CompileOptions& options) {
  PassManager manager("sequential");
  AddScalarRewritePasses(manager, options, /*parallel=*/false);
  manager.Add(MakeLowerSequentialPass());
  return manager;
}

PassManager BuildRewritePipeline(const CompileOptions& options) {
  PassManager manager("rewrite");
  AddScalarRewritePasses(manager, options, /*parallel=*/true);
  manager.Add(MakeFiberizePass());
  return manager;
}

PassManager BuildParallelPipeline(const CompileOptions& options) {
  PassManager manager("parallel");
  AddScalarRewritePasses(manager, options, /*parallel=*/true);
  manager.Add(MakeFiberizePass());
  manager.Add(MakeGraphPass());
  manager.Add(MakeMergePass());
  manager.Add(MakeSelectPass());
  return manager;
}

}  // namespace fgpar::compiler
