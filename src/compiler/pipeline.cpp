#include "compiler/pipeline.hpp"

#include <optional>

#include "ir/printer.hpp"
#include "ir/validate.hpp"
#include "support/error.hpp"
#include "support/str.hpp"

namespace fgpar::compiler {

namespace {

int CountStmts(const ir::Kernel& kernel) {
  int count = 0;
  kernel.VisitAllStmts([&](const ir::Stmt&) { ++count; });
  return count;
}

}  // namespace

PassManager& PassManager::Add(std::unique_ptr<Pass> pass) {
  FGPAR_CHECK_MSG(!HasPass(pass->name()),
                  "duplicate pass '" + std::string(pass->name()) +
                      "' in pipeline '" + name_ + "'");
  passes_.push_back(std::move(pass));
  return *this;
}

std::vector<std::string> PassManager::PassNames() const {
  std::vector<std::string> names;
  names.reserve(passes_.size());
  for (const auto& pass : passes_) {
    names.emplace_back(pass->name());
  }
  return names;
}

bool PassManager::HasPass(const std::string& name) const {
  for (const auto& pass : passes_) {
    if (name == pass->name()) {
      return true;
    }
  }
  return false;
}

std::string PassManager::Describe() const {
  std::string out = "pipeline '" + name_ + "' (" +
                    std::to_string(passes_.size()) + " passes):\n";
  for (const auto& pass : passes_) {
    std::string name = pass->name();
    if (name.size() < 10) {
      name.append(10 - name.size(), ' ');
    }
    out += "  " + name + " " + pass->description() + "\n";
  }
  return out;
}

void PassManager::Run(CompileState& state,
                      const PipelineInstrumentation* instrumentation) const {
  static const PipelineInstrumentation kDefaults;
  const PipelineInstrumentation& instr =
      instrumentation != nullptr ? *instrumentation : kDefaults;
  telemetry::TelemetrySink* sink = instr.telemetry;
  // The enclosing "pipeline" span brackets the whole run; it completes
  // (and is emitted) after every per-pass span, carrying the pipeline's
  // identity for consumers that only see the event stream.
  std::optional<telemetry::ScopedSpan> pipeline_span;
  if (sink != nullptr) {
    pipeline_span.emplace(sink, "pipeline", name_);
  }
  for (const auto& pass : passes_) {
    const std::string pass_name = pass->name();
    // The "pass" span's wall time covers exactly the pass's Run (the
    // before/after IR counts and the validators are bracketed outside it,
    // mirroring the pre-telemetry measurement).
    std::optional<telemetry::ScopedSpan> span;
    if (sink != nullptr) {
      span.emplace(sink, "pass", pass_name);
      span->Note("stmts_before", CountStmts(state.kernel()));
      span->Note("temps_before",
                 static_cast<std::int64_t>(state.kernel().temps().size()));
      span->Note("exprs_before",
                 static_cast<std::int64_t>(state.kernel().expr_count()));
      state.current_counters = &span->counters();
    }
    try {
      pass->Run(state);
    } catch (...) {
      state.current_counters = nullptr;
      throw;
    }
    state.current_counters = nullptr;
    if (span.has_value()) {
      span->Note("stmts_after", CountStmts(state.kernel()));
      span->Note("temps_after",
                 static_cast<std::int64_t>(state.kernel().temps().size()));
      span->Note("exprs_after",
                 static_cast<std::int64_t>(state.kernel().expr_count()));
      span.reset();  // completes the span: wall time stops here
    }

    // The manager, not the next pass, is what catches a broken rewrite:
    // every IR-mutating pass is followed by the full kernel validator, and
    // failures are attributed to the pass that produced the invalid IR.
    if (instr.verify_each_pass && pass->mutates_ir()) {
      try {
        ir::CheckValid(state.kernel());
      } catch (const Error& e) {
        throw Error("pass '" + pass_name + "' (pipeline '" + name_ +
                    "') produced invalid IR: " + e.what());
      }
    }
    try {
      pass->CheckInvariants(state);
    } catch (const Error& e) {
      throw Error("pass '" + pass_name + "' (pipeline '" + name_ +
                  "') violated its invariants: " + e.what());
    }

    if (instr.dump_sink &&
        (instr.dump_after == "all" || instr.dump_after == pass_name)) {
      instr.dump_sink(pass_name, ir::PrintKernel(state.kernel()));
    }
  }
}

std::string FormatCompileSpans(
    const std::string& pipeline,
    const std::vector<telemetry::SpanRecord>& pass_spans) {
  const auto reserved = [](const std::string& key) {
    for (const char* name : kPassSpanReservedKeys) {
      if (key == name) {
        return true;
      }
    }
    return false;
  };
  const auto counter = [](const telemetry::SpanRecord& span,
                          const char* key) -> std::int64_t {
    const auto it = span.counters.find(key);
    return it != span.counters.end() ? it->second : 0;
  };
  double total_wall_seconds = 0.0;
  for (const telemetry::SpanRecord& span : pass_spans) {
    total_wall_seconds += span.wall_seconds;
  }
  std::string out = "compile pipeline '" + pipeline + "': " +
                    std::to_string(pass_spans.size()) + " passes, " +
                    FormatFixed(total_wall_seconds * 1e3, 3) + " ms total\n";
  auto pad = [](std::string s, std::size_t width) {
    if (s.size() < width) {
      s.insert(0, width - s.size(), ' ');
    }
    return s;
  };
  out += "  pass        wall_ms      stmts      temps      exprs  counters\n";
  for (const telemetry::SpanRecord& span : pass_spans) {
    auto delta = [&](const char* prefix) {
      return std::to_string(counter(span, (std::string(prefix) + "_before").c_str())) +
             "->" +
             std::to_string(counter(span, (std::string(prefix) + "_after").c_str()));
    };
    std::string counters;
    for (const auto& [key, value] : span.counters) {
      if (reserved(key)) {
        continue;
      }
      if (!counters.empty()) {
        counters += " ";
      }
      counters += key + "=" + std::to_string(value);
    }
    out += "  " + span.name +
           std::string(span.name.size() < 10 ? 10 - span.name.size() : 1, ' ') +
           pad(FormatFixed(span.wall_seconds * 1e3, 3), 9) +
           pad(delta("stmts"), 11) + pad(delta("temps"), 11) +
           pad(delta("exprs"), 11) + "  " + counters + "\n";
  }
  return out;
}

void AddScalarRewritePasses(PassManager& manager, const CompileOptions& options,
                            bool parallel) {
  manager.Add(MakeSplitPass());
  manager.Add(MakeFoldPass());
  if (parallel && options.speculation) {
    manager.Add(MakeSpeculatePass());
  }
  manager.Add(MakeForwardPass());
  manager.Add(MakeDcePass());
}

std::vector<std::string> ScalarRewritePassNames(const CompileOptions& options,
                                                bool parallel) {
  PassManager manager("scalar");
  AddScalarRewritePasses(manager, options, parallel);
  return manager.PassNames();
}

PassManager BuildSequentialPipeline(const CompileOptions& options) {
  PassManager manager("sequential");
  AddScalarRewritePasses(manager, options, /*parallel=*/false);
  manager.Add(MakeLowerSequentialPass());
  return manager;
}

PassManager BuildRewritePipeline(const CompileOptions& options) {
  PassManager manager("rewrite");
  AddScalarRewritePasses(manager, options, /*parallel=*/true);
  manager.Add(MakeFiberizePass());
  return manager;
}

PassManager BuildParallelPipeline(const CompileOptions& options) {
  PassManager manager("parallel");
  AddScalarRewritePasses(manager, options, /*parallel=*/true);
  manager.Add(MakeFiberizePass());
  manager.Add(MakeGraphPass());
  manager.Add(MakeMergePass());
  manager.Add(MakeSelectPass());
  return manager;
}

}  // namespace fgpar::compiler
