#include "compiler/comm.hpp"

#include <algorithm>
#include <set>

#include "support/error.hpp"

namespace fgpar::compiler {

CommPlan BuildCommPlan(const analysis::KernelIndex& index,
                       const CoreAssignment& partition) {
  const ir::Kernel& kernel = index.kernel();
  CommPlan plan;
  const int num_cores = static_cast<int>(partition.partitions.size());

  // ---- if replication sets: every if on the control path of an owned
  // statement must be replicated on that core (Section III-E) ----
  std::map<int, std::set<ir::StmtId>> replicated;
  for (const auto& [stmt_id, core] : partition.core_of) {
    const analysis::StmtEntry& entry = index.ByStmtId(stmt_id);
    for (const analysis::PathStep& step : entry.path) {
      replicated[core].insert(step.if_stmt);
    }
  }
  for (int c = 0; c < num_cores; ++c) {
    plan.replicated_ifs[c] = {};
    for (ir::StmtId id : replicated[c]) {
      plan.replicated_ifs[c].push_back(id);
    }
  }

  // ---- per-iteration transfers ----
  // Consumers of a temp on core c: owned statements reading it, plus
  // replicated ifs whose condition it is.
  for (const ir::Temp& temp : kernel.temps()) {
    const auto& defs = index.DefsOf(temp.id);
    if (defs.empty()) {
      continue;
    }
    const analysis::StmtEntry& def_entry = index.ByStmtId(defs.front());
    if (def_entry.in_epilogue) {
      continue;  // defined on the primary after the loop; purely local
    }
    if (temp.carried) {
      // Fusion guarantees carried temps are single-core within the loop;
      // the only possible cross-core flow is the post-loop live-out below.
      continue;
    }
    const auto core_it = partition.core_of.find(defs.front());
    FGPAR_CHECK_MSG(core_it != partition.core_of.end(),
                    "temp def not assigned to a core: " + temp.name);
    const int src = core_it->second;

    std::set<int> consumer_cores;
    for (ir::StmtId use : index.UsesOf(temp.id)) {
      const analysis::StmtEntry& use_entry = index.ByStmtId(use);
      if (use_entry.in_epilogue) {
        continue;  // live-out, handled separately
      }
      if (use_entry.is_if) {
        for (int c = 0; c < num_cores; ++c) {
          if (replicated[c].contains(use)) {
            consumer_cores.insert(c);
          }
        }
      } else {
        consumer_cores.insert(partition.core_of.at(use));
      }
    }
    for (int dst : consumer_cores) {
      if (dst == src) {
        continue;
      }
      Transfer transfer;
      transfer.id = static_cast<int>(plan.transfers.size());
      transfer.temp = temp.id;
      transfer.type = temp.type;
      transfer.src_core = src;
      transfer.dst_core = dst;
      transfer.producer_stmt = defs.front();
      transfer.path = def_entry.path;
      plan.transfers.push_back(std::move(transfer));
    }
  }

  // ---- live-outs (Section III-F) ----
  std::set<ir::TempId> epilogue_reads;
  for (const analysis::StmtEntry& entry : index.entries()) {
    if (entry.in_epilogue) {
      for (ir::TempId t : entry.temps_read) {
        epilogue_reads.insert(t);
      }
    }
  }
  for (ir::TempId t : epilogue_reads) {
    const auto& defs = index.DefsOf(t);
    if (defs.empty()) {
      continue;  // never assigned (holds its initial value everywhere)
    }
    const analysis::StmtEntry& def_entry = index.ByStmtId(defs.front());
    if (def_entry.in_epilogue) {
      continue;  // defined in the epilogue itself
    }
    const int src = partition.core_of.at(defs.front());
    if (src != 0) {
      plan.live_outs.push_back(LiveOut{t, kernel.temp(t).type, src});
    }
  }
  std::sort(plan.live_outs.begin(), plan.live_outs.end(),
            [](const LiveOut& a, const LiveOut& b) {
              return std::tie(a.src_core, a.temp) < std::tie(b.src_core, b.temp);
            });

  // ---- outlined-function arguments (Section III-G) ----
  auto collect_params = [&](ir::ExprId expr, std::set<ir::SymbolId>& out) {
    kernel.VisitExpr(expr, [&](ir::ExprId e) {
      if (kernel.expr(e).kind == ir::ExprKind::kParamRef) {
        out.insert(kernel.expr(e).sym);
      }
    });
  };
  for (int c = 1; c < num_cores; ++c) {
    std::set<ir::SymbolId> params;
    collect_params(kernel.loop().lower, params);
    collect_params(kernel.loop().upper, params);
    for (ir::StmtId id : partition.partitions[static_cast<std::size_t>(c)]) {
      const ir::Stmt& stmt = *index.ByStmtId(id).stmt;
      if (stmt.kind == ir::StmtKind::kStoreArray) {
        collect_params(stmt.index, params);
      }
      collect_params(stmt.value, params);
    }
    plan.args[c] = std::vector<ir::SymbolId>(params.begin(), params.end());
  }
  return plan;
}

}  // namespace fgpar::compiler
