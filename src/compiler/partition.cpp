#include "compiler/partition.hpp"

#include <algorithm>
#include <set>

#include "analysis/cost.hpp"
#include "analysis/index.hpp"
#include "compiler/graph.hpp"
#include "compiler/merge.hpp"
#include "compiler/pipeline.hpp"
#include "support/error.hpp"

namespace fgpar::compiler {

void ApplyRewritePasses(PartitionResult& result, const CompileOptions& options) {
  // One canonical definition of the split/fold/(speculate)/forward/dce/
  // fiberize ordering: the same pipeline CompileParallel runs (pipeline.cpp),
  // minus the partitioning stages.  The manager validates the IR after
  // every pass.
  CompileState state(std::move(result), /*layout=*/nullptr, options);
  BuildRewritePipeline(options).Run(state);
  result = std::move(state.partition);
}

CoreAssignment AssignCores(const analysis::KernelIndex& index,
                           std::vector<MergedPartition> merged) {
  FGPAR_CHECK_MSG(!merged.empty(), "kernel produced no partitionable statements");
  CoreAssignment result;

  // The primary core hosts the partition producing the most values the
  // epilogue consumes (minimizing Section III-F live-variable transfers);
  // ties go to the most expensive partition (already sorted by cost).
  std::set<ir::TempId> epilogue_temps;
  for (const analysis::StmtEntry& entry : index.entries()) {
    if (entry.in_epilogue) {
      for (ir::TempId t : entry.temps_read) {
        epilogue_temps.insert(t);
      }
    }
  }
  auto live_out_count = [&](const MergedPartition& partition) {
    int count = 0;
    for (ir::StmtId id : partition.stmts) {
      const analysis::StmtEntry& entry = index.ByStmtId(id);
      if (entry.temp_written >= 0 && epilogue_temps.contains(entry.temp_written)) {
        ++count;
      }
    }
    return count;
  };
  std::stable_sort(merged.begin(), merged.end(),
                   [&](const MergedPartition& a, const MergedPartition& b) {
                     return live_out_count(a) > live_out_count(b);
                   });

  for (std::size_t c = 0; c < merged.size(); ++c) {
    std::vector<ir::StmtId> stmts = merged[c].stmts;
    std::sort(stmts.begin(), stmts.end());  // program order within core
    for (ir::StmtId id : stmts) {
      result.core_of[id] = static_cast<int>(c);
    }
    result.partitions.push_back(std::move(stmts));
    result.compute_ops_per_core.push_back(merged[c].compute_ops);
  }

  int min_ops = result.compute_ops_per_core[0];
  int max_ops = result.compute_ops_per_core[0];
  for (int ops : result.compute_ops_per_core) {
    min_ops = std::min(min_ops, ops);
    max_ops = std::max(max_ops, ops);
  }
  result.load_balance =
      static_cast<double>(max_ops) / static_cast<double>(std::max(1, min_ops));
  return result;
}

void AssignPartitionsToCores(PartitionResult& result,
                             const analysis::KernelIndex& index,
                             std::vector<MergedPartition> merged) {
  static_cast<CoreAssignment&>(result) = AssignCores(index, std::move(merged));
}

PartitionResult PartitionKernel(const ir::Kernel& input,
                                const CompileOptions& options,
                                const analysis::ProfileData* profile) {
  PartitionResult result(input);  // copies; passes rewrite in place
  ApplyRewritePasses(result, options);

  const analysis::KernelIndex index(result.kernel);
  const analysis::CostModel cost(sim::CoreTiming{}, sim::CacheConfig{},
                                 options.use_profile ? profile : nullptr);
  const CodeGraph graph = BuildCodeGraph(index, cost);
  result.data_deps = graph.data_dep_count;

  AssignPartitionsToCores(result, index, MergeGraph(graph, options));
  return result;
}

}  // namespace fgpar::compiler
