// Store-to-load forwarding.
//
// When a statement stores a value and a later statement in the same
// iteration provably reloads the same address (must-alias, Section III-I.2),
// the reload is replaced by a direct reference to the stored value's
// temporary.  This serves two purposes: it removes a redundant memory
// access, and — more importantly for the partitioner — it turns a memory
// RAW dependence into a register dataflow edge, which the communication
// inserter can satisfy with a queue transfer when producer and consumer
// land on different cores.  Memory dependences that cannot be forwarded are
// later handled conservatively by fusing the fibers onto one core (see
// graph.cpp).
#pragma once

#include "ir/kernel.hpp"

namespace fgpar::compiler {

/// Rewrites `kernel` in place; returns the number of loads forwarded.
int ForwardStores(ir::Kernel& kernel);

}  // namespace fgpar::compiler
