// Code generation: lowers kernels / program plans to the simulator ISA.
//
// Parallel layout (Section III-G, Figure 9): core 0 enters at "main", which
// dispatches each outlined function ("F1", "F2", ...) to its secondary core
// by enqueueing the function's entry pc followed by its arguments, runs its
// own partition of the loop inline, collects live-outs and completion
// tokens, runs the epilogue, and finally enqueues the TERMINATE value (0)
// to every secondary.  All secondary cores enter at the shared "driver"
// loop, which dequeues a function pointer from the primary and indirect-
// calls it until it receives 0.
//
// Sequential layout: a single "main" on core 0 runs the whole loop and
// epilogue — the baseline the paper's speedups are measured against.
#pragma once

#include "compiler/plan.hpp"
#include "ir/layout.hpp"
#include "isa/program.hpp"

namespace fgpar::compiler {

/// Emits the parallel program for `plan`.  Core 0 starts at "main"; cores
/// 1..plan.cores.size()-1 start at "driver".
isa::Program LowerParallel(const ir::Kernel& kernel, const ir::DataLayout& layout,
                           const ProgramPlan& plan);

/// Emits the single-core baseline program ("main" on core 0).
isa::Program LowerSequential(const ir::Kernel& kernel, const ir::DataLayout& layout);

}  // namespace fgpar::compiler
