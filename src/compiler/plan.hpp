// Per-core code plans.
//
// A CorePlan is the ordered, control-structured list of things one core
// does per loop iteration: its own statements, the replicated branch
// skeleton (Section III-E), and the enqueue/dequeue operations (Section
// III-D), placed so that for every directed core pair the enqueue order
// provably equals the dequeue order:
//
//  * enqueues go immediately after their producer statement;
//  * dequeues go in the block at the *producer's* control path — both
//    sides of a guarded transfer execute under the same (communicated)
//    condition value, so they pair on every control-flow path;
//  * within a block, dequeues from one source are placed in the producer's
//    emission order at the suffix-minimum of their first-use positions,
//    which keeps per-queue FIFO order while dequeuing as late as possible;
//  * block items keep original program order, so the cross-block order of
//    queue operations is the same on every core.
//
// check.cpp verifies the pairing property exhaustively over all branch
// assignments before code generation.
#pragma once

#include <vector>

#include "compiler/comm.hpp"

namespace fgpar::compiler {

struct PlanItem {
  enum class Kind { kStmt, kIf, kEnq, kDeq };
  Kind kind = Kind::kStmt;
  const ir::Stmt* stmt = nullptr;  // kStmt / kIf (original statement)
  int transfer = -1;               // kEnq / kDeq: index into CommPlan
  std::vector<PlanItem> then_items;
  std::vector<PlanItem> else_items;
};

struct CorePlan {
  int core = -1;
  std::vector<PlanItem> body;  // executed once per iteration
};

struct ProgramPlan {
  std::vector<CorePlan> cores;  // cores[0] = primary
  CommPlan comm;
};

ProgramPlan BuildProgramPlan(const analysis::KernelIndex& index,
                             const CoreAssignment& partition, CommPlan comm);

}  // namespace fgpar::compiler
