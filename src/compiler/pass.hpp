// The compile pipeline's pass interface.
//
// Every stage of the Section III compilation — the scalar rewrites
// (splitting, folding, speculation, forwarding, dead-temp elimination),
// fiber formation, code-graph construction, candidate merging,
// multi-version selection, and lowering — is a named Pass over one shared
// CompileState.  The PassManager (pipeline.hpp) runs a pipeline of passes,
// re-validates the IR after every IR-mutating pass, checks pass-declared
// invariants, and records per-pass wall time and IR-delta statistics, so
// the whole compile is observable (`fgparc --dump-after=<pass|all>`,
// `--print-pipeline`, `--compile-stats`) and verifiable at every step.
//
// CompileState threads everything a stage may need: the kernel being
// rewritten (inside PartitionResult, with its Table III statistics), the
// data layout, the options, the profile feedback, and the derived
// analyses (KernelIndex, CostModel, CodeGraph), the multi-version
// candidate set, and the chosen plan/program.  Stages fill the state
// monotonically; a pass that needs an analysis a previous stage did not
// produce is a pipeline-construction bug and throws.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "analysis/cost.hpp"
#include "analysis/index.hpp"
#include "compiler/graph.hpp"
#include "compiler/merge.hpp"
#include "compiler/options.hpp"
#include "compiler/partition.hpp"
#include "compiler/plan.hpp"
#include "ir/layout.hpp"
#include "isa/program.hpp"
#include "support/telemetry/telemetry.hpp"

namespace fgpar::analysis {
struct ProfileData;
}

namespace fgpar::compiler {

/// Dynamic-feedback hook for multi-version compilation (paper Section
/// III-I.1: "the compiler can generate multiple code versions for regions
/// with potential, and rely on a runtime system with dynamic feedback to
/// decide which code version to execute").  Given a compiled candidate and
/// the number of cores it uses, returns its measured cost (lower is
/// better), e.g. simulated cycles on a training workload.
using PartitionEvaluator =
    std::function<std::uint64_t(const isa::Program& program, int cores_used)>;

class CostModel;  // cost_model.hpp: pluggable select-stage scoring

/// What the select stage recorded about one candidate partitioning: every
/// candidate — built or rejected — gets a report carrying its cost-model
/// attribution, so `--explain-select` and the autotuner can show *why* the
/// winner won and each loser lost.
struct CandidateReport {
  std::size_t index = 0;      // 0-based enumeration order
  std::size_t partitions = 0;
  bool built = false;         // false: rejected (pairing/capacity/lowering)
  bool selected = false;      // the winning candidate
  double cost = 0.0;          // cost-model score (lower wins); 0 when unscored
  std::string model;          // scoring cost model's name ("none" when unscored)
  std::string detail;         // score explanation, or the rejection reason
  /// Named model features, in the model's deterministic emission order.
  std::vector<std::pair<std::string, double>> features;
};

/// Everything the pipeline threads between passes.
struct CompileState {
  /// `layout` may be null for rewrite-only pipelines (no lowering stage).
  CompileState(ir::Kernel kernel, const ir::DataLayout* layout,
               const CompileOptions& options)
      : layout(layout), options(options), partition(std::move(kernel)) {}
  CompileState(PartitionResult partition, const ir::DataLayout* layout,
               const CompileOptions& options)
      : layout(layout), options(options), partition(std::move(partition)) {}

  // ---- immutable inputs ----
  const ir::DataLayout* layout = nullptr;
  CompileOptions options;
  const analysis::ProfileData* profile = nullptr;   // may be null
  const PartitionEvaluator* evaluator = nullptr;    // may be null
  /// Pluggable candidate scorer for the select stage (may be null).  When
  /// null and an evaluator is present, select wraps the evaluator in the
  /// simulate-to-score model — byte-identical to the historical loop.
  const CostModel* cost_model = nullptr;

  // ---- the kernel being rewritten, plus Table III bookkeeping ----
  PartitionResult partition;

  ir::Kernel& kernel() { return partition.kernel; }
  const ir::Kernel& kernel() const { return partition.kernel; }

  // ---- derived analyses (filled by the graph stage) ----
  std::optional<analysis::KernelIndex> index;
  std::optional<analysis::CostModel> cost;
  std::optional<CodeGraph> graph;

  // ---- multi-version candidates (filled by the merge stage) ----
  std::vector<std::vector<MergedPartition>> candidates;

  // ---- selection outputs (filled by the select / lower stages) ----
  std::optional<ProgramPlan> plan;      // chosen candidate's plan (parallel)
  std::optional<isa::Program> program;  // final machine code
  /// Diagnostics for every candidate the select stage rejected.
  std::vector<std::string> rejected_candidates;
  /// Structured per-candidate records (built and rejected alike), in
  /// enumeration order, each with its cost-model attribution.
  std::vector<CandidateReport> candidate_reports;

  /// Per-pass deterministic counters; a pass calls Note() to report what it
  /// did ("split_added", "candidates_rejected", ...).  No-op unless the
  /// manager is collecting statistics for the current pass.
  void Note(const std::string& key, std::int64_t value);

  /// Set by the PassManager around each pass; passes use Note() instead.
  std::map<std::string, std::int64_t>* current_counters = nullptr;
};

/// One pipeline stage.  Implementations live next to the transformation
/// they wrap (split.cpp, optimize.cpp, ...) and are registered into
/// pipelines by pipeline.cpp.
class Pass {
 public:
  virtual ~Pass() = default;

  /// Stable name used by --dump-after, --print-pipeline, and statistics.
  virtual const char* name() const = 0;
  /// One-line description for --print-pipeline and the docs.
  virtual const char* description() const = 0;

  virtual void Run(CompileState& state) = 0;

  /// True when Run may rewrite the kernel IR.  The manager re-validates
  /// the kernel (ir::CheckValid) after every IR-mutating pass.
  virtual bool mutates_ir() const { return false; }

  /// Pass-declared structural invariants, checked by the manager right
  /// after Run (and after the IR validator).  Throw fgpar::Error on
  /// violation; the manager attributes the failure to this pass.
  virtual void CheckInvariants(const CompileState& state) const;
};

/// Reserved counter keys on "pass" telemetry spans: the manager records
/// the IR size before/after each pass under these names, next to the
/// pass's own Note() counters.  Renderers (FormatCompileSpans, the
/// compile-stats artifact) treat them as structure, not pass counters.
inline constexpr const char* kPassSpanReservedKeys[] = {
    "stmts_before", "stmts_after", "temps_before",
    "temps_after",  "exprs_before", "exprs_after",
};

/// Observability hooks for one pipeline run.
struct PipelineInstrumentation {
  /// Dump the kernel IR (ir/printer) after the named pass ("all" dumps
  /// after every pass).  Empty disables dumping.
  std::string dump_after;
  /// Receives (pass name, rendered kernel) for each requested dump.
  std::function<void(const std::string& pass, const std::string& text)>
      dump_sink;
  /// When set, the manager emits one "pass" span per pass (wall time, the
  /// reserved IR-delta counters above, and the pass's Note() counters) and
  /// one enclosing "pipeline" span named after the pipeline.  Wall times
  /// are host measurements and must never enter the deterministic portion
  /// of a bench artifact.
  telemetry::TelemetrySink* telemetry = nullptr;
  /// Run ir::CheckValid after every IR-mutating pass.  On by default (and
  /// in every production compile); off only for experiments that want the
  /// pre-pass-manager behaviour of validating once at the end.
  bool verify_each_pass = true;
};

// ---- pass factories (each defined next to the code it wraps) ----
std::unique_ptr<Pass> MakeSplitPass();        // split.cpp
std::unique_ptr<Pass> MakeFoldPass();         // optimize.cpp
std::unique_ptr<Pass> MakeDcePass();          // optimize.cpp
std::unique_ptr<Pass> MakeSpeculatePass();    // speculate.cpp
std::unique_ptr<Pass> MakeForwardPass();      // forward.cpp
std::unique_ptr<Pass> MakeFiberizePass();     // fiber.cpp
std::unique_ptr<Pass> MakeGraphPass();        // pass.cpp (graph + index + cost)
std::unique_ptr<Pass> MakeMergePass();        // pass.cpp (candidate merging)
std::unique_ptr<Pass> MakeSelectPass();       // pass.cpp (multi-version select)
std::unique_ptr<Pass> MakeLowerSequentialPass();  // pass.cpp

}  // namespace fgpar::compiler
