#include "compiler/compile.hpp"

#include "analysis/cost.hpp"
#include "analysis/index.hpp"
#include "compiler/check.hpp"
#include "compiler/comm.hpp"
#include "compiler/forward.hpp"
#include "compiler/graph.hpp"
#include "compiler/lower.hpp"
#include "compiler/optimize.hpp"
#include "compiler/split.hpp"
#include "ir/validate.hpp"
#include "support/error.hpp"

namespace fgpar::compiler {

CompiledParallel CompileParallel(const ir::Kernel& kernel,
                                 const ir::DataLayout& layout,
                                 const CompileOptions& options,
                                 const analysis::ProfileData* profile,
                                 const PartitionEvaluator* evaluator) {
  PartitionResult partition(kernel);
  ApplyRewritePasses(partition, options);

  const analysis::KernelIndex index(partition.kernel);
  const analysis::CostModel cost(sim::CoreTiming{}, sim::CacheConfig{},
                                 options.use_profile ? profile : nullptr);
  const CodeGraph graph = BuildCodeGraph(index, cost);
  partition.data_deps = graph.data_dep_count;

  // Multi-version compilation (Section III-I.1): build every candidate
  // partitioning into a full program; pick by dynamic feedback when an
  // evaluator is supplied, by the static objective otherwise.
  std::vector<std::vector<MergedPartition>> candidates =
      evaluator != nullptr
          ? EnumerateCandidates(graph, options)
          : std::vector<std::vector<MergedPartition>>{MergeGraph(graph, options)};

  struct Built {
    isa::Program program;
    CommPlan comm;
    std::vector<MergedPartition> parts;
    std::uint64_t measured = 0;
  };
  std::optional<Built> best;
  std::string last_error;
  for (std::vector<MergedPartition>& candidate : candidates) {
    try {
      PartitionResult trial = partition;  // shares rewrite stats; new mapping
      AssignPartitionsToCores(trial, index, candidate);
      CommPlan comm = BuildCommPlan(index, trial);
      ProgramPlan plan = BuildProgramPlan(index, trial, std::move(comm));
      CheckCommunicationPairing(trial.kernel, plan);
      CheckQueueCapacity(plan, options.assumed_queue_capacity);
      Built built{LowerParallel(trial.kernel, layout, plan), std::move(plan.comm),
                  std::move(candidate), 0};
      if (evaluator != nullptr) {
        built.measured =
            (*evaluator)(built.program, static_cast<int>(built.parts.size()));
      }
      if (!best.has_value() || built.measured < best->measured) {
        best = std::move(built);
      }
    } catch (const Error& e) {
      last_error = e.what();  // candidate rejected; try the next one
    }
  }
  FGPAR_CHECK_MSG(best.has_value(),
                  "no candidate partitioning compiled successfully: " + last_error);

  AssignPartitionsToCores(partition, index, std::move(best->parts));
  CompiledParallel out{std::move(best->program),
                       static_cast<int>(partition.partitions.size()),
                       std::move(partition), std::move(best->comm)};
  return out;
}

isa::Program CompileSequential(const ir::Kernel& kernel,
                               const ir::DataLayout& layout,
                               const CompileOptions& options) {
  ir::Kernel scalar = kernel;  // copy; passes rewrite in place
  SplitExpressions(scalar, options.max_expr_depth);
  FoldConstants(scalar);
  ForwardStores(scalar);
  EliminateDeadTemps(scalar);
  ir::CheckValid(scalar);
  return LowerSequential(scalar, layout);
}

}  // namespace fgpar::compiler
