#include "compiler/compile.hpp"

#include "compiler/pipeline.hpp"
#include "support/error.hpp"

namespace fgpar::compiler {

CompiledParallel CompileParallel(const ir::Kernel& kernel,
                                 const ir::DataLayout& layout,
                                 const CompileOptions& options,
                                 const analysis::ProfileData* profile,
                                 const PartitionEvaluator* evaluator,
                                 const PipelineInstrumentation* instrumentation,
                                 const CostModel* cost_model) {
  CompileState state(kernel, &layout, options);  // copies; passes rewrite in place
  state.profile = profile;
  state.evaluator = evaluator;
  state.cost_model = cost_model;
  BuildParallelPipeline(options).Run(state, instrumentation);

  // Keep the whole plan (not just its comm half): the plan's items point
  // into the partition's kernel, whose heap-allocated statement storage is
  // stable under the moves below, so backends can re-lower the plan later.
  CompiledParallel out{std::move(*state.program),
                       static_cast<int>(state.partition.partitions.size()),
                       std::move(state.partition),
                       state.plan->comm,
                       std::move(*state.plan),
                       &layout,
                       std::move(state.candidate_reports)};
  return out;
}

isa::Program CompileSequential(const ir::Kernel& kernel,
                               const ir::DataLayout& layout,
                               const CompileOptions& options,
                               const PipelineInstrumentation* instrumentation) {
  CompileState state(kernel, &layout, options);  // copies; passes rewrite in place
  BuildSequentialPipeline(options).Run(state, instrumentation);
  return std::move(*state.program);
}

}  // namespace fgpar::compiler
