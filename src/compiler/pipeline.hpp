// The PassManager and the canonical pipeline configurations.
//
// CompileSequential and CompileParallel (compile.cpp) are two
// configurations of the same manager over the same pass objects; the
// scalar rewrite prefix (split → fold → [speculate] → forward → dce) is
// defined once in AddScalarRewritePasses and consumed by both, by
// ApplyRewritePasses, and by the ordering-lock test — there is exactly one
// place in the codebase that knows the Section III pass order.
//
// The manager instruments every run:
//  * ir::CheckValid after every IR-mutating pass (on by default), with
//    failures attributed to the pass that produced the invalid IR;
//  * pass-declared invariants (Pass::CheckInvariants), e.g. the select
//    stage re-proves communication pairing on the chosen plan;
//  * per-pass wall time, IR deltas, and pass counters, emitted as "pass"
//    telemetry spans (plus one "pipeline" span) into
//    PipelineInstrumentation::telemetry;
//  * textual IR dumps after any pass (ir/printer) via
//    PipelineInstrumentation::dump_sink.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "compiler/pass.hpp"
#include "support/telemetry/sinks.hpp"

namespace fgpar::compiler {

class PassManager {
 public:
  explicit PassManager(std::string pipeline_name)
      : name_(std::move(pipeline_name)) {}

  PassManager& Add(std::unique_ptr<Pass> pass);

  /// Runs every pass in order over `state`, applying the instrumentation
  /// (null = defaults: verify after each IR-mutating pass, no dumps, no
  /// statistics).  Throws fgpar::Error naming the offending pass when a
  /// pass produces invalid IR or violates its declared invariants.
  void Run(CompileState& state,
           const PipelineInstrumentation* instrumentation = nullptr) const;

  const std::string& pipeline_name() const { return name_; }
  std::vector<std::string> PassNames() const;
  bool HasPass(const std::string& name) const;

  /// Human-readable pipeline listing (--print-pipeline): one line per pass
  /// with its name and description.
  std::string Describe() const;

 private:
  std::string name_;
  std::vector<std::unique_ptr<Pass>> passes_;
};

/// Appends the canonical scalar rewrite sequence — the single definition of
/// the split/fold/forward/dce ordering both pipelines share.  `parallel`
/// additionally enables Section III-H speculation when the options ask for
/// it (the sequential baseline never speculates).
void AddScalarRewritePasses(PassManager& manager, const CompileOptions& options,
                            bool parallel);

/// The names AddScalarRewritePasses would register, for ordering tests.
std::vector<std::string> ScalarRewritePassNames(const CompileOptions& options,
                                                bool parallel);

/// Scalar rewrites + lower-sequential: the CompileSequential pipeline.
PassManager BuildSequentialPipeline(const CompileOptions& options);

/// Scalar rewrites + fiberize + graph + merge + multi-version select: the
/// CompileParallel pipeline.
PassManager BuildParallelPipeline(const CompileOptions& options);

/// Scalar rewrites + fiberize, no layout needed: the ApplyRewritePasses /
/// PartitionKernel front half.
PassManager BuildRewritePipeline(const CompileOptions& options);

/// Renders the "pass" spans of one pipeline run (as captured by an
/// AggregatingSink) as the human-readable --compile-stats block: one line
/// per pass with wall time, the reserved IR-delta counters, and the pass's
/// own counters.
std::string FormatCompileSpans(
    const std::string& pipeline,
    const std::vector<telemetry::SpanRecord>& pass_spans);

}  // namespace fgpar::compiler
