// Top-level compiler entry points.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>

#include "analysis/profile.hpp"
#include "compiler/options.hpp"
#include "compiler/partition.hpp"
#include "compiler/plan.hpp"
#include "ir/layout.hpp"
#include "isa/program.hpp"

namespace fgpar::compiler {

struct CompiledParallel {
  isa::Program program;
  int cores_used = 0;  // partitions produced (<= options.num_cores)
  PartitionResult partition;
  CommPlan comm;

  /// Entry symbol for core 0; every other core starts at "driver".
  static constexpr const char* kPrimaryEntry = "main";
  static constexpr const char* kDriverEntry = "driver";
};

/// Dynamic-feedback hook for multi-version compilation (paper Section
/// III-I.1: "the compiler can generate multiple code versions for regions
/// with potential, and rely on a runtime system with dynamic feedback to
/// decide which code version to execute").  Given a compiled candidate and
/// the number of cores it uses, returns its measured cost (lower is
/// better), e.g. simulated cycles on a training workload.
using PartitionEvaluator =
    std::function<std::uint64_t(const isa::Program& program, int cores_used)>;

/// Full Section III pipeline: split -> (speculate) -> forward -> fiberize
/// -> code graph -> merge -> communication plan -> pairing check -> lower.
/// With an evaluator, every candidate partitioning (partition counts
/// 2..num_cores, both merge shapes) is compiled and the measured best is
/// kept; without one, the static makespan objective chooses.
CompiledParallel CompileParallel(const ir::Kernel& kernel,
                                 const ir::DataLayout& layout,
                                 const CompileOptions& options,
                                 const analysis::ProfileData* profile = nullptr,
                                 const PartitionEvaluator* evaluator = nullptr);

/// Baseline: the same scalar pipeline (split + forwarding, no fiberize or
/// partitioning) compiled for a single core.
isa::Program CompileSequential(const ir::Kernel& kernel,
                               const ir::DataLayout& layout,
                               const CompileOptions& options);

}  // namespace fgpar::compiler
