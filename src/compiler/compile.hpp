// Top-level compiler entry points.
//
// Both entry points are thin configurations of the PassManager
// (pipeline.hpp): they build the appropriate pipeline, run it over a
// CompileState, and package the state's outputs.  Callers that want
// per-pass observability (IR dumps, statistics, --print-pipeline) pass a
// PipelineInstrumentation; the defaults still verify the IR after every
// IR-mutating pass.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>

#include "analysis/profile.hpp"
#include "compiler/lowered.hpp"
#include "compiler/options.hpp"
#include "compiler/partition.hpp"
#include "compiler/pass.hpp"
#include "compiler/plan.hpp"
#include "ir/layout.hpp"
#include "isa/program.hpp"

namespace fgpar::compiler {

struct CompiledParallel {
  isa::Program program;
  int cores_used = 0;  // partitions produced (<= options.num_cores)
  PartitionResult partition;
  CommPlan comm;

  /// The selected target-independent placement + communication plan.  Its
  /// PlanItems point into `partition`'s kernel, which moves with this
  /// struct, so backends may re-lower the plan for as long as the compiled
  /// object lives (the native backend does exactly that).  Moving a
  /// CompiledParallel is safe; copying would dangle the plan.
  ProgramPlan plan;

  /// The lowered view the plan represents (see compiler/lowered.hpp).
  LoweredProgram lowered() const {
    return {&partition.kernel, layout, &plan};
  }

  /// Layout the kernel was compiled against (caller-owned).
  const ir::DataLayout* layout = nullptr;

  /// The select stage's per-candidate records (enumeration order, built
  /// and rejected alike, each with its cost-model attribution) — the
  /// substance behind `fgparc --explain-select`.
  std::vector<CandidateReport> candidate_reports;

  /// Entry symbol for core 0; every other core starts at "driver".
  static constexpr const char* kPrimaryEntry = "main";
  static constexpr const char* kDriverEntry = "driver";
};

/// Full Section III pipeline: split -> (speculate) -> forward -> fiberize
/// -> code graph -> merge -> communication plan -> pairing check -> lower.
/// With an evaluator (or a pluggable cost model), every candidate
/// partitioning (partition counts 2..num_cores, both merge shapes) is
/// compiled and the best-scoring one is kept; without either, the static
/// makespan objective chooses.  `cost_model` (cost_model.hpp) overrides
/// the evaluator-backed simulate-to-score tier when both are given.
/// (PartitionEvaluator is declared in pass.hpp.)
CompiledParallel CompileParallel(
    const ir::Kernel& kernel, const ir::DataLayout& layout,
    const CompileOptions& options,
    const analysis::ProfileData* profile = nullptr,
    const PartitionEvaluator* evaluator = nullptr,
    const PipelineInstrumentation* instrumentation = nullptr,
    const CostModel* cost_model = nullptr);

/// Baseline: the same scalar pipeline (split + forwarding, no fiberize or
/// partitioning) compiled for a single core.
isa::Program CompileSequential(
    const ir::Kernel& kernel, const ir::DataLayout& layout,
    const CompileOptions& options,
    const PipelineInstrumentation* instrumentation = nullptr);

}  // namespace fgpar::compiler
