// Compiler configuration knobs, mirroring the choices the paper explores.
#pragma once

namespace fgpar::compiler {

struct CompileOptions {
  /// Number of hardware cores to partition for (paper: 2 and 4).
  int num_cores = 4;

  /// Expression-splitting depth bound (Section III-A preprocessing:
  /// "expression trees are pre-processed to reduce the depth of the tree").
  /// Trees deeper than this are split into separate statements.
  int max_expr_depth = 4;

  /// Apply the Section III-H control-flow speculation transformation to
  /// if statements carrying the @speculate directive.
  bool speculation = false;

  /// Merge-heuristic weights (Section III-B).  Affinity of a node pair is
  ///   w_deps * (#dependence edges between them)
  /// + w_cost * cost_scale / (cost_scale + combined cost)
  /// + w_prox * line_scale / (line_scale + source-line distance).
  double w_deps = 4.0;
  double w_cost = 1.0;
  double w_prox = 0.5;
  double cost_scale = 40.0;   // cycles
  double line_scale = 4.0;    // source lines

  /// Hardware queue capacity (slots) assumed by the static capacity-
  /// deadlock checker (check.cpp): plans whose per-iteration queue traffic
  /// can reach a cyclic wait across full queues at this capacity are
  /// rejected at compile time instead of wedging the machine.  The harness
  /// keeps this in sync with the actual QueueConfig::capacity.  <= 0
  /// disables the check (unlimited capacity).
  int assumed_queue_capacity = 20;

  /// Transfer latency (cycles) the partitioner *assumes* when weighing
  /// cyclic dependences between partitions.  This mirrors the paper's
  /// methodology: the compiler's heuristics are tuned for the default
  /// 5-cycle hardware, and the Figure 13 sweep changes the hardware out
  /// from under the compiled code.
  int assumed_transfer_latency = 5;

  /// Balance cap: refuse to merge a pair whose combined cost would exceed
  /// this multiple of (total cost / num_cores) while other candidates
  /// remain.  Keeps the greedy merge from snowballing one giant partition,
  /// serving the paper's "maximize the number of operations concurrently
  /// performed in different cores" objective.
  double balance_cap = 1.20;

  /// Merge several disjoint best pairs per step instead of one ("This
  /// version allows faster compilation", Section III-B).
  bool multi_pair_merge = false;

  /// The throughput heuristic: collapse dependence cycles at every merge
  /// step so the final partitions have only unidirectional dependences
  /// (Section III-B; the paper measured an 11% average slowdown).
  bool throughput_heuristic = false;

  /// Hardware queue budget (Section II: "When the number of available
  /// queues is limited, we can constrain the partitioning such that the
  /// generated code uses at most a specific number of queues").  Counted as
  /// directed sender->receiver channels; 0 means unlimited (the all-to-all
  /// configuration of the evaluation).
  int max_channels = 0;

  /// Use profile feedback for memory latencies in the cost model
  /// (Section III-I.3).  When false, all loads are costed at L1 latency.
  bool use_profile = true;
};

}  // namespace fgpar::compiler
