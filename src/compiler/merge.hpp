// Code-graph merging (paper Section III-B).
//
// "The graph is transformed by merging a pair of nodes at each step, until
// the total number of nodes is equal to the number of hardware cores
// available for execution. ... Multiple individual heuristics are weighted
// and combined to compute an affinity value for each node pair."
//
// Heuristics implemented (the three the paper found to work best):
//   1. more dependence edges between the pair  -> higher affinity;
//   2. smaller combined static compute time    -> higher affinity;
//   3. closer source-line proximity            -> higher affinity.
//
// Variants:
//   * multi-pair merging ("chooses multiple node pairs to merge at each
//     step ... allows faster compilation");
//   * the throughput heuristic ("constrains partitioning to allow only
//     unidirectional dependences between any two nodes in the final graph"
//     by collapsing every dependence cycle found after each step).
#pragma once

#include <tuple>
#include <vector>

#include "compiler/graph.hpp"
#include "compiler/options.hpp"

namespace fgpar::compiler {

struct MergedPartition {
  std::vector<ir::StmtId> stmts;
  double cost = 0.0;
  int compute_ops = 0;
};

/// Merges the graph down to at most `options.num_cores` partitions.
/// Returns non-empty partitions sorted by descending cost (selects among
/// EnumerateCandidates by the static makespan objective).
std::vector<MergedPartition> MergeGraph(const CodeGraph& graph,
                                        const CompileOptions& options);

/// All candidate partitionings considered: the affinity merge and the
/// acyclic pipeline cut, at every partition count from 2 up to
/// options.num_cores (deduplicated, each refined).  This powers the paper's
/// Section III-I.1 multi-version compilation: the caller may pick among
/// them with dynamic feedback instead of the static objective.
std::vector<std::vector<MergedPartition>> EnumerateCandidates(
    const CodeGraph& graph, const CompileOptions& options);

/// The static partition-quality estimate used when no dynamic feedback is
/// available: (estimated per-iteration makespan, transfers, max cost).
std::tuple<double, int, double> PartitionObjective(
    const CodeGraph& graph, const std::vector<MergedPartition>& parts,
    const CompileOptions& options);

/// Post-merge refinement: greedily moves graph nodes between partitions to
/// break *bidirectional* dependences between partition pairs.  A mutual
/// dependence forces a per-iteration round trip through the queues that an
/// in-order core cannot pipeline past (it stalls in the dequeue), so
/// breaking such cycles is usually worth extra one-way transfers.  Moves
/// respect the balance cap and never empty a partition.
std::vector<MergedPartition> RefinePartitions(const CodeGraph& graph,
                                              std::vector<MergedPartition> parts,
                                              const CompileOptions& options);

}  // namespace fgpar::compiler
