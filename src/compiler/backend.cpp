#include "compiler/backend.hpp"

#include <string>
#include <utility>

#include "compiler/lower.hpp"
#include "support/error.hpp"

namespace fgpar::compiler {

std::string_view BackendKindName(BackendKind kind) {
  switch (kind) {
    case BackendKind::kSim: return "sim";
    case BackendKind::kNative: return "native";
  }
  FGPAR_UNREACHABLE("bad BackendKind");
}

BackendKind ParseBackendKind(std::string_view name) {
  if (name == "sim") return BackendKind::kSim;
  if (name == "native") return BackendKind::kNative;
  throw Error("unknown backend '" + std::string(name) +
              "' (expected sim or native)");
}

std::unique_ptr<BackendProgram> SimBackend::Compile(
    const LoweredProgram& lowered) const {
  if (lowered.sequential()) {
    return std::make_unique<SimProgram>(
        LowerSequential(*lowered.kernel, *lowered.layout));
  }
  return std::make_unique<SimProgram>(
      LowerParallel(*lowered.kernel, *lowered.layout, *lowered.plan));
}

const Backend& SimBackendInstance() {
  static const SimBackend backend;
  return backend;
}

isa::Program LowerToSim(const LoweredProgram& lowered) {
  std::unique_ptr<BackendProgram> program =
      SimBackendInstance().Compile(lowered);
  return std::move(static_cast<SimProgram&>(*program)).Take();
}

}  // namespace fgpar::compiler
